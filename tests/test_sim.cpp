/**
 * @file
 * Tests for the cycle-level BitWave simulator: ZCIP decode, BCE datapath,
 * banked SRAM accounting, bit-exact functional equivalence against the
 * reference kernels, and the Section V-B style cross-validation against
 * the analytical model.
 */
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "model/performance.hpp"
#include "nn/reference.hpp"
#include "nn/synthesis.hpp"
#include "nn/workloads.hpp"
#include "bitflip/bitflip.hpp"
#include "sparsity/bitcolumn.hpp"
#include "sim/bce.hpp"
#include "sim/npu.hpp"
#include "sim/sram.hpp"
#include "sim/zcip.hpp"

namespace bitwave {
namespace {

// --------------------------------------------------------------- ZCIP ---

TEST(Zcip, AllZeroIndexDecodesToNothing)
{
    ZeroColumnIndexParser parser;
    const auto d = parser.parse(0x00);
    EXPECT_FALSE(d.sign_request);
    EXPECT_TRUE(d.shifts.empty());
    EXPECT_EQ(d.nonzero_columns, 0);
}

TEST(Zcip, SignBitRaisesSignRequest)
{
    ZeroColumnIndexParser parser;
    const auto d = parser.parse(0x80);
    EXPECT_TRUE(d.sign_request);
    EXPECT_TRUE(d.shifts.empty());
    EXPECT_EQ(d.nonzero_columns, 1);
}

TEST(Zcip, ShiftsAreAscendingSignificances)
{
    ZeroColumnIndexParser parser;
    const auto d = parser.parse(0b1010'0101);
    EXPECT_TRUE(d.sign_request);
    EXPECT_EQ(d.shifts, (std::vector<int>{0, 2, 5}));
    EXPECT_EQ(d.nonzero_columns, 4);
}

TEST(Zcip, DenseModeStreamsAllColumns)
{
    ZeroColumnIndexParser parser;
    const auto d = parser.parse_dense(8);
    EXPECT_TRUE(d.sign_request);
    EXPECT_EQ(d.shifts.size(), 7u);
    EXPECT_EQ(d.nonzero_columns, 8);
    // Reduced-precision dense mode (deeply quantized weights).
    const auto d4 = parser.parse_dense(4);
    EXPECT_EQ(d4.nonzero_columns, 4);
}

TEST(Zcip, SyncCounterMatchesPopcount)
{
    ZeroColumnIndexParser parser;
    for (int idx = 0; idx < 256; ++idx) {
        const auto d = parser.parse(static_cast<std::uint8_t>(idx));
        EXPECT_EQ(d.nonzero_columns,
                  popcount8(static_cast<std::uint8_t>(idx)));
    }
}

// ---------------------------------------------------------------- BCE ---

TEST(Bce, SingleColumnMultiply)
{
    // Weights {1, 0, 1} at bit0, activations {3, 5, 7}: 3 + 7 = 10.
    Bce bce;
    const std::int8_t acts[3] = {3, 5, 7};
    bce.load_inputs(acts, 0);
    bce.process_column(0b101, 0);
    EXPECT_EQ(bce.output(), 10);
}

TEST(Bce, ShiftAppliesAfterAccumulation)
{
    Bce bce;
    const std::int8_t acts[2] = {1, 1};
    bce.load_inputs(acts, 0);
    bce.process_column(0b11, 3);  // (1 + 1) << 3 = 16
    EXPECT_EQ(bce.output(), 16);
    EXPECT_EQ(bce.activity().shifts, 1);
}

TEST(Bce, SignBitsNegatePartialProducts)
{
    Bce bce;
    const std::int8_t acts[2] = {10, 10};
    bce.load_inputs(acts, 0b01);  // weight 0 negative
    bce.process_column(0b11, 0);
    EXPECT_EQ(bce.output(), 0);  // -10 + 10
}

TEST(Bce, GroupPassComputesExactDotProduct)
{
    // Exhaustive-ish check: random groups, compare against the plain
    // int8 dot product.
    Rng rng(21);
    ZeroColumnIndexParser parser;
    for (int trial = 0; trial < 300; ++trial) {
        const int g = 1 + static_cast<int>(rng.uniform_int(0, 15));
        std::vector<std::int8_t> wts(static_cast<std::size_t>(g));
        std::vector<std::int8_t> acts(static_cast<std::size_t>(g));
        for (int j = 0; j < g; ++j) {
            wts[static_cast<std::size_t>(j)] =
                static_cast<std::int8_t>(rng.uniform_int(-127, 127));
            acts[static_cast<std::size_t>(j)] =
                static_cast<std::int8_t>(rng.uniform_int(-128, 127));
        }
        const auto idx =
            column_index({wts.data(), wts.size()},
                         Representation::kSignMagnitude);
        const auto decode = parser.parse(idx);
        std::vector<std::uint64_t> cols;
        for (int shift : decode.shifts) {
            cols.push_back(column_bits({wts.data(), wts.size()}, shift,
                                       Representation::kSignMagnitude));
        }
        const auto sign_col = column_bits(
            {wts.data(), wts.size()}, 7, Representation::kSignMagnitude);
        const std::int32_t got = bce_group_pass(
            {acts.data(), acts.size()}, decode,
            {cols.data(), cols.size()}, sign_col);
        EXPECT_EQ(got, dot_int8(acts.data(), wts.data(), g))
            << "trial " << trial;
    }
}

// --------------------------------------------------------------- SRAM ---

TEST(Sram, DistributesTrafficAcrossBanks)
{
    BankedSram sram(256 * 1024, 16, 64);
    sram.read(16 * 64);
    for (int b = 0; b < 16; ++b) {
        EXPECT_EQ(sram.bank_read_bits(b), 64);
    }
    EXPECT_EQ(sram.total_read_bits(), 1024);
    EXPECT_DOUBLE_EQ(sram.access_cycles(), 1.0);
}

TEST(Sram, CapacityCheck)
{
    BankedSram sram(1024, 4, 64);
    EXPECT_TRUE(sram.fits(1024));
    EXPECT_FALSE(sram.fits(1025));
}

TEST(Sram, ResetClearsCounters)
{
    BankedSram sram(1024, 2, 64);
    sram.write(128);
    sram.reset();
    EXPECT_EQ(sram.total_write_bits(), 0);
}

// ------------------------------------------------ functional equivalence ---

/// Build a small layer of the given kind with synthesized operands.
struct SimFixture
{
    LayerDesc desc;
    WorkloadLayer layer;
    Int8Tensor input;

    explicit SimFixture(LayerDesc d, std::uint64_t seed = 77)
        : desc(std::move(d))
    {
        Rng rng(seed);
        WeightProfile profile;
        profile.scale = 9.0;
        profile.zero_probability = 0.08;
        layer.desc = desc;
        layer.weights = synthesize_weights(desc, profile, rng);
        layer.activation_sparsity = 0.3;
        input = synthesize_activations(layer_input_shape(desc), 0.3, 14.0,
                                       false, rng);
    }
};

class SimEquivalence : public ::testing::TestWithParam<int>
{
  protected:
    static LayerDesc layer_for(int which)
    {
        switch (which) {
          case 0: return make_conv("conv", 8, 16, 5, 5, 3, 3);
          case 1: return make_conv("strided", 4, 8, 4, 4, 3, 3, 2);
          case 2: return make_pointwise("pw", 16, 32, 6, 6);
          case 3: return make_depthwise("dw", 12, 5, 5, 3);
          case 4: return make_linear("fc", 24, 40, 3);
          case 5: return make_lstm("lstm", 8, 8, 4);
          default: return make_conv("c3", 4, 3, 4, 4, 3, 3);
        }
    }
};

TEST_P(SimEquivalence, SparseModeMatchesReferenceBitExactly)
{
    SimFixture fx(layer_for(GetParam()));
    BitWaveNpu npu;
    const auto result = npu.run_layer(fx.layer, &fx.input);
    ASSERT_TRUE(result.output.has_value());
    const auto golden =
        layer_forward_int8(fx.desc, fx.input, fx.layer.weights);
    ASSERT_EQ(result.output->numel(), golden.numel());
    for (std::int64_t i = 0; i < golden.numel(); ++i) {
        ASSERT_EQ((*result.output)[i], golden[i]) << "element " << i;
    }
}

TEST_P(SimEquivalence, DenseModeMatchesReferenceBitExactly)
{
    SimFixture fx(layer_for(GetParam()), 99);
    NpuConfig cfg;
    cfg.dense_mode = true;
    BitWaveNpu npu(cfg);
    const auto result = npu.run_layer(fx.layer, &fx.input);
    ASSERT_TRUE(result.output.has_value());
    const auto golden =
        layer_forward_int8(fx.desc, fx.input, fx.layer.weights);
    for (std::int64_t i = 0; i < golden.numel(); ++i) {
        ASSERT_EQ((*result.output)[i], golden[i]) << "element " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(AllLayerKinds, SimEquivalence,
                         ::testing::Range(0, 7));

TEST(SimFunctional, BatchedGatherBitExactOnWideKernelLayers)
{
    // The functional BCE pass gathers each group's activations once and
    // broadcasts them across all K kernels; pin bit-exactness against
    // the int8 reference on shapes with many kernels (the broadcast
    // axis), partial tail groups, and strides.
    const LayerDesc shapes[] = {
        make_conv("wide", 48, 24, 6, 6, 3, 3),         // C tail at G=16
        make_conv("strided", 32, 40, 5, 5, 3, 3, 2),
        make_depthwise("dw", 40, 6, 6, 3),             // per-kernel taps
        make_linear("fc", 64, 56, 5),
    };
    for (const auto &desc : shapes) {
        SimFixture fx(desc, 0xACE5);
        BitWaveNpu npu;
        const auto result = npu.run_layer(fx.layer, &fx.input);
        ASSERT_TRUE(result.output.has_value());
        const auto golden =
            layer_forward_int8(fx.desc, fx.input, fx.layer.weights);
        ASSERT_EQ(result.output->numel(), golden.numel());
        for (std::int64_t i = 0; i < golden.numel(); ++i) {
            ASSERT_EQ((*result.output)[i], golden[i])
                << desc.name << " element " << i;
        }
    }
}

// --------------------------------------------------------- cycle model ---

TEST(SimCycles, SparseNeverSlowerThanDense)
{
    SimFixture fx(make_conv("c", 16, 32, 8, 8, 3, 3));
    BitWaveNpu sparse;
    NpuConfig dense_cfg;
    dense_cfg.dense_mode = true;
    BitWaveNpu dense(dense_cfg);
    const auto rs = sparse.run_layer(fx.layer, &fx.input, nullptr, false);
    const auto rd = dense.run_layer(fx.layer, &fx.input, nullptr, false);
    EXPECT_LE(rs.cycles_decoupled, rd.cycles_decoupled + 1e-9);
    EXPECT_LT(rs.weight_bits_fetched, rd.weight_bits_fetched);
}

TEST(SimCycles, LockstepIsAtLeastDecoupled)
{
    SimFixture fx(make_conv("c", 16, 32, 8, 8, 3, 3));
    BitWaveNpu npu;
    const auto r = npu.run_layer(fx.layer, &fx.input, nullptr, false);
    EXPECT_GE(r.cycles_lockstep, r.cycles_decoupled - 1e-9);
}

TEST(SimCycles, BitFlipBalancesLockstepTowardDecoupled)
{
    // After flipping every group to a fixed zero-column budget the
    // lockstep/decoupled gap shrinks (the Bit-Flip load-balance claim of
    // Section III-D), and both counts drop.
    SimFixture fx(make_linear("fc", 64, 256, 2));
    BitWaveNpu npu;
    const auto before = npu.run_layer(fx.layer, &fx.input, nullptr, false);
    const Int8Tensor flipped =
        bitflip_tensor(fx.layer.weights, before.group_size, 4);
    const auto after = npu.run_layer(fx.layer, &fx.input, &flipped, false);

    const double gap_before =
        before.cycles_lockstep / before.cycles_decoupled;
    const double gap_after = after.cycles_lockstep / after.cycles_decoupled;
    EXPECT_GE(gap_before, 1.0);
    EXPECT_LE(gap_after, gap_before + 1e-9);
    EXPECT_LT(after.cycles_decoupled, before.cycles_decoupled);
}

TEST(SimCycles, PackedAccountingMatchesScalarRecomputation)
{
    // The sim's token accounting now reads packed bit planes; recompute
    // the streamed-column and weight-bit totals with the scalar
    // column_index oracle over the same row/group geometry and require
    // exact agreement (the "sim cycle counts" half of the scalar-vs-
    // packed equivalence contract).
    const LayerDesc descs[] = {make_conv("conv", 8, 16, 5, 5, 3, 3),
                               make_depthwise("dw", 12, 5, 5, 3),
                               make_linear("fc", 24, 40, 3)};
    for (const LayerDesc &desc : descs) {
        SimFixture fx(desc, 1234);
        BitWaveNpu npu;
        const auto r = npu.run_layer(fx.layer, &fx.input, nullptr, false);

        const auto geom = weight_row_geometry(fx.desc);
        const LayerDesc mapped = normalized_for_mapping(fx.desc);
        const SpatialUnrolling &su =
            select_su(mapped, npu.config().dataflows);
        const std::int64_t revisits =
            ceil_div(mapped.ox, su.factor(Dim::kOX)) *
            ceil_div(mapped.oy, su.factor(Dim::kOY)) * mapped.batch;
        std::int64_t nz_total = 0, weight_bits = 0, groups = 0;
        for (std::int64_t row = 0; row < geom.rows; ++row) {
            for (std::int64_t c0 = 0; c0 < geom.row_len;
                 c0 += r.group_size) {
                const std::int64_t len = std::min<std::int64_t>(
                    r.group_size, geom.row_len - c0);
                const int nz = popcount8(column_index(
                    {fx.layer.weights.data() + row * geom.row_len + c0,
                     static_cast<std::size_t>(len)},
                    Representation::kSignMagnitude));
                nz_total += nz;
                weight_bits += kWordBits +
                    static_cast<std::int64_t>(nz) * r.group_size;
                ++groups;
            }
        }
        EXPECT_EQ(r.nonzero_columns_streamed, nz_total * revisits)
            << fx.desc.name;
        EXPECT_EQ(r.group_passes, groups * revisits) << fx.desc.name;
        EXPECT_EQ(r.weight_bits_fetched, weight_bits) << fx.desc.name;
    }
}

TEST(SimCycles, DepthwiseGroupSizeMatchesModelAccounting)
{
    // Regression for the sim/model split: the simulator used to account
    // depthwise layers with G = 8 while the analytical model used SU7's
    // G unrolling (64). Both sides now take the group size from the
    // selected SU, pinned here to SU7's 64.
    const LayerDesc dw = make_depthwise("dw", 32, 6, 6, 3);
    BitWaveNpu npu;
    const SpatialUnrolling &su = select_su(dw, npu.config().dataflows);
    EXPECT_EQ(su.name, "SU7");
    EXPECT_EQ(su.group_size(), 64);

    SimFixture fx(dw, 55);
    const auto r = npu.run_layer(fx.layer, &fx.input, nullptr, false);
    EXPECT_EQ(r.group_size, 64) << "sim must follow the SU's BCS group";
}

TEST(SimCycles, MeanColumnsMatchesAnalyticalStats)
{
    SimFixture fx(make_conv("c", 16, 32, 8, 8, 3, 3));
    BitWaveNpu npu;
    const auto r = npu.run_layer(fx.layer, &fx.input, nullptr, false);
    // The simulator's streamed column count per group must agree with the
    // sparsity analysis at the same group size.
    const auto stats = analyze_bit_columns(
        fx.layer.weights, r.group_size, Representation::kSignMagnitude);
    EXPECT_NEAR(r.mean_columns_per_group(), stats.mean_nonzero_columns(),
                0.5);
}

TEST(SimCycles, LayerContextAddsBoundaryDramTraffic)
{
    // First layers read their input from DRAM, last layers write their
    // output back; interior layers move no activations off chip — the
    // residency assumption shared with the analytical model.
    SimFixture fx(make_conv("c", 16, 32, 8, 8, 3, 3));
    BitWaveNpu npu;
    const auto interior =
        npu.run_layer(fx.layer, &fx.input, nullptr, false);
    EXPECT_EQ(interior.act_bits_dram, 0);

    LayerContext first;
    first.first_layer = true;
    const auto as_first =
        npu.run_layer(fx.layer, &fx.input, nullptr, false, first);
    EXPECT_EQ(as_first.act_bits_dram,
              fx.layer.desc.input_count() * kWordBits);

    LayerContext both = first;
    both.last_layer = true;
    const auto as_both =
        npu.run_layer(fx.layer, &fx.input, nullptr, false, both);
    EXPECT_EQ(as_both.act_bits_dram,
              (fx.layer.desc.input_count() +
               fx.layer.desc.output_count()) * kWordBits);

    // The extra traffic shows up in DRAM occupancy, total cycles
    // (Eq. 5 serializes DRAM), and DRAM energy — compute is untouched.
    EXPECT_GT(as_both.dram_cycles, interior.dram_cycles);
    EXPECT_GT(as_both.total_cycles, interior.total_cycles);
    EXPECT_GT(as_both.energy.dram_pj, interior.energy.dram_pj);
    EXPECT_EQ(as_both.cycles_decoupled, interior.cycles_decoupled);
}

TEST(SimCycles, TotalCyclesMatchAnalyticalModelWithContext)
{
    // With boundary DRAM wired through, total_cycles (not just compute)
    // agrees between the engines on first/last layers.
    const auto &w = get_workload(WorkloadId::kCnnLstm);
    BitWaveNpu npu;
    AcceleratorModel model(make_bitwave(BitWaveVariant::kDfSm));
    for (std::size_t l : {std::size_t{0}, w.layers.size() - 1}) {
        LayerContext ctx;
        ctx.first_layer = l == 0;
        ctx.last_layer = l + 1 == w.layers.size();
        const auto &layer = w.layers[l];
        const auto sim =
            npu.run_layer(layer, nullptr, nullptr, false, ctx);
        const auto mod = model.model_layer(layer, nullptr, ctx);
        EXPECT_NEAR(sim.total_cycles / mod.total_cycles, 1.0, 0.15)
            << layer.desc.name;
    }
}

TEST(SimValidation, SimWithinTenPercentOfAnalyticalModel)
{
    // The paper validates its analytical model against the BitWave RTL
    // at < 6 % deviation; we reproduce the cross-check between our two
    // independent implementations at a 15 % tolerance.
    const auto &w = get_workload(WorkloadId::kCnnLstm);
    BitWaveNpu npu;
    AcceleratorModel model(make_bitwave(BitWaveVariant::kDfSm));
    for (const char *name : {"LSTM.0", "LSTM.1", "fc_in"}) {
        const auto &layer = w.layers[w.layer_index(name)];
        const auto sim = npu.run_layer(layer, nullptr, nullptr, false);
        const auto mod = model.model_layer(layer);
        const double ratio = sim.cycles_decoupled / mod.compute_cycles;
        EXPECT_GT(ratio, 0.85) << name;
        EXPECT_LT(ratio, 1.15) << name;
    }
}

}  // namespace
}  // namespace bitwave
