/**
 * @file
 * Unit tests for the common utilities: sign-magnitude codec, bit helpers,
 * RNG distributions, the table renderer, and the work-stealing
 * execution core (coverage, cancellation, inline bypass, adversarial
 * steal scheduling).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <optional>

#include "common/bits.hpp"
#include "common/env.hpp"
#include "common/fault.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/mpmc_queue.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/trace.hpp"
#include "common/worksteal.hpp"

namespace bitwave {
namespace {

TEST(SignMagnitude, EncodesPositiveValuesUnchanged)
{
    for (int v = 0; v <= 127; ++v) {
        EXPECT_EQ(to_sign_magnitude(static_cast<std::int8_t>(v)),
                  static_cast<std::uint8_t>(v));
    }
}

TEST(SignMagnitude, EncodesNegativeValuesWithSignBit)
{
    EXPECT_EQ(to_sign_magnitude(-1), 0x81);
    EXPECT_EQ(to_sign_magnitude(-3), 0x83);
    EXPECT_EQ(to_sign_magnitude(-127), 0xFF);
}

TEST(SignMagnitude, ClampsMinusOneTwentyEight)
{
    // -128 has no 7-bit magnitude; the codec clamps to -127 as the
    // hardware does.
    EXPECT_EQ(to_sign_magnitude(std::int8_t{-128}), 0xFF);
}

TEST(SignMagnitude, RoundTripsAllRepresentableValues)
{
    for (int v = -127; v <= 127; ++v) {
        const auto sm = to_sign_magnitude(static_cast<std::int8_t>(v));
        EXPECT_EQ(from_sign_magnitude(sm), v);
    }
}

TEST(SignMagnitude, BothZeroEncodingsDecodeToZero)
{
    EXPECT_EQ(from_sign_magnitude(0x00), 0);
    EXPECT_EQ(from_sign_magnitude(0x80), 0);
}

TEST(SignMagnitude, PaperExampleMinusThree)
{
    // Fig. 4(c): -3 in SM is 1000'0011.
    EXPECT_EQ(to_binary_string(to_sign_magnitude(-3)), "10000011");
}

TEST(Bits, PopcountMatchesManualCount)
{
    EXPECT_EQ(popcount8(0x00), 0);
    EXPECT_EQ(popcount8(0xFF), 8);
    EXPECT_EQ(popcount8(0xA5), 4);
}

TEST(Bits, TwosComplementBitCountOfNegatives)
{
    // -1 = 0xFF has 8 ones; small negative values have many leading ones,
    // the effect that ruins 2C bit-column sparsity (Section III-A).
    EXPECT_EQ(bit_count_twos_complement(-1), 8);
    EXPECT_EQ(bit_count_twos_complement(-2), 7);
    EXPECT_EQ(bit_count_sign_magnitude(-1), 2);
    EXPECT_EQ(bit_count_sign_magnitude(-2), 2);
}

TEST(Bits, SmallNegativesSparserInSignMagnitude)
{
    // SM never needs more bits than 2C for negatives, and strictly fewer
    // in aggregate over the small-magnitude range that dominates weights.
    int sm_total = 0, tc_total = 0;
    for (int v = -16; v < 0; ++v) {
        const int sm = bit_count_sign_magnitude(static_cast<std::int8_t>(v));
        const int tc = bit_count_twos_complement(static_cast<std::int8_t>(v));
        EXPECT_LE(sm, tc) << "value " << v;
        sm_total += sm;
        tc_total += tc;
    }
    EXPECT_LT(sm_total, tc_total);
}

TEST(Bits, TestBitAndBinaryString)
{
    const std::uint8_t w = 0b10001100;
    EXPECT_TRUE(test_bit(w, 7));
    EXPECT_TRUE(test_bit(w, 3));
    EXPECT_TRUE(test_bit(w, 2));
    EXPECT_FALSE(test_bit(w, 0));
    EXPECT_EQ(to_binary_string(w), "10001100");
}

TEST(Bits, CeilDiv)
{
    EXPECT_EQ(ceil_div(0, 8), 0);
    EXPECT_EQ(ceil_div(1, 8), 1);
    EXPECT_EQ(ceil_div(8, 8), 1);
    EXPECT_EQ(ceil_div(9, 8), 2);
}

TEST(Rng, IsDeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    }
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng rng(7);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, LaplacianHasHeavyPeakAtZero)
{
    Rng rng(11);
    int small = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (std::abs(rng.laplacian(1.0)) < 0.7) {
            ++small;
        }
    }
    // P(|X| < 0.7) = 1 - exp(-0.7) ~ 0.503 for a unit Laplacian.
    EXPECT_NEAR(static_cast<double>(small) / n, 0.503, 0.03);
}

TEST(Rng, GaussianMeanAndSigma)
{
    Rng rng(13);
    double sum = 0.0, sum2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.gaussian(2.0);
        sum += x;
        sum2 += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.1);
    EXPECT_NEAR(std::sqrt(sum2 / n), 2.0, 0.1);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22"});
    const std::string s = t.render();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmt_double(1.2345, 2), "1.23");
    EXPECT_EQ(fmt_percent(0.1234, 1), "12.3%");
    EXPECT_EQ(fmt_ratio(2.5, 2), "2.50x");
}

// ------------------------------------------------- work-stealing core ---

TEST(Worksteal, EveryIndexRunsExactlyOnce)
{
    const std::size_t n = 10000;
    std::vector<std::atomic<int>> counts(n);
    const auto stats = worksteal_for(
        n, [&](std::size_t i) {
            counts[i].fetch_add(1, std::memory_order_relaxed);
        },
        /*threads=*/4);
    EXPECT_EQ(stats.threads_used, 4);
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(counts[i].load(), 1) << "index " << i;
    }
}

TEST(Worksteal, RangeBodyCoversDisjointGrainChunks)
{
    const std::size_t n = 1003;  // not a multiple of the grain
    std::vector<std::atomic<int>> counts(n);
    WorkstealOptions options;
    options.threads = 3;
    options.grain = 16;
    const auto stats = worksteal_run(
        n,
        [&](std::size_t begin, std::size_t end) {
            EXPECT_LT(begin, end);
            EXPECT_LE(end - begin, options.grain);
            for (std::size_t i = begin; i < end; ++i) {
                counts[i].fetch_add(1, std::memory_order_relaxed);
            }
        },
        options);
    EXPECT_GE(stats.chunks, static_cast<std::int64_t>(n / options.grain));
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(counts[i].load(), 1) << "index " << i;
    }
}

TEST(Worksteal, SingleThreadRunsInlineOnTheCaller)
{
    // BITWAVE_THREADS=1 (here: explicit threads=1) must bypass pool and
    // deque construction entirely: every iteration runs on the calling
    // thread.
    const auto caller = std::this_thread::get_id();
    int calls = 0;
    const auto stats = worksteal_for(
        64,
        [&](std::size_t) {
            EXPECT_EQ(std::this_thread::get_id(), caller);
            ++calls;  // unsynchronized on purpose: single-threaded
        },
        /*threads=*/1);
    EXPECT_EQ(calls, 64);
    EXPECT_EQ(stats.threads_used, 1);
    EXPECT_EQ(stats.steals, 0);
}

TEST(Worksteal, ThreadsEnvOverrideOfOneRunsInline)
{
    ASSERT_EQ(setenv("BITWAVE_THREADS", "1", 1), 0);
    EXPECT_EQ(parallel_threads(1000), 1);
    const auto caller = std::this_thread::get_id();
    parallel_for(256, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
    ASSERT_EQ(unsetenv("BITWAVE_THREADS"), 0);
}

TEST(Worksteal, FirstExceptionWinsAndCancelsSiblings)
{
    // Index 0 throws; every other index waits until the thrower has
    // started, then costs ~50us. With the per-chunk cancel flag the
    // pool must stop long before draining all n items.
    const std::size_t n = 2000;
    std::atomic<bool> thrown{false};
    std::atomic<std::int64_t> executed{0};
    try {
        worksteal_for(
            n,
            [&](std::size_t i) {
                if (i == 0) {
                    thrown.store(true, std::memory_order_relaxed);
                    throw std::runtime_error("boom");
                }
                while (!thrown.load(std::memory_order_relaxed)) {
                    std::this_thread::yield();
                }
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
                executed.fetch_add(1, std::memory_order_relaxed);
            },
            /*threads=*/4);
        FAIL() << "exception must propagate to the caller";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom");
    }
    // Cancellation is checked per chunk: siblings stop at their next
    // boundary instead of running their full slices (~n/threads each).
    EXPECT_LT(executed.load(), static_cast<std::int64_t>(n) / 2)
        << "siblings kept draining after the failure";
}

TEST(Worksteal, AdversarialSchedulerStillCoversEverything)
{
    const std::size_t n = 4096;
    for (const std::uint64_t seed : {1ull, 7ull, 12345ull}) {
        std::vector<std::atomic<int>> counts(n);
        WorkstealOptions options;
        options.threads = 4;
        options.grain = 8;
        options.chaos_seed = seed;
        const auto stats = worksteal_run(
            n,
            [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                    counts[i].fetch_add(1, std::memory_order_relaxed);
                }
            },
            options);
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(counts[i].load(), 1)
                << "seed " << seed << " index " << i;
        }
        EXPECT_GE(stats.chunks, static_cast<std::int64_t>(n / 8));
    }
}

TEST(Worksteal, NestedLoopsRunInline)
{
    // A parallel_for reached from inside a worker executes serially on
    // that worker — no threads x threads explosion, every index still
    // covered exactly once.
    const std::size_t outer = 16, inner = 64;
    std::vector<std::atomic<int>> counts(outer * inner);
    worksteal_for(
        outer,
        [&](std::size_t o) {
            const auto worker = std::this_thread::get_id();
            parallel_for(inner, [&](std::size_t i) {
                EXPECT_EQ(std::this_thread::get_id(), worker);
                counts[o * inner + i].fetch_add(
                    1, std::memory_order_relaxed);
            });
        },
        /*threads=*/4);
    for (std::size_t i = 0; i < counts.size(); ++i) {
        ASSERT_EQ(counts[i].load(), 1) << "index " << i;
    }
}

// -------------------------------------------------------------- env ---

TEST(Env, PositiveIntParsesStrictlyAndFallsBack)
{
    ::setenv("BITWAVE_TEST_KNOB", "12", 1);
    EXPECT_EQ(env_positive_int("BITWAVE_TEST_KNOB", 3), 12);

    // Unset and empty are the silent "use the default" states.
    ::unsetenv("BITWAVE_TEST_KNOB");
    EXPECT_EQ(env_positive_int("BITWAVE_TEST_KNOB", 3), 3);
    ::setenv("BITWAVE_TEST_KNOB", "", 1);
    EXPECT_EQ(env_positive_int("BITWAVE_TEST_KNOB", 3), 3);

    // Leading whitespace follows strtoll and is accepted.
    ::setenv("BITWAVE_TEST_KNOB", " 4", 1);
    EXPECT_EQ(env_positive_int("BITWAVE_TEST_KNOB", 3), 4);

    // Garbage, partial parses and non-positive values fall back (after
    // a once-per-variable warning).
    for (const char *bad : {"4x", "x4", "0", "-2", "3.5"}) {
        ::setenv("BITWAVE_TEST_KNOB", bad, 1);
        EXPECT_EQ(env_positive_int("BITWAVE_TEST_KNOB", 7), 7) << bad;
    }
    ::unsetenv("BITWAVE_TEST_KNOB");
}

TEST(Env, StringKnob)
{
    ::setenv("BITWAVE_TEST_DIR", "/tmp/somewhere", 1);
    EXPECT_EQ(env_string("BITWAVE_TEST_DIR"), "/tmp/somewhere");
    ::unsetenv("BITWAVE_TEST_DIR");
    EXPECT_EQ(env_string("BITWAVE_TEST_DIR"), "");
}

// ------------------------------------------------------------- queue ---

TEST(MpmcQueue, FifoWithinASingleProducer)
{
    MpmcQueue<int> q(8);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(q.push(i), QueuePush::kAccepted);
    }
    EXPECT_EQ(q.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        int out = -1;
        ASSERT_TRUE(q.try_pop(&out));
        EXPECT_EQ(out, i);
    }
    int out;
    EXPECT_FALSE(q.try_pop(&out));
}

TEST(MpmcQueue, TryPushReportsFull)
{
    MpmcQueue<int> q(2);
    EXPECT_EQ(q.try_push(1), QueuePush::kAccepted);
    EXPECT_EQ(q.try_push(2), QueuePush::kAccepted);
    EXPECT_EQ(q.try_push(3), QueuePush::kFull);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.peak_size(), 2u);
}

TEST(MpmcQueue, ShedOldestEvictsTheHeadAtomically)
{
    MpmcQueue<int> q(2);
    (void)q.try_push(1);
    (void)q.try_push(2);
    std::optional<int> shed;
    EXPECT_EQ(q.push_shed_oldest(3, &shed), QueuePush::kAccepted);
    ASSERT_TRUE(shed.has_value());
    EXPECT_EQ(*shed, 1);
    int out = 0;
    ASSERT_TRUE(q.try_pop(&out));
    EXPECT_EQ(out, 2);
    ASSERT_TRUE(q.try_pop(&out));
    EXPECT_EQ(out, 3);
}

TEST(MpmcQueue, CloseHasDrainSemantics)
{
    MpmcQueue<int> q(4);
    (void)q.try_push(41);
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_EQ(q.try_push(42), QueuePush::kClosed);
    // Consumers drain what was admitted before the close...
    int out = 0;
    EXPECT_TRUE(q.pop(&out));
    EXPECT_EQ(out, 41);
    // ...then see end-of-stream instead of blocking forever.
    EXPECT_FALSE(q.pop(&out));
    EXPECT_FALSE(q.pop_for(&out, 0.001));
}

TEST(MpmcQueue, PopForTimesOutOnAnEmptyQueue)
{
    MpmcQueue<int> q(4);
    int out = 0;
    EXPECT_FALSE(q.pop_for(&out, 0.001));
    (void)q.try_push(9);
    EXPECT_TRUE(q.pop_for(&out, 0.001));
    EXPECT_EQ(out, 9);
}

TEST(MpmcQueue, ConcurrentProducersAndConsumersLoseNothing)
{
    // 4 producers x 4 consumers over a deliberately tiny queue: every
    // pushed value is popped exactly once and blocking push provides
    // the backpressure.
    constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 500;
    MpmcQueue<int> q(8);
    std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                ASSERT_EQ(q.push(p * kPerProducer + i),
                          QueuePush::kAccepted);
            }
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            int v = 0;
            while (q.pop(&v)) {
                seen[static_cast<std::size_t>(v)].fetch_add(
                    1, std::memory_order_relaxed);
            }
        });
    }
    for (int p = 0; p < kProducers; ++p) {
        threads[static_cast<std::size_t>(p)].join();
    }
    q.close();
    for (int c = 0; c < kConsumers; ++c) {
        threads[static_cast<std::size_t>(kProducers + c)].join();
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
        ASSERT_EQ(seen[i].load(), 1) << "value " << i;
    }
    EXPECT_LE(q.peak_size(), 8u);
}

TEST(MpmcQueue, ConcurrentCloseWithShedPushersAndBlockedPoppers)
{
    // The shutdown race the service relies on: shed-oldest producers
    // hammering a tiny queue, consumers blocking on pop, and close()
    // landing in the middle. Every popper must wake (drain semantics,
    // no hang), every accepted-and-not-shed value must be popped
    // exactly once, and post-close pushes must bounce as kClosed.
    constexpr int kPushers = 4, kPoppers = 4, kPerPusher = 300;
    MpmcQueue<int> q(4);
    std::vector<std::atomic<int>> seen(kPushers * kPerPusher);
    std::atomic<int> accepted{0}, shed_count{0}, closed_count{0};

    std::vector<std::thread> threads;
    for (int p = 0; p < kPushers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < kPerPusher; ++i) {
                std::optional<int> shed;
                switch (q.push_shed_oldest(p * kPerPusher + i, &shed)) {
                  case QueuePush::kAccepted:
                    accepted.fetch_add(1, std::memory_order_relaxed);
                    break;
                  case QueuePush::kClosed:
                    closed_count.fetch_add(1, std::memory_order_relaxed);
                    break;
                  case QueuePush::kFull:
                    ADD_FAILURE() << "shed-oldest must never report full";
                    break;
                }
                if (shed.has_value()) {
                    // An evicted value counts as consumed: the service
                    // resolves it as kShed.
                    seen[static_cast<std::size_t>(*shed)].fetch_add(
                        1, std::memory_order_relaxed);
                    shed_count.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (int c = 0; c < kPoppers; ++c) {
        threads.emplace_back([&] {
            int v = 0;
            while (q.pop(&v)) {
                seen[static_cast<std::size_t>(v)].fetch_add(
                    1, std::memory_order_relaxed);
            }
        });
    }
    // Close mid-flight, while pushers are still pushing and poppers may
    // be blocked: from here pushers see kClosed and poppers drain out.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.close();
    for (auto &t : threads) {
        t.join();
    }
    // Drain whatever the poppers left behind after close.
    int v = 0;
    while (q.try_pop(&v)) {
        seen[static_cast<std::size_t>(v)].fetch_add(
            1, std::memory_order_relaxed);
    }

    int consumed = 0;
    for (std::size_t i = 0; i < seen.size(); ++i) {
        ASSERT_LE(seen[i].load(), 1) << "value " << i << " popped twice";
        consumed += seen[i].load();
    }
    EXPECT_EQ(consumed, accepted.load())
        << "every accepted value is popped or shed exactly once";
    EXPECT_EQ(accepted.load() + closed_count.load(),
              kPushers * kPerPusher);
}

// ------------------------------------------------------------- fault ---

TEST(Fault, DisarmedPointsCostOneBranchAndNeverFire)
{
    fault::reset();
    EXPECT_FALSE(fault::enabled());
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(BITWAVE_FAULT_POINT("test.disarmed"));
    }
}

TEST(Fault, SpecArmsPointsByNameAndWildcard)
{
    fault::configure("test.always=1:error,other.point=0.5", 42);
    EXPECT_TRUE(fault::enabled());
    // kError faults return true from the point expression.
    EXPECT_TRUE(BITWAVE_FAULT_POINT("test.always"));
    fault::configure("*=1:error", 42);
    EXPECT_TRUE(BITWAVE_FAULT_POINT("test.some.new.point"));
    fault::reset();
    EXPECT_FALSE(fault::enabled());
    EXPECT_FALSE(BITWAVE_FAULT_POINT("test.always"));
}

TEST(Fault, TransientFaultsThrowWithTaxonomyKind)
{
    fault::configure("test.transient=1", 7);
    try {
        BITWAVE_FAULT_INJECT("test.transient");
        FAIL() << "armed transient point must throw";
    } catch (const FaultError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::kTransient);
    }
    fault::reset();
}

TEST(Fault, DrawsAreSeededAndDeterministic)
{
    // Same (spec, seed) => the same invocations fire; different seed
    // => (almost surely) a different firing pattern at p = 0.3.
    const auto pattern = [](std::uint64_t seed) {
        fault::configure("test.seeded=0.3:error", seed);
        std::vector<bool> fired;
        fired.reserve(64);
        for (int i = 0; i < 64; ++i) {
            fired.push_back(BITWAVE_FAULT_POINT("test.seeded"));
        }
        fault::reset();
        return fired;
    };
    // configure() restarts the per-point draw stream, so the same
    // (spec, seed) replays bit-for-bit.
    const auto a = pattern(123);
    const auto b = pattern(123);
    const auto c = pattern(456);
    EXPECT_TRUE(std::count(a.begin(), a.end(), true) > 0);
    EXPECT_TRUE(std::count(a.begin(), a.end(), false) > 0);
    EXPECT_EQ(a, b);
    EXPECT_NE(c, a);
}

TEST(Fault, ContextTagRestrictsFiring)
{
    // `point@tag=...` fires only for call sites passing the matching
    // context hash — the mechanism the chaos tests use to poison one
    // scenario of a batch.
    fault::configure("test.tagged@poison=1:error", 3);
    EXPECT_TRUE(BITWAVE_FAULT_POINT_CTX("test.tagged",
                                        fault::context_tag("poison")));
    EXPECT_FALSE(BITWAVE_FAULT_POINT_CTX("test.tagged",
                                         fault::context_tag("innocent")));
    EXPECT_FALSE(BITWAVE_FAULT_POINT("test.tagged"));
    fault::reset();
}

TEST(Fault, MalformedSpecEntriesAreSkipped)
{
    // Bad entries warn once and are ignored; good entries in the same
    // spec still arm.
    fault::configure("nonsense,=0.5,test.ok=1:error,p=2.0,p=0.5:bogus",
                     1);
    EXPECT_TRUE(BITWAVE_FAULT_POINT("test.ok"));
    EXPECT_FALSE(BITWAVE_FAULT_POINT("p"));
    fault::reset();
}

TEST(Fault, StatsCountChecksAndFires)
{
    fault::configure("test.counted=1:error", 9);
    const auto before = fault::stats();
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(BITWAVE_FAULT_POINT("test.counted"));
    }
    const auto after = fault::stats();
    EXPECT_EQ(after.checks, before.checks + 10);
    EXPECT_EQ(after.fired, before.fired + 10);
    EXPECT_EQ(after.errors, before.errors + 10);
    bool found = false;
    for (const auto &info : fault::points()) {
        if (info.name == "test.counted") {
            found = true;
            EXPECT_EQ(info.probability, 1.0);
            EXPECT_GE(info.fired, 10u);
        }
    }
    EXPECT_TRUE(found);
    fault::reset();
}

// ----------------------------------------------------------- logging ---

TEST(Logging, SinkCapturesWarnAndWarnOnceDedupes)
{
    std::vector<std::string> lines;
    auto previous = set_log_sink(
        [&](LogLevel, const std::string &message) {
            lines.push_back(message);
        });
    warn("plain warning %d", 1);
    warn_once("test-key-a", "once %d", 2);
    warn_once("test-key-a", "once %d", 3);  // deduped
    warn_once("test-key-b", "other key %d", 4);
    set_log_sink(std::move(previous));
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], "plain warning 1");
    EXPECT_EQ(lines[1], "once 2");
    EXPECT_EQ(lines[2], "other key 4");
}

TEST(Logging, ThreadOrdinalsAreStableAndDistinct)
{
    const int mine = thread_ordinal();
    EXPECT_GE(mine, 0);
    EXPECT_EQ(thread_ordinal(), mine);  // stable within a thread
    int other = -1;
    std::thread([&] { other = thread_ordinal(); }).join();
    EXPECT_GE(other, 0);
    EXPECT_NE(other, mine);
    EXPECT_GE(log_uptime_seconds(), 0.0);
}

// ----------------------------------------------------------- metrics ---

TEST(Metrics, RegistryHandlesAreStableAndShared)
{
    metrics::Counter &a = metrics::counter("test.metrics.counter_a");
    metrics::Counter &b = metrics::counter("test.metrics.counter_a");
    EXPECT_EQ(&a, &b);  // same name, same metric
    const std::uint64_t before = a.value();
    a.inc();
    a.inc(4);
    EXPECT_EQ(a.value(), before + 5);
    EXPECT_EQ(metrics::counter_value("test.metrics.counter_a"),
              a.value());
    EXPECT_EQ(metrics::counter_value("test.metrics.no_such_counter"),
              0u);

    metrics::Gauge &g = metrics::gauge("test.metrics.gauge_a");
    g.set(-7);
    EXPECT_EQ(g.value(), -7);
    g.add(10);
    EXPECT_EQ(g.value(), 3);
}

TEST(Metrics, HistogramBucketsPartitionTheValueRange)
{
    // Values below 16 get an exact bucket each.
    for (std::uint64_t v = 0; v < 16; ++v) {
        EXPECT_EQ(metrics::Histogram::bucket_index(v),
                  static_cast<int>(v));
        EXPECT_EQ(metrics::Histogram::bucket_lower_bound(
                      static_cast<int>(v)),
                  v);
    }
    // Lower bounds strictly increase: the buckets tile the range.
    for (int i = 1; i < metrics::kHistogramBuckets; ++i) {
        EXPECT_LT(metrics::Histogram::bucket_lower_bound(i - 1),
                  metrics::Histogram::bucket_lower_bound(i));
    }
    // Every probe value lands in the bucket whose range contains it.
    const std::uint64_t probes[] = {16,
                                    17,
                                    100,
                                    1000,
                                    123456,
                                    std::uint64_t{1} << 30,
                                    (std::uint64_t{1} << 48) - 1,
                                    std::uint64_t{1} << 60};
    for (const std::uint64_t v : probes) {
        const int idx = metrics::Histogram::bucket_index(v);
        ASSERT_GE(idx, 0);
        ASSERT_LT(idx, metrics::kHistogramBuckets);
        EXPECT_GE(v, metrics::Histogram::bucket_lower_bound(idx));
        if (idx + 1 < metrics::kHistogramBuckets) {
            EXPECT_LT(v,
                      metrics::Histogram::bucket_lower_bound(idx + 1));
        }
    }
}

TEST(Metrics, GatedHistogramIsANoOpWhileDisarmed)
{
    const bool was_enabled = metrics::enabled();
    metrics::set_enabled(false);
    metrics::Histogram &gated =
        metrics::histogram("test.metrics.gated_hist");
    const std::uint64_t before = gated.snapshot().count;
    gated.record(123);
    EXPECT_EQ(gated.snapshot().count, before);  // disarmed: dropped
    metrics::set_enabled(true);
    gated.record(123);
    EXPECT_EQ(gated.snapshot().count, before + 1);
    metrics::set_enabled(false);

    metrics::Histogram always{false};  // ungated: always records
    always.record(7);
    EXPECT_EQ(always.snapshot().count, 1u);
    metrics::set_enabled(was_enabled);
}

TEST(Metrics, HistogramQuantilesInterpolate)
{
    metrics::Histogram h{false};
    EXPECT_EQ(h.snapshot().quantile(0.5), 0.0);  // empty
    for (std::uint64_t v = 0; v < 100; ++v) {
        h.record(v);
    }
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 100u);
    EXPECT_EQ(snap.sum, 4950u);
    EXPECT_NEAR(snap.mean(), 49.5, 1e-9);
    // Log buckets bound the quantile error to one quarter-octave.
    EXPECT_NEAR(snap.quantile(0.10), 10.0, 3.0);
    EXPECT_NEAR(snap.quantile(0.50), 50.0, 13.0);
    EXPECT_NEAR(snap.quantile(0.99), 99.0, 25.0);
    EXPECT_LE(snap.quantile(0.25), snap.quantile(0.75));
}

TEST(Metrics, ConcurrentChurnAgainstSnapshotReadersIsExact)
{
    const bool was_enabled = metrics::enabled();
    metrics::set_enabled(true);
    metrics::Counter &c = metrics::counter("test.metrics.churn_counter");
    metrics::Histogram &h =
        metrics::histogram("test.metrics.churn_hist");
    const std::uint64_t c0 = c.value();
    const std::uint64_t h0 = h.snapshot().count;

    constexpr int kWriters = 4;
    constexpr int kPerWriter = 10000;
    std::atomic<bool> go{false};
    std::atomic<bool> done{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; ++t) {
        writers.emplace_back([&] {
            while (!go.load()) {
                std::this_thread::yield();
            }
            for (int i = 0; i < kPerWriter; ++i) {
                c.inc();
                h.record(static_cast<std::uint64_t>(i) & 0xFF);
            }
        });
    }
    std::thread reader([&] {
        while (!done.load()) {
            const auto snap = metrics::snapshot();
            (void)metrics::render_prometheus(snap);
            (void)metrics::render_json(snap);
            std::this_thread::yield();
        }
    });
    go.store(true);
    for (auto &w : writers) {
        w.join();
    }
    done.store(true);
    reader.join();

    EXPECT_EQ(c.value(), c0 + kWriters * kPerWriter);
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, h0 + kWriters * kPerWriter);
    std::uint64_t bucket_total = 0;
    for (const auto b : snap.buckets) {
        bucket_total += b;
    }
    EXPECT_EQ(bucket_total, snap.count);
    metrics::set_enabled(was_enabled);
}

namespace {

/// True when every brace/bracket in @p s closes in order.
bool
balanced_json_delimiters(const std::string &s)
{
    std::vector<char> stack;
    bool in_string = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (in_string) {
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{' || c == '[') {
            stack.push_back(c);
        } else if (c == '}' || c == ']') {
            if (stack.empty()) {
                return false;
            }
            const char open = stack.back();
            stack.pop_back();
            if ((c == '}') != (open == '{')) {
                return false;
            }
        }
    }
    return stack.empty() && !in_string;
}

}  // namespace

TEST(Metrics, RendersPrometheusAndJson)
{
    const bool was_enabled = metrics::enabled();
    metrics::set_enabled(true);
    metrics::counter("test.render.requests").inc(3);
    metrics::gauge("test.render.depth").set(-2);
    metrics::histogram("test.render.lat_ns").record(1000);
    metrics::set_enabled(was_enabled);

    const auto snap = metrics::snapshot();
    const std::string prom = metrics::render_prometheus(snap);
    EXPECT_NE(prom.find("# TYPE bitwave_test_render_requests counter"),
              std::string::npos);
    EXPECT_NE(prom.find("bitwave_test_render_depth -2"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE bitwave_test_render_lat_ns histogram"),
              std::string::npos);
    EXPECT_NE(prom.find("bitwave_test_render_lat_ns_bucket{le=\"+Inf\"}"),
              std::string::npos);
    EXPECT_NE(prom.find("bitwave_test_render_lat_ns_sum 1000"),
              std::string::npos);

    const std::string json = metrics::render_json(snap);
    EXPECT_TRUE(balanced_json_delimiters(json)) << json;
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"test.render.requests\":3"),
              std::string::npos);
    EXPECT_NE(json.find("\"test.render.depth\":-2"), std::string::npos);
    EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

// ------------------------------------------------------------- trace ---

namespace {

std::atomic<std::uint64_t> g_fake_ns{0};

/// Deterministic test clock: each call advances time by exactly 1 µs.
std::uint64_t
fake_clock()
{
    return g_fake_ns.fetch_add(1000) + 1000;
}

}  // namespace

TEST(Trace, FakeClockPinsSpanStructureExactly)
{
    trace::stop();
    trace::clear();
    g_fake_ns.store(0);
    trace::set_clock(&fake_clock);
    trace::start();
    {
        trace::Span outer("test.outer", "test");  // now_ns -> 1000
        outer.arg("answer", 42);
        trace::instant("test.mark", "test", "k", 7);  // now_ns -> 2000
    }  // destructor: now_ns -> 3000
    trace::stop();
    trace::set_clock(nullptr);

    const auto events = trace::snapshot_events();
    ASSERT_EQ(events.size(), 2u);
    const trace::Event &outer = events[0];
    EXPECT_STREQ(outer.name, "test.outer");
    EXPECT_STREQ(outer.cat, "test");
    EXPECT_EQ(outer.phase, 'X');
    EXPECT_EQ(outer.ts_ns, 1000u);
    EXPECT_EQ(outer.dur_ns, 2000u);
    EXPECT_STREQ(outer.arg0_name, "answer");
    EXPECT_EQ(outer.arg0, 42u);
    const trace::Event &mark = events[1];
    EXPECT_STREQ(mark.name, "test.mark");
    EXPECT_EQ(mark.phase, 'i');
    EXPECT_EQ(mark.ts_ns, 2000u);
    EXPECT_EQ(mark.arg0, 7u);
    trace::clear();
}

TEST(Trace, DisarmedSpansRecordNothing)
{
    trace::stop();
    trace::clear();
    {
        trace::Span span("test.disarmed", "test");
        span.arg("x", 1);
        trace::instant("test.disarmed_mark", "test");
    }
    EXPECT_TRUE(trace::snapshot_events().empty());
    EXPECT_EQ(trace::dropped_events(), 0u);
}

TEST(Trace, RingWrapsKeepNewestEventsAndCountDrops)
{
    trace::stop();
    trace::clear();
    trace::set_ring_capacity(8);
    trace::start();
    // A fresh thread gets the small ring; 20 instants into 8 slots.
    std::thread([] {
        for (int i = 0; i < 20; ++i) {
            trace::instant("test.wrap", "test", "i",
                           static_cast<std::uint64_t>(i));
        }
    }).join();
    trace::stop();
    trace::set_ring_capacity(32768);

    EXPECT_EQ(trace::dropped_events(), 12u);
    std::vector<std::uint64_t> kept;
    for (const auto &event : trace::snapshot_events()) {
        if (std::string(event.name) == "test.wrap") {
            kept.push_back(event.arg0);
        }
    }
    ASSERT_EQ(kept.size(), 8u);  // the newest 8 survive, in order
    for (std::size_t i = 0; i < kept.size(); ++i) {
        EXPECT_EQ(kept[i], 12u + i);
    }
    trace::clear();
}

TEST(Trace, WriteJsonEmitsWellFormedChromeTrace)
{
    trace::stop();
    trace::clear();
    g_fake_ns.store(0);
    trace::set_clock(&fake_clock);
    trace::start();
    {
        trace::Span span("test.json_span", "test");
        span.arg("x", 1);
    }
    trace::instant("test.json_mark", "test");
    trace::stop();
    trace::set_clock(nullptr);

    const std::string path = "test_trace_out.json";
    EXPECT_EQ(trace::write_json(path), 2u);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    std::remove(path.c_str());

    EXPECT_TRUE(balanced_json_delimiters(content)) << content;
    EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(content.find("\"test.json_span\""), std::string::npos);
    EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(content.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(content.find("\"displayTimeUnit\""), std::string::npos);
    trace::clear();
}

TEST(Trace, ConcurrentWritersAgainstSnapshotsLoseNothing)
{
    trace::stop();
    trace::clear();
    trace::start();
    constexpr int kWriters = 4;
    constexpr int kPerWriter = 2000;
    std::atomic<bool> go{false};
    std::atomic<bool> done{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; ++t) {
        writers.emplace_back([&] {
            while (!go.load()) {
                std::this_thread::yield();
            }
            for (int i = 0; i < kPerWriter; ++i) {
                trace::Span span("test.churn", "test");
                span.arg("i", static_cast<std::uint64_t>(i));
            }
        });
    }
    std::thread reader([&] {
        while (!done.load()) {
            (void)trace::snapshot_events();
            std::this_thread::yield();
        }
    });
    go.store(true);
    for (auto &w : writers) {
        w.join();
    }
    done.store(true);
    reader.join();
    trace::stop();

    std::size_t churn = 0;
    for (const auto &event : trace::snapshot_events()) {
        if (std::string(event.name) == "test.churn") {
            ++churn;
        }
    }
    // Rings are large enough (32768 per thread) that nothing wrapped.
    EXPECT_EQ(churn + trace::dropped_events(),
              static_cast<std::size_t>(kWriters) * kPerWriter);
    EXPECT_EQ(trace::dropped_events(), 0u);
    trace::clear();
}

}  // namespace
}  // namespace bitwave
