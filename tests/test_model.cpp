/**
 * @file
 * Tests for the analytical accelerator models: configuration invariants,
 * Eq. (1)-(5) behaviour, and the paper's headline orderings (Figs. 13-17)
 * as *shape* assertions on the four benchmark networks.
 */
#include <gtest/gtest.h>

#include <iterator>
#include <map>

#include "bitflip/bitflip.hpp"
#include "eval/scenario.hpp"
#include "model/accelerator.hpp"
#include "model/performance.hpp"
#include "nn/workloads.hpp"

namespace bitwave {
namespace {

/// Model a workload on an accelerator (helper).
WorkloadResult
run(const AcceleratorConfig &cfg, WorkloadId id)
{
    return AcceleratorModel(cfg).model_workload(get_workload(id));
}

/// Bit-Flip all layers of a workload to a uniform zero-column target,
/// via the process-wide preparation cache (validated by test_eval's
/// PrepCache suite) so the many figure tests sharing one (net, g, z)
/// combination flip each tensor once per process.
std::vector<Int8Tensor>
flip_all(const Workload &w, int group, int zero_cols)
{
    std::vector<Int8Tensor> out;
    out.reserve(w.layers.size());
    for (const auto &l : w.layers) {
        const auto prepared = eval::cached_bitflip(
            l.weights, l.weights_hash, group, zero_cols);
        out.push_back(prepared ? *prepared : l.weights);
    }
    return out;
}

TEST(Config, PeakThroughputEquivalence)
{
    // All baselines are normalized to 512 8bx8b MAC/cycle.
    EXPECT_EQ(make_huaa().peak_macs_per_cycle(), 512);
    EXPECT_EQ(make_stripes().peak_macs_per_cycle(), 512);
    EXPECT_EQ(make_pragmatic().peak_macs_per_cycle(), 512);
    EXPECT_EQ(make_bitlet().peak_macs_per_cycle(), 512);
    EXPECT_EQ(make_scnn().peak_macs_per_cycle(), 512);
    EXPECT_EQ(
        make_bitwave(BitWaveVariant::kDfSm).peak_macs_per_cycle(), 512);
}

TEST(Config, VariantsDifferOnlyAsDocumented)
{
    const auto df = make_bitwave(BitWaveVariant::kDynamicDf);
    const auto sm = make_bitwave(BitWaveVariant::kDfSm);
    EXPECT_EQ(df.sparsity, SparsityMode::kNone);
    EXPECT_EQ(sm.sparsity, SparsityMode::kWeightBitColumn);
    EXPECT_FALSE(df.compress_weights);
    EXPECT_TRUE(sm.compress_weights);
    EXPECT_EQ(df.dataflows.size(), 7u);
}

TEST(Model, EnergyComponentsSumToTotal)
{
    const auto r = run(make_bitwave(BitWaveVariant::kDfSm),
                       WorkloadId::kCnnLstm);
    EXPECT_NEAR(r.energy.total_pj,
                r.energy.mac_pj + r.energy.sram_pj + r.energy.reg_pj +
                    r.energy.dram_pj + r.energy.static_pj,
                r.energy.total_pj * 1e-9);
    EXPECT_EQ(r.layers.size(),
              get_workload(WorkloadId::kCnnLstm).layers.size());
}

TEST(Model, TotalCyclesAtLeastComputeCycles)
{
    const auto r = run(make_bitwave(BitWaveVariant::kDfSm),
                       WorkloadId::kCnnLstm);
    for (const auto &l : r.layers) {
        EXPECT_GE(l.total_cycles, l.compute_cycles) << l.layer_name;
    }
}

TEST(Model, CompressionShrinksBitwaveWeightTraffic)
{
    const auto sm = run(make_bitwave(BitWaveVariant::kDfSm),
                        WorkloadId::kCnnLstm);
    for (const auto &l : sm.layers) {
        EXPECT_LT(l.weight_fetch_ratio, 1.0) << l.layer_name;
    }
}

// ----- Fig. 13: incremental speedup breakdown ---------------------------

class Fig13Shape : public ::testing::TestWithParam<WorkloadId>
{
};

TEST_P(Fig13Shape, EachTechniqueHelpsOrIsNeutral)
{
    const auto id = GetParam();
    const auto &w = get_workload(id);
    const auto dense = run(make_bitwave(BitWaveVariant::kDenseSu), id);
    const auto df = run(make_bitwave(BitWaveVariant::kDynamicDf), id);
    const auto sm = run(make_bitwave(BitWaveVariant::kDfSm), id);
    const auto flipped = flip_all(w, 16, 4);
    const auto bf = AcceleratorModel(make_bitwave(BitWaveVariant::kDfSmBf))
                        .model_workload(w, &flipped);

    EXPECT_GE(dense.total_cycles / df.total_cycles, 0.98)
        << "DF should not hurt";
    EXPECT_GE(df.total_cycles / sm.total_cycles, 0.95)
        << "SM should not hurt";
    EXPECT_GT(sm.total_cycles / bf.total_cycles, 1.0)
        << "BF must add speedup";
    EXPECT_GT(dense.total_cycles / bf.total_cycles, 1.2)
        << "combined speedup must be material";
}

INSTANTIATE_TEST_SUITE_P(AllNets, Fig13Shape,
                         ::testing::ValuesIn(kAllWorkloads));

TEST(Fig13, DynamicDataflowHelpsMobileNetMost)
{
    // Paper: MobileNetV2's diverse layer shapes benefit most from DF.
    auto gain = [](WorkloadId id) {
        return run(make_bitwave(BitWaveVariant::kDenseSu), id).total_cycles /
            run(make_bitwave(BitWaveVariant::kDynamicDf), id).total_cycles;
    };
    EXPECT_GT(gain(WorkloadId::kMobileNetV2),
              gain(WorkloadId::kBertBase));
    EXPECT_GT(gain(WorkloadId::kMobileNetV2),
              gain(WorkloadId::kResNet18));
}

TEST(Fig13, SignMagnitudeHelpsCnnLstmMostAndBertLeast)
{
    auto gain = [](WorkloadId id) {
        return run(make_bitwave(BitWaveVariant::kDynamicDf), id)
                   .total_cycles /
            run(make_bitwave(BitWaveVariant::kDfSm), id).total_cycles;
    };
    const double lstm = gain(WorkloadId::kCnnLstm);
    const double bert = gain(WorkloadId::kBertBase);
    EXPECT_GT(lstm, 1.4);  // paper: 1.75x
    EXPECT_LT(bert, 1.2);  // paper: 1.06x
    EXPECT_GT(lstm, bert);
}

TEST(Fig13, BitFlipRescuesBert)
{
    // BERT gains little from SM alone but substantially from Bit-Flip
    // (paper: 1.06x vs +2.67x).
    const auto id = WorkloadId::kBertBase;
    const auto &w = get_workload(id);
    const auto sm = run(make_bitwave(BitWaveVariant::kDfSm), id);
    const auto flipped = flip_all(w, 16, 5);
    const auto bf = AcceleratorModel(make_bitwave(BitWaveVariant::kDfSmBf))
                        .model_workload(w, &flipped);
    EXPECT_GT(sm.total_cycles / bf.total_cycles, 1.5);
}

// ----- Fig. 14/15/17: cross-accelerator orderings ------------------------

class SotaOrdering : public ::testing::TestWithParam<WorkloadId>
{
  protected:
    struct All
    {
        WorkloadResult scnn, stripes, pragmatic, bitlet, huaa, bitwave;
    };

    static All run_all(WorkloadId id)
    {
        const auto &w = get_workload(id);
        const auto flipped = flip_all(w, 16, 4);
        All a{run(make_scnn(), id),
              run(make_stripes(), id),
              run(make_pragmatic(), id),
              run(make_bitlet(), id),
              run(make_huaa(), id),
              AcceleratorModel(make_bitwave(BitWaveVariant::kDfSmBf))
                  .model_workload(w, &flipped)};
        return a;
    }
};

TEST_P(SotaOrdering, BitwaveIsFastest)
{
    const auto a = run_all(GetParam());
    EXPECT_LT(a.bitwave.total_cycles, a.scnn.total_cycles);
    EXPECT_LT(a.bitwave.total_cycles, a.stripes.total_cycles);
    EXPECT_LT(a.bitwave.total_cycles, a.pragmatic.total_cycles);
    EXPECT_LT(a.bitwave.total_cycles, a.bitlet.total_cycles);
    EXPECT_LT(a.bitwave.total_cycles, a.huaa.total_cycles);
}

TEST_P(SotaOrdering, BitwaveIsMostEnergyEfficient)
{
    const auto a = run_all(GetParam());
    EXPECT_LT(a.bitwave.energy.total_pj, a.scnn.energy.total_pj);
    EXPECT_LT(a.bitwave.energy.total_pj, a.stripes.energy.total_pj);
    EXPECT_LT(a.bitwave.energy.total_pj, a.pragmatic.energy.total_pj);
    EXPECT_LT(a.bitwave.energy.total_pj, a.bitlet.energy.total_pj);
    EXPECT_LT(a.bitwave.energy.total_pj, a.huaa.energy.total_pj);
}

TEST_P(SotaOrdering, BitSparsityBeatsNoSparsityAmongBitSerial)
{
    // Pragmatic/Bitlet (bit skipping) never lose to Stripes (no skip).
    const auto a = run_all(GetParam());
    EXPECT_LE(a.pragmatic.total_cycles, a.stripes.total_cycles * 1.001);
    EXPECT_LE(a.bitlet.total_cycles, a.stripes.total_cycles * 1.001);
}

INSTANTIATE_TEST_SUITE_P(AllNets, SotaOrdering,
                         ::testing::ValuesIn(kAllWorkloads));

TEST(Fig14, SpeedupOverScnnMatchesPaperAnchors)
{
    // The headline Fig. 14 bars under the paper's protocol (Bit-Flip on
    // the weight-heaviest 80 % of parameters, G = 16, 5 zero columns):
    // BitWave 10.1x over SCNN on CNN-LSTM and 13.25x on Bert-Base. The
    // SCNN calibration (value_imbalance, planar-crossbar starvation) is
    // pinned to these anchors within a +-20 % reproduction tolerance.
    struct Anchor { WorkloadId id; double speedup; };
    const Anchor anchors[] = {{WorkloadId::kCnnLstm, 10.1},
                              {WorkloadId::kBertBase, 13.25}};
    for (const auto &anchor : anchors) {
        const auto &w = get_workload(anchor.id);
        const auto flipped = eval::flip_heavy_layers(w, 0.8, 16, 5);
        const auto bw =
            AcceleratorModel(make_bitwave(BitWaveVariant::kDfSmBf))
                .model_workload(w, &flipped);
        const auto scnn = run(make_scnn(), anchor.id);
        const double speedup = scnn.total_cycles / bw.total_cycles;
        EXPECT_NEAR(speedup / anchor.speedup, 1.0, 0.20)
            << workload_name(anchor.id) << ": " << speedup << "x vs paper "
            << anchor.speedup << "x";
    }
}

TEST(Fig14, ScnnCollapsesOnLowValueSparsityNetworks)
{
    // Paper: 10.1x / 13.25x over SCNN on CNN-LSTM / BERT — the headline
    // result. Require at least ~5x in the reproduction.
    for (auto id : {WorkloadId::kCnnLstm, WorkloadId::kBertBase}) {
        const auto &w = get_workload(id);
        const auto flipped = flip_all(w, 16, 4);
        const auto bw =
            AcceleratorModel(make_bitwave(BitWaveVariant::kDfSmBf))
                .model_workload(w, &flipped);
        const auto scnn = run(make_scnn(), id);
        EXPECT_GT(scnn.total_cycles / bw.total_cycles, 5.0)
            << workload_name(id);
    }
}

TEST(Fig15, EnergyVsBitwaveMatchesPaperAnchors)
{
    // The headline Fig. 15 bars under the paper's protocol (the same
    // heavy-layer Bit-Flip configuration the Fig. 14 anchors use):
    // SCNN burns 13.23x BitWave's energy on Bert-Base, every baseline
    // lands in 4.09-5.04x on MobileNetV2, and HUAA averages 2.41x
    // across the benchmark networks. The energy-side calibration
    // (accumulator-bank RMW, crossbar-conflict replays, layer-
    // sequential spills, lane overheads) is pinned to these anchors
    // within the same +-20 % reproduction tolerance as Fig. 14.
    // One BitWave denominator per workload, reused by every anchor.
    std::map<WorkloadId, double> bw_energy;
    for (auto id : kAllWorkloads) {
        const auto &w = get_workload(id);
        const auto flipped = eval::flip_heavy_layers(w, 0.8, 16, 5);
        bw_energy[id] =
            AcceleratorModel(make_bitwave(BitWaveVariant::kDfSmBf))
                .model_workload(w, &flipped)
                .energy.total_pj;
    }

    const double scnn_bert =
        run(make_scnn(), WorkloadId::kBertBase).energy.total_pj /
        bw_energy[WorkloadId::kBertBase];
    EXPECT_NEAR(scnn_bert / 13.23, 1.0, 0.20)
        << "SCNN/Bert-Base: " << scnn_bert << "x vs paper 13.23x";

    const AcceleratorConfig baselines[] = {make_scnn(), make_stripes(),
                                           make_pragmatic(), make_bitlet(),
                                           make_huaa()};
    for (const auto &cfg : baselines) {
        const double ratio =
            run(cfg, WorkloadId::kMobileNetV2).energy.total_pj /
            bw_energy[WorkloadId::kMobileNetV2];
        EXPECT_GT(ratio, 4.09 * 0.80) << cfg.name << " on MobileNetV2";
        EXPECT_LT(ratio, 5.04 * 1.20) << cfg.name << " on MobileNetV2";
    }

    double huaa_sum = 0.0;
    for (auto id : kAllWorkloads) {
        huaa_sum +=
            run(make_huaa(), id).energy.total_pj / bw_energy[id];
    }
    const double huaa_avg = huaa_sum / std::size(kAllWorkloads);
    EXPECT_NEAR(huaa_avg / 2.41, 1.0, 0.20)
        << "HUAA average: " << huaa_avg << "x vs paper 2.41x";
}

TEST(Fig16, BreakdownShapesMatchPaper)
{
    // Breakdown shapes after the energy recalibration: the uncompressed
    // baselines stream every weight bit through DRAM, which stays their
    // single dominant component on the weight-heavy net; SCNN's Bert
    // blowup is on-chip churn (crossbar replays + accumulator banks),
    // not DRAM; and BitWave's on-chip energy is MAC+SRAM-dominated
    // (datapath and stream traffic, not registers or idle clocks).
    for (const auto &cfg : {make_stripes(), make_huaa()}) {
        const auto r = run(cfg, WorkloadId::kBertBase);
        EXPECT_GT(r.energy.dram_pj, 0.5 * r.energy.total_pj) << cfg.name;
    }
    const auto scnn = run(make_scnn(), WorkloadId::kBertBase);
    EXPECT_GT(scnn.energy.mac_pj + scnn.energy.sram_pj,
              scnn.energy.dram_pj);
    const auto bw = run(make_bitwave(BitWaveVariant::kDfSm),
                        WorkloadId::kResNet18);
    EXPECT_GT(bw.energy.mac_pj + bw.energy.sram_pj,
              bw.energy.reg_pj + bw.energy.static_pj);
}

TEST(Fig15, ScnnIsLeastEnergyEfficientOnWeightHeavyNets)
{
    const auto id = WorkloadId::kBertBase;
    const auto scnn = run(make_scnn(), id);
    const auto stripes = run(make_stripes(), id);
    const auto huaa = run(make_huaa(), id);
    EXPECT_GT(scnn.energy.total_pj, stripes.energy.total_pj);
    EXPECT_GT(scnn.energy.total_pj, huaa.energy.total_pj);
}

TEST(Fig16, DramDominatesWeightHeavyNetworks)
{
    const auto r = run(make_bitwave(BitWaveVariant::kDfSm),
                       WorkloadId::kBertBase);
    EXPECT_GT(r.energy.dram_pj / r.energy.total_pj, 0.5);
}

TEST(Fig17, EfficiencyOrderingMatchesPaper)
{
    // BitWave has the best TOPS/W on every benchmark (Fig. 17).
    for (auto id : kAllWorkloads) {
        const auto &w = get_workload(id);
        const auto flipped = flip_all(w, 16, 4);
        const auto bw =
            AcceleratorModel(make_bitwave(BitWaveVariant::kDfSmBf))
                .model_workload(w, &flipped);
        for (const auto &other :
             {run(make_scnn(), id), run(make_stripes(), id),
              run(make_pragmatic(), id), run(make_bitlet(), id),
              run(make_huaa(), id)}) {
            EXPECT_GT(bw.tops_per_watt(), other.tops_per_watt())
                << workload_name(id) << " vs " << other.accelerator;
        }
    }
}

}  // namespace
}  // namespace bitwave
