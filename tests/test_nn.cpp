/**
 * @file
 * Tests for layer descriptors, workload builders, synthesis statistics,
 * reference kernels, and the accuracy proxy.
 */
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "common/rng.hpp"
#include "nn/accuracy.hpp"
#include "nn/reference.hpp"
#include "nn/synthesis.hpp"
#include "nn/workload_io.hpp"
#include "nn/workloads.hpp"
#include "sparsity/bitcolumn.hpp"
#include "sparsity/stats.hpp"

namespace bitwave {
namespace {

// ------------------------------------------------------------- layers ---

TEST(Layer, ConvMacAndWeightCounts)
{
    const auto d = make_conv("c", 64, 32, 28, 28, 3, 3);
    EXPECT_EQ(d.macs(), 64LL * 32 * 28 * 28 * 9);
    EXPECT_EQ(d.weight_count(), 64LL * 32 * 9);
    EXPECT_EQ(d.output_count(), 64LL * 28 * 28);
    EXPECT_EQ(d.ix(), 30);
}

TEST(Layer, StridedConvInputExtent)
{
    const auto d = make_conv("c", 64, 3, 112, 112, 7, 7, 2);
    EXPECT_EQ(d.ix(), 111 * 2 + 7);
}

TEST(Layer, DepthwiseHasUnitC)
{
    const auto d = make_depthwise("dw", 96, 56, 56, 3);
    EXPECT_EQ(d.c, 1);
    EXPECT_EQ(d.macs(), 96LL * 56 * 56 * 9);
    EXPECT_EQ(d.weight_count(), 96LL * 9);
}

TEST(Layer, LinearAndLstmShapes)
{
    const auto fc = make_linear("fc", 1000, 512, 4);
    EXPECT_EQ(fc.macs(), 4LL * 1000 * 512);
    const auto lstm = make_lstm("l", 256, 128, 10);
    EXPECT_EQ(lstm.k, 1024);
    EXPECT_EQ(lstm.c, 384);
    EXPECT_EQ(lstm.macs(), 10LL * 1024 * 384);
}

// ----------------------------------------------------------- workloads ---

TEST(Workloads, ResNet18MatchesPublishedSize)
{
    const auto &w = get_workload(WorkloadId::kResNet18);
    // 11.7M params / 1.8 GMACs for 224x224 (Fig. 12 left).
    EXPECT_NEAR(static_cast<double>(w.total_weights()), 11.7e6, 0.2e6);
    EXPECT_NEAR(static_cast<double>(w.total_macs()), 1.81e9, 0.05e9);
    EXPECT_EQ(w.layers.size(), 21u);  // 17 convs + 3 downsamples + fc
}

TEST(Workloads, MobileNetV2MatchesPublishedSize)
{
    const auto &w = get_workload(WorkloadId::kMobileNetV2);
    EXPECT_NEAR(static_cast<double>(w.total_weights()), 3.47e6, 0.1e6);
    EXPECT_NEAR(static_cast<double>(w.total_macs()), 0.3e9, 0.02e9);
}

TEST(Workloads, MobileNetV2HasDepthwiseAndPointwise)
{
    const auto &w = get_workload(WorkloadId::kMobileNetV2);
    int dw = 0, pw = 0;
    for (const auto &l : w.layers) {
        dw += l.desc.kind == LayerKind::kDepthwiseConv;
        pw += l.desc.kind == LayerKind::kPointwiseConv;
    }
    EXPECT_EQ(dw, 17);  // 1 + 16 inverted-residual repeats
    EXPECT_GE(pw, 33);
}

TEST(Workloads, CnnLstmIsLstmDominated)
{
    const auto &w = get_workload(WorkloadId::kCnnLstm);
    std::int64_t lstm_weights = 0;
    for (const auto &l : w.layers) {
        if (l.desc.kind == LayerKind::kLstm) {
            lstm_weights += l.desc.weight_count();
        }
    }
    // Paper: LSTM.0 + LSTM.1 hold ~80 % of the weights.
    const double share = static_cast<double>(lstm_weights) /
        static_cast<double>(w.total_weights());
    EXPECT_GT(share, 0.75);
    EXPECT_LT(share, 0.95);
}

TEST(Workloads, BertBaseMatchesPublishedSize)
{
    const auto &w = get_workload(WorkloadId::kBertBase);
    // 12 x 7.08M encoder weights (embeddings excluded; not compute).
    EXPECT_NEAR(static_cast<double>(w.total_weights()), 85e6, 1e6);
    EXPECT_EQ(w.layers.size(), 72u);  // 12 layers x 6 projections
    for (const auto &l : w.layers) {
        EXPECT_EQ(l.desc.batch, 4) << "token size 4 per Fig. 13";
    }
}

TEST(Workloads, WeightShapesMatchDescriptors)
{
    for (auto id : kAllWorkloads) {
        const auto &w = get_workload(id);
        for (const auto &l : w.layers) {
            EXPECT_EQ(l.weights.shape(),
                      WorkloadLayer::weight_shape(l.desc))
                << w.name << "/" << l.desc.name;
        }
    }
}

TEST(Workloads, BuildersAreDeterministic)
{
    const auto a = build_cnn_lstm(123);
    const auto b = build_cnn_lstm(123);
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t i = 0; i < a.layers.size(); ++i) {
        EXPECT_EQ(a.layers[i].weights, b.layers[i].weights);
    }
    // Per-layer seed streams: content hashes are populated and seeds
    // actually matter.
    EXPECT_NE(a.content_hash, 0u);
    EXPECT_EQ(a.content_hash, b.content_hash);
    EXPECT_NE(a.content_hash, build_cnn_lstm(124).content_hash);
    for (const auto &layer : a.layers) {
        EXPECT_NE(layer.weights_hash, 0u);
        EXPECT_EQ(layer.weights_hash, layer.compute_weights_hash());
    }
}

TEST(WorkloadIo, SaveLoadRoundTripIsLossless)
{
    // Cold-vs-warm equivalence of the on-disk synthesis cache: a load
    // must reproduce the built workload exactly.
    const Workload built = build_cnn_lstm(7, /*timesteps=*/4);
    const std::string path =
        ::testing::TempDir() + "/bitwave_roundtrip.bwl";
    ASSERT_TRUE(save_workload(built, path));

    Workload loaded;
    ASSERT_TRUE(load_workload(path, &loaded));
    EXPECT_EQ(loaded.name, built.name);
    EXPECT_EQ(loaded.metric_name, built.metric_name);
    EXPECT_DOUBLE_EQ(loaded.base_metric, built.base_metric);
    EXPECT_DOUBLE_EQ(loaded.error_sensitivity, built.error_sensitivity);
    EXPECT_EQ(loaded.content_hash, built.content_hash);
    ASSERT_EQ(loaded.layers.size(), built.layers.size());
    for (std::size_t i = 0; i < built.layers.size(); ++i) {
        EXPECT_EQ(loaded.layers[i].desc.name, built.layers[i].desc.name);
        EXPECT_EQ(loaded.layers[i].desc.kind, built.layers[i].desc.kind);
        EXPECT_EQ(loaded.layers[i].weights, built.layers[i].weights);
        EXPECT_EQ(loaded.layers[i].weights_hash,
                  built.layers[i].weights_hash);
        EXPECT_DOUBLE_EQ(loaded.layers[i].activation_sparsity,
                         built.layers[i].activation_sparsity);
    }
    std::remove(path.c_str());
}

TEST(WorkloadIo, LoadRejectsMissingAndCorruptFiles)
{
    Workload out;
    EXPECT_FALSE(load_workload("/nonexistent/nowhere.bwl", &out));

    // A truncated file (as a crashed writer without the atomic rename
    // would have produced) must fail soft, not crash or half-load.
    const Workload built = build_cnn_lstm(7, /*timesteps=*/4);
    const std::string path =
        ::testing::TempDir() + "/bitwave_truncated.bwl";
    ASSERT_TRUE(save_workload(built, path));
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(std::remove(path.c_str()), 0);
    f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::vector<char> prefix(static_cast<std::size_t>(size / 2));
    // Rewrite only the first half of a valid file.
    {
        const std::string full =
            ::testing::TempDir() + "/bitwave_full.bwl";
        ASSERT_TRUE(save_workload(built, full));
        std::FILE *src = std::fopen(full.c_str(), "rb");
        ASSERT_NE(src, nullptr);
        ASSERT_EQ(std::fread(prefix.data(), 1, prefix.size(), src),
                  prefix.size());
        std::fclose(src);
        std::remove(full.c_str());
    }
    ASSERT_EQ(std::fwrite(prefix.data(), 1, prefix.size(), f),
              prefix.size());
    std::fclose(f);
    EXPECT_FALSE(load_workload(path, &out));
    std::remove(path.c_str());
}

TEST(WorkloadIo, CachePathIsStable)
{
    EXPECT_EQ(workload_cache_path("/tmp/cache", "CNN-LSTM", 0x5eed),
              "/tmp/cache/CNN-LSTM-seed0000000000005eed-v3.bwl");
}

TEST(WorkloadIo, CachedLoadRemovesInvalidEntriesAndRecovers)
{
    // Regression: a corrupt cache entry (crashed writer predating the
    // atomic rename, disk corruption) used to stay on disk and fail
    // every cold start. load_cached_workload() must fail soft, unlink
    // the entry, and let a rewritten entry load normally.
    const Workload built = build_cnn_lstm(7, /*timesteps=*/4);
    const std::string path =
        ::testing::TempDir() + "/bitwave_cached_entry.bwl";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char garbage[] = "not a workload file";
        ASSERT_EQ(std::fwrite(garbage, 1, sizeof garbage, f),
                  sizeof garbage);
        std::fclose(f);
    }
    Workload out;
    EXPECT_FALSE(load_cached_workload(path, &out));
    std::FILE *gone = std::fopen(path.c_str(), "rb");
    EXPECT_EQ(gone, nullptr) << "invalid entry must be unlinked";
    if (gone != nullptr) {
        std::fclose(gone);
    }

    ASSERT_TRUE(save_workload(built, path));
    EXPECT_TRUE(load_cached_workload(path, &out));
    EXPECT_EQ(out.content_hash, built.content_hash);
    std::remove(path.c_str());

    // Missing files fail soft without inventing an unlink.
    EXPECT_FALSE(load_cached_workload("/nonexistent/nowhere.bwl", &out));
}

TEST(WorkloadIo, ChecksumDetectsSingleBitCorruption)
{
    // v3 seals every entry with a trailing FNV-1a checksum: flipping
    // any one byte of the image — including deep inside the weight
    // payload, where v2's field validation could not look — must be
    // detected, counted as corruption, and evicted.
    const Workload built = build_cnn_lstm(7, /*timesteps=*/4);
    const std::string path =
        ::testing::TempDir() + "/bitwave_bitrot.bwl";
    ASSERT_TRUE(save_workload(built, path));

    long size = 0;
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        size = std::ftell(f);
        // Flip one bit in the middle of the image (weight bytes).
        std::fseek(f, size / 2, SEEK_SET);
        const int byte = std::fgetc(f);
        ASSERT_NE(byte, EOF);
        std::fseek(f, size / 2, SEEK_SET);
        std::fputc(byte ^ 0x01, f);
        std::fclose(f);
    }

    const WorkloadIoCounters before = workload_io_counters();
    Workload out;
    EXPECT_FALSE(load_cached_workload(path, &out));
    const WorkloadIoCounters after = workload_io_counters();
    EXPECT_EQ(after.corruption_detected, before.corruption_detected + 1);
    EXPECT_EQ(after.entries_unlinked, before.entries_unlinked + 1);
    std::FILE *gone = std::fopen(path.c_str(), "rb");
    EXPECT_EQ(gone, nullptr) << "corrupt entry must be unlinked";
    if (gone != nullptr) {
        std::fclose(gone);
    }

    // Resynthesis path: a rewritten entry loads normally again.
    ASSERT_TRUE(save_workload(built, path));
    EXPECT_TRUE(load_cached_workload(path, &out));
    EXPECT_EQ(out.content_hash, built.content_hash);
    std::remove(path.c_str());
}

TEST(WorkloadIo, ChecksumDetectsTruncation)
{
    // A torn write (no atomic rename, power loss mid-copy): any prefix
    // of a valid image must fail the checksum, not half-parse.
    const Workload built = build_cnn_lstm(5, /*timesteps=*/2);
    const std::string path =
        ::testing::TempDir() + "/bitwave_torn.bwl";
    ASSERT_TRUE(save_workload(built, path));
    std::vector<char> image;
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        image.resize(static_cast<std::size_t>(std::ftell(f)));
        std::fseek(f, 0, SEEK_SET);
        ASSERT_EQ(std::fread(image.data(), 1, image.size(), f),
                  image.size());
        std::fclose(f);
    }
    Workload out;
    for (const std::size_t keep :
         {image.size() - 1, image.size() / 2, std::size_t{7}}) {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(image.data(), 1, keep, f), keep);
        std::fclose(f);
        EXPECT_FALSE(load_workload(path, &out))
            << "torn prefix of " << keep << " bytes must not load";
    }
    std::remove(path.c_str());
}

TEST(WorkloadIo, TransientReadFaultKeepsEntry)
{
    // An injected transient read failure must NOT evict the (perfectly
    // valid) cache entry: only corruption unlinks. Once the fault
    // clears, the same entry loads normally.
    const Workload built = build_cnn_lstm(5, /*timesteps=*/2);
    const std::string path =
        ::testing::TempDir() + "/bitwave_transient.bwl";
    ASSERT_TRUE(save_workload(built, path));

    fault::configure("workload_io.read=1:transient", /*seed=*/1);
    const WorkloadIoCounters before = workload_io_counters();
    Workload out;
    EXPECT_FALSE(load_cached_workload(path, &out));
    fault::reset();
    const WorkloadIoCounters after = workload_io_counters();
    EXPECT_EQ(after.read_faults, before.read_faults + 1);
    EXPECT_EQ(after.entries_unlinked, before.entries_unlinked);

    EXPECT_TRUE(load_cached_workload(path, &out))
        << "entry must survive a transient read failure";
    EXPECT_EQ(out.content_hash, built.content_hash);
    std::remove(path.c_str());
}

TEST(WorkloadIo, WriteFaultFailsSoft)
{
    // An injected write failure is a cold miss, not an error: save
    // reports false, counts it, and leaves no file behind.
    const Workload built = build_cnn_lstm(5, /*timesteps=*/2);
    const std::string path =
        ::testing::TempDir() + "/bitwave_failed_save.bwl";
    fault::configure("workload_io.write=1:transient", /*seed=*/1);
    const WorkloadIoCounters before = workload_io_counters();
    EXPECT_FALSE(save_workload(built, path));
    fault::reset();
    const WorkloadIoCounters after = workload_io_counters();
    EXPECT_EQ(after.save_failures, before.save_failures + 1);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_EQ(f, nullptr);
    if (f != nullptr) {
        std::fclose(f);
    }
}

TEST(WorkloadIo, StaleTempFileCleanup)
{
    // Writers publish via `<path>.tmp.<pid>` + rename; a crashed writer
    // leaks the temp. The cache cold path sweeps temps older than the
    // age cutoff and must leave fresh temps (a live concurrent writer)
    // and real entries alone.
    const std::string dir = ::testing::TempDir() + "/bitwave_tmp_sweep";
    ASSERT_EQ(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST, true);
    const std::string leaked = dir + "/entry.bwl.tmp.12345";
    const std::string entry = dir + "/entry.bwl";
    for (const auto &p : {leaked, entry}) {
        std::FILE *f = std::fopen(p.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("x", f);
        std::fclose(f);
    }

    // Generous cutoff: the just-written temp is fresh, nothing goes.
    EXPECT_EQ(remove_stale_temp_files(dir, /*max_age_seconds=*/3600.0), 0);
    // Zero cutoff: every temp is stale; the published entry survives.
    EXPECT_EQ(remove_stale_temp_files(dir, /*max_age_seconds=*/0.0), 1);
    std::FILE *f = std::fopen(leaked.c_str(), "rb");
    EXPECT_EQ(f, nullptr);
    if (f != nullptr) {
        std::fclose(f);
    }
    f = std::fopen(entry.c_str(), "rb");
    ASSERT_NE(f, nullptr) << "published entries must never be swept";
    std::fclose(f);

    // Nonexistent directory: soft no-op.
    EXPECT_EQ(remove_stale_temp_files(dir + "/nope", 0.0), 0);

    std::remove(entry.c_str());
    ::rmdir(dir.c_str());
}

TEST(Workloads, LayerIndexLookup)
{
    const auto &w = get_workload(WorkloadId::kResNet18);
    EXPECT_EQ(w.layers[w.layer_index("fc")].desc.name, "fc");
}

// Fig. 1 band check: bit sparsity exceeds value sparsity by roughly an
// order of magnitude, and SM beats 2C, on every benchmark network.
class WorkloadSparsity : public ::testing::TestWithParam<WorkloadId>
{
};

TEST_P(WorkloadSparsity, Fig1SparsityOrdering)
{
    const auto &w = get_workload(GetParam());
    SparsityStats s;
    for (const auto &l : w.layers) {
        s.merge(compute_sparsity(l.weights));
    }
    EXPECT_LT(s.value_sparsity(), 0.15);
    EXPECT_GT(s.bit_sparsity(Representation::kTwosComplement),
              s.value_sparsity());
    EXPECT_GT(s.bit_sparsity(Representation::kSignMagnitude),
              s.bit_sparsity(Representation::kTwosComplement));
    // SR bands of Fig. 1: 5.67-32.5x (2C), 8.73-47.5x (SM); allow margin.
    EXPECT_GT(s.sparsity_ratio(Representation::kTwosComplement), 3.5);
    EXPECT_GT(s.sparsity_ratio(Representation::kSignMagnitude), 5.0);
    EXPECT_LT(s.sparsity_ratio(Representation::kSignMagnitude), 60.0);
}

INSTANTIATE_TEST_SUITE_P(AllNets, WorkloadSparsity,
                         ::testing::ValuesIn(kAllWorkloads));

TEST(Workloads, ResNetConv2MatchesFig4)
{
    // Fig. 4: conv2 of ResNet18, G=4 groups along C: ~20 % zero values,
    // ~17 % zero columns in 2C, ~59 % in SM (3.4x improvement).
    const auto &w = get_workload(WorkloadId::kResNet18);
    const auto &conv2 = w.layers[w.layer_index("l1.0.conv1")];
    const auto s = compute_sparsity(conv2.weights);
    EXPECT_NEAR(s.value_sparsity(), 0.20, 0.08);
    const double c2 =
        analyze_bit_columns(conv2.weights, 4,
                            Representation::kTwosComplement)
            .column_sparsity();
    const double csm =
        analyze_bit_columns(conv2.weights, 4,
                            Representation::kSignMagnitude)
            .column_sparsity();
    EXPECT_NEAR(c2, 0.17, 0.07);
    EXPECT_NEAR(csm, 0.59, 0.08);
    EXPECT_GT(csm / c2, 2.5);
}

TEST(Workloads, BertHasFewZeroColumns)
{
    // Section III-D: the original Int8 BERT has a limited number of zero
    // columns — the reason it needs Bit-Flip.
    const auto &bert = get_workload(WorkloadId::kBertBase);
    BitColumnStats stats;
    for (const auto &l : bert.layers) {
        stats.merge(
            analyze_bit_columns(l.weights, 16,
                                Representation::kSignMagnitude));
    }
    EXPECT_LT(stats.column_sparsity(), 0.15);
}

// ----------------------------------------------------------- synthesis ---

TEST(Synthesis, ZeroProbabilityControlsValueSparsity)
{
    Rng rng(5);
    WeightProfile p;
    p.scale = 20.0;
    p.zero_probability = 0.5;
    p.zero_avoidance = 0.0;
    const auto t = synthesize_weights(make_linear("l", 128, 128), p, rng);
    const auto s = compute_sparsity(t);
    EXPECT_NEAR(s.value_sparsity(), 0.5, 0.05);
}

TEST(Synthesis, ZeroAvoidanceSuppressesZeros)
{
    Rng rng(5);
    WeightProfile p;
    p.scale = 2.0;
    p.zero_probability = 0.0;
    p.zero_avoidance = 1.0;
    const auto t = synthesize_weights(make_linear("l", 64, 64), p, rng);
    EXPECT_EQ(compute_sparsity(t).value_sparsity(), 0.0);
}

TEST(Synthesis, ShardedSynthesisIsThreadInvariant)
{
    // synthesize_weights draws every kernel chunk from its own derived
    // seed stream, so a big layer shards into independent tasks whose
    // output is a pure function of (shape, profile, rng state) — the
    // worker count can never change the bytes.
    WeightProfile p;
    p.scale = 9.0;
    p.zero_probability = 0.04;
    const auto desc = make_linear("ffn", 512, 768);  // multi-chunk layer

    ASSERT_EQ(setenv("BITWAVE_THREADS", "1", 1), 0);
    Rng serial_rng(42);
    const auto serial = synthesize_weights(desc, p, serial_rng);
    ASSERT_EQ(setenv("BITWAVE_THREADS", "4", 1), 0);
    Rng parallel_rng(42);
    const auto parallel = synthesize_weights(desc, p, parallel_rng);
    ASSERT_EQ(unsetenv("BITWAVE_THREADS"), 0);

    EXPECT_EQ(serial, parallel);
    // And the caller's stream advanced identically either way.
    EXPECT_EQ(serial_rng.engine()(), parallel_rng.engine()());
}

TEST(Synthesis, ActivationsRespectReluAndSparsity)
{
    Rng rng(9);
    const auto t = synthesize_activations({4096}, 0.4, 12.0, true, rng);
    int zeros = 0;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        EXPECT_GE(t[i], 0);
        zeros += t[i] == 0;
    }
    EXPECT_NEAR(zeros / 4096.0, 0.4, 0.06);
}

// ----------------------------------------------------- reference kernels ---

TEST(Reference, DotProduct)
{
    const std::int8_t a[4] = {1, -2, 3, 127};
    const std::int8_t b[4] = {5, 6, -7, 127};
    EXPECT_EQ(dot_int8(a, b, 4), 5 - 12 - 21 + 16129);
}

TEST(Reference, Conv1x1MatchesMatmul)
{
    // A 1x1 convolution over a 1x1 feature map is a plain matmul.
    const auto d = make_pointwise("pw", 3, 4, 1, 1);
    Int8Tensor in({1, 4, 1, 1}, {1, 2, 3, 4});
    Int8Tensor wts({3, 1, 1, 4},
                   {1, 0, 0, 0, 0, 1, 0, 0, 1, 1, 1, 1});
    const auto out = conv2d_int8(d, in, wts);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[1], 2);
    EXPECT_EQ(out[2], 10);
}

TEST(Reference, ConvIdentityKernel)
{
    // 3x3 kernel with a single centre 1: output equals the centre crop.
    const auto d = make_conv("c", 1, 1, 2, 2, 3, 3);
    Int8Tensor in({1, 1, 4, 4});
    for (std::int64_t i = 0; i < 16; ++i) {
        in[i] = static_cast<std::int8_t>(i);
    }
    Int8Tensor wts({1, 3, 3, 1});
    wts.at({0, 1, 1, 0}) = 1;
    const auto out = conv2d_int8(d, in, wts);
    EXPECT_EQ(out[0], in.at({0, 0, 1, 1}));
    EXPECT_EQ(out[3], in.at({0, 0, 2, 2}));
}

TEST(Reference, StridedConvSamplesCorrectWindows)
{
    const auto d = make_conv("c", 1, 1, 2, 2, 1, 1, 2);
    Int8Tensor in({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
    Int8Tensor wts({1, 1, 1, 1}, {2});
    const auto out = conv2d_int8(d, in, wts);
    EXPECT_EQ(out[0], 2);
    EXPECT_EQ(out[1], 6);
    EXPECT_EQ(out[2], 14);
    EXPECT_EQ(out[3], 18);
}

TEST(Reference, DepthwiseKeepsChannelsSeparate)
{
    const auto d = make_depthwise("dw", 2, 1, 1, 1);
    Int8Tensor in({1, 2, 1, 1}, {3, 5});
    Int8Tensor wts({2, 1, 1}, {2, -1});
    const auto out = depthwise_conv2d_int8(d, in, wts);
    EXPECT_EQ(out[0], 6);
    EXPECT_EQ(out[1], -5);
}

TEST(Reference, LinearMatchesManual)
{
    const auto d = make_linear("fc", 2, 3, 2);
    Int8Tensor in({2, 3}, {1, 2, 3, 4, 5, 6});
    Int8Tensor wts({2, 3}, {1, 1, 1, -1, 0, 1});
    const auto out = linear_int8(d, in, wts);
    EXPECT_EQ(out[0], 6);
    EXPECT_EQ(out[1], 2);
    EXPECT_EQ(out[2], 15);
    EXPECT_EQ(out[3], 2);
}

TEST(Reference, RequantizeSaturates)
{
    Int32Tensor acc({3}, {1000000, -1000000, 64});
    const auto q = requantize_accumulators(acc, 6);
    EXPECT_EQ(q[0], 127);
    EXPECT_EQ(q[1], -127);
    EXPECT_EQ(q[2], 1);
}

TEST(Reference, LayerForwardDispatch)
{
    Rng rng(3);
    for (auto kind_desc :
         {make_conv("c", 4, 8, 3, 3, 3, 3), make_depthwise("d", 4, 3, 3, 3),
          make_linear("l", 4, 8, 2), make_lstm("m", 4, 8, 2)}) {
        WeightProfile p;
        const auto wts = synthesize_weights(kind_desc, p, rng);
        const auto in = synthesize_activations(
            layer_input_shape(kind_desc), 0.2, 10.0, false, rng);
        const auto out = layer_forward_int8(kind_desc, in, wts);
        EXPECT_GT(out.numel(), 0) << kind_desc.to_string();
    }
}

// ------------------------------------------------------- accuracy proxy ---

TEST(AccuracyProxy, UnmodifiedWeightsGiveBaseMetric)
{
    const auto &w = get_workload(WorkloadId::kCnnLstm);
    AccuracyProxy proxy(w);
    std::vector<Int8Tensor> weights;
    for (const auto &l : w.layers) {
        weights.push_back(l.weights);
    }
    EXPECT_DOUBLE_EQ(proxy.metric_for(weights), w.base_metric);
}

TEST(AccuracyProxy, ZeroedLayerIsWorseThanPerturbedLayer)
{
    const auto &w = get_workload(WorkloadId::kCnnLstm);
    AccuracyProxy proxy(w);
    const std::size_t idx = w.layer_index("LSTM.0");
    Int8Tensor zeroed(w.layers[idx].weights.shape());
    Int8Tensor nudged = w.layers[idx].weights;
    for (std::int64_t i = 0; i < nudged.numel(); i += 17) {
        nudged[i] = static_cast<std::int8_t>(
            std::max(-127, nudged[i] - 1));
    }
    const double m_zero = proxy.metric_with_layer(idx, zeroed);
    const double m_nudge = proxy.metric_with_layer(idx, nudged);
    EXPECT_LT(m_zero, m_nudge);
    EXPECT_LT(m_nudge, proxy.base_metric());
}

TEST(AccuracyProxy, EarlyLayersAreMoreSensitive)
{
    // The Fig. 6 observation: the same distortion costs more in early
    // layers than late layers.
    const auto &w = get_workload(WorkloadId::kResNet18);
    AccuracyProxy proxy(w);
    EXPECT_GT(proxy.depth_weight(1), proxy.depth_weight(w.layers.size() - 1));
}

TEST(AccuracyProxy, RelErrorIsZeroForIdenticalWeights)
{
    const auto &w = get_workload(WorkloadId::kCnnLstm);
    AccuracyProxy proxy(w);
    EXPECT_DOUBLE_EQ(proxy.layer_rel_error(0, w.layers[0].weights), 0.0);
}

}  // namespace
}  // namespace bitwave
