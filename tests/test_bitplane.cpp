/**
 * @file
 * Tests for the packed bit-plane representation and the word-parallel
 * kernels built on it: pack/segment correctness against per-element
 * encoding, and bit-identical results between the packed kernels and
 * their scalar oracles (column statistics, BCS measure/compress, cycle
 * statistics, sparsity) on randomized tensors in both representations.
 * Also home of the process-cache tests: the single-mutex LruCache
 * oracle and the sharded lock-striped ShardedLruCache pinned against
 * it, including the concurrent-reader paths the CI TSan job checks.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/lru.hpp"
#include "common/rng.hpp"
#include "compress/bcs.hpp"
#include "dataflow/mapping.hpp"
#include "nn/layer.hpp"
#include "sparsity/bitcolumn.hpp"
#include "sparsity/stats.hpp"
#include "tensor/bitplane.hpp"

namespace bitwave {
namespace {

Int8Tensor
random_tensor(std::int64_t n, std::uint64_t seed, double zero_prob = 0.3)
{
    Rng rng(seed);
    Int8Tensor t({n});
    for (std::int64_t i = 0; i < n; ++i) {
        t[i] = rng.bernoulli(zero_prob)
            ? 0
            : static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    }
    return t;
}

std::uint8_t
encode(std::int8_t v, Representation repr)
{
    return repr == Representation::kTwosComplement
        ? static_cast<std::uint8_t>(v) : to_sign_magnitude(v);
}

constexpr Representation kBothReprs[] = {
    Representation::kTwosComplement, Representation::kSignMagnitude};

// ------------------------------------------------------------- packing ---

TEST(BitPlanes, PackMatchesPerElementEncoding)
{
    // Odd length exercises the padded tail word.
    const Int8Tensor t = random_tensor(64 * 3 + 17, 11);
    for (const auto repr : kBothReprs) {
        const BitPlanes p = pack_bitplanes(t, repr);
        ASSERT_EQ(p.n, t.numel());
        ASSERT_EQ(p.words, (t.numel() + 63) / 64);
        for (std::int64_t e = 0; e < p.n; ++e) {
            const std::uint8_t enc = encode(t[e], repr);
            for (int b = 0; b < 8; ++b) {
                const std::uint64_t word = p.plane(b)[e >> 6];
                ASSERT_EQ((word >> (e & 63)) & 1ULL,
                          static_cast<std::uint64_t>((enc >> b) & 1))
                    << "element " << e << " bit " << b << " repr "
                    << representation_name(repr);
            }
        }
        // Padding lanes of the tail word stay zero in every plane.
        for (int b = 0; b < 8; ++b) {
            const std::uint64_t tail = p.plane(b)[p.words - 1];
            for (std::int64_t lane = p.n & 63; lane < 64; ++lane) {
                ASSERT_EQ((tail >> lane) & 1ULL, 0u);
            }
        }
    }
}

TEST(BitPlanes, SegmentMatchesColumnBits)
{
    const Int8Tensor t = random_tensor(300, 23, 0.2);
    for (const auto repr : kBothReprs) {
        const BitPlanes p = pack_bitplanes(t, repr);
        Rng rng(5);
        for (int trial = 0; trial < 200; ++trial) {
            const int len = 1 + static_cast<int>(rng.uniform_int(0, 63));
            const std::int64_t start =
                rng.uniform_int(0, t.numel() - len);
            const std::span<const std::int8_t> grp(
                t.data() + start, static_cast<std::size_t>(len));
            for (int b = 0; b < 8; ++b) {
                EXPECT_EQ(p.segment(b, start, len),
                          column_bits(grp, b, repr));
            }
            EXPECT_EQ(p.group_index(start, len), column_index(grp, repr));
        }
    }
}

// ----------------------------------------------- kernel equivalence ---

TEST(BitPlanes, AnalyzeBitColumnsMatchesScalar)
{
    // Group sizes cover the SWAR fast path (8..64), the generic path
    // (non-power-of-two, < 8) and oversized groups (> 64).
    const int group_sizes[] = {1, 2, 3, 4, 7, 8, 9, 16, 24, 32, 64, 100};
    for (const std::int64_t n : {1LL, 63LL, 64LL, 1000LL, 4096LL}) {
        const Int8Tensor t = random_tensor(n, 17 + n);
        for (const auto repr : kBothReprs) {
            for (const int g : group_sizes) {
                const auto scalar =
                    analyze_bit_columns_scalar(t, g, repr);
                const auto packed = analyze_bit_columns(t, g, repr);
                EXPECT_EQ(packed.groups, scalar.groups);
                EXPECT_EQ(packed.columns, scalar.columns);
                EXPECT_EQ(packed.zero_columns, scalar.zero_columns);
                for (int z = 0; z <= 8; ++z) {
                    EXPECT_EQ(packed.zero_column_hist[z],
                              scalar.zero_column_hist[z])
                        << "n=" << n << " g=" << g << " z=" << z;
                }
            }
        }
    }
}

TEST(BitPlanes, ColumnIndexesMatchScalarWalk)
{
    const Int8Tensor t = random_tensor(777, 31);
    for (const auto repr : kBothReprs) {
        for (const int g : {1, 8, 13, 16, 32, 64}) {
            const auto packed = column_indexes(t, g, repr);
            std::vector<std::uint8_t> scalar;
            for (std::int64_t start = 0; start < t.numel(); start += g) {
                const std::int64_t len =
                    std::min<std::int64_t>(g, t.numel() - start);
                scalar.push_back(column_index(
                    {t.data() + start, static_cast<std::size_t>(len)},
                    repr));
            }
            EXPECT_EQ(packed, scalar) << "g=" << g;
        }
    }
}

TEST(BitPlanes, BcsMeasureAndCompressMatchScalar)
{
    for (const std::int64_t n : {64LL, 257LL, 2048LL}) {
        const Int8Tensor t = random_tensor(n, 41 + n, 0.4);
        for (const auto repr : kBothReprs) {
            for (const int g : {1, 4, 8, 11, 16, 32, 64}) {
                const auto ms = bcs_measure_scalar(t, g, repr);
                const auto mp = bcs_measure(t, g, repr);
                EXPECT_EQ(mp.groups, ms.groups);
                EXPECT_EQ(mp.nonzero_columns, ms.nonzero_columns);
                EXPECT_EQ(mp.compressed_bits(), ms.compressed_bits());

                const auto cs = bcs_compress_scalar(t, g, repr);
                const auto cp = bcs_compress(t, g, repr);
                EXPECT_EQ(cp.element_count, cs.element_count);
                EXPECT_EQ(cp.shape, cs.shape);
                ASSERT_EQ(cp.groups.size(), cs.groups.size());
                for (std::size_t i = 0; i < cs.groups.size(); ++i) {
                    EXPECT_EQ(cp.groups[i].index, cs.groups[i].index);
                    EXPECT_EQ(cp.groups[i].columns, cs.groups[i].columns)
                        << "group " << i << " g=" << g;
                }
                // And the compressed stream still round-trips.
                EXPECT_EQ(bcs_decompress(cp), t);
            }
        }
    }
}

TEST(BitPlanes, ColumnCycleStatsMatchesScalar)
{
    // Conv rows (row_len = C, both 64-aligned and not), linear rows and
    // the depthwise flat layout all agree with the scalar walk.
    struct Case
    {
        LayerDesc desc;
        std::int64_t ku;
    };
    const Case cases[] = {
        {make_conv("c", 8, 96, 5, 5, 3, 3), 4},
        {make_conv("c64", 4, 64, 4, 4, 3, 3), 32},
        {make_linear("fc", 24, 100, 2), 8},
        {make_depthwise("dw", 12, 5, 5, 3), 64},
    };
    for (const auto &[desc, ku] : cases) {
        const Int8Tensor w = random_tensor(desc.weight_count(), 59, 0.35);
        for (const auto repr : kBothReprs) {
            for (const int g : {8, 16, 64}) {
                const auto s =
                    column_cycle_stats_scalar(w, desc, g, ku, repr);
                const auto p = column_cycle_stats(w, desc, g, ku, repr);
                EXPECT_EQ(p.groups, s.groups) << desc.name;
                EXPECT_DOUBLE_EQ(p.mean_cycles_per_group,
                                 s.mean_cycles_per_group);
                EXPECT_DOUBLE_EQ(p.sync_cycles_per_group,
                                 s.sync_cycles_per_group);
                for (int nz = 0; nz <= 8; ++nz) {
                    EXPECT_EQ(p.occupancy_hist[nz], s.occupancy_hist[nz]);
                }
            }
        }
    }
}

TEST(BitPlanes, ComputeSparsityFromPlanesMatchesScalar)
{
    for (const std::int64_t n : {1LL, 64LL, 999LL, 5000LL}) {
        const Int8Tensor t = random_tensor(n, 71 + n, 0.25);
        const auto scalar = compute_sparsity(t);
        const auto packed = compute_sparsity(
            pack_bitplanes(t, Representation::kTwosComplement),
            pack_bitplanes(t, Representation::kSignMagnitude));
        EXPECT_EQ(packed.words, scalar.words);
        EXPECT_EQ(packed.zero_words, scalar.zero_words);
        EXPECT_EQ(packed.bits, scalar.bits);
        EXPECT_EQ(packed.zero_bits_2c, scalar.zero_bits_2c);
        EXPECT_EQ(packed.zero_bits_sm, scalar.zero_bits_sm);
    }
}

// ------------------------------------------------------- shared cache ---

TEST(BitPlanes, SharedPlanesHitTheContentCache)
{
    const Int8Tensor t = random_tensor(500, 97);
    const auto a =
        shared_bitplanes(t, Representation::kSignMagnitude);
    const auto b =
        shared_bitplanes(t, Representation::kSignMagnitude);
    ASSERT_TRUE(a != nullptr);
    EXPECT_EQ(a.get(), b.get()) << "same content must share one pack";
    // The other representation is a distinct entry.
    const auto c =
        shared_bitplanes(t, Representation::kTwosComplement);
    EXPECT_NE(a.get(), c.get());
    // An identical copy hits by content, not identity.
    const Int8Tensor copy = t;
    const auto d =
        shared_bitplanes(copy, Representation::kSignMagnitude);
    EXPECT_EQ(a.get(), d.get());
}

// ------------------------------------------------------------- LRU ---

TEST(LruCache, EvictsLeastRecentlyUsedAndRebuilds)
{
    LruCache<int, int> cache(2);
    int builds = 0;
    const auto build = [&](int v) {
        return [&builds, v] {
            ++builds;
            return v * 10;
        };
    };
    EXPECT_EQ(*cache.get_or_build(1, build(1)), 10);
    EXPECT_EQ(*cache.get_or_build(2, build(2)), 20);
    EXPECT_EQ(builds, 2);
    // Hit keeps 1 resident...
    bool hit = false;
    EXPECT_EQ(*cache.get_or_build(1, build(1), &hit), 10);
    EXPECT_TRUE(hit);
    EXPECT_EQ(builds, 2);
    // ...so inserting 3 evicts 2, and 2 rebuilds on the next request.
    EXPECT_EQ(*cache.get_or_build(3, build(3)), 30);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(*cache.get_or_build(2, build(2), &hit), 20);
    EXPECT_FALSE(hit);
    EXPECT_EQ(builds, 4);
    EXPECT_GE(cache.hits(), 1);
}

TEST(LruCache, EvictedValueStaysAliveThroughHolders)
{
    LruCache<int, std::vector<int>> cache(1);
    const auto held =
        cache.get_or_build(1, [] { return std::vector<int>{1, 2, 3}; });
    cache.get_or_build(2, [] { return std::vector<int>{9}; });  // evicts 1
    EXPECT_EQ(held->size(), 3u) << "holder must outlive eviction";
}

TEST(LruCache, CapacityEnvOverride)
{
    ASSERT_EQ(setenv("BITWAVE_CACHE_ENTRIES", "7", 1), 0);
    EXPECT_EQ(cache_capacity_from_env(99), 7u);
    ASSERT_EQ(setenv("BITWAVE_CACHE_ENTRIES", "garbage", 1), 0);
    EXPECT_EQ(cache_capacity_from_env(99), 99u);
    ASSERT_EQ(unsetenv("BITWAVE_CACHE_ENTRIES"), 0);
    EXPECT_EQ(cache_capacity_from_env(99), 99u);
}

// --------------------------------------------------------- sharded LRU ---

TEST(ShardedLruCache, ShardCountEnvOverrideRoundsToPowerOfTwo)
{
    ASSERT_EQ(setenv("BITWAVE_CACHE_SHARDS", "5", 1), 0);
    EXPECT_EQ(cache_shards_from_env(), 8u);
    ASSERT_EQ(setenv("BITWAVE_CACHE_SHARDS", "1", 1), 0);
    EXPECT_EQ(cache_shards_from_env(), 1u);
    ASSERT_EQ(setenv("BITWAVE_CACHE_SHARDS", "1000", 1), 0);
    EXPECT_EQ(cache_shards_from_env(), 64u) << "capped at 64";
    ASSERT_EQ(unsetenv("BITWAVE_CACHE_SHARDS"), 0);
    EXPECT_GE(cache_shards_from_env(), 1u);

    ShardedLruCache<int, int> cache(32, 5);
    EXPECT_EQ(cache.shards(), 8u);
    EXPECT_GE(cache.capacity(), 32u);
}

TEST(ShardedLruCache, SingleShardMatchesTheSingleMutexOracle)
{
    // Pin the sharded cache's hit/miss/eviction behavior against the
    // LruCache oracle over a seeded mixed access pattern. With one
    // shard and sequential access the tick-based eviction IS exact
    // LRU, so every counter must agree; the oracle's evictions are
    // misses minus resident entries.
    constexpr std::size_t kCapacity = 8;
    LruCache<int, int> oracle(kCapacity);
    ShardedLruCache<int, int> sharded(kCapacity, /*shards=*/1);
    ASSERT_EQ(sharded.shards(), 1u);
    ASSERT_EQ(sharded.capacity(), kCapacity);

    Rng rng(0xCAFE);
    for (int step = 0; step < 2000; ++step) {
        // Zipf-ish: small keys dominate, so the pattern mixes hot hits
        // with cold misses and steady evictions.
        const int key = static_cast<int>(
            rng.uniform_int(0, rng.bernoulli(0.7) ? 7 : 31));
        bool oracle_hit = false, sharded_hit = false;
        const auto a =
            oracle.get_or_build(key, [&] { return key * 3; }, &oracle_hit);
        const auto b = sharded.get_or_build(
            key, [&] { return key * 3; }, &sharded_hit);
        ASSERT_EQ(*a, *b);
        ASSERT_EQ(oracle_hit, sharded_hit) << "step " << step;
    }
    EXPECT_EQ(sharded.hits(), oracle.hits());
    EXPECT_EQ(sharded.misses(), oracle.misses());
    EXPECT_EQ(sharded.size(), oracle.size());
    EXPECT_EQ(sharded.evictions(),
              oracle.misses() -
                  static_cast<std::int64_t>(oracle.size()));
}

TEST(ShardedLruCache, ShardingPreservesHitMissCountsWithoutEviction)
{
    // Below capacity, hits and misses are per-key properties and must
    // not depend on how keys spread over the shards.
    for (const std::size_t shards : {1u, 4u, 8u}) {
        ShardedLruCache<int, int> cache(128, shards);
        LruCache<int, int> oracle(128);
        Rng rng(42);
        for (int step = 0; step < 500; ++step) {
            const int key = static_cast<int>(rng.uniform_int(0, 63));
            cache.get_or_build(key, [&] { return key; });
            oracle.get_or_build(key, [&] { return key; });
        }
        EXPECT_EQ(cache.hits(), oracle.hits()) << shards << " shards";
        EXPECT_EQ(cache.misses(), oracle.misses());
        EXPECT_EQ(cache.size(), oracle.size());
        EXPECT_EQ(cache.evictions(), 0);
    }
}

TEST(ShardedLruCache, EvictedValueStaysAliveThroughHolders)
{
    ShardedLruCache<int, std::vector<int>> cache(1, /*shards=*/1);
    const auto held =
        cache.get_or_build(1, [] { return std::vector<int>{1, 2, 3}; });
    cache.get_or_build(2, [] { return std::vector<int>{9}; });  // evicts 1
    EXPECT_EQ(cache.evictions(), 1);
    EXPECT_EQ(held->size(), 3u) << "holder must outlive eviction";
}

TEST(ShardedLruCache, ConcurrentReadersAndBuildersStayConsistent)
{
    // The TSan CI job race-checks this: many workers hammering a
    // sharded cache with overlapping hot keys must build each resident
    // key exactly once, return the right value every time, and account
    // every access as a hit or a miss.
    ShardedLruCache<int, int> cache(256, /*shards=*/8);
    std::atomic<std::int64_t> builds{0};
    constexpr int kThreads = 8, kOps = 400, kKeys = 64;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            Rng rng(static_cast<std::uint64_t>(t) + 1);
            for (int op = 0; op < kOps; ++op) {
                const int key =
                    static_cast<int>(rng.uniform_int(0, kKeys - 1));
                const auto v = cache.get_or_build(key, [&] {
                    builds.fetch_add(1, std::memory_order_relaxed);
                    return key * 7;
                });
                if (*v != key * 7) {
                    ADD_FAILURE() << "wrong value for " << key;
                    return;
                }
            }
        });
    }
    for (auto &w : workers) {
        w.join();
    }
    // Capacity exceeds the key space: every key builds exactly once
    // even under concurrent first requests.
    EXPECT_EQ(builds.load(), static_cast<std::int64_t>(cache.size()));
    EXPECT_LE(cache.size(), static_cast<std::size_t>(kKeys));
    EXPECT_EQ(cache.hits() + cache.misses(),
              static_cast<std::int64_t>(kThreads) * kOps);
}

}  // namespace
}  // namespace bitwave
