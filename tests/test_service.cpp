/**
 * @file
 * Tests for the evaluation service layer: ticket lifecycle, dedup by
 * scenario fingerprint, dynamic batching determinism (batched +
 * deduped + chaos-scheduled results bit-identical to serial direct
 * evaluation), admission-control policies, deadlines, cancellation, and
 * shutdown semantics. Timing-sensitive paths run with `dispatchers = 0`
 * and explicit pump() so no test depends on scheduler luck.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "nn/synthesis.hpp"
#include "service/service.hpp"

// Counting global allocator: the observability layer guarantees that
// EvalService::stats() never touches the heap (it copies counters and
// fixed-size histogram snapshots only), and a test below asserts it.
// The replacement is process-wide, so it just counts and delegates.
// The malloc/new pairing is intentional and self-consistent.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
static std::atomic<std::uint64_t> g_heap_allocations{0};

void *
operator new(std::size_t size)
{
    g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size == 0 ? 1 : size)) {
        return p;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size == 0 ? 1 : size)) {
        return p;
    }
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

namespace bitwave {
namespace {

using service::BackpressurePolicy;
using service::EvalService;
using service::EvalTicket;
using service::ServiceOptions;
using service::SubmitOptions;
using service::TicketStatus;

// Small private workload so service tests never pay benchmark-network
// synthesis (mirrors test_eval's tiny_workload).
std::shared_ptr<Workload>
tiny_net()
{
    auto net = std::make_shared<Workload>();
    net->name = "tiny-svc";
    net->metric_name = "top-1";
    net->base_metric = 90.0;
    net->error_sensitivity = 40.0;
    Rng rng(11);
    auto add = [&](LayerDesc desc, double act_sparsity) {
        WeightProfile profile;
        profile.scale = 6.0;
        WorkloadLayer layer;
        layer.desc = std::move(desc);
        layer.weights = synthesize_weights(layer.desc, profile, rng);
        layer.activation_sparsity = act_sparsity;
        net->layers.push_back(std::move(layer));
    };
    add(make_conv("stem", 16, 3, 16, 16, 3, 3, 1), 0.0);
    add(make_pointwise("pw", 32, 16, 16, 16), 0.4);
    add(make_linear("fc", 10, 32), 0.4);
    // Populate the content identities scenario_fingerprint() and the
    // prep caches key on (build_* workloads do this during synthesis).
    net->content_hash = 0x7117;
    for (auto &layer : net->layers) {
        layer.weights_hash = layer.compute_weights_hash();
        net->content_hash ^= layer.weights_hash * 0x9E3779B97F4A7C15ULL;
    }
    return net;
}

// A scenario over the shared tiny net, distinguished by accelerator.
eval::Scenario
tiny_scenario(const std::shared_ptr<Workload> &net,
              const AcceleratorConfig &accel)
{
    eval::Scenario s;
    s.custom_workload = net;
    s.accel = accel;
    return s;
}

// A bag of distinct scenarios (distinct fingerprints).
std::vector<eval::Scenario>
distinct_scenarios(const std::shared_ptr<Workload> &net)
{
    std::vector<eval::Scenario> scenarios;
    for (const auto &cfg : {make_scnn(), make_stripes(), make_bitlet(),
                            make_huaa(),
                            make_bitwave(BitWaveVariant::kDfSm)}) {
        scenarios.push_back(tiny_scenario(net, cfg));
    }
    eval::Scenario flipped =
        tiny_scenario(net, make_bitwave(BitWaveVariant::kDfSmBf));
    flipped.bitflip.mode = eval::BitflipSpec::Mode::kUniform;
    flipped.bitflip.group_size = 16;
    flipped.bitflip.zero_columns = 4;
    scenarios.push_back(std::move(flipped));
    eval::Scenario stats = tiny_scenario(net, make_scnn());
    stats.engine = eval::EngineKind::kStats;
    scenarios.push_back(std::move(stats));
    return scenarios;
}

void
expect_identical(const eval::ScenarioResult &a,
                 const eval::ScenarioResult &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.rng_seed, b.rng_seed);
    EXPECT_EQ(a.total_cycles, b.total_cycles) << a.name;
    EXPECT_EQ(a.energy.total_pj, b.energy.total_pj) << a.name;
    EXPECT_EQ(a.nominal_macs, b.nominal_macs) << a.name;
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t l = 0; l < a.layers.size(); ++l) {
        EXPECT_EQ(a.layers[l].layer_name, b.layers[l].layer_name);
        EXPECT_EQ(a.layers[l].total_cycles, b.layers[l].total_cycles);
        EXPECT_EQ(a.layers[l].energy.total_pj, b.layers[l].energy.total_pj);
    }
}

// Pump-driven options: no dispatcher threads, nothing timing-dependent.
ServiceOptions
pump_options(std::size_t capacity,
             BackpressurePolicy policy = BackpressurePolicy::kReject)
{
    ServiceOptions options;
    options.queue_capacity = capacity;
    options.policy = policy;
    options.dispatchers = 0;
    options.runner.threads = 1;
    return options;
}

// ---------------------------------------------------------- fingerprint ---

TEST(Fingerprint, DistinguishesEveryResultAffectingKnob)
{
    const auto net = tiny_net();
    const eval::Scenario base = tiny_scenario(net, make_scnn());
    const auto fp = eval::scenario_fingerprint(base);
    EXPECT_EQ(fp, eval::scenario_fingerprint(base)) << "stable";

    eval::Scenario other = base;
    other.accel = make_stripes();
    EXPECT_NE(eval::scenario_fingerprint(other), fp);

    other = base;
    other.seed = 99;
    EXPECT_NE(eval::scenario_fingerprint(other), fp);

    other = base;
    other.bitflip.mode = eval::BitflipSpec::Mode::kUniform;
    EXPECT_NE(eval::scenario_fingerprint(other), fp);

    other = base;
    other.layer_filter = {"pw"};
    EXPECT_NE(eval::scenario_fingerprint(other), fp);

    other = base;
    other.engine = eval::EngineKind::kStats;
    EXPECT_NE(eval::scenario_fingerprint(other), fp);

    // The label is part of the result (ScenarioResult::name), so it
    // must split dedup classes: a deduped ticket returns the evaluated
    // job's result verbatim.
    other = base;
    other.label = "renamed";
    EXPECT_NE(eval::scenario_fingerprint(other), fp);
}

// ------------------------------------------------------------ lifecycle ---

TEST(Service, TicketCompletesAndMatchesDirectEvaluation)
{
    const auto net = tiny_net();
    const eval::Scenario s = tiny_scenario(net, make_scnn());

    EvalService svc(pump_options(8));
    EvalTicket ticket = svc.submit(s);
    EXPECT_TRUE(ticket.valid());
    EXPECT_FALSE(ticket.deduped());
    EXPECT_EQ(svc.pump(), 1);
    EXPECT_EQ(ticket.status(), TicketStatus::kDone);
    EXPECT_GE(ticket.latency_seconds(), 0.0);

    const auto direct = eval::ScenarioRunner().run({s});
    expect_identical(ticket.result(), direct.front());
}

TEST(Service, InvalidDefaultTicket)
{
    EvalTicket ticket;
    EXPECT_FALSE(ticket.valid());
}

// ----------------------------------------------------------------- dedup ---

TEST(Service, IdenticalInFlightRequestsCoalesce)
{
    const auto net = tiny_net();
    const eval::Scenario s = tiny_scenario(net, make_bitlet());

    EvalService svc(pump_options(8));
    EvalTicket first = svc.submit(s);
    EvalTicket second = svc.submit(s);
    EXPECT_FALSE(first.deduped());
    EXPECT_TRUE(second.deduped());

    EXPECT_EQ(svc.pump(), 1);
    EXPECT_EQ(first.status(), TicketStatus::kDone);
    EXPECT_EQ(second.status(), TicketStatus::kDone);
    expect_identical(first.result(), second.result());

    const auto stats = svc.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.dedup_hits, 1u);
    EXPECT_EQ(stats.batched_jobs, 1u) << "one evaluation, two tickets";
    EXPECT_EQ(stats.completed, 2u);
}

// ---------------------------------------------------------- determinism ---

TEST(Service, BatchedDedupedChaoticServiceIsBitIdenticalToSerial)
{
    // The tentpole contract: admission order, batch composition, dedup
    // and steal order are pure scheduling. A service with concurrent
    // dispatchers, adversarial (chaos-seeded) stealing and duplicated
    // submissions must complete every ticket bit-identically to a
    // one-shot serial runner evaluating that scenario alone.
    const auto net = tiny_net();
    const auto scenarios = distinct_scenarios(net);

    std::vector<eval::ScenarioResult> golden;
    for (const auto &s : scenarios) {
        golden.push_back(eval::ScenarioRunner().run({s}).front());
    }

    ServiceOptions options;
    options.queue_capacity = 64;
    options.dispatchers = 2;
    options.max_batch = 3;  // force multiple batches
    options.linger_seconds = 0.0005;
    options.runner.threads = 4;
    options.runner.shard_layers = 1;  // max splitting: every layer steals
    options.runner.chaos_seed = 0xD15EA5E;
    EvalService svc(options);

    std::vector<EvalTicket> tickets;
    for (int repeat = 0; repeat < 3; ++repeat) {
        for (const auto &s : scenarios) {
            tickets.push_back(svc.submit(s));
        }
    }
    for (auto &ticket : tickets) {
        ticket.wait();
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        ASSERT_EQ(tickets[i].status(), TicketStatus::kDone) << i;
        expect_identical(tickets[i].result(),
                         golden[i % scenarios.size()]);
    }
    const auto stats = svc.stats();
    EXPECT_EQ(stats.completed, tickets.size());
    EXPECT_GE(stats.dedup_hits + stats.batched_jobs, tickets.size());
}

// ----------------------------------------------------------- admission ---

TEST(Service, RejectPolicyBouncesWhenFull)
{
    const auto net = tiny_net();
    EvalService svc(pump_options(2, BackpressurePolicy::kReject));
    EvalTicket a = svc.submit(tiny_scenario(net, make_scnn()));
    EvalTicket b = svc.submit(tiny_scenario(net, make_stripes()));
    EvalTicket c = svc.submit(tiny_scenario(net, make_bitlet()));

    EXPECT_EQ(c.status(), TicketStatus::kRejected);
    EXPECT_THROW(c.result(), std::runtime_error);
    EXPECT_EQ(svc.stats().rejected, 1u);

    // A duplicate of a queued job attaches instead of being rejected:
    // dedup happens before admission.
    EvalTicket dup = svc.submit(tiny_scenario(net, make_scnn()));
    EXPECT_TRUE(dup.deduped());
    EXPECT_NE(dup.status(), TicketStatus::kRejected);

    while (svc.pump() > 0) {
    }
    EXPECT_EQ(a.status(), TicketStatus::kDone);
    EXPECT_EQ(b.status(), TicketStatus::kDone);
    EXPECT_EQ(dup.status(), TicketStatus::kDone);
}

TEST(Service, ShedOldestEvictsTheHeadForTheNewcomer)
{
    const auto net = tiny_net();
    EvalService svc(pump_options(2, BackpressurePolicy::kShedOldest));
    EvalTicket oldest = svc.submit(tiny_scenario(net, make_scnn()));
    EvalTicket mid = svc.submit(tiny_scenario(net, make_stripes()));
    EvalTicket fresh = svc.submit(tiny_scenario(net, make_bitlet()));

    EXPECT_EQ(oldest.status(), TicketStatus::kShed);
    EXPECT_EQ(svc.stats().shed, 1u);

    while (svc.pump() > 0) {
    }
    EXPECT_EQ(mid.status(), TicketStatus::kDone);
    EXPECT_EQ(fresh.status(), TicketStatus::kDone);
}

TEST(Service, BlockPolicyKeepsTheQueueBoundedWithoutLosses)
{
    const auto net = tiny_net();
    ServiceOptions options;
    options.queue_capacity = 1;
    options.policy = BackpressurePolicy::kBlock;
    options.dispatchers = 1;
    options.max_batch = 2;
    options.runner.threads = 2;
    EvalService svc(options);

    std::vector<EvalTicket> tickets;
    for (const auto &s : distinct_scenarios(net)) {
        tickets.push_back(svc.submit(s));  // blocks when full
    }
    for (auto &ticket : tickets) {
        ticket.wait();
        EXPECT_EQ(ticket.status(), TicketStatus::kDone);
    }
    const auto stats = svc.stats();
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.shed, 0u);
    EXPECT_LE(stats.peak_queue_depth, options.queue_capacity);
}

// ------------------------------------------------ deadlines and cancel ---

TEST(Service, ExpiredDeadlineIsPrunedWithoutEvaluation)
{
    const auto net = tiny_net();
    EvalService svc(pump_options(8));
    SubmitOptions deadline;
    deadline.deadline_seconds = 1e-6;
    EvalTicket ticket = svc.submit(tiny_scenario(net, make_scnn()),
                                   deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    svc.pump();
    EXPECT_EQ(ticket.status(), TicketStatus::kDeadlineExpired);
    EXPECT_THROW(ticket.result(), std::runtime_error);
    const auto stats = svc.stats();
    EXPECT_EQ(stats.deadline_expired, 1u);
    EXPECT_EQ(stats.batched_jobs, 0u) << "expired work must not run";
}

TEST(Service, GenerousDeadlineDoesNotFire)
{
    const auto net = tiny_net();
    EvalService svc(pump_options(8));
    SubmitOptions deadline;
    deadline.deadline_seconds = 3600.0;
    EvalTicket ticket = svc.submit(tiny_scenario(net, make_scnn()),
                                   deadline);
    svc.pump();
    EXPECT_EQ(ticket.status(), TicketStatus::kDone);
}

// Regression: deadline arithmetic must saturate, not overflow. A huge
// relative deadline (or infinity) added to steady_clock::now() would
// wrap negative and expire instantly; it must instead mean "never".
TEST(Service, HugeDeadlineSaturatesInsteadOfOverflowing)
{
    const auto net = tiny_net();
    EvalService svc(pump_options(8));
    for (const double seconds :
         {1e18, 1e300, std::numeric_limits<double>::infinity()}) {
        SubmitOptions deadline;
        deadline.deadline_seconds = seconds;
        EvalTicket ticket = svc.submit(tiny_scenario(net, make_scnn()),
                                       deadline);
        svc.pump();
        EXPECT_EQ(ticket.status(), TicketStatus::kDone)
            << "deadline_seconds = " << seconds;
    }
    EXPECT_EQ(svc.stats().deadline_expired, 0u);
}

// Regression: wait_for with an absurd bound must behave as wait(), not
// overflow into an immediate timeout.
TEST(Service, WaitForHugeTimeoutActsAsUnboundedWait)
{
    const auto net = tiny_net();
    ServiceOptions options = pump_options(8);
    options.dispatchers = 1;
    EvalService svc(options);
    EvalTicket ticket = svc.submit(tiny_scenario(net, make_scnn()));
    EXPECT_TRUE(ticket.wait_for(1e18));
    EXPECT_EQ(ticket.status(), TicketStatus::kDone);
}

TEST(Service, CancelBeforeDispatch)
{
    const auto net = tiny_net();
    EvalService svc(pump_options(8));
    EvalTicket ticket = svc.submit(tiny_scenario(net, make_scnn()));
    EXPECT_TRUE(ticket.cancel());
    EXPECT_EQ(ticket.status(), TicketStatus::kCancelled);
    EXPECT_FALSE(ticket.cancel()) << "already terminal";
    svc.pump();
    EXPECT_EQ(svc.stats().batched_jobs, 0u)
        << "a fully-cancelled job must not evaluate";
    EXPECT_EQ(svc.stats().cancelled, 1u);
}

TEST(Service, CancellingOneSubscriberLeavesTheTwinAlive)
{
    const auto net = tiny_net();
    const eval::Scenario s = tiny_scenario(net, make_huaa());
    EvalService svc(pump_options(8));
    EvalTicket keep = svc.submit(s);
    EvalTicket drop = svc.submit(s);
    EXPECT_TRUE(drop.deduped());
    EXPECT_TRUE(drop.cancel());
    svc.pump();
    EXPECT_EQ(keep.status(), TicketStatus::kDone);
    EXPECT_EQ(drop.status(), TicketStatus::kCancelled);
}

// -------------------------------------------------------------- shutdown ---

TEST(Service, DrainShutdownEvaluatesTheBacklog)
{
    const auto net = tiny_net();
    EvalService svc(pump_options(8));
    EvalTicket a = svc.submit(tiny_scenario(net, make_scnn()));
    EvalTicket b = svc.submit(tiny_scenario(net, make_stripes()));
    svc.shutdown(EvalService::ShutdownMode::kDrain);
    EXPECT_EQ(a.status(), TicketStatus::kDone);
    EXPECT_EQ(b.status(), TicketStatus::kDone);
    EXPECT_GT(a.result().total_cycles, 0.0);

    // Post-shutdown submissions complete immediately as kShutdown.
    EvalTicket late = svc.submit(tiny_scenario(net, make_bitlet()));
    EXPECT_EQ(late.status(), TicketStatus::kShutdown);
    EXPECT_THROW(late.result(), std::runtime_error);
}

TEST(Service, AbortShutdownDiscardsTheBacklog)
{
    const auto net = tiny_net();
    EvalService svc(pump_options(8));
    EvalTicket a = svc.submit(tiny_scenario(net, make_scnn()));
    EvalTicket b = svc.submit(tiny_scenario(net, make_stripes()));
    svc.shutdown(EvalService::ShutdownMode::kAbort);
    EXPECT_EQ(a.status(), TicketStatus::kShutdown);
    EXPECT_EQ(b.status(), TicketStatus::kShutdown);
    EXPECT_EQ(svc.stats().shutdown_discarded, 2u);
    EXPECT_EQ(svc.stats().batched_jobs, 0u);
    // Idempotent.
    svc.shutdown(EvalService::ShutdownMode::kAbort);
}

TEST(Service, DestructorDrainsLikeGracefulShutdown)
{
    const auto net = tiny_net();
    EvalTicket ticket;
    {
        ServiceOptions options;
        options.dispatchers = 1;
        options.runner.threads = 2;
        EvalService svc(options);
        ticket = svc.submit(tiny_scenario(net, make_scnn()));
        // Ticket state is owned via shared_ptr: reading the result after
        // the service object is gone is safe for completed tickets.
        ticket.wait();
    }
    EXPECT_EQ(ticket.status(), TicketStatus::kDone);
    EXPECT_GT(ticket.result().total_cycles, 0.0);
}

// --------------------------------------------------------- observability ---

TEST(Service, PhaseHistogramsDecomposeTicketLatency)
{
    const auto net = tiny_net();
    const eval::Scenario s = tiny_scenario(net, make_scnn());
    EvalService svc(pump_options(8));
    EvalTicket ticket = svc.submit(s);
    EXPECT_EQ(svc.pump(), 1);
    ASSERT_EQ(ticket.status(), TicketStatus::kDone);

    const auto stats = svc.stats();
    ASSERT_EQ(stats.queue_wait_ns.count, 1u);
    ASSERT_EQ(stats.batch_ns.count, 1u);
    ASSERT_EQ(stats.compute_ns.count, 1u);
    EXPECT_GT(stats.compute_ns.sum, 0u);

    // The three phases tile submit → evaluation-end, which the ticket
    // latency bounds (finalize adds a sliver after evaluation ends;
    // the slack allowance also absorbs clock-read granularity).
    const double phase_sum_s =
        (static_cast<double>(stats.queue_wait_ns.sum) +
         static_cast<double>(stats.batch_ns.sum) +
         static_cast<double>(stats.compute_ns.sum)) /
        1e9;
    const double latency_s = ticket.latency_seconds();
    EXPECT_GT(phase_sum_s, 0.0);
    EXPECT_LE(phase_sum_s, latency_s + 0.010);
    EXPECT_LT(latency_s - phase_sum_s, 0.250);
}

TEST(Service, PhaseHistogramsCoverEveryCompletion)
{
    const auto net = tiny_net();
    EvalService svc(pump_options(16));
    std::vector<EvalTicket> tickets;
    for (const auto &s : distinct_scenarios(net)) {
        tickets.push_back(svc.submit(s));
    }
    while (svc.pump() > 0) {
    }
    for (auto &ticket : tickets) {
        ASSERT_EQ(ticket.status(), TicketStatus::kDone);
    }
    const auto stats = svc.stats();
    // One sample per evaluated job in every phase histogram (dedup'd
    // twins share their job's sample).
    EXPECT_EQ(stats.queue_wait_ns.count, stats.batched_jobs);
    EXPECT_EQ(stats.batch_ns.count, stats.batched_jobs);
    EXPECT_EQ(stats.compute_ns.count, stats.batched_jobs);
}

TEST(Service, StatsReadPathDoesNotAllocate)
{
    const auto net = tiny_net();
    EvalService svc(pump_options(8));
    EvalTicket ticket = svc.submit(tiny_scenario(net, make_scnn()));
    svc.pump();
    ticket.wait();

    (void)svc.stats();  // warm: nothing lazy may remain
    const std::uint64_t before =
        g_heap_allocations.load(std::memory_order_relaxed);
    std::uint64_t total = 0;
    for (int i = 0; i < 100; ++i) {
        const auto stats = svc.stats();
        total += stats.completed + stats.queue_wait_ns.count;
    }
    EXPECT_EQ(g_heap_allocations.load(std::memory_order_relaxed),
              before)
        << "stats() allocated on the read path";
    EXPECT_EQ(total, 200u);  // 1 completed + 1 histogram sample, x100
}

TEST(Service, StatusNamesAndTerminality)
{
    EXPECT_STREQ(service::ticket_status_name(TicketStatus::kDone), "done");
    EXPECT_STREQ(service::ticket_status_name(TicketStatus::kShed), "shed");
    EXPECT_FALSE(service::ticket_status_terminal(TicketStatus::kQueued));
    EXPECT_FALSE(service::ticket_status_terminal(TicketStatus::kRunning));
    EXPECT_TRUE(service::ticket_status_terminal(TicketStatus::kDone));
    EXPECT_TRUE(service::ticket_status_terminal(TicketStatus::kRejected));
}

}  // namespace
}  // namespace bitwave
