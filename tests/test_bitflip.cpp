/**
 * @file
 * Tests for the Bit-Flip group transform and the Algorithm 1 greedy
 * search, including the paper's Fig. 4(c) worked example.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "bitflip/bitflip.hpp"
#include "bitflip/strategy.hpp"
#include "common/bits.hpp"
#include "common/rng.hpp"
#include "nn/workloads.hpp"
#include "sparsity/bitcolumn.hpp"

namespace bitwave {
namespace {

int
sm_zero_cols(std::span<const std::int8_t> group)
{
    return zero_column_count(group, Representation::kSignMagnitude);
}

TEST(NearestMagnitude, FullMaskIsIdentity)
{
    for (int m = 0; m < 128; ++m) {
        EXPECT_EQ(nearest_magnitude_under_mask(m, 0x7F), m);
    }
}

TEST(NearestMagnitude, EmptyMaskMapsToZero)
{
    EXPECT_EQ(nearest_magnitude_under_mask(100, 0), 0);
    EXPECT_EQ(nearest_magnitude_under_mask(0, 0), 0);
}

TEST(NearestMagnitude, SingleBitMask)
{
    // Only bit 2 (value 4) available: nearest to 3 is 4, to 1 is 0.
    EXPECT_EQ(nearest_magnitude_under_mask(3, 0b0000100), 4);
    EXPECT_EQ(nearest_magnitude_under_mask(1, 0b0000100), 0);
    EXPECT_EQ(nearest_magnitude_under_mask(127, 0b0000100), 4);
}

TEST(NearestMagnitude, ResultAlwaysRepresentable)
{
    for (int mask = 0; mask < 128; mask += 7) {
        for (int m = 0; m < 128; m += 3) {
            const int nm = nearest_magnitude_under_mask(m, mask);
            EXPECT_EQ(nm & ~mask, 0);
        }
    }
}

TEST(BitflipGroup, Fig4cExampleMinusThreeBecomesMinusFour)
{
    // Fig. 4(c): targeting five zero columns turns -3 into -4
    // (1000'0011 -> 1000'0100), distance 1.
    std::vector<std::int8_t> group = {-3, 4, -4, 4};
    const auto result = bitflip_group({group.data(), group.size()}, 5);
    EXPECT_GE(result.zero_columns, 5);
    EXPECT_EQ(group[0], -4);
    EXPECT_EQ(group[1], 4);
    EXPECT_EQ(group[2], -4);
    EXPECT_EQ(group[3], 4);
    EXPECT_DOUBLE_EQ(result.squared_error, 1.0);
}

TEST(BitflipGroup, AlreadySatisfiedIsNoOp)
{
    std::vector<std::int8_t> group = {1, 1, 1, 1};  // 7 zero columns
    const auto before = group;
    const auto result = bitflip_group({group.data(), group.size()}, 7);
    EXPECT_EQ(group, before);
    EXPECT_DOUBLE_EQ(result.squared_error, 0.0);
}

TEST(BitflipGroup, TargetEightZeroesEverything)
{
    std::vector<std::int8_t> group = {17, -99, 3, 127};
    bitflip_group({group.data(), group.size()}, 8);
    for (auto v : group) {
        EXPECT_EQ(v, 0);
    }
}

TEST(BitflipGroup, TargetZeroNeverModifies)
{
    Rng rng(3);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::int8_t> group(16);
        for (auto &v : group) {
            v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
        }
        const auto before = group;
        bitflip_group({group.data(), group.size()}, 0);
        EXPECT_EQ(group, before);
    }
}

TEST(BitflipGroup, SignColumnClearedWhenCheapest)
{
    // A single small negative among positives: clearing the sign column
    // (cost 1) beats clearing the heavily-used bit0 column.
    std::vector<std::int8_t> group = {-1, 1, 1, 1, 1, 1, 1, 1};
    EXPECT_EQ(sm_zero_cols({group.data(), group.size()}), 6);
    const auto result = bitflip_group({group.data(), group.size()}, 7);
    EXPECT_GE(result.zero_columns, 7);
    EXPECT_DOUBLE_EQ(result.squared_error, 1.0);
    EXPECT_EQ(group[0], 0);
}

class BitflipProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(BitflipProperty, AlwaysReachesTargetWithBoundedError)
{
    const auto [g_size, target] = GetParam();
    Rng rng(static_cast<std::uint64_t>(g_size * 100 + target));
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<std::int8_t> group(static_cast<std::size_t>(g_size));
        for (auto &v : group) {
            v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
        }
        const auto before = group;
        const auto result = bitflip_group({group.data(), group.size()},
                                          target);
        // Constraint met.
        EXPECT_GE(result.zero_columns, target);
        EXPECT_GE(sm_zero_cols({group.data(), group.size()}), target);
        // Worst case is zeroing everything.
        double zero_cost = 0.0;
        for (auto v : before) {
            zero_cost += static_cast<double>(v) * static_cast<double>(v);
        }
        EXPECT_LE(result.squared_error, zero_cost + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitflipProperty,
    ::testing::Combine(::testing::Values(4, 8, 16, 32),
                       ::testing::Values(1, 3, 5, 7, 8)));

TEST(BitflipGroup, ProfileScoringMatchesScalarOracleBitExactly)
{
    // The profile-scored greedy must reproduce the element-at-a-time
    // oracle exactly: same flipped values, same column selections, same
    // reported error — on random groups of every size and target, in
    // both dense and zero-heavy regimes, including the -128 clamp.
    Rng rng(2024);
    for (int trial = 0; trial < 2000; ++trial) {
        const int g_size = 1 + static_cast<int>(rng.uniform_int(0, 63));
        const int target = static_cast<int>(rng.uniform_int(0, 8));
        const double zero_prob = rng.bernoulli(0.5) ? 0.0 : 0.4;
        std::vector<std::int8_t> fast(static_cast<std::size_t>(g_size));
        for (auto &v : fast) {
            v = rng.bernoulli(zero_prob)
                ? 0
                : static_cast<std::int8_t>(rng.uniform_int(-128, 127));
        }
        std::vector<std::int8_t> scalar = fast;
        const auto rf = bitflip_group({fast.data(), fast.size()}, target);
        const auto rs =
            bitflip_group_scalar({scalar.data(), scalar.size()}, target);
        ASSERT_EQ(fast, scalar)
            << "trial " << trial << " g=" << g_size << " z=" << target;
        EXPECT_EQ(rf.zero_columns, rs.zero_columns);
        EXPECT_DOUBLE_EQ(rf.squared_error, rs.squared_error);
    }
}

TEST(BitflipGroup, GreedyCloseToExhaustive)
{
    // The greedy column choice should rarely be far from the exhaustive
    // optimum; verify the gap on random groups.
    Rng rng(77);
    double greedy_total = 0.0, best_total = 0.0;
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::int8_t> g1(8), g2(8);
        for (std::size_t i = 0; i < 8; ++i) {
            g1[i] = g2[i] =
                static_cast<std::int8_t>(rng.uniform_int(-60, 60));
        }
        const auto r1 = bitflip_group({g1.data(), g1.size()}, 5);
        const auto r2 = bitflip_group_exhaustive({g2.data(), g2.size()}, 5);
        EXPECT_GE(r1.squared_error, r2.squared_error - 1e-9);
        greedy_total += r1.squared_error;
        best_total += r2.squared_error;
    }
    EXPECT_LT(greedy_total, best_total * 1.5);
}

TEST(BitflipTensor, EveryGroupMeetsTarget)
{
    Rng rng(5);
    Int8Tensor t({1000});
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        t[i] = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    }
    const auto flipped = bitflip_tensor(t, 16, 4);
    for (std::int64_t start = 0; start < t.numel(); start += 16) {
        const auto len = std::min<std::int64_t>(16, t.numel() - start);
        EXPECT_GE(sm_zero_cols({flipped.data() + start,
                                static_cast<std::size_t>(len)}),
                  4);
    }
}

TEST(BitflipTensor, IncreasingTargetIncreasesCompression)
{
    const auto &w = get_workload(WorkloadId::kCnnLstm);
    const auto &weights = w.layers[w.layer_index("LSTM.0")].weights;
    double prev_sparsity = -1.0;
    for (int z : {0, 2, 4, 6}) {
        const auto flipped = z == 0 ? weights : bitflip_tensor(weights, 16, z);
        const double cs =
            analyze_bit_columns(flipped, 16, Representation::kSignMagnitude)
                .column_sparsity();
        EXPECT_GT(cs, prev_sparsity) << "z=" << z;
        prev_sparsity = cs;
    }
}

// ------------------------------------------------------------ search ---

TEST(FlipSearch, UntouchedStrategyKeepsBaseMetric)
{
    const auto &w = get_workload(WorkloadId::kCnnLstm);
    AccuracyProxy proxy(w);
    FlipSearch search(w, proxy);
    const auto s = search.untouched_strategy();
    EXPECT_DOUBLE_EQ(search.strategy_metric(s), w.base_metric);
    EXPECT_GT(search.strategy_compression_ratio(s), 1.0);
}

TEST(FlipSearch, MetricDecreasesWithAggressiveFlips)
{
    const auto &w = get_workload(WorkloadId::kCnnLstm);
    AccuracyProxy proxy(w);
    FlipSearch search(w, proxy);
    auto mild = search.untouched_strategy();
    auto aggressive = search.untouched_strategy();
    for (auto &cfg : aggressive) {
        cfg.zero_columns = 7;
    }
    for (auto &cfg : mild) {
        cfg.zero_columns = 2;
    }
    const double m_mild = search.strategy_metric(mild);
    const double m_aggr = search.strategy_metric(aggressive);
    EXPECT_LT(m_aggr, m_mild);
    EXPECT_LE(m_mild, w.base_metric);
    EXPECT_GT(search.strategy_compression_ratio(aggressive),
              search.strategy_compression_ratio(mild));
}

TEST(FlipSearch, GreedySearchTrajectoryIsMonotoneInCompression)
{
    const auto &w = get_workload(WorkloadId::kCnnLstm);
    AccuracyProxy proxy(w);
    FlipSearch search(w, proxy);
    GreedySearchOptions opts;
    opts.min_metric = w.base_metric - 0.1;  // small budget => short search
    opts.group_sizes = {16};
    const auto traj = search.greedy_search(search.untouched_strategy(),
                                           opts);
    ASSERT_GE(traj.size(), 2u);
    for (std::size_t i = 1; i < traj.size(); ++i) {
        EXPECT_GE(traj[i].compression_ratio,
                  traj[i - 1].compression_ratio - 1e-6);
        EXPECT_GE(traj[i].metric, opts.min_metric);
    }
}

TEST(FlipSearch, AppliedStrategyMatchesConfiguredTargets)
{
    const auto &w = get_workload(WorkloadId::kCnnLstm);
    AccuracyProxy proxy(w);
    FlipSearch search(w, proxy);
    auto strategy = search.untouched_strategy();
    strategy[w.layer_index("LSTM.1")] = {16, 5};
    const auto weights = search.apply_strategy(strategy);
    const auto &flipped = weights[w.layer_index("LSTM.1")];
    for (std::int64_t start = 0; start + 16 <= flipped.numel();
         start += 16) {
        EXPECT_GE(sm_zero_cols({flipped.data() + start, 16}), 5);
    }
    // Untouched layers are bit-identical.
    EXPECT_EQ(weights[0], w.layers[0].weights);
}

}  // namespace
}  // namespace bitwave
