/**
 * @file
 * Chaos tests — seeded fault storms over the full evaluation service.
 * The contract under test is the robustness layer's north star: under
 * injected faults **nothing hangs, every ticket reaches a terminal
 * state, and every successful result is bit-identical to the fault-free
 * golden run**. Individual mechanisms (bisection, quarantine, watchdog,
 * health-based admission) get targeted pump-driven tests; the storm
 * test runs real dispatcher threads under a wildcard transient spec
 * whose seed CI varies via BITWAVE_FAULT_SEED.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/fault.hpp"
#include "nn/synthesis.hpp"
#include "service/service.hpp"

namespace bitwave {
namespace {

using service::BackpressurePolicy;
using service::EvalService;
using service::EvalTicket;
using service::HealthState;
using service::RetryPolicy;
using service::ServiceOptions;
using service::SubmitOptions;
using service::TicketStatus;

/// Arms a fault spec for one test and guarantees disarm on every exit
/// path — a leaked spec would poison every later test in the binary.
class FaultGuard
{
  public:
    FaultGuard(const std::string &spec, std::uint64_t seed)
    {
        fault::configure(spec, seed);
    }
    ~FaultGuard() { fault::reset(); }
    FaultGuard(const FaultGuard &) = delete;
    FaultGuard &operator=(const FaultGuard &) = delete;
};

// Same tiny private workload as test_service: chaos tests must never
// pay benchmark-network synthesis.
std::shared_ptr<Workload>
tiny_net()
{
    auto net = std::make_shared<Workload>();
    net->name = "tiny-chaos";
    net->metric_name = "top-1";
    net->base_metric = 90.0;
    net->error_sensitivity = 40.0;
    Rng rng(13);
    auto add = [&](LayerDesc desc, double act_sparsity) {
        WeightProfile profile;
        profile.scale = 6.0;
        WorkloadLayer layer;
        layer.desc = std::move(desc);
        layer.weights = synthesize_weights(layer.desc, profile, rng);
        layer.activation_sparsity = act_sparsity;
        net->layers.push_back(std::move(layer));
    };
    add(make_conv("stem", 16, 3, 16, 16, 3, 3, 1), 0.0);
    add(make_pointwise("pw", 32, 16, 16, 16), 0.4);
    add(make_linear("fc", 10, 32), 0.4);
    net->content_hash = 0xC8A05;
    for (auto &layer : net->layers) {
        layer.weights_hash = layer.compute_weights_hash();
        net->content_hash ^= layer.weights_hash * 0x9E3779B97F4A7C15ULL;
    }
    return net;
}

eval::Scenario
tiny_scenario(const std::shared_ptr<Workload> &net,
              const AcceleratorConfig &accel)
{
    eval::Scenario s;
    s.custom_workload = net;
    s.accel = accel;
    return s;
}

// Distinct-fingerprint scenarios spanning the accelerator zoo plus a
// bitflip and a stats engine variant (mirrors test_service).
std::vector<eval::Scenario>
distinct_scenarios(const std::shared_ptr<Workload> &net)
{
    std::vector<eval::Scenario> scenarios;
    for (const auto &cfg : {make_scnn(), make_stripes(), make_bitlet(),
                            make_huaa(),
                            make_bitwave(BitWaveVariant::kDfSm)}) {
        scenarios.push_back(tiny_scenario(net, cfg));
    }
    eval::Scenario flipped =
        tiny_scenario(net, make_bitwave(BitWaveVariant::kDfSmBf));
    flipped.bitflip.mode = eval::BitflipSpec::Mode::kUniform;
    flipped.bitflip.group_size = 16;
    flipped.bitflip.zero_columns = 4;
    scenarios.push_back(std::move(flipped));
    eval::Scenario stats = tiny_scenario(net, make_scnn());
    stats.engine = eval::EngineKind::kStats;
    scenarios.push_back(std::move(stats));
    return scenarios;
}

void
expect_identical(const eval::ScenarioResult &a,
                 const eval::ScenarioResult &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.rng_seed, b.rng_seed);
    EXPECT_EQ(a.total_cycles, b.total_cycles) << a.name;
    EXPECT_EQ(a.energy.total_pj, b.energy.total_pj) << a.name;
    EXPECT_EQ(a.nominal_macs, b.nominal_macs) << a.name;
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t l = 0; l < a.layers.size(); ++l) {
        EXPECT_EQ(a.layers[l].layer_name, b.layers[l].layer_name);
        EXPECT_EQ(a.layers[l].total_cycles, b.layers[l].total_cycles);
        EXPECT_EQ(a.layers[l].energy.total_pj, b.layers[l].energy.total_pj);
    }
}

ServiceOptions
pump_options(std::size_t capacity,
             BackpressurePolicy policy = BackpressurePolicy::kReject)
{
    ServiceOptions options;
    options.queue_capacity = capacity;
    options.policy = policy;
    options.dispatchers = 0;
    options.runner.threads = 1;
    return options;
}

/// Drive a pump-mode service until every ticket is terminal (bounded by
/// a generous wall-clock budget so a regression fails instead of
/// hanging the suite).
void
pump_until_terminal(EvalService &service,
                    const std::vector<EvalTicket> &tickets)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    for (;;) {
        bool pending = false;
        for (const auto &ticket : tickets) {
            if (!service::ticket_status_terminal(ticket.status())) {
                pending = true;
                break;
            }
        }
        if (!pending) {
            return;
        }
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "tickets did not terminate";
        if (service.pump(4) == 0) {
            // Backoff gates may hold every queued retry; give them time.
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }
}

// ---------------------------------------------------------------- storm ---

// The tentpole contract: a seeded 5% wildcard transient storm across
// every fault point (IO, queue admission, runner chunks, bit-plane
// packing, service dispatch) with real dispatcher threads. No hangs,
// every ticket terminal, every kDone result bit-identical to the
// fault-free golden run. CI sweeps BITWAVE_FAULT_SEED over 3 seeds.
TEST(Chaos, SeededTransientStormTerminatesBitIdentical)
{
    const auto net = tiny_net();

    // Distinct fingerprints per ticket (dedup would collapse repeats
    // into a handful of jobs and starve the storm of fault draws).
    std::vector<eval::Scenario> requests;
    constexpr int kRepeats = 6;
    for (int r = 0; r < kRepeats; ++r) {
        for (auto s : distinct_scenarios(net)) {
            s.seed = static_cast<std::uint64_t>(r) * 100 + requests.size();
            requests.push_back(std::move(s));
        }
    }

    // Goldens first, before any fault is armed.
    std::vector<eval::ScenarioResult> golden;
    for (const auto &s : requests) {
        golden.push_back(eval::ScenarioRunner().run({s}).front());
    }

    const auto seed = static_cast<std::uint64_t>(
        env_positive_int("BITWAVE_FAULT_SEED", 0x5eed));
    FaultGuard storm("*=0.05:transient", seed);

    ServiceOptions options;
    options.queue_capacity = 64;
    options.policy = BackpressurePolicy::kBlock;
    options.dispatchers = 2;
    options.runner.threads = 2;
    options.runner.shard_layers = 1;  // per-layer chunks: more draws
    options.retry.max_attempts = 8;
    options.retry.backoff_seconds = 0.001;
    options.retry.max_backoff_seconds = 0.02;
    options.quarantine_ttl_seconds = 30.0;
    EvalService service(options);

    std::vector<EvalTicket> tickets;
    for (const auto &s : requests) {
        tickets.push_back(service.submit(s));
    }

    std::size_t done = 0;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        ASSERT_TRUE(tickets[i].wait_for(120.0))
            << "ticket " << i << " never terminated";
        const TicketStatus status = tickets[i].status();
        EXPECT_TRUE(service::ticket_status_terminal(status));
        if (status == TicketStatus::kDone) {
            ++done;
            expect_identical(tickets[i].result(), golden[i]);
        } else {
            // Terminal failures under a transient-only storm must carry
            // the transient taxonomy (retries exhausted), never be a
            // silent wrong-answer.
            EXPECT_EQ(status, TicketStatus::kFailed);
            EXPECT_EQ(tickets[i].error_kind(), eval::ErrorKind::kTransient);
        }
    }
    service.shutdown();

    EXPECT_GT(done, 0u) << "storm drowned every request";
    EXPECT_GT(fault::stats().fired, 0u) << "storm never fired";
    const auto stats = service.stats();
    EXPECT_EQ(stats.completed, done);
}

// ------------------------------------------------------------- bisection ---

// One poisoned job coalesced with innocent siblings: bisection isolates
// it, the siblings complete bit-identically, the poison fingerprint is
// quarantined, and an identical resubmission fails fast without
// re-evaluating.
TEST(Chaos, PoisonJobIsBisectedQuarantinedAndFailsFast)
{
    const auto net = tiny_net();
    auto scenarios = distinct_scenarios(net);
    std::vector<eval::ScenarioResult> golden;
    for (const auto &s : scenarios) {
        golden.push_back(eval::ScenarioRunner().run({s}).front());
    }

    eval::Scenario poison = tiny_scenario(net, make_scnn());
    poison.label = "poison";
    poison.seed = 0xBAD;

    FaultGuard guard("runner.chunk@poison=1:transient", 7);

    ServiceOptions options = pump_options(16);
    options.retry.max_attempts = 2;
    options.retry.backoff_seconds = 0.0;
    options.quarantine_ttl_seconds = 60.0;
    EvalService service(options);

    std::vector<EvalTicket> tickets;
    for (const auto &s : scenarios) {
        tickets.push_back(service.submit(s));
    }
    tickets.push_back(service.submit(poison));
    pump_until_terminal(service, tickets);

    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        ASSERT_EQ(tickets[i].status(), TicketStatus::kDone)
            << "innocent sibling " << i << " failed";
        expect_identical(tickets[i].result(), golden[i]);
    }
    EXPECT_EQ(tickets.back().status(), TicketStatus::kFailed);
    EXPECT_EQ(tickets.back().error_kind(), eval::ErrorKind::kTransient);

    auto stats = service.stats();
    EXPECT_GE(stats.bisections, 1u);
    EXPECT_GE(stats.retries, 1u);
    EXPECT_EQ(stats.quarantined, 1u);

    // Fail-fast on the quarantined fingerprint: terminal immediately,
    // same taxonomy, no pump needed.
    EvalTicket again = service.submit(poison);
    EXPECT_EQ(again.status(), TicketStatus::kFailed);
    EXPECT_EQ(again.error_kind(), eval::ErrorKind::kTransient);
    EXPECT_EQ(service.stats().quarantine_hits, 1u);
    service.shutdown();
}

// Quarantine entries expire: after the TTL the fingerprint is
// re-admitted and (with the fault gone) completes normally.
TEST(Chaos, QuarantineExpiresAndReadmits)
{
    const auto net = tiny_net();
    eval::Scenario poison = tiny_scenario(net, make_scnn());
    poison.label = "poison";
    const auto golden = eval::ScenarioRunner().run({poison}).front();

    ServiceOptions options = pump_options(4);
    options.retry.max_attempts = 1;
    options.retry.backoff_seconds = 0.0;
    options.quarantine_ttl_seconds = 0.05;
    EvalService service(options);

    {
        FaultGuard guard("runner.chunk@poison=1:transient", 7);
        EvalTicket ticket = service.submit(poison);
        pump_until_terminal(service, {ticket});
        ASSERT_EQ(ticket.status(), TicketStatus::kFailed);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(80));

    EvalTicket retry = service.submit(poison);
    ASSERT_TRUE(retry.valid());
    pump_until_terminal(service, {retry});
    ASSERT_EQ(retry.status(), TicketStatus::kDone);
    expect_identical(retry.result(), golden);
    EXPECT_EQ(service.stats().quarantine_hits, 0u);
    service.shutdown();
}

// -------------------------------------------------------------- watchdog ---

// Delay faults stall every chunk past the stall budget; the watchdog
// cancels the batch through the cooperative flag and the jobs retry as
// transient. With the fault still armed the retries exhaust into
// kFailed (nothing hangs); with faults cleared the same scenarios
// complete bit-identically on a fresh service.
TEST(Chaos, WatchdogReclaimsStalledBatches)
{
    const auto net = tiny_net();
    auto scenarios = distinct_scenarios(net);
    scenarios.resize(3);
    std::vector<eval::ScenarioResult> golden;
    for (const auto &s : scenarios) {
        golden.push_back(eval::ScenarioRunner().run({s}).front());
    }

    {
        FaultGuard guard("runner.chunk=1:delay:50", 7);
        ServiceOptions options = pump_options(8);
        // Per-layer chunks on a real worker pool: the cooperative
        // cancel flag is polled at chunk boundaries, and the
        // single-thread path inlines the whole batch as one chunk.
        options.runner.threads = 2;
        options.runner.shard_layers = 1;
        options.retry.max_attempts = 2;
        options.retry.backoff_seconds = 0.0;
        options.stall_budget_seconds = 0.02;
        options.quarantine_ttl_seconds = 0.0;  // keep fingerprints clean
        EvalService service(options);

        std::vector<EvalTicket> tickets;
        for (const auto &s : scenarios) {
            tickets.push_back(service.submit(s));
        }
        pump_until_terminal(service, tickets);
        for (auto &ticket : tickets) {
            EXPECT_EQ(ticket.status(), TicketStatus::kFailed);
            EXPECT_EQ(ticket.error_kind(), eval::ErrorKind::kTransient);
        }
        const auto stats = service.stats();
        EXPECT_GE(stats.watchdog_cancels, 1u);
        EXPECT_GE(stats.retries, 1u);
        service.shutdown();
    }

    // Faults cleared: same scenarios complete despite the watchdog
    // staying armed (healthy batches finish inside the budget).
    ServiceOptions options = pump_options(8);
    options.stall_budget_seconds = 5.0;
    EvalService service(options);
    std::vector<EvalTicket> tickets;
    for (const auto &s : scenarios) {
        tickets.push_back(service.submit(s));
    }
    pump_until_terminal(service, tickets);
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        ASSERT_EQ(tickets[i].status(), TicketStatus::kDone);
        expect_identical(tickets[i].result(), golden[i]);
    }
    EXPECT_EQ(service.stats().watchdog_cancels, 0u);
    service.shutdown();
}

// ---------------------------------------------------------------- health ---

// A failure storm drives health to kFailing, which degrades admission
// to shed-oldest (a blocked submitter under kBlock would otherwise
// stall the client); once the storm clears, sustained successes heal
// the window back to kHealthy.
TEST(Chaos, FailureStormDegradesAdmissionAndRecovers)
{
    const auto net = tiny_net();
    auto scenario = [&](std::uint64_t seed) {
        eval::Scenario s = tiny_scenario(net, make_scnn());
        s.seed = seed;  // distinct fingerprint per seed
        return s;
    };

    ServiceOptions options = pump_options(1, BackpressurePolicy::kBlock);
    options.retry.max_attempts = 1;
    options.quarantine_ttl_seconds = 0.0;
    EvalService service(options);

    {
        FaultGuard guard("service.dispatch=1:error", 7);
        for (std::uint64_t i = 0; i < 10; ++i) {
            EvalTicket ticket = service.submit(scenario(100 + i));
            pump_until_terminal(service, {ticket});
            EXPECT_EQ(ticket.status(), TicketStatus::kFailed);
            EXPECT_EQ(ticket.error_kind(), eval::ErrorKind::kInternal);
        }
        EXPECT_EQ(service.stats().health, HealthState::kFailing);

        // Admission degraded: with the 1-deep queue full, a second
        // submission under kBlock sheds the oldest instead of blocking
        // this thread forever.
        EvalTicket first = service.submit(scenario(200));
        EXPECT_EQ(first.status(), TicketStatus::kQueued);
        EvalTicket second = service.submit(scenario(201));
        EXPECT_EQ(first.status(), TicketStatus::kShed);
        EXPECT_EQ(second.status(), TicketStatus::kQueued);
        EXPECT_GE(service.stats().shed, 1u);
        // Drain the survivor (still inside the storm: it fails).
        pump_until_terminal(service, {second});
    }

    // Storm over: successes wash the failure window out.
    for (std::uint64_t i = 0; i < 33; ++i) {
        EvalTicket ticket = service.submit(scenario(300 + i));
        pump_until_terminal(service, {ticket});
        ASSERT_EQ(ticket.status(), TicketStatus::kDone);
    }
    EXPECT_EQ(service.stats().health, HealthState::kHealthy);
    service.shutdown();
}

}  // namespace
}  // namespace bitwave
