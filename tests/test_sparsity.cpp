/**
 * @file
 * Unit tests for sparsity statistics and bit-column analysis, including
 * the paper's running example of Fig. 4.
 */
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "sparsity/bitcolumn.hpp"
#include "sparsity/stats.hpp"

namespace bitwave {
namespace {

Int8Tensor
random_laplacian_tensor(std::int64_t n, double scale, std::uint64_t seed)
{
    Rng rng(seed);
    Int8Tensor t({n});
    for (std::int64_t i = 0; i < n; ++i) {
        t[i] = static_cast<std::int8_t>(std::clamp<int>(
            static_cast<int>(rng.laplacian(scale)), -127, 127));
    }
    return t;
}

TEST(SparsityStats, CountsZeroWords)
{
    Int8Tensor t({5}, {0, 1, 0, -2, 0});
    const auto s = compute_sparsity(t);
    EXPECT_EQ(s.words, 5);
    EXPECT_EQ(s.zero_words, 3);
    EXPECT_DOUBLE_EQ(s.value_sparsity(), 0.6);
}

TEST(SparsityStats, BitSparsityPerRepresentation)
{
    // -1: 2C = 0xFF (0 zero bits), SM = 0x81 (6 zero bits).
    Int8Tensor t({1}, {-1});
    const auto s = compute_sparsity(t);
    EXPECT_DOUBLE_EQ(s.bit_sparsity(Representation::kTwosComplement), 0.0);
    EXPECT_DOUBLE_EQ(s.bit_sparsity(Representation::kSignMagnitude),
                     6.0 / 8.0);
}

TEST(SparsityStats, SparsityRatioDefinition)
{
    Int8Tensor t({4}, {0, 1, 2, 3});
    const auto s = compute_sparsity(t);
    const double vs = s.value_sparsity();
    const double bs = s.bit_sparsity(Representation::kTwosComplement);
    EXPECT_DOUBLE_EQ(s.sparsity_ratio(Representation::kTwosComplement),
                     bs / vs);
}

TEST(SparsityStats, MergeAccumulates)
{
    Int8Tensor a({2}, {0, 1});
    Int8Tensor b({2}, {0, 0});
    auto s = compute_sparsity(a);
    s.merge(compute_sparsity(b));
    EXPECT_EQ(s.words, 4);
    EXPECT_EQ(s.zero_words, 3);
}

TEST(SparsityStats, SignMagnitudeSparsityExceedsTwosComplement)
{
    // On realistic (Laplacian, small-magnitude-dominated) weights the
    // paper's core observation must hold: SM bit sparsity > 2C bit
    // sparsity > value sparsity (Fig. 1).
    const auto t = random_laplacian_tensor(1 << 14, 10.0, 99);
    const auto s = compute_sparsity(t);
    EXPECT_GT(s.bit_sparsity(Representation::kSignMagnitude),
              s.bit_sparsity(Representation::kTwosComplement));
    EXPECT_GT(s.bit_sparsity(Representation::kTwosComplement),
              s.value_sparsity());
}

TEST(BitColumn, IndexOfAllZeroGroupIsZero)
{
    const std::int8_t g[4] = {0, 0, 0, 0};
    EXPECT_EQ(column_index(g, Representation::kTwosComplement), 0);
    EXPECT_EQ(column_index(g, Representation::kSignMagnitude), 0);
    EXPECT_EQ(zero_column_count(g, Representation::kSignMagnitude), 8);
}

TEST(BitColumn, IndexIsOrOfEncodings)
{
    const std::int8_t g[2] = {1, 2};  // 0000'0001 | 0000'0010
    EXPECT_EQ(column_index(g, Representation::kTwosComplement), 0x03);
    EXPECT_EQ(zero_column_count(g, Representation::kTwosComplement), 6);
}

TEST(BitColumn, SmallNegativesKillTwosComplementColumns)
{
    // One small negative value sets all high columns in 2C but only the
    // sign column in SM — the Fig. 4(a) vs 4(b) contrast.
    const std::int8_t g[4] = {2, 4, -3, 6};
    const int zeros_2c = zero_column_count(g, Representation::kTwosComplement);
    const int zeros_sm = zero_column_count(g, Representation::kSignMagnitude);
    EXPECT_LT(zeros_2c, zeros_sm);
    EXPECT_GE(zeros_sm, 4);
}

TEST(BitColumn, SignColumnZeroWhenAllPositive)
{
    const std::int8_t g[4] = {1, 2, 3, 4};
    const auto idx = column_index(g, Representation::kSignMagnitude);
    EXPECT_FALSE(test_bit(idx, 7));
}

TEST(BitColumn, SignColumnSetWhenAnyNegative)
{
    const std::int8_t g[4] = {1, 2, -3, 4};
    const auto idx = column_index(g, Representation::kSignMagnitude);
    EXPECT_TRUE(test_bit(idx, 7));
}

TEST(BitColumn, ColumnBitsExtractsPlane)
{
    const std::int8_t g[3] = {1, 3, 0};  // bit0: w0,w1 -> 0b011
    EXPECT_EQ(column_bits(g, 0, Representation::kTwosComplement), 0b011u);
    EXPECT_EQ(column_bits(g, 1, Representation::kTwosComplement), 0b010u);
    EXPECT_EQ(column_bits(g, 7, Representation::kTwosComplement), 0u);
}

TEST(BitColumn, AnalyzeCountsGroupsWithPadding)
{
    Int8Tensor t({10});
    t.fill(1);
    const auto stats =
        analyze_bit_columns(t, 4, Representation::kSignMagnitude);
    EXPECT_EQ(stats.groups, 3);  // 4 + 4 + 2(padded)
    EXPECT_EQ(stats.columns, 24);
    // Only column 0 non-zero in each group.
    EXPECT_EQ(stats.zero_columns, 21);
    EXPECT_EQ(stats.zero_column_hist[7], 3);
}

TEST(BitColumn, HistogramSumsToGroups)
{
    const auto t = random_laplacian_tensor(4096, 14.0, 123);
    const auto stats =
        analyze_bit_columns(t, 16, Representation::kSignMagnitude);
    std::int64_t sum = 0;
    for (int k = 0; k <= 8; ++k) {
        sum += stats.zero_column_hist[k];
    }
    EXPECT_EQ(sum, stats.groups);
}

TEST(BitColumn, SparsityDecreasesWithGroupSize)
{
    // Larger groups have fewer co-occurring zero columns (Section III-C).
    const auto t = random_laplacian_tensor(1 << 15, 12.0, 7);
    double prev = 1.0;
    for (int g : {1, 2, 4, 8, 16, 32, 64}) {
        const double cs =
            analyze_bit_columns(t, g, Representation::kSignMagnitude)
                .column_sparsity();
        EXPECT_LE(cs, prev + 1e-12) << "group size " << g;
        prev = cs;
    }
}

TEST(BitColumn, SignMagnitudeBeatsTwosComplementOnWeights)
{
    const auto t = random_laplacian_tensor(1 << 15, 12.0, 31);
    for (int g : {8, 16, 32}) {
        const double sm =
            analyze_bit_columns(t, g, Representation::kSignMagnitude)
                .column_sparsity();
        const double tc =
            analyze_bit_columns(t, g, Representation::kTwosComplement)
                .column_sparsity();
        EXPECT_GT(sm, tc) << "group size " << g;
    }
}

TEST(BitColumn, ColumnIndexesMatchAnalyze)
{
    const auto t = random_laplacian_tensor(1000, 9.0, 17);
    const auto idxs =
        column_indexes(t, 8, Representation::kSignMagnitude);
    const auto stats =
        analyze_bit_columns(t, 8, Representation::kSignMagnitude);
    ASSERT_EQ(static_cast<std::int64_t>(idxs.size()), stats.groups);
    std::int64_t zeros = 0;
    for (auto idx : idxs) {
        zeros += 8 - popcount8(idx);
    }
    EXPECT_EQ(zeros, stats.zero_columns);
}

TEST(BitColumn, MeanNonzeroColumnsConsistent)
{
    const auto t = random_laplacian_tensor(2048, 10.0, 53);
    const auto stats =
        analyze_bit_columns(t, 16, Representation::kSignMagnitude);
    EXPECT_NEAR(stats.mean_nonzero_columns(),
                8.0 * (1.0 - stats.column_sparsity()), 1e-9);
}

// Property sweep: zero-column count via the index must equal a direct
// per-column scan, for many random groups and all group sizes.
class BitColumnProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BitColumnProperty, IndexMatchesDirectColumnScan)
{
    const int g_size = GetParam();
    Rng rng(1000 + static_cast<std::uint64_t>(g_size));
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::int8_t> group(static_cast<std::size_t>(g_size));
        for (auto &w : group) {
            w = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
        }
        for (auto repr : {Representation::kTwosComplement,
                          Representation::kSignMagnitude}) {
            const auto idx = column_index(group, repr);
            for (int b = 0; b < 8; ++b) {
                const bool nz = column_bits(group, b, repr) != 0;
                EXPECT_EQ(test_bit(idx, b), nz)
                    << "g=" << g_size << " bit=" << b;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllGroupSizes, BitColumnProperty,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace bitwave
