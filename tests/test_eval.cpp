/**
 * @file
 * Tests for the unified evaluation subsystem: Scenario naming and
 * seeding, the shared energy-pricing/latency core, sim-vs-model
 * agreement through the shared traversal, ScenarioRunner determinism
 * under 1 vs N threads, and the core/pipeline facade that drives it.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bitflip/bitflip.hpp"
#include "core/pipeline.hpp"
#include "energy/pricing.hpp"
#include "eval/runner.hpp"
#include "nn/synthesis.hpp"
#include "nn/workloads.hpp"
#include "sparsity/stats.hpp"

namespace bitwave {
namespace {

// ------------------------------------------------------ shared pricing ---

TEST(Pricing, EnergyComponentsSumToTotal)
{
    EnergyActivity a;
    a.mac_units = 1000.0;
    a.e_mac_pj = 0.1;
    a.sram_read_bits = 4096.0;
    a.sram_write_bits = 512.0;
    a.reg_words = 64.0;
    a.dram_bits = 8192.0;
    a.cycles = 100.0;
    const EnergyBreakdown e =
        price_energy(a, default_tech(), default_dram());
    EXPECT_GT(e.mac_pj, 0.0);
    EXPECT_GT(e.sram_pj, 0.0);
    EXPECT_GT(e.reg_pj, 0.0);
    EXPECT_GT(e.dram_pj, 0.0);
    EXPECT_GT(e.static_pj, 0.0);
    EXPECT_NEAR(e.total_pj,
                e.mac_pj + e.sram_pj + e.reg_pj + e.dram_pj + e.static_pj,
                e.total_pj * 1e-12);
}

TEST(Pricing, BreakdownAccumulates)
{
    EnergyActivity a;
    a.mac_units = 10.0;
    a.e_mac_pj = 1.0;
    a.cycles = 5.0;
    EnergyBreakdown sum = price_energy(a, default_tech(), default_dram());
    const EnergyBreakdown one = sum;
    sum += one;
    EXPECT_DOUBLE_EQ(sum.total_pj, 2.0 * one.total_pj);
    EXPECT_DOUBLE_EQ(sum.mac_pj, 2.0 * one.mac_pj);
}

TEST(Pricing, LatencyOverlapsFetchAndCompute)
{
    LatencyParts p;
    p.compute_cycles = 100.0;
    p.weight_fetch_cycles = 40.0;
    p.act_fetch_cycles = 250.0;  // fetch-bound layer
    p.dram_cycles = 10.0;
    p.output_write_cycles = 5.0;
    EXPECT_DOUBLE_EQ(compose_latency(p), 10.0 + 5.0 + 250.0);
    p.act_fetch_cycles = 20.0;  // compute-bound layer
    EXPECT_DOUBLE_EQ(compose_latency(p), 10.0 + 5.0 + 100.0);
}

// ------------------------------------------------------------ scenario ---

TEST(Scenario, NameDescribesTheCombination)
{
    eval::Scenario s;
    s.accel = make_scnn();
    s.workload = WorkloadId::kResNet18;
    EXPECT_EQ(s.name(), s.accel.name + "/ResNet18");

    s.bitflip.mode = eval::BitflipSpec::Mode::kUniform;
    s.bitflip.group_size = 16;
    s.bitflip.zero_columns = 4;
    EXPECT_NE(s.name().find("+bf(g16,z4)"), std::string::npos);

    s.engine = eval::EngineKind::kCycleSim;
    EXPECT_NE(s.name().find("(sim)"), std::string::npos);

    s.label = "custom";
    EXPECT_EQ(s.name(), "custom");
}

TEST(Scenario, RngSeedIsDeterministicAndPositionDependent)
{
    eval::Scenario s;
    s.workload = WorkloadId::kMobileNetV2;
    EXPECT_EQ(eval::scenario_rng_seed(s, 3), eval::scenario_rng_seed(s, 3));
    EXPECT_NE(eval::scenario_rng_seed(s, 3), eval::scenario_rng_seed(s, 4));
    eval::Scenario salted = s;
    salted.seed = 17;
    EXPECT_NE(eval::scenario_rng_seed(s, 3),
              eval::scenario_rng_seed(salted, 3));
}

// A small private workload so eval tests never pay BERT/ResNet synthesis.
Workload
tiny_workload()
{
    Workload net;
    net.name = "tiny";
    net.metric_name = "top-1";
    net.base_metric = 90.0;
    net.error_sensitivity = 40.0;
    Rng rng(7);
    auto add = [&](LayerDesc desc, double act_sparsity) {
        WeightProfile profile;
        profile.scale = 6.0;
        WorkloadLayer layer;
        layer.desc = std::move(desc);
        layer.weights = synthesize_weights(layer.desc, profile, rng);
        layer.activation_sparsity = act_sparsity;
        net.layers.push_back(std::move(layer));
    };
    add(make_conv("stem", 16, 3, 16, 16, 3, 3, 1), 0.0);
    add(make_pointwise("pw", 32, 16, 16, 16), 0.4);
    add(make_linear("fc", 10, 32), 0.4);
    return net;
}

TEST(Scenario, LayerFilterRestrictsEvaluation)
{
    const auto net = std::make_shared<Workload>(tiny_workload());
    eval::Scenario s;
    s.custom_workload = net;
    s.accel = make_bitwave(BitWaveVariant::kDfSm);
    s.layer_filter = {"pw"};
    const auto r = eval::evaluate_scenario(s);
    ASSERT_EQ(r.layers.size(), 1u);
    EXPECT_EQ(r.layers.front().layer_name, "pw");
    EXPECT_EQ(r.nominal_macs, net->layers[1].desc.macs());
    EXPECT_GT(r.total_cycles, 0.0);
}

// ----------------------------------------- sim vs model (shared core) ---

TEST(Engine, SimAndModelAgreeThroughTheSharedCore)
{
    const auto net = std::make_shared<Workload>(tiny_workload());
    eval::Scenario model;
    model.custom_workload = net;
    model.accel = make_bitwave(BitWaveVariant::kDfSm);
    eval::Scenario sim = model;
    sim.engine = eval::EngineKind::kCycleSim;

    const auto results = eval::ScenarioRunner().run({model, sim});
    ASSERT_EQ(results.size(), 2u);
    ASSERT_EQ(results[0].layers.size(), results[1].layers.size());
    for (std::size_t l = 0; l < results[0].layers.size(); ++l) {
        const auto &m = results[0].layers[l];
        const auto &s = results[1].layers[l];
        EXPECT_EQ(m.layer_name, s.layer_name);
        // Independent implementations of the same machine: compute
        // cycles within the validation bench's tolerance.
        EXPECT_NEAR(s.compute_cycles / m.compute_cycles, 1.0, 0.15)
            << m.layer_name;
    }
}

// -------------------------------------------------------------- runner ---

std::vector<eval::Scenario>
determinism_batch()
{
    const auto net = std::make_shared<Workload>(tiny_workload());
    std::vector<eval::Scenario> scenarios;
    for (const auto &cfg : {make_scnn(), make_stripes(), make_bitlet(),
                            make_huaa(),
                            make_bitwave(BitWaveVariant::kDfSm)}) {
        eval::Scenario s;
        s.custom_workload = net;
        s.accel = cfg;
        scenarios.push_back(std::move(s));
    }
    eval::Scenario flipped;
    flipped.custom_workload = net;
    flipped.accel = make_bitwave(BitWaveVariant::kDfSmBf);
    flipped.bitflip.mode = eval::BitflipSpec::Mode::kUniform;
    scenarios.push_back(std::move(flipped));
    eval::Scenario sim;
    sim.custom_workload = net;
    sim.engine = eval::EngineKind::kCycleSim;
    scenarios.push_back(std::move(sim));
    return scenarios;
}

TEST(ScenarioRunner, NThreadsBitIdenticalToOneThread)
{
    const auto scenarios = determinism_batch();

    eval::RunnerOptions serial;
    serial.threads = 1;
    eval::RunnerOptions parallel;
    parallel.threads = 4;

    eval::RunnerReport report;
    const auto a = eval::ScenarioRunner(serial).run(scenarios);
    const auto b = eval::ScenarioRunner(parallel).run(scenarios, &report);

    EXPECT_EQ(report.threads_used, 4);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].rng_seed, b[i].rng_seed);
        // Bit-identical, not approximately equal: the runner's contract.
        EXPECT_EQ(a[i].total_cycles, b[i].total_cycles) << a[i].name;
        EXPECT_EQ(a[i].energy.total_pj, b[i].energy.total_pj) << a[i].name;
        ASSERT_EQ(a[i].layers.size(), b[i].layers.size());
        for (std::size_t l = 0; l < a[i].layers.size(); ++l) {
            EXPECT_EQ(a[i].layers[l].total_cycles,
                      b[i].layers[l].total_cycles);
            EXPECT_EQ(a[i].layers[l].energy.total_pj,
                      b[i].layers[l].energy.total_pj);
        }
    }
}

TEST(ScenarioRunner, IntraScenarioSplittingIsBitIdentical)
{
    // One scenario, many shards: splitting by layer ranges across N
    // threads must reproduce the unsplit single-thread result bit for
    // bit — including the sim engine, whose per-layer RNG streams are
    // derived from (scenario seed, layer index), never from shards.
    for (const auto engine :
         {eval::EngineKind::kAnalytical, eval::EngineKind::kCycleSim,
          eval::EngineKind::kStats}) {
        eval::Scenario s;
        s.custom_workload = std::make_shared<Workload>(tiny_workload());
        s.engine = engine;
        s.accel = make_bitwave(BitWaveVariant::kDfSm);
        s.bitflip.mode = eval::BitflipSpec::Mode::kUniform;

        eval::RunnerOptions unsplit;
        unsplit.threads = 1;
        unsplit.shard_layers = 0;  // whole scenario in one task
        eval::RunnerOptions split;
        split.threads = 4;
        split.shard_layers = 1;  // one task per layer

        eval::RunnerReport report;
        const auto a = eval::ScenarioRunner(unsplit).run({s});
        const auto b = eval::ScenarioRunner(split).run({s}, &report);
        EXPECT_EQ(report.shards, 3);
        ASSERT_EQ(a.size(), 1u);
        ASSERT_EQ(b.size(), 1u);
        EXPECT_EQ(a[0].total_cycles, b[0].total_cycles);
        EXPECT_EQ(a[0].energy.total_pj, b[0].energy.total_pj);
        EXPECT_EQ(a[0].nominal_macs, b[0].nominal_macs);
        ASSERT_EQ(a[0].layers.size(), b[0].layers.size());
        for (std::size_t l = 0; l < a[0].layers.size(); ++l) {
            EXPECT_EQ(a[0].layers[l].layer_name, b[0].layers[l].layer_name);
            EXPECT_EQ(a[0].layers[l].total_cycles,
                      b[0].layers[l].total_cycles);
            EXPECT_EQ(a[0].layers[l].energy.total_pj,
                      b[0].layers[l].energy.total_pj);
        }
    }
}

TEST(ScenarioRunner, AdversarialStealOrderIsBitIdentical)
{
    // The work-stealing contract: scheduling — thread count, chunk
    // grain, steal order, initial task order, even the scheduler
    // implementation — must never show up in results. Run the same
    // batch under a seeded adversarial scheduler (forced steals in
    // seeded victim order, reversed initial task assignment), several
    // chaos seeds, both schedulers, and 1 vs N threads, and require
    // bit-identical ScenarioResults throughout.
    const auto scenarios = determinism_batch();

    eval::RunnerOptions serial;
    serial.threads = 1;
    const auto golden = eval::ScenarioRunner(serial).run(scenarios);

    std::vector<eval::RunnerOptions> variants;
    for (const std::uint64_t seed : {1ull, 99ull, 0xD15EA5Eull}) {
        eval::RunnerOptions chaotic;
        chaotic.threads = 4;
        chaotic.shard_layers = 1;  // max splitting: every layer steals
        chaotic.chaos_seed = seed;
        variants.push_back(chaotic);
    }
    {
        eval::RunnerOptions coarse_chaos;
        coarse_chaos.threads = 3;
        coarse_chaos.shard_layers = 2;
        coarse_chaos.chaos_seed = 7;
        variants.push_back(coarse_chaos);
        eval::RunnerOptions legacy;
        legacy.threads = 4;
        legacy.scheduler = eval::SchedulerKind::kStaticSlice;
        variants.push_back(legacy);
    }
    for (std::size_t v = 0; v < variants.size(); ++v) {
        const auto got = eval::ScenarioRunner(variants[v]).run(scenarios);
        ASSERT_EQ(got.size(), golden.size()) << "variant " << v;
        for (std::size_t i = 0; i < golden.size(); ++i) {
            EXPECT_EQ(got[i].name, golden[i].name) << "variant " << v;
            EXPECT_EQ(got[i].rng_seed, golden[i].rng_seed);
            EXPECT_EQ(got[i].total_cycles, golden[i].total_cycles)
                << "variant " << v << " " << golden[i].name;
            EXPECT_EQ(got[i].energy.total_pj, golden[i].energy.total_pj)
                << "variant " << v << " " << golden[i].name;
            ASSERT_EQ(got[i].layers.size(), golden[i].layers.size());
            for (std::size_t l = 0; l < golden[i].layers.size(); ++l) {
                EXPECT_EQ(got[i].layers[l].total_cycles,
                          golden[i].layers[l].total_cycles);
                EXPECT_EQ(got[i].layers[l].energy.total_pj,
                          golden[i].layers[l].energy.total_pj);
            }
        }
    }
}

TEST(ScenarioRunner, SchedulersReportConsistentDiagnostics)
{
    const auto scenarios = determinism_batch();
    eval::RunnerOptions steal;
    steal.threads = 4;
    steal.shard_layers = 1;
    steal.chaos_seed = 3;  // force cross-worker traffic
    eval::RunnerReport report;
    eval::ScenarioRunner(steal).run(scenarios, &report);
    EXPECT_EQ(report.threads_used, 4);
    // 7 scenarios x 3 layers at grain 1.
    EXPECT_EQ(report.shards, 21);
    EXPECT_GE(report.steals, 1) << "adversarial run must actually steal";

    eval::RunnerOptions legacy = steal;
    legacy.chaos_seed = 0;
    legacy.scheduler = eval::SchedulerKind::kStaticSlice;
    eval::ScenarioRunner(legacy).run(scenarios, &report);
    EXPECT_EQ(report.steals, 0) << "the static pool never steals";
}

TEST(ScenarioRunner, ShardedEvaluationMatchesEvaluateScenario)
{
    // The runner's prepare/evaluate-range/finalize pipeline must agree
    // with the direct evaluate_scenario() path for the same seed.
    const auto net = std::make_shared<Workload>(tiny_workload());
    eval::Scenario s;
    s.custom_workload = net;
    s.accel = make_scnn();
    const auto direct =
        eval::evaluate_scenario(s, eval::scenario_rng_seed(s, 0));
    eval::RunnerOptions options;
    options.threads = 2;
    options.shard_layers = 2;
    const auto batch = eval::ScenarioRunner(options).run({s});
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(direct.total_cycles, batch[0].total_cycles);
    EXPECT_EQ(direct.energy.total_pj, batch[0].energy.total_pj);
}

// --------------------------------------------------------- prep caches ---

TEST(PrepCache, CachedBitflipSharesOnePreparedTensor)
{
    const Workload net = tiny_workload();
    const auto &weights = net.layers[0].weights;
    const auto a = eval::cached_bitflip(weights, 0, 16, 4);
    const auto b = eval::cached_bitflip(weights, 0, 16, 4);
    ASSERT_TRUE(a != nullptr);
    EXPECT_EQ(a.get(), b.get()) << "repeated prep must hit the cache";
    // Cache hit correctness: identical to a fresh flip.
    const Int8Tensor fresh = bitflip_tensor(weights, 16, 4);
    ASSERT_EQ(a->numel(), fresh.numel());
    for (std::int64_t i = 0; i < fresh.numel(); ++i) {
        ASSERT_EQ((*a)[i], fresh[i]) << "at " << i;
    }
    // A different flip target is a different entry.
    const auto c = eval::cached_bitflip(weights, 0, 16, 5);
    EXPECT_NE(a.get(), c.get());
}

TEST(PrepCache, PrepareWeightsOnlyFlipsSelectedLayers)
{
    const auto net = std::make_shared<Workload>(tiny_workload());
    eval::Scenario s;
    s.custom_workload = net;
    s.bitflip.mode = eval::BitflipSpec::Mode::kUniform;
    const std::vector<std::size_t> selection = {1};
    const auto prepared = eval::prepare_weights(s, *net, &selection);
    ASSERT_EQ(prepared.size(), net->layers.size());
    EXPECT_EQ(prepared[0], nullptr);
    EXPECT_NE(prepared[1], nullptr);
    EXPECT_EQ(prepared[2], nullptr);
}

TEST(PrepCache, HeavyLayerSetCoversTheWeightShare)
{
    const Workload net = tiny_workload();
    eval::BitflipSpec spec;
    spec.mode = eval::BitflipSpec::Mode::kHeavyLayers;
    spec.weight_share = 0.5;
    const auto heavy = eval::bitflip_layer_set(net, spec);
    ASSERT_FALSE(heavy.empty());
    std::int64_t covered = 0;
    for (std::size_t i : heavy) {
        covered += net.layers[i].desc.weight_count();
    }
    EXPECT_GE(static_cast<double>(covered),
              0.5 * static_cast<double>(net.total_weights()));
}

// ------------------------------------------------------------- kStats ---

TEST(StatsEngine, MatchesDirectSparsityAnalysis)
{
    const auto net = std::make_shared<Workload>(tiny_workload());
    eval::Scenario s;
    s.custom_workload = net;
    s.engine = eval::EngineKind::kStats;
    s.stats.bcs = true;
    const auto r = eval::evaluate_scenario(s);
    ASSERT_EQ(r.layers.size(), net->layers.size());
    for (std::size_t l = 0; l < r.layers.size(); ++l) {
        ASSERT_TRUE(r.layers[l].stats != nullptr);
        const auto direct = compute_sparsity(net->layers[l].weights);
        EXPECT_EQ(r.layers[l].stats->sparsity.zero_words,
                  direct.zero_words);
        EXPECT_EQ(r.layers[l].stats->sparsity.zero_bits_sm,
                  direct.zero_bits_sm);
        EXPECT_GT(r.layers[l].stats->bcs_sm_bits, 0);
        EXPECT_LE(r.layers[l].stats->bcs_sm_bits,
                  r.layers[l].stats->weight_bits +
                      r.layers[l].stats->weight_bits / 8);
    }
    EXPECT_EQ(r.engine, "stats");
    EXPECT_EQ(r.total_cycles, 0.0);
}

TEST(StatsEngine, WarmReRunHitsTheStatsMemo)
{
    // Repeated kStats sweeps over the same weights must be served by the
    // content-hash stats memo; the hit count is surfaced per scenario.
    const auto net = std::make_shared<Workload>(tiny_workload());
    eval::Scenario s;
    s.custom_workload = net;
    s.engine = eval::EngineKind::kStats;
    s.stats.group_size = 24;  // spec unique to this test => cold start
    s.stats.bcs = true;

    const auto cold = eval::evaluate_scenario(s);
    EXPECT_EQ(cold.stats_memo_hits, 0);
    const auto warm = eval::evaluate_scenario(s);
    EXPECT_EQ(warm.stats_memo_hits,
              static_cast<std::int64_t>(net->layers.size()));
    // Memoized records are identical (same shared instances).
    ASSERT_EQ(warm.layers.size(), cold.layers.size());
    for (std::size_t l = 0; l < warm.layers.size(); ++l) {
        EXPECT_EQ(warm.layers[l].stats.get(), cold.layers[l].stats.get());
        EXPECT_TRUE(warm.layers[l].stats_from_memo);
    }
    // A different stats spec is a different memo entry.
    eval::Scenario other = s;
    other.stats.group_size = 25;
    EXPECT_EQ(eval::evaluate_scenario(other).stats_memo_hits, 0);
}

TEST(ScenarioRunner, ResultsComeBackInBatchOrder)
{
    const auto scenarios = determinism_batch();
    const auto results = eval::ScenarioRunner().run(scenarios);
    ASSERT_EQ(results.size(), scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        EXPECT_EQ(results[i].name, scenarios[i].name());
    }
}

TEST(ScenarioRunner, EmptyBatch)
{
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run({}, &report);
    EXPECT_TRUE(results.empty());
    EXPECT_GE(report.threads_used, 1);
}

// ---------------------------------------------------- pipeline facade ---

TEST(Pipeline, DeployReportsLosslessDeployment)
{
    const Workload net = tiny_workload();
    const PipelineReport report = deploy(net);
    EXPECT_EQ(report.workload, "tiny");
    ASSERT_EQ(report.layers.size(), net.layers.size());
    // Lossless: metric untouched, weights compress, BitWave beats dense.
    EXPECT_DOUBLE_EQ(report.estimated_metric, report.base_metric);
    EXPECT_GT(report.weight_compression_ratio, 1.0);
    EXPECT_GT(report.speedup_vs_dense, 1.0);
    EXPECT_GT(report.energy_ratio_vs_dense, 1.0);
    EXPECT_GT(report.runtime_ms, 0.0);
    EXPECT_FALSE(report.to_string().empty());
}

TEST(Pipeline, DeployWithBitflipStaysWithinBudget)
{
    const Workload net = tiny_workload();
    PipelineOptions options;
    options.use_bitflip = true;
    options.max_metric_drop = 0.5;
    options.threads = 2;
    const PipelineReport report = deploy(net, options);
    EXPECT_GE(report.estimated_metric,
              report.base_metric - options.max_metric_drop - 1e-9);
    // Bit-Flip must not compress worse than lossless BCS.
    const PipelineReport lossless = deploy(net);
    EXPECT_GE(report.weight_compression_ratio,
              lossless.weight_compression_ratio - 1e-9);
}

}  // namespace
}  // namespace bitwave
