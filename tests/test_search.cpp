/**
 * @file
 * Tests for the src/search/ subsystem: the mapping cost model (agreement
 * with the analytical model, cost-aware SU selection, policy regression
 * pins) and the design-space explorer (pareto invariants, feasibility
 * pruning, thread-count determinism).
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "model/performance.hpp"
#include "nn/synthesis.hpp"
#include "search/cost.hpp"
#include "search/explore.hpp"
#include "sim/npu.hpp"
#include "tensor/bitplane.hpp"

namespace bitwave {
namespace {

/// Probe layer with deterministic synthesized weights.
struct Probe
{
    WorkloadLayer layer;

    explicit Probe(LayerDesc desc, std::uint64_t seed = 42)
    {
        Rng rng(seed);
        WeightProfile profile;
        profile.zero_probability = 0.05;
        layer.desc = std::move(desc);
        layer.weights = synthesize_weights(layer.desc, profile, rng);
        layer.weights_hash = layer.compute_weights_hash();
        layer.activation_sparsity = 0.35;
    }
};

search::MappingCostConfig
bitwave_cost_config()
{
    search::MappingCostConfig cfg;
    cfg.repr = Representation::kSignMagnitude;
    cfg.skip_zero_columns = true;
    cfg.compress_weights = true;
    return cfg;
}

// ------------------------------------------------------- cost model ---

TEST(MappingCost, AgreesWithAnalyticalModelPerCandidate)
{
    // The cost model must mirror model_layer's bit-column accounting
    // term for term: forcing the model onto each single candidate SU
    // must reproduce the candidate's mapping_cost exactly.
    const LayerDesc probes[] = {
        make_conv("late", 512, 512, 7, 7, 3, 3),
        make_linear("ffn_out", 768, 3072, 4),
        make_pointwise("pw", 96, 16, 112, 112),
    };
    for (const auto &desc : probes) {
        const Probe probe(desc);
        const LayerDesc mapped = normalized_for_mapping(desc);
        const auto planes =
            shared_bitplanes(probe.layer.weights,
                             Representation::kSignMagnitude,
                             probe.layer.weights_hash);
        for (const auto &su : bitwave_sus()) {
            if (su.depthwise_only) {
                continue;
            }
            auto config = make_bitwave(BitWaveVariant::kDfSm);
            config.dataflows = {su};
            const AcceleratorModel model(config);
            const LayerResult r = model.model_layer(probe.layer);
            const search::MappingCost c = search::mapping_cost(
                mapped, su, planes.get(), probe.layer.weights_hash,
                bitwave_cost_config());
            EXPECT_NEAR(c.total_cycles, r.total_cycles,
                        1e-6 * r.total_cycles)
                << desc.name << " / " << su.name;
            EXPECT_NEAR(c.compute_cycles, r.compute_cycles,
                        1e-6 * r.compute_cycles)
                << desc.name << " / " << su.name;
            EXPECT_NEAR(c.energy.total_pj, r.energy.total_pj,
                        1e-6 * r.energy.total_pj)
                << desc.name << " / " << su.name;
            // DRAM bits must price identically through both Eq. (4)
            // paths — same bits, same DramModel, same picojoules.
            EXPECT_DOUBLE_EQ(c.energy.dram_pj, r.energy.dram_pj)
                << desc.name << " / " << su.name;
        }
    }
}

TEST(MappingCost, CostAwareNeverWorseThanUtilizationOnProbes)
{
    // kCostAware picks the latency argmin over the same candidates, so
    // its modeled layer latency can never exceed the utilization pick.
    const LayerDesc probes[] = {
        make_conv("early", 64, 3, 112, 112, 7, 7, 2),
        make_conv("late", 512, 512, 7, 7, 3, 3),
        make_depthwise("dwcv", 96, 56, 56, 3),
        make_pointwise("pw_late", 320, 1280, 7, 7),
        make_linear("bert_proj", 768, 768, 4),
        make_lstm("lstm", 512, 512, 100),
    };
    auto util_cfg = make_bitwave(BitWaveVariant::kDfSm);
    auto cost_cfg = util_cfg;
    cost_cfg.mapping_policy = search::MappingPolicy::kCostAware;
    const AcceleratorModel util_model(util_cfg), cost_model(cost_cfg);
    for (const auto &desc : probes) {
        const Probe probe(desc);
        const auto u = util_model.model_layer(probe.layer);
        const auto c = cost_model.model_layer(probe.layer);
        EXPECT_LE(c.total_cycles, u.total_cycles * (1.0 + 1e-12))
            << desc.name;
    }
}

TEST(MappingCost, StrictlyImprovesFetchBoundLateConv)
{
    // The acceptance probe: the late ResNet-class convolution is
    // fetch-heavy (512 x 512 x 3 x 3 weights against 7 x 7 outputs).
    // Utilization ranking picks SU4 (spatial utilization 1.0), but
    // SU4's Ku = 128 drags 4 bit columns per cycle through group-8
    // streams; the cost model finds SU2's leaner schedule and strictly
    // improves the modeled total latency.
    const Probe probe(make_conv("late", 512, 512, 7, 7, 3, 3));
    auto util_cfg = make_bitwave(BitWaveVariant::kDfSm);
    auto cost_cfg = util_cfg;
    cost_cfg.mapping_policy = search::MappingPolicy::kCostAware;
    const auto u = AcceleratorModel(util_cfg).model_layer(probe.layer);
    const auto c = AcceleratorModel(cost_cfg).model_layer(probe.layer);
    EXPECT_EQ(u.su_name, "SU4");
    EXPECT_EQ(c.su_name, "SU2");
    EXPECT_LT(c.total_cycles, u.total_cycles);
}

TEST(MappingCost, DefaultPolicyIsBitCompatibleUtilization)
{
    // The default stays the historic ranking: same enum value, same
    // selected SU as a direct select_su call.
    EXPECT_EQ(AcceleratorConfig{}.mapping_policy,
              search::MappingPolicy::kUtilization);
    EXPECT_EQ(NpuConfig{}.mapping_policy,
              search::MappingPolicy::kUtilization);
    const Probe probe(make_conv("late", 512, 512, 7, 7, 3, 3));
    const auto cfg = make_bitwave(BitWaveVariant::kDfSm);
    const auto r = AcceleratorModel(cfg).model_layer(probe.layer);
    EXPECT_EQ(r.su_name,
              select_su(probe.layer.desc, cfg.dataflows).name);
}

// Pin the selected SU for every paper workload layer class under both
// policies. Where the policies diverge, the comment says why.
TEST(MappingCost, SelectionPinsPerLayerClass)
{
    struct Pin
    {
        LayerDesc desc;
        const char *util_su;
        const char *cost_su;
    };
    const Pin pins[] = {
        // Early conv: C = 3 starves every Cu; SU1's Cu = 8 loses the
        // least and its OXu = 16 matches the wide feature map. Both
        // policies agree — the layer is compute-bound, so utilization
        // is the right proxy.
        {make_conv("early", 64, 3, 112, 112, 7, 7, 2), "SU1", "SU1"},
        // Mid conv: C = 128 fits Cu = 32 exactly and OXu = 4 matches
        // 28 x 28; SU3 maximizes utilization AND latency. No divergence.
        {make_conv("mid", 128, 128, 28, 28, 3, 3), "SU3", "SU3"},
        // Late conv: SU4 reaches utilization 1.0 (OXu = 1 fits the
        // 7 x 7 map perfectly), but its Ku = 128 / 4-column datapath
        // wastes whole cycles on sparse group-8 streams (ceil(nz/4)
        // with nz ~ 3); the cost model picks SU2, whose group-16
        // stream keeps the weight port and array balanced. DIVERGES.
        {make_conv("late", 512, 512, 7, 7, 3, 3), "SU4", "SU2"},
        // Depthwise: only SU7 parallelizes channels without a C axis;
        // both policies select it (Table I designed it for this class).
        {make_depthwise("dwcv", 96, 56, 56, 3), "SU7", "SU7"},
        // Early pointwise: like early conv, the wide map and small C
        // favor SU1 under both rankings.
        {make_pointwise("pwcv", 96, 16, 112, 112), "SU1", "SU1"},
        // Late pointwise (MobileNet head, C = 1280): SU5 wins spatial
        // utilization via its 4-column budget, but streaming 1280
        // channels in groups of 16 through 4 columns pays ceil waste;
        // the cost model prefers SU2's single-column group-16 stream.
        // DIVERGES.
        {make_pointwise("pw_late", 320, 1280, 7, 7), "SU5", "SU2"},
        // BERT projection (tokens = 4 on OX): SU3's OXu = 4 fits the
        // token batch exactly with utilization 1.0 and the best
        // latency too — divergence-free.
        {make_linear("bert_proj", 768, 768, 4), "SU3", "SU3"},
        // BERT FFN layers behave like the projection (exact Cu / Ku /
        // OXu fits at utilization 1.0).
        {make_linear("bert_ffn_in", 3072, 768, 4), "SU3", "SU3"},
        // LSTM (timesteps on OX): SU3 and SU2 tie near utilization
        // 1.0, but SU2's group-16 stream beats SU3's group-32 on the
        // 85 %-of-weights LSTM matrices (bigger groups expose fewer
        // zero columns). DIVERGES on latency grounds.
        {make_lstm("lstm", 512, 512, 100), "SU3", "SU2"},
    };
    auto util_cfg = make_bitwave(BitWaveVariant::kDfSm);
    auto cost_cfg = util_cfg;
    cost_cfg.mapping_policy = search::MappingPolicy::kCostAware;
    const AcceleratorModel util_model(util_cfg), cost_model(cost_cfg);
    for (const auto &pin : pins) {
        const Probe probe(pin.desc);
        EXPECT_EQ(util_model.model_layer(probe.layer).su_name,
                  pin.util_su)
            << pin.desc.name << " (utilization)";
        EXPECT_EQ(cost_model.model_layer(probe.layer).su_name,
                  pin.cost_su)
            << pin.desc.name << " (cost-aware)";
    }
}

TEST(MappingCost, SimConsumesTheSameSelection)
{
    // The simulator under kCostAware must land on the cost model's
    // choice (the offline selection both engines replay).
    const Probe probe(make_conv("late", 512, 512, 7, 7, 3, 3));
    NpuConfig cfg;
    cfg.mapping_policy = search::MappingPolicy::kCostAware;
    const BitWaveNpu npu(cfg);
    const auto r = npu.run_layer(probe.layer, nullptr, nullptr,
                                 /*compute_output=*/false);
    EXPECT_EQ(r.su_name, "SU2");

    const BitWaveNpu util_npu{NpuConfig{}};
    const auto u = util_npu.run_layer(probe.layer, nullptr, nullptr,
                                      /*compute_output=*/false);
    EXPECT_EQ(u.su_name, "SU4");
}

// --------------------------------------------------------- explorer ---

/// A small but representative exploration space over ResNet18.
search::ExploreSpec
small_spec()
{
    search::ExploreSpec spec;
    spec.workloads = {WorkloadId::kResNet18};
    spec.su_subsets = false;
    spec.group_sizes = {8, 16, 32, 64};
    spec.smm_budgets = {2048, 8192};
    spec.weight_sram_options = {128 * 1024, 256 * 1024, 512 * 1024};
    return spec;
}

TEST(Explore, ParetoInvariantsAndTableOnFront)
{
    std::vector<search::DesignPoint> infeasible;
    const auto evals =
        search::explore_designs(small_spec(), {}, &infeasible);
    ASSERT_FALSE(evals.empty());

    // Late ResNet18 convs need a 147 KB Ku-tile under the smallest
    // Table I Ku: the 128 KB weight-buffer variants of the Table I set
    // must be pruned as infeasible (as must Ku >= 64 singles whose
    // tile exceeds even 256 KB).
    bool pruned_128k = false;
    for (const auto &d : infeasible) {
        pruned_128k |= d.table1_su_set &&
            d.weight_sram_bytes == 128 * 1024;
    }
    EXPECT_TRUE(pruned_128k);

    // Pareto invariants: no front point dominated, every dominated
    // point dominated by some front point.
    std::size_t front = 0;
    for (const auto &a : evals) {
        bool dominated_by_front = false;
        for (const auto &b : evals) {
            if (&a == &b) {
                continue;
            }
            if (search::dominates(b, a)) {
                EXPECT_FALSE(a.pareto)
                    << a.design.name << " dominated by "
                    << b.design.name;
                dominated_by_front |= b.pareto;
            }
        }
        if (a.pareto) {
            ++front;
        } else {
            EXPECT_TRUE(dominated_by_front) << a.design.name;
        }
    }
    EXPECT_GT(front, 0u);

    // The canonical Table I design (paper geometry: 4096 SMMs,
    // 256 KB + 256 KB) is enumerated and non-dominated.
    bool table1_found = false;
    for (const auto &e : evals) {
        if (e.design.table1_su_set && e.design.smm_budget == 4096 &&
            e.design.weight_sram_bytes == 256 * 1024 &&
            e.design.policy == search::MappingPolicy::kCostAware) {
            table1_found = true;
            EXPECT_TRUE(e.pareto) << "Table I dominated";
        }
    }
    EXPECT_TRUE(table1_found);
}

TEST(Explore, BitIdenticalAcrossThreadCounts)
{
    const auto spec = small_spec();
    eval::RunnerOptions one, many;
    one.threads = 1;
    many.threads = 4;
    const auto a = search::explore_designs(spec, one);
    const auto b = search::explore_designs(spec, many);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].design.name, b[i].design.name);
        EXPECT_EQ(a[i].total_cycles, b[i].total_cycles) << a[i].design.name;
        EXPECT_EQ(a[i].energy_pj, b[i].energy_pj) << a[i].design.name;
        EXPECT_EQ(a[i].area_mm2, b[i].area_mm2) << a[i].design.name;
        EXPECT_EQ(a[i].pareto, b[i].pareto) << a[i].design.name;
    }
}

TEST(Explore, AreaScalesWithArrayAndBuffers)
{
    search::DesignPoint base;
    base.dataflows = bitwave_sus();
    search::DesignPoint big_array = base;
    big_array.smm_budget = 8192;
    search::DesignPoint big_buffers = base;
    big_buffers.weight_sram_bytes = 512 * 1024;
    EXPECT_GT(search::design_area_mm2(big_array),
              search::design_area_mm2(base));
    EXPECT_GT(search::design_area_mm2(big_buffers),
              search::design_area_mm2(base));
}

TEST(Explore, EnumerationCoversTheAcceptanceScale)
{
    // The bench's default space must offer >= 200 design points.
    const search::ExploreSpec spec;
    EXPECT_GE(enumerate_design_points(spec).size(), 200u);
}

}  // namespace
}  // namespace bitwave
