/**
 * @file
 * Tests for the technology calibration, DRAM model, and the Fig. 18 /
 * Section V-D area & power budget.
 */
#include <gtest/gtest.h>

#include "energy/breakdown.hpp"
#include "energy/dram.hpp"
#include "energy/pricing.hpp"
#include "energy/tech.hpp"

namespace bitwave {
namespace {

TEST(Tech, TableFourPowerOrdering)
{
    // Table IV: bit-serial costs the most power, bit-column-serial the
    // least (the add-then-shift advantage); bit-parallel has the
    // smallest area, bit-serial the largest.
    const auto &t = default_tech();
    EXPECT_GT(t.p_pe_bit_serial_mw, t.p_pe_bit_parallel_mw);
    EXPECT_LT(t.p_pe_bit_column_mw, t.p_pe_bit_parallel_mw);
    EXPECT_LT(t.a_pe_bit_parallel_um2, t.a_pe_bit_column_um2);
    EXPECT_LT(t.a_pe_bit_column_um2, t.a_pe_bit_serial_um2);
}

TEST(Tech, TableFourRatios)
{
    // Section V-D: the BCS PE has ~1.26x the bit-parallel area and
    // ~1.25x less power.
    const auto &t = default_tech();
    EXPECT_NEAR(t.a_pe_bit_column_um2 / t.a_pe_bit_parallel_um2, 1.26,
                0.02);
    EXPECT_NEAR(t.p_pe_bit_parallel_mw / t.p_pe_bit_column_mw, 1.25, 0.03);
}

TEST(Tech, MacEnergyDerivedFromPowerAtFrequency)
{
    // e = P / f: 2.13e-2 mW at 250 MHz = 0.0852 pJ.
    const auto &t = default_tech();
    EXPECT_NEAR(t.e_mac_bit_parallel_pj,
                t.p_pe_bit_parallel_mw * 1e-3 / t.frequency_hz * 1e12,
                1e-4);
    EXPECT_NEAR(t.e_mac_bit_column_pj,
                t.p_pe_bit_column_mw * 1e-3 / t.frequency_hz * 1e12, 1e-4);
}

TEST(Tech, EfficiencyScalingToTwentyEightNm)
{
    // Table III: 12.21 TOPS/W at 16 nm normalizes to ~7 at 28 nm under
    // the first-order rule; area 1.138 mm^2 -> ~3.49 mm^2.
    EXPECT_NEAR(scale_area(1.138, 16.0, 28.0), 3.49, 0.03);
    EXPECT_LT(scale_efficiency(12.21, 16.0, 28.0), 12.21);
}

TEST(Dram, EnergyScalesWithBits)
{
    const auto &d = default_dram();
    const double e1 = d.transfer_energy_pj(1024);
    const double e2 = d.transfer_energy_pj(2048);
    EXPECT_GT(e2, e1 * 1.9);
    EXPECT_LT(e2, e1 * 2.1);
}

TEST(Dram, TransferCyclesAtChannelWidth)
{
    const auto &d = default_dram();
    EXPECT_DOUBLE_EQ(d.transfer_cycles(6400),
                     6400.0 / d.bits_per_accel_cycle);
}

// ------------------------------------------- Eq. (4) pricing edge cases ---

TEST(Pricing, ZeroCycleLayerCarriesZeroStaticEnergy)
{
    // A layer that occupies no cycles must accrue no static/clock-tree
    // energy (and an all-zero activity prices to exactly zero — the
    // DRAM burst-activation overhead only triggers on moved bits).
    EnergyActivity a;
    a.mac_units = 100.0;
    a.e_mac_pj = 0.1;
    a.sram_read_bits = 1024.0;
    a.cycles = 0.0;
    const auto e = price_energy(a, default_tech(), default_dram());
    EXPECT_EQ(e.static_pj, 0.0);
    const auto zero =
        price_energy(EnergyActivity{}, default_tech(), default_dram());
    EXPECT_EQ(zero.total_pj, 0.0);
    EXPECT_EQ(zero.dram_pj, 0.0);
}

TEST(Pricing, AccumulateKeepsTotalsConsistentWithComponentSums)
{
    EnergyActivity a;
    a.mac_units = 3.0;
    a.e_mac_pj = 0.0852;
    a.sram_read_bits = 777.0;
    a.sram_write_bits = 123.0;
    a.reg_words = 9.0;
    a.dram_bits = 4096.0;
    a.cycles = 55.0;
    a.accbank_bits = 64.0;
    a.codec_words = 17.0;
    EnergyBreakdown sum = price_energy(a, default_tech(), default_dram());
    a.crossbar_replays = 11.0;
    a.e_crossbar_pj = 126.0;
    a.lane_overhead_cycles = 2048.0;
    a.e_lane_overhead_pj = 0.012;
    const EnergyBreakdown b =
        price_energy(a, default_tech(), default_dram());
    sum += b;
    EXPECT_NEAR(sum.total_pj,
                sum.mac_pj + sum.sram_pj + sum.reg_pj + sum.dram_pj +
                    sum.static_pj,
                sum.total_pj * 1e-12);
}

TEST(Pricing, DramBitsPriceIdenticallyEverywhere)
{
    // Eq. (4) must route DRAM bits through the one DramModel unchanged,
    // regardless of what else the activity carries — the property that
    // keeps the model, the simulator, and the search/cost memos pricing
    // identical dram_bits to identical picojoules.
    const auto &dram = default_dram();
    for (double bits : {64.0, 511.0, 512.0, 513.0, 1.5e9}) {
        EnergyActivity plain;
        plain.dram_bits = bits;
        EnergyActivity loaded = plain;
        loaded.mac_units = 1e6;
        loaded.e_mac_pj = 0.0684;
        loaded.accbank_bits = 1e5;
        loaded.crossbar_replays = 1e4;
        loaded.e_crossbar_pj = 126.0;
        const auto &tech = default_tech();
        EXPECT_EQ(price_energy(plain, tech, dram).dram_pj,
                  dram.transfer_energy_pj(bits));
        EXPECT_EQ(price_energy(loaded, tech, dram).dram_pj,
                  dram.transfer_energy_pj(bits));
    }
}

TEST(Pricing, BaselineActivityTermsPriceAsDocumented)
{
    // The recalibration terms are exact linear prices — and all of them
    // vanish on a default (BitWave-shaped) activity, which is what keeps
    // the BitWave numbers bit-identical across the recalibration.
    const auto &tech = default_tech();
    const auto &dram = default_dram();
    EnergyActivity base;
    base.mac_units = 10.0;
    base.e_mac_pj = 0.0684;
    base.sram_read_bits = 100.0;
    const auto e0 = price_energy(base, tech, dram);

    EnergyActivity acc = base;
    acc.accbank_bits = 640.0;
    EXPECT_DOUBLE_EQ(price_energy(acc, tech, dram).sram_pj,
                     e0.sram_pj + 640.0 * tech.e_accbank_per_bit_pj);

    EnergyActivity codec = base;
    codec.codec_words = 30.0;
    EXPECT_DOUBLE_EQ(price_energy(codec, tech, dram).sram_pj,
                     e0.sram_pj + 30.0 * tech.e_codec_per_word_pj);

    EnergyActivity xbar = base;
    xbar.crossbar_replays = 5.0;
    xbar.e_crossbar_pj = 126.0;
    xbar.lane_overhead_cycles = 1000.0;
    xbar.e_lane_overhead_pj = 0.01;
    EXPECT_DOUBLE_EQ(price_energy(xbar, tech, dram).mac_pj,
                     e0.mac_pj + 5.0 * 126.0 + 1000.0 * 0.01);
}

TEST(Breakdown, TotalsMatchSectionVD)
{
    // 1.138 mm^2 and 17.56 mW at the ResNet18 operating point.
    const auto budget = bitwave_chip_budget(default_tech());
    EXPECT_NEAR(budget.total_area_mm2(), 1.138, 0.04);
    EXPECT_NEAR(budget.total_power_mw(), 17.56, 0.6);
}

TEST(Breakdown, Fig18Shares)
{
    const auto budget = bitwave_chip_budget(default_tech());
    // SRAM 55.08 % of area; PE array 24.7 % area and 57.6 % power;
    // dispatcher 10.8 % area and 24.4 % power.
    EXPECT_NEAR(budget.area_share("SRAM"), 0.5508, 0.03);
    EXPECT_NEAR(budget.area_share("PE array"), 0.247, 0.03);
    EXPECT_NEAR(budget.power_share("PE array"), 0.576, 0.04);
    EXPECT_NEAR(budget.area_share("Data dispatcher"), 0.108, 0.02);
    EXPECT_NEAR(budget.power_share("Data dispatcher"), 0.244, 0.03);
}

TEST(Breakdown, PowerScalesWithActivity)
{
    const auto busy = bitwave_chip_budget(default_tech(), {}, 1.0);
    const auto idle = bitwave_chip_budget(default_tech(), {}, 0.25);
    EXPECT_LT(idle.total_power_mw(), busy.total_power_mw());
    // Fetcher/controller power is activity-independent.
    EXPECT_DOUBLE_EQ(idle.component("Controller").power_mw,
                     busy.component("Controller").power_mw);
}

TEST(Breakdown, SramAreaScalesWithCapacity)
{
    BitWaveConfig half;
    half.weight_sram_bytes = 128 * 1024;
    half.act_sram_bytes = 128 * 1024;
    const auto full = bitwave_chip_budget(default_tech());
    const auto small = bitwave_chip_budget(default_tech(), half);
    EXPECT_NEAR(small.component("SRAM").area_um2,
                full.component("SRAM").area_um2 / 2.0, 1.0);
}

}  // namespace
}  // namespace bitwave
