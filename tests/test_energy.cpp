/**
 * @file
 * Tests for the technology calibration, DRAM model, and the Fig. 18 /
 * Section V-D area & power budget.
 */
#include <gtest/gtest.h>

#include "energy/breakdown.hpp"
#include "energy/dram.hpp"
#include "energy/tech.hpp"

namespace bitwave {
namespace {

TEST(Tech, TableFourPowerOrdering)
{
    // Table IV: bit-serial costs the most power, bit-column-serial the
    // least (the add-then-shift advantage); bit-parallel has the
    // smallest area, bit-serial the largest.
    const auto &t = default_tech();
    EXPECT_GT(t.p_pe_bit_serial_mw, t.p_pe_bit_parallel_mw);
    EXPECT_LT(t.p_pe_bit_column_mw, t.p_pe_bit_parallel_mw);
    EXPECT_LT(t.a_pe_bit_parallel_um2, t.a_pe_bit_column_um2);
    EXPECT_LT(t.a_pe_bit_column_um2, t.a_pe_bit_serial_um2);
}

TEST(Tech, TableFourRatios)
{
    // Section V-D: the BCS PE has ~1.26x the bit-parallel area and
    // ~1.25x less power.
    const auto &t = default_tech();
    EXPECT_NEAR(t.a_pe_bit_column_um2 / t.a_pe_bit_parallel_um2, 1.26,
                0.02);
    EXPECT_NEAR(t.p_pe_bit_parallel_mw / t.p_pe_bit_column_mw, 1.25, 0.03);
}

TEST(Tech, MacEnergyDerivedFromPowerAtFrequency)
{
    // e = P / f: 2.13e-2 mW at 250 MHz = 0.0852 pJ.
    const auto &t = default_tech();
    EXPECT_NEAR(t.e_mac_bit_parallel_pj,
                t.p_pe_bit_parallel_mw * 1e-3 / t.frequency_hz * 1e12,
                1e-4);
    EXPECT_NEAR(t.e_mac_bit_column_pj,
                t.p_pe_bit_column_mw * 1e-3 / t.frequency_hz * 1e12, 1e-4);
}

TEST(Tech, EfficiencyScalingToTwentyEightNm)
{
    // Table III: 12.21 TOPS/W at 16 nm normalizes to ~7 at 28 nm under
    // the first-order rule; area 1.138 mm^2 -> ~3.49 mm^2.
    EXPECT_NEAR(scale_area(1.138, 16.0, 28.0), 3.49, 0.03);
    EXPECT_LT(scale_efficiency(12.21, 16.0, 28.0), 12.21);
}

TEST(Dram, EnergyScalesWithBits)
{
    const auto &d = default_dram();
    const double e1 = d.transfer_energy_pj(1024);
    const double e2 = d.transfer_energy_pj(2048);
    EXPECT_GT(e2, e1 * 1.9);
    EXPECT_LT(e2, e1 * 2.1);
}

TEST(Dram, TransferCyclesAtChannelWidth)
{
    const auto &d = default_dram();
    EXPECT_DOUBLE_EQ(d.transfer_cycles(6400),
                     6400.0 / d.bits_per_accel_cycle);
}

TEST(Breakdown, TotalsMatchSectionVD)
{
    // 1.138 mm^2 and 17.56 mW at the ResNet18 operating point.
    const auto budget = bitwave_chip_budget(default_tech());
    EXPECT_NEAR(budget.total_area_mm2(), 1.138, 0.04);
    EXPECT_NEAR(budget.total_power_mw(), 17.56, 0.6);
}

TEST(Breakdown, Fig18Shares)
{
    const auto budget = bitwave_chip_budget(default_tech());
    // SRAM 55.08 % of area; PE array 24.7 % area and 57.6 % power;
    // dispatcher 10.8 % area and 24.4 % power.
    EXPECT_NEAR(budget.area_share("SRAM"), 0.5508, 0.03);
    EXPECT_NEAR(budget.area_share("PE array"), 0.247, 0.03);
    EXPECT_NEAR(budget.power_share("PE array"), 0.576, 0.04);
    EXPECT_NEAR(budget.area_share("Data dispatcher"), 0.108, 0.02);
    EXPECT_NEAR(budget.power_share("Data dispatcher"), 0.244, 0.03);
}

TEST(Breakdown, PowerScalesWithActivity)
{
    const auto busy = bitwave_chip_budget(default_tech(), {}, 1.0);
    const auto idle = bitwave_chip_budget(default_tech(), {}, 0.25);
    EXPECT_LT(idle.total_power_mw(), busy.total_power_mw());
    // Fetcher/controller power is activity-independent.
    EXPECT_DOUBLE_EQ(idle.component("Controller").power_mw,
                     busy.component("Controller").power_mw);
}

TEST(Breakdown, SramAreaScalesWithCapacity)
{
    BitWaveConfig half;
    half.weight_sram_bytes = 128 * 1024;
    half.act_sram_bytes = 128 * 1024;
    const auto full = bitwave_chip_budget(default_tech());
    const auto small = bitwave_chip_budget(default_tech(), half);
    EXPECT_NEAR(small.component("SRAM").area_um2,
                full.component("SRAM").area_um2 / 2.0, 1.0);
}

}  // namespace
}  // namespace bitwave
