/**
 * @file
 * Tests for spatial unrollings (Table I), utilization math (Fig. 9),
 * column-cycle statistics, and the access-count model.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dataflow/mapping.hpp"
#include "dataflow/su.hpp"
#include "nn/synthesis.hpp"
#include "nn/workloads.hpp"

namespace bitwave {
namespace {

// ------------------------------------------------------------ Table I ---

TEST(Su, TableOneBandwidths)
{
    // W BW (bits/cycle) and Act BW must reproduce Table I exactly.
    const auto &sus = bitwave_sus();
    ASSERT_EQ(sus.size(), 7u);
    const std::int64_t expect_wbw[] = {256, 512, 1024, 1024, 1024, 1024, 64};
    const std::int64_t expect_abw[] = {1024, 1024, 1024, 64, 128, 256, 1024};
    for (std::size_t i = 0; i < 7; ++i) {
        EXPECT_EQ(sus[i].weight_bandwidth_bits(), expect_wbw[i])
            << sus[i].name;
        EXPECT_EQ(sus[i].activation_bandwidth_bits(), expect_abw[i])
            << sus[i].name;
    }
}

TEST(Su, AllBitwaveSusUseFullArray)
{
    // Every SU keeps the 4096-SMM budget busy (positions x bit columns),
    // except the depthwise SU7 which trades lanes for per-weight
    // bit-column parallelism.
    for (const auto &su : bitwave_sus()) {
        if (su.name == "SU7") {
            EXPECT_EQ(su.total_lanes(), 1024);
            continue;
        }
        EXPECT_EQ(su.total_lanes(), 4096) << su.name;
    }
}

TEST(Su, GroupSizesMatchHardwareSet)
{
    // SU1-SU6 imply the layer-wise tunable column sizes {8, 16, 32}.
    for (const auto &su : bitwave_sus()) {
        if (su.depthwise_only) {
            continue;
        }
        const auto g = su.group_size();
        EXPECT_TRUE(g == 8 || g == 16 || g == 32) << su.name;
    }
}

// -------------------------------------------------------- utilization ---

TEST(Utilization, PerfectFitGivesFullUtilization)
{
    const auto d = make_conv("c", 64, 32, 32, 32, 3, 3);
    const SpatialUnrolling su{"t", {{Dim::kK, 32}, {Dim::kC, 16},
                                    {Dim::kOX, 8}}};
    EXPECT_DOUBLE_EQ(spatial_utilization(d, su), 1.0);
}

TEST(Utilization, MisfitPenalizesCeilPadding)
{
    const auto d = make_conv("c", 48, 32, 32, 32, 3, 3);  // K=48 vs Ku=32
    const SpatialUnrolling su{"t", {{Dim::kK, 32}}};
    EXPECT_DOUBLE_EQ(spatial_utilization(d, su), 48.0 / 64.0);
}

TEST(Utilization, DepthwiseStarvesChannelUnrolledSus)
{
    // The Fig. 9 effect: a Cu-heavy SU collapses on depthwise layers.
    const auto dw = make_depthwise("dw", 96, 56, 56, 3);
    const SpatialUnrolling ck{"CK", {{Dim::kC, 64}, {Dim::kK, 64}}};
    EXPECT_LT(spatial_utilization(dw, ck), 0.05);
}

TEST(Utilization, NoFixedSuWinsEverywhere)
{
    // Fig. 9's conclusion: none of the fixed SUs exceeds 80 % utilization
    // on all four workload cases, on either array size.
    const LayerDesc cases[] = {
        make_conv("early", 64, 3, 112, 112, 7, 7, 2),
        make_conv("late", 512, 512, 7, 7, 3, 3),
        make_depthwise("dwcv", 96, 56, 56, 3),
        make_pointwise("pwcv", 96, 16, 112, 112),
    };
    for (std::int64_t lanes : {4096LL, 512LL}) {
        for (const auto &su : fixed_su_baselines(lanes)) {
            double worst = 1.0;
            for (const auto &layer : cases) {
                worst = std::min(worst, spatial_utilization(layer, su));
            }
            EXPECT_LT(worst, 0.8) << su.name << " lanes " << lanes;
        }
    }
}

TEST(Utilization, DynamicSelectionBeatsEveryFixedSusWorstCase)
{
    // The Fig. 9 claim, stated precisely: across the four workload cases
    // the dynamic selection's WORST utilization beats every fixed SU's
    // worst utilization by a wide margin.
    const LayerDesc cases[] = {
        make_conv("early", 64, 3, 112, 112, 7, 7, 2),
        make_conv("late", 512, 512, 7, 7, 3, 3),
        make_depthwise("dwcv", 96, 56, 56, 3),
        make_pointwise("pwcv", 96, 16, 112, 112),
    };
    double dyn_worst = 1.0;
    for (const auto &layer : cases) {
        dyn_worst = std::min(
            dyn_worst,
            spatial_utilization(layer, select_su(layer, bitwave_sus())));
    }
    for (const auto &fixed : fixed_su_baselines(4096)) {
        double fixed_worst = 1.0;
        for (const auto &layer : cases) {
            fixed_worst =
                std::min(fixed_worst, spatial_utilization(layer, fixed));
        }
        EXPECT_GT(dyn_worst, fixed_worst * 2.0) << fixed.name;
    }
}

TEST(Utilization, Su7SelectedForDepthwise)
{
    const auto dw = make_depthwise("dw", 96, 56, 56, 3);
    EXPECT_EQ(select_su(dw, bitwave_sus()).name, "SU7");
}

TEST(Utilization, NormalizedMappingExposesTokensAsOx)
{
    const auto fc = make_linear("fc", 768, 768, 16);
    const auto norm = normalized_for_mapping(fc);
    EXPECT_EQ(norm.ox, 16);
    EXPECT_EQ(norm.batch, 1);
    // Convolutions are unchanged.
    const auto conv = make_conv("c", 8, 8, 4, 4, 3, 3);
    EXPECT_EQ(normalized_for_mapping(conv).ox, conv.ox);
}

TEST(TemporalIterations, MatchesHandComputation)
{
    const auto d = make_conv("c", 64, 32, 28, 28, 3, 3);
    const SpatialUnrolling su{"t", {{Dim::kK, 32}, {Dim::kC, 8},
                                    {Dim::kOX, 16}}};
    // ceil(64/32) * ceil(32/8) * ceil(28/16) * 28 * 3 * 3 = 2*4*2*28*9.
    EXPECT_EQ(temporal_iterations(d, su), 2LL * 4 * 2 * 28 * 9);
}

// ----------------------------------------------------- column cycles ---

TEST(ColumnCycles, DenseWeightsTakeEightCycles)
{
    Int8Tensor w({16, 1, 1, 8});
    for (std::int64_t i = 0; i < w.numel(); ++i) {
        w[i] = static_cast<std::int8_t>((i % 2) ? 127 : -127);
    }
    const auto d = make_conv("c", 16, 8, 4, 4, 1, 1);
    const auto cc =
        column_cycle_stats(w, d, 8, 4, Representation::kSignMagnitude);
    EXPECT_DOUBLE_EQ(cc.mean_cycles_per_group, 8.0);
    EXPECT_DOUBLE_EQ(cc.sync_cycles_per_group, 8.0);
}

TEST(ColumnCycles, SyncAtLeastMean)
{
    Rng rng(4);
    WeightProfile p;
    p.scale = 6.0;
    const auto d = make_conv("c", 32, 32, 4, 4, 3, 3);
    const auto w = synthesize_weights(d, p, rng);
    const auto cc =
        column_cycle_stats(w, d, 16, 32, Representation::kSignMagnitude);
    EXPECT_GE(cc.sync_cycles_per_group, cc.mean_cycles_per_group);
    EXPECT_LE(cc.sync_cycles_per_group, 8.0);
    EXPECT_GT(cc.mean_cycles_per_group, 0.0);
}

TEST(ColumnCycles, SmallerSyncGroupsReduceWorstCase)
{
    Rng rng(4);
    WeightProfile p;
    p.scale = 5.0;
    const auto d = make_conv("c", 64, 32, 4, 4, 1, 1);
    const auto w = synthesize_weights(d, p, rng);
    const auto cc8 =
        column_cycle_stats(w, d, 16, 8, Representation::kSignMagnitude);
    const auto cc64 =
        column_cycle_stats(w, d, 16, 64, Representation::kSignMagnitude);
    EXPECT_LE(cc8.sync_cycles_per_group, cc64.sync_cycles_per_group + 1e-9);
}

TEST(BitSerialCycles, DenseIsEight)
{
    Int8Tensor w({4}, {-1, -1, -1, -1});  // 0xFF in 2C
    EXPECT_DOUBLE_EQ(
        bit_serial_sync_cycles(w, 4, Representation::kTwosComplement), 8.0);
}

TEST(BitSerialCycles, SyncLanesRaiseCycles)
{
    Rng rng(8);
    Int8Tensor w({4096});
    for (std::int64_t i = 0; i < w.numel(); ++i) {
        w[i] = static_cast<std::int8_t>(rng.laplacian(8.0));
    }
    const double solo =
        bit_serial_sync_cycles(w, 1, Representation::kTwosComplement);
    const double sync16 =
        bit_serial_sync_cycles(w, 16, Representation::kTwosComplement);
    EXPECT_GT(sync16, solo);
}

TEST(BitInterleave, BoundedByWindowDensity)
{
    Rng rng(9);
    Int8Tensor w({4096});
    for (std::int64_t i = 0; i < w.numel(); ++i) {
        w[i] = static_cast<std::int8_t>(rng.laplacian(10.0));
    }
    const double cycles =
        bit_interleave_cycles(w, 64, Representation::kTwosComplement);
    EXPECT_GT(cycles, 0.0);
    EXPECT_LE(cycles, 64.0);
}

// -------------------------------------------------------- access model ---

TEST(AccessCounts, DramCarriesCompressedWeightsOnce)
{
    const auto d = make_conv("c", 64, 64, 28, 28, 3, 3);
    const SpatialUnrolling su{"t", {{Dim::kK, 32}, {Dim::kC, 16}}};
    MemoryHierarchy mem;
    CompressionFactors cf;
    cf.weight_fetch_ratio = 0.5;
    ExecutionProfile exec;
    exec.utilization = 1.0;
    exec.compute_cycles = 1000.0;
    exec.weight_port_active_bits = 512.0;
    exec.input_dram_fraction = 0.0;
    exec.output_dram_fraction = 0.0;
    const auto ac = compute_access_counts(d, su, mem, cf, exec);
    EXPECT_DOUBLE_EQ(ac.dram_read_weight_bits,
                     static_cast<double>(d.weight_count()) * 8 * 0.5);
    EXPECT_DOUBLE_EQ(ac.dram_read_act_bits, 0.0);
    EXPECT_DOUBLE_EQ(ac.dram_write_act_bits, 0.0);
}

TEST(AccessCounts, FirstAndLastLayerActivationsCrossDram)
{
    const auto d = make_conv("c", 8, 3, 8, 8, 3, 3);
    const SpatialUnrolling su{"t", {{Dim::kK, 8}}};
    MemoryHierarchy mem;
    CompressionFactors cf;
    ExecutionProfile exec;
    exec.input_dram_fraction = 1.0;
    exec.output_dram_fraction = 1.0;
    exec.compute_cycles = 10.0;
    exec.weight_port_active_bits = 64.0;
    const auto ac = compute_access_counts(d, su, mem, cf, exec);
    EXPECT_DOUBLE_EQ(ac.dram_read_act_bits,
                     static_cast<double>(d.input_count()) * 8);
    EXPECT_DOUBLE_EQ(ac.dram_write_act_bits,
                     static_cast<double>(d.output_count()) * 8);
}

TEST(AccessCounts, LowUtilizationInflatesActReads)
{
    const auto d = make_conv("c", 64, 64, 28, 28, 3, 3);
    const SpatialUnrolling su{"t", {{Dim::kK, 32}}};
    MemoryHierarchy mem;
    CompressionFactors cf;
    ExecutionProfile high, low;
    high.utilization = 1.0;
    low.utilization = 0.25;
    const auto ac_high = compute_access_counts(d, su, mem, cf, high);
    const auto ac_low = compute_access_counts(d, su, mem, cf, low);
    EXPECT_NEAR(ac_low.sram_read_act_bits / ac_high.sram_read_act_bits,
                4.0, 1e-9);
}

TEST(AccessCounts, WeightStationarySwapsStreamingForPsumSpills)
{
    const auto d = make_conv("c", 64, 64, 28, 28, 3, 3);
    const SpatialUnrolling su{"t", {{Dim::kK, 32}, {Dim::kC, 16}}};
    MemoryHierarchy mem;
    CompressionFactors cf;
    ExecutionProfile serial, stationary;
    serial.compute_cycles = 1e6;
    serial.weight_port_active_bits = 512.0;
    stationary = serial;
    stationary.weight_stationary = true;
    stationary.c_tiles = 4;
    const auto ac_s = compute_access_counts(d, su, mem, cf, serial);
    const auto ac_w = compute_access_counts(d, su, mem, cf, stationary);
    EXPECT_DOUBLE_EQ(ac_s.sram_read_weight_bits, 1e6 * 512.0);
    EXPECT_DOUBLE_EQ(ac_w.sram_read_weight_bits,
                     static_cast<double>(d.weight_count()) * 8);
    EXPECT_GT(ac_w.sram_write_act_bits, ac_s.sram_write_act_bits);
}

}  // namespace
}  // namespace bitwave
