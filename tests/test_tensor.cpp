/**
 * @file
 * Unit tests for the tensor substrate and post-training quantization.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/quantize.hpp"
#include "tensor/tensor.hpp"

namespace bitwave {
namespace {

TEST(Tensor, ZeroInitialized)
{
    Int8Tensor t({2, 3});
    EXPECT_EQ(t.numel(), 6);
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        EXPECT_EQ(t[i], 0);
    }
}

TEST(Tensor, RowMajorIndexing)
{
    Int32Tensor t({2, 3, 4});
    t.at({1, 2, 3}) = 42;
    EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 42);
    EXPECT_EQ(t.at({1, 2, 3}), 42);
}

TEST(Tensor, ShapeHelpers)
{
    EXPECT_EQ(shape_numel({2, 3, 4}), 24);
    EXPECT_EQ(shape_numel({}), 1);
    EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

TEST(Tensor, WrapsExternalData)
{
    Int8Tensor t({2, 2}, {1, 2, 3, 4});
    EXPECT_EQ(t.at({1, 0}), 3);
}

TEST(Tensor, FillAndEquality)
{
    Int8Tensor a({4});
    Int8Tensor b({4});
    a.fill(7);
    b.fill(7);
    EXPECT_EQ(a, b);
    b[2] = 0;
    EXPECT_FALSE(a == b);
}

TEST(Quantize, PerTensorScaleCoversMax)
{
    FloatTensor x({4}, {0.5f, -1.0f, 0.25f, 2.54f});
    const auto q = quantize_per_tensor(x);
    ASSERT_EQ(q.scales.size(), 1u);
    EXPECT_NEAR(q.scales[0], 2.54f / 127.f, 1e-6f);
    EXPECT_EQ(q.values[3], 127);
    EXPECT_NEAR(q.dequantize(1), -1.0f, q.scales[0]);
}

TEST(Quantize, PerTensorClampsToSignMagnitudeRange)
{
    // All quantized codes must be representable in sign-magnitude, i.e.
    // never -128.
    Rng rng(3);
    FloatTensor x({1000});
    for (std::int64_t i = 0; i < x.numel(); ++i) {
        x[i] = static_cast<float>(rng.gaussian(1.0));
    }
    const auto q = quantize_per_tensor(x);
    for (std::int64_t i = 0; i < q.values.numel(); ++i) {
        EXPECT_GE(q.values[i], -127);
        EXPECT_LE(q.values[i], 127);
    }
}

TEST(Quantize, PerChannelUsesIndependentScales)
{
    FloatTensor x({2, 2}, {0.1f, -0.1f, 10.f, -5.f});
    const auto q = quantize_per_channel(x);
    ASSERT_EQ(q.scales.size(), 2u);
    EXPECT_NEAR(q.scales[0], 0.1f / 127.f, 1e-7f);
    EXPECT_NEAR(q.scales[1], 10.f / 127.f, 1e-6f);
    EXPECT_EQ(q.values[0], 127);
    EXPECT_EQ(q.values[2], 127);
}

TEST(Quantize, AllZeroTensorQuantizesToZero)
{
    FloatTensor x({8});
    const auto q = quantize_per_tensor(x);
    for (std::int64_t i = 0; i < q.values.numel(); ++i) {
        EXPECT_EQ(q.values[i], 0);
    }
}

TEST(Requantize, EightBitsIsIdentity)
{
    Int8Tensor t({5}, {-127, -3, 0, 5, 127});
    EXPECT_EQ(requantize_to_bits(t, 8), t);
}

TEST(Requantize, FourBitsKeepsMultiplesOfSixteen)
{
    Int8Tensor t({4}, {-100, -9, 7, 100});
    const auto q = requantize_to_bits(t, 4);
    for (std::int64_t i = 0; i < q.numel(); ++i) {
        EXPECT_EQ(q[i] % 16, 0) << "element " << i;
    }
    // Rounded to nearest multiple of 16 (7 is closer to 0 than to 16).
    EXPECT_EQ(q[0], -96);
    EXPECT_EQ(q[1], -16);
    EXPECT_EQ(q[2], 0);
    EXPECT_EQ(q[3], 96);
}

TEST(Requantize, ErrorGrowsAsBitsShrink)
{
    Rng rng(5);
    Int8Tensor t({4096});
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        t[i] = static_cast<std::int8_t>(
            std::clamp<int>(static_cast<int>(rng.laplacian(12.0)), -127, 127));
    }
    double prev = 0.0;
    for (int bits = 7; bits >= 3; --bits) {
        const double err = rms_error(t, requantize_to_bits(t, bits));
        EXPECT_GE(err, prev) << "bits " << bits;
        prev = err;
    }
}

TEST(Requantize, CompressionRatio)
{
    EXPECT_DOUBLE_EQ(ptq_compression_ratio(4), 2.0);
    EXPECT_DOUBLE_EQ(ptq_compression_ratio(8), 1.0);
}

TEST(RmsError, ZeroForIdenticalTensors)
{
    Int8Tensor t({3}, {1, -2, 3});
    EXPECT_DOUBLE_EQ(rms_error(t, t), 0.0);
}

TEST(RmsError, MatchesHandComputedValue)
{
    Int8Tensor a({2}, {0, 0});
    Int8Tensor b({2}, {3, 4});
    EXPECT_NEAR(rms_error(a, b), std::sqrt(12.5), 1e-9);
}

}  // namespace
}  // namespace bitwave
