/**
 * @file
 * Unit and property tests for the three compression codecs: BCS, ZRE, CSR.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "compress/bcs.hpp"
#include "compress/csr.hpp"
#include "compress/zre.hpp"

namespace bitwave {
namespace {

Int8Tensor
random_tensor(std::int64_t n, double laplace_scale, double zero_prob,
              std::uint64_t seed)
{
    Rng rng(seed);
    Int8Tensor t({n});
    for (std::int64_t i = 0; i < n; ++i) {
        if (rng.bernoulli(zero_prob)) {
            t[i] = 0;
        } else {
            t[i] = static_cast<std::int8_t>(std::clamp<int>(
                static_cast<int>(rng.laplacian(laplace_scale)), -127, 127));
        }
    }
    return t;
}

// ---------------------------------------------------------------- BCS ---

TEST(Bcs, RoundTripSmallExample)
{
    Int8Tensor t({8}, {2, 4, -3, 6, 0, 0, 0, 0});
    for (auto repr : {Representation::kTwosComplement,
                      Representation::kSignMagnitude}) {
        const auto c = bcs_compress(t, 4, repr);
        EXPECT_EQ(bcs_decompress(c), t);
    }
}

TEST(Bcs, AllZeroTensorStoresNoColumns)
{
    Int8Tensor t({32});
    const auto c = bcs_compress(t, 8, Representation::kSignMagnitude);
    EXPECT_EQ(c.payload_bits(), 0);
    EXPECT_EQ(c.index_bits(), 4 * 8);
    EXPECT_EQ(bcs_decompress(c), t);
}

TEST(Bcs, DenseTensorHasNoCompression)
{
    // All columns populated: compressed size exceeds original by the index.
    Int8Tensor t({16});
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        t[i] = static_cast<std::int8_t>((i % 2) ? -127 : 127);
    }
    const auto c = bcs_compress(t, 16, Representation::kSignMagnitude);
    EXPECT_LT(c.compression_ratio(), 1.0);
    EXPECT_EQ(bcs_decompress(c), t);
}

TEST(Bcs, CompressedBitsDecomposition)
{
    const auto t = random_tensor(1024, 11.0, 0.05, 3);
    const auto c = bcs_compress(t, 16, Representation::kSignMagnitude);
    EXPECT_EQ(c.compressed_bits(), c.index_bits() + c.payload_bits());
    EXPECT_EQ(c.original_bits(), 1024 * 8);
    EXPECT_GT(c.ideal_compression_ratio(), c.compression_ratio());
}

TEST(Bcs, PartialTailGroupRoundTrips)
{
    const auto t = random_tensor(1001, 9.0, 0.1, 5);  // not divisible by 16
    const auto c = bcs_compress(t, 16, Representation::kSignMagnitude);
    EXPECT_EQ(bcs_decompress(c), t);
}

TEST(Bcs, SignMagnitudeCompressesWeightsBetterThanTwosComplement)
{
    const auto t = random_tensor(1 << 15, 10.0, 0.05, 11);
    for (int g : {8, 16, 32}) {
        const double sm = bcs_compress(t, g, Representation::kSignMagnitude)
                              .compression_ratio();
        const double tc = bcs_compress(t, g, Representation::kTwosComplement)
                              .compression_ratio();
        EXPECT_GT(sm, tc) << "group " << g;
    }
}

TEST(Bcs, BestHardwareGroupSizeIsSupported)
{
    const auto t = random_tensor(4096, 12.0, 0.05, 13);
    const int g = best_hardware_group_size(
        t, Representation::kSignMagnitude);
    EXPECT_TRUE(g == 8 || g == 16 || g == 32);
}

class BcsRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, double, double>>
{
};

TEST_P(BcsRoundTrip, LosslessForAllGroupSizesAndDistributions)
{
    const auto [g_size, scale, zero_prob] = GetParam();
    const auto t = random_tensor(
        777, scale, zero_prob,
        static_cast<std::uint64_t>(g_size * 1000 + scale));
    for (auto repr : {Representation::kTwosComplement,
                      Representation::kSignMagnitude}) {
        const auto c = bcs_compress(t, g_size, repr);
        EXPECT_EQ(bcs_decompress(c), t);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BcsRoundTrip,
    ::testing::Combine(::testing::Values(1, 4, 8, 16, 32, 64),
                       ::testing::Values(3.0, 12.0, 60.0),
                       ::testing::Values(0.0, 0.1, 0.9)));

// ---------------------------------------------------------------- ZRE ---

TEST(Zre, RoundTripBasic)
{
    Int8Tensor t({10}, {0, 0, 5, 0, -3, 0, 0, 0, 0, 1});
    const auto c = zre_compress(t);
    EXPECT_EQ(zre_decompress(c), t);
    EXPECT_EQ(c.entries.size(), 3u);
}

TEST(Zre, LongZeroRunsEmitPaddingEntries)
{
    Int8Tensor t({40});
    t[39] = 9;  // 39 zeros then one value: needs two padding entries
    const auto c = zre_compress(t);
    EXPECT_EQ(zre_decompress(c), t);
    EXPECT_EQ(c.entries.size(), 3u);
    EXPECT_EQ(c.entries[0].zero_run, 15);
    EXPECT_EQ(c.entries[0].value, 0);
}

TEST(Zre, TrailingZerosPreserved)
{
    Int8Tensor t({8}, {1, 0, 0, 0, 0, 0, 0, 0});
    const auto c = zre_compress(t);
    EXPECT_EQ(zre_decompress(c), t);
}

TEST(Zre, AllZerosCompressWell)
{
    Int8Tensor t({64});
    const auto c = zre_compress(t);
    EXPECT_EQ(zre_decompress(c), t);
    EXPECT_GT(c.compression_ratio(), 8.0);
}

TEST(Zre, DenseDataExpands)
{
    Int8Tensor t({64});
    t.fill(3);
    const auto c = zre_compress(t);
    // 12 bits per 8-bit value: CR = 8/12.
    EXPECT_NEAR(c.compression_ratio(), 8.0 / 12.0, 1e-9);
}

TEST(Zre, RoundTripRandom)
{
    for (double zp : {0.0, 0.3, 0.7, 0.97}) {
        const auto t = random_tensor(
            997, 20.0, zp, static_cast<std::uint64_t>(zp * 100) + 1);
        const auto c = zre_compress(t);
        EXPECT_EQ(zre_decompress(c), t) << "zero prob " << zp;
    }
}

TEST(Zre, WordParallelMatchesScalarOracle)
{
    // The SWAR mask scan must reproduce the element-at-a-time stream
    // entry for entry: sizes exercising whole-word chunks, tails, long
    // (> 15) runs crossing chunk boundaries, and trailing zeros.
    for (std::int64_t n : {1LL, 63LL, 64LL, 65LL, 128LL, 1009LL}) {
        for (double zp : {0.0, 0.5, 0.95, 1.0}) {
            const auto t = random_tensor(
                n, 25.0, zp,
                static_cast<std::uint64_t>(n * 131) +
                    static_cast<std::uint64_t>(zp * 10) + 7);
            const auto fast = zre_compress(t);
            const auto slow = zre_compress_scalar(t);
            ASSERT_EQ(fast.entries.size(), slow.entries.size())
                << "n=" << n << " zp=" << zp;
            for (std::size_t i = 0; i < fast.entries.size(); ++i) {
                ASSERT_EQ(fast.entries[i].zero_run,
                          slow.entries[i].zero_run);
                ASSERT_EQ(fast.entries[i].value, slow.entries[i].value);
            }
            EXPECT_EQ(zre_decompress(fast), t);
        }
    }
}

// ---------------------------------------------------------------- CSR ---

TEST(Csr, RoundTripBasic)
{
    Int8Tensor t({4, 4});
    t.at({0, 1}) = 5;
    t.at({2, 3}) = -7;
    t.at({3, 0}) = 1;
    const auto c = csr_compress(t, 4);
    EXPECT_EQ(csr_decompress(c), t);
    EXPECT_EQ(c.values.size(), 3u);
    EXPECT_EQ(c.row_ptr.size(), 5u);
}

TEST(Csr, ColIndexBitsIsCeilLog2)
{
    Int8Tensor t({2, 16});
    auto c = csr_compress(t, 2);
    EXPECT_EQ(c.col_index_bits(), 4);
    Int8Tensor t2({2, 17});
    c = csr_compress(t2, 2);
    EXPECT_EQ(c.col_index_bits(), 5);
}

TEST(Csr, CompressionOnlyWinsWhenSparse)
{
    auto dense = random_tensor(64 * 64, 30.0, 0.0, 21);
    auto sparse = random_tensor(64 * 64, 30.0, 0.9, 22);
    EXPECT_LT(csr_compress(dense, 64).compression_ratio(), 1.0);
    EXPECT_GT(csr_compress(sparse, 64).compression_ratio(), 2.0);
}

TEST(Csr, RoundTripRandom)
{
    for (double zp : {0.0, 0.5, 0.95}) {
        const auto t = random_tensor(
            32 * 48, 25.0, zp, static_cast<std::uint64_t>(zp * 10) + 7);
        const auto c = csr_compress(t, 32);
        EXPECT_EQ(csr_decompress(c), t) << "zero prob " << zp;
    }
}

TEST(Csr, WordParallelMatchesScalarOracle)
{
    // The bit-plane mask-scan encoder must reproduce the
    // element-at-a-time oracle exactly — values, column indices and row
    // pointers — across sparsity regimes, row widths that straddle
    // 64-element word boundaries, and both packing representations.
    struct Geometry { std::int64_t rows, cols; };
    const Geometry geoms[] = {{32, 48}, {7, 37}, {1, 200}, {64, 64},
                              {5, 1}};
    for (double zp : {0.0, 0.3, 0.9, 1.0}) {
        for (const auto &g : geoms) {
            const auto t = random_tensor(
                g.rows * g.cols, 25.0, zp,
                static_cast<std::uint64_t>(zp * 100) + 13 *
                    static_cast<std::uint64_t>(g.cols));
            const auto s = csr_compress_scalar(t, g.rows);
            const auto p = csr_compress(t, g.rows);
            EXPECT_EQ(s.values, p.values) << zp << " " << g.cols;
            EXPECT_EQ(s.col_indices, p.col_indices) << zp << " " << g.cols;
            EXPECT_EQ(s.row_ptr, p.row_ptr) << zp << " " << g.cols;
            // Pre-packed planes, either representation: the non-zero
            // mask is representation-invariant.
            const auto sm = csr_compress(
                pack_bitplanes(t, Representation::kSignMagnitude), t,
                g.rows);
            EXPECT_EQ(s.values, sm.values);
            EXPECT_EQ(s.col_indices, sm.col_indices);
            EXPECT_EQ(s.row_ptr, sm.row_ptr);
            EXPECT_EQ(csr_decompress(p), t);
        }
    }
}

// ------------------------------------------------- cross-codec shape ---

TEST(CrossCodec, BcsBeatsValueCodecsAtLowValueSparsity)
{
    // The Fig. 5 headline: with scarce value sparsity, BCS (real CR,
    // including index cost) outperforms ZRE and CSR.
    const auto t = random_tensor(1 << 15, 10.0, 0.03, 42);
    const double bcs_cr =
        bcs_compress(t, 16, Representation::kSignMagnitude)
            .compression_ratio();
    const double zre_cr = zre_compress(t).compression_ratio();
    const double csr_cr = csr_compress(t, 128).compression_ratio();
    EXPECT_GT(bcs_cr, zre_cr);
    EXPECT_GT(bcs_cr, csr_cr);
    EXPECT_GT(bcs_cr, 1.0);
}

}  // namespace
}  // namespace bitwave
