/**
 * @file
 * Banked on-chip SRAM activity model.
 *
 * The simulator does not store actual bytes in the SRAM model (operands
 * live in the workload tensors); it tracks capacity and counts accesses
 * per bank so the energy model can price on-chip traffic and tests can
 * assert banking invariants (BitWave: 16-bank activation SRAM, 64-bit
 * segments, Section IV-C).
 */
#pragma once

#include <cstdint>
#include <vector>

namespace bitwave {

/// A multi-banked SRAM with access accounting.
class BankedSram
{
  public:
    /**
     * @param total_bytes Capacity across all banks.
     * @param banks       Number of equally-sized banks.
     * @param word_bits   Access word width in bits.
     */
    BankedSram(std::int64_t total_bytes, int banks, int word_bits);

    /// Record @p bits of reads starting at bank @p bank (round-robin).
    void read(std::int64_t bits, int bank = 0);

    /// Record @p bits of writes starting at bank @p bank (round-robin).
    void write(std::int64_t bits, int bank = 0);

    std::int64_t total_bytes() const { return total_bytes_; }
    int banks() const { return static_cast<int>(reads_.size()); }
    int word_bits() const { return word_bits_; }

    std::int64_t total_read_bits() const;
    std::int64_t total_write_bits() const;
    std::int64_t bank_read_bits(int bank) const;
    std::int64_t bank_write_bits(int bank) const;

    /// Cycles to move all recorded reads+writes at one word per bank
    /// per cycle (i.e. bounded by the busiest bank).
    double access_cycles() const;

    /// Does a tensor of @p bytes fit?
    bool fits(std::int64_t bytes) const { return bytes <= total_bytes_; }

    /// Clear all counters.
    void reset();

  private:
    std::int64_t total_bytes_;
    int word_bits_;
    std::vector<std::int64_t> reads_;   ///< Bits read per bank.
    std::vector<std::int64_t> writes_;  ///< Bits written per bank.
};

}  // namespace bitwave
