/**
 * @file
 * Zero-Column Index Parser (ZCIP) — Fig. 7.
 *
 * Each parser slice consumes one 8-bit zero-column index. The MSB flags a
 * non-zero sign column (Sign Rqst); the remaining bits Idx[6..0] mark the
 * populated data-bit columns and drive the shift amounts applied after
 * the BCE's partial-sum accumulation. The parser also derives the number
 * of non-zero columns (Sync.ctr) that controls how many cycles the
 * current index's computation occupies.
 *
 * In dense mode the parser synthesizes shift controls locally from the
 * configured precision, so uncompressed (deeply-quantized) weights run
 * without index overhead.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace bitwave {

/// Decoded control information for one weight group pass.
struct ZcipDecode
{
    bool sign_request = false;   ///< Sign column must be streamed.
    std::vector<int> shifts;     ///< Shift amount per non-zero data column
                                 ///< (ascending significance, 0..6).
    int nonzero_columns = 0;     ///< Sync.ctr: data columns + sign column.
};

/**
 * One ZCIP parser slice. BitWave instantiates 128 of these to parse
 * 1024 index bits per cycle; each slice is stateless per index.
 */
class ZeroColumnIndexParser
{
  public:
    /// Decode a sparse-mode index byte.
    ZcipDecode parse(std::uint8_t index) const;

    /**
     * Dense-mode decode: all @p precision data columns present plus the
     * sign column; no index is consumed.
     */
    ZcipDecode parse_dense(int precision) const;
};

}  // namespace bitwave
