/**
 * @file
 * BitWave Compute Engine (BCE) — Fig. 8.
 *
 * A BCE multiplies one weight bit-column against a vector of
 * full-precision two's-complement activations per cycle, in five steps:
 *  1. input loading (activations + weight bit column + sign bits),
 *  2. sign-magnitude multiplication (AND gates + sign resolution),
 *  3. partial-sum accumulation across the column's elements,
 *  4. a single shift aligning the column's significance,
 *  5. output accumulation into the local register.
 *
 * The add-then-shift order (one shifter per column instead of one per
 * bit) is the area/energy advantage over classic bit-serial PEs
 * (Table IV). The hardware BCE is 8 elements wide; this model accepts
 * any width up to 64 so one object can represent the fused Cu/8 slices
 * that process a whole group.
 */
#pragma once

#include <cstdint>
#include <span>

#include "sim/zcip.hpp"

namespace bitwave {

/// Per-BCE activity counters (for energy accounting).
struct BceActivity
{
    std::int64_t column_ops = 0;  ///< Bit-column multiply/accumulate ops.
    std::int64_t shifts = 0;      ///< Single-shift operations.
    std::int64_t output_writes = 0;
};

/**
 * Functional + activity model of one (possibly fused) BCE.
 */
class Bce
{
  public:
    /**
     * Step 1: latch activations and per-weight sign bits for the current
     * group. Signs and activations are then reused for every non-zero
     * column of the group (the reuse the paper highlights).
     *
     * @param activations Two's-complement activations, one per element.
     * @param sign_bits   Bit j set = weight j is negative (all zero when
     *                    the ZCIP raised no Sign Rqst).
     */
    void load_inputs(std::span<const std::int8_t> activations,
                     std::uint64_t sign_bits);

    /**
     * Steps 2-5 for one non-zero column: multiply the 1-bit column
     * against the latched activations, accumulate with signs, shift by
     * the column significance, and add into the output register.
     *
     * @param column_bits Bit j = weight j's bit at this significance.
     * @param shift       Column significance (0..6) from the ZCIP.
     */
    void process_column(std::uint64_t column_bits, int shift);

    /// Step 5 result: the accumulated output register.
    std::int32_t output() const { return accumulator_; }

    /// Clear the output register (new output position).
    void reset_output() { accumulator_ = 0; }

    const BceActivity &activity() const { return activity_; }

  private:
    std::int8_t activations_[64] = {};
    std::uint64_t sign_bits_ = 0;
    std::size_t width_ = 0;
    std::int32_t accumulator_ = 0;
    BceActivity activity_;
};

/**
 * Reference one-shot helper: compute a whole group-pass dot product
 * (all non-zero columns of one group) with a fresh BCE. Returns the
 * signed partial sum of sum_j activation_j * weight_j for the group.
 *
 * @param decode      ZCIP output for the group's index.
 * @param columns     Non-zero data columns, ascending significance
 *                    (matching decode.shifts), bit j = weight j.
 * @param sign_column Sign column bits (used when decode.sign_request).
 */
std::int32_t bce_group_pass(std::span<const std::int8_t> activations,
                            const ZcipDecode &decode,
                            std::span<const std::uint64_t> columns,
                            std::uint64_t sign_column);

}  // namespace bitwave
