#include "sim/npu.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "nn/reference.hpp"
#include "nn/synthesis.hpp"
#include "sparsity/bitcolumn.hpp"

namespace bitwave {

NpuConfig::NpuConfig() : dataflows(bitwave_sus()) {}

double
LayerSimResult::mean_columns_per_group() const
{
    return group_passes > 0
        ? static_cast<double>(nonzero_columns_streamed) /
              static_cast<double>(group_passes)
        : 0.0;
}

BitWaveNpu::BitWaveNpu(NpuConfig config, const TechParams &tech,
                       const DramModel &dram)
    : config_(std::move(config)), tech_(tech), dram_(dram)
{
    if (config_.dataflows.empty()) {
        fatal("BitWaveNpu: no dataflows configured");
    }
}

std::vector<BitWaveNpu::CompressedRow>
BitWaveNpu::compress_rows(const BitPlanes &planes, const LayerDesc &desc,
                          int group_size) const
{
    const WeightRowGeometry geom = weight_row_geometry(desc);
    if (geom.rows * geom.row_len != planes.n) {
        fatal("compress_rows: weight tensor does not match layer %s",
              desc.to_string().c_str());
    }
    // One word-parallel pass yields every group's zero-column index; the
    // payload gather below then touches only the non-zero planes.
    const std::int64_t groups_per_row =
        ceil_div(geom.row_len, group_size);
    std::vector<std::uint8_t> indexes(
        static_cast<std::size_t>(geom.rows * groups_per_row));
    if (planes.n > 0) {
        scan_group_indexes(planes, geom.row_len, group_size,
                           indexes.data());
    }

    ZeroColumnIndexParser parser;
    std::vector<CompressedRow> rows(static_cast<std::size_t>(geom.rows));
    for (std::int64_t r = 0; r < geom.rows; ++r) {
        CompressedRow &row = rows[static_cast<std::size_t>(r)];
        for (std::int64_t g = 0; g < groups_per_row; ++g) {
            const std::int64_t c0 = g * group_size;
            const std::int64_t start = r * geom.row_len + c0;
            const int len = static_cast<int>(
                std::min<std::int64_t>(group_size, geom.row_len - c0));
            ZcipDecode decode = config_.dense_mode
                ? parser.parse_dense(kWordBits)
                : parser.parse(indexes[static_cast<std::size_t>(
                      r * groups_per_row + g)]);
            std::vector<std::uint64_t> cols;
            cols.reserve(decode.shifts.size());
            for (int shift : decode.shifts) {
                cols.push_back(planes.segment(shift, start, len));
            }
            row.sign_columns.push_back(
                planes.segment(kWordBits - 1, start, len));
            row.data_columns.push_back(std::move(cols));
            row.decodes.push_back(std::move(decode));
        }
    }
    return rows;
}

LayerSimResult
BitWaveNpu::run_layer(const WorkloadLayer &layer, const Int8Tensor *input,
                      const Int8Tensor *weights, bool compute_output,
                      LayerContext ctx, std::uint64_t weights_hash) const
{
    if (compute_output && config_.repr != Representation::kSignMagnitude) {
        fatal("BitWaveNpu: functional execution requires sign-magnitude");
    }
    const Int8Tensor &w = weights != nullptr ? *weights : layer.weights;
    const LayerDesc &desc = layer.desc;
    const LayerDesc mapped = normalized_for_mapping(desc);

    // Pack (or fetch from the content-hash cache) the weight bit planes
    // once; SU selection, compression, cycle accounting and the
    // functional BCE pass all read columns straight out of them.
    const std::uint64_t content_hash =
        weights == nullptr ? layer.weights_hash : weights_hash;
    const auto planes = shared_bitplanes(w, config_.repr, content_hash);

    const SpatialUnrolling *selected = nullptr;
    if (config_.mapping_policy == search::MappingPolicy::kCostAware) {
        // The same offline cost-aware selection the analytical model
        // replays (search/cost.hpp), so both engines pick one SU.
        search::MappingCostConfig mcfg;
        mcfg.repr = config_.repr;
        mcfg.memory.weight_sram_bytes = config_.weight_sram_bytes;
        mcfg.memory.act_sram_bytes = config_.act_sram_bytes;
        mcfg.memory.weight_port_bits = config_.weight_port_bits;
        mcfg.memory.act_port_bits =
            config_.act_sram_banks * config_.sram_word_bits;
        mcfg.skip_zero_columns = !config_.dense_mode;
        mcfg.compress_weights = !config_.dense_mode;
        selected = &search::select_su_cost_aware(
            mapped, config_.dataflows, planes.get(), content_hash, mcfg,
            tech_, dram_);
    } else {
        selected = &select_su(mapped, config_.dataflows);
    }
    const SpatialUnrolling &su = *selected;

    // Group size: the SU's BCS group — the C unrolling for standard
    // layers, SU7's G unrolling (64) for depthwise. The analytical model
    // accounts with the same su.group_size(), so the two engines can no
    // longer drift apart on depthwise layers.
    const int group_size =
        std::clamp(static_cast<int>(su.group_size()), 1, 64);

    LayerSimResult result;
    result.layer_name = desc.name;
    result.su_name = su.name;
    result.group_size = group_size;

    const auto rows = compress_rows(*planes, desc, group_size);
    const WeightRowGeometry geom = weight_row_geometry(desc);
    const double bc = static_cast<double>(su.bit_columns);

    // ---- Cycle accounting over the temporal tile schedule ---------------
    const std::int64_t revisits = ceil_div(mapped.ox, su.factor(Dim::kOX)) *
        ceil_div(mapped.oy, su.factor(Dim::kOY)) * mapped.batch;
    const std::int64_t ku = su.factor(Dim::kK);
    const std::int64_t k_total = mapped.k;

    double decoupled = 0.0;
    double lockstep = 0.0;
    std::int64_t group_passes_once = 0;     // per single revisit
    std::int64_t nz_streamed_once = 0;
    std::int64_t weight_bits_once = 0;

    for (std::int64_t k0 = 0; k0 < k_total; k0 += ku) {
        const std::int64_t k1 = std::min<std::int64_t>(k0 + ku, k_total);
        double tile_work = 0.0;
        // All kernels in the tile share row structure (same layer), so
        // lockstep cost maxes over kernels per (row-in-kernel, group).
        const std::size_t groups_per_row =
            rows.empty() ? 0 : rows.front().decodes.size();
        for (std::int64_t f = 0; f < geom.rows_per_kernel; ++f) {
            for (std::size_t g = 0; g < groups_per_row; ++g) {
                double worst = 0.0;
                for (std::int64_t k = k0; k < k1; ++k) {
                    const auto &row = rows[static_cast<std::size_t>(
                        k * geom.rows_per_kernel + f)];
                    const int nz = row.decodes[g].nonzero_columns;
                    const double cycles = std::max(
                        1.0, std::ceil(static_cast<double>(nz) / bc));
                    tile_work += cycles;
                    worst = std::max(worst, cycles);
                    ++group_passes_once;
                    nz_streamed_once += nz;
                    weight_bits_once += kWordBits +
                        static_cast<std::int64_t>(nz) * group_size;
                }
                lockstep += worst;
            }
        }
        decoupled += tile_work / static_cast<double>(k1 - k0);
    }

    const double rev = static_cast<double>(revisits);
    result.cycles_decoupled = decoupled * rev;
    result.cycles_lockstep = lockstep * rev;
    result.group_passes = group_passes_once * revisits;
    result.nonzero_columns_streamed = nz_streamed_once * revisits;
    // The fetcher's double buffer holds the active weight tile across
    // spatial revisits, so the compressed stream (columns + index)
    // crosses the SRAM weight port once per layer sweep — and DRAM once
    // per layer.
    result.weight_bits_fetched = weight_bits_once;
    result.weight_bits_dram = weight_bits_once;
    result.output_words = desc.output_count();

    // Activation fetches: one group-wide activation vector per k-tile
    // group pass, covering OXu output positions, re-fetched per revisit.
    const std::int64_t k_tiles = ceil_div(k_total, ku);
    const std::size_t groups_per_row =
        rows.empty() ? 0 : rows.front().decodes.size();
    result.act_bits_fetched = k_tiles * geom.rows_per_kernel *
        static_cast<std::int64_t>(groups_per_row) * group_size *
        su.factor(Dim::kOX) * kWordBits * revisits;

    // Activations cross DRAM only at the network boundary (the Fig. 16
    // residency assumption the analytical model applies): first layers
    // stream their input in, last layers drain their output.
    result.act_bits_dram =
        (ctx.first_layer ? desc.input_count() * kWordBits : 0) +
        (ctx.last_layer ? desc.output_count() * kWordBits : 0);

    // ---- SRAM / DRAM composition (Eq. 5) ---------------------------------
    BankedSram act_sram(config_.act_sram_bytes, config_.act_sram_banks,
                        config_.sram_word_bits);
    act_sram.read(result.act_bits_fetched);
    act_sram.write(result.output_words * kWordBits);
    result.act_fetch_cycles =
        static_cast<double>(result.act_bits_fetched) /
        static_cast<double>(config_.act_sram_banks *
                            config_.sram_word_bits);
    result.dram_cycles = dram_.transfer_cycles(
        static_cast<double>(result.weight_bits_dram +
                            result.act_bits_dram));
    LatencyParts lat;
    lat.compute_cycles = result.cycles_decoupled;
    // The compressed weight stream (non-zero columns + ZCIP index)
    // occupies the physical weight port; fetch-bound layers pace on it
    // (the same accounting the analytical model applies).
    lat.weight_fetch_cycles =
        static_cast<double>(result.weight_bits_fetched) /
        static_cast<double>(config_.weight_port_bits);
    lat.act_fetch_cycles = result.act_fetch_cycles;
    lat.dram_cycles = result.dram_cycles;
    lat.output_write_cycles =
        static_cast<double>(result.output_words) * kWordBits /
        static_cast<double>(config_.act_sram_banks *
                            config_.sram_word_bits);
    result.total_cycles = compose_latency(lat);

    // ---- Energy (shared Eq. 4 pricing) -----------------------------------
    EnergyActivity activity;
    // MAC-equivalents: each streamed column covers group_size weights'
    // worth of 1b work across OXu output positions; 8 columns = one full
    // 8b MAC per weight.
    activity.mac_units =
        static_cast<double>(result.nonzero_columns_streamed) *
        static_cast<double>(group_size) / 8.0 *
        static_cast<double>(su.factor(Dim::kOX)) / 8.0;
    activity.e_mac_pj = tech_.e_mac_bit_column_pj;
    activity.sram_read_bits =
        static_cast<double>(result.weight_bits_fetched +
                            result.act_bits_fetched);
    // Input streamed from DRAM lands in the activation SRAM first, the
    // same spill the model charges via its sram_write_act composition.
    activity.sram_write_bits =
        static_cast<double>(result.output_words) * kWordBits +
        (ctx.first_layer
             ? static_cast<double>(desc.input_count()) * kWordBits : 0.0);
    activity.dram_bits = static_cast<double>(result.weight_bits_dram +
                                             result.act_bits_dram);
    activity.cycles = result.total_cycles;
    result.energy = price_energy(activity, tech_, dram_);

    // ---- Functional execution through the BCE datapath -------------------
    if (compute_output) {
        Int8Tensor synthesized;
        const Int8Tensor *in = input;
        if (in == nullptr) {
            Rng rng(config_.act_seed);
            synthesized = synthesize_activations(
                layer_input_shape(desc), layer.activation_sparsity, 12.0,
                layer.activation_sparsity > 0.2, rng);
            in = &synthesized;
        }
        const std::int64_t iy_n = desc.iy(), ix_n = desc.ix();
        Int32Tensor out({desc.batch, desc.k, desc.oy, desc.ox});
        std::vector<std::int8_t> acts(static_cast<std::size_t>(group_size));
        std::vector<std::int32_t> accs(static_cast<std::size_t>(desc.k));
        const std::size_t act_groups =
            rows.empty() ? 0 : rows.front().decodes.size();
        const bool depthwise = desc.kind == LayerKind::kDepthwiseConv;

        // Batched gathers: for standard layers a group's activation
        // vector depends only on (b, oy, ox, f, g), so it is gathered
        // ONCE per group pass and broadcast to all K kernel rows — the
        // Ku-lane activation reuse of the real dispatcher — instead of
        // re-gathering per output channel. Depthwise taps address the
        // per-channel plane, so they keep the per-kernel gather.
        for (std::int64_t b = 0; b < desc.batch; ++b) {
            for (std::int64_t oy = 0; oy < desc.oy; ++oy) {
                for (std::int64_t ox = 0; ox < desc.ox; ++ox) {
                    std::fill(accs.begin(), accs.end(), 0);
                    for (std::int64_t f = 0; f < geom.rows_per_kernel;
                         ++f) {
                        const std::int64_t fy = f / desc.fx;
                        const std::int64_t fx = f % desc.fx;
                        for (std::size_t g = 0; g < act_groups; ++g) {
                            const std::int64_t c0 =
                                static_cast<std::int64_t>(g) * group_size;
                            const std::int64_t len =
                                std::min<std::int64_t>(
                                    group_size, geom.row_len - c0);
                            if (!depthwise) {
                                for (std::int64_t j = 0; j < len; ++j) {
                                    std::int64_t idx = 0;
                                    switch (desc.kind) {
                                      case LayerKind::kConv:
                                      case LayerKind::kPointwiseConv: {
                                        const std::int64_t iy =
                                            oy * desc.stride + fy;
                                        const std::int64_t ix =
                                            ox * desc.stride + fx;
                                        idx = ((b * desc.c + c0 + j) *
                                               iy_n + iy) * ix_n + ix;
                                        break;
                                      }
                                      default:  // kLinear / kLstm
                                        idx = b * desc.c + c0 + j;
                                        break;
                                    }
                                    acts[static_cast<std::size_t>(j)] =
                                        (*in)[idx];
                                }
                            }
                            for (std::int64_t k = 0; k < desc.k; ++k) {
                                const auto &row =
                                    rows[static_cast<std::size_t>(
                                        k * geom.rows_per_kernel + f)];
                                if (depthwise) {
                                    for (std::int64_t j = 0; j < len;
                                         ++j) {
                                        const std::int64_t tap = c0 + j;
                                        const std::int64_t iy =
                                            oy * desc.stride +
                                            tap / desc.fx;
                                        const std::int64_t ix =
                                            ox * desc.stride +
                                            tap % desc.fx;
                                        acts[static_cast<std::size_t>(
                                            j)] =
                                            (*in)[((b * desc.k + k) *
                                                   iy_n + iy) * ix_n +
                                                  ix];
                                    }
                                }
                                accs[static_cast<std::size_t>(k)] +=
                                    bce_group_pass(
                                        {acts.data(),
                                         static_cast<std::size_t>(len)},
                                        row.decodes[g],
                                        {row.data_columns[g].data(),
                                         row.data_columns[g].size()},
                                        row.sign_columns[g]);
                            }
                        }
                    }
                    for (std::int64_t k = 0; k < desc.k; ++k) {
                        out[((b * desc.k + k) * desc.oy + oy) * desc.ox +
                            ox] = accs[static_cast<std::size_t>(k)];
                    }
                }
            }
        }
        result.output = std::move(out);
    }
    return result;
}

}  // namespace bitwave
