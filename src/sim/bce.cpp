#include "sim/bce.hpp"

#include "common/logging.hpp"

namespace bitwave {

void
Bce::load_inputs(std::span<const std::int8_t> activations,
                 std::uint64_t sign_bits)
{
    if (activations.size() > 64) {
        fatal("Bce::load_inputs: width %zu exceeds 64", activations.size());
    }
    width_ = activations.size();
    for (std::size_t i = 0; i < width_; ++i) {
        activations_[i] = activations[i];
    }
    sign_bits_ = sign_bits;
}

void
Bce::process_column(std::uint64_t column_bits, int shift)
{
    if (shift < 0 || shift > 7) {
        fatal("Bce::process_column: shift %d out of range", shift);
    }
    // Step 2 (SMM): AND gate per element; the weight sign and the
    // activation sign jointly determine the partial product sign — for a
    // two's-complement activation this is just a conditional negation.
    // Step 3: accumulate the column's partial products BEFORE shifting.
    std::int32_t column_sum = 0;
    for (std::size_t j = 0; j < width_; ++j) {
        if ((column_bits >> j) & 1ULL) {
            const std::int32_t a = activations_[j];
            column_sum += ((sign_bits_ >> j) & 1ULL) ? -a : a;
        }
    }
    // Step 4: one shift for the whole column.
    // Step 5: accumulate into the output register.
    accumulator_ += column_sum << shift;
    ++activity_.column_ops;
    ++activity_.shifts;
    ++activity_.output_writes;
}

std::int32_t
bce_group_pass(std::span<const std::int8_t> activations,
               const ZcipDecode &decode,
               std::span<const std::uint64_t> columns,
               std::uint64_t sign_column)
{
    if (columns.size() != decode.shifts.size()) {
        fatal("bce_group_pass: %zu columns for %zu shifts", columns.size(),
              decode.shifts.size());
    }
    Bce bce;
    bce.load_inputs(activations, decode.sign_request ? sign_column : 0);
    for (std::size_t c = 0; c < columns.size(); ++c) {
        bce.process_column(columns[c], decode.shifts[c]);
    }
    return bce.output();
}

}  // namespace bitwave
