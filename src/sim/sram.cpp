#include "sim/sram.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bitwave {

BankedSram::BankedSram(std::int64_t total_bytes, int banks, int word_bits)
    : total_bytes_(total_bytes), word_bits_(word_bits)
{
    if (total_bytes <= 0 || banks <= 0 || word_bits <= 0) {
        fatal("BankedSram: all parameters must be positive");
    }
    reads_.assign(static_cast<std::size_t>(banks), 0);
    writes_.assign(static_cast<std::size_t>(banks), 0);
}

void
BankedSram::read(std::int64_t bits, int bank)
{
    if (bits < 0) {
        fatal("BankedSram::read: negative bits");
    }
    // Round-robin the traffic across banks starting at `bank`.
    const int n = banks();
    const std::int64_t per_bank = bits / n;
    const std::int64_t rem = bits % n;
    for (int b = 0; b < n; ++b) {
        reads_[static_cast<std::size_t>((bank + b) % n)] +=
            per_bank + (b == 0 ? rem : 0);
    }
}

void
BankedSram::write(std::int64_t bits, int bank)
{
    if (bits < 0) {
        fatal("BankedSram::write: negative bits");
    }
    const int n = banks();
    const std::int64_t per_bank = bits / n;
    const std::int64_t rem = bits % n;
    for (int b = 0; b < n; ++b) {
        writes_[static_cast<std::size_t>((bank + b) % n)] +=
            per_bank + (b == 0 ? rem : 0);
    }
}

std::int64_t
BankedSram::total_read_bits() const
{
    std::int64_t sum = 0;
    for (auto r : reads_) {
        sum += r;
    }
    return sum;
}

std::int64_t
BankedSram::total_write_bits() const
{
    std::int64_t sum = 0;
    for (auto w : writes_) {
        sum += w;
    }
    return sum;
}

std::int64_t
BankedSram::bank_read_bits(int bank) const
{
    return reads_.at(static_cast<std::size_t>(bank));
}

std::int64_t
BankedSram::bank_write_bits(int bank) const
{
    return writes_.at(static_cast<std::size_t>(bank));
}

double
BankedSram::access_cycles() const
{
    std::int64_t busiest = 0;
    for (std::size_t b = 0; b < reads_.size(); ++b) {
        busiest = std::max(busiest, reads_[b] + writes_[b]);
    }
    return static_cast<double>(busiest) / static_cast<double>(word_bits_);
}

void
BankedSram::reset()
{
    std::fill(reads_.begin(), reads_.end(), 0);
    std::fill(writes_.begin(), writes_.end(), 0);
}

}  // namespace bitwave
