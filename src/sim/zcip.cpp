#include "sim/zcip.hpp"

#include "common/bits.hpp"
#include "common/logging.hpp"

namespace bitwave {

ZcipDecode
ZeroColumnIndexParser::parse(std::uint8_t index) const
{
    ZcipDecode out;
    out.sign_request = test_bit(index, 7);
    for (int b = 0; b < kMagnitudeBits; ++b) {
        if (test_bit(index, b)) {
            out.shifts.push_back(b);
        }
    }
    out.nonzero_columns =
        static_cast<int>(out.shifts.size()) + (out.sign_request ? 1 : 0);
    return out;
}

ZcipDecode
ZeroColumnIndexParser::parse_dense(int precision) const
{
    if (precision < 1 || precision > kWordBits) {
        fatal("parse_dense: precision %d out of [1, 8]", precision);
    }
    ZcipDecode out;
    out.sign_request = true;
    for (int b = 0; b < precision - 1; ++b) {
        out.shifts.push_back(b);
    }
    out.nonzero_columns = precision;
    return out;
}

}  // namespace bitwave
