/**
 * @file
 * Cycle-level BitWave NPU simulator — the Fig. 11 system: data fetcher,
 * ZCIP bank, 512 BCEs, data dispatcher, banked SRAMs and a top
 * controller applying the per-layer spatial unrolling.
 *
 * The simulator is *functional* (its outputs are bit-exact against the
 * reference int8 kernels) and *cycle-level*: it walks the temporal tile
 * schedule of the selected SU and charges per-group column cycles from
 * the actual compressed weight stream. Two cycle counts are reported:
 *
 *  - `cycles_decoupled`: lanes drain their group streams independently
 *    through the fetcher's double buffering (throughput = mean group
 *    occupancy; this is the paper's operating assumption and what the
 *    analytical model uses);
 *  - `cycles_lockstep`: all Ku kernel lanes synchronize per group pass
 *    (throughput = max occupancy; this is what Bit-Flip's workload
 *    balancing eliminates, and what the sync ablation bench shows).
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dataflow/su.hpp"
#include "search/cost.hpp"
#include "sparsity/stats.hpp"
#include "energy/dram.hpp"
#include "energy/pricing.hpp"
#include "energy/tech.hpp"
#include "nn/traverse.hpp"
#include "nn/workload.hpp"
#include "sim/bce.hpp"
#include "sim/sram.hpp"
#include "sim/zcip.hpp"

namespace bitwave {

/// Static configuration of the simulated NPU instance (Section V-A).
struct NpuConfig
{
    std::vector<SpatialUnrolling> dataflows;  ///< Defaults to Table I.
    /**
     * Per-layer SU choice: the historic utilization ranking (default,
     * bit-compatible) or the search/cost.hpp latency ranking — the same
     * offline ZigZag-style selection the analytical model replays, so
     * the two engines keep agreeing layer by layer under either policy.
     */
    search::MappingPolicy mapping_policy =
        search::MappingPolicy::kUtilization;
    std::int64_t weight_sram_bytes = 256 * 1024;
    std::int64_t act_sram_bytes = 256 * 1024;
    /// SRAM->array weight bandwidth (Table I: W BW <= 1024 bits/cycle).
    std::int64_t weight_port_bits = 1024;
    int act_sram_banks = 16;
    int sram_word_bits = 64;
    bool dense_mode = false;  ///< ZCIP dense mode: no skipping/index.
    /// Representation for zero-column skipping.
    Representation repr = Representation::kSignMagnitude;
    /// Seed of the deterministic synthetic-activation stream used when
    /// run_layer() is given no input tensor.
    std::uint64_t act_seed = 0xFEED;

    NpuConfig();
};

/// Result of simulating one layer.
struct LayerSimResult
{
    std::string layer_name;
    std::string su_name;
    int group_size = 0;

    std::optional<Int32Tensor> output;  ///< Present when compute_output.

    double cycles_decoupled = 0.0;
    double cycles_lockstep = 0.0;
    double dram_cycles = 0.0;
    double act_fetch_cycles = 0.0;
    double total_cycles = 0.0;  ///< Eq. (5) composition with decoupled.

    std::int64_t group_passes = 0;
    std::int64_t nonzero_columns_streamed = 0;
    std::int64_t weight_bits_fetched = 0;  ///< Compressed incl. index.
    std::int64_t weight_bits_dram = 0;
    /// Activation bits crossing DRAM: network input read on the first
    /// layer, output written back on the last (LayerContext flags) —
    /// intermediate feature maps stay on chip, as in the model.
    std::int64_t act_bits_dram = 0;
    std::int64_t act_bits_fetched = 0;
    std::int64_t output_words = 0;

    /// Eq. (4) energy from the shared pricing core.
    EnergyBreakdown energy;

    /// Mean non-zero columns per group (includes the sign column).
    double mean_columns_per_group() const;
};

/**
 * The BitWave NPU.
 */
class BitWaveNpu
{
  public:
    explicit BitWaveNpu(NpuConfig config = {},
                        const TechParams &tech = default_tech(),
                        const DramModel &dram = default_dram());

    /**
     * Simulate one layer.
     *
     * @param layer          Shape + weights + activation statistics.
     * @param input          Input activations; when null a deterministic
     *                       synthetic input is generated from the layer's
     *                       statistics.
     * @param weights        Optional weight override (e.g. Bit-Flipped).
     * @param compute_output Functional execution of every MAC through the
     *                       BCE datapath (bit-exact, slower); cycle and
     *                       energy accounting is identical either way.
     * @param ctx            Position of the layer in the network: first
     *                       layers read their input from DRAM and last
     *                       layers write their output back, contributing
     *                       to DRAM cycles/energy exactly as in the
     *                       analytical model.
     * @param weights_hash   Content hash of @p weights when known (e.g.
     *                       eval::flipped_weights_hash); 0 hashes on the
     *                       fly for the shared bit-plane cache. Ignored
     *                       when @p weights is null.
     */
    LayerSimResult run_layer(const WorkloadLayer &layer,
                             const Int8Tensor *input = nullptr,
                             const Int8Tensor *weights = nullptr,
                             bool compute_output = true,
                             LayerContext ctx = {},
                             std::uint64_t weights_hash = 0) const;

    const NpuConfig &config() const { return config_; }

  private:
    /// One compressed weight row (all groups along the reduction axis).
    struct CompressedRow
    {
        std::vector<ZcipDecode> decodes;
        std::vector<std::vector<std::uint64_t>> data_columns;
        std::vector<std::uint64_t> sign_columns;
    };

    /// Row-aligned BCS compression of a weight tensor from its packed
    /// bit planes: indexes come from the word-parallel group scan and
    /// every payload/sign column is a plane segment gather.
    std::vector<CompressedRow> compress_rows(const BitPlanes &planes,
                                             const LayerDesc &desc,
                                             int group_size) const;

    NpuConfig config_;
    const TechParams &tech_;
    const DramModel &dram_;
};

}  // namespace bitwave
