/**
 * @file
 * Bit-Flip weight adjustment — Section III-D.
 *
 * Bit-Flip is a lossy, training-free post-processing step that forces
 * every weight group to have at least a target number of zero bit columns
 * in sign-magnitude form. Per group it selects columns to clear and
 * re-rounds each weight magnitude to the nearest value representable on
 * the remaining columns, minimizing the Euclidean distance to the
 * original weight vector (e.g. Fig. 4(c): targeting five zero columns
 * turns -3 = 1000'0011 into -4 = 1000'0100, distance 1).
 *
 * Enforcing the same target across all groups of a layer balances the
 * workload during parallel execution — every ZCIP lane then streams the
 * same number of non-zero columns.
 */
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace bitwave {

/// Outcome of flipping one group.
struct GroupFlipResult
{
    int zero_columns = 0;       ///< Zero columns after flipping (SM).
    double squared_error = 0.0; ///< Sum of squared value changes.
};

/**
 * Flip @p group in place so its sign-magnitude encoding has at least
 * @p target_zero_columns zero columns.
 *
 * Columns are cleared greedily in order of least added squared error;
 * magnitudes re-round to the nearest representable value after every
 * clearing, so previously processed weights can move again (e.g. 3 -> 4
 * when bit0/bit1 are cleared but bit2 stays available).
 *
 * @param target_zero_columns in [0, 8]; 8 forces the all-zero group.
 *
 * The greedy search scores candidates against a per-group magnitude
 * profile (counts per distinct magnitude) instead of walking every
 * element per candidate, and materializes the group once at the end —
 * selections, flipped values and reported errors are bit-identical to
 * bitflip_group_scalar().
 */
GroupFlipResult bitflip_group(std::span<std::int8_t> group,
                              int target_zero_columns);

/// Element-at-a-time oracle for bitflip_group() (tests and the
/// micro-kernel bench): scores every candidate against every element.
GroupFlipResult bitflip_group_scalar(std::span<std::int8_t> group,
                                     int target_zero_columns);

/**
 * Exhaustive per-group variant: tries every subset of columns to clear
 * and keeps the minimum-distance one. Exponential in 8; used by the
 * ablation bench to bound how far the greedy heuristic is from optimal.
 */
GroupFlipResult bitflip_group_exhaustive(std::span<std::int8_t> group,
                                         int target_zero_columns);

/**
 * Apply bitflip_group to every @p group_size -sized group of @p tensor
 * (tail group included). Returns the modified tensor.
 */
Int8Tensor bitflip_tensor(const Int8Tensor &tensor, int group_size,
                          int target_zero_columns);

/**
 * Nearest magnitude to @p magnitude representable using only the bit
 * positions in @p allowed_mask (both in [0, 127]). Ties round down.
 * Exposed for testing; backed by a precomputed 128x128 table.
 */
int nearest_magnitude_under_mask(int magnitude, int allowed_mask);

}  // namespace bitwave
