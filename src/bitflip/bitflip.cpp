#include "bitflip/bitflip.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "common/bits.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"

namespace bitwave {

namespace {

/**
 * nearest_table[mask][m] = value closest to m using only bits of mask.
 * Ties round up (away from zero), matching the paper's Fig. 4(c) example
 * where -3 flips to -4 rather than -2.
 */
const std::array<std::array<std::uint8_t, 128>, 128> &
nearest_table()
{
    static const auto table = [] {
        std::array<std::array<std::uint8_t, 128>, 128> t{};
        for (int mask = 0; mask < 128; ++mask) {
            for (int m = 0; m < 128; ++m) {
                int best = 0;
                int best_dist = std::numeric_limits<int>::max();
                for (int cand = 0; cand < 128; ++cand) {
                    if ((cand & ~mask) != 0) {
                        continue;
                    }
                    const int dist = std::abs(cand - m);
                    if (dist < best_dist ||
                        (dist == best_dist && cand > best)) {
                        best_dist = dist;
                        best = cand;
                    }
                }
                t[static_cast<std::size_t>(mask)]
                 [static_cast<std::size_t>(m)] =
                    static_cast<std::uint8_t>(best);
            }
        }
        return t;
    }();
    return table;
}

/**
 * err2_table[mask][m] = squared re-rounding error of magnitude m under
 * mask. The greedy search scores every candidate column drop against the
 * original weights, so this lookup is the innermost operation of
 * bitflip_tensor — one table read per weight per candidate.
 */
const std::array<std::array<std::uint16_t, 128>, 128> &
err2_table()
{
    static const auto table = [] {
        std::array<std::array<std::uint16_t, 128>, 128> t{};
        const auto &nearest = nearest_table();
        for (int mask = 0; mask < 128; ++mask) {
            for (int m = 0; m < 128; ++m) {
                const int d = m - nearest[static_cast<std::size_t>(mask)]
                                        [static_cast<std::size_t>(m)];
                t[static_cast<std::size_t>(mask)]
                 [static_cast<std::size_t>(m)] =
                    static_cast<std::uint16_t>(d * d);
            }
        }
        return t;
    }();
    return table;
}

/// Magnitude of @p v in sign-magnitude range: -128 clamps to 127, the
/// same convention to_sign_magnitude() applies (and the guard that
/// keeps the 128-entry lookup tables in bounds).
int
sm_magnitude(std::int8_t v)
{
    return std::min(std::abs(static_cast<int>(v)), 127);
}

/// Re-round @p original under configuration (mask, sign_allowed).
std::int8_t
reround(std::int8_t original, int mask, bool sign_allowed)
{
    if (!sign_allowed && original < 0) {
        // Nearest non-negative representable value to a negative weight is
        // 0 (distance |v|; any positive candidate is at least |v| + 1).
        return 0;
    }
    const int m = sm_magnitude(original);
    const int nm = nearest_table()[static_cast<std::size_t>(mask)]
                                  [static_cast<std::size_t>(m)];
    return static_cast<std::int8_t>(original < 0 ? -nm : nm);
}

/// Squared error of re-rounding @p originals under (mask, sign_allowed).
double
config_cost(std::span<const std::int8_t> originals, int mask,
            bool sign_allowed)
{
    const auto &err2 = err2_table()[static_cast<std::size_t>(mask)];
    std::int64_t cost = 0;
    for (std::int8_t v : originals) {
        const int m = sm_magnitude(v);
        // A negative weight without the sign column re-rounds to 0
        // (distance |v|); everything else follows the mask table.
        cost += (v < 0 && !sign_allowed)
            ? m * m : err2[static_cast<std::size_t>(m)];
    }
    return static_cast<double>(cost);
}

/// SM column-occupancy mask of @p group (bit7 = sign column).
std::uint8_t
occupancy(std::span<const std::int8_t> group)
{
    std::uint8_t idx = 0;
    for (std::int8_t v : group) {
        idx |= to_sign_magnitude(v);
    }
    return idx;
}

/// Materialize (mask, sign_allowed) into @p group from @p originals.
void
materialize(std::span<std::int8_t> group,
            std::span<const std::int8_t> originals, int mask,
            bool sign_allowed)
{
    for (std::size_t i = 0; i < group.size(); ++i) {
        group[i] = reround(originals[i], mask, sign_allowed);
    }
}

}  // namespace

int
nearest_magnitude_under_mask(int magnitude, int allowed_mask)
{
    if (magnitude < 0 || magnitude > 127 || allowed_mask < 0 ||
        allowed_mask > 127) {
        fatal("nearest_magnitude_under_mask: arguments out of range");
    }
    return nearest_table()[static_cast<std::size_t>(allowed_mask)]
                          [static_cast<std::size_t>(magnitude)];
}

GroupFlipResult
bitflip_group(std::span<std::int8_t> group, int target_zero_columns)
{
    if (target_zero_columns < 0 || target_zero_columns > 8) {
        fatal("bitflip_group: target %d out of [0, 8]", target_zero_columns);
    }

    // Group profile: counts per distinct magnitude (split by sign) plus
    // the negatives' squared-magnitude sum. Every candidate cost and
    // every post-re-rounding occupancy is a function of this profile, so
    // the greedy loop never touches the elements again until the final
    // materialization. All sums stay in int64 exactly as the scalar
    // oracle accumulates them, so selections are bit-identical.
    int cnt_all[128] = {};
    int cnt_neg[128] = {};
    std::uint8_t distinct[128];
    int n_distinct = 0;
    int n_neg = 0;
    std::int64_t neg_sq = 0;
    for (const std::int8_t v : group) {
        const int m = sm_magnitude(v);
        if (m != 0 && cnt_all[m]++ == 0) {
            distinct[n_distinct++] = static_cast<std::uint8_t>(m);
        }
        if (v < 0) {
            ++cnt_neg[m];
            ++n_neg;
            neg_sq += static_cast<std::int64_t>(m) * m;
        }
    }

    // Occupancy of the original group (magnitude columns + sign column).
    std::uint8_t occ_cur = n_neg > 0 ? 0x80 : 0x00;
    for (int i = 0; i < n_distinct; ++i) {
        occ_cur |= distinct[i];
    }

    int mask = occ_cur & 0x7F;
    bool sign_allowed = (occ_cur & 0x80) != 0;

    // Squared re-rounding error of the ORIGINAL weights under a config.
    const auto cost_of = [&](int cand_mask, bool sign) {
        const auto &err2 =
            err2_table()[static_cast<std::size_t>(cand_mask)];
        std::int64_t cost = 0;
        for (int i = 0; i < n_distinct; ++i) {
            const int m = distinct[i];
            const int count =
                sign ? cnt_all[m] : cnt_all[m] - cnt_neg[m];
            cost += static_cast<std::int64_t>(count) *
                err2[static_cast<std::size_t>(m)];
        }
        if (!sign) {
            cost += neg_sq;  // negatives re-round to 0 at distance m
        }
        return static_cast<double>(cost);
    };

    // Occupancy the group WOULD have after re-rounding under a config —
    // exactly occupancy(materialize(originals, mask, sign)).
    const auto occ_of = [&](int cand_mask, bool sign) {
        const auto &nearest =
            nearest_table()[static_cast<std::size_t>(cand_mask)];
        std::uint8_t occ = 0;
        bool sign_used = false;
        for (int i = 0; i < n_distinct; ++i) {
            const int m = distinct[i];
            const std::uint8_t nm = nearest[static_cast<std::size_t>(m)];
            if (cnt_all[m] - cnt_neg[m] > 0) {
                occ |= nm;
            }
            if (cnt_neg[m] > 0 && sign) {
                occ |= nm;
                sign_used = sign_used || nm != 0;
            }
        }
        return static_cast<std::uint8_t>(occ | (sign_used ? 0x80 : 0x00));
    };

    // Lazy greedy: a candidate's cost can only GROW as columns drop
    // (fewer allowed bits move every magnitude's nearest representable
    // value farther; revoking the sign column re-rounds negatives to 0
    // at distance >= their masked error), so the cost computed for a
    // candidate in an earlier iteration is a valid lower bound now.
    // Candidates whose bound already matches or exceeds the running
    // minimum are skipped without re-evaluating cost_of — the strict-<
    // comparison means they could never have replaced the minimum —
    // which keeps the selection (and thus the output) bit-identical to
    // the eager scalar oracle while eliminating most per-candidate err2
    // re-evaluations after the first iteration.
    double bound[kMagnitudeBits];
    bool bounded[kMagnitudeBits] = {};
    double sign_bound = 0.0;
    bool sign_bounded = false;

    while (kWordBits - popcount8(occ_cur) < target_zero_columns) {
        double best_cost = std::numeric_limits<double>::infinity();
        int best_mask = mask;
        bool best_sign = sign_allowed;

        for (int b = 0; b < kMagnitudeBits; ++b) {
            if (!((occ_cur >> b) & 1)) {
                continue;
            }
            if (bounded[b] && bound[b] >= best_cost) {
                continue;  // cannot beat the strict minimum
            }
            const int cand_mask = mask & ~(1 << b);
            const double cost = cost_of(cand_mask, sign_allowed);
            bound[b] = cost;
            bounded[b] = true;
            if (cost < best_cost) {
                best_cost = cost;
                best_mask = cand_mask;
                best_sign = sign_allowed;
            }
        }
        if (sign_allowed && (occ_cur & 0x80) != 0 &&
            !(sign_bounded && sign_bound >= best_cost)) {
            const double cost = cost_of(mask, false);
            sign_bound = cost;
            sign_bounded = true;
            if (cost < best_cost) {
                best_cost = cost;
                best_mask = mask;
                best_sign = false;
            }
        }
        if (best_mask == mask && best_sign == sign_allowed) {
            panic("bitflip_group: no clearable column but target unmet");
        }
        mask = best_mask;
        sign_allowed = best_sign;
        occ_cur = occ_of(mask, sign_allowed);
    }

    // Materialize once and account the distance in element order (the
    // same double accumulation order as the scalar oracle).
    GroupFlipResult result;
    result.zero_columns = kWordBits - popcount8(occ_cur);
    result.squared_error = 0.0;
    const auto &nearest = nearest_table()[static_cast<std::size_t>(mask)];
    for (std::size_t i = 0; i < group.size(); ++i) {
        const std::int8_t v = group[i];
        const std::int8_t flipped = [&] {
            if (v < 0 && !sign_allowed) {
                return static_cast<std::int8_t>(0);
            }
            const int nm = nearest[static_cast<std::size_t>(
                sm_magnitude(v))];
            return static_cast<std::int8_t>(v < 0 ? -nm : nm);
        }();
        const double d = static_cast<double>(v) -
            static_cast<double>(flipped);
        result.squared_error += d * d;
        group[i] = flipped;
    }
    return result;
}

GroupFlipResult
bitflip_group_scalar(std::span<std::int8_t> group, int target_zero_columns)
{
    if (target_zero_columns < 0 || target_zero_columns > 8) {
        fatal("bitflip_group: target %d out of [0, 8]", target_zero_columns);
    }

    const std::vector<std::int8_t> originals(group.begin(), group.end());
    const std::span<const std::int8_t> orig{originals.data(),
                                            originals.size()};

    // Current configuration: allowed magnitude columns + sign permission.
    int mask = occupancy(orig) & 0x7F;
    bool sign_allowed = (occupancy(orig) & 0x80) != 0;

    auto zero_cols_of = [&] {
        return kWordBits - popcount8(occupancy({group.data(), group.size()}));
    };

    materialize(group, orig, mask, sign_allowed);  // identity initially

    while (zero_cols_of() < target_zero_columns) {
        // Greedy: drop the currently-occupied column whose removal costs
        // the least when re-rounding the ORIGINAL weights. Evaluating
        // against the originals (not the drifted values) keeps the total
        // distance close to the per-group optimum.
        const std::uint8_t occ = occupancy({group.data(), group.size()});
        double best_cost = std::numeric_limits<double>::infinity();
        int best_mask = mask;
        bool best_sign = sign_allowed;

        for (int b = 0; b < kMagnitudeBits; ++b) {
            if (!((occ >> b) & 1)) {
                continue;
            }
            const int cand_mask = mask & ~(1 << b);
            const double cost = config_cost(orig, cand_mask, sign_allowed);
            if (cost < best_cost) {
                best_cost = cost;
                best_mask = cand_mask;
                best_sign = sign_allowed;
            }
        }
        if (sign_allowed && (occ & 0x80) != 0) {
            const double cost = config_cost(orig, mask, false);
            if (cost < best_cost) {
                best_cost = cost;
                best_mask = mask;
                best_sign = false;
            }
        }
        if (best_mask == mask && best_sign == sign_allowed) {
            panic("bitflip_group: no clearable column but target unmet");
        }
        mask = best_mask;
        sign_allowed = best_sign;
        materialize(group, orig, mask, sign_allowed);
    }

    GroupFlipResult result;
    result.zero_columns = zero_cols_of();
    result.squared_error = 0.0;
    for (std::size_t i = 0; i < group.size(); ++i) {
        const double d = static_cast<double>(originals[i]) -
            static_cast<double>(group[i]);
        result.squared_error += d * d;
    }
    return result;
}

GroupFlipResult
bitflip_group_exhaustive(std::span<std::int8_t> group,
                         int target_zero_columns)
{
    if (target_zero_columns < 0 || target_zero_columns > 8) {
        fatal("bitflip_group_exhaustive: target %d out of [0, 8]",
              target_zero_columns);
    }
    const std::vector<std::int8_t> originals(group.begin(), group.end());
    const std::span<const std::int8_t> orig{originals.data(),
                                            originals.size()};

    double best_cost = std::numeric_limits<double>::infinity();
    int best_mask = 0;
    bool best_sign = false;

    for (int mask = 0; mask < 128; ++mask) {
        for (int sign_allowed = 0; sign_allowed <= 1; ++sign_allowed) {
            const int used = popcount8(static_cast<std::uint8_t>(mask)) +
                sign_allowed;
            if (kWordBits - used < target_zero_columns) {
                continue;
            }
            const double cost = config_cost(orig, mask, sign_allowed != 0);
            if (cost < best_cost) {
                best_cost = cost;
                best_mask = mask;
                best_sign = sign_allowed != 0;
            }
        }
    }

    materialize(group, orig, best_mask, best_sign);
    GroupFlipResult result;
    result.zero_columns = kWordBits -
        popcount8(occupancy({group.data(), group.size()}));
    result.squared_error = best_cost;
    return result;
}

Int8Tensor
bitflip_tensor(const Int8Tensor &tensor, int group_size,
               int target_zero_columns)
{
    if (group_size < 1) {
        fatal("bitflip_tensor: group_size must be >= 1");
    }
    Int8Tensor out = tensor;
    const std::int64_t n = out.numel();
    const std::int64_t groups = (n + group_size - 1) / group_size;
    // Groups are independent; large tensors (the LSTM/BERT projections
    // Bit-Flip spends its time on) fan out across cores. Small tensors
    // stay serial — thread startup would dominate.
    const int threads =
        n >= (1 << 18) ? parallel_threads(static_cast<std::size_t>(groups))
                       : 1;
    parallel_for(static_cast<std::size_t>(groups), [&](std::size_t g) {
        const std::int64_t start = static_cast<std::int64_t>(g) * group_size;
        const std::int64_t len =
            std::min<std::int64_t>(group_size, n - start);
        bitflip_group({out.data() + start, static_cast<std::size_t>(len)},
                      target_zero_columns);
    }, threads);
    return out;
}

}  // namespace bitwave
