/**
 * @file
 * Layer-wise Bit-Flip strategy search — Algorithm 1 of the paper.
 *
 * A strategy assigns each layer a (group size, zero-column target) pair.
 * The greedy search starts from an initial strategy, then repeatedly
 * tries incrementing the zero-column target of every (layer, group-size)
 * combination, commits the move that keeps the highest estimated metric,
 * and stops when no move stays above the minimum-accuracy constraint.
 *
 * The search uses the AccuracyProxy as its "Inference(M, D)" oracle
 * (DESIGN.md substitution #2) and caches per-(layer, gs, z) flip results
 * so the O(layers x group-sizes x steps) loop runs in seconds.
 */
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "nn/accuracy.hpp"
#include "nn/workload.hpp"

namespace bitwave {

/// Per-layer flip configuration.
struct LayerFlipConfig
{
    int group_size = 16;   ///< Hardware column size in {8, 16, 32}.
    int zero_columns = 0;  ///< Target zero columns; 0 = leave untouched.

    bool operator==(const LayerFlipConfig &) const = default;
};

/// A full-network strategy: one config per layer.
using FlipStrategy = std::vector<LayerFlipConfig>;

/// One point of the search trajectory (the Fig. 6(e)-(h) Pareto data).
struct ParetoPoint
{
    FlipStrategy strategy;
    double compression_ratio = 1.0;  ///< Weight CR under BCS.
    double metric = 0.0;             ///< Estimated accuracy metric.
};

/// Options for the greedy search.
struct GreedySearchOptions
{
    /// Stop when the best candidate move drops below this metric.
    double min_metric = 0.0;
    /// Upper bound on per-layer zero-column targets (paper uses 7).
    int max_zero_columns = 7;
    /// Group sizes explored per layer (hardware set by default).
    std::vector<int> group_sizes = {8, 16, 32};
};

/**
 * Caches flipped layer tensors, their BCS compression ratios and their
 * proxy errors, and runs Algorithm 1 on top.
 */
class FlipSearch
{
  public:
    /// @p workload and @p proxy are kept by reference.
    FlipSearch(const Workload &workload, const AccuracyProxy &proxy);

    /// Flipped weights of one layer under @p config (cached).
    const Int8Tensor &flipped_layer(std::size_t layer_idx,
                                    LayerFlipConfig config);

    /// Relative output error of one flipped layer (cached).
    double layer_error(std::size_t layer_idx, LayerFlipConfig config);

    /// Whole-network BCS weight compression ratio under @p strategy.
    double strategy_compression_ratio(const FlipStrategy &strategy);

    /// Estimated metric under @p strategy (additive proxy composition).
    double strategy_metric(const FlipStrategy &strategy);

    /**
     * Algorithm 1: greedy search from @p initial, recording a trajectory
     * point after every committed move. The returned vector starts with
     * the initial strategy and is ordered by increasing compression.
     */
    std::vector<ParetoPoint> greedy_search(const FlipStrategy &initial,
                                           const GreedySearchOptions &opts);

    /// An all-layers-untouched strategy sized for the workload.
    FlipStrategy untouched_strategy() const;

    /// Materialize per-layer weight tensors for @p strategy.
    std::vector<Int8Tensor> apply_strategy(const FlipStrategy &strategy);

  private:
    using Key = std::tuple<std::size_t, int, int>;  // layer, gs, z

    const Workload &workload_;
    const AccuracyProxy &proxy_;
    std::map<Key, Int8Tensor> flipped_;
    std::map<Key, double> errors_;
    std::map<Key, double> ratios_;  ///< per-layer CR contribution cache
};

}  // namespace bitwave
