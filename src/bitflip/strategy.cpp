#include "bitflip/strategy.hpp"

#include <limits>

#include "bitflip/bitflip.hpp"
#include "common/logging.hpp"
#include "compress/bcs.hpp"

namespace bitwave {

FlipSearch::FlipSearch(const Workload &workload, const AccuracyProxy &proxy)
    : workload_(workload), proxy_(proxy)
{
    if (&proxy.workload() != &workload) {
        fatal("FlipSearch: proxy was built for a different workload");
    }
}

const Int8Tensor &
FlipSearch::flipped_layer(std::size_t layer_idx, LayerFlipConfig config)
{
    const Key key{layer_idx, config.group_size, config.zero_columns};
    auto it = flipped_.find(key);
    if (it == flipped_.end()) {
        const auto &original = workload_.layers[layer_idx].weights;
        Int8Tensor flipped = config.zero_columns == 0
            ? original
            : bitflip_tensor(original, config.group_size,
                             config.zero_columns);
        it = flipped_.emplace(key, std::move(flipped)).first;
    }
    return it->second;
}

double
FlipSearch::layer_error(std::size_t layer_idx, LayerFlipConfig config)
{
    if (config.zero_columns == 0) {
        return 0.0;
    }
    const Key key{layer_idx, config.group_size, config.zero_columns};
    auto it = errors_.find(key);
    if (it == errors_.end()) {
        const double err = proxy_.layer_rel_error(
            layer_idx, flipped_layer(layer_idx, config));
        it = errors_.emplace(key, err).first;
    }
    return it->second;
}

double
FlipSearch::strategy_compression_ratio(const FlipStrategy &strategy)
{
    if (strategy.size() != workload_.layers.size()) {
        fatal("strategy has %zu entries, workload has %zu layers",
              strategy.size(), workload_.layers.size());
    }
    std::int64_t original_bits = 0;
    double compressed_bits = 0.0;
    for (std::size_t l = 0; l < strategy.size(); ++l) {
        const auto &cfg = strategy[l];
        const Key key{l, cfg.group_size, cfg.zero_columns};
        auto it = ratios_.find(key);
        if (it == ratios_.end()) {
            // Size accounting only — bit-identical to materializing the
            // compression, at a fraction of the cost.
            const auto measured = bcs_measure(
                flipped_layer(l, cfg), cfg.group_size,
                Representation::kSignMagnitude);
            it = ratios_
                     .emplace(key, static_cast<double>(
                                       measured.compressed_bits()))
                     .first;
        }
        original_bits += workload_.layers[l].weights.numel() * 8;
        compressed_bits += it->second;
    }
    return compressed_bits > 0
        ? static_cast<double>(original_bits) / compressed_bits : 1.0;
}

double
FlipSearch::strategy_metric(const FlipStrategy &strategy)
{
    if (strategy.size() != workload_.layers.size()) {
        fatal("strategy has %zu entries, workload has %zu layers",
              strategy.size(), workload_.layers.size());
    }
    double weighted = 0.0;
    for (std::size_t l = 0; l < strategy.size(); ++l) {
        if (strategy[l].zero_columns == 0) {
            continue;
        }
        weighted += proxy_.depth_weight(l) * layer_error(l, strategy[l]);
    }
    return workload_.base_metric - workload_.error_sensitivity * weighted;
}

FlipStrategy
FlipSearch::untouched_strategy() const
{
    return FlipStrategy(workload_.layers.size(), LayerFlipConfig{});
}

std::vector<Int8Tensor>
FlipSearch::apply_strategy(const FlipStrategy &strategy)
{
    std::vector<Int8Tensor> out;
    out.reserve(strategy.size());
    for (std::size_t l = 0; l < strategy.size(); ++l) {
        out.push_back(flipped_layer(l, strategy[l]));
    }
    return out;
}

std::vector<ParetoPoint>
FlipSearch::greedy_search(const FlipStrategy &initial,
                          const GreedySearchOptions &opts)
{
    FlipStrategy strategy = initial;
    if (strategy.size() != workload_.layers.size()) {
        fatal("greedy_search: initial strategy arity mismatch");
    }

    std::vector<ParetoPoint> trajectory;
    trajectory.push_back({strategy, strategy_compression_ratio(strategy),
                          strategy_metric(strategy)});

    while (true) {
        // Algorithm 1 inner loops: best single-increment move.
        double best_metric = -std::numeric_limits<double>::infinity();
        std::size_t best_layer = 0;
        LayerFlipConfig best_cfg;
        bool found = false;

        for (std::size_t l = 0; l < strategy.size(); ++l) {
            for (int gs : opts.group_sizes) {
                const int z = strategy[l].zero_columns;
                if (z + 1 > opts.max_zero_columns) {
                    continue;
                }
                FlipStrategy tmp = strategy;
                tmp[l] = LayerFlipConfig{gs, z + 1};
                const double metric = strategy_metric(tmp);
                if (metric > best_metric) {
                    best_metric = metric;
                    best_layer = l;
                    best_cfg = tmp[l];
                    found = true;
                }
            }
        }

        if (!found || best_metric < opts.min_metric) {
            break;  // "if bacc <= macc: Break"
        }
        strategy[best_layer] = best_cfg;
        trajectory.push_back({strategy,
                              strategy_compression_ratio(strategy),
                              best_metric});
    }
    return trajectory;
}

}  // namespace bitwave
