#include "sparsity/bitcolumn.hpp"

#include "common/bits.hpp"

namespace bitwave {

namespace {

std::uint8_t
encode(std::int8_t value, Representation repr)
{
    return repr == Representation::kTwosComplement
        ? static_cast<std::uint8_t>(value) : to_sign_magnitude(value);
}

}  // namespace

std::uint8_t
column_index(std::span<const std::int8_t> group, Representation repr)
{
    std::uint8_t mask = 0;
    for (std::int8_t v : group) {
        mask |= encode(v, repr);
    }
    return mask;
}

int
zero_column_count(std::span<const std::int8_t> group, Representation repr)
{
    return kWordBits - popcount8(column_index(group, repr));
}

double
BitColumnStats::column_sparsity() const
{
    return columns > 0
        ? static_cast<double>(zero_columns) / static_cast<double>(columns)
        : 0.0;
}

double
BitColumnStats::mean_nonzero_columns() const
{
    return groups > 0
        ? static_cast<double>(columns - zero_columns) /
              static_cast<double>(groups)
        : 0.0;
}

void
BitColumnStats::merge(const BitColumnStats &other)
{
    groups += other.groups;
    columns += other.columns;
    zero_columns += other.zero_columns;
    for (int k = 0; k <= kWordBits; ++k) {
        zero_column_hist[k] += other.zero_column_hist[k];
    }
}

BitColumnStats
analyze_bit_columns_scalar(const Int8Tensor &tensor, int group_size,
                           Representation repr)
{
    if (group_size < 1) {
        fatal("analyze_bit_columns: group_size must be >= 1, got %d",
              group_size);
    }
    BitColumnStats stats;
    stats.group_size = group_size;
    stats.repr = repr;

    const std::int64_t n = tensor.numel();
    for (std::int64_t start = 0; start < n; start += group_size) {
        const std::int64_t len = std::min<std::int64_t>(group_size, n - start);
        // The tail group is implicitly zero-padded: padding contributes no
        // 1 bits, so the index over the real elements is already correct.
        const std::uint8_t idx = column_index(
            std::span<const std::int8_t>(tensor.data() + start,
                                         static_cast<std::size_t>(len)),
            repr);
        const int zeros = kWordBits - popcount8(idx);
        ++stats.groups;
        stats.columns += kWordBits;
        stats.zero_columns += zeros;
        ++stats.zero_column_hist[zeros];
    }
    return stats;
}

BitColumnStats
analyze_bit_columns(const BitPlanes &planes, int group_size)
{
    if (group_size < 1) {
        fatal("analyze_bit_columns: group_size must be >= 1, got %d",
              group_size);
    }
    BitColumnStats stats;
    stats.group_size = group_size;
    stats.repr = planes.repr;
    if (planes.n == 0) {
        return stats;
    }
    if (group_size <= 64) {
        // Fused word-parallel histogram — no intermediate mask buffer.
        scan_zero_column_histogram(planes, planes.n, group_size,
                                   stats.zero_column_hist);
    } else {
        // Oversized groups (> one word): OR the word-level masks of the
        // covered range. Rare (the hardware set tops out at 64).
        for (std::int64_t start = 0; start < planes.n;
             start += group_size) {
            const std::int64_t len =
                std::min<std::int64_t>(group_size, planes.n - start);
            std::uint8_t mask = 0;
            for (std::int64_t c = 0; c < len; c += 64) {
                mask |= planes.group_index(
                    start + c,
                    static_cast<int>(std::min<std::int64_t>(64, len - c)));
            }
            ++stats.zero_column_hist[kWordBits - popcount8(mask)];
        }
    }
    for (int zeros = 0; zeros <= kWordBits; ++zeros) {
        const std::int64_t groups = stats.zero_column_hist[zeros];
        stats.groups += groups;
        stats.columns += groups * kWordBits;
        stats.zero_columns += groups * zeros;
    }
    return stats;
}

BitColumnStats
analyze_bit_columns(const Int8Tensor &tensor, int group_size,
                    Representation repr)
{
    return analyze_bit_columns(pack_bitplanes(tensor, repr), group_size);
}

std::vector<std::uint8_t>
column_indexes(const BitPlanes &planes, int group_size)
{
    if (group_size < 1 || group_size > 64) {
        fatal("column_indexes: group_size must be in [1, 64], got %d",
              group_size);
    }
    std::vector<std::uint8_t> out(static_cast<std::size_t>(
        scan_group_count(planes.n, std::max<std::int64_t>(planes.n, 1),
                         group_size)));
    scan_group_indexes(planes, std::max<std::int64_t>(planes.n, 1),
                       group_size, out.data());
    return out;
}

std::vector<std::uint8_t>
column_indexes(const Int8Tensor &tensor, int group_size, Representation repr)
{
    if (group_size < 1) {
        fatal("column_indexes: group_size must be >= 1, got %d", group_size);
    }
    if (group_size > 64) {
        // Wide groups fall back to the scalar walk (no hardware uses
        // them; kept for API completeness).
        std::vector<std::uint8_t> out;
        const std::int64_t n = tensor.numel();
        out.reserve(static_cast<std::size_t>(ceil_div(n, group_size)));
        for (std::int64_t start = 0; start < n; start += group_size) {
            const std::int64_t len =
                std::min<std::int64_t>(group_size, n - start);
            out.push_back(column_index(
                std::span<const std::int8_t>(tensor.data() + start,
                                             static_cast<std::size_t>(len)),
                repr));
        }
        return out;
    }
    return column_indexes(pack_bitplanes(tensor, repr), group_size);
}

std::uint64_t
column_bits(std::span<const std::int8_t> group, int column,
            Representation repr)
{
    if (column < 0 || column >= kWordBits) {
        fatal("column_bits: column %d out of range", column);
    }
    if (group.size() > 64) {
        fatal("column_bits: group size %zu exceeds 64", group.size());
    }
    std::uint64_t bits = 0;
    for (std::size_t j = 0; j < group.size(); ++j) {
        if (test_bit(encode(group[j], repr), column)) {
            bits |= 1ULL << j;
        }
    }
    return bits;
}

}  // namespace bitwave
