/**
 * @file
 * Word- and bit-level sparsity statistics for quantized tensors.
 *
 * These statistics drive the paper's Fig. 1 (value sparsity vs. bit
 * sparsity in two's-complement and sign-magnitude form, and the sparsity
 * ratio SR between them) and feed the analytical accelerator models
 * (STEP2 of Section V-B).
 */
#pragma once

#include <cstdint>

#include "common/bits.hpp"  // Representation lives with the bit utilities
#include "tensor/bitplane.hpp"
#include "tensor/tensor.hpp"

namespace bitwave {

/// Aggregate sparsity statistics of one tensor.
struct SparsityStats
{
    std::int64_t words = 0;       ///< Total operand words.
    std::int64_t zero_words = 0;  ///< Words equal to zero.
    std::int64_t bits = 0;        ///< Total bits (= 8 * words).
    std::int64_t zero_bits_2c = 0;  ///< Zero bits in two's complement.
    std::int64_t zero_bits_sm = 0;  ///< Zero bits in sign-magnitude.

    /// Fraction of zero-valued words.
    double value_sparsity() const;
    /// Fraction of zero bits in the requested representation.
    double bit_sparsity(Representation repr) const;
    /**
     * Sparsity ratio SR = bit sparsity / value sparsity (Fig. 1), i.e. the
     * headroom bit-level skipping has over value skipping. Returns +inf
     * when the tensor has no zero words but some zero bits.
     */
    double sparsity_ratio(Representation repr) const;

    /// Merge the counts of @p other into this (for whole-network stats).
    void merge(const SparsityStats &other);
};

/// Compute sparsity statistics over all elements of @p tensor.
SparsityStats compute_sparsity(const Int8Tensor &tensor);

/**
 * Word-parallel sparsity statistics from pre-packed bit planes of the
 * SAME tensor in both representations: zero words fall out of an OR
 * across planes, zero bits out of plane popcounts. Bit-identical to
 * compute_sparsity() on the source tensor.
 */
SparsityStats compute_sparsity(const BitPlanes &planes_2c,
                               const BitPlanes &planes_sm);

}  // namespace bitwave
