/**
 * @file
 * Bit-column sparsity (BCS) analysis — Section III-A/B of the paper.
 *
 * BCS groups G consecutive weights (along the input-channel dimension in
 * the BitWave dataflow) and inspects their binary encodings column-wise:
 * bit position b forms a *zero column* when bit b is zero in every word of
 * the group. Zero columns can be skipped by the bit-column-serial datapath
 * and elided from storage by the BCS compressor.
 *
 * The column index of a group is an 8-bit mask with bit b set when column
 * b is NON-zero (the convention of the Zero-Column Index Parser, Fig. 7:
 * "1" columns must be streamed, "0" columns are skipped).
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparsity/stats.hpp"
#include "tensor/bitplane.hpp"
#include "tensor/tensor.hpp"

namespace bitwave {

/// Group sizes the BitWave hardware supports layer-wise (Section III-C).
inline constexpr int kHardwareGroupSizes[] = {8, 16, 32};

/**
 * Compute the non-zero-column index of one weight group.
 *
 * @param group Weight words (any size >= 1).
 * @param repr  Binary representation to analyze.
 * @return 8-bit mask; bit b set means column b holds at least one 1.
 */
std::uint8_t column_index(std::span<const std::int8_t> group,
                          Representation repr);

/// Number of zero columns (out of 8) for one group.
int zero_column_count(std::span<const std::int8_t> group,
                      Representation repr);

/// Aggregate bit-column sparsity statistics of a tensor.
struct BitColumnStats
{
    int group_size = 0;
    Representation repr = Representation::kSignMagnitude;
    std::int64_t groups = 0;        ///< Number of groups analyzed.
    std::int64_t columns = 0;       ///< Total columns (= 8 * groups).
    std::int64_t zero_columns = 0;  ///< Columns that are all-zero.
    /// Histogram: count of groups having exactly k zero columns, k in 0..8.
    std::int64_t zero_column_hist[9] = {};

    /// Fraction of all-zero columns — the paper's "bit column sparsity".
    double column_sparsity() const;
    /// Mean number of non-zero columns per group (compute cycles/group).
    double mean_nonzero_columns() const;
    /// Merge the counts of @p other into this.
    void merge(const BitColumnStats &other);
};

/**
 * Analyze bit-column sparsity of @p tensor with groups of @p group_size
 * consecutive elements in memory order.
 *
 * For weight tensors in [K, C, FY, FX] layout this groups along the
 * innermost dims; the BitWave dataflow groups along C, which callers
 * arrange by passing weights in [K, FY, FX, C] order when layout matters.
 * A final partial group is padded with zeros (padding cannot destroy a
 * zero column, and the hardware pads the same way).
 *
 * The tensor overload packs bit planes internally and runs the
 * word-parallel kernel; pass pre-packed planes to amortize the pack
 * across kernels ("pack once, popcount everywhere").
 */
BitColumnStats analyze_bit_columns(const Int8Tensor &tensor, int group_size,
                                   Representation repr);
BitColumnStats analyze_bit_columns(const BitPlanes &planes, int group_size);

/// Element-at-a-time oracle for the packed kernel (tests and the
/// micro-kernel bench); bit-identical to analyze_bit_columns().
BitColumnStats analyze_bit_columns_scalar(const Int8Tensor &tensor,
                                          int group_size,
                                          Representation repr);

/**
 * Per-group column indexes for @p tensor (one uint8 per group, in order).
 * This is exactly the index stream the ZCIP consumes.
 */
std::vector<std::uint8_t> column_indexes(const Int8Tensor &tensor,
                                         int group_size, Representation repr);
std::vector<std::uint8_t> column_indexes(const BitPlanes &planes,
                                         int group_size);

/**
 * Bit-plane view of a group: column b (0..7) as a G-bit vector packed into
 * a uint64 (weight j at bit j). Requires group.size() <= 64. This is the
 * data layout the BitWave compute engine streams: one bit column per cycle.
 */
std::uint64_t column_bits(std::span<const std::int8_t> group, int column,
                          Representation repr);

}  // namespace bitwave
