#include "sparsity/stats.hpp"

#include <bit>
#include <limits>

#include "common/bits.hpp"
#include "common/logging.hpp"

namespace bitwave {

double
SparsityStats::value_sparsity() const
{
    return words > 0
        ? static_cast<double>(zero_words) / static_cast<double>(words) : 0.0;
}

double
SparsityStats::bit_sparsity(Representation repr) const
{
    if (bits == 0) {
        return 0.0;
    }
    const std::int64_t zeros = repr == Representation::kTwosComplement
        ? zero_bits_2c : zero_bits_sm;
    return static_cast<double>(zeros) / static_cast<double>(bits);
}

double
SparsityStats::sparsity_ratio(Representation repr) const
{
    const double vs = value_sparsity();
    const double bs = bit_sparsity(repr);
    if (vs <= 0.0) {
        return bs > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
    }
    return bs / vs;
}

void
SparsityStats::merge(const SparsityStats &other)
{
    words += other.words;
    zero_words += other.zero_words;
    bits += other.bits;
    zero_bits_2c += other.zero_bits_2c;
    zero_bits_sm += other.zero_bits_sm;
}

SparsityStats
compute_sparsity(const BitPlanes &planes_2c, const BitPlanes &planes_sm)
{
    if (planes_2c.repr != Representation::kTwosComplement ||
        planes_sm.repr != Representation::kSignMagnitude ||
        planes_2c.n != planes_sm.n) {
        fatal("compute_sparsity: planes must be (2C, SM) of one tensor");
    }
    SparsityStats stats;
    stats.words = planes_2c.n;
    stats.bits = planes_2c.n * kWordBits;

    std::int64_t set_2c = 0, set_sm = 0, nonzero_words = 0;
    for (std::int64_t w = 0; w < planes_2c.words; ++w) {
        std::uint64_t any = 0;
        for (int b = 0; b < kWordBits; ++b) {
            const std::uint64_t p2c = planes_2c.plane(b)[w];
            any |= p2c;
            set_2c += std::popcount(p2c);
            set_sm += std::popcount(planes_sm.plane(b)[w]);
        }
        // Padding lanes are zero in every plane, so they never count as
        // set bits and never mark a word non-zero.
        nonzero_words += std::popcount(any);
    }
    stats.zero_words = planes_2c.n - nonzero_words;
    stats.zero_bits_2c = stats.bits - set_2c;
    stats.zero_bits_sm = stats.bits - set_sm;
    return stats;
}

SparsityStats
compute_sparsity(const Int8Tensor &tensor)
{
    SparsityStats stats;
    stats.words = tensor.numel();
    stats.bits = tensor.numel() * kWordBits;
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
        const std::int8_t v = tensor[i];
        if (v == 0) {
            ++stats.zero_words;
        }
        stats.zero_bits_2c += kWordBits - bit_count_twos_complement(v);
        stats.zero_bits_sm += kWordBits - bit_count_sign_magnitude(v);
    }
    return stats;
}

}  // namespace bitwave
