#include "sparsity/stats.hpp"

#include <limits>

#include "common/bits.hpp"

namespace bitwave {

const char *
representation_name(Representation repr)
{
    return repr == Representation::kTwosComplement ? "2C" : "SM";
}

double
SparsityStats::value_sparsity() const
{
    return words > 0
        ? static_cast<double>(zero_words) / static_cast<double>(words) : 0.0;
}

double
SparsityStats::bit_sparsity(Representation repr) const
{
    if (bits == 0) {
        return 0.0;
    }
    const std::int64_t zeros = repr == Representation::kTwosComplement
        ? zero_bits_2c : zero_bits_sm;
    return static_cast<double>(zeros) / static_cast<double>(bits);
}

double
SparsityStats::sparsity_ratio(Representation repr) const
{
    const double vs = value_sparsity();
    const double bs = bit_sparsity(repr);
    if (vs <= 0.0) {
        return bs > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
    }
    return bs / vs;
}

void
SparsityStats::merge(const SparsityStats &other)
{
    words += other.words;
    zero_words += other.zero_words;
    bits += other.bits;
    zero_bits_2c += other.zero_bits_2c;
    zero_bits_sm += other.zero_bits_sm;
}

SparsityStats
compute_sparsity(const Int8Tensor &tensor)
{
    SparsityStats stats;
    stats.words = tensor.numel();
    stats.bits = tensor.numel() * kWordBits;
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
        const std::int8_t v = tensor[i];
        if (v == 0) {
            ++stats.zero_words;
        }
        stats.zero_bits_2c += kWordBits - bit_count_twos_complement(v);
        stats.zero_bits_sm += kWordBits - bit_count_sign_magnitude(v);
    }
    return stats;
}

}  // namespace bitwave
