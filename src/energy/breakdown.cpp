#include "energy/breakdown.hpp"

#include "common/logging.hpp"

namespace bitwave {

namespace {

// Per-BCE constants beyond the bare SMM slice of Table IV: partial-sum
// accumulator, single-shift stage and output register (Fig. 8 steps 3-5).
constexpr double kBceAccumAreaUm2 = 425.6;
constexpr double kBceAccumPowerMw = 0.0026;

// Flexible data dispatcher: per-BCE input casting registers (Section V-D
// attributes 10.8 % area / 24.4 % power to it).
constexpr double kDispatcherAreaPerBceUm2 = 240.0;
constexpr double kDispatcherPowerPerBceMw = 0.008369;

// ZCIP: one 8b-wide parser slice (Fig. 7) per 8 index bits.
constexpr double kZcipAreaPerParserUm2 = 330.0;
constexpr double kZcipPowerPerParserMw = 0.0047;

// Act./W. fetcher and the top controller (instruction memory included).
constexpr double kFetcherAreaUm2 = 34000.0;
constexpr double kFetcherPowerMw = 0.40;
constexpr double kControllerAreaUm2 = 22000.0;
constexpr double kControllerPowerMw = 0.32;

// SRAM dynamic+leakage power per KB at the ResNet18 operating point.
constexpr double kSramPowerPerKbMw = 0.00352;

}  // namespace

double
ChipBudget::total_area_mm2() const
{
    double a = 0.0;
    for (const auto &c : components) {
        a += c.area_mm2();
    }
    return a;
}

double
ChipBudget::total_power_mw() const
{
    double p = 0.0;
    for (const auto &c : components) {
        p += c.power_mw;
    }
    return p;
}

const ComponentBudget &
ChipBudget::component(const std::string &name) const
{
    for (const auto &c : components) {
        if (c.name == name) {
            return c;
        }
    }
    fatal("ChipBudget: no component named %s", name.c_str());
}

double
ChipBudget::area_share(const std::string &name) const
{
    return component(name).area_mm2() / total_area_mm2();
}

double
ChipBudget::power_share(const std::string &name) const
{
    return component(name).power_mw / total_power_mw();
}

ChipBudget
bitwave_chip_budget(const TechParams &tech, const BitWaveConfig &config,
                    double pe_activity)
{
    ChipBudget budget;
    const double n_bce = static_cast<double>(config.bce_count);
    const double sram_bytes = static_cast<double>(
        config.weight_sram_bytes + config.act_sram_bytes);

    budget.components.push_back(
        {"PE array",
         n_bce * (tech.a_pe_bit_column_um2 + kBceAccumAreaUm2),
         n_bce * (tech.p_pe_bit_column_mw + kBceAccumPowerMw) *
             pe_activity});
    budget.components.push_back(
        {"SRAM", sram_bytes * tech.a_sram_per_byte_um2,
         sram_bytes / 1024.0 * kSramPowerPerKbMw});
    budget.components.push_back(
        {"Data dispatcher", n_bce * kDispatcherAreaPerBceUm2,
         n_bce * kDispatcherPowerPerBceMw * pe_activity});
    budget.components.push_back(
        {"ZCIP",
         static_cast<double>(config.zcip_parsers) * kZcipAreaPerParserUm2,
         static_cast<double>(config.zcip_parsers) * kZcipPowerPerParserMw *
             pe_activity});
    budget.components.push_back(
        {"Fetcher", kFetcherAreaUm2, kFetcherPowerMw});
    budget.components.push_back(
        {"Controller", kControllerAreaUm2, kControllerPowerMw});
    return budget;
}

}  // namespace bitwave
