/**
 * @file
 * BitWave chip area/power budget — the Fig. 18 breakdown and the totals
 * of Section V-D (1.138 mm^2, 17.56 mW at 250 MHz on ResNet18), composed
 * bottom-up from per-component unit constants.
 */
#pragma once

#include <string>
#include <vector>

#include "energy/tech.hpp"

namespace bitwave {

/// One architectural component's silicon budget.
struct ComponentBudget
{
    std::string name;
    double area_um2 = 0.0;
    double power_mw = 0.0;

    double area_mm2() const { return area_um2 * 1e-6; }
};

/// Whole-chip budget with helpers for breakdown shares.
struct ChipBudget
{
    std::vector<ComponentBudget> components;

    double total_area_mm2() const;
    double total_power_mw() const;
    /// Share of total area held by component @p name (0..1).
    double area_share(const std::string &name) const;
    /// Share of total power held by component @p name (0..1).
    double power_share(const std::string &name) const;
    const ComponentBudget &component(const std::string &name) const;
};

/// Structural parameters of the BitWave instance (Section V-A).
struct BitWaveConfig
{
    int bce_count = 512;           ///< 512 BCEs = 4096 1bx8b SMMs.
    int zcip_parsers = 128;        ///< 1024 index bits in parallel.
    std::int64_t weight_sram_bytes = 256 * 1024;
    std::int64_t act_sram_bytes = 256 * 1024;
};

/**
 * Compose the BitWave chip budget.
 *
 * @param pe_activity Average fraction of cycles the PE array toggles
 *        (1.0 reproduces the paper's ResNet18 operating point).
 */
ChipBudget bitwave_chip_budget(const TechParams &tech,
                               const BitWaveConfig &config = {},
                               double pe_activity = 1.0);

}  // namespace bitwave
