/**
 * @file
 * DDR3 DRAM energy/bandwidth model — stand-in for the DRAMPower tool the
 * paper uses (DESIGN.md substitution #3). Energy is charged per bit moved
 * plus a per-burst activation overhead; bandwidth limits the transfer
 * cycle count the latency model (Eq. 5) sees.
 */
#pragma once

#include <cstdint>

namespace bitwave {

/// DDR3-1600-class channel parameters.
struct DramModel
{
    double energy_per_bit_pj = 20.0;  ///< Access + I/O energy.
    double activate_energy_per_burst_pj = 120.0;
    std::int64_t burst_bits = 512;    ///< 64B burst.
    std::int64_t bits_per_accel_cycle = 64;  ///< Effective BW at 250 MHz.

    /// Energy to move @p bits (reads and writes priced identically).
    double transfer_energy_pj(double bits) const;

    /// Accelerator cycles the transfer of @p bits occupies the channel.
    double transfer_cycles(double bits) const;
};

/// Default DDR3 model used across the benches.
const DramModel &default_dram();

}  // namespace bitwave
