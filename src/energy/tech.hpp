/**
 * @file
 * 16 nm technology calibration (DESIGN.md substitution #3).
 *
 * The paper derives unit energies/areas from Synopsys DC synthesis in a
 * 16 nm FinFET node and DRAM energy from DRAMPower's DDR3 model. We encode
 * the published component-level results (Table IV PE figures, the 250 MHz
 * / 0.8 V operating point, Fig. 18 breakdown shares) as per-unit constants
 * and compose every system-level number bottom-up from them.
 */
#pragma once

#include <cstdint>

namespace bitwave {

/// Energy and area unit costs of the modeled 16 nm node.
struct TechParams
{
    // --- Operating point -------------------------------------------------
    double frequency_hz = 250e6;  ///< BitWave clock (Section V-A).
    double voltage = 0.8;

    // --- MAC energies, pJ per 8b x 8b MAC-equivalent ----------------------
    // Derived from Table IV power at 250 MHz: P / f.
    // One 8x8 bit-parallel PE: 2.13e-2 mW -> 0.0852 pJ/MAC.
    double e_mac_bit_parallel_pj = 0.0852;
    // Eight 1x8 bit-serial PEs produce one 8x8 MAC per cycle:
    // 5.71e-2 mW -> 0.2284 pJ/MAC-equivalent.
    double e_mac_bit_serial_pj = 0.2284;
    // Eight 1x8 bit-column-serial PEs (one BCE slice): 1.71e-2 mW
    // -> 0.0684 pJ/MAC-equivalent (the add-then-shift saving).
    double e_mac_bit_column_pj = 0.0684;

    // --- Memory energies --------------------------------------------------
    double e_sram_read_per_bit_pj = 0.04;    ///< 256 KB macro + H-tree.
    double e_sram_write_per_bit_pj = 0.045;
    double e_reg_per_word_pj = 0.006;        ///< Operand register access.
    double e_dram_per_bit_pj = 6.0;          ///< DDR3L/LPDDR3 class.
    /// Small banked accumulator SRAM next to the PEs (SCNN's crossbar-fed
    /// banks): short bit lines, no H-tree — ~5x cheaper than the 256 KB
    /// macro per bit.
    double e_accbank_per_bit_pj = 0.010;
    /// Sparse codec (ZRE/CSR class) encode/decode logic per 8b word
    /// crossing the compressed boundary.
    double e_codec_per_word_pj = 0.03;
    /// Clock tree + leakage charged per active cycle (17.56 mW class
    /// chip at 250 MHz carries a few mW of non-datapath power).
    double e_static_per_cycle_pj = 14.0;

    // --- Areas, um^2 ------------------------------------------------------
    // Table IV PE areas.
    double a_pe_bit_parallel_um2 = 98.029;
    double a_pe_bit_serial_um2 = 443.284;
    double a_pe_bit_column_um2 = 123.431;
    // SRAM macro density: 512 KB occupying 55.08 % of 1.138 mm^2.
    double a_sram_per_byte_um2 = 1.196;

    // --- Table IV PE powers, mW (for the PE-comparison bench) -------------
    double p_pe_bit_parallel_mw = 2.13e-2;
    double p_pe_bit_serial_mw = 5.71e-2;
    double p_pe_bit_column_mw = 1.71e-2;
};

/// The default calibration used across the repository.
const TechParams &default_tech();

/**
 * Scaling helper for the Table III cross-technology comparison: scale an
 * energy-efficiency figure from @p from_nm to @p to_nm using the standard
 * first-order rule (efficiency ~ 1/node, area ~ node^2).
 */
double scale_efficiency(double tops_per_w, double from_nm, double to_nm);

/// Area scaling companion to scale_efficiency.
double scale_area(double mm2, double from_nm, double to_nm);

}  // namespace bitwave
