#include "energy/dram.hpp"

#include <cmath>

namespace bitwave {

double
DramModel::transfer_energy_pj(double bits) const
{
    const double bursts = std::ceil(bits / static_cast<double>(burst_bits));
    return bits * energy_per_bit_pj + bursts * activate_energy_per_burst_pj;
}

double
DramModel::transfer_cycles(double bits) const
{
    return bits / static_cast<double>(bits_per_accel_cycle);
}

const DramModel &
default_dram()
{
    static const DramModel model;
    return model;
}

}  // namespace bitwave
