#include "energy/pricing.hpp"

#include <algorithm>

namespace bitwave {

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &other)
{
    mac_pj += other.mac_pj;
    sram_pj += other.sram_pj;
    reg_pj += other.reg_pj;
    dram_pj += other.dram_pj;
    static_pj += other.static_pj;
    total_pj += other.total_pj;
    return *this;
}

EnergyBreakdown
price_energy(const EnergyActivity &activity, const TechParams &tech,
             const DramModel &dram)
{
    EnergyBreakdown e;
    // Datapath energy: effective MAC work plus the baseline-only churn
    // terms (crossbar-conflict arbitration, per-lane serial overhead).
    // Both extra terms are exactly 0.0 for BitWave activities, so the
    // BitWave numbers are bit-identical to the pre-recalibration model.
    e.mac_pj = activity.mac_units * activity.e_mac_pj +
        activity.crossbar_replays * activity.e_crossbar_pj +
        activity.lane_overhead_cycles * activity.e_lane_overhead_pj;
    e.sram_pj = activity.sram_read_bits * tech.e_sram_read_per_bit_pj +
        activity.sram_write_bits * tech.e_sram_write_per_bit_pj +
        activity.accbank_bits * tech.e_accbank_per_bit_pj +
        activity.codec_words * tech.e_codec_per_word_pj;
    e.reg_pj = activity.reg_words * tech.e_reg_per_word_pj;
    e.dram_pj = dram.transfer_energy_pj(activity.dram_bits);
    e.static_pj = activity.cycles * tech.e_static_per_cycle_pj;
    e.total_pj = e.mac_pj + e.sram_pj + e.reg_pj + e.dram_pj + e.static_pj;
    return e;
}

double
compose_latency(const LatencyParts &parts)
{
    return parts.dram_cycles + parts.output_write_cycles +
        std::max({parts.compute_cycles, parts.weight_fetch_cycles,
                  parts.act_fetch_cycles});
}

}  // namespace bitwave
