#include "energy/tech.hpp"

namespace bitwave {

const TechParams &
default_tech()
{
    static const TechParams params;
    return params;
}

double
scale_efficiency(double tops_per_w, double from_nm, double to_nm)
{
    // First-order: switching energy scales ~linearly with the node, so
    // TOPS/W scales inversely.
    return tops_per_w * (from_nm / to_nm);
}

double
scale_area(double mm2, double from_nm, double to_nm)
{
    const double s = to_nm / from_nm;
    return mm2 * s * s;
}

}  // namespace bitwave
