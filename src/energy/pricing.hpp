/**
 * @file
 * Shared energy pricing and latency composition — the Eq. (4) energy
 * assembly and Eq. (5) latency overlap used by BOTH the analytical
 * accelerator model and the cycle-level NPU simulator.
 *
 * Centralizing the pricing here guarantees the two independent
 * implementations cannot drift in *how* activity is converted to
 * energy/latency; they may only differ in the activity counts they
 * derive, which is exactly what the sim-vs-model validation checks.
 */
#pragma once

#include "energy/dram.hpp"
#include "energy/tech.hpp"

namespace bitwave {

/// Raw activity of one layer's execution, ready for pricing.
struct EnergyActivity
{
    double mac_units = 0.0;  ///< Effective 8bx8b MAC-equivalents.
    double e_mac_pj = 0.0;   ///< pJ per MAC-equivalent (compute-style unit).
    double sram_read_bits = 0.0;
    double sram_write_bits = 0.0;
    double reg_words = 0.0;  ///< Operand register reads + writes.
    double dram_bits = 0.0;
    double cycles = 0.0;     ///< Runtime carrying static/clock-tree power.

    // --- Baseline-machine activity (zero on BitWave configurations) ----
    /// Accumulator-bank RMW traffic (SCNN's crossbar-fed partial-sum
    /// banks), priced at TechParams::e_accbank_per_bit_pj into sram_pj.
    double accbank_bits = 0.0;
    /// Sparse-codec encode/decode words (ZRE/CSR class), priced at
    /// TechParams::e_codec_per_word_pj into sram_pj.
    double codec_words = 0.0;
    /// Products replayed through the planar output crossbar on
    /// token-starved matmul tiles (SCNN): each replay re-arbitrates the
    /// full OXu x OYu port set. Priced per replay by e_crossbar_pj into
    /// mac_pj — like e_mac_pj, a machine-calibrated unit carried with
    /// the activity.
    double crossbar_replays = 0.0;
    double e_crossbar_pj = 0.0;
    /// Per-lane per-compute-cycle datapath overhead (bit-serial shift
    /// registers, lane sync, online bit scheduling), priced by
    /// e_lane_overhead_pj into mac_pj.
    double lane_overhead_cycles = 0.0;
    double e_lane_overhead_pj = 0.0;
};

/// Eq. (4) energy components, pJ.
struct EnergyBreakdown
{
    double mac_pj = 0.0;
    double sram_pj = 0.0;
    double reg_pj = 0.0;
    double dram_pj = 0.0;
    double static_pj = 0.0;
    double total_pj = 0.0;

    EnergyBreakdown &operator+=(const EnergyBreakdown &other);
};

/// Price @p activity with the technology and DRAM models (Eq. 4).
EnergyBreakdown price_energy(const EnergyActivity &activity,
                             const TechParams &tech, const DramModel &dram);

/// Cycle components of one layer's execution, ready for composition.
struct LatencyParts
{
    double compute_cycles = 0.0;
    double weight_fetch_cycles = 0.0;  ///< SRAM weight port occupancy.
    double act_fetch_cycles = 0.0;     ///< SRAM activation port occupancy.
    double dram_cycles = 0.0;          ///< Off-chip channel occupancy.
    double output_write_cycles = 0.0;
};

/**
 * Eq. (5): DRAM transfers and the output drain serialize; weight fetch,
 * activation fetch and compute overlap behind double buffering, so the
 * slowest of the three paces the layer.
 */
double compose_latency(const LatencyParts &parts);

}  // namespace bitwave
