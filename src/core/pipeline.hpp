/**
 * @file
 * Public facade: the end-to-end BitWave deployment pipeline a downstream
 * user calls — compress (sign-magnitude BCS), optionally Bit-Flip under an
 * accuracy budget, map every layer onto the Table I dataflows, and model
 * performance/energy against the dense baseline.
 *
 * Everything here is a thin composition of the lower layers (sparsity,
 * compress, bitflip, dataflow, model); all knobs of the full API remain
 * reachable for advanced use.
 */
#pragma once

#include <string>
#include <vector>

#include "bitflip/strategy.hpp"
#include "model/performance.hpp"
#include "nn/workloads.hpp"

namespace bitwave {

/// Options of the deployment pipeline.
struct PipelineOptions
{
    /// Apply Bit-Flip before deployment.
    bool use_bitflip = false;
    /// Metric budget for the Bit-Flip greedy search, in metric units
    /// (e.g. 0.5 = accept up to 0.5 points of top-1/F1/PESQ loss).
    double max_metric_drop = 0.5;
    /// Group sizes the search may pick per layer.
    std::vector<int> group_sizes = {8, 16, 32};
    /// Worker threads for the BitWave-vs-dense scenario evaluation
    /// (0 = hardware concurrency).
    int threads = 0;
};

/// Per-layer summary of the deployed network.
struct PipelineLayerReport
{
    std::string name;
    std::string su;                   ///< Selected dataflow.
    double utilization = 0.0;
    double compression_ratio = 1.0;   ///< BCS weight CR.
    double mean_nonzero_columns = 8.0;
    double speedup_vs_dense = 1.0;
};

/// Whole-network summary.
struct PipelineReport
{
    std::string workload;
    std::vector<PipelineLayerReport> layers;

    double weight_compression_ratio = 1.0;
    double speedup_vs_dense = 1.0;
    double energy_ratio_vs_dense = 1.0;  ///< dense / bitwave (higher=better).
    double estimated_metric = 0.0;       ///< Proxy metric after Bit-Flip.
    double base_metric = 0.0;
    double runtime_ms = 0.0;
    double energy_mj = 0.0;

    /// Render a human-readable summary table.
    std::string to_string() const;
};

/**
 * Run the deployment pipeline on @p workload.
 *
 * When `options.use_bitflip` is set, Algorithm 1 (greedy layer-wise
 * search) trades accuracy for zero columns within `max_metric_drop`;
 * otherwise the weights are used as-is (lossless SM BCS only).
 */
PipelineReport deploy(const Workload &workload,
                      const PipelineOptions &options = {});

}  // namespace bitwave
