#include "core/pipeline.hpp"

#include <memory>
#include <sstream>
#include <utility>

#include "common/table.hpp"
#include "compress/bcs.hpp"
#include "eval/runner.hpp"
#include "nn/accuracy.hpp"

namespace bitwave {

std::string
PipelineReport::to_string() const
{
    std::ostringstream out;
    out << "BitWave deployment: " << workload << "\n";
    Table t({"layer", "SU", "util", "CR", "nz cols", "speedup"});
    for (const auto &l : layers) {
        t.add_row({l.name, l.su, fmt_percent(l.utilization),
                   fmt_ratio(l.compression_ratio),
                   fmt_double(l.mean_nonzero_columns),
                   fmt_ratio(l.speedup_vs_dense)});
    }
    out << t.render();
    out << "weight CR " << fmt_ratio(weight_compression_ratio)
        << ", speedup vs dense " << fmt_ratio(speedup_vs_dense)
        << ", energy gain " << fmt_ratio(energy_ratio_vs_dense)
        << ", metric " << fmt_double(estimated_metric) << " (base "
        << fmt_double(base_metric) << "), runtime "
        << fmt_double(runtime_ms) << " ms, energy "
        << fmt_double(energy_mj, 3) << " mJ\n";
    return out.str();
}

PipelineReport
deploy(const Workload &workload, const PipelineOptions &options)
{
    PipelineReport report;
    report.workload = workload.name;
    report.base_metric = workload.base_metric;
    report.estimated_metric = workload.base_metric;

    // Optional Bit-Flip under the metric budget.
    auto weights = std::make_shared<std::vector<Int8Tensor>>();
    if (options.use_bitflip) {
        AccuracyProxy proxy(workload);
        FlipSearch search(workload, proxy);
        GreedySearchOptions opts;
        opts.min_metric = workload.base_metric - options.max_metric_drop;
        opts.group_sizes = options.group_sizes;
        const auto trajectory =
            search.greedy_search(search.untouched_strategy(), opts);
        const auto &best = trajectory.back();
        *weights = search.apply_strategy(best.strategy);
        report.estimated_metric = best.metric;
    } else {
        for (const auto &l : workload.layers) {
            weights->push_back(l.weights);
        }
    }

    // Evaluate BitWave and the dense baseline as one scenario batch
    // through the shared evaluation engine (in parallel when the host
    // has the cores for it). Scenarios own their workload, so the batch
    // stays valid even if the runner ever retains scenarios beyond this
    // frame.
    const auto shared_workload = std::make_shared<const Workload>(workload);
    eval::Scenario bitwave_scenario;
    bitwave_scenario.accel =
        make_bitwave(options.use_bitflip ? BitWaveVariant::kDfSmBf
                                         : BitWaveVariant::kDfSm);
    bitwave_scenario.custom_workload = shared_workload;
    bitwave_scenario.weight_override = weights;
    eval::Scenario dense_scenario;
    dense_scenario.accel = make_bitwave(BitWaveVariant::kDenseSu);
    dense_scenario.custom_workload = shared_workload;

    eval::RunnerOptions runner_options;
    runner_options.threads = options.threads;
    const auto results = eval::ScenarioRunner(runner_options)
        .run({bitwave_scenario, dense_scenario});
    const eval::ScenarioResult &bw = results[0];
    const eval::ScenarioResult &dense = results[1];

    report.speedup_vs_dense = dense.total_cycles / bw.total_cycles;
    report.energy_ratio_vs_dense =
        dense.energy.total_pj / bw.energy.total_pj;
    report.runtime_ms = bw.runtime_ms();
    report.energy_mj = bw.energy.total_pj * 1e-9;

    std::int64_t original_bits = 0;
    double compressed_bits = 0.0;
    for (std::size_t l = 0; l < workload.layers.size(); ++l) {
        const auto &layer = workload.layers[l];
        const auto compressed = bcs_compress(
            (*weights)[l], best_hardware_group_size(
                               (*weights)[l],
                               Representation::kSignMagnitude),
            Representation::kSignMagnitude);
        PipelineLayerReport lr;
        lr.name = layer.desc.name;
        lr.su = bw.layers[l].su_name;
        lr.utilization = bw.layers[l].utilization;
        lr.compression_ratio = compressed.compression_ratio();
        lr.mean_nonzero_columns = bw.layers[l].cycles_per_group;
        lr.speedup_vs_dense =
            dense.layers[l].total_cycles / bw.layers[l].total_cycles;
        report.layers.push_back(std::move(lr));
        original_bits += compressed.original_bits();
        compressed_bits += static_cast<double>(compressed.compressed_bits());
    }
    report.weight_compression_ratio =
        compressed_bits > 0
        ? static_cast<double>(original_bits) / compressed_bits : 1.0;
    return report;
}

}  // namespace bitwave
