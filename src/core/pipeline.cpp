#include "core/pipeline.hpp"

#include <sstream>

#include "common/table.hpp"
#include "compress/bcs.hpp"
#include "nn/accuracy.hpp"

namespace bitwave {

std::string
PipelineReport::to_string() const
{
    std::ostringstream out;
    out << "BitWave deployment: " << workload << "\n";
    Table t({"layer", "SU", "util", "CR", "nz cols", "speedup"});
    for (const auto &l : layers) {
        t.add_row({l.name, l.su, fmt_percent(l.utilization),
                   fmt_ratio(l.compression_ratio),
                   fmt_double(l.mean_nonzero_columns),
                   fmt_ratio(l.speedup_vs_dense)});
    }
    out << t.render();
    out << "weight CR " << fmt_ratio(weight_compression_ratio)
        << ", speedup vs dense " << fmt_ratio(speedup_vs_dense)
        << ", energy gain " << fmt_ratio(energy_ratio_vs_dense)
        << ", metric " << fmt_double(estimated_metric) << " (base "
        << fmt_double(base_metric) << "), runtime "
        << fmt_double(runtime_ms) << " ms, energy "
        << fmt_double(energy_mj, 3) << " mJ\n";
    return out.str();
}

PipelineReport
deploy(const Workload &workload, const PipelineOptions &options)
{
    PipelineReport report;
    report.workload = workload.name;
    report.base_metric = workload.base_metric;
    report.estimated_metric = workload.base_metric;

    // Optional Bit-Flip under the metric budget.
    std::vector<Int8Tensor> weights;
    if (options.use_bitflip) {
        AccuracyProxy proxy(workload);
        FlipSearch search(workload, proxy);
        GreedySearchOptions opts;
        opts.min_metric = workload.base_metric - options.max_metric_drop;
        opts.group_sizes = options.group_sizes;
        const auto trajectory =
            search.greedy_search(search.untouched_strategy(), opts);
        const auto &best = trajectory.back();
        weights = search.apply_strategy(best.strategy);
        report.estimated_metric = best.metric;
    } else {
        for (const auto &l : workload.layers) {
            weights.push_back(l.weights);
        }
    }

    // Model BitWave and the dense baseline.
    AcceleratorModel bitwave_model(
        make_bitwave(options.use_bitflip ? BitWaveVariant::kDfSmBf
                                         : BitWaveVariant::kDfSm));
    AcceleratorModel dense_model(make_bitwave(BitWaveVariant::kDenseSu));
    const auto bw = bitwave_model.model_workload(workload, &weights);
    const auto dense = dense_model.model_workload(workload);

    report.speedup_vs_dense = dense.total_cycles / bw.total_cycles;
    report.energy_ratio_vs_dense = dense.total_energy_pj / bw.total_energy_pj;
    report.runtime_ms = bw.runtime_ms();
    report.energy_mj = bw.total_energy_pj * 1e-9;

    std::int64_t original_bits = 0;
    double compressed_bits = 0.0;
    for (std::size_t l = 0; l < workload.layers.size(); ++l) {
        const auto &layer = workload.layers[l];
        const auto compressed = bcs_compress(
            weights[l], best_hardware_group_size(
                            weights[l], Representation::kSignMagnitude),
            Representation::kSignMagnitude);
        PipelineLayerReport lr;
        lr.name = layer.desc.name;
        lr.su = bw.layers[l].su_name;
        lr.utilization = bw.layers[l].utilization;
        lr.compression_ratio = compressed.compression_ratio();
        lr.mean_nonzero_columns = bw.layers[l].cycles_per_group;
        lr.speedup_vs_dense =
            dense.layers[l].total_cycles / bw.layers[l].total_cycles;
        report.layers.push_back(std::move(lr));
        original_bits += compressed.original_bits();
        compressed_bits += static_cast<double>(compressed.compressed_bits());
    }
    report.weight_compression_ratio =
        compressed_bits > 0
        ? static_cast<double>(original_bits) / compressed_bits : 1.0;
    return report;
}

}  // namespace bitwave
