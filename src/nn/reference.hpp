/**
 * @file
 * Reference integer inference kernels.
 *
 * These are the golden models: the BitWave functional simulator's outputs
 * are verified bit-exactly against them, and the accuracy proxy uses them
 * to measure the output distortion that Bit-Flip introduces.
 *
 * Conventions: activations are NCHW ([B, C, IY, IX]); weights are
 * C-innermost ([K, FY, FX, C], see workload.hpp); accumulators are int32
 * (8b x 8b products cannot overflow 32 bits at the layer sizes used here).
 */
#pragma once

#include <cstdint>

#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace bitwave {

/**
 * Standard / pointwise convolution.
 *
 * @param desc    Layer descriptor (kConv or kPointwiseConv).
 * @param input   [B, C, IY, IX] activations.
 * @param weights [K, FY, FX, C] weights.
 * @return        [B, K, OY, OX] int32 accumulator outputs.
 */
Int32Tensor conv2d_int8(const LayerDesc &desc, const Int8Tensor &input,
                        const Int8Tensor &weights);

/**
 * Depthwise convolution: weights [K, FY, FX], input [B, K, IY, IX].
 */
Int32Tensor depthwise_conv2d_int8(const LayerDesc &desc,
                                  const Int8Tensor &input,
                                  const Int8Tensor &weights);

/**
 * Linear layer (also used for LSTM gate matmuls): input [B, C],
 * weights [K, C], output [B, K].
 */
Int32Tensor linear_int8(const LayerDesc &desc, const Int8Tensor &input,
                        const Int8Tensor &weights);

/**
 * Dispatch on desc.kind to the appropriate kernel. LSTM layers run as
 * their gate matmul ([B=T, C] x [4H, C]).
 */
Int32Tensor layer_forward_int8(const LayerDesc &desc, const Int8Tensor &input,
                               const Int8Tensor &weights);

/// Shape of the activation input expected by layer_forward_int8.
Shape layer_input_shape(const LayerDesc &desc);

/**
 * Requantize an int32 accumulator tensor back to int8 with a power-of-two
 * right shift and saturation — the cheap output stage edge accelerators
 * use between layers.
 */
Int8Tensor requantize_accumulators(const Int32Tensor &acc, int shift);

/// Plain int8 dot product with int32 accumulation (test primitive).
std::int32_t dot_int8(const std::int8_t *a, const std::int8_t *b,
                      std::int64_t n);

}  // namespace bitwave
