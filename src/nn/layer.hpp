/**
 * @file
 * Neural-network layer descriptors.
 *
 * Every layer is normalized to the paper's seven-dimensional loop nest
 * (Fig. 2): batch B, output channels K, input channels C, output spatial
 * OY/OX, kernel FY/FX. Linear / LSTM / attention projections map onto the
 * same nest with the spatial and kernel dims collapsed to 1, which is what
 * lets one dataflow model (and one accelerator model) cover all four
 * benchmark networks.
 */
#pragma once

#include <cstdint>
#include <string>

namespace bitwave {

/// Layer operator types appearing in the benchmark workloads.
enum class LayerKind {
    kConv,           ///< Standard convolution.
    kDepthwiseConv,  ///< One filter per channel (MobileNetV2 Dwcv).
    kPointwiseConv,  ///< 1x1 convolution (MobileNetV2 Pwcv).
    kLinear,         ///< Fully connected / transformer projection.
    kLstm,           ///< LSTM layer: 4 gate matrices over T timesteps.
};

/// Human-readable kind name.
const char *layer_kind_name(LayerKind kind);

/**
 * Shape and bookkeeping of one layer.
 *
 * For kLinear, B carries the token/sample count and K/C the matrix dims.
 * For kLstm, K = 4 * hidden (stacked gates), C = input + hidden and
 * B = timesteps; this models the LSTM's weight matmuls exactly, which is
 * what the accelerator executes (elementwise gate math is negligible).
 * For kDepthwiseConv, K counts channels and C = 1 (each output channel
 * sees a single input channel).
 */
struct LayerDesc
{
    std::string name;
    LayerKind kind = LayerKind::kConv;

    std::int64_t batch = 1;  ///< B (or tokens / timesteps).
    std::int64_t k = 1;      ///< Output channels.
    std::int64_t c = 1;      ///< Input channels (1 for depthwise).
    std::int64_t oy = 1;     ///< Output rows.
    std::int64_t ox = 1;     ///< Output cols.
    std::int64_t fy = 1;     ///< Kernel rows.
    std::int64_t fx = 1;     ///< Kernel cols.
    std::int64_t stride = 1;

    /// Number of MAC operations.
    std::int64_t macs() const;
    /// Number of weight words.
    std::int64_t weight_count() const;
    /// Number of input activation words (exact for stride-sized windows).
    std::int64_t input_count() const;
    /// Number of output activation words.
    std::int64_t output_count() const;

    /// Input spatial extent implied by output size, kernel, and stride.
    std::int64_t ix() const { return (ox - 1) * stride + fx; }
    std::int64_t iy() const { return (oy - 1) * stride + fy; }

    /// One-line summary for logs and tables.
    std::string to_string() const;
};

/**
 * Row view of a layer's weight tensor in its C-innermost storage layout:
 * `rows` rows of `row_len` consecutive elements, `rows_per_kernel` rows
 * per output kernel. BCS groups tile each row; the simulator, the
 * analytical model and the mapping statistics all share this geometry so
 * their group accounting cannot drift apart.
 */
struct WeightRowGeometry
{
    std::int64_t rows = 0;
    std::int64_t row_len = 0;
    std::int64_t rows_per_kernel = 1;
};

/// Weight-row geometry of @p desc (rows * row_len == weight_count()).
WeightRowGeometry weight_row_geometry(const LayerDesc &desc);

/// Convenience builders -----------------------------------------------

/// Standard convolution layer descriptor.
LayerDesc make_conv(std::string name, std::int64_t k, std::int64_t c,
                    std::int64_t oy, std::int64_t ox, std::int64_t fy,
                    std::int64_t fx, std::int64_t stride = 1,
                    std::int64_t batch = 1);

/// Depthwise convolution over @p channels.
LayerDesc make_depthwise(std::string name, std::int64_t channels,
                         std::int64_t oy, std::int64_t ox, std::int64_t f,
                         std::int64_t stride = 1, std::int64_t batch = 1);

/// Pointwise (1x1) convolution.
LayerDesc make_pointwise(std::string name, std::int64_t k, std::int64_t c,
                         std::int64_t oy, std::int64_t ox,
                         std::int64_t batch = 1);

/// Fully connected layer over @p tokens rows.
LayerDesc make_linear(std::string name, std::int64_t out, std::int64_t in,
                      std::int64_t tokens = 1);

/// LSTM layer: weights for 4 gates of @p hidden units over @p timesteps.
LayerDesc make_lstm(std::string name, std::int64_t hidden, std::int64_t input,
                    std::int64_t timesteps);

}  // namespace bitwave
