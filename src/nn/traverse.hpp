/**
 * @file
 * Shared workload traversal: the one place that knows how a network walks
 * layer by layer through an evaluation engine — first/last-layer DRAM
 * context, optional per-layer weight overrides (e.g. Bit-Flipped tensors)
 * and override validation. The analytical model, the cycle-level
 * simulator (via eval) and the deployment pipeline all iterate through
 * here instead of hand-rolling the loop.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "common/logging.hpp"
#include "nn/workload.hpp"

namespace bitwave {

/// Position flags controlling off-chip activation traffic: only the
/// network input and output cross DRAM (intermediate feature maps are
/// kept or halo-tiled on chip, the assumption behind Fig. 16's
/// "DRAM energy is dominated by weight loading").
struct LayerContext
{
    bool first_layer = false;
    bool last_layer = false;
};

/// Validate an optional per-layer weight override set (fatal on arity
/// mismatch) and pass it through.
inline const std::vector<Int8Tensor> *
validated_weight_override(const Workload &workload,
                          const std::vector<Int8Tensor> *weights,
                          const char *who)
{
    if (weights != nullptr && weights->size() != workload.layers.size()) {
        fatal("%s: %zu weight tensors for %zu layers", who,
              weights->size(), workload.layers.size());
    }
    return weights;
}

/**
 * Call `fn(index, layer, weights_or_null, ctx)` for every layer of
 * @p workload, deriving each layer's first/last DRAM context and weight
 * override pointer.
 */
template <typename Fn>
void
for_each_layer(const Workload &workload,
               const std::vector<Int8Tensor> *weights, Fn &&fn)
{
    for (std::size_t l = 0; l < workload.layers.size(); ++l) {
        LayerContext ctx;
        ctx.first_layer = l == 0;
        ctx.last_layer = l + 1 == workload.layers.size();
        fn(l, workload.layers[l],
           weights != nullptr ? &(*weights)[l] : nullptr, ctx);
    }
}

}  // namespace bitwave
