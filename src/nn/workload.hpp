/**
 * @file
 * Workload = a named network with per-layer descriptors and quantized
 * weights, the unit of evaluation for every experiment in the paper.
 *
 * Weight layout convention: the input-channel dimension C is innermost
 * ([K, FY, FX, C] for convolutions, [K, C] for linear/LSTM weights), so
 * grouping consecutive elements — what the BCS analysis and compressor do —
 * groups along C, matching the BitWave dataflow's Cu spatial unrolling.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace bitwave {

/// One layer of a workload: shape plus synthesized Int8 weights.
struct WorkloadLayer
{
    LayerDesc desc;
    Int8Tensor weights;       ///< C-innermost layout, see file comment.
    float weight_scale = 1.f; ///< Dequantization scale of the weights.
    /**
     * Modeled value sparsity of this layer's *input* activations
     * (post-ReLU layers have substantial activation sparsity; GeLU/tanh
     * layers very little). Consumed by the analytical accelerator models.
     */
    double activation_sparsity = 0.0;
    /**
     * FNV-1a content hash of `weights` (0 = not computed). Builders and
     * the workload loader fill it in so caches keyed on weight content
     * (Bit-Flip preparation, on-disk synthesis) avoid rehashing the
     * tensors; hand-built layers may leave it 0 and pay an on-demand
     * hash in the eval layer.
     */
    std::uint64_t weights_hash = 0;

    /// Expected weight tensor shape for a layer descriptor.
    static Shape weight_shape(const LayerDesc &desc);

    /// FNV-1a hash of the weight tensor contents (computed, not cached).
    std::uint64_t compute_weights_hash() const;
};

/// A complete benchmark network.
struct Workload
{
    std::string name;
    std::string metric_name;   ///< "top-1", "PESQ", "F1".
    double base_metric = 0.0;  ///< Metric of the unmodified Int8 model.
    /**
     * Scale factor converting mean weighted relative output error into
     * metric loss; calibrated per network so the Bit-Flip experiments
     * reproduce the paper's accuracy/CR trade-off bands (see DESIGN.md
     * substitution #2).
     */
    double error_sensitivity = 40.0;
    /**
     * Content hash over the layer weight hashes and descriptors
     * (0 = not computed). Identifies the synthesized instance for the
     * on-disk synthesis cache and the Bit-Flip preparation cache.
     */
    std::uint64_t content_hash = 0;
    std::vector<WorkloadLayer> layers;

    std::int64_t total_macs() const;
    std::int64_t total_weights() const;
    std::int64_t total_activations() const;

    /// Index of a layer by name; fatal() if absent.
    std::size_t layer_index(const std::string &layer_name) const;
};

}  // namespace bitwave
