/**
 * @file
 * The four benchmark networks of the paper's evaluation (Fig. 12 left):
 * ResNet18, MobileNetV2, CNN-LSTM (audio denoising), and BERT-Base.
 *
 * Layer shapes are the real published architectures (ImageNet variants for
 * the CNNs, hidden-768 BERT-Base with input token size 4 as in Fig. 13).
 * Weights are synthesized per DESIGN.md substitution #1; the CNN-LSTM
 * topology follows substitution #6 (the paper's in-house NXP model is
 * private) and is sized so the two LSTM layers hold ~85 % of the weights,
 * matching the paper's "LSTM.0 and LSTM.1 (~80 % weights)" statement.
 */
#pragma once

#include <cstdint>
#include <memory>

#include "nn/workload.hpp"

namespace bitwave {

/// Identifiers for the benchmark networks.
enum class WorkloadId {
    kResNet18,
    kMobileNetV2,
    kCnnLstm,
    kBertBase,
};

/// All benchmark ids, in the order the paper's figures list them.
inline constexpr WorkloadId kAllWorkloads[] = {
    WorkloadId::kResNet18,
    WorkloadId::kMobileNetV2,
    WorkloadId::kCnnLstm,
    WorkloadId::kBertBase,
};

/// Display name ("ResNet18", ...).
const char *workload_name(WorkloadId id);

/// Build a workload with freshly synthesized weights.
Workload build_workload(WorkloadId id, std::uint64_t seed = 0x5eed);

/// Build a workload's structure only — descriptors and metadata, empty
/// weight tensors. Cheap; the on-disk synthesis cache validates loaded
/// entries against this so stale caches never survive builder changes.
Workload build_workload_skeleton(WorkloadId id);

/**
 * Shared synthesized instance of one workload (seed 0x5eed), served from
 * a bounded LRU (BITWAVE_CACHE_ENTRIES, default all 4 networks) backed
 * by the optional on-disk synthesis cache. The scenario engine holds
 * workloads through this handle, so an evicted network frees its ~tens
 * of MB once the last evaluation drops it; a re-request rebuilds (or
 * reloads) the identical instance deterministically.
 */
std::shared_ptr<const Workload> shared_workload(WorkloadId id);

/**
 * Reference convenience over shared_workload(): pins the instance for
 * the process lifetime so the returned reference stays valid across
 * evictions. Tests and benches use this; long-running services should
 * prefer shared_workload().
 */
const Workload &get_workload(WorkloadId id);

/// Individual builders -------------------------------------------------

/// ResNet18 for 224x224 ImageNet input (paper baseline top-1 69.8 %).
Workload build_resnet18(std::uint64_t seed);

/// MobileNetV2 for 224x224 ImageNet input (top-1 71.9 %).
Workload build_mobilenet_v2(std::uint64_t seed);

/// CNN-LSTM audio denoiser: conv front-end + 2 LSTM layers + FC (PESQ).
Workload build_cnn_lstm(std::uint64_t seed, std::int64_t timesteps = 100);

/// BERT-Base encoder stack, 12 layers, hidden 768, token size 4 (F1).
Workload build_bert_base(std::uint64_t seed, std::int64_t tokens = 4);

}  // namespace bitwave
