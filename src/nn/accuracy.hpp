/**
 * @file
 * Accuracy proxy (DESIGN.md substitution #2).
 *
 * The paper evaluates Bit-Flip against real datasets (ImageNet top-1,
 * PESQ, SQuAD F1). Without those datasets, we estimate metric loss from
 * the *output distortion* each layer's modified weights cause:
 *
 *   1. per layer, run the reference kernel on calibration activations
 *      with original and modified weights and compute the relative RMS
 *      output error e_l;
 *   2. weight e_l by a depth factor d_l — distortion injected early in a
 *      network is amplified by every downstream layer, the reason the
 *      paper finds early (weight-light) layers flip-sensitive;
 *   3. metric_estimate = base_metric - sensitivity * sum_l d_l * e_l.
 *
 * The proxy is monotone in weight distortion (all Algorithm 1 needs) and
 * reproduces the paper's qualitative sensitivity ordering. Layers are
 * evaluated on spatially-capped shapes so a full sensitivity sweep runs
 * in seconds on a laptop.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "nn/workload.hpp"

namespace bitwave {

/// Calibration-evaluation settings.
struct AccuracyProxyOptions
{
    /// Cap on OY/OX (conv) and batch/tokens during calibration runs.
    std::int64_t spatial_cap = 8;
    std::int64_t batch_cap = 4;
    std::uint64_t seed = 0xACC;
};

/**
 * Evaluates metric estimates for modified weight sets of one workload.
 *
 * The evaluator caches the calibration inputs and the original layer
 * outputs, so repeated queries (the inner loop of Algorithm 1) only pay
 * for the layers whose weights changed.
 */
class AccuracyProxy
{
  public:
    /// Build calibration data for @p workload (kept by reference).
    AccuracyProxy(const Workload &workload,
                  AccuracyProxyOptions options = {});

    /**
     * Relative RMS output error of layer @p layer_idx if its weights were
     * @p new_weights (same shape as the original).
     */
    double layer_rel_error(std::size_t layer_idx,
                           const Int8Tensor &new_weights) const;

    /**
     * Metric estimate when layer @p layer_idx uses @p new_weights and all
     * other layers keep their original weights.
     */
    double metric_with_layer(std::size_t layer_idx,
                             const Int8Tensor &new_weights) const;

    /**
     * Metric estimate for a full set of per-layer weights.
     * @p new_weights must have one entry per layer.
     */
    double metric_for(const std::vector<Int8Tensor> &new_weights) const;

    /// Metric of the unmodified workload (== workload.base_metric).
    double base_metric() const { return workload_.base_metric; }

    /// Depth weight d_l used for layer @p layer_idx.
    double depth_weight(std::size_t layer_idx) const;

    const Workload &workload() const { return workload_; }

  private:
    /// Calibration shape for one layer (spatially capped copy).
    LayerDesc capped_desc(const LayerDesc &desc) const;

    const Workload &workload_;
    AccuracyProxyOptions options_;
    /// Per-layer capped descriptors, calibration inputs, golden outputs.
    std::vector<LayerDesc> descs_;
    std::vector<Int8Tensor> inputs_;
    std::vector<Int32Tensor> golden_;
    std::vector<double> golden_norm_;
};

}  // namespace bitwave
