#include "nn/reference.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "nn/workload.hpp"

namespace bitwave {

Int32Tensor
conv2d_int8(const LayerDesc &desc, const Int8Tensor &input,
            const Int8Tensor &weights)
{
    const std::int64_t b_n = desc.batch, k_n = desc.k, c_n = desc.c;
    const std::int64_t oy_n = desc.oy, ox_n = desc.ox;
    const std::int64_t fy_n = desc.fy, fx_n = desc.fx;
    const std::int64_t iy_n = desc.iy(), ix_n = desc.ix();

    if (input.shape() != Shape{b_n, c_n, iy_n, ix_n}) {
        fatal("conv2d_int8: input shape %s does not match layer %s",
              shape_to_string(input.shape()).c_str(),
              desc.to_string().c_str());
    }
    if (weights.shape() != Shape{k_n, fy_n, fx_n, c_n}) {
        fatal("conv2d_int8: weight shape %s does not match layer %s",
              shape_to_string(weights.shape()).c_str(),
              desc.to_string().c_str());
    }

    Int32Tensor out({b_n, k_n, oy_n, ox_n});
    for (std::int64_t b = 0; b < b_n; ++b) {
        for (std::int64_t k = 0; k < k_n; ++k) {
            for (std::int64_t oy = 0; oy < oy_n; ++oy) {
                for (std::int64_t ox = 0; ox < ox_n; ++ox) {
                    std::int32_t acc = 0;
                    for (std::int64_t fy = 0; fy < fy_n; ++fy) {
                        const std::int64_t iy = oy * desc.stride + fy;
                        for (std::int64_t fx = 0; fx < fx_n; ++fx) {
                            const std::int64_t ix = ox * desc.stride + fx;
                            const std::int8_t *in_row = input.data() +
                                ((b * c_n) * iy_n + iy) * ix_n + ix;
                            const std::int8_t *w_row = weights.data() +
                                ((k * fy_n + fy) * fx_n + fx) * c_n;
                            for (std::int64_t c = 0; c < c_n; ++c) {
                                acc += static_cast<std::int32_t>(
                                           in_row[c * iy_n * ix_n]) *
                                    static_cast<std::int32_t>(w_row[c]);
                            }
                        }
                    }
                    out[((b * k_n + k) * oy_n + oy) * ox_n + ox] = acc;
                }
            }
        }
    }
    return out;
}

Int32Tensor
depthwise_conv2d_int8(const LayerDesc &desc, const Int8Tensor &input,
                      const Int8Tensor &weights)
{
    const std::int64_t b_n = desc.batch, k_n = desc.k;
    const std::int64_t oy_n = desc.oy, ox_n = desc.ox;
    const std::int64_t fy_n = desc.fy, fx_n = desc.fx;
    const std::int64_t iy_n = desc.iy(), ix_n = desc.ix();

    if (input.shape() != Shape{b_n, k_n, iy_n, ix_n}) {
        fatal("depthwise_conv2d_int8: input shape %s does not match %s",
              shape_to_string(input.shape()).c_str(),
              desc.to_string().c_str());
    }
    if (weights.shape() != Shape{k_n, fy_n, fx_n}) {
        fatal("depthwise_conv2d_int8: weight shape %s does not match %s",
              shape_to_string(weights.shape()).c_str(),
              desc.to_string().c_str());
    }

    Int32Tensor out({b_n, k_n, oy_n, ox_n});
    for (std::int64_t b = 0; b < b_n; ++b) {
        for (std::int64_t k = 0; k < k_n; ++k) {
            for (std::int64_t oy = 0; oy < oy_n; ++oy) {
                for (std::int64_t ox = 0; ox < ox_n; ++ox) {
                    std::int32_t acc = 0;
                    for (std::int64_t fy = 0; fy < fy_n; ++fy) {
                        for (std::int64_t fx = 0; fx < fx_n; ++fx) {
                            const std::int64_t iy = oy * desc.stride + fy;
                            const std::int64_t ix = ox * desc.stride + fx;
                            acc += static_cast<std::int32_t>(
                                       input[((b * k_n + k) * iy_n + iy) *
                                                 ix_n +
                                             ix]) *
                                static_cast<std::int32_t>(
                                    weights[(k * fy_n + fy) * fx_n + fx]);
                        }
                    }
                    out[((b * k_n + k) * oy_n + oy) * ox_n + ox] = acc;
                }
            }
        }
    }
    return out;
}

Int32Tensor
linear_int8(const LayerDesc &desc, const Int8Tensor &input,
            const Int8Tensor &weights)
{
    const std::int64_t b_n = desc.batch, k_n = desc.k, c_n = desc.c;
    if (input.shape() != Shape{b_n, c_n}) {
        fatal("linear_int8: input shape %s does not match layer %s",
              shape_to_string(input.shape()).c_str(),
              desc.to_string().c_str());
    }
    if (weights.shape() != Shape{k_n, c_n}) {
        fatal("linear_int8: weight shape %s does not match layer %s",
              shape_to_string(weights.shape()).c_str(),
              desc.to_string().c_str());
    }
    Int32Tensor out({b_n, k_n});
    for (std::int64_t b = 0; b < b_n; ++b) {
        for (std::int64_t k = 0; k < k_n; ++k) {
            out[b * k_n + k] =
                dot_int8(input.data() + b * c_n, weights.data() + k * c_n,
                         c_n);
        }
    }
    return out;
}

Int32Tensor
layer_forward_int8(const LayerDesc &desc, const Int8Tensor &input,
                   const Int8Tensor &weights)
{
    switch (desc.kind) {
      case LayerKind::kConv:
      case LayerKind::kPointwiseConv:
        return conv2d_int8(desc, input, weights);
      case LayerKind::kDepthwiseConv:
        return depthwise_conv2d_int8(desc, input, weights);
      case LayerKind::kLinear:
      case LayerKind::kLstm:
        return linear_int8(desc, input, weights);
    }
    fatal("layer_forward_int8: unknown layer kind");
}

Shape
layer_input_shape(const LayerDesc &desc)
{
    switch (desc.kind) {
      case LayerKind::kConv:
      case LayerKind::kPointwiseConv:
        return {desc.batch, desc.c, desc.iy(), desc.ix()};
      case LayerKind::kDepthwiseConv:
        return {desc.batch, desc.k, desc.iy(), desc.ix()};
      case LayerKind::kLinear:
      case LayerKind::kLstm:
        return {desc.batch, desc.c};
    }
    fatal("layer_input_shape: unknown layer kind");
}

Int8Tensor
requantize_accumulators(const Int32Tensor &acc, int shift)
{
    if (shift < 0 || shift > 31) {
        fatal("requantize_accumulators: shift %d out of range", shift);
    }
    Int8Tensor out(acc.shape());
    for (std::int64_t i = 0; i < acc.numel(); ++i) {
        const std::int32_t shifted = acc[i] >> shift;
        out[i] = static_cast<std::int8_t>(
            std::clamp<std::int32_t>(shifted, -127, 127));
    }
    return out;
}

std::int32_t
dot_int8(const std::int8_t *a, const std::int8_t *b, std::int64_t n)
{
    std::int32_t acc = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        acc += static_cast<std::int32_t>(a[i]) *
            static_cast<std::int32_t>(b[i]);
    }
    return acc;
}

}  // namespace bitwave
