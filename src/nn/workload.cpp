#include "nn/workload.hpp"

#include "common/hash.hpp"
#include "common/logging.hpp"

namespace bitwave {

std::uint64_t
WorkloadLayer::compute_weights_hash() const
{
    std::uint64_t h = fnv1a(weights.data(),
                            static_cast<std::size_t>(weights.numel()));
    h = fnv1a(desc.name.data(), desc.name.size(), h);
    h = hash_combine(h, static_cast<std::uint64_t>(weights.numel()));
    return h;
}

Shape
WorkloadLayer::weight_shape(const LayerDesc &desc)
{
    switch (desc.kind) {
      case LayerKind::kConv:
      case LayerKind::kPointwiseConv:
        return {desc.k, desc.fy, desc.fx, desc.c};
      case LayerKind::kDepthwiseConv:
        return {desc.k, desc.fy, desc.fx};
      case LayerKind::kLinear:
      case LayerKind::kLstm:
        return {desc.k, desc.c};
    }
    return {};
}

std::int64_t
Workload::total_macs() const
{
    std::int64_t n = 0;
    for (const auto &l : layers) {
        n += l.desc.macs();
    }
    return n;
}

std::int64_t
Workload::total_weights() const
{
    std::int64_t n = 0;
    for (const auto &l : layers) {
        n += l.desc.weight_count();
    }
    return n;
}

std::int64_t
Workload::total_activations() const
{
    std::int64_t n = 0;
    for (const auto &l : layers) {
        n += l.desc.input_count() + l.desc.output_count();
    }
    return n;
}

std::size_t
Workload::layer_index(const std::string &layer_name) const
{
    for (std::size_t i = 0; i < layers.size(); ++i) {
        if (layers[i].desc.name == layer_name) {
            return i;
        }
    }
    fatal("workload %s has no layer named %s", name.c_str(),
          layer_name.c_str());
}

}  // namespace bitwave
