#include "nn/synthesis.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"

namespace bitwave {

Int8Tensor
synthesize_weights(const LayerDesc &desc, const WeightProfile &profile,
                   Rng &rng)
{
    Int8Tensor out(WorkloadLayer::weight_shape(desc));
    const std::int64_t kernels = out.rank() > 0 ? out.dim(0) : 1;
    const std::int64_t per_kernel =
        kernels > 0 ? out.numel() / kernels : out.numel();

    std::int64_t i = 0;
    for (std::int64_t k = 0; k < kernels; ++k) {
        const double gain =
            std::exp(rng.gaussian(profile.kernel_gain_sigma));
        const double scale = profile.scale * gain;
        for (std::int64_t j = 0; j < per_kernel; ++j, ++i) {
            if (rng.bernoulli(profile.zero_probability)) {
                out[i] = 0;
                continue;
            }
            const double x =
                profile.distribution == WeightDistribution::kLaplacian
                ? rng.laplacian(scale) : rng.gaussian(scale);
            int code = static_cast<int>(std::lround(x));
            if (code == 0 && rng.bernoulli(profile.zero_avoidance)) {
                code = rng.bernoulli(0.5) ? 1 : -1;
            }
            out[i] = static_cast<std::int8_t>(
                std::clamp(code, kSignMagMin, kSignMagMax));
        }
    }
    return out;
}

Int8Tensor
synthesize_activations(const Shape &shape, double value_sparsity,
                       double scale, bool relu, Rng &rng)
{
    Int8Tensor out(shape);
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        if (rng.bernoulli(value_sparsity)) {
            out[i] = 0;
            continue;
        }
        double x = rng.laplacian(scale);
        if (relu) {
            x = std::abs(x);
        }
        out[i] = static_cast<std::int8_t>(std::clamp<int>(
            static_cast<int>(std::lround(x)), kSignMagMin, kSignMagMax));
    }
    return out;
}

}  // namespace bitwave
