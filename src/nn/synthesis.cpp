#include "nn/synthesis.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/hash.hpp"
#include "common/parallel.hpp"

namespace bitwave {

namespace {

/// Kernel-chunk target so one huge layer (BERT's 3072x768 ffn) shards
/// into tens of independent synthesis tasks instead of one monolith.
constexpr std::int64_t kSynthesisChunkElements = 1 << 16;

/// Synthesize kernels [k0, k1) of @p out from @p rng.
void
synthesize_kernel_range(Int8Tensor &out, const WeightProfile &profile,
                        std::int64_t per_kernel, std::int64_t k0,
                        std::int64_t k1, Rng &rng)
{
    std::int64_t i = k0 * per_kernel;
    for (std::int64_t k = k0; k < k1; ++k) {
        const double gain =
            std::exp(rng.gaussian(profile.kernel_gain_sigma));
        const double scale = profile.scale * gain;
        for (std::int64_t j = 0; j < per_kernel; ++j, ++i) {
            if (rng.bernoulli(profile.zero_probability)) {
                out[i] = 0;
                continue;
            }
            const double x =
                profile.distribution == WeightDistribution::kLaplacian
                ? rng.laplacian(scale) : rng.gaussian(scale);
            int code = static_cast<int>(std::lround(x));
            if (code == 0 && rng.bernoulli(profile.zero_avoidance)) {
                code = rng.bernoulli(0.5) ? 1 : -1;
            }
            out[i] = static_cast<std::int8_t>(
                std::clamp(code, kSignMagMin, kSignMagMax));
        }
    }
}

}  // namespace

Int8Tensor
synthesize_weights(const LayerDesc &desc, const WeightProfile &profile,
                   Rng &rng)
{
    Int8Tensor out(WorkloadLayer::weight_shape(desc));
    const std::int64_t kernels = out.rank() > 0 ? out.dim(0) : 1;
    const std::int64_t per_kernel =
        kernels > 0 ? out.numel() / kernels : out.numel();

    // Every kernel chunk draws from its own stream derived from a base
    // seed pulled off the caller's generator: the result is a pure
    // function of (shape, profile, rng state) — independent of how many
    // workers run the chunks — and cold-start synthesis of one huge
    // layer is no longer a single monolithic task.
    const std::uint64_t base = rng.engine()();
    const std::int64_t chunk_kernels = std::max<std::int64_t>(
        1, kSynthesisChunkElements / std::max<std::int64_t>(per_kernel, 1));
    const std::int64_t chunks = ceil_div(std::max<std::int64_t>(kernels, 1),
                                         chunk_kernels);
    parallel_for(static_cast<std::size_t>(chunks), [&](std::size_t c) {
        const std::int64_t k0 =
            static_cast<std::int64_t>(c) * chunk_kernels;
        const std::int64_t k1 =
            std::min<std::int64_t>(k0 + chunk_kernels, kernels);
        Rng chunk_rng(hash_combine(base, static_cast<std::uint64_t>(c)));
        synthesize_kernel_range(out, profile, per_kernel, k0, k1,
                                chunk_rng);
    });
    return out;
}

Int8Tensor
synthesize_activations(const Shape &shape, double value_sparsity,
                       double scale, bool relu, Rng &rng)
{
    Int8Tensor out(shape);
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        if (rng.bernoulli(value_sparsity)) {
            out[i] = 0;
            continue;
        }
        double x = rng.laplacian(scale);
        if (relu) {
            x = std::abs(x);
        }
        out[i] = static_cast<std::int8_t>(std::clamp<int>(
            static_cast<int>(std::lround(x)), kSignMagMin, kSignMagMax));
    }
    return out;
}

}  // namespace bitwave
