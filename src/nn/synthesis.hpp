/**
 * @file
 * Synthetic Int8 weight generation (DESIGN.md substitution #1).
 *
 * We do not ship pretrained checkpoints; instead each layer's weights are
 * drawn from a distribution matching the empirical statistics of Int8
 * post-training-quantized networks that the paper's techniques depend on:
 * a sharp peak of small magnitudes (Laplacian), a modest fraction of exact
 * zeros, and occasional large outliers that pin the quantization scale.
 *
 * Profiles are per-network: CNNs quantized per-channel are peaked
 * (high SM bit-column sparsity); BERT-Base weights are closer to Gaussian
 * with larger effective magnitudes, reproducing the paper's observation
 * that the original BERT Int8 model has few zero columns until Bit-Flip
 * is applied.
 */
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "nn/workload.hpp"

namespace bitwave {

/// Shape of the magnitude distribution for synthesized weights.
enum class WeightDistribution {
    kLaplacian,  ///< Peaked: typical conv/LSTM layers.
    kGaussian,   ///< Broader: transformer projections.
};

/// Per-layer weight statistics controlling synthesis.
struct WeightProfile
{
    WeightDistribution distribution = WeightDistribution::kLaplacian;
    /// Scale of the distribution in the Int8 code domain (bigger = more
    /// large-magnitude codes = fewer zero bit columns).
    double scale = 10.0;
    /// Probability of an exact zero weight (pruning/dead filters).
    double zero_probability = 0.05;
    /**
     * Probability that a sample rounding to zero is promoted to +-1.
     * Trained weights rarely sit exactly on the zero code (weight decay
     * equilibria keep them small but non-zero), which is why real Int8
     * networks combine LOW value sparsity with HIGH bit-column sparsity —
     * the gap Fig. 1's SR ratios quantify.
     */
    double zero_avoidance = 0.0;
    /**
     * Log-normal sigma of a per-output-channel gain: some kernels are
     * near-dead (uniformly tiny codes), others hot. Groups lie inside one
     * kernel, so this correlation is what lifts zero-column co-occurrence
     * to the levels the paper reports for real networks.
     */
    double kernel_gain_sigma = 0.9;
};

/**
 * Generate quantized weights for @p desc according to @p profile.
 * Deterministic given @p rng state; all values lie in [-127, 127].
 */
Int8Tensor synthesize_weights(const LayerDesc &desc,
                              const WeightProfile &profile, Rng &rng);

/**
 * Generate an activation tensor of @p shape: non-negative (post-ReLU) when
 * @p relu is true, otherwise signed; @p value_sparsity fraction of exact
 * zeros; magnitudes Laplacian with @p scale.
 */
Int8Tensor synthesize_activations(const Shape &shape, double value_sparsity,
                                  double scale, bool relu, Rng &rng);

}  // namespace bitwave
