#include "nn/layer.hpp"

#include "common/logging.hpp"

namespace bitwave {

const char *
layer_kind_name(LayerKind kind)
{
    switch (kind) {
      case LayerKind::kConv: return "conv";
      case LayerKind::kDepthwiseConv: return "dwconv";
      case LayerKind::kPointwiseConv: return "pwconv";
      case LayerKind::kLinear: return "linear";
      case LayerKind::kLstm: return "lstm";
    }
    return "?";
}

std::int64_t
LayerDesc::macs() const
{
    return batch * k * c * oy * ox * fy * fx;
}

std::int64_t
LayerDesc::weight_count() const
{
    return k * c * fy * fx;
}

std::int64_t
LayerDesc::input_count() const
{
    const std::int64_t channels =
        kind == LayerKind::kDepthwiseConv ? k : c;
    return batch * channels * iy() * ix();
}

std::int64_t
LayerDesc::output_count() const
{
    return batch * k * oy * ox;
}

WeightRowGeometry
weight_row_geometry(const LayerDesc &desc)
{
    WeightRowGeometry g;
    switch (desc.kind) {
      case LayerKind::kConv:
      case LayerKind::kPointwiseConv:
        g.rows = desc.k * desc.fy * desc.fx;
        g.row_len = desc.c;
        g.rows_per_kernel = desc.fy * desc.fx;
        break;
      case LayerKind::kDepthwiseConv:
        g.rows = desc.k;
        g.row_len = desc.fy * desc.fx;
        g.rows_per_kernel = 1;
        break;
      case LayerKind::kLinear:
      case LayerKind::kLstm:
        g.rows = desc.k;
        g.row_len = desc.c;
        g.rows_per_kernel = 1;
        break;
    }
    return g;
}

std::string
LayerDesc::to_string() const
{
    return strprintf(
        "%s(%s K=%lld C=%lld OY=%lld OX=%lld F=%lldx%lld s=%lld B=%lld)",
        name.c_str(), layer_kind_name(kind), static_cast<long long>(k),
        static_cast<long long>(c), static_cast<long long>(oy),
        static_cast<long long>(ox), static_cast<long long>(fy),
        static_cast<long long>(fx), static_cast<long long>(stride),
        static_cast<long long>(batch));
}

LayerDesc
make_conv(std::string name, std::int64_t k, std::int64_t c, std::int64_t oy,
          std::int64_t ox, std::int64_t fy, std::int64_t fx,
          std::int64_t stride, std::int64_t batch)
{
    LayerDesc d;
    d.name = std::move(name);
    d.kind = LayerKind::kConv;
    d.batch = batch;
    d.k = k;
    d.c = c;
    d.oy = oy;
    d.ox = ox;
    d.fy = fy;
    d.fx = fx;
    d.stride = stride;
    return d;
}

LayerDesc
make_depthwise(std::string name, std::int64_t channels, std::int64_t oy,
               std::int64_t ox, std::int64_t f, std::int64_t stride,
               std::int64_t batch)
{
    LayerDesc d;
    d.name = std::move(name);
    d.kind = LayerKind::kDepthwiseConv;
    d.batch = batch;
    d.k = channels;
    d.c = 1;
    d.oy = oy;
    d.ox = ox;
    d.fy = f;
    d.fx = f;
    d.stride = stride;
    return d;
}

LayerDesc
make_pointwise(std::string name, std::int64_t k, std::int64_t c,
               std::int64_t oy, std::int64_t ox, std::int64_t batch)
{
    LayerDesc d = make_conv(std::move(name), k, c, oy, ox, 1, 1, 1, batch);
    d.kind = LayerKind::kPointwiseConv;
    return d;
}

LayerDesc
make_linear(std::string name, std::int64_t out, std::int64_t in,
            std::int64_t tokens)
{
    LayerDesc d;
    d.name = std::move(name);
    d.kind = LayerKind::kLinear;
    d.batch = tokens;
    d.k = out;
    d.c = in;
    return d;
}

LayerDesc
make_lstm(std::string name, std::int64_t hidden, std::int64_t input,
          std::int64_t timesteps)
{
    LayerDesc d;
    d.name = std::move(name);
    d.kind = LayerKind::kLstm;
    d.batch = timesteps;
    d.k = 4 * hidden;
    d.c = input + hidden;
    return d;
}

}  // namespace bitwave
