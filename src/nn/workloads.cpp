#include "nn/workloads.hpp"

#include <array>
#include <memory>
#include <mutex>
#include <vector>

#include "common/hash.hpp"
#include "common/logging.hpp"
#include "common/lru.hpp"
#include "common/parallel.hpp"
#include "nn/synthesis.hpp"
#include "nn/workload_io.hpp"

namespace bitwave {

namespace {

/**
 * Deferred weight synthesis: builders queue (descriptor, profile) pairs
 * and materialize() draws every layer from its own seed stream
 * (hash of the workload seed and the layer index), so layers synthesize
 * in parallel with results identical to a serial materialization.
 */
struct SynthesisQueue
{
    /// When set, materialize() is a no-op: builders then return the
    /// network *structure* only (descriptors, sparsity metadata, empty
    /// weights) — the cheap skeleton the on-disk cache validates
    /// against.
    static thread_local bool skeleton_only;

    std::vector<WeightProfile> profiles;

    void materialize(Workload &w, std::uint64_t seed) const
    {
        if (skeleton_only) {
            return;
        }
        parallel_for(w.layers.size(), [&](std::size_t i) {
            WorkloadLayer &layer = w.layers[i];
            Rng rng(hash_combine(hash_combine(kFnvBasis, seed),
                                 static_cast<std::uint64_t>(i)));
            layer.weights =
                synthesize_weights(layer.desc, profiles[i], rng);
            layer.weights_hash = layer.compute_weights_hash();
        });
        std::uint64_t h = fnv1a(w.name.data(), w.name.size());
        h = hash_combine(h, seed);
        for (const auto &layer : w.layers) {
            h = hash_combine(h, layer.weights_hash);
        }
        w.content_hash = h;
    }
};

thread_local bool SynthesisQueue::skeleton_only = false;

/// Append a layer whose weights materialize() will synthesize later.
void
add_layer(Workload &w, LayerDesc desc, const WeightProfile &profile,
          double act_sparsity, SynthesisQueue &synth)
{
    WorkloadLayer layer;
    layer.desc = std::move(desc);
    layer.weight_scale = 0.02f;  // representative per-tensor scale
    layer.activation_sparsity = act_sparsity;
    w.layers.push_back(std::move(layer));
    synth.profiles.push_back(profile);
}

/**
 * Weight profile for a CNN layer at relative depth @p depth (0..1).
 * Later layers are trained toward smaller effective magnitudes (more
 * redundancy), which per-channel PTQ turns into more peaked Int8 codes —
 * the gradient that makes late layers flip-tolerant in Fig. 6.
 */
WeightProfile
cnn_profile(double depth, double zero_prob, double base_scale = 7.0,
            double scale_slope = 3.0)
{
    WeightProfile p;
    p.distribution = WeightDistribution::kLaplacian;
    p.scale = base_scale - scale_slope * depth;  // broader early, peaked late
    p.zero_probability = zero_prob;
    p.zero_avoidance = 0.8;
    return p;
}

}  // namespace

const char *
workload_name(WorkloadId id)
{
    switch (id) {
      case WorkloadId::kResNet18: return "ResNet18";
      case WorkloadId::kMobileNetV2: return "MobileNetV2";
      case WorkloadId::kCnnLstm: return "CNN-LSTM";
      case WorkloadId::kBertBase: return "Bert-Base";
    }
    return "?";
}

Workload
build_resnet18(std::uint64_t seed)
{
    SynthesisQueue synth;
    Workload w;
    w.name = "ResNet18";
    w.metric_name = "top-1";
    w.base_metric = 69.8;
    w.error_sensitivity = 2.0;

    // Stem. Input image has no value sparsity.
    add_layer(w, make_conv("conv1", 64, 3, 112, 112, 7, 7, 2),
              cnn_profile(0.0, 0.03), 0.0, synth);

    // Residual stages. Post-ReLU activation sparsity ~0.4 throughout.
    struct Stage { int channels, size, blocks; };
    const Stage stages[] = {{64, 56, 2}, {128, 28, 2},
                            {256, 14, 2}, {512, 7, 2}};
    int prev = 64;
    int conv_idx = 1;
    const int total_convs = 17;
    for (int s = 0; s < 4; ++s) {
        const auto &st = stages[s];
        for (int b = 0; b < st.blocks; ++b) {
            const bool down = s > 0 && b == 0;
            const int in_ch = b == 0 ? prev : st.channels;
            const double depth =
                static_cast<double>(conv_idx) / total_convs;
            // conv2 of the paper (first 3x3 of stage 1) carries ~20 %
            // zero values and a very peaked magnitude profile (Fig. 4).
            WeightProfile prof = cnn_profile(depth, 0.04);
            if (conv_idx == 1) {
                prof.scale = 3.0;
                prof.zero_probability = 0.05;
                prof.zero_avoidance = 0.0;
            }
            add_layer(w,
                      make_conv(strprintf("l%d.%d.conv1", s + 1, b),
                                st.channels, in_ch, st.size, st.size, 3, 3,
                                down ? 2 : 1),
                      prof, 0.4, synth);
            ++conv_idx;
            add_layer(w,
                      make_conv(strprintf("l%d.%d.conv2", s + 1, b),
                                st.channels, st.channels, st.size, st.size,
                                3, 3, 1),
                      cnn_profile(static_cast<double>(conv_idx) / total_convs,
                                  0.04),
                      0.4, synth);
            ++conv_idx;
            if (down) {
                add_layer(w,
                          make_pointwise(strprintf("l%d.%d.down", s + 1, b),
                                         st.channels, prev, st.size, st.size),
                          cnn_profile(depth, 0.04), 0.4, synth);
            }
        }
        prev = st.channels;
    }

    add_layer(w, make_linear("fc", 1000, 512), cnn_profile(1.0, 0.04), 0.4,
              synth);
    synth.materialize(w, seed);
    return w;
}

Workload
build_mobilenet_v2(std::uint64_t seed)
{
    SynthesisQueue synth;
    Workload w;
    w.name = "MobileNetV2";
    w.metric_name = "top-1";
    w.base_metric = 71.9;
    w.error_sensitivity = 6.0;

    add_layer(w, make_conv("conv0", 32, 3, 112, 112, 3, 3, 2),
              cnn_profile(0.0, 0.03, 6.0), 0.0, synth);

    // Inverted residual settings (t, c, n, s) from the MobileNetV2 paper.
    struct Block { int t, c, n, s; };
    const Block cfg[] = {{1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},
                         {6, 64, 4, 2},  {6, 96, 3, 1},  {6, 160, 3, 2},
                         {6, 320, 1, 1}};
    int in_ch = 32;
    int size = 112;
    int layer_no = 1;
    const int total = 52;
    for (const auto &blk : cfg) {
        for (int r = 0; r < blk.n; ++r) {
            const int stride = r == 0 ? blk.s : 1;
            const int exp_ch = in_ch * blk.t;
            const int out_size = stride == 2 ? size / 2 : size;
            const double depth = static_cast<double>(layer_no) / total;
            if (blk.t != 1) {
                add_layer(w,
                          make_pointwise(strprintf("L.%d.pw_exp", layer_no),
                                         exp_ch, in_ch, size, size),
                          cnn_profile(depth, 0.03, 6.0), 0.35, synth);
                ++layer_no;
            }
            add_layer(w,
                      make_depthwise(strprintf("L.%d.dw", layer_no), exp_ch,
                                     out_size, out_size, 3, stride),
                      cnn_profile(depth, 0.03, 6.0), 0.35, synth);
            ++layer_no;
            // Projection layer has a linear (no ReLU) output, but its
            // *input* comes from ReLU6.
            add_layer(w,
                      make_pointwise(strprintf("L.%d.pw_proj", layer_no),
                                     blk.c, exp_ch, out_size, out_size),
                      cnn_profile(depth, 0.03, 6.0), 0.35, synth);
            ++layer_no;
            in_ch = blk.c;
            size = out_size;
        }
    }

    add_layer(w, make_pointwise("L.51.conv_last", 1280, 320, 7, 7),
              cnn_profile(1.0, 0.03, 6.0), 0.35, synth);
    add_layer(w, make_linear("fc", 1000, 1280),
              cnn_profile(1.0, 0.03, 6.0), 0.35, synth);
    synth.materialize(w, seed);
    return w;
}

Workload
build_cnn_lstm(std::uint64_t seed, std::int64_t timesteps)
{
    SynthesisQueue synth;
    Workload w;
    w.name = "CNN-LSTM";
    w.metric_name = "PESQ";
    w.base_metric = 3.20;
    w.error_sensitivity = 1.6;

    // Conv front-end over the spectrogram (257 bins x T frames).
    add_layer(w, make_conv("conv1", 32, 1, 128, timesteps, 5, 5, 2),
              cnn_profile(0.1, 0.05, 5.0), 0.0, synth);
    add_layer(w, make_conv("conv2", 64, 32, 64, timesteps, 3, 3, 2),
              cnn_profile(0.2, 0.05, 5.0), 0.4, synth);
    // Feature projection into the recurrent stack.
    add_layer(w, make_linear("fc_in", 256, 256, timesteps),
              cnn_profile(0.4, 0.05, 4.0), 0.4, synth);
    // LSTM stack: sigmoid/tanh gates yield near-zero activation sparsity,
    // the property that sinks value-sparsity accelerators on this net.
    add_layer(w, make_lstm("LSTM.0", 256, 256, timesteps),
              cnn_profile(0.7, 0.06, 2.8, 0.0), 0.05, synth);
    add_layer(w, make_lstm("LSTM.1", 256, 256, timesteps),
              cnn_profile(0.9, 0.06, 2.8, 0.0), 0.05, synth);
    add_layer(w, make_linear("fc_out", 257, 256, timesteps),
              cnn_profile(1.0, 0.05, 3.0), 0.05, synth);
    synth.materialize(w, seed);
    return w;
}

Workload
build_bert_base(std::uint64_t seed, std::int64_t tokens)
{
    SynthesisQueue synth;
    Workload w;
    w.name = "Bert-Base";
    w.metric_name = "F1";
    w.base_metric = 88.5;
    w.error_sensitivity = 0.25;

    // Transformer weights are broader / closer to Gaussian than conv
    // weights: the original Int8 model has few zero bit columns
    // (Section III-D), which is why BERT needs Bit-Flip to benefit.
    WeightProfile attn;
    attn.distribution = WeightDistribution::kGaussian;
    attn.scale = 28.0;
    attn.zero_probability = 0.005;
    attn.zero_avoidance = 0.5;
    attn.kernel_gain_sigma = 0.3;
    WeightProfile ffn = attn;
    ffn.scale = 24.0;

    const std::int64_t h = 768;
    for (int l = 0; l < 12; ++l) {
        // bert.encoder.layer.1 is especially flip-sensitive (Fig. 6(d)):
        // give the early layers slightly broader weights.
        WeightProfile layer_attn = attn;
        if (l >= 1 && l <= 3) {
            layer_attn.scale = 34.0;
        }
        add_layer(w, make_linear(strprintf("layer.%d.q", l), h, h, tokens),
                  layer_attn, 0.0, synth);
        add_layer(w, make_linear(strprintf("layer.%d.k", l), h, h, tokens),
                  layer_attn, 0.0, synth);
        add_layer(w, make_linear(strprintf("layer.%d.v", l), h, h, tokens),
                  layer_attn, 0.0, synth);
        add_layer(w,
                  make_linear(strprintf("layer.%d.attn_out", l), h, h,
                              tokens),
                  layer_attn, 0.0, synth);
        // GeLU leaves ~10 % exact zeros after quantization.
        add_layer(w,
                  make_linear(strprintf("layer.%d.ffn_in", l), 4 * h, h,
                              tokens),
                  ffn, 0.0, synth);
        add_layer(w,
                  make_linear(strprintf("layer.%d.ffn_out", l), h, 4 * h,
                              tokens),
                  ffn, 0.10, synth);
    }
    synth.materialize(w, seed);
    return w;
}

Workload
build_workload(WorkloadId id, std::uint64_t seed)
{
    switch (id) {
      case WorkloadId::kResNet18: return build_resnet18(seed);
      case WorkloadId::kMobileNetV2: return build_mobilenet_v2(seed);
      case WorkloadId::kCnnLstm: return build_cnn_lstm(seed);
      case WorkloadId::kBertBase: return build_bert_base(seed);
    }
    fatal("unknown workload id");
}

Workload
build_workload_skeleton(WorkloadId id)
{
    SynthesisQueue::skeleton_only = true;
    Workload w = build_workload(id);
    SynthesisQueue::skeleton_only = false;
    return w;
}

namespace {

/// A cached workload is only served if it still matches the structure
/// the current builders would produce — a builder change (layer shapes,
/// topology, metadata) silently invalidates old cache entries instead
/// of silently serving them. Weight-profile-only changes are invisible
/// to the skeleton; bump workload_io's format version for those.
bool
matches_current_builder(const Workload &loaded, WorkloadId id)
{
    const Workload skeleton = build_workload_skeleton(id);
    if (loaded.name != skeleton.name ||
        loaded.metric_name != skeleton.metric_name ||
        loaded.base_metric != skeleton.base_metric ||
        loaded.error_sensitivity != skeleton.error_sensitivity ||
        loaded.layers.size() != skeleton.layers.size()) {
        return false;
    }
    for (std::size_t i = 0; i < skeleton.layers.size(); ++i) {
        const LayerDesc &a = loaded.layers[i].desc;
        const LayerDesc &b = skeleton.layers[i].desc;
        if (a.name != b.name || a.kind != b.kind || a.batch != b.batch ||
            a.k != b.k || a.c != b.c || a.oy != b.oy || a.ox != b.ox ||
            a.fy != b.fy || a.fx != b.fx || a.stride != b.stride ||
            loaded.layers[i].activation_sparsity !=
                skeleton.layers[i].activation_sparsity ||
            loaded.layers[i].weight_scale !=
                skeleton.layers[i].weight_scale) {
            return false;
        }
    }
    return true;
}

}  // namespace

std::shared_ptr<const Workload>
shared_workload(WorkloadId id)
{
    // Bounded sharded LRU: each resident entry synthesized (or
    // disk-loaded) at most once under its own flag, so concurrent first
    // touches of *different* workloads never serialize behind one
    // global mutex, and warm fetches from the worker pool take a shard
    // lock shared. BITWAVE_CACHE_ENTRIES below 4 bounds how many of
    // the ~10-100 MB networks stay resident at once; rebuilds are
    // deterministic and the on-disk cache (BITWAVE_WORKLOAD_CACHE)
    // makes them cheap.
    static ShardedLruCache<int, Workload> cache(cache_capacity_from_env(4),
                                                0, "workloads");
    return cache.get_or_build(static_cast<int>(id), [&] {
        constexpr std::uint64_t kSeed = 0x5eed;
        const std::string dir = workload_cache_dir();
        if (!dir.empty()) {
            // Cold path housekeeping: sweep temp droppings of writers
            // that died mid-save, so the cache dir cannot fill with
            // orphans under a long-running service.
            remove_stale_temp_files(dir, /*max_age_seconds=*/600.0);
            const std::string path =
                workload_cache_path(dir, workload_name(id), kSeed);
            Workload loaded;
            if (load_cached_workload(path, &loaded) &&
                matches_current_builder(loaded, id)) {
                return loaded;
            }
            Workload built = build_workload(id, kSeed);
            save_workload(built, path);  // best effort
            return built;
        }
        return build_workload(id, kSeed);
    });
}

const Workload &
get_workload(WorkloadId id)
{
    // Pin the shared instance for the process lifetime: references
    // handed out here must survive LRU eviction. The scenario engine
    // holds workloads via shared_workload() instead and participates in
    // the bound.
    static std::array<std::shared_ptr<const Workload>, 4> pins;
    static std::mutex pin_mutex;
    std::shared_ptr<const Workload> w = shared_workload(id);
    std::lock_guard<std::mutex> lock(pin_mutex);
    auto &slot = pins[static_cast<std::size_t>(id)];
    if (!slot) {
        slot = std::move(w);
    }
    return *slot;
}

}  // namespace bitwave
