#include "nn/workload_io.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <memory>
#include <vector>

#include "common/env.hpp"
#include "common/hash.hpp"
#include "common/logging.hpp"

namespace bitwave {

namespace {

constexpr std::uint32_t kMagic = 0x42574c44;  // "BWLD"
// v2: synthesize_weights draws every kernel chunk from its own seed
// stream (internal sharding), changing the synthesized bytes for the
// same builder skeleton; the version bump retires v1 cache entries.
constexpr std::uint32_t kVersion = 2;

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f != nullptr) {
            std::fclose(f);
        }
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool
write_bytes(std::FILE *f, const void *p, std::size_t n)
{
    return std::fwrite(p, 1, n, f) == n;
}

bool
read_bytes(std::FILE *f, void *p, std::size_t n)
{
    return std::fread(p, 1, n, f) == n;
}

template <typename T>
bool
write_pod(std::FILE *f, const T &v)
{
    return write_bytes(f, &v, sizeof(T));
}

template <typename T>
bool
read_pod(std::FILE *f, T *v)
{
    return read_bytes(f, v, sizeof(T));
}

bool
write_string(std::FILE *f, const std::string &s)
{
    const auto n = static_cast<std::uint64_t>(s.size());
    return write_pod(f, n) && write_bytes(f, s.data(), s.size());
}

bool
read_string(std::FILE *f, std::string *s)
{
    std::uint64_t n = 0;
    if (!read_pod(f, &n) || n > (1u << 20)) {
        return false;
    }
    s->resize(static_cast<std::size_t>(n));
    return read_bytes(f, s->data(), s->size());
}

bool
write_desc(std::FILE *f, const LayerDesc &d)
{
    const auto kind = static_cast<std::uint32_t>(d.kind);
    return write_string(f, d.name) && write_pod(f, kind) &&
        write_pod(f, d.batch) && write_pod(f, d.k) && write_pod(f, d.c) &&
        write_pod(f, d.oy) && write_pod(f, d.ox) && write_pod(f, d.fy) &&
        write_pod(f, d.fx) && write_pod(f, d.stride);
}

bool
read_desc(std::FILE *f, LayerDesc *d)
{
    std::uint32_t kind = 0;
    if (!read_string(f, &d->name) || !read_pod(f, &kind) ||
        kind > static_cast<std::uint32_t>(LayerKind::kLstm)) {
        return false;
    }
    d->kind = static_cast<LayerKind>(kind);
    return read_pod(f, &d->batch) && read_pod(f, &d->k) &&
        read_pod(f, &d->c) && read_pod(f, &d->oy) && read_pod(f, &d->ox) &&
        read_pod(f, &d->fy) && read_pod(f, &d->fx) &&
        read_pod(f, &d->stride);
}

}  // namespace

std::string
workload_cache_dir()
{
    return env_string("BITWAVE_WORKLOAD_CACHE");
}

std::string
workload_cache_path(const std::string &dir, const std::string &name,
                    std::uint64_t seed)
{
    std::string file = name;
    for (char &c : file) {
        if (c == '/' || c == ' ') {
            c = '_';
        }
    }
    return strprintf("%s/%s-seed%016llx-v%u.bwl", dir.c_str(), file.c_str(),
                     static_cast<unsigned long long>(seed), kVersion);
}

bool
save_workload(const Workload &workload, const std::string &path)
{
    // Per-writer temp name: concurrent cold-miss processes writing the
    // same cache entry must not interleave into one file; last rename
    // wins with a complete image either way.
    const std::string tmp = strprintf(
        "%s.tmp.%ld", path.c_str(), static_cast<long>(::getpid()));
    {
        FilePtr f(std::fopen(tmp.c_str(), "wb"));
        if (!f) {
            return false;
        }
        bool ok = write_pod(f.get(), kMagic) &&
            write_pod(f.get(), kVersion) &&
            write_string(f.get(), workload.name) &&
            write_string(f.get(), workload.metric_name) &&
            write_pod(f.get(), workload.base_metric) &&
            write_pod(f.get(), workload.error_sensitivity) &&
            write_pod(f.get(), workload.content_hash) &&
            write_pod(f.get(),
                      static_cast<std::uint64_t>(workload.layers.size()));
        for (const auto &l : workload.layers) {
            if (!ok) {
                break;
            }
            const Shape &shape = l.weights.shape();
            ok = write_desc(f.get(), l.desc) &&
                write_pod(f.get(), l.weight_scale) &&
                write_pod(f.get(), l.activation_sparsity) &&
                write_pod(f.get(), l.weights_hash) &&
                write_pod(f.get(),
                          static_cast<std::uint64_t>(shape.size()));
            for (std::size_t d = 0; ok && d < shape.size(); ++d) {
                ok = write_pod(f.get(), shape[d]);
            }
            ok = ok &&
                write_bytes(f.get(), l.weights.data(),
                            static_cast<std::size_t>(l.weights.numel()));
        }
        if (!ok) {
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
load_workload(const std::string &path, Workload *out)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f) {
        return false;
    }
    std::uint32_t magic = 0, version = 0;
    Workload w;
    std::uint64_t layer_count = 0;
    if (!read_pod(f.get(), &magic) || magic != kMagic ||
        !read_pod(f.get(), &version) || version != kVersion ||
        !read_string(f.get(), &w.name) ||
        !read_string(f.get(), &w.metric_name) ||
        !read_pod(f.get(), &w.base_metric) ||
        !read_pod(f.get(), &w.error_sensitivity) ||
        !read_pod(f.get(), &w.content_hash) ||
        !read_pod(f.get(), &layer_count) || layer_count > (1u << 16)) {
        return false;
    }
    w.layers.resize(static_cast<std::size_t>(layer_count));
    for (auto &l : w.layers) {
        std::uint64_t dims = 0;
        if (!read_desc(f.get(), &l.desc) ||
            !read_pod(f.get(), &l.weight_scale) ||
            !read_pod(f.get(), &l.activation_sparsity) ||
            !read_pod(f.get(), &l.weights_hash) ||
            !read_pod(f.get(), &dims) || dims > 8) {
            return false;
        }
        Shape shape(static_cast<std::size_t>(dims));
        for (auto &d : shape) {
            if (!read_pod(f.get(), &d) || d < 0) {
                return false;
            }
        }
        if (shape != WorkloadLayer::weight_shape(l.desc)) {
            return false;
        }
        std::vector<std::int8_t> data(
            static_cast<std::size_t>(shape_numel(shape)));
        if (!read_bytes(f.get(), data.data(), data.size())) {
            return false;
        }
        l.weights = Int8Tensor(std::move(shape), std::move(data));
        if (l.weights_hash != l.compute_weights_hash()) {
            return false;  // bit rot or a stale/corrupt entry
        }
    }
    *out = std::move(w);
    return true;
}

bool
load_cached_workload(const std::string &path, Workload *out)
{
    if (load_workload(path, out)) {
        return true;
    }
    // Distinguish "no entry yet" (normal cold miss, stay quiet) from "an
    // entry exists but fails validation" (stale/partial — evict it).
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) {
        warn("removing invalid workload cache entry %s", path.c_str());
        std::remove(path.c_str());
    }
    return false;
}

int
remove_stale_temp_files(const std::string &dir, double max_age_seconds)
{
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr) {
        return 0;
    }
    const std::time_t now = std::time(nullptr);
    int removed = 0;
    while (const dirent *entry = ::readdir(d)) {
        const char *tmp = std::strstr(entry->d_name, ".tmp.");
        if (tmp == nullptr || tmp == entry->d_name) {
            continue;
        }
        const std::string path = dir + "/" + entry->d_name;
        struct stat st;
        if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
            continue;
        }
        if (std::difftime(now, st.st_mtime) < max_age_seconds) {
            continue;  // plausibly an in-flight write from a live writer
        }
        if (std::remove(path.c_str()) == 0) {
            ++removed;
        }
    }
    ::closedir(d);
    return removed;
}

}  // namespace bitwave
