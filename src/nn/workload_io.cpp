#include "nn/workload_io.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <memory>
#include <vector>

#include "common/env.hpp"
#include "common/fault.hpp"
#include "common/hash.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"

namespace bitwave {

namespace {

constexpr std::uint32_t kMagic = 0x42574c44;  // "BWLD"
// v3: the image is serialized to memory and sealed with a trailing
// FNV-1a checksum over every preceding byte (torn writes and bit rot
// are detected before parsing); the version bump retires unchecked v2
// entries.
constexpr std::uint32_t kVersion = 3;

/// Counters live in the global metrics registry (workload_io.*);
/// this struct caches the handles so bump sites stay one relaxed
/// fetch_add.
struct Counters
{
    metrics::Counter &loads = metrics::counter("workload_io.loads");
    metrics::Counter &load_failures =
        metrics::counter("workload_io.load_failures");
    metrics::Counter &read_faults =
        metrics::counter("workload_io.read_faults");
    metrics::Counter &corruption_detected =
        metrics::counter("workload_io.corruption_detected");
    metrics::Counter &entries_unlinked =
        metrics::counter("workload_io.entries_unlinked");
    metrics::Counter &saves = metrics::counter("workload_io.saves");
    metrics::Counter &save_failures =
        metrics::counter("workload_io.save_failures");
};

Counters &
counters()
{
    static Counters c;
    return c;
}

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f != nullptr) {
            std::fclose(f);
        }
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Append-only in-memory image builder (the whole entry is serialized
/// here, checksummed, then written in one fwrite).
struct ByteWriter
{
    std::vector<unsigned char> bytes;

    void write(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        bytes.insert(bytes.end(), b, b + n);
    }

    template <typename T>
    void pod(const T &v)
    {
        write(&v, sizeof(T));
    }

    void str(const std::string &s)
    {
        pod(static_cast<std::uint64_t>(s.size()));
        write(s.data(), s.size());
    }
};

/// Bounds-checked cursor over the loaded image (checksum already
/// verified; bounds failures mean a parse bug or a stale format).
struct ByteReader
{
    const unsigned char *data = nullptr;
    std::size_t size = 0;
    std::size_t pos = 0;

    bool read(void *p, std::size_t n)
    {
        if (n > size - pos) {
            return false;
        }
        std::memcpy(p, data + pos, n);
        pos += n;
        return true;
    }

    template <typename T>
    bool pod(T *v)
    {
        return read(v, sizeof(T));
    }

    bool str(std::string *s)
    {
        std::uint64_t n = 0;
        if (!pod(&n) || n > (1u << 20)) {
            return false;
        }
        s->resize(static_cast<std::size_t>(n));
        return read(s->data(), s->size());
    }
};

void
write_desc(ByteWriter *w, const LayerDesc &d)
{
    w->str(d.name);
    w->pod(static_cast<std::uint32_t>(d.kind));
    w->pod(d.batch);
    w->pod(d.k);
    w->pod(d.c);
    w->pod(d.oy);
    w->pod(d.ox);
    w->pod(d.fy);
    w->pod(d.fx);
    w->pod(d.stride);
}

bool
read_desc(ByteReader *r, LayerDesc *d)
{
    std::uint32_t kind = 0;
    if (!r->str(&d->name) || !r->pod(&kind) ||
        kind > static_cast<std::uint32_t>(LayerKind::kLstm)) {
        return false;
    }
    d->kind = static_cast<LayerKind>(kind);
    return r->pod(&d->batch) && r->pod(&d->k) && r->pod(&d->c) &&
        r->pod(&d->oy) && r->pod(&d->ox) && r->pod(&d->fy) &&
        r->pod(&d->fx) && r->pod(&d->stride);
}

enum class LoadStatus
{
    kOk,
    kMissing,    ///< No entry at the path (normal cold miss).
    kCorrupt,    ///< Entry exists but fails checksum/validation.
    kTransient,  ///< The read itself failed (injected or real IO error);
                 ///< the entry may be perfectly valid — keep it.
};

LoadStatus
load_workload_impl(const std::string &path, Workload *out)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f) {
        return LoadStatus::kMissing;
    }
    try {
        BITWAVE_FAULT_INJECT("workload_io.read");
    } catch (const FaultError &) {
        counters().read_faults.inc();
        return LoadStatus::kTransient;
    }
    // Whole-file read; the checksum trailer is verified before any
    // field is parsed.
    std::vector<unsigned char> image;
    {
        unsigned char buf[1 << 16];
        std::size_t got = 0;
        while ((got = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
            image.insert(image.end(), buf, buf + got);
        }
        if (std::ferror(f.get()) != 0) {
            counters().read_faults.inc();
            return LoadStatus::kTransient;
        }
    }
    if (image.size() < sizeof(std::uint64_t)) {
        return LoadStatus::kCorrupt;
    }
    const std::size_t body = image.size() - sizeof(std::uint64_t);
    std::uint64_t stored = 0;
    std::memcpy(&stored, image.data() + body, sizeof(stored));
    if (fnv1a(image.data(), body) != stored) {
        return LoadStatus::kCorrupt;
    }

    ByteReader r{image.data(), body, 0};
    std::uint32_t magic = 0, version = 0;
    Workload w;
    std::uint64_t layer_count = 0;
    if (!r.pod(&magic) || magic != kMagic || !r.pod(&version) ||
        version != kVersion || !r.str(&w.name) || !r.str(&w.metric_name) ||
        !r.pod(&w.base_metric) || !r.pod(&w.error_sensitivity) ||
        !r.pod(&w.content_hash) || !r.pod(&layer_count) ||
        layer_count > (1u << 16)) {
        return LoadStatus::kCorrupt;
    }
    w.layers.resize(static_cast<std::size_t>(layer_count));
    for (auto &l : w.layers) {
        std::uint64_t dims = 0;
        if (!read_desc(&r, &l.desc) || !r.pod(&l.weight_scale) ||
            !r.pod(&l.activation_sparsity) || !r.pod(&l.weights_hash) ||
            !r.pod(&dims) || dims > 8) {
            return LoadStatus::kCorrupt;
        }
        Shape shape(static_cast<std::size_t>(dims));
        for (auto &d : shape) {
            if (!r.pod(&d) || d < 0) {
                return LoadStatus::kCorrupt;
            }
        }
        if (shape != WorkloadLayer::weight_shape(l.desc)) {
            return LoadStatus::kCorrupt;
        }
        std::vector<std::int8_t> data(
            static_cast<std::size_t>(shape_numel(shape)));
        if (!r.read(data.data(), data.size())) {
            return LoadStatus::kCorrupt;
        }
        l.weights = Int8Tensor(std::move(shape), std::move(data));
        if (l.weights_hash != l.compute_weights_hash()) {
            return LoadStatus::kCorrupt;  // bit rot under a valid checksum
                                          // is near-impossible, but cheap
                                          // to keep checking
        }
    }
    if (r.pos != r.size) {
        return LoadStatus::kCorrupt;  // trailing garbage under the seal
    }
    *out = std::move(w);
    return LoadStatus::kOk;
}

}  // namespace

std::string
workload_cache_dir()
{
    return env_string("BITWAVE_WORKLOAD_CACHE");
}

std::string
workload_cache_path(const std::string &dir, const std::string &name,
                    std::uint64_t seed)
{
    std::string file = name;
    for (char &c : file) {
        if (c == '/' || c == ' ') {
            c = '_';
        }
    }
    return strprintf("%s/%s-seed%016llx-v%u.bwl", dir.c_str(), file.c_str(),
                     static_cast<unsigned long long>(seed), kVersion);
}

bool
save_workload(const Workload &workload, const std::string &path)
{
    const auto fail = [] {
        counters().save_failures.inc();
        return false;
    };
    try {
        BITWAVE_FAULT_INJECT("workload_io.write");
    } catch (const FaultError &) {
        return fail();  // best effort: a failed save is only a cold miss
    }
    ByteWriter w;
    w.pod(kMagic);
    w.pod(kVersion);
    w.str(workload.name);
    w.str(workload.metric_name);
    w.pod(workload.base_metric);
    w.pod(workload.error_sensitivity);
    w.pod(workload.content_hash);
    w.pod(static_cast<std::uint64_t>(workload.layers.size()));
    for (const auto &l : workload.layers) {
        const Shape &shape = l.weights.shape();
        write_desc(&w, l.desc);
        w.pod(l.weight_scale);
        w.pod(l.activation_sparsity);
        w.pod(l.weights_hash);
        w.pod(static_cast<std::uint64_t>(shape.size()));
        for (std::size_t d = 0; d < shape.size(); ++d) {
            w.pod(shape[d]);
        }
        w.write(l.weights.data(),
                static_cast<std::size_t>(l.weights.numel()));
    }
    w.pod(fnv1a(w.bytes.data(), w.bytes.size()));  // seal the image

    // Per-writer temp name: concurrent cold-miss processes writing the
    // same cache entry must not interleave into one file; last rename
    // wins with a complete image either way.
    const std::string tmp = strprintf(
        "%s.tmp.%ld", path.c_str(), static_cast<long>(::getpid()));
    {
        FilePtr f(std::fopen(tmp.c_str(), "wb"));
        if (!f) {
            return fail();
        }
        if (std::fwrite(w.bytes.data(), 1, w.bytes.size(), f.get()) !=
            w.bytes.size()) {
            f.reset();
            std::remove(tmp.c_str());
            return fail();
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return fail();
    }
    counters().saves.inc();
    return true;
}

bool
load_workload(const std::string &path, Workload *out)
{
    const LoadStatus status = load_workload_impl(path, out);
    if (status == LoadStatus::kOk) {
        counters().loads.inc();
        return true;
    }
    counters().load_failures.inc();
    if (status == LoadStatus::kCorrupt) {
        counters().corruption_detected.inc();
    }
    return false;
}

bool
load_cached_workload(const std::string &path, Workload *out)
{
    const LoadStatus status = load_workload_impl(path, out);
    switch (status) {
      case LoadStatus::kOk:
        counters().loads.inc();
        return true;
      case LoadStatus::kMissing:
        counters().load_failures.inc();
        return false;  // normal cold miss, stay quiet
      case LoadStatus::kTransient:
        // The *read* failed, not the entry: unlinking here would throw
        // away a perfectly valid cache file because of one IO hiccup.
        counters().load_failures.inc();
        warn_once(("workload-io-read:" + path).c_str(),
                  "transient read failure on workload cache entry %s "
                  "(kept; falling back to synthesis)",
                  path.c_str());
        return false;
      case LoadStatus::kCorrupt:
        break;
    }
    counters().load_failures.inc();
    counters().corruption_detected.inc();
    warn("removing corrupt workload cache entry %s", path.c_str());
    if (std::remove(path.c_str()) == 0) {
        counters().entries_unlinked.inc();
    }
    return false;
}

int
remove_stale_temp_files(const std::string &dir, double max_age_seconds)
{
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr) {
        return 0;
    }
    // Stale-temp-file GC compares mtimes; never feeds a result.
    // bitwave-lint: allow(determinism)
    const std::time_t now = std::time(nullptr);
    int removed = 0;
    while (const dirent *entry = ::readdir(d)) {
        const char *tmp = std::strstr(entry->d_name, ".tmp.");
        if (tmp == nullptr || tmp == entry->d_name) {
            continue;
        }
        const std::string path = dir + "/" + entry->d_name;
        struct stat st;
        if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
            continue;
        }
        if (std::difftime(now, st.st_mtime) < max_age_seconds) {
            continue;  // plausibly an in-flight write from a live writer
        }
        if (std::remove(path.c_str()) == 0) {
            ++removed;
        }
    }
    ::closedir(d);
    return removed;
}

WorkloadIoCounters
workload_io_counters()
{
    // Thin view over the metrics registry (workload_io.* counters).
    const Counters &c = counters();
    WorkloadIoCounters out;
    out.loads = c.loads.value();
    out.load_failures = c.load_failures.value();
    out.read_faults = c.read_faults.value();
    out.corruption_detected = c.corruption_detected.value();
    out.entries_unlinked = c.entries_unlinked.value();
    out.saves = c.saves.value();
    out.save_failures = c.save_failures.value();
    return out;
}

}  // namespace bitwave
