/**
 * @file
 * Binary serialization of synthesized workloads — the persistence layer
 * behind the on-disk synthesis cache (BITWAVE_WORKLOAD_CACHE). BERT-Base
 * synthesis costs seconds per process; a cached load is a single
 * sequential read.
 *
 * The format is an implementation detail of this repository: a tagged
 * little-endian dump of the workload fields, validated by magic, format
 * version, and the workload content hash on load. Any mismatch makes the
 * loader fail soft (return false) so callers fall back to synthesis.
 */
#pragma once

#include <string>

#include "nn/workload.hpp"

namespace bitwave {

/// Directory of the on-disk synthesis cache: $BITWAVE_WORKLOAD_CACHE,
/// empty when the cache is disabled (the default).
std::string workload_cache_dir();

/// Cache file path of one synthesized (name, seed) instance under @p dir.
std::string workload_cache_path(const std::string &dir,
                                const std::string &name,
                                std::uint64_t seed);

/**
 * Write @p workload to @p path atomically (temp file + rename), so a
 * crashed writer never leaves a truncated cache entry behind.
 * Returns false on any I/O error (best effort — caching is optional).
 */
bool save_workload(const Workload &workload, const std::string &path);

/**
 * Load a workload previously written by save_workload(). Returns false —
 * leaving @p out untouched — on missing file, bad magic/version, or a
 * content-hash mismatch.
 */
bool load_workload(const std::string &path, Workload *out);

}  // namespace bitwave
