/**
 * @file
 * Binary serialization of synthesized workloads — the persistence layer
 * behind the on-disk synthesis cache (BITWAVE_WORKLOAD_CACHE). BERT-Base
 * synthesis costs seconds per process; a cached load is a single
 * sequential read.
 *
 * The format is an implementation detail of this repository: a tagged
 * little-endian dump of the workload fields, validated by magic, format
 * version, and the workload content hash on load. Since v3 the image is
 * serialized to memory and sealed with a trailing FNV-1a checksum over
 * every preceding byte, so a torn write or bit rot is detected by one
 * whole-file comparison before any field is parsed. Any mismatch makes
 * the loader fail soft (return false) so callers fall back to synthesis
 * — a corrupt cache entry is never fatal: it is counted, unlinked, and
 * the workload resynthesized.
 */
#pragma once

#include <cstdint>
#include <string>

#include "nn/workload.hpp"

namespace bitwave {

/// Directory of the on-disk synthesis cache: $BITWAVE_WORKLOAD_CACHE,
/// empty when the cache is disabled (the default).
std::string workload_cache_dir();

/// Cache file path of one synthesized (name, seed) instance under @p dir.
std::string workload_cache_path(const std::string &dir,
                                const std::string &name,
                                std::uint64_t seed);

/**
 * Write @p workload to @p path atomically (temp file + rename), so a
 * crashed writer never leaves a truncated cache entry behind.
 * Returns false on any I/O error (best effort — caching is optional).
 */
bool save_workload(const Workload &workload, const std::string &path);

/**
 * Load a workload previously written by save_workload(). Returns false —
 * leaving @p out untouched — on missing file, bad magic/version, or a
 * content-hash mismatch.
 */
bool load_workload(const std::string &path, Workload *out);

/**
 * Concurrent-reader front end over load_workload(): on a validation
 * failure (truncated, corrupt, or stale-format entry) the broken file is
 * unlinked so every later reader takes one clean cold miss instead of
 * re-parsing garbage forever. Unlinking is safe against a concurrent
 * valid writer: save_workload() publishes via rename, so a reader either
 * sees the complete new image (loads fine) or the old path entry — never
 * a half-written file.
 */
bool load_cached_workload(const std::string &path, Workload *out);

/**
 * Remove `*.tmp.<pid>` droppings older than @p max_age_seconds from
 * @p dir — leftovers of writers that died between fopen and rename.
 * Young temp files are in-flight writes from live processes and are left
 * alone. Returns the number of files removed (0 on any error; cleanup is
 * best effort).
 */
int remove_stale_temp_files(const std::string &dir, double max_age_seconds);

/// Lifetime counters of the persistence layer (process-wide, for
/// diagnostics and the chaos tests).
struct WorkloadIoCounters
{
    std::uint64_t loads = 0;            ///< Successful loads.
    std::uint64_t load_failures = 0;    ///< Any failed load (incl. misses
                                        ///< hitting load_workload directly).
    std::uint64_t read_faults = 0;      ///< Transient read failures
                                        ///< (injected or real); entry kept.
    std::uint64_t corruption_detected = 0;  ///< Checksum/parse failures on
                                            ///< an existing entry.
    std::uint64_t entries_unlinked = 0;     ///< Evicted broken entries.
    std::uint64_t saves = 0;                ///< Successful saves.
    std::uint64_t save_failures = 0;        ///< Failed best-effort saves.
};

WorkloadIoCounters workload_io_counters();

}  // namespace bitwave
