/**
 * @file
 * Binary serialization of synthesized workloads — the persistence layer
 * behind the on-disk synthesis cache (BITWAVE_WORKLOAD_CACHE). BERT-Base
 * synthesis costs seconds per process; a cached load is a single
 * sequential read.
 *
 * The format is an implementation detail of this repository: a tagged
 * little-endian dump of the workload fields, validated by magic, format
 * version, and the workload content hash on load. Any mismatch makes the
 * loader fail soft (return false) so callers fall back to synthesis.
 */
#pragma once

#include <string>

#include "nn/workload.hpp"

namespace bitwave {

/// Directory of the on-disk synthesis cache: $BITWAVE_WORKLOAD_CACHE,
/// empty when the cache is disabled (the default).
std::string workload_cache_dir();

/// Cache file path of one synthesized (name, seed) instance under @p dir.
std::string workload_cache_path(const std::string &dir,
                                const std::string &name,
                                std::uint64_t seed);

/**
 * Write @p workload to @p path atomically (temp file + rename), so a
 * crashed writer never leaves a truncated cache entry behind.
 * Returns false on any I/O error (best effort — caching is optional).
 */
bool save_workload(const Workload &workload, const std::string &path);

/**
 * Load a workload previously written by save_workload(). Returns false —
 * leaving @p out untouched — on missing file, bad magic/version, or a
 * content-hash mismatch.
 */
bool load_workload(const std::string &path, Workload *out);

/**
 * Concurrent-reader front end over load_workload(): on a validation
 * failure (truncated, corrupt, or stale-format entry) the broken file is
 * unlinked so every later reader takes one clean cold miss instead of
 * re-parsing garbage forever. Unlinking is safe against a concurrent
 * valid writer: save_workload() publishes via rename, so a reader either
 * sees the complete new image (loads fine) or the old path entry — never
 * a half-written file.
 */
bool load_cached_workload(const std::string &path, Workload *out);

/**
 * Remove `*.tmp.<pid>` droppings older than @p max_age_seconds from
 * @p dir — leftovers of writers that died between fopen and rename.
 * Young temp files are in-flight writes from live processes and are left
 * alone. Returns the number of files removed (0 on any error; cleanup is
 * best effort).
 */
int remove_stale_temp_files(const std::string &dir, double max_age_seconds);

}  // namespace bitwave
