#include "nn/accuracy.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "nn/reference.hpp"
#include "nn/synthesis.hpp"

namespace bitwave {

AccuracyProxy::AccuracyProxy(const Workload &workload,
                             AccuracyProxyOptions options)
    : workload_(workload), options_(options)
{
    Rng rng(options_.seed);
    descs_.reserve(workload_.layers.size());
    inputs_.reserve(workload_.layers.size());
    golden_.reserve(workload_.layers.size());
    golden_norm_.reserve(workload_.layers.size());

    for (const auto &layer : workload_.layers) {
        LayerDesc capped = capped_desc(layer.desc);
        // Calibration activations mirror the layer's modeled input
        // statistics (ReLU-positive for CNN layers with sparsity, signed
        // dense for transformer/LSTM inputs).
        const bool relu_like = layer.activation_sparsity > 0.2;
        Int8Tensor input = synthesize_activations(
            layer_input_shape(capped), layer.activation_sparsity, 16.0,
            relu_like, rng);
        Int32Tensor out = layer_forward_int8(capped, input, layer.weights);
        double norm = 0.0;
        for (std::int64_t i = 0; i < out.numel(); ++i) {
            norm += static_cast<double>(out[i]) * static_cast<double>(out[i]);
        }
        golden_norm_.push_back(std::sqrt(
            std::max(norm, 1.0)));
        descs_.push_back(std::move(capped));
        inputs_.push_back(std::move(input));
        golden_.push_back(std::move(out));
    }
}

LayerDesc
AccuracyProxy::capped_desc(const LayerDesc &desc) const
{
    LayerDesc capped = desc;
    capped.oy = std::min(capped.oy, options_.spatial_cap);
    capped.ox = std::min(capped.ox, options_.spatial_cap);
    capped.batch = std::min(capped.batch, options_.batch_cap);
    return capped;
}

double
AccuracyProxy::layer_rel_error(std::size_t layer_idx,
                               const Int8Tensor &new_weights) const
{
    if (layer_idx >= workload_.layers.size()) {
        fatal("layer_rel_error: index %zu out of range", layer_idx);
    }
    const auto &golden = golden_[layer_idx];
    const Int32Tensor out = layer_forward_int8(
        descs_[layer_idx], inputs_[layer_idx], new_weights);
    double err = 0.0;
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        const double d = static_cast<double>(out[i]) -
            static_cast<double>(golden[i]);
        err += d * d;
    }
    return std::sqrt(err) / golden_norm_[layer_idx];
}

double
AccuracyProxy::depth_weight(std::size_t layer_idx) const
{
    const double l = static_cast<double>(layer_idx);
    const double total = static_cast<double>(workload_.layers.size());
    // Distortion injected at depth l propagates through the remaining
    // (total - l) layers; weight decays toward the output.
    const double remaining = (total - l) / total;
    return 0.15 + 0.85 * remaining * remaining;
}

double
AccuracyProxy::metric_with_layer(std::size_t layer_idx,
                                 const Int8Tensor &new_weights) const
{
    const double e = layer_rel_error(layer_idx, new_weights);
    return workload_.base_metric -
        workload_.error_sensitivity * depth_weight(layer_idx) * e;
}

double
AccuracyProxy::metric_for(const std::vector<Int8Tensor> &new_weights) const
{
    if (new_weights.size() != workload_.layers.size()) {
        fatal("metric_for: expected %zu weight tensors, got %zu",
              workload_.layers.size(), new_weights.size());
    }
    double weighted = 0.0;
    for (std::size_t l = 0; l < new_weights.size(); ++l) {
        // Unchanged layers contribute no error; skip the forward pass.
        if (new_weights[l] == workload_.layers[l].weights) {
            continue;
        }
        weighted += depth_weight(l) * layer_rel_error(l, new_weights[l]);
    }
    return workload_.base_metric - workload_.error_sensitivity * weighted;
}

}  // namespace bitwave
