#include "tensor/bitplane.hpp"

#include <algorithm>
#include <array>
#include <bit>

#include "common/fault.hpp"
#include "common/hash.hpp"
#include "common/logging.hpp"
#include "common/lru.hpp"
#include "common/metrics.hpp"

namespace bitwave {

namespace {

/**
 * Transpose an 8x8 bit matrix packed into a uint64 (row i = byte i,
 * column j = bit j): output bit (8j + i) = input bit (8i + j). The
 * three delta-swap rounds are the classic Hacker's Delight 7-3 routine.
 */
constexpr std::uint64_t
transpose8(std::uint64_t x)
{
    std::uint64_t t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAULL;
    x = x ^ t ^ (t << 7);
    t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCULL;
    x = x ^ t ^ (t << 14);
    t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ULL;
    x = x ^ t ^ (t << 28);
    return x;
}

/// byte -> sign-magnitude encoding of the int8 it stores.
const std::array<std::uint8_t, 256> &
sm_encode_table()
{
    static const auto table = [] {
        std::array<std::uint8_t, 256> t{};
        for (int v = 0; v < 256; ++v) {
            t[static_cast<std::size_t>(v)] = to_sign_magnitude(
                static_cast<std::int8_t>(static_cast<std::uint8_t>(v)));
        }
        return t;
    }();
    return table;
}

/// Mask with the most significant bit of every @p lane_bits lane set.
constexpr std::uint64_t
lane_msb_mask(int lane_bits)
{
    std::uint64_t m = 0;
    for (int b = lane_bits - 1; b < 64; b += lane_bits) {
        m |= 1ULL << b;
    }
    return m;
}

/// Per-lane non-zero test: the msb of each @p lane lane of the result is
/// set exactly when that lane of @p x holds at least one 1 bit.
constexpr std::uint64_t
lanes_nonzero(std::uint64_t x, std::uint64_t msb)
{
    const std::uint64_t low = ~msb;
    return (((x & low) + low) | x) & msb;
}

}  // namespace

BitPlanes
pack_bitplanes(const Int8Tensor &tensor, Representation repr)
{
    // A throwing pack never poisons the shared cache: get_or_build's
    // once_flag stays unset on exception, so the next hit rebuilds.
    BITWAVE_FAULT_INJECT("bitplane.pack");
    BitPlanes out;
    out.repr = repr;
    out.n = tensor.numel();
    out.words = (out.n + 63) >> 6;
    out.bits.assign(static_cast<std::size_t>(out.words) * kWordBits, 0);

    const std::int8_t *data = tensor.data();
    const bool sm = repr == Representation::kSignMagnitude;
    const auto &enc = sm_encode_table();

    for (std::int64_t w = 0; w < out.words; ++w) {
        const std::int64_t base = w << 6;
        const int in_word =
            static_cast<int>(std::min<std::int64_t>(64, out.n - base));
        std::uint64_t acc[kWordBits] = {};
        for (int s = 0; s * 8 < in_word; ++s) {
            const std::int8_t *e = data + base + s * 8;
            const int cnt = std::min(8, in_word - s * 8);
            std::uint64_t rows = 0;
            if (sm) {
                for (int i = 0; i < cnt; ++i) {
                    rows |= static_cast<std::uint64_t>(
                                enc[static_cast<std::uint8_t>(e[i])])
                        << (8 * i);
                }
            } else {
                for (int i = 0; i < cnt; ++i) {
                    rows |= static_cast<std::uint64_t>(
                                static_cast<std::uint8_t>(e[i]))
                        << (8 * i);
                }
            }
            const std::uint64_t y = transpose8(rows);
            for (int b = 0; b < kWordBits; ++b) {
                acc[b] |= ((y >> (8 * b)) & 0xFFULL) << (8 * s);
            }
        }
        for (int b = 0; b < kWordBits; ++b) {
            out.bits[static_cast<std::size_t>(b) *
                         static_cast<std::size_t>(out.words) +
                     static_cast<std::size_t>(w)] = acc[b];
        }
    }
    return out;
}

namespace {

/// Shared validation of a scan geometry; returns true when the tensor is
/// empty (nothing to scan).
bool
scan_is_empty(const char *what, const BitPlanes &planes,
              std::int64_t row_len, int group_size)
{
    if (group_size < 1 || group_size > 64) {
        fatal("%s: group_size %d out of [1, 64]", what, group_size);
    }
    if (planes.n == 0) {
        return true;
    }
    if (row_len < 1 || planes.n % row_len != 0) {
        fatal("%s: row_len %lld does not tile %lld elements", what,
              static_cast<long long>(row_len),
              static_cast<long long>(planes.n));
    }
    return false;
}

/// Does the word-parallel path apply? Power-of-two groups of >= 8 never
/// straddle words when rows are 64-aligned (or the scan is flat).
bool
scan_is_word_parallel(const BitPlanes &planes, std::int64_t row_len,
                      int group_size)
{
    return (group_size & (group_size - 1)) == 0 && group_size >= 8 &&
        (row_len % 64 == 0 || row_len == planes.n);
}

/**
 * Word-parallel core: for every plane word, interleave the 64/G
 * lane-nonzero flags of all 8 planes into one word `y` (group l's
 * column-index mask at bits [l*G, l*G+8)) and hand it to @p fn along
 * with the number of real groups in the word. Padding lanes are zero in
 * every plane, so their mask bits never fire.
 */
template <typename Fn>
void
scan_words(const BitPlanes &planes, int group_size, Fn &&fn)
{
    const std::uint64_t msb = lane_msb_mask(group_size);
    const std::uint64_t *plane[kWordBits];
    for (int b = 0; b < kWordBits; ++b) {
        plane[b] = planes.plane(b);
    }
    for (std::int64_t w = 0; w < planes.words; ++w) {
        std::uint64_t y = 0;
        for (int b = 0; b < kWordBits; ++b) {
            y |= (lanes_nonzero(plane[b][w], msb) >> (group_size - 1))
                << b;
        }
        const std::int64_t valid =
            std::min<std::int64_t>(64, planes.n - (w << 6));
        fn(y, static_cast<int>(ceil_div(valid, group_size)));
    }
}

}  // namespace

std::int64_t
scan_group_count(std::int64_t n, std::int64_t row_len, int group_size)
{
    if (n == 0) {
        return 0;
    }
    if (row_len < 1 || n % row_len != 0) {
        fatal("scan_group_count: row_len %lld does not tile %lld elements",
              static_cast<long long>(row_len), static_cast<long long>(n));
    }
    return (n / row_len) * ceil_div(row_len, group_size);
}

void
scan_group_indexes(const BitPlanes &planes, std::int64_t row_len,
                   int group_size, std::uint8_t *out)
{
    if (scan_is_empty("scan_group_indexes", planes, row_len, group_size)) {
        return;
    }
    if (scan_is_word_parallel(planes, row_len, group_size)) {
        std::int64_t emitted = 0;
        scan_words(planes, group_size, [&](std::uint64_t y, int cnt) {
            for (int l = 0; l < cnt; ++l) {
                out[emitted++] = static_cast<std::uint8_t>(
                    (y >> (l * group_size)) & 0xFF);
            }
        });
        return;
    }

    std::int64_t emitted = 0;
    for (std::int64_t r0 = 0; r0 < planes.n; r0 += row_len) {
        for (std::int64_t c = 0; c < row_len; c += group_size) {
            const int len = static_cast<int>(
                std::min<std::int64_t>(group_size, row_len - c));
            out[emitted++] = planes.group_index(r0 + c, len);
        }
    }
}

std::int64_t
scan_nonzero_column_total(const BitPlanes &planes, std::int64_t row_len,
                          int group_size)
{
    if (scan_is_empty("scan_nonzero_column_total", planes, row_len,
                      group_size)) {
        return 0;
    }
    std::int64_t total = 0;
    if (scan_is_word_parallel(planes, row_len, group_size)) {
        // Every set bit of y is one (group, non-zero column) pair, so
        // the word's contribution is a single popcount.
        scan_words(planes, group_size, [&](std::uint64_t y, int) {
            total += std::popcount(y);
        });
        return total;
    }
    for (std::int64_t r0 = 0; r0 < planes.n; r0 += row_len) {
        for (std::int64_t c = 0; c < row_len; c += group_size) {
            const int len = static_cast<int>(
                std::min<std::int64_t>(group_size, row_len - c));
            total += std::popcount(
                static_cast<unsigned>(planes.group_index(r0 + c, len)));
        }
    }
    return total;
}

void
scan_zero_column_histogram(const BitPlanes &planes, std::int64_t row_len,
                           int group_size, std::int64_t hist[9])
{
    if (scan_is_empty("scan_zero_column_histogram", planes, row_len,
                      group_size)) {
        return;
    }
    if (scan_is_word_parallel(planes, row_len, group_size)) {
        scan_words(planes, group_size, [&](std::uint64_t y, int cnt) {
            for (int l = 0; l < cnt; ++l) {
                const auto mask = static_cast<unsigned>(
                    (y >> (l * group_size)) & 0xFF);
                ++hist[8 - std::popcount(mask)];
            }
        });
        return;
    }
    for (std::int64_t r0 = 0; r0 < planes.n; r0 += row_len) {
        for (std::int64_t c = 0; c < row_len; c += group_size) {
            const int len = static_cast<int>(
                std::min<std::int64_t>(group_size, row_len - c));
            ++hist[8 - std::popcount(static_cast<unsigned>(
                       planes.group_index(r0 + c, len)))];
        }
    }
}

namespace {

ShardedLruCache<std::uint64_t, BitPlanes> &
bitplane_cache()
{
    // Sharded: concurrent warm lookups from the worker pool take a
    // shard's lock shared and never contend with each other.
    static ShardedLruCache<std::uint64_t, BitPlanes> cache(
        cache_capacity_from_env(256), 0, "bitplanes");
    return cache;
}

}  // namespace

std::shared_ptr<const BitPlanes>
shared_bitplanes(const Int8Tensor &tensor, Representation repr,
                 std::uint64_t content_hash)
{
    if (content_hash == 0) {
        content_hash = fnv1a(tensor.data(),
                             static_cast<std::size_t>(tensor.numel()));
    }
    std::uint64_t key = hash_combine(content_hash,
                                     static_cast<std::uint64_t>(repr) + 1);
    key = hash_combine(key, static_cast<std::uint64_t>(tensor.numel()));
    return bitplane_cache().get_or_build(
        key, [&] { return pack_bitplanes(tensor, repr); });
}

CacheCounters
bitplane_cache_counters()
{
    // Thin view over the metrics registry: the cache itself counts
    // straight into cache.bitplanes.* (see bitplane_cache()).
    return CacheCounters{
        static_cast<std::int64_t>(
            metrics::counter_value("cache.bitplanes.hits")),
        static_cast<std::int64_t>(
            metrics::counter_value("cache.bitplanes.misses"))};
}

}  // namespace bitwave
