/**
 * @file
 * Lightweight dense N-dimensional tensor used for weights and activations.
 *
 * This is the storage substrate for the whole repository: quantization,
 * sparsity analysis, compression, the reference inference kernels, and the
 * simulator all operate on `Tensor<T>` instances in row-major layout.
 */
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/logging.hpp"

namespace bitwave {

/// A tensor shape: sizes of each dimension, outermost first.
using Shape = std::vector<std::int64_t>;

/// Total number of elements implied by @p shape (1 for a scalar shape).
std::int64_t shape_numel(const Shape &shape);

/// Render a shape as "[a, b, c]" for diagnostics.
std::string shape_to_string(const Shape &shape);

/**
 * Dense row-major tensor.
 *
 * @tparam T element type (float for pre-quantization data, int8_t for
 *           quantized operands, int32_t for accumulators).
 */
template <typename T>
class Tensor
{
  public:
    /// An empty 0-d tensor.
    Tensor() : shape_(), data_() {}

    /// Zero-initialized tensor of the given shape.
    explicit Tensor(Shape shape)
        : shape_(std::move(shape)),
          data_(static_cast<std::size_t>(shape_numel(shape_)), T{})
    {
    }

    /// Tensor wrapping explicit data, which must match the shape's numel.
    Tensor(Shape shape, std::vector<T> data)
        : shape_(std::move(shape)), data_(std::move(data))
    {
        if (static_cast<std::int64_t>(data_.size()) != shape_numel(shape_)) {
            panic("Tensor data size %zu does not match shape %s",
                  data_.size(), shape_to_string(shape_).c_str());
        }
    }

    const Shape &shape() const { return shape_; }
    std::int64_t numel() const
    {
        return static_cast<std::int64_t>(data_.size());
    }
    std::int64_t dim(std::size_t i) const
    {
        if (i >= shape_.size()) {
            panic("Tensor dim index %zu out of range (rank %zu)", i,
                  shape_.size());
        }
        return shape_[i];
    }
    std::size_t rank() const { return shape_.size(); }

    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }
    std::vector<T> &storage() { return data_; }
    const std::vector<T> &storage() const { return data_; }

    T &operator[](std::int64_t i)
    {
        return data_[static_cast<std::size_t>(i)];
    }
    const T &operator[](std::int64_t i) const
    {
        return data_[static_cast<std::size_t>(i)];
    }

    /// Flat offset of a multi-dimensional index (row-major).
    std::int64_t offset(const std::vector<std::int64_t> &index) const
    {
        if (index.size() != shape_.size()) {
            panic("index rank %zu does not match tensor rank %zu",
                  index.size(), shape_.size());
        }
        std::int64_t off = 0;
        for (std::size_t d = 0; d < shape_.size(); ++d) {
            if (index[d] < 0 || index[d] >= shape_[d]) {
                panic("index %lld out of range for dim %zu (size %lld)",
                      static_cast<long long>(index[d]), d,
                      static_cast<long long>(shape_[d]));
            }
            off = off * shape_[d] + index[d];
        }
        return off;
    }

    /// Element access by multi-dimensional index.
    T &at(const std::vector<std::int64_t> &index)
    {
        return data_[static_cast<std::size_t>(offset(index))];
    }
    const T &at(const std::vector<std::int64_t> &index) const
    {
        return data_[static_cast<std::size_t>(offset(index))];
    }

    /// Fill every element with @p value.
    void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

    bool operator==(const Tensor &other) const
    {
        return shape_ == other.shape_ && data_ == other.data_;
    }

  private:
    Shape shape_;
    std::vector<T> data_;
};

using FloatTensor = Tensor<float>;
using Int8Tensor = Tensor<std::int8_t>;
using Int32Tensor = Tensor<std::int32_t>;

}  // namespace bitwave
