/**
 * @file
 * Post-training quantization (PTQ) of floating-point tensors to Int8, plus
 * the reduced-bit-width PTQ baseline the paper compares Bit-Flip against
 * (the "Int8+PTQ" series of Fig. 6(e)-(h)).
 *
 * Quantization is symmetric (zero-point 0) as assumed by the BitWave
 * sign-magnitude datapath. Values are clamped to [-127, 127] so every
 * quantized word is representable in 8-bit sign-magnitude.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace bitwave {

/// Result of quantizing a float tensor: int8 data plus scale(s).
struct QuantizedTensor
{
    Int8Tensor values;          ///< Quantized words.
    std::vector<float> scales;  ///< One scale (per-tensor) or one per channel.
    bool per_channel = false;   ///< True when scales.size() == dim(0).

    /// Dequantize element @p i (flat index) back to float.
    float dequantize(std::int64_t i) const;

    /// Scale applied to flat element @p i.
    float scale_for(std::int64_t i) const;
};

/**
 * Symmetric per-tensor PTQ: scale = max|x| / 127.
 *
 * @param input  Float tensor.
 * @return Quantized tensor with a single scale.
 */
QuantizedTensor quantize_per_tensor(const FloatTensor &input);

/**
 * Symmetric per-channel PTQ along dimension 0 (output channels for
 * weights): scale_k = max|x_k| / 127.
 */
QuantizedTensor quantize_per_channel(const FloatTensor &input);

/**
 * Reduced-precision PTQ baseline: requantize an Int8 tensor to @p bits
 * (2..8) by dropping LSBs with round-to-nearest, then re-expanding to the
 * int8 grid (values stay multiples of 2^(8-bits)).
 *
 * This models the paper's "Int8+PTQ" comparison: cutting the same LSB
 * positions across a whole tensor, which shrinks storage by 8/bits but
 * costs accuracy faster than BCS/Bit-Flip at matched compression.
 *
 * @param input Quantized Int8 words.
 * @param bits  Target bit-width including sign, in [2, 8].
 */
Int8Tensor requantize_to_bits(const Int8Tensor &input, int bits);

/**
 * Compression ratio achieved by storing @p bits -bit words instead of
 * 8-bit words (no index overhead; PTQ is dense).
 */
double ptq_compression_ratio(int bits);

/// Root-mean-square error between two same-shaped int8 tensors.
double rms_error(const Int8Tensor &a, const Int8Tensor &b);

}  // namespace bitwave
