/**
 * @file
 * Packed bit-plane representation of Int8 tensors — the word-parallel
 * substrate behind every bit-column kernel in the repository.
 *
 * An Int8 tensor is transposed ONCE into 8 planes of uint64 words:
 * plane b holds bit b of every element's binary encoding (two's
 * complement or sign-magnitude), element e at bit (e % 64) of word
 * (e / 64). On this layout the per-group work the BitWave algorithms
 * perform element-by-element collapses to whole-word operations:
 *
 *  - a group's zero-column index is "is this 8..64-bit slice of each
 *    plane non-zero?" — eight shifted loads instead of G encodes;
 *  - a BCS payload column IS the slice, already packed weight-j-at-bit-j
 *    exactly as BcsGroup and the BCE consume it;
 *  - bit sparsity is popcount over the planes.
 *
 * This is the software mirror of the paper's hardware insight (operate
 * on bit columns, not values) and the classic SWAR packing bit-serial
 * accelerator simulators use. The scalar kernels remain available as
 * oracles; tests pin bit-identical results between the two paths.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bits.hpp"
#include "tensor/tensor.hpp"

namespace bitwave {

/// Bit-planes of one Int8 tensor in one binary representation.
struct BitPlanes
{
    Representation repr = Representation::kSignMagnitude;
    std::int64_t n = 0;      ///< Elements packed.
    std::int64_t words = 0;  ///< uint64 words per plane (= ceil(n/64)).
    /// Plane-major storage: plane b occupies words [b*words, (b+1)*words);
    /// padding lanes beyond n are zero.
    std::vector<std::uint64_t> bits;

    const std::uint64_t *plane(int b) const
    {
        return bits.data() + static_cast<std::size_t>(b) *
            static_cast<std::size_t>(words);
    }

    /**
     * Bits of plane @p b for elements [start, start+len), packed at bit 0
     * (element start+j at bit j). Requires 1 <= len <= 64 and
     * start + len <= n rounded up to the padded word — exactly the
     * payload-column word bcs_compress stores and the BCE streams.
     */
    std::uint64_t segment(int b, std::int64_t start, int len) const
    {
        const std::uint64_t *p = plane(b);
        const std::int64_t w = start >> 6;
        const int off = static_cast<int>(start & 63);
        std::uint64_t out = p[w] >> off;
        if (off + len > 64) {
            out |= p[w + 1] << (64 - off);
        }
        if (len < 64) {
            out &= (~0ULL) >> (64 - len);
        }
        return out;
    }

    /**
     * Non-zero-column index of the group [start, start+len): bit b set
     * when plane b holds at least one 1 in the range. Identical to
     * column_index() over the same elements.
     */
    std::uint8_t group_index(std::int64_t start, int len) const
    {
        std::uint8_t mask = 0;
        for (int b = 0; b < kWordBits; ++b) {
            mask |= static_cast<std::uint8_t>(
                (segment(b, start, len) != 0) << b);
        }
        return mask;
    }

    /// Resident size of the packed planes in bytes.
    std::int64_t memory_bytes() const
    {
        return static_cast<std::int64_t>(bits.size()) * 8;
    }
};

/// One-time transpose of @p tensor into bit planes of @p repr.
BitPlanes pack_bitplanes(const Int8Tensor &tensor, Representation repr);

/**
 * Column-index masks of consecutive weight groups, written to @p out in
 * group order: every row of @p row_len consecutive elements splits into
 * ceil(row_len / group_size) groups (tail groups truncated, matching the
 * implicit zero padding of the scalar kernels). Pass row_len = planes.n
 * for flat whole-tensor grouping. @p out must hold
 * rows * ceil(row_len / group_size) bytes.
 *
 * This is the shared hot loop under the bit-column statistics, the BCS
 * measure/compressor, the analytical model's cycle stats and the
 * simulator's row compression; 64-aligned layouts take a whole-word SWAR
 * path that emits up to 8 group masks per plane load.
 */
void scan_group_indexes(const BitPlanes &planes, std::int64_t row_len,
                        int group_size, std::uint8_t *out);

/// Number of masks scan_group_indexes() writes for this geometry.
std::int64_t scan_group_count(std::int64_t n, std::int64_t row_len,
                              int group_size);

/**
 * Fused scan: total non-zero columns over all groups of the geometry
 * (= the popcount sum of every group's column index) without
 * materializing the masks — the BCS size accounting in one pass.
 */
std::int64_t scan_nonzero_column_total(const BitPlanes &planes,
                                       std::int64_t row_len,
                                       int group_size);

/**
 * Fused scan: histogram of per-group ZERO-column counts (hist[z] +=
 * groups with exactly z zero columns, z in 0..8) without materializing
 * the masks — the bit-column statistics in one pass. @p hist is
 * accumulated into, not cleared.
 */
void scan_zero_column_histogram(const BitPlanes &planes,
                                std::int64_t row_len, int group_size,
                                std::int64_t hist[9]);

/**
 * Process-wide LRU cache of packed planes keyed by tensor content:
 * repeated kernels over the same weights (scenario sweeps, repeated
 * Bit-Flip preparations, stats re-runs) pack once and share the planes.
 * @p content_hash must identify the tensor bytes (pass
 * WorkloadLayer::weights_hash); 0 hashes on the fly. Capacity follows
 * BITWAVE_CACHE_ENTRIES (default 256 entries).
 */
std::shared_ptr<const BitPlanes>
shared_bitplanes(const Int8Tensor &tensor, Representation repr,
                 std::uint64_t content_hash = 0);

/// Cumulative hit/miss counters of one process-wide cache.
struct CacheCounters
{
    std::int64_t hits = 0;
    std::int64_t misses = 0;

    /// hits / (hits + misses); 0 when the cache was never touched.
    double hit_rate() const
    {
        const std::int64_t total = hits + misses;
        return total > 0 ? static_cast<double>(hits) /
                static_cast<double>(total)
                         : 0.0;
    }
};

/// Lifetime counters of the shared_bitplanes() cache — the service
/// throughput bench reports these as its cross-request reuse signal.
CacheCounters bitplane_cache_counters();

}  // namespace bitwave
