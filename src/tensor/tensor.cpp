#include "tensor/tensor.hpp"

#include <sstream>

namespace bitwave {

std::int64_t
shape_numel(const Shape &shape)
{
    std::int64_t n = 1;
    for (std::int64_t d : shape) {
        if (d < 0) {
            panic("negative dimension %lld in shape",
                  static_cast<long long>(d));
        }
        n *= d;
    }
    return n;
}

std::string
shape_to_string(const Shape &shape)
{
    std::ostringstream out;
    out << '[';
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i != 0) {
            out << ", ";
        }
        out << shape[i];
    }
    out << ']';
    return out.str();
}

}  // namespace bitwave
