#include "tensor/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"

namespace bitwave {

namespace {

std::int8_t
quantize_value(float x, float scale)
{
    if (scale <= 0.f) {
        return 0;
    }
    const float q = std::round(x / scale);
    const float clamped = std::clamp(
        q, static_cast<float>(kSignMagMin), static_cast<float>(kSignMagMax));
    return static_cast<std::int8_t>(clamped);
}

}  // namespace

float
QuantizedTensor::scale_for(std::int64_t i) const
{
    if (!per_channel) {
        return scales.empty() ? 1.f : scales[0];
    }
    const std::int64_t channels = values.dim(0);
    const std::int64_t per_chan = values.numel() / std::max<std::int64_t>(
        channels, 1);
    const std::int64_t k = per_chan > 0 ? i / per_chan : 0;
    return scales[static_cast<std::size_t>(
        std::min<std::int64_t>(k, channels - 1))];
}

float
QuantizedTensor::dequantize(std::int64_t i) const
{
    return static_cast<float>(values[i]) * scale_for(i);
}

QuantizedTensor
quantize_per_tensor(const FloatTensor &input)
{
    float max_abs = 0.f;
    for (std::int64_t i = 0; i < input.numel(); ++i) {
        max_abs = std::max(max_abs, std::abs(input[i]));
    }
    const float scale = max_abs > 0.f
        ? max_abs / static_cast<float>(kSignMagMax) : 1.f;

    QuantizedTensor out;
    out.values = Int8Tensor(input.shape());
    out.scales = {scale};
    out.per_channel = false;
    for (std::int64_t i = 0; i < input.numel(); ++i) {
        out.values[i] = quantize_value(input[i], scale);
    }
    return out;
}

QuantizedTensor
quantize_per_channel(const FloatTensor &input)
{
    if (input.rank() == 0 || input.dim(0) == 0) {
        fatal("per-channel quantization requires a non-empty dim 0");
    }
    const std::int64_t channels = input.dim(0);
    const std::int64_t per_chan = input.numel() / channels;

    QuantizedTensor out;
    out.values = Int8Tensor(input.shape());
    out.scales.resize(static_cast<std::size_t>(channels));
    out.per_channel = true;

    for (std::int64_t k = 0; k < channels; ++k) {
        float max_abs = 0.f;
        for (std::int64_t j = 0; j < per_chan; ++j) {
            max_abs = std::max(max_abs, std::abs(input[k * per_chan + j]));
        }
        const float scale = max_abs > 0.f
            ? max_abs / static_cast<float>(kSignMagMax) : 1.f;
        out.scales[static_cast<std::size_t>(k)] = scale;
        for (std::int64_t j = 0; j < per_chan; ++j) {
            out.values[k * per_chan + j] =
                quantize_value(input[k * per_chan + j], scale);
        }
    }
    return out;
}

Int8Tensor
requantize_to_bits(const Int8Tensor &input, int bits)
{
    if (bits < 2 || bits > 8) {
        fatal("requantize_to_bits: bits must be in [2, 8], got %d", bits);
    }
    Int8Tensor out(input.shape());
    if (bits == 8) {
        out = input;
        return out;
    }
    const int shift = 8 - bits;
    const int step = 1 << shift;
    const int max_code = kSignMagMax / step * step;
    for (std::int64_t i = 0; i < input.numel(); ++i) {
        const int v = input[i];
        // Round-to-nearest multiple of `step`, ties away from zero.
        int q = (std::abs(v) + step / 2) / step * step;
        q = std::min(q, max_code);
        out[i] = static_cast<std::int8_t>(v < 0 ? -q : q);
    }
    return out;
}

double
ptq_compression_ratio(int bits)
{
    if (bits <= 0) {
        fatal("ptq_compression_ratio: bits must be positive");
    }
    return 8.0 / static_cast<double>(bits);
}

double
rms_error(const Int8Tensor &a, const Int8Tensor &b)
{
    if (a.shape() != b.shape()) {
        fatal("rms_error: shape mismatch %s vs %s",
              shape_to_string(a.shape()).c_str(),
              shape_to_string(b.shape()).c_str());
    }
    if (a.numel() == 0) {
        return 0.0;
    }
    double acc = 0.0;
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(a.numel()));
}

}  // namespace bitwave
