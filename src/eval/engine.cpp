#include "eval/engine.hpp"

#include <chrono>
#include <unordered_set>
#include <utility>

#include "common/logging.hpp"
#include "model/performance.hpp"
#include "nn/traverse.hpp"
#include "sim/npu.hpp"

namespace bitwave::eval {

double
ScenarioResult::runtime_ms(const TechParams &tech) const
{
    return total_cycles / tech.frequency_hz * 1e3;
}

double
ScenarioResult::gops(const TechParams &tech) const
{
    const double seconds = total_cycles / tech.frequency_hz;
    return seconds > 0
        ? static_cast<double>(nominal_macs) * 2.0 / seconds / 1e9 : 0.0;
}

double
ScenarioResult::tops_per_watt() const
{
    return energy.total_pj > 0
        ? static_cast<double>(nominal_macs) * 2.0 / energy.total_pj : 0.0;
}

namespace {

LayerEval
from_model(const LayerResult &r)
{
    LayerEval e;
    e.layer_name = r.layer_name;
    e.su_name = r.su_name;
    e.utilization = r.utilization;
    e.compute_cycles = r.compute_cycles;
    e.dram_cycles = r.dram_cycles;
    e.total_cycles = r.total_cycles;
    e.cycles_per_group = r.cycles_per_group;
    e.energy = r.energy;
    return e;
}

LayerEval
from_sim(const LayerSimResult &r)
{
    LayerEval e;
    e.layer_name = r.layer_name;
    e.su_name = r.su_name;
    e.compute_cycles = r.cycles_decoupled;
    e.dram_cycles = r.dram_cycles;
    e.total_cycles = r.total_cycles;
    e.cycles_per_group = r.mean_columns_per_group();
    e.energy = r.energy;
    return e;
}

/// Indices selected by the scenario's layer filter (all when empty).
std::unordered_set<std::size_t>
selected_layers(const Scenario &scenario, const Workload &workload)
{
    std::unordered_set<std::size_t> sel;
    for (const auto &name : scenario.layer_filter) {
        sel.insert(workload.layer_index(name));  // fatal() on typos
    }
    return sel;
}

}  // namespace

ScenarioResult
evaluate_scenario(const Scenario &scenario, std::uint64_t rng_seed)
{
    const auto t0 = std::chrono::steady_clock::now();

    ScenarioResult out;
    out.name = scenario.name();
    out.engine = engine_name(scenario.engine);
    out.rng_seed = rng_seed;

    // Workload: the shared cached synthesis, or a private deterministic
    // one salted with the scenario stream.
    Workload owned;
    const Workload *w = nullptr;
    if (scenario.custom_workload) {
        w = scenario.custom_workload.get();
    } else if (scenario.workload_seed == kCachedWorkloadSeed) {
        w = &get_workload(scenario.workload);
    } else {
        owned = build_workload(scenario.workload, scenario.workload_seed);
        w = &owned;
    }
    out.workload = w->name;

    const auto weights = prepare_weights(scenario, *w);
    const auto sel = selected_layers(scenario, *w);

    const auto evaluate =
        [&](auto &&layer_fn) {
            for_each_layer(
                *w, weights ? weights.get() : nullptr,
                [&](std::size_t l, const WorkloadLayer &layer,
                    const Int8Tensor *wt, const LayerContext &ctx) {
                    if (!sel.empty() && sel.count(l) == 0) {
                        return;
                    }
                    LayerEval e = layer_fn(layer, wt, ctx);
                    out.total_cycles += e.total_cycles;
                    out.energy += e.energy;
                    out.nominal_macs += layer.desc.macs();
                    out.layers.push_back(std::move(e));
                });
        };

    switch (scenario.engine) {
      case EngineKind::kAnalytical: {
        out.accelerator = scenario.accel.name;
        const AcceleratorModel model(scenario.accel);
        evaluate([&](const WorkloadLayer &layer, const Int8Tensor *wt,
                     const LayerContext &ctx) {
            return from_model(model.model_layer(layer, wt, ctx));
        });
        break;
      }
      case EngineKind::kCycleSim: {
        out.accelerator = "BitWaveNPU";
        NpuConfig cfg = scenario.npu;
        cfg.act_seed = rng_seed != 0 ? rng_seed : cfg.act_seed;
        const BitWaveNpu npu(cfg);
        evaluate([&](const WorkloadLayer &layer, const Int8Tensor *wt,
                     const LayerContext &) {
            // Accounting-only execution: functional output is exercised
            // by the simulator's own tests, not by scenario sweeps.
            return from_sim(
                npu.run_layer(layer, nullptr, wt,
                              /*compute_output=*/false));
        });
        break;
      }
    }

    out.wall_seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    return out;
}

}  // namespace bitwave::eval
