#include "eval/engine.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <tuple>
#include <utility>

#include "common/hash.hpp"
#include "common/logging.hpp"
#include "common/lru.hpp"
#include "compress/bcs.hpp"
#include "compress/csr.hpp"
#include "compress/zre.hpp"
#include "model/performance.hpp"
#include "nn/traverse.hpp"
#include "sim/npu.hpp"

namespace bitwave::eval {

double
ScenarioResult::runtime_ms(const TechParams &tech) const
{
    return total_cycles / tech.frequency_hz * 1e3;
}

double
ScenarioResult::gops(const TechParams &tech) const
{
    const double seconds = total_cycles / tech.frequency_hz;
    return seconds > 0
        ? static_cast<double>(nominal_macs) * 2.0 / seconds / 1e9 : 0.0;
}

double
ScenarioResult::tops_per_watt() const
{
    return energy.total_pj > 0
        ? static_cast<double>(nominal_macs) * 2.0 / energy.total_pj : 0.0;
}

SparsityStats
ScenarioResult::merged_sparsity() const
{
    SparsityStats merged;
    for (const auto &l : layers) {
        if (l.stats) {
            merged.merge(l.stats->sparsity);
        }
    }
    return merged;
}

namespace {

LayerEval
from_model(const LayerResult &r)
{
    LayerEval e;
    e.layer_name = r.layer_name;
    e.su_name = r.su_name;
    e.utilization = r.utilization;
    e.compute_cycles = r.compute_cycles;
    e.dram_cycles = r.dram_cycles;
    e.total_cycles = r.total_cycles;
    e.cycles_per_group = r.cycles_per_group;
    e.energy = r.energy;
    return e;
}

LayerEval
from_sim(const LayerSimResult &r)
{
    LayerEval e;
    e.layer_name = r.layer_name;
    e.su_name = r.su_name;
    e.compute_cycles = r.cycles_decoupled;
    e.cycles_lockstep = r.cycles_lockstep;
    e.dram_cycles = r.dram_cycles;
    e.total_cycles = r.total_cycles;
    e.cycles_per_group = r.mean_columns_per_group();
    e.energy = r.energy;
    return e;
}

/// Build one layer's statistics record from packed bit planes (both
/// representations share the content-hash plane cache).
LayerStatsEval
build_layer_stats(const StatsSpec &spec, const Int8Tensor &w,
                  std::uint64_t weights_hash)
{
    const int group = spec.group_size;
    LayerStatsEval stats;
    const auto p2c = shared_bitplanes(
        w, Representation::kTwosComplement, weights_hash);
    const auto psm = shared_bitplanes(
        w, Representation::kSignMagnitude, weights_hash);
    stats.sparsity = compute_sparsity(*p2c, *psm);
    if (spec.column_stats) {
        stats.columns_2c = analyze_bit_columns(*p2c, group);
        stats.columns_sm = analyze_bit_columns(*psm, group);
    }
    stats.weight_bits = w.numel() * 8;
    if (spec.reference_codecs) {
        const auto zre = zre_compress(w);
        stats.zre_bits = zre.compressed_bits();
        stats.zre_ideal_bits = zre.payload_bits();
        // Word-parallel CSR over the already-packed 2C planes.
        const auto csr = csr_compress(*p2c, w, w.dim(0));
        stats.csr_bits = csr.compressed_bits();
        stats.csr_ideal_bits = csr.payload_bits();
    }
    if (spec.bcs) {
        const auto bcs_sm = bcs_measure(*psm, group);
        stats.bcs_sm_bits = bcs_sm.compressed_bits();
        stats.bcs_sm_ideal_bits = bcs_sm.payload_bits();
        const auto bcs_2c = bcs_measure(*p2c, group);
        stats.bcs_2c_bits = bcs_2c.compressed_bits();
        stats.bcs_2c_ideal_bits = bcs_2c.payload_bits();
    }
    return stats;
}

/// The kStats engine: weight sparsity and (opt-in) codec statistics,
/// memoized process-wide by (tensor content, StatsSpec) — repeated
/// stats sweeps over the same weights pay only a map lookup.
LayerEval
layer_stats(const Scenario &scenario, const WorkloadLayer &layer,
            const Int8Tensor *weights, std::uint64_t weights_hash)
{
    const Int8Tensor &w = weights != nullptr ? *weights : layer.weights;
    const StatsSpec &spec = scenario.stats;

    if (weights == nullptr) {
        weights_hash = layer.weights_hash;
    }
    if (weights_hash == 0) {
        weights_hash = fnv1a(w.data(),
                             static_cast<std::size_t>(w.numel()));
    }
    std::uint64_t key = hash_combine(
        weights_hash, static_cast<std::uint64_t>(spec.group_size));
    key = hash_combine(
        key,
        static_cast<std::uint64_t>((spec.column_stats ? 1 : 0) |
                                   (spec.bcs ? 2 : 0) |
                                   (spec.reference_codecs ? 4 : 0)));
    // The CSR record depends on the leading dimension, so the full
    // shape is part of the identity, not just the byte content.
    key = hash_combine(key, static_cast<std::uint64_t>(w.rank()));
    for (const std::int64_t d : w.shape()) {
        key = hash_combine(key, static_cast<std::uint64_t>(d));
    }

    static ShardedLruCache<std::uint64_t, LayerStatsEval> memo(
        cache_capacity_from_env(256), 0, "stats_memo");
    bool was_hit = false;
    auto stats = memo.get_or_build(
        key, [&] { return build_layer_stats(spec, w, weights_hash); },
        &was_hit);

    LayerEval e;
    e.layer_name = layer.desc.name;
    e.cycles_per_group = stats->columns_sm.mean_nonzero_columns();
    e.stats = std::move(stats);
    e.stats_from_memo = was_hit;
    return e;
}

}  // namespace

std::uint64_t
layer_rng_seed(std::uint64_t scenario_seed, std::size_t layer_index)
{
    return hash_combine(scenario_seed,
                        static_cast<std::uint64_t>(layer_index) + 1);
}

ScenarioPrep
prepare_scenario(const Scenario &scenario)
{
    ScenarioPrep prep;

    // Workload: the shared cached synthesis, or a private deterministic
    // one salted with the scenario's own seed.
    if (scenario.custom_workload) {
        prep.owned = scenario.custom_workload;
        prep.workload = prep.owned.get();
    } else if (scenario.workload_seed == kCachedWorkloadSeed) {
        // Hold the shared instance through the prep keepalive so the
        // LRU can evict it once the last evaluation finishes.
        prep.owned = shared_workload(scenario.workload);
        prep.workload = prep.owned.get();
    } else {
        prep.owned = std::make_shared<Workload>(
            build_workload(scenario.workload, scenario.workload_seed));
        prep.workload = prep.owned.get();
    }

    // Layer selection: the filter's indices in workload order.
    if (scenario.layer_filter.empty()) {
        prep.layers.resize(prep.workload->layers.size());
        for (std::size_t i = 0; i < prep.layers.size(); ++i) {
            prep.layers[i] = i;
        }
    } else {
        for (const auto &name : scenario.layer_filter) {
            prep.layers.push_back(
                prep.workload->layer_index(name));  // fatal() on typos
        }
        std::sort(prep.layers.begin(), prep.layers.end());
        prep.layers.erase(
            std::unique(prep.layers.begin(), prep.layers.end()),
            prep.layers.end());
    }

    prep.weights = alias_weight_override(scenario, *prep.workload);
    prep.weights.resize(prep.workload->layers.size());
    prep.flip.assign(prep.workload->layers.size(), 0);
    if (!scenario.weight_override) {
        // Record which selected layers flip; the tensors themselves are
        // resolved per layer during evaluation so the work shards.
        for (std::size_t i : selected_bitflip_layers(
                 *prep.workload, scenario.bitflip, &prep.layers)) {
            prep.flip[i] = 1;
        }
    }
    return prep;
}

std::vector<LayerEval>
evaluate_layer_range(const Scenario &scenario, const ScenarioPrep &prep,
                     std::uint64_t rng_seed, std::size_t begin,
                     std::size_t end)
{
    const Workload &w = *prep.workload;
    std::vector<LayerEval> out;
    out.reserve(end - begin);

    const auto layer_inputs = [&](std::size_t sel) {
        const std::size_t l = prep.layers[sel];
        LayerContext ctx;
        ctx.first_layer = l == 0;
        ctx.last_layer = l + 1 == w.layers.size();
        std::shared_ptr<const Int8Tensor> prepared = prep.weights[l];
        // Content identity of the evaluated tensor when derivable
        // without re-hashing: flipped twins have a hash that is a pure
        // function of (original hash, flip spec). Explicit overrides
        // stay 0 (downstream hashes on the fly).
        std::uint64_t prepared_hash = 0;
        if (!prepared && prep.flip[l]) {
            prepared = cached_bitflip(w.layers[l].weights,
                                      w.layers[l].weights_hash,
                                      scenario.bitflip.group_size,
                                      scenario.bitflip.zero_columns);
            prepared_hash = flipped_weights_hash(
                w.layers[l].weights_hash, scenario.bitflip.group_size,
                scenario.bitflip.zero_columns,
                w.layers[l].weights.numel());
        }
        return std::tuple(std::cref(w.layers[l]), std::move(prepared),
                          ctx, l, prepared_hash);
    };

    switch (scenario.engine) {
      case EngineKind::kAnalytical: {
        const AcceleratorModel model(scenario.accel);
        for (std::size_t s = begin; s < end; ++s) {
            const auto [layer, weights, ctx, l, whash] = layer_inputs(s);
            (void)l;
            out.push_back(from_model(
                model.model_layer(layer, weights.get(), ctx, whash)));
        }
        break;
      }
      case EngineKind::kCycleSim: {
        for (std::size_t s = begin; s < end; ++s) {
            const auto [layer, weights, ctx, l, whash] = layer_inputs(s);
            // Each layer draws from its own (scenario, layer) stream so
            // sharded evaluation is bit-identical to serial.
            NpuConfig cfg = scenario.npu;
            cfg.act_seed = rng_seed != 0 ? layer_rng_seed(rng_seed, l)
                                         : cfg.act_seed;
            const BitWaveNpu npu(cfg);
            // Accounting-only execution: functional output is exercised
            // by the simulator's own tests, not by scenario sweeps.
            out.push_back(from_sim(
                npu.run_layer(layer, nullptr, weights.get(),
                              /*compute_output=*/false, ctx, whash)));
        }
        break;
      }
      case EngineKind::kStats: {
        for (std::size_t s = begin; s < end; ++s) {
            const auto [layer, weights, ctx, l, whash] = layer_inputs(s);
            (void)ctx;
            (void)l;
            out.push_back(
                layer_stats(scenario, layer, weights.get(), whash));
        }
        break;
      }
    }
    return out;
}

ScenarioResult
finalize_scenario(const Scenario &scenario, const ScenarioPrep &prep,
                  std::uint64_t rng_seed, std::vector<LayerEval> layers)
{
    if (layers.size() != prep.layers.size()) {
        fatal("finalize_scenario: %zu layer records for %zu selected",
              layers.size(), prep.layers.size());
    }
    ScenarioResult out;
    out.name = scenario.name();
    out.engine = engine_name(scenario.engine);
    out.rng_seed = rng_seed;
    out.workload = prep.workload->name;
    switch (scenario.engine) {
      case EngineKind::kAnalytical:
        out.accelerator = scenario.accel.name;
        break;
      case EngineKind::kCycleSim:
        out.accelerator = "BitWaveNPU";
        break;
      case EngineKind::kStats:
        out.accelerator = "stats";
        break;
    }
    out.layers = std::move(layers);
    for (std::size_t s = 0; s < out.layers.size(); ++s) {
        out.total_cycles += out.layers[s].total_cycles;
        out.energy += out.layers[s].energy;
        out.nominal_macs +=
            prep.workload->layers[prep.layers[s]].desc.macs();
        out.stats_memo_hits += out.layers[s].stats_from_memo ? 1 : 0;
    }
    return out;
}

ScenarioResult
evaluate_scenario(const Scenario &scenario, std::uint64_t rng_seed)
{
    const auto t0 = std::chrono::steady_clock::now();
    const ScenarioPrep prep = prepare_scenario(scenario);
    ScenarioResult out = finalize_scenario(
        scenario, prep, rng_seed,
        evaluate_layer_range(scenario, prep, rng_seed, 0,
                             prep.layers.size()));
    out.wall_seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    return out;
}

}  // namespace bitwave::eval
