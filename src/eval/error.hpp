/**
 * @file
 * Structured evaluation errors crossing the service boundary. The
 * taxonomy (ErrorKind) lives in common/fault.hpp so the low-level
 * layers can classify their own failures; this header gives the eval/
 * and service/ layers their named exception type. EvalError is what a
 * failed EvalTicket carries: the kind drives the service's healing
 * decisions (retry kTransient, quarantine repeat offenders, rebuild
 * kCorruption artifacts, fail kInvalid/kInternal fast).
 */
#pragma once

#include "common/fault.hpp"

namespace bitwave {
namespace eval {

/// Classified evaluation failure; `kind()` is the retry/quarantine
/// decision input. FaultError (from armed fault points or real
/// detection) converts 1:1 — same taxonomy, service-facing name.
using EvalError = ::bitwave::FaultError;

using ::bitwave::error_kind_name;
using ::bitwave::ErrorKind;

}  // namespace eval
}  // namespace bitwave
