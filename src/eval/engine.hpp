/**
 * @file
 * The shared scenario-evaluation core: the evaluation engines — the
 * analytical accelerator model, the cycle-level NPU simulator, and the
 * weight-statistics engine — plug into one workload traversal
 * (nn/traverse.hpp) and one energy/latency pricing scheme
 * (energy/pricing.hpp) and produce the same unified per-layer /
 * per-workload records, so results from either engine are directly
 * comparable (the Section V-B validation) and every consumer (benches,
 * examples, the deployment pipeline) reads one result type.
 *
 * Evaluation is split into three phases so the ScenarioRunner can shard
 * one scenario's layers across its worker pool:
 *
 *   prepare_scenario()     resolve workload + weights + layer selection
 *   evaluate_layer_range() evaluate a contiguous slice of the selection
 *   finalize_scenario()    stitch slices into one ScenarioResult
 *
 * Every layer is evaluated independently from a seed stream derived from
 * (scenario seed, layer index), and finalize accumulates totals in layer
 * order — results are bit-identical no matter how the slices were cut or
 * which threads ran them.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "energy/pricing.hpp"
#include "energy/tech.hpp"
#include "eval/scenario.hpp"
#include "sparsity/bitcolumn.hpp"
#include "sparsity/stats.hpp"

namespace bitwave::eval {

/// Per-layer output of the kStats engine: weight sparsity statistics
/// and (opt-in) codec bit counts at the scenario's stats group size.
struct LayerStatsEval
{
    SparsityStats sparsity;     ///< Value/bit sparsity, both reprs.
    BitColumnStats columns_2c;  ///< Column stats, two's complement.
    BitColumnStats columns_sm;  ///< Column stats, sign-magnitude.
    std::int64_t weight_bits = 0;  ///< Uncompressed weight volume.

    // Codec results (per the StatsSpec codec flags; 0 when disabled).
    // "Ideal" is the payload without index/bookkeeping overhead.
    std::int64_t zre_bits = 0, zre_ideal_bits = 0;
    std::int64_t csr_bits = 0, csr_ideal_bits = 0;
    std::int64_t bcs_sm_bits = 0, bcs_sm_ideal_bits = 0;
    std::int64_t bcs_2c_bits = 0, bcs_2c_ideal_bits = 0;
};

/// Unified per-layer record produced by the engines.
struct LayerEval
{
    std::string layer_name;
    std::string su_name;         ///< Selected dataflow.
    double utilization = 0.0;    ///< Spatial PE utilization (model only).
    double compute_cycles = 0.0; ///< Array occupancy (sim: decoupled).
    /// Lane-synchronized array occupancy (sim only; the ablation knob).
    double cycles_lockstep = 0.0;
    double dram_cycles = 0.0;    ///< Off-chip channel occupancy.
    double total_cycles = 0.0;   ///< Eq. (5) composition.
    /// Mean effective bit-column cycles per group pass.
    double cycles_per_group = 0.0;
    EnergyBreakdown energy;      ///< Shared Eq. (4) pricing.
    /// Statistics record (kStats engine only, shared not copied).
    std::shared_ptr<const LayerStatsEval> stats;
    /// kStats only: the record came from the process-wide stats memo.
    bool stats_from_memo = false;
};

/// Unified workload-level result of one scenario.
struct ScenarioResult
{
    std::string name;         ///< Scenario display name.
    std::string engine;       ///< "model", "sim", or "stats".
    std::string accelerator;
    std::string workload;
    std::uint64_t rng_seed = 0;  ///< Deterministic per-scenario seed.

    std::vector<LayerEval> layers;
    double total_cycles = 0.0;
    EnergyBreakdown energy;
    std::int64_t nominal_macs = 0;  ///< Dense MACs of evaluated layers.
    double wall_seconds = 0.0;      ///< Host-side evaluation cost.
    /// Layers whose kStats record was served by the content-hash stats
    /// memo (0 for the other engines): warm stats sweeps hit on every
    /// layer and skip the tensor scans entirely. A cache diagnostic
    /// like wall_seconds — scheduling-dependent for concurrent
    /// identical scenarios, and excluded from the determinism contract.
    std::int64_t stats_memo_hits = 0;

    /// Wall-clock at the tech frequency, in ms.
    double runtime_ms(const TechParams &tech = default_tech()) const;
    /// Effective throughput in GOPS (2 ops per MAC).
    double gops(const TechParams &tech = default_tech()) const;
    /// Energy efficiency in TOPS/W over nominal (useful) operations.
    double tops_per_watt() const;

    /// Merged kStats sparsity statistics of the evaluated layers.
    SparsityStats merged_sparsity() const;
};

/**
 * Fully resolved inputs of one scenario evaluation. Immutable once
 * built; layer shards evaluated on different threads share one prep.
 */
struct ScenarioPrep
{
    /// Keepalive for privately synthesized / custom workloads.
    std::shared_ptr<const Workload> owned;
    const Workload *workload = nullptr;
    /// Per-layer explicit weights (the scenario's weight_override,
    /// aliased not copied); null = the layer's own tensor, possibly
    /// Bit-Flipped per `flip` below.
    std::vector<std::shared_ptr<const Int8Tensor>> weights;
    /// Per-layer flag: evaluate this layer on its Bit-Flipped twin
    /// (resolved lazily through the preparation cache by whichever
    /// shard reaches the layer first — heavy flips parallelize with
    /// the evaluation instead of serializing preparation).
    std::vector<std::uint8_t> flip;
    /// Selected layer indices, ascending (all layers when no filter).
    std::vector<std::size_t> layers;
};

/// Resolve a scenario's workload, weight preparation and layer
/// selection. Thread-safe; hits the synthesis and Bit-Flip caches.
ScenarioPrep prepare_scenario(const Scenario &scenario);

/// Seed of one layer's evaluation stream within a scenario stream.
std::uint64_t layer_rng_seed(std::uint64_t scenario_seed,
                             std::size_t layer_index);

/**
 * Evaluate the slice [begin, end) of @p prep.layers and return its
 * LayerEval records in selection order. Pure function of
 * (scenario, prep, rng_seed, slice) — safe to call concurrently for
 * disjoint slices of the same prep.
 */
std::vector<LayerEval> evaluate_layer_range(const Scenario &scenario,
                                            const ScenarioPrep &prep,
                                            std::uint64_t rng_seed,
                                            std::size_t begin,
                                            std::size_t end);

/**
 * Assemble per-layer records (in selection order, e.g. concatenated
 * slices) into the scenario's result. Totals accumulate in layer order,
 * so the result is bit-identical however the slices were cut.
 */
ScenarioResult finalize_scenario(const Scenario &scenario,
                                 const ScenarioPrep &prep,
                                 std::uint64_t rng_seed,
                                 std::vector<LayerEval> layers);

/**
 * Evaluate one scenario synchronously (prepare + evaluate + finalize).
 *
 * The ScenarioRunner shards this pipeline over its worker threads;
 * single evaluations call it directly. @p rng_seed seeds every
 * stochastic component of the evaluation (private workload synthesis
 * salt, the simulator's synthetic activations) so results depend only on
 * the (scenario, seed) pair — never on scheduling.
 */
ScenarioResult evaluate_scenario(const Scenario &scenario,
                                 std::uint64_t rng_seed = 0);

}  // namespace bitwave::eval
