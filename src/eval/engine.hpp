/**
 * @file
 * The shared scenario-evaluation core: both evaluation engines — the
 * analytical accelerator model and the cycle-level NPU simulator — plug
 * into one workload traversal (nn/traverse.hpp) and one energy/latency
 * pricing scheme (energy/pricing.hpp) and produce the same unified
 * per-layer / per-workload records, so results from either engine are
 * directly comparable (the Section V-B validation) and every consumer
 * (benches, examples, the deployment pipeline) reads one result type.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "energy/pricing.hpp"
#include "energy/tech.hpp"
#include "eval/scenario.hpp"

namespace bitwave::eval {

/// Unified per-layer record produced by both engines.
struct LayerEval
{
    std::string layer_name;
    std::string su_name;         ///< Selected dataflow.
    double utilization = 0.0;    ///< Spatial PE utilization (model only).
    double compute_cycles = 0.0; ///< Array occupancy (sim: decoupled).
    double dram_cycles = 0.0;    ///< Off-chip channel occupancy.
    double total_cycles = 0.0;   ///< Eq. (5) composition.
    /// Mean effective bit-column cycles per group pass.
    double cycles_per_group = 0.0;
    EnergyBreakdown energy;      ///< Shared Eq. (4) pricing.
};

/// Unified workload-level result of one scenario.
struct ScenarioResult
{
    std::string name;         ///< Scenario display name.
    std::string engine;       ///< "model" or "sim".
    std::string accelerator;
    std::string workload;
    std::uint64_t rng_seed = 0;  ///< Deterministic per-scenario seed.

    std::vector<LayerEval> layers;
    double total_cycles = 0.0;
    EnergyBreakdown energy;
    std::int64_t nominal_macs = 0;  ///< Dense MACs of evaluated layers.
    double wall_seconds = 0.0;      ///< Host-side evaluation cost.

    /// Wall-clock at the tech frequency, in ms.
    double runtime_ms(const TechParams &tech = default_tech()) const;
    /// Effective throughput in GOPS (2 ops per MAC).
    double gops(const TechParams &tech = default_tech()) const;
    /// Energy efficiency in TOPS/W over nominal (useful) operations.
    double tops_per_watt() const;
};

/**
 * Evaluate one scenario synchronously.
 *
 * The ScenarioRunner calls this from its worker threads; single
 * evaluations may call it directly. @p rng_seed seeds every stochastic
 * component of the evaluation (private workload synthesis salt, the
 * simulator's synthetic activations) so results depend only on the
 * (scenario, seed) pair — never on scheduling.
 */
ScenarioResult evaluate_scenario(const Scenario &scenario,
                                 std::uint64_t rng_seed = 0);

}  // namespace bitwave::eval
