/**
 * @file
 * Scenario = one point of the evaluation space: an accelerator
 * configuration x a benchmark workload x weight-preparation options
 * (Bit-Flip or explicit overrides) x the engine that evaluates it
 * (analytical model or cycle-level simulator).
 *
 * Every sweep in the repository — the paper figures, the SOTA table, the
 * shootout example — is a list of Scenarios handed to the
 * eval::ScenarioRunner; adding a new combination is one more entry in
 * that list.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/accelerator.hpp"
#include "nn/workloads.hpp"
#include "sim/npu.hpp"
#include "tensor/tensor.hpp"

namespace bitwave::eval {

/// Which implementation evaluates the scenario.
enum class EngineKind {
    kAnalytical,  ///< Section V-B Sparseloop-style model.
    kCycleSim,    ///< Fig. 11 cycle-level NPU simulator.
};

/// Display name ("model", "sim").
const char *engine_name(EngineKind kind);

/// How a scenario prepares its weights before evaluation.
struct BitflipSpec
{
    enum class Mode {
        kNone,         ///< Use the workload's weights as-is.
        kUniform,      ///< Bit-Flip every layer to the same target.
        kHeavyLayers,  ///< Flip only the weight-heaviest layers covering
                       ///< `weight_share` of the parameters (Fig. 6 e-h).
    };
    Mode mode = Mode::kNone;
    int group_size = 16;
    int zero_columns = 4;
    double weight_share = 0.8;  ///< Only for kHeavyLayers.
};

/// Seed sentinel: share the process-wide cached workload synthesis.
inline constexpr std::uint64_t kCachedWorkloadSeed = 0x5eed;

/// One evaluation scenario.
struct Scenario
{
    /// Optional display label; name() derives one when empty.
    std::string label;

    EngineKind engine = EngineKind::kAnalytical;
    /// Accelerator under the analytical model.
    AcceleratorConfig accel = make_bitwave(BitWaveVariant::kDfSm);
    /// NPU instance under the cycle-level simulator.
    NpuConfig npu;

    WorkloadId workload = WorkloadId::kResNet18;
    /// kCachedWorkloadSeed shares the cached synthesis; any other value
    /// synthesizes a private workload deterministically from that seed.
    std::uint64_t workload_seed = kCachedWorkloadSeed;
    /// Explicit workload object (e.g. a user-built custom network);
    /// takes precedence over `workload`/`workload_seed`.
    std::shared_ptr<const Workload> custom_workload;

    BitflipSpec bitflip;
    /// Explicit per-layer weight replacement (e.g. from a Bit-Flip
    /// search); takes precedence over `bitflip`.
    std::shared_ptr<const std::vector<Int8Tensor>> weight_override;

    /// Evaluate only these layers (by name); empty = whole network.
    std::vector<std::string> layer_filter;

    /// Extra salt for the scenario's deterministic RNG stream.
    std::uint64_t seed = 0;

    /// Derived display name: "<accel>/<workload>[+bf...][ (sim)]".
    std::string name() const;
};

/**
 * Deterministic RNG seed of one scenario in a batch: a splitmix64 mix of
 * the scenario's own salt, its batch index and its workload — a pure
 * function of the batch content, never of thread scheduling.
 */
std::uint64_t scenario_rng_seed(const Scenario &scenario,
                                std::size_t index);

/// Bit-Flip every layer of @p w to a uniform (group, zero-column) target.
std::vector<Int8Tensor> flip_workload(const Workload &w, int group,
                                      int zero_cols);

/// Bit-Flip only the weight-heaviest layers covering @p weight_share of
/// the parameters (the paper's Fig. 6(e)-(h) protocol).
std::vector<Int8Tensor> flip_heavy_layers(const Workload &w,
                                          double weight_share, int group,
                                          int zero_cols);

/// Weights a scenario evaluates: the explicit override, freshly
/// Bit-Flipped tensors per the spec, or nullptr — meaning "use the
/// workload's own weights" with no copy made.
std::shared_ptr<const std::vector<Int8Tensor>>
prepare_weights(const Scenario &scenario, const Workload &workload);

}  // namespace bitwave::eval
