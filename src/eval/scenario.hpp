/**
 * @file
 * Scenario = one point of the evaluation space: an accelerator
 * configuration x a benchmark workload x weight-preparation options
 * (Bit-Flip or explicit overrides) x the engine that evaluates it
 * (analytical model or cycle-level simulator).
 *
 * Every sweep in the repository — the paper figures, the SOTA table, the
 * shootout example — is a list of Scenarios handed to the
 * eval::ScenarioRunner; adding a new combination is one more entry in
 * that list.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/accelerator.hpp"
#include "nn/workloads.hpp"
#include "sim/npu.hpp"
#include "tensor/tensor.hpp"

namespace bitwave::eval {

/// Which implementation evaluates the scenario.
enum class EngineKind {
    kAnalytical,  ///< Section V-B Sparseloop-style model.
    kCycleSim,    ///< Fig. 11 cycle-level NPU simulator.
    kStats,       ///< Weight sparsity / compression statistics only.
};

/// Display name ("model", "sim", "stats").
const char *engine_name(EngineKind kind);

/// How a scenario prepares its weights before evaluation.
struct BitflipSpec
{
    enum class Mode {
        kNone,         ///< Use the workload's weights as-is.
        kUniform,      ///< Bit-Flip every layer to the same target.
        kHeavyLayers,  ///< Flip only the weight-heaviest layers covering
                       ///< `weight_share` of the parameters (Fig. 6 e-h).
    };
    Mode mode = Mode::kNone;
    int group_size = 16;
    int zero_columns = 4;
    double weight_share = 0.8;  ///< Only for kHeavyLayers.
};

/// What the kStats engine computes per layer (sparsity statistics are
/// always derived; codec bit counts are opt-in per codec family — they
/// dominate the cost on BERT-class tensors, so benches enable only
/// what they read).
struct StatsSpec
{
    /// BCS group size the column statistics and compressor use.
    int group_size = 16;
    /// Bit-column statistics (both representations) at `group_size`.
    /// Scenarios that only read value/bit sparsity turn this off and
    /// skip two full tensor scans per layer.
    bool column_stats = true;
    /// Measure BCS storage (both representations) at `group_size`.
    bool bcs = false;
    /// Run the reference ZRE / CSR codecs and record their bit counts.
    bool reference_codecs = false;
};

/// Seed sentinel: share the process-wide cached workload synthesis.
inline constexpr std::uint64_t kCachedWorkloadSeed = 0x5eed;

/// One evaluation scenario.
struct Scenario
{
    /// Optional display label; name() derives one when empty.
    std::string label;

    EngineKind engine = EngineKind::kAnalytical;
    /// Accelerator under the analytical model.
    AcceleratorConfig accel = make_bitwave(BitWaveVariant::kDfSm);
    /// NPU instance under the cycle-level simulator.
    NpuConfig npu;

    WorkloadId workload = WorkloadId::kResNet18;
    /// kCachedWorkloadSeed shares the cached synthesis; any other value
    /// synthesizes a private workload deterministically from that seed.
    std::uint64_t workload_seed = kCachedWorkloadSeed;
    /// Explicit workload object (e.g. a user-built custom network);
    /// takes precedence over `workload`/`workload_seed`.
    std::shared_ptr<const Workload> custom_workload;

    BitflipSpec bitflip;
    /// Explicit per-layer weight replacement (e.g. from a Bit-Flip
    /// search); takes precedence over `bitflip`.
    std::shared_ptr<const std::vector<Int8Tensor>> weight_override;

    /// Statistics configuration (kStats engine only).
    StatsSpec stats;

    /// Evaluate only these layers (by name); empty = whole network.
    std::vector<std::string> layer_filter;

    /// Extra salt for the scenario's deterministic RNG stream.
    std::uint64_t seed = 0;

    /// Derived display name: "<accel>/<workload>[+bf...][ (sim)]".
    std::string name() const;
};

/**
 * Deterministic RNG seed of one scenario in a batch: a splitmix64 mix of
 * the scenario's own salt, its batch index and its workload — a pure
 * function of the batch content, never of thread scheduling.
 */
std::uint64_t scenario_rng_seed(const Scenario &scenario,
                                std::size_t index);

/**
 * Content identity of a scenario: a hash over every field that can
 * affect its evaluation result — label (the result carries the name),
 * engine, accelerator and NPU configuration, workload selection, flip
 * spec, stats spec, layer filter and seed. Two scenarios with equal
 * fingerprints evaluate to bit-identical results, so the evaluation
 * service deduplicates in-flight requests by this key and shares one
 * evaluation across N submitters.
 *
 * Pointer-held parts: `custom_workload` contributes its content_hash;
 * `weight_override` contributes the tensors' bytes via their per-layer
 * hashes. Collisions are the usual 64-bit-hash caveat and only affect
 * *dedup* (two requests sharing a result), never a single request's own
 * result.
 */
std::uint64_t scenario_fingerprint(const Scenario &scenario);

/// Bit-Flip only the weight-heaviest layers covering @p weight_share of
/// the parameters (the paper's Fig. 6(e)-(h) protocol).
std::vector<Int8Tensor> flip_heavy_layers(const Workload &w,
                                          double weight_share, int group,
                                          int zero_cols);

/**
 * Layer indices a Bit-Flip spec would rewrite: every layer for kUniform,
 * the weight-heaviest layers covering `weight_share` of the parameters
 * for kHeavyLayers (the Fig. 6(e)-(h) protocol), none for kNone.
 */
std::vector<std::size_t> bitflip_layer_set(const Workload &workload,
                                           const BitflipSpec &spec);

/// bitflip_layer_set() intersected with an optional ascending layer
/// selection — the layers a (possibly filtered) scenario actually flips.
std::vector<std::size_t>
selected_bitflip_layers(const Workload &workload, const BitflipSpec &spec,
                        const std::vector<std::size_t> *selection);

/**
 * Validate a scenario's explicit weight_override arity (fatal on
 * mismatch) and alias its tensors per layer, copy-free. Empty when the
 * scenario has no override.
 */
std::vector<std::shared_ptr<const Int8Tensor>>
alias_weight_override(const Scenario &scenario, const Workload &workload);

/**
 * Deterministic content identity of the Bit-Flipped twin of a tensor
 * whose own content identity is @p weights_hash: the flip is a pure
 * function of (content, group, zero_cols), so this derived hash lets
 * the downstream content-keyed caches (bit planes, stats memo) identify
 * the prepared tensor without re-hashing its bytes. Also the Bit-Flip
 * preparation cache's own key. Returns 0 when @p weights_hash is 0
 * (unknown content).
 */
std::uint64_t flipped_weights_hash(std::uint64_t weights_hash, int group,
                                   int zero_cols, std::int64_t numel);

/**
 * Process-wide content-hash cache of Bit-Flip weight preparation: the
 * flipped twin of one weight tensor under one (group, zero-column)
 * target. Repeated (workload, flip-spec) pairs across scenarios and
 * benches share one prepared tensor; concurrent first requests build it
 * exactly once. @p weights_hash must identify the tensor contents (pass
 * WorkloadLayer::weights_hash, or 0 to hash on the fly). A zero-column
 * target of 0 is the identity — returns null, meaning "use the tensor
 * as-is".
 */
std::shared_ptr<const Int8Tensor>
cached_bitflip(const Int8Tensor &weights, std::uint64_t weights_hash,
               int group, int zero_cols);

/**
 * Heavy-layer Bit-Flip preparation of a whole workload through the
 * per-layer cache (the Fig. 13/15/17 protocol). Entries are null for
 * layers the spec leaves untouched — evaluate those with the workload's
 * own tensors.
 */
std::vector<std::shared_ptr<const Int8Tensor>>
cached_flip_heavy_layers(const Workload &w, double weight_share, int group,
                         int zero_cols);

/**
 * Weights a scenario evaluates, one entry per workload layer: the
 * explicit override, Bit-Flipped tensors per the spec (shared through
 * the process-wide preparation cache), or null entries meaning "use the
 * workload's own weights" with no copy made. When @p selection is
 * non-null, only the listed layer indices are prepared — filtered
 * scenarios never pay for flipping layers they skip.
 */
std::vector<std::shared_ptr<const Int8Tensor>>
prepare_weights(const Scenario &scenario, const Workload &workload,
                const std::vector<std::size_t> *selection = nullptr);

}  // namespace bitwave::eval
