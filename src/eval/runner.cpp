#include "eval/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "common/fault.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "common/worksteal.hpp"

namespace bitwave::eval {

namespace {

double
seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
}

/// Registry handles, resolved once: the runner mirrors its per-batch
/// report counters into runner.* so a metrics snapshot sees scheduler
/// behavior without holding a RunnerReport.
struct RunnerMetrics
{
    metrics::Counter &batches = metrics::counter("runner.batches");
    metrics::Counter &chunks = metrics::counter("runner.chunks");
    metrics::Counter &steals = metrics::counter("runner.steals");
    metrics::Histogram &chunk_ns = metrics::histogram("runner.chunk_ns");
    metrics::Histogram &batch_wall_ns =
        metrics::histogram("runner.batch_wall_ns");
};

RunnerMetrics &
runner_metrics()
{
    static RunnerMetrics m;
    return m;
}

/**
 * The batch's flat evaluation-unit space: unit u is one selected layer
 * of one scenario, scenarios laid out contiguously in batch order.
 * Chunk boundaries are free to land anywhere — the executor walks the
 * per-scenario sub-ranges of a chunk, and every layer evaluates from
 * its own (scenario, layer) stream, so the cut is pure scheduling.
 */
struct UnitSpace
{
    std::vector<std::size_t> offsets;  ///< Size n+1; scenario i owns
                                       ///< units [offsets[i], offsets[i+1]).

    std::size_t total() const { return offsets.back(); }

    /// Scenario owning @p unit (offsets is sorted; the hot path is a
    /// cached linear walk from the previous hit inside the executor).
    std::size_t scenario_of(std::size_t unit) const
    {
        const auto it = std::upper_bound(offsets.begin(), offsets.end(),
                                         unit);
        return static_cast<std::size_t>(it - offsets.begin()) - 1;
    }
};

}  // namespace

ScenarioRunner::ScenarioRunner(RunnerOptions options) : options_(options)
{
}

int
ScenarioRunner::effective_threads(std::size_t work_items) const
{
    if (options_.threads > 0) {
        return static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(options_.threads),
            std::max<std::size_t>(work_items, 1)));
    }
    // 0 = hardware concurrency, overridable via BITWAVE_THREADS.
    return parallel_threads(std::max<std::size_t>(work_items, 1));
}

std::vector<ScenarioResult>
ScenarioRunner::run(const std::vector<Scenario> &scenarios,
                    RunnerReport *report) const
{
    return run_seeded(scenarios, {}, report);
}

std::vector<ScenarioResult>
ScenarioRunner::run_seeded(const std::vector<Scenario> &scenarios,
                           const std::vector<std::uint64_t> &seed_overrides,
                           RunnerReport *report) const
{
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t n = scenarios.size();
    if (!seed_overrides.empty() && seed_overrides.size() != n) {
        panic("run_seeded: %zu seeds for %zu scenarios",
              seed_overrides.size(), n);
    }
    const std::atomic<bool> *cancel = options_.cancel;
    const auto check_cancel = [cancel] {
        if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
            throw BatchCancelled();
        }
    };
    check_cancel();

    // Resolve shared workloads up front, from this (un-nested) thread:
    // per-layer synthesis streams only fan out when the build is not
    // already inside a worker frame, so a cold BERT-Base synthesizes
    // on all cores here instead of on one worker inside Phase A.
    {
        std::vector<WorkloadId> distinct;
        for (const auto &s : scenarios) {
            if (!s.custom_workload &&
                s.workload_seed == kCachedWorkloadSeed &&
                std::find(distinct.begin(), distinct.end(), s.workload) ==
                    distinct.end()) {
                distinct.push_back(s.workload);
            }
        }
        for (WorkloadId id : distinct) {
            shared_workload(id);  // warm the LRU; preps re-fetch cheaply
        }
    }

    // Phase A — prepare every scenario (workload resolution, Bit-Flip
    // preparation, layer selection). Preparation of different scenarios
    // parallelizes; the synthesis and flip caches deduplicate shared
    // work across them.
    std::vector<ScenarioPrep> preps(n);
    std::vector<std::uint64_t> seeds(n);
    std::vector<double> prep_seconds(n, 0.0);
    const int prep_threads = effective_threads(n);
    parallel_for(n, [&](std::size_t i) {
        check_cancel();
        trace::Span span("runner.prepare", "runner");
        span.arg("scenario", i);
        const auto p0 = std::chrono::steady_clock::now();
        seeds[i] = seed_overrides.empty()
            ? scenario_rng_seed(scenarios[i], i)
            : seed_overrides[i];
        preps[i] = prepare_scenario(scenarios[i]);
        prep_seconds[i] = seconds_since(p0);
    }, prep_threads);

    // Phase B — drain the flat unit space (one unit = one selected
    // layer). Each scenario is one coarse splittable task; the grain is
    // shard_layers. Chunk boundaries only affect scheduling, never
    // results: every layer evaluates from its own (scenario, layer)
    // stream.
    UnitSpace units;
    units.offsets.resize(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
        units.offsets[i + 1] = units.offsets[i] + preps[i].layers.size();
    }
    const std::size_t total_units = units.total();
    const std::size_t grain = options_.shard_layers > 0
        ? static_cast<std::size_t>(options_.shard_layers)
        : std::max<std::size_t>(total_units, 1);

    std::vector<std::vector<LayerEval>> layer_results(n);
    for (std::size_t i = 0; i < n; ++i) {
        layer_results[i].resize(preps[i].layers.size());
    }
    // Per-scenario evaluation cost, accumulated lock-free across the
    // chunks that touched the scenario (diagnostics only).
    std::vector<std::atomic<std::int64_t>> eval_nanos(n);

    // One chunk [begin, end) of the unit space: evaluate each
    // per-scenario sub-range and scatter the records into place.
    // Disjoint chunks write disjoint slots.
    const auto execute = [&](std::size_t begin, std::size_t end) {
        // Cancellation polls once per chunk: the flag rides the
        // scheduler's existing first-exception-wins abort protocol, so
        // no worksteal-core changes are needed and the check works
        // identically on the inline single-thread path.
        check_cancel();
        std::size_t i = units.scenario_of(begin);
        while (begin < end) {
            while (units.offsets[i + 1] <= begin) {
                ++i;
            }
            const std::size_t local_begin = begin - units.offsets[i];
            const std::size_t local_end =
                std::min(end, units.offsets[i + 1]) - units.offsets[i];
            // Context-tagged by scenario label so a chaos test can
            // poison exactly one job of a coalesced batch
            // (`runner.chunk@<label>=1:transient`).
            BITWAVE_FAULT_INJECT_CTX(
                "runner.chunk", fault::context_tag(scenarios[i].label));
            const std::uint64_t tr0 =
                trace::enabled() ? trace::now_ns() : 0;
            const auto s0 = std::chrono::steady_clock::now();
            auto evals = evaluate_layer_range(scenarios[i], preps[i],
                                              seeds[i], local_begin,
                                              local_end);
            const std::int64_t chunk_nanos =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - s0).count();
            eval_nanos[i].fetch_add(chunk_nanos,
                                    std::memory_order_relaxed);
            runner_metrics().chunk_ns.record(
                static_cast<std::uint64_t>(chunk_nanos));
            if (tr0 != 0) {
                trace::emit_complete("runner.chunk", "runner", tr0,
                                     trace::now_ns() - tr0, "scenario", i,
                                     "layers", local_end - local_begin);
            }
            auto &slot = layer_results[i];
            for (std::size_t k = 0; k < evals.size(); ++k) {
                slot[local_begin + k] = std::move(evals[k]);
            }
            begin = units.offsets[i] + local_end;
        }
    };

    const int threads = effective_threads(total_units);
    WorkstealStats sched;
    sched.threads_used = threads;
    switch (options_.scheduler) {
      case SchedulerKind::kWorkSteal: {
        WorkstealOptions wopts;
        wopts.threads = threads;
        wopts.grain = grain;
        wopts.chaos_seed = options_.chaos_seed;
        sched = worksteal_run(total_units, execute, wopts);
        break;
      }
      case SchedulerKind::kStaticSlice: {
        // Legacy baseline for the A/B benches: pre-chop the unit space
        // into grain-sized chunks and statically slice the chunk list
        // over the workers. No stealing — a worker that drew the BERT
        // tail keeps it.
        std::vector<std::pair<std::size_t, std::size_t>> chunks;
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t b = units.offsets[i];
                 b < units.offsets[i + 1]; b += grain) {
                chunks.emplace_back(
                    b, std::min(b + grain, units.offsets[i + 1]));
            }
        }
        sched.chunks = static_cast<std::int64_t>(chunks.size());
        if (threads <= 1 || chunks.size() <= 1) {
            for (const auto &[b, e] : chunks) {
                execute(b, e);
            }
        } else {
            const std::size_t workers = std::min<std::size_t>(
                static_cast<std::size_t>(threads), chunks.size());
            std::atomic<bool> failed{false};
            std::exception_ptr first_error;
            std::mutex error_mutex;
            std::vector<std::thread> pool;
            pool.reserve(workers);
            for (std::size_t t = 0; t < workers; ++t) {
                const std::size_t lo = t * chunks.size() / workers;
                const std::size_t hi =
                    (t + 1) * chunks.size() / workers;
                pool.emplace_back([&, lo, hi] {
                    for (std::size_t c = lo; c < hi; ++c) {
                        if (failed.load(std::memory_order_relaxed)) {
                            return;
                        }
                        try {
                            execute(chunks[c].first, chunks[c].second);
                        } catch (...) {
                            std::lock_guard<std::mutex> lock(error_mutex);
                            if (!first_error) {
                                first_error = std::current_exception();
                            }
                            failed.store(true,
                                         std::memory_order_relaxed);
                            return;
                        }
                    }
                });
            }
            for (auto &worker : pool) {
                worker.join();
            }
            if (first_error) {
                std::rethrow_exception(first_error);
            }
        }
        break;
      }
    }

    // Phase C — deterministic reduction: totals accumulate in layer
    // order inside finalize_scenario, independent of chunk boundaries.
    trace::Span finalize_span("runner.finalize", "runner");
    finalize_span.arg("scenarios", n);
    std::vector<ScenarioResult> results(n);
    int chunk_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
        results[i] = finalize_scenario(scenarios[i], preps[i], seeds[i],
                                       std::move(layer_results[i]));
        results[i].wall_seconds = prep_seconds[i] +
            static_cast<double>(
                eval_nanos[i].load(std::memory_order_relaxed)) * 1e-9;
        chunk_count += static_cast<int>(
            (preps[i].layers.size() + grain - 1) / grain);
    }

    const double wall_seconds = seconds_since(t0);
    RunnerMetrics &rm = runner_metrics();
    rm.batches.inc();
    rm.chunks.inc(static_cast<std::uint64_t>(std::max<std::int64_t>(
        sched.chunks, 0)));
    rm.steals.inc(static_cast<std::uint64_t>(std::max<std::int64_t>(
        sched.steals, 0)));
    rm.batch_wall_ns.record(
        static_cast<std::uint64_t>(wall_seconds * 1e9));

    if (report != nullptr) {
        report->threads_used = threads;
        report->shards = chunk_count;
        report->chunks = sched.chunks;
        report->steals = sched.steals;
        report->wall_seconds = wall_seconds;
        report->scenario_seconds_sum = 0.0;
        for (const auto &r : results) {
            report->scenario_seconds_sum += r.wall_seconds;
        }
    }
    return results;
}

}  // namespace bitwave::eval
