#include "eval/runner.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/parallel.hpp"

namespace bitwave::eval {

namespace {

double
seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
}

/// One unit of pool work: a contiguous slice of one scenario's layers.
struct Shard
{
    std::size_t scenario = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
    double seconds = 0.0;  ///< Evaluation cost (diagnostics only).
};

}  // namespace

ScenarioRunner::ScenarioRunner(RunnerOptions options) : options_(options)
{
}

int
ScenarioRunner::effective_threads(std::size_t work_items) const
{
    if (options_.threads > 0) {
        return static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(options_.threads),
            std::max<std::size_t>(work_items, 1)));
    }
    // 0 = hardware concurrency, overridable via BITWAVE_THREADS.
    return parallel_threads(std::max<std::size_t>(work_items, 1));
}

std::vector<ScenarioResult>
ScenarioRunner::run(const std::vector<Scenario> &scenarios,
                    RunnerReport *report) const
{
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t n = scenarios.size();

    // Resolve shared workloads up front, from this (un-nested) thread:
    // per-layer synthesis streams only fan out when the build is not
    // already inside a parallel_for worker, so a cold BERT-Base
    // synthesizes on all cores here instead of on one worker inside
    // Phase A.
    {
        std::vector<WorkloadId> distinct;
        for (const auto &s : scenarios) {
            if (!s.custom_workload &&
                s.workload_seed == kCachedWorkloadSeed &&
                std::find(distinct.begin(), distinct.end(), s.workload) ==
                    distinct.end()) {
                distinct.push_back(s.workload);
            }
        }
        for (WorkloadId id : distinct) {
            shared_workload(id);  // warm the LRU; preps re-fetch cheaply
        }
    }

    // Phase A — prepare every scenario (workload resolution, Bit-Flip
    // preparation, layer selection). Preparation of different scenarios
    // parallelizes; the synthesis and flip caches deduplicate shared
    // work across them.
    std::vector<ScenarioPrep> preps(n);
    std::vector<std::uint64_t> seeds(n);
    std::vector<double> prep_seconds(n, 0.0);
    const int prep_threads = effective_threads(n);
    parallel_for(n, [&](std::size_t i) {
        const auto p0 = std::chrono::steady_clock::now();
        seeds[i] = scenario_rng_seed(scenarios[i], i);
        preps[i] = prepare_scenario(scenarios[i]);
        prep_seconds[i] = seconds_since(p0);
    }, prep_threads);

    // Phase B — shard each scenario's layer selection into contiguous
    // slices and drain the flat task list work-stealing style. Shard
    // boundaries only affect scheduling, never results: every layer
    // evaluates from its own (scenario, layer) stream.
    std::vector<Shard> shards;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t layers = preps[i].layers.size();
        const std::size_t step = options_.shard_layers > 0
            ? static_cast<std::size_t>(options_.shard_layers)
            : std::max<std::size_t>(layers, 1);
        std::size_t begin = 0;
        do {
            const std::size_t end = std::min(layers, begin + step);
            shards.push_back({i, begin, end, 0.0});
            begin = end;
        } while (begin < layers);
    }

    std::vector<std::vector<LayerEval>> layer_results(n);
    for (std::size_t i = 0; i < n; ++i) {
        layer_results[i].resize(preps[i].layers.size());
    }
    const int threads = effective_threads(shards.size());
    parallel_for(shards.size(), [&](std::size_t s) {
        Shard &shard = shards[s];
        const auto s0 = std::chrono::steady_clock::now();
        auto evals = evaluate_layer_range(scenarios[shard.scenario],
                                          preps[shard.scenario],
                                          seeds[shard.scenario],
                                          shard.begin, shard.end);
        shard.seconds = seconds_since(s0);
        auto &slot = layer_results[shard.scenario];
        for (std::size_t k = 0; k < evals.size(); ++k) {
            slot[shard.begin + k] = std::move(evals[k]);
        }
    }, threads);

    // Phase C — deterministic reduction: totals accumulate in layer
    // order inside finalize_scenario, independent of shard boundaries.
    std::vector<ScenarioResult> results(n);
    for (std::size_t i = 0; i < n; ++i) {
        results[i] = finalize_scenario(scenarios[i], preps[i], seeds[i],
                                       std::move(layer_results[i]));
        results[i].wall_seconds = prep_seconds[i];
    }
    for (const Shard &shard : shards) {
        results[shard.scenario].wall_seconds += shard.seconds;
    }

    if (report != nullptr) {
        report->threads_used = threads;
        report->shards = static_cast<int>(shards.size());
        report->wall_seconds = seconds_since(t0);
        report->scenario_seconds_sum = 0.0;
        for (const auto &r : results) {
            report->scenario_seconds_sum += r.wall_seconds;
        }
    }
    return results;
}

}  // namespace bitwave::eval
