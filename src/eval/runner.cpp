#include "eval/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

namespace bitwave::eval {

ScenarioRunner::ScenarioRunner(RunnerOptions options) : options_(options)
{
}

int
ScenarioRunner::effective_threads(std::size_t batch_size) const
{
    int threads = options_.threads;
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
        threads = std::max(threads, 1);
    }
    return static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(threads), std::max<std::size_t>(
            batch_size, 1)));
}

std::vector<ScenarioResult>
ScenarioRunner::run(const std::vector<Scenario> &scenarios,
                    RunnerReport *report) const
{
    const auto t0 = std::chrono::steady_clock::now();
    const int threads = effective_threads(scenarios.size());

    std::vector<ScenarioResult> results(scenarios.size());
    const auto evaluate_at = [&](std::size_t i) {
        results[i] =
            evaluate_scenario(scenarios[i],
                              scenario_rng_seed(scenarios[i], i));
    };

    if (threads <= 1 || scenarios.size() <= 1) {
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
            evaluate_at(i);
        }
    } else {
        // Work-stealing over the batch: each worker pops the next index.
        std::atomic<std::size_t> next{0};
        std::atomic<bool> failed{false};
        std::exception_ptr first_error;
        std::mutex error_mutex;
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(threads));
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&] {
                for (;;) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= scenarios.size() ||
                        failed.load(std::memory_order_relaxed)) {
                        return;
                    }
                    try {
                        evaluate_at(i);
                    } catch (...) {
                        std::lock_guard<std::mutex> lock(error_mutex);
                        if (!first_error) {
                            first_error = std::current_exception();
                        }
                        failed.store(true, std::memory_order_relaxed);
                        return;
                    }
                }
            });
        }
        for (auto &worker : pool) {
            worker.join();
        }
        if (first_error) {
            std::rethrow_exception(first_error);
        }
    }

    if (report != nullptr) {
        report->threads_used = threads;
        report->wall_seconds = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();
        report->scenario_seconds_sum = 0.0;
        for (const auto &r : results) {
            report->scenario_seconds_sum += r.wall_seconds;
        }
    }
    return results;
}

}  // namespace bitwave::eval
