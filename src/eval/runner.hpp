/**
 * @file
 * ScenarioRunner — evaluates a batch of Scenarios on work-stealing
 * worker threads and returns results in batch order.
 *
 * Work splits at two levels: across scenarios, and *inside* each
 * scenario by layer ranges. Each scenario enters the pool as one
 * coarse splittable task over its selected layers; owners execute
 * `RunnerOptions::shard_layers`-sized chunks LIFO from their own deque
 * and idle workers steal the far end of a task FIFO (halving it per
 * steal), so one BERT-class scenario fans out across the whole pool
 * instead of pinning the batch's wall clock to a single worker — and
 * nothing sits pre-chopped behind a bag of tiny convs.
 *
 * Determinism contract: every scenario's result is a pure function of
 * (scenario, batch index) — the per-scenario RNG seed is derived from the
 * batch position and per-layer streams from (seed, layer index), never
 * from thread identity or chunk boundaries — so an N-thread run is
 * bit-identical to a 1-thread run, under any steal order (modulo the
 * `wall_seconds` diagnostics). The adversarial-scheduler tests pin this
 * with forced steals (`RunnerOptions::chaos_seed`).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "eval/engine.hpp"
#include "eval/scenario.hpp"

namespace bitwave::eval {

/**
 * Thrown out of run()/run_seeded() when `RunnerOptions::cancel` flips
 * mid-batch: the batch aborts at the next chunk boundary (partial
 * results are discarded) and the flag's owner — e.g. a service request
 * whose deadline expired — decides what to tell its clients.
 */
class BatchCancelled : public std::runtime_error
{
  public:
    BatchCancelled() : std::runtime_error("evaluation batch cancelled") {}
};

/// Which execution core drains the evaluation tasks.
enum class SchedulerKind
{
    /// Chase–Lev work-stealing deques with split-on-steal (default).
    kWorkSteal,
    /// Legacy baseline: the task list is pre-chopped and statically
    /// sliced over the workers, no stealing. Kept for the
    /// ablation_sync / runner_scaling A/B — shows the batch-tail
    /// imbalance the deque core removes. Results are bit-identical.
    kStaticSlice,
};

/// Runner knobs.
struct RunnerOptions
{
    /// Worker threads; 0 = hardware concurrency (BITWAVE_THREADS).
    int threads = 0;
    /**
     * Intra-scenario splitting: maximum selected layers per executed
     * chunk (the work-stealing grain). BERT-Base (72 layers) fans out
     * into 72/shard_layers chunks. <= 0 evaluates each scenario as a
     * single unsplittable task.
     */
    int shard_layers = 8;
    /// Execution core; see SchedulerKind.
    SchedulerKind scheduler = SchedulerKind::kWorkSteal;
    /**
     * Adversarial test scheduler seed (see WorkstealOptions): non-zero
     * forces seeded steal-first scheduling and reverses the initial
     * task order. Results must stay bit-identical — never needed
     * outside tests.
     */
    std::uint64_t chaos_seed = 0;
    /**
     * Cooperative batch-abort flag, polled at chunk boundaries (and
     * between scenario preparations). When the pointed-to flag becomes
     * true, the batch stops issuing work and run() throws
     * BatchCancelled. The flag must outlive the run() call; nullptr
     * (default) disables cancellation. The evaluation service sets this
     * per batch to implement request deadlines and client cancels.
     */
    const std::atomic<bool> *cancel = nullptr;
};

/// Aggregate diagnostics of one run() call.
struct RunnerReport
{
    int threads_used = 0;
    int shards = 0;            ///< Evaluation chunks (grain-sized).
    std::int64_t chunks = 0;   ///< Executed body chunks (scheduler view:
                               ///< includes split-on-steal fragments).
    std::int64_t steals = 0;   ///< Cross-worker steals (kWorkSteal).
    double wall_seconds = 0.0;          ///< End-to-end batch wall time.
    double scenario_seconds_sum = 0.0;  ///< Sum of per-scenario costs.

    /// Parallel efficiency proxy: total scenario work / batch wall time.
    double speedup() const
    {
        return wall_seconds > 0 ? scenario_seconds_sum / wall_seconds
                                : 1.0;
    }
};

/// Work-stealing evaluator for scenario batches.
class ScenarioRunner
{
  public:
    explicit ScenarioRunner(RunnerOptions options = {});

    /**
     * Evaluate @p scenarios and return their results in batch order.
     * @p report, when non-null, receives the run diagnostics.
     */
    std::vector<ScenarioResult> run(const std::vector<Scenario> &scenarios,
                                    RunnerReport *report = nullptr) const;

    /**
     * Re-entrant seeded submission path for batch composers: evaluate
     * @p scenarios with caller-supplied per-scenario RNG seeds instead
     * of deriving them from the batch position. The evaluation service
     * coalesces requests submitted at different times into one batch;
     * pinning each request's seed to its *standalone* value
     * (`scenario_rng_seed(s, 0)`) keeps every coalesced result
     * bit-identical to a direct per-request evaluation regardless of
     * where the batcher placed it. @p seeds must match @p scenarios in
     * size. Safe to call from multiple service dispatcher threads at
     * once — the runner holds no mutable state across calls.
     */
    std::vector<ScenarioResult> run_seeded(
        const std::vector<Scenario> &scenarios,
        const std::vector<std::uint64_t> &seeds,
        RunnerReport *report = nullptr) const;

    /// Threads run() will use for @p work_items parallel work items.
    int effective_threads(std::size_t work_items) const;

  private:
    RunnerOptions options_;
};

}  // namespace bitwave::eval
