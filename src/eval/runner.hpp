/**
 * @file
 * ScenarioRunner — evaluates a batch of Scenarios on a pool of worker
 * threads and returns results in batch order.
 *
 * Work splits at two levels: across scenarios, and *inside* each
 * scenario by contiguous layer ranges (`RunnerOptions::shard_layers`), so
 * one BERT-class scenario fans out across the whole pool instead of
 * pinning the batch's wall clock to a single worker.
 *
 * Determinism contract: every scenario's result is a pure function of
 * (scenario, batch index) — the per-scenario RNG seed is derived from the
 * batch position and per-layer streams from (seed, layer index), never
 * from thread identity or shard boundaries — so an N-thread run is
 * bit-identical to a 1-thread run and a split scenario is bit-identical
 * to an unsplit one (modulo the `wall_seconds` diagnostics).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "eval/engine.hpp"
#include "eval/scenario.hpp"

namespace bitwave::eval {

/// Runner knobs.
struct RunnerOptions
{
    /// Worker threads; 0 = hardware concurrency.
    int threads = 0;
    /**
     * Intra-scenario splitting: maximum selected layers per work shard.
     * BERT-Base (72 layers) fans out into 72/shard_layers tasks.
     * <= 0 evaluates each scenario as a single task.
     */
    int shard_layers = 8;
};

/// Aggregate diagnostics of one run() call.
struct RunnerReport
{
    int threads_used = 0;
    int shards = 0;                     ///< Evaluation tasks dispatched.
    double wall_seconds = 0.0;          ///< End-to-end batch wall time.
    double scenario_seconds_sum = 0.0;  ///< Sum of per-scenario costs.

    /// Parallel efficiency proxy: total scenario work / batch wall time.
    double speedup() const
    {
        return wall_seconds > 0 ? scenario_seconds_sum / wall_seconds
                                : 1.0;
    }
};

/// Thread-pool evaluator for scenario batches.
class ScenarioRunner
{
  public:
    explicit ScenarioRunner(RunnerOptions options = {});

    /**
     * Evaluate @p scenarios and return their results in batch order.
     * @p report, when non-null, receives the run diagnostics.
     */
    std::vector<ScenarioResult> run(const std::vector<Scenario> &scenarios,
                                    RunnerReport *report = nullptr) const;

    /// Threads run() will use for @p work_items parallel work items.
    int effective_threads(std::size_t work_items) const;

  private:
    RunnerOptions options_;
};

}  // namespace bitwave::eval
