/**
 * @file
 * ScenarioRunner — evaluates a batch of Scenarios on a pool of worker
 * threads and returns results in batch order.
 *
 * Determinism contract: every scenario's result is a pure function of
 * (scenario, batch index) — the per-scenario RNG seed is derived from the
 * batch position, never from thread identity — so an N-thread run is
 * bit-identical to a 1-thread run of the same batch (modulo the
 * `wall_seconds` diagnostics).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "eval/engine.hpp"
#include "eval/scenario.hpp"

namespace bitwave::eval {

/// Runner knobs.
struct RunnerOptions
{
    /// Worker threads; 0 = hardware concurrency.
    int threads = 0;
};

/// Aggregate diagnostics of one run() call.
struct RunnerReport
{
    int threads_used = 0;
    double wall_seconds = 0.0;          ///< End-to-end batch wall time.
    double scenario_seconds_sum = 0.0;  ///< Sum of per-scenario costs.

    /// Parallel efficiency proxy: total scenario work / batch wall time.
    double speedup() const
    {
        return wall_seconds > 0 ? scenario_seconds_sum / wall_seconds
                                : 1.0;
    }
};

/// Thread-pool evaluator for scenario batches.
class ScenarioRunner
{
  public:
    explicit ScenarioRunner(RunnerOptions options = {});

    /**
     * Evaluate @p scenarios and return their results in batch order.
     * @p report, when non-null, receives the run diagnostics.
     */
    std::vector<ScenarioResult> run(const std::vector<Scenario> &scenarios,
                                    RunnerReport *report = nullptr) const;

    /// Threads run() will use for a batch of @p batch_size scenarios.
    int effective_threads(std::size_t batch_size) const;

  private:
    RunnerOptions options_;
};

}  // namespace bitwave::eval
