#include "eval/scenario.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <memory>
#include <utility>

#include "bitflip/bitflip.hpp"
#include "common/hash.hpp"
#include "common/logging.hpp"
#include "common/lru.hpp"

namespace bitwave::eval {

const char *
engine_name(EngineKind kind)
{
    switch (kind) {
      case EngineKind::kAnalytical: return "model";
      case EngineKind::kCycleSim: return "sim";
      case EngineKind::kStats: return "stats";
    }
    return "?";
}

std::string
Scenario::name() const
{
    if (!label.empty()) {
        return label;
    }
    std::string n;
    switch (engine) {
      case EngineKind::kCycleSim: n = "BitWaveNPU"; break;
      case EngineKind::kStats: n = "stats"; break;
      case EngineKind::kAnalytical: n = accel.name; break;
    }
    n += '/';
    n += custom_workload ? custom_workload->name.c_str()
                         : workload_name(workload);
    switch (bitflip.mode) {
      case BitflipSpec::Mode::kNone:
        break;
      case BitflipSpec::Mode::kUniform:
        n += strprintf("+bf(g%d,z%d)", bitflip.group_size,
                       bitflip.zero_columns);
        break;
      case BitflipSpec::Mode::kHeavyLayers:
        n += strprintf("+bf(g%d,z%d,%.0f%%)", bitflip.group_size,
                       bitflip.zero_columns,
                       bitflip.weight_share * 100.0);
        break;
    }
    if (weight_override) {
        n += "+weights";
    }
    if (engine == EngineKind::kCycleSim) {
        n += " (sim)";
    }
    return n;
}

std::uint64_t
scenario_rng_seed(const Scenario &scenario, std::size_t index)
{
    std::uint64_t h = splitmix64(scenario.seed);
    h = splitmix64(h ^ static_cast<std::uint64_t>(index));
    h = splitmix64(h ^ static_cast<std::uint64_t>(scenario.workload));
    h = splitmix64(h ^ static_cast<std::uint64_t>(scenario.engine));
    return h;
}

namespace {

/// Order-sensitive string mix: length then bytes, so ("ab","c") and
/// ("a","bc") fingerprints differ.
std::uint64_t
mix_string(std::uint64_t h, const std::string &s)
{
    h = hash_combine(h, s.size());
    return fnv1a(s.data(), s.size(), h);
}

/// Doubles mix by bit pattern: fingerprint equality must mean "the same
/// value feeds the evaluation", not approximate equality.
std::uint64_t
mix_double(std::uint64_t h, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return hash_combine(h, bits);
}

std::uint64_t
mix_su_list(std::uint64_t h, const std::vector<SpatialUnrolling> &sus)
{
    h = hash_combine(h, sus.size());
    for (const auto &su : sus) {
        h = mix_string(h, su.name);
        h = hash_combine(h, su.factors.size());
        for (const auto &[dim, factor] : su.factors) {
            h = hash_combine(h, static_cast<std::uint64_t>(dim));
            h = hash_combine(h, static_cast<std::uint64_t>(factor));
        }
        h = hash_combine(h, static_cast<std::uint64_t>(su.depthwise_only));
        h = hash_combine(h, static_cast<std::uint64_t>(su.bit_columns));
    }
    return h;
}

std::uint64_t
mix_accel(std::uint64_t h, const AcceleratorConfig &a)
{
    h = mix_string(h, a.name);
    h = hash_combine(h, static_cast<std::uint64_t>(a.style));
    h = hash_combine(h, static_cast<std::uint64_t>(a.sparsity));
    h = hash_combine(h, static_cast<std::uint64_t>(a.weight_repr));
    h = mix_su_list(h, a.dataflows);
    h = hash_combine(h, static_cast<std::uint64_t>(a.mapping_policy));
    h = hash_combine(h, static_cast<std::uint64_t>(a.memory.weight_sram_bytes));
    h = hash_combine(h, static_cast<std::uint64_t>(a.memory.act_sram_bytes));
    h = hash_combine(h, static_cast<std::uint64_t>(a.memory.weight_port_bits));
    h = hash_combine(h, static_cast<std::uint64_t>(a.memory.act_port_bits));
    h = hash_combine(h,
                     static_cast<std::uint64_t>(a.memory.dram_bits_per_cycle));
    h = hash_combine(h, static_cast<std::uint64_t>(a.sync_lanes));
    h = hash_combine(h, static_cast<std::uint64_t>(a.interleave_window));
    h = mix_double(h, a.interleave_overhead);
    h = hash_combine(h, static_cast<std::uint64_t>(a.compress_weights));
    h = hash_combine(h, static_cast<std::uint64_t>(a.accumulator_banks));
    h = hash_combine(h, static_cast<std::uint64_t>(a.compress_acts));
    h = mix_double(h, a.value_imbalance);
    h = hash_combine(h, static_cast<std::uint64_t>(a.map_batch_to_ox));
    h = mix_double(h, a.matmul_penalty);
    h = hash_combine(h, static_cast<std::uint64_t>(a.planar_crossbar));
    h = hash_combine(h, static_cast<std::uint64_t>(a.layer_sequential_dram));
    h = mix_double(h, a.e_crossbar_conflict_pj);
    h = mix_double(h, a.e_lane_overhead_pj);
    return h;
}

std::uint64_t
mix_npu(std::uint64_t h, const NpuConfig &n)
{
    h = mix_su_list(h, n.dataflows);
    h = hash_combine(h, static_cast<std::uint64_t>(n.mapping_policy));
    h = hash_combine(h, static_cast<std::uint64_t>(n.weight_sram_bytes));
    h = hash_combine(h, static_cast<std::uint64_t>(n.act_sram_bytes));
    h = hash_combine(h, static_cast<std::uint64_t>(n.weight_port_bits));
    h = hash_combine(h, static_cast<std::uint64_t>(n.act_sram_banks));
    h = hash_combine(h, static_cast<std::uint64_t>(n.sram_word_bits));
    h = hash_combine(h, static_cast<std::uint64_t>(n.dense_mode));
    h = hash_combine(h, static_cast<std::uint64_t>(n.repr));
    h = hash_combine(h, n.act_seed);
    return h;
}

}  // namespace

std::uint64_t
scenario_fingerprint(const Scenario &scenario)
{
    std::uint64_t h = kFnvBasis;
    h = mix_string(h, scenario.label);
    h = hash_combine(h, static_cast<std::uint64_t>(scenario.engine));
    // Only the configuration the selected engine reads contributes —
    // two analytical requests differing solely in an untouched NpuConfig
    // field still deduplicate.
    switch (scenario.engine) {
      case EngineKind::kAnalytical:
        h = mix_accel(h, scenario.accel);
        break;
      case EngineKind::kCycleSim:
        h = mix_npu(h, scenario.npu);
        break;
      case EngineKind::kStats:
        h = hash_combine(h,
                         static_cast<std::uint64_t>(scenario.stats.group_size));
        h = hash_combine(
            h, static_cast<std::uint64_t>(scenario.stats.column_stats));
        h = hash_combine(h, static_cast<std::uint64_t>(scenario.stats.bcs));
        h = hash_combine(
            h, static_cast<std::uint64_t>(scenario.stats.reference_codecs));
        break;
    }
    if (scenario.custom_workload) {
        h = hash_combine(h, 1);
        h = hash_combine(h, scenario.custom_workload->content_hash);
    } else {
        h = hash_combine(h, 2);
        h = hash_combine(h, static_cast<std::uint64_t>(scenario.workload));
        h = hash_combine(h, scenario.workload_seed);
    }
    h = hash_combine(h, static_cast<std::uint64_t>(scenario.bitflip.mode));
    h = hash_combine(h,
                     static_cast<std::uint64_t>(scenario.bitflip.group_size));
    h = hash_combine(h,
                     static_cast<std::uint64_t>(scenario.bitflip.zero_columns));
    h = mix_double(h, scenario.bitflip.weight_share);
    if (scenario.weight_override) {
        h = hash_combine(h, scenario.weight_override->size());
        for (const auto &t : *scenario.weight_override) {
            // Content identity of each override tensor: shape + bytes.
            const Shape &shape = t.shape();
            h = hash_combine(h, shape.size());
            for (std::size_t d = 0; d < shape.size(); ++d) {
                h = hash_combine(h, static_cast<std::uint64_t>(shape[d]));
            }
            h = fnv1a(t.data(), static_cast<std::size_t>(t.numel()), h);
        }
    }
    h = hash_combine(h, scenario.layer_filter.size());
    for (const auto &name : scenario.layer_filter) {
        h = mix_string(h, name);
    }
    h = hash_combine(h, scenario.seed);
    return h;
}

/// Layer indices of the weight-heaviest layers covering @p weight_share
/// of the parameters (ascending).
static std::vector<std::size_t>
heavy_layer_set(const Workload &w, double weight_share)
{
    std::vector<std::pair<std::int64_t, std::size_t>> sizes;
    for (std::size_t i = 0; i < w.layers.size(); ++i) {
        sizes.emplace_back(w.layers[i].desc.weight_count(), i);
    }
    std::sort(sizes.rbegin(), sizes.rend());
    std::vector<std::size_t> heavy;
    std::int64_t cum = 0;
    const auto target = static_cast<std::int64_t>(
        weight_share * static_cast<double>(w.total_weights()));
    for (const auto &[size, idx] : sizes) {
        if (cum >= target) {
            break;
        }
        heavy.push_back(idx);
        cum += size;
    }
    std::sort(heavy.begin(), heavy.end());
    return heavy;
}

std::vector<std::size_t>
bitflip_layer_set(const Workload &workload, const BitflipSpec &spec)
{
    switch (spec.mode) {
      case BitflipSpec::Mode::kNone:
        return {};
      case BitflipSpec::Mode::kUniform: {
        std::vector<std::size_t> all(workload.layers.size());
        for (std::size_t i = 0; i < all.size(); ++i) {
            all[i] = i;
        }
        return all;
      }
      case BitflipSpec::Mode::kHeavyLayers:
        return heavy_layer_set(workload, spec.weight_share);
    }
    return {};
}

std::vector<Int8Tensor>
flip_heavy_layers(const Workload &w, double weight_share, int group,
                  int zero_cols)
{
    const auto cached =
        cached_flip_heavy_layers(w, weight_share, group, zero_cols);
    std::vector<Int8Tensor> out;
    out.reserve(w.layers.size());
    for (std::size_t i = 0; i < w.layers.size(); ++i) {
        out.push_back(cached[i] ? *cached[i] : w.layers[i].weights);
    }
    return out;
}

std::uint64_t
flipped_weights_hash(std::uint64_t weights_hash, int group, int zero_cols,
                     std::int64_t numel)
{
    if (weights_hash == 0) {
        return 0;
    }
    std::uint64_t key = hash_combine(weights_hash,
                                     static_cast<std::uint64_t>(group));
    key = hash_combine(key, static_cast<std::uint64_t>(zero_cols));
    return hash_combine(key, static_cast<std::uint64_t>(numel));
}

std::shared_ptr<const Int8Tensor>
cached_bitflip(const Int8Tensor &weights, std::uint64_t weights_hash,
               int group, int zero_cols)
{
    if (zero_cols == 0) {
        return nullptr;  // identity flip: use the tensor as-is, no copy
    }
    if (weights_hash == 0) {
        weights_hash = fnv1a(weights.data(),
                             static_cast<std::size_t>(weights.numel()));
    }
    const std::uint64_t key = flipped_weights_hash(
        weights_hash, group, zero_cols, weights.numel());

    // Bounded sharded LRU (BITWAVE_CACHE_ENTRIES / BITWAVE_CACHE_SHARDS,
    // default 256 prepared tensors): concurrent first requests build
    // exactly once, warm lookups take a shard lock shared, and a
    // long-running batch can no longer grow the prepared set without
    // limit — in-flight holders keep an evicted tensor alive until they
    // drop it.
    static ShardedLruCache<std::uint64_t, Int8Tensor> cache(
        cache_capacity_from_env(256), 0, "bitflip_twins");
    return cache.get_or_build(key, [&] {
        return bitflip_tensor(weights, group, zero_cols);
    });
}

std::vector<std::shared_ptr<const Int8Tensor>>
cached_flip_heavy_layers(const Workload &w, double weight_share, int group,
                         int zero_cols)
{
    BitflipSpec spec;
    spec.mode = BitflipSpec::Mode::kHeavyLayers;
    spec.weight_share = weight_share;
    spec.group_size = group;
    spec.zero_columns = zero_cols;

    std::vector<std::shared_ptr<const Int8Tensor>> out(w.layers.size());
    for (std::size_t i : bitflip_layer_set(w, spec)) {
        out[i] = cached_bitflip(w.layers[i].weights,
                                w.layers[i].weights_hash, group, zero_cols);
    }
    return out;
}

std::vector<std::size_t>
selected_bitflip_layers(const Workload &workload, const BitflipSpec &spec,
                        const std::vector<std::size_t> *selection)
{
    std::vector<std::size_t> flip_set = bitflip_layer_set(workload, spec);
    if (selection == nullptr) {
        return flip_set;
    }
    std::vector<std::size_t> kept;
    std::set_intersection(flip_set.begin(), flip_set.end(),
                          selection->begin(), selection->end(),
                          std::back_inserter(kept));
    return kept;
}

std::vector<std::shared_ptr<const Int8Tensor>>
alias_weight_override(const Scenario &scenario, const Workload &workload)
{
    if (!scenario.weight_override) {
        return {};
    }
    if (scenario.weight_override->size() != workload.layers.size()) {
        fatal("Scenario %s: %zu override tensors for %zu layers",
              scenario.name().c_str(), scenario.weight_override->size(),
              workload.layers.size());
    }
    std::vector<std::shared_ptr<const Int8Tensor>> out(
        workload.layers.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        // Alias into the override vector: shared ownership, no copy.
        out[i] = std::shared_ptr<const Int8Tensor>(
            scenario.weight_override, &(*scenario.weight_override)[i]);
    }
    return out;
}

std::vector<std::shared_ptr<const Int8Tensor>>
prepare_weights(const Scenario &scenario, const Workload &workload,
                const std::vector<std::size_t> *selection)
{
    if (scenario.weight_override) {
        return alias_weight_override(scenario, workload);
    }
    std::vector<std::shared_ptr<const Int8Tensor>> out(
        workload.layers.size());
    for (std::size_t i :
         selected_bitflip_layers(workload, scenario.bitflip, selection)) {
        out[i] = cached_bitflip(workload.layers[i].weights,
                                workload.layers[i].weights_hash,
                                scenario.bitflip.group_size,
                                scenario.bitflip.zero_columns);
    }
    return out;
}

}  // namespace bitwave::eval
