#include "eval/scenario.hpp"

#include <algorithm>
#include <utility>

#include "bitflip/bitflip.hpp"
#include "common/logging.hpp"

namespace bitwave::eval {

const char *
engine_name(EngineKind kind)
{
    switch (kind) {
      case EngineKind::kAnalytical: return "model";
      case EngineKind::kCycleSim: return "sim";
    }
    return "?";
}

std::string
Scenario::name() const
{
    if (!label.empty()) {
        return label;
    }
    std::string n = engine == EngineKind::kCycleSim
        ? std::string("BitWaveNPU") : accel.name;
    n += '/';
    n += custom_workload ? custom_workload->name.c_str()
                         : workload_name(workload);
    switch (bitflip.mode) {
      case BitflipSpec::Mode::kNone:
        break;
      case BitflipSpec::Mode::kUniform:
        n += strprintf("+bf(g%d,z%d)", bitflip.group_size,
                       bitflip.zero_columns);
        break;
      case BitflipSpec::Mode::kHeavyLayers:
        n += strprintf("+bf(g%d,z%d,%.0f%%)", bitflip.group_size,
                       bitflip.zero_columns,
                       bitflip.weight_share * 100.0);
        break;
    }
    if (weight_override) {
        n += "+weights";
    }
    if (engine == EngineKind::kCycleSim) {
        n += " (sim)";
    }
    return n;
}

namespace {

/// splitmix64 — tiny, well-mixed, and exactly reproducible everywhere.
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace

std::uint64_t
scenario_rng_seed(const Scenario &scenario, std::size_t index)
{
    std::uint64_t h = splitmix64(scenario.seed);
    h = splitmix64(h ^ static_cast<std::uint64_t>(index));
    h = splitmix64(h ^ static_cast<std::uint64_t>(scenario.workload));
    h = splitmix64(h ^ static_cast<std::uint64_t>(scenario.engine));
    return h;
}

std::vector<Int8Tensor>
flip_workload(const Workload &w, int group, int zero_cols)
{
    std::vector<Int8Tensor> out;
    out.reserve(w.layers.size());
    for (const auto &l : w.layers) {
        out.push_back(zero_cols == 0
                          ? l.weights
                          : bitflip_tensor(l.weights, group, zero_cols));
    }
    return out;
}

std::vector<Int8Tensor>
flip_heavy_layers(const Workload &w, double weight_share, int group,
                  int zero_cols)
{
    std::vector<std::pair<std::int64_t, std::size_t>> sizes;
    for (std::size_t i = 0; i < w.layers.size(); ++i) {
        sizes.emplace_back(w.layers[i].desc.weight_count(), i);
    }
    std::sort(sizes.rbegin(), sizes.rend());
    std::vector<bool> heavy(w.layers.size(), false);
    std::int64_t cum = 0;
    const auto target = static_cast<std::int64_t>(
        weight_share * static_cast<double>(w.total_weights()));
    for (const auto &[size, idx] : sizes) {
        if (cum >= target) {
            break;
        }
        heavy[idx] = true;
        cum += size;
    }
    std::vector<Int8Tensor> out;
    out.reserve(w.layers.size());
    for (std::size_t i = 0; i < w.layers.size(); ++i) {
        out.push_back(heavy[i] ? bitflip_tensor(w.layers[i].weights, group,
                                                zero_cols)
                               : w.layers[i].weights);
    }
    return out;
}

std::shared_ptr<const std::vector<Int8Tensor>>
prepare_weights(const Scenario &scenario, const Workload &workload)
{
    if (scenario.weight_override) {
        if (scenario.weight_override->size() != workload.layers.size()) {
            fatal("Scenario %s: %zu override tensors for %zu layers",
                  scenario.name().c_str(),
                  scenario.weight_override->size(),
                  workload.layers.size());
        }
        return scenario.weight_override;
    }
    switch (scenario.bitflip.mode) {
      case BitflipSpec::Mode::kUniform:
        return std::make_shared<std::vector<Int8Tensor>>(
            flip_workload(workload, scenario.bitflip.group_size,
                          scenario.bitflip.zero_columns));
      case BitflipSpec::Mode::kHeavyLayers:
        return std::make_shared<std::vector<Int8Tensor>>(
            flip_heavy_layers(workload, scenario.bitflip.weight_share,
                              scenario.bitflip.group_size,
                              scenario.bitflip.zero_columns));
      case BitflipSpec::Mode::kNone:
        break;
    }
    return nullptr;  // Use the workload's own weights, copy-free.
}

}  // namespace bitwave::eval
