#include "eval/scenario.hpp"

#include <algorithm>
#include <iterator>
#include <memory>
#include <utility>

#include "bitflip/bitflip.hpp"
#include "common/hash.hpp"
#include "common/logging.hpp"
#include "common/lru.hpp"

namespace bitwave::eval {

const char *
engine_name(EngineKind kind)
{
    switch (kind) {
      case EngineKind::kAnalytical: return "model";
      case EngineKind::kCycleSim: return "sim";
      case EngineKind::kStats: return "stats";
    }
    return "?";
}

std::string
Scenario::name() const
{
    if (!label.empty()) {
        return label;
    }
    std::string n;
    switch (engine) {
      case EngineKind::kCycleSim: n = "BitWaveNPU"; break;
      case EngineKind::kStats: n = "stats"; break;
      case EngineKind::kAnalytical: n = accel.name; break;
    }
    n += '/';
    n += custom_workload ? custom_workload->name.c_str()
                         : workload_name(workload);
    switch (bitflip.mode) {
      case BitflipSpec::Mode::kNone:
        break;
      case BitflipSpec::Mode::kUniform:
        n += strprintf("+bf(g%d,z%d)", bitflip.group_size,
                       bitflip.zero_columns);
        break;
      case BitflipSpec::Mode::kHeavyLayers:
        n += strprintf("+bf(g%d,z%d,%.0f%%)", bitflip.group_size,
                       bitflip.zero_columns,
                       bitflip.weight_share * 100.0);
        break;
    }
    if (weight_override) {
        n += "+weights";
    }
    if (engine == EngineKind::kCycleSim) {
        n += " (sim)";
    }
    return n;
}

std::uint64_t
scenario_rng_seed(const Scenario &scenario, std::size_t index)
{
    std::uint64_t h = splitmix64(scenario.seed);
    h = splitmix64(h ^ static_cast<std::uint64_t>(index));
    h = splitmix64(h ^ static_cast<std::uint64_t>(scenario.workload));
    h = splitmix64(h ^ static_cast<std::uint64_t>(scenario.engine));
    return h;
}

/// Layer indices of the weight-heaviest layers covering @p weight_share
/// of the parameters (ascending).
static std::vector<std::size_t>
heavy_layer_set(const Workload &w, double weight_share)
{
    std::vector<std::pair<std::int64_t, std::size_t>> sizes;
    for (std::size_t i = 0; i < w.layers.size(); ++i) {
        sizes.emplace_back(w.layers[i].desc.weight_count(), i);
    }
    std::sort(sizes.rbegin(), sizes.rend());
    std::vector<std::size_t> heavy;
    std::int64_t cum = 0;
    const auto target = static_cast<std::int64_t>(
        weight_share * static_cast<double>(w.total_weights()));
    for (const auto &[size, idx] : sizes) {
        if (cum >= target) {
            break;
        }
        heavy.push_back(idx);
        cum += size;
    }
    std::sort(heavy.begin(), heavy.end());
    return heavy;
}

std::vector<std::size_t>
bitflip_layer_set(const Workload &workload, const BitflipSpec &spec)
{
    switch (spec.mode) {
      case BitflipSpec::Mode::kNone:
        return {};
      case BitflipSpec::Mode::kUniform: {
        std::vector<std::size_t> all(workload.layers.size());
        for (std::size_t i = 0; i < all.size(); ++i) {
            all[i] = i;
        }
        return all;
      }
      case BitflipSpec::Mode::kHeavyLayers:
        return heavy_layer_set(workload, spec.weight_share);
    }
    return {};
}

std::vector<Int8Tensor>
flip_heavy_layers(const Workload &w, double weight_share, int group,
                  int zero_cols)
{
    const auto cached =
        cached_flip_heavy_layers(w, weight_share, group, zero_cols);
    std::vector<Int8Tensor> out;
    out.reserve(w.layers.size());
    for (std::size_t i = 0; i < w.layers.size(); ++i) {
        out.push_back(cached[i] ? *cached[i] : w.layers[i].weights);
    }
    return out;
}

std::uint64_t
flipped_weights_hash(std::uint64_t weights_hash, int group, int zero_cols,
                     std::int64_t numel)
{
    if (weights_hash == 0) {
        return 0;
    }
    std::uint64_t key = hash_combine(weights_hash,
                                     static_cast<std::uint64_t>(group));
    key = hash_combine(key, static_cast<std::uint64_t>(zero_cols));
    return hash_combine(key, static_cast<std::uint64_t>(numel));
}

std::shared_ptr<const Int8Tensor>
cached_bitflip(const Int8Tensor &weights, std::uint64_t weights_hash,
               int group, int zero_cols)
{
    if (zero_cols == 0) {
        return nullptr;  // identity flip: use the tensor as-is, no copy
    }
    if (weights_hash == 0) {
        weights_hash = fnv1a(weights.data(),
                             static_cast<std::size_t>(weights.numel()));
    }
    const std::uint64_t key = flipped_weights_hash(
        weights_hash, group, zero_cols, weights.numel());

    // Bounded sharded LRU (BITWAVE_CACHE_ENTRIES / BITWAVE_CACHE_SHARDS,
    // default 256 prepared tensors): concurrent first requests build
    // exactly once, warm lookups take a shard lock shared, and a
    // long-running batch can no longer grow the prepared set without
    // limit — in-flight holders keep an evicted tensor alive until they
    // drop it.
    static ShardedLruCache<std::uint64_t, Int8Tensor> cache(
        cache_capacity_from_env(256));
    return cache.get_or_build(key, [&] {
        return bitflip_tensor(weights, group, zero_cols);
    });
}

std::vector<std::shared_ptr<const Int8Tensor>>
cached_flip_heavy_layers(const Workload &w, double weight_share, int group,
                         int zero_cols)
{
    BitflipSpec spec;
    spec.mode = BitflipSpec::Mode::kHeavyLayers;
    spec.weight_share = weight_share;
    spec.group_size = group;
    spec.zero_columns = zero_cols;

    std::vector<std::shared_ptr<const Int8Tensor>> out(w.layers.size());
    for (std::size_t i : bitflip_layer_set(w, spec)) {
        out[i] = cached_bitflip(w.layers[i].weights,
                                w.layers[i].weights_hash, group, zero_cols);
    }
    return out;
}

std::vector<std::size_t>
selected_bitflip_layers(const Workload &workload, const BitflipSpec &spec,
                        const std::vector<std::size_t> *selection)
{
    std::vector<std::size_t> flip_set = bitflip_layer_set(workload, spec);
    if (selection == nullptr) {
        return flip_set;
    }
    std::vector<std::size_t> kept;
    std::set_intersection(flip_set.begin(), flip_set.end(),
                          selection->begin(), selection->end(),
                          std::back_inserter(kept));
    return kept;
}

std::vector<std::shared_ptr<const Int8Tensor>>
alias_weight_override(const Scenario &scenario, const Workload &workload)
{
    if (!scenario.weight_override) {
        return {};
    }
    if (scenario.weight_override->size() != workload.layers.size()) {
        fatal("Scenario %s: %zu override tensors for %zu layers",
              scenario.name().c_str(), scenario.weight_override->size(),
              workload.layers.size());
    }
    std::vector<std::shared_ptr<const Int8Tensor>> out(
        workload.layers.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        // Alias into the override vector: shared ownership, no copy.
        out[i] = std::shared_ptr<const Int8Tensor>(
            scenario.weight_override, &(*scenario.weight_override)[i]);
    }
    return out;
}

std::vector<std::shared_ptr<const Int8Tensor>>
prepare_weights(const Scenario &scenario, const Workload &workload,
                const std::vector<std::size_t> *selection)
{
    if (scenario.weight_override) {
        return alias_weight_override(scenario, workload);
    }
    std::vector<std::shared_ptr<const Int8Tensor>> out(
        workload.layers.size());
    for (std::size_t i :
         selected_bitflip_layers(workload, scenario.bitflip, selection)) {
        out[i] = cached_bitflip(workload.layers[i].weights,
                                workload.layers[i].weights_hash,
                                scenario.bitflip.group_size,
                                scenario.bitflip.zero_columns);
    }
    return out;
}

}  // namespace bitwave::eval
