#include "common/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/annotations.hpp"
#include "common/env.hpp"
#include "common/logging.hpp"

namespace bitwave::trace {

namespace {

constexpr std::size_t kDefaultRingEvents = 32768;

struct ThreadBuffer
{
    MutexCap mutex;
    std::vector<Event> ring GUARDED_BY(mutex);
    /// Total events ever written.
    std::uint64_t head GUARDED_BY(mutex) = 0;
    std::uint32_t tid = 0;  ///< Immutable once the buffer is published.
};

/// Global buffer registry.  Leaked on purpose: worker threads and the
/// atexit exporter may touch it while static destructors run.
struct Global
{
    MutexCap mutex;
    std::vector<std::shared_ptr<ThreadBuffer>>
        buffers GUARDED_BY(mutex);
    std::atomic<std::uint64_t> dropped{0};
    std::size_t ring_capacity GUARDED_BY(mutex) = kDefaultRingEvents;
    std::string env_path GUARDED_BY(mutex);
};

Global &
global()
{
    static Global *const g = new Global;
    return *g;
}

std::atomic<ClockFn> g_clock{nullptr};

std::uint64_t
default_now_ns()
{
    static const auto start = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

ThreadBuffer &
local_buffer()
{
    thread_local const std::shared_ptr<ThreadBuffer> buffer = [] {
        auto fresh = std::make_shared<ThreadBuffer>();
        Global &g = global();
        MutexLock lock(g.mutex);
        {
            // Uncontended (the buffer is not yet published); taken so
            // the guarded ring/head writes satisfy the analysis.
            MutexLock init(fresh->mutex);
            fresh->ring.resize(std::max<std::size_t>(1, g.ring_capacity));
        }
        fresh->tid = static_cast<std::uint32_t>(thread_ordinal());
        g.buffers.push_back(fresh);
        return fresh;
    }();
    return *buffer;
}

void
push_event(const Event &event)
{
    ThreadBuffer &buf = local_buffer();
    MutexLock lock(buf.mutex);
    if (buf.head >= buf.ring.size()) {
        global().dropped.fetch_add(1, std::memory_order_relaxed);
    }
    buf.ring[buf.head % buf.ring.size()] = event;
    buf.head++;
}

void
write_env_trace()
{
    Global &g = global();
    std::string path;
    {
        MutexLock lock(g.mutex);
        path = g.env_path;
    }
    if (!path.empty()) {
        write_json(path);
    }
}

/// BITWAVE_TRACE=<path> arms tracing at startup and registers an
/// atexit exporter; BITWAVE_TRACE_EVENTS overrides the per-thread
/// ring capacity.
[[maybe_unused]] const bool g_env_armed = [] {
    const long long events =
        env_positive_int("BITWAVE_TRACE_EVENTS",
                         static_cast<long long>(kDefaultRingEvents));
    set_ring_capacity(static_cast<std::size_t>(events));
    const std::string path = env_string("BITWAVE_TRACE");
    if (path.empty()) {
        return false;
    }
    {
        // Under the registry mutex: the exporter path is read by
        // write_env_trace() at exit, potentially while late worker
        // threads are still registering buffers.
        Global &g = global();
        MutexLock lock(g.mutex);
        g.env_path = path;
    }
    start();
    std::atexit(&write_env_trace);
    return true;
}();

void
append_json_event(std::string &out, const Event &event)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u",
                  event.name, event.cat, event.phase,
                  static_cast<double>(event.ts_ns) / 1000.0,
                  static_cast<double>(event.dur_ns) / 1000.0, event.tid);
    out += buf;
    if (event.phase == 'i') {
        out += ",\"s\":\"t\"";
    }
    if (event.arg0_name != nullptr) {
        std::snprintf(buf, sizeof buf, ",\"args\":{\"%s\":%llu",
                      event.arg0_name,
                      static_cast<unsigned long long>(event.arg0));
        out += buf;
        if (event.arg1_name != nullptr) {
            std::snprintf(buf, sizeof buf, ",\"%s\":%llu",
                          event.arg1_name,
                          static_cast<unsigned long long>(event.arg1));
            out += buf;
        }
        out.push_back('}');
    }
    out.push_back('}');
}

} // namespace

void
set_clock(ClockFn fn)
{
    g_clock.store(fn, std::memory_order_relaxed);
}

std::uint64_t
now_ns()
{
    const ClockFn fn = g_clock.load(std::memory_order_relaxed);
    return fn != nullptr ? fn() : default_now_ns();
}

void
start()
{
    g_enabled.store(true, std::memory_order_relaxed);
}

void
stop()
{
    g_enabled.store(false, std::memory_order_relaxed);
}

void
clear()
{
    Global &g = global();
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        MutexLock lock(g.mutex);
        buffers = g.buffers;
    }
    for (const auto &buf : buffers) {
        MutexLock lock(buf->mutex);
        buf->head = 0;
    }
    g.dropped.store(0, std::memory_order_relaxed);
}

void
emit_complete(const char *name, const char *cat, std::uint64_t ts_ns,
              std::uint64_t dur_ns, const char *arg0_name,
              std::uint64_t arg0, const char *arg1_name,
              std::uint64_t arg1)
{
    if (!enabled()) {
        return;
    }
    Event event;
    event.name = name;
    event.cat = cat;
    event.ts_ns = ts_ns;
    event.dur_ns = dur_ns;
    event.phase = 'X';
    event.arg0_name = arg0_name;
    event.arg0 = arg0;
    event.arg1_name = arg1_name;
    event.arg1 = arg1;
    push_event(event);
}

void
instant(const char *name, const char *cat, const char *arg0_name,
        std::uint64_t arg0, const char *arg1_name, std::uint64_t arg1)
{
    if (!enabled()) {
        return;
    }
    Event event;
    event.name = name;
    event.cat = cat;
    event.ts_ns = now_ns();
    event.phase = 'i';
    event.arg0_name = arg0_name;
    event.arg0 = arg0;
    event.arg1_name = arg1_name;
    event.arg1 = arg1;
    push_event(event);
}

std::vector<Event>
snapshot_events()
{
    Global &g = global();
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        MutexLock lock(g.mutex);
        buffers = g.buffers;
    }
    std::vector<Event> out;
    for (const auto &buf : buffers) {
        MutexLock lock(buf->mutex);
        const std::uint64_t capacity = buf->ring.size();
        const std::uint64_t kept = std::min(buf->head, capacity);
        for (std::uint64_t i = buf->head - kept; i < buf->head; ++i) {
            Event event = buf->ring[i % capacity];
            event.tid = buf->tid;
            out.push_back(event);
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Event &a, const Event &b) {
                         return a.ts_ns < b.ts_ns;
                     });
    return out;
}

std::uint64_t
dropped_events()
{
    return global().dropped.load(std::memory_order_relaxed);
}

void
set_ring_capacity(std::size_t events)
{
    Global &g = global();
    MutexLock lock(g.mutex);
    g.ring_capacity = std::max<std::size_t>(1, events);
}

std::size_t
write_json(const std::string &path)
{
    const std::vector<Event> events = snapshot_events();
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
        warn("trace: cannot open '%s' for writing", path.c_str());
        return 0;
    }
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (i != 0) {
            out.push_back(',');
        }
        out.push_back('\n');
        append_json_event(out, events[i]);
    }
    out += "\n]}\n";
    std::fwrite(out.data(), 1, out.size(), file);
    std::fclose(file);
    return events.size();
}

} // namespace bitwave::trace
