/**
 * @file
 * One validated front door for the BITWAVE_* environment knobs
 * (BITWAVE_THREADS, BITWAVE_CACHE_ENTRIES, BITWAVE_CACHE_SHARDS,
 * BITWAVE_WORKLOAD_CACHE). Every consumer used to hand-roll its own
 * strtoll/getenv parsing with silently divergent error handling; this
 * helper parses strictly, and a malformed or out-of-range value is
 * *reported* — warned once per variable per process — instead of being
 * silently ignored, so "BITWAVE_THREADS=4x" no longer masquerades as an
 * unset knob.
 */
#pragma once

#include <string>

namespace bitwave {

/**
 * Integer environment knob: the value of @p name when it parses
 * strictly (whole string consumed) as an integer >= 1, else
 * @p fallback. Unset and empty both mean "use the fallback" silently; a
 * set-but-invalid value (garbage, trailing characters, zero, negative)
 * warns once per variable per process and then falls back.
 */
long long env_positive_int(const char *name, long long fallback);

/// String environment knob: the value of @p name, empty when unset.
std::string env_string(const char *name);

}  // namespace bitwave
