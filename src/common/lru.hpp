/**
 * @file
 * Thread-safe LRU caches for the process-wide preparation caches
 * (Bit-Flip twins, packed bit planes, workload synthesis, layer stats).
 *
 * Two implementations share one contract:
 *
 *  - `LruCache` — exact LRU under a single mutex. Kept as the simple
 *    oracle the sharded cache is tested against.
 *  - `ShardedLruCache` — the production cache: N power-of-two
 *    lock-striped shards keyed by content hash, each with a
 *    shared-mutex read fast path (concurrent hits of resident entries
 *    never contend — recency is an atomic tick, not a list splice) and
 *    per-shard capacity/eviction. With one shard and sequential access
 *    it reproduces the oracle's hit/miss/eviction behavior exactly.
 *
 * Entries build exactly once under a per-entry once_flag, so concurrent
 * first requests for the same key never duplicate work and builds of
 * different keys never serialize. Eviction drops the cache's reference
 * only; holders of the returned shared_ptr (including an in-flight
 * builder) keep the value alive.
 *
 * Every cache reads its capacity from the BITWAVE_CACHE_ENTRIES
 * environment variable and its shard count from BITWAVE_CACHE_SHARDS
 * (one pair of knobs for all of them), falling back to per-cache
 * defaults, so long-running batches can bound residency.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/metrics.hpp"

namespace bitwave {

/**
 * Capacity of a process-wide cache in entries: the value of
 * BITWAVE_CACHE_ENTRIES when set to a positive integer, else
 * @p fallback. Read per call; never returns 0.
 */
std::size_t cache_capacity_from_env(std::size_t fallback);

/**
 * Shard count of a process-wide cache: BITWAVE_CACHE_SHARDS when set
 * to a positive integer, else the smallest power of two covering the
 * machine's hardware concurrency (capped at 64). Always returns a
 * power of two >= 1.
 */
std::size_t cache_shards_from_env();

/**
 * Thread-safe LRU map from Key to immutable shared values.
 *
 * @tparam Key   hashable, equality-comparable, copyable key.
 * @tparam Value cached value type (held as shared_ptr<const Value>).
 */
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache
{
  public:
    /// @p capacity entries are retained; at least 1 is enforced.
    explicit LruCache(std::size_t capacity)
        : capacity_(capacity > 0 ? capacity : 1)
    {
    }

    /**
     * Return the cached value for @p key, building it via `build()`
     * (a callable returning Value) on the first request. The returned
     * pointer stays valid after eviction. @p was_hit, when non-null,
     * reports whether the key was already resident.
     */
    template <typename Build>
    std::shared_ptr<const Value> get_or_build(const Key &key, Build &&build,
                                              bool *was_hit = nullptr)
    {
        std::shared_ptr<Entry> entry;
        {
            MutexLock lock(mutex_);
            auto it = map_.find(key);
            if (was_hit != nullptr) {
                *was_hit = it != map_.end();
            }
            if (it != map_.end()) {
                order_.splice(order_.begin(), order_, it->second);
                entry = *it->second;
                ++hits_;
            } else {
                entry = std::make_shared<Entry>();
                order_.push_front(entry);
                map_.emplace(key, order_.begin());
                entry->key = key;
                ++misses_;
                while (map_.size() > capacity_) {
                    map_.erase(order_.back()->key);
                    order_.pop_back();
                }
            }
        }
        std::call_once(entry->once, [&] {
            entry->value = std::make_shared<const Value>(build());
        });
        return entry->value;
    }

    std::size_t size() const
    {
        MutexLock lock(mutex_);
        return map_.size();
    }
    std::size_t capacity() const { return capacity_; }
    std::int64_t hits() const
    {
        MutexLock lock(mutex_);
        return hits_;
    }
    std::int64_t misses() const
    {
        MutexLock lock(mutex_);
        return misses_;
    }

  private:
    struct Entry
    {
        Key key{};
        std::once_flag once;
        std::shared_ptr<const Value> value;
    };

    mutable MutexCap mutex_;
    /// Front = most recent.
    std::list<std::shared_ptr<Entry>> order_ GUARDED_BY(mutex_);
    std::unordered_map<Key,
                       typename std::list<std::shared_ptr<Entry>>::iterator,
                       Hash>
        map_ GUARDED_BY(mutex_);
    std::size_t capacity_;
    std::int64_t hits_ GUARDED_BY(mutex_) = 0;
    std::int64_t misses_ GUARDED_BY(mutex_) = 0;
};

/**
 * Sharded thread-safe LRU map from Key to immutable shared values.
 *
 * The key's hash selects one of `shards()` lock-striped shards
 * (power-of-two count, so selection is a mask over a mixed hash), and
 * each shard holds `ceil(capacity / shards)` entries under its own
 * shared_mutex. The hot read path — a hit on a resident entry — takes
 * the shard lock *shared* and records recency with a relaxed atomic
 * tick, so concurrent readers of the bit-plane / stats / flip-twin
 * caches never serialize; only a miss (insert + possible eviction)
 * takes the shard lock exclusively. Eviction removes the entry with
 * the smallest tick, which for sequential access is exactly the
 * least-recently-used entry of the `LruCache` oracle.
 */
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache
{
  public:
    /**
     * @p capacity total entries (distributed over the shards, at least
     * one each); @p shards a power-of-two shard count, 0 = the
     * BITWAVE_CACHE_SHARDS / hardware default. A non-null
     * @p metric_name publishes the cache's hit/miss/eviction counters
     * as `cache.<metric_name>.{hits,misses,evictions}` in the global
     * metrics registry (the hits()/misses()/evictions() accessors then
     * read the registry counters, and snapshots/Prometheus dumps see
     * this cache by name).
     */
    explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 0,
                             const char *metric_name = nullptr)
    {
        if (metric_name != nullptr) {
            const std::string prefix = std::string("cache.") + metric_name;
            hits_ = &metrics::counter(prefix + ".hits");
            misses_ = &metrics::counter(prefix + ".misses");
            evictions_ = &metrics::counter(prefix + ".evictions");
        }
        if (shards == 0) {
            shards = cache_shards_from_env();
        }
        std::size_t pow2 = 1;
        while (pow2 < shards && pow2 < 64) {
            pow2 <<= 1;
        }
        shards_.resize(pow2);
        shard_capacity_ =
            (std::max<std::size_t>(capacity, 1) + pow2 - 1) / pow2;
        for (auto &shard : shards_) {
            shard = std::make_unique<Shard>();
        }
    }

    /**
     * Return the cached value for @p key, building it via `build()` on
     * the first request — same contract as LruCache::get_or_build, plus
     * the shared-lock fast path for hits.
     */
    template <typename Build>
    std::shared_ptr<const Value> get_or_build(const Key &key, Build &&build,
                                              bool *was_hit = nullptr)
    {
        Shard &shard = *shards_[shard_index(key)];
        std::shared_ptr<Entry> entry;
        bool hit = false;
        {
            SharedLock lock(shard.mutex);
            // as_const: the const find() overload keeps this a *read*
            // of the guarded map, legal under the shared capability.
            const auto &map = std::as_const(shard.map);
            auto it = map.find(key);
            if (it != map.end()) {
                entry = it->second;
                hit = true;
                bump_recency(*entry);
            }
        }
        if (!hit) {
            ExclusiveLock lock(shard.mutex);
            auto it = shard.map.find(key);
            if (it != shard.map.end()) {
                // Raced with another inserter between the locks.
                entry = it->second;
                hit = true;
            } else {
                entry = std::make_shared<Entry>();
                entry->key = key;
                shard.map.emplace(key, entry);
            }
            bump_recency(*entry);
            while (shard.map.size() > shard_capacity_) {
                evict_oldest(shard);
            }
        }
        (hit ? *hits_ : *misses_).inc();
        if (was_hit != nullptr) {
            *was_hit = hit;
        }
        std::call_once(entry->once, [&] {
            entry->value = std::make_shared<const Value>(build());
        });
        return entry->value;
    }

    std::size_t size() const
    {
        std::size_t total = 0;
        for (const auto &shard : shards_) {
            SharedLock lock(shard->mutex);
            total += shard->map.size();
        }
        return total;
    }
    std::size_t capacity() const
    {
        return shard_capacity_ * shards_.size();
    }
    std::size_t shards() const { return shards_.size(); }
    std::int64_t hits() const
    {
        return static_cast<std::int64_t>(hits_->value());
    }
    std::int64_t misses() const
    {
        return static_cast<std::int64_t>(misses_->value());
    }
    std::int64_t evictions() const
    {
        return static_cast<std::int64_t>(evictions_->value());
    }

  private:
    struct Entry
    {
        Key key{};
        std::once_flag once;
        std::shared_ptr<const Value> value;
        std::atomic<std::uint64_t> tick{0};  ///< Last-access recency.
    };

    struct Shard
    {
        mutable SharedMutexCap mutex;
        std::unordered_map<Key, std::shared_ptr<Entry>, Hash>
            map GUARDED_BY(mutex);
    };

    void bump_recency(Entry &entry)
    {
        entry.tick.store(tick_.fetch_add(1, std::memory_order_relaxed),
                         std::memory_order_relaxed);
    }

    std::size_t shard_index(const Key &key) const
    {
        // splitmix64 finalizer: shard selection must survive identity
        // std::hash (small ints land in one shard otherwise).
        std::uint64_t h = static_cast<std::uint64_t>(Hash{}(key));
        h ^= h >> 30;
        h *= 0xBF58476D1CE4E5B9ULL;
        h ^= h >> 27;
        h *= 0x94D049BB133111EBULL;
        h ^= h >> 31;
        return static_cast<std::size_t>(h) & (shards_.size() - 1);
    }

    void evict_oldest(Shard &shard) REQUIRES(shard.mutex)
    {
        auto oldest = shard.map.end();
        std::uint64_t oldest_tick = ~std::uint64_t{0};
        for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
            const std::uint64_t t =
                it->second->tick.load(std::memory_order_relaxed);
            if (oldest == shard.map.end() || t < oldest_tick) {
                oldest = it;
                oldest_tick = t;
            }
        }
        if (oldest != shard.map.end()) {
            shard.map.erase(oldest);
            evictions_->inc();
        }
    }

    std::vector<std::unique_ptr<Shard>> shards_;
    std::size_t shard_capacity_ = 1;
    std::atomic<std::uint64_t> tick_{0};
    /// Unnamed caches count into their own private counters; named
    /// ones point at registry counters (stable addresses, never
    /// freed).
    metrics::Counter own_hits_;
    metrics::Counter own_misses_;
    metrics::Counter own_evictions_;
    metrics::Counter *hits_ = &own_hits_;
    metrics::Counter *misses_ = &own_misses_;
    metrics::Counter *evictions_ = &own_evictions_;
};

}  // namespace bitwave
