/**
 * @file
 * A small thread-safe LRU cache for the process-wide preparation caches
 * (Bit-Flip twins, packed bit planes, workload synthesis, layer stats).
 *
 * Entries build exactly once under a per-entry once_flag, so concurrent
 * first requests for the same key never duplicate work and builds of
 * different keys never serialize. Eviction drops the cache's reference
 * only; holders of the returned shared_ptr (including an in-flight
 * builder) keep the value alive.
 *
 * Every cache reads its capacity from the BITWAVE_CACHE_ENTRIES
 * environment variable (one knob for all of them), falling back to a
 * per-cache default, so long-running batches can bound residency.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace bitwave {

/**
 * Capacity of a process-wide cache in entries: the value of
 * BITWAVE_CACHE_ENTRIES when set to a positive integer, else
 * @p fallback. Read per call; never returns 0.
 */
std::size_t cache_capacity_from_env(std::size_t fallback);

/**
 * Thread-safe LRU map from Key to immutable shared values.
 *
 * @tparam Key   hashable, equality-comparable, copyable key.
 * @tparam Value cached value type (held as shared_ptr<const Value>).
 */
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache
{
  public:
    /// @p capacity entries are retained; at least 1 is enforced.
    explicit LruCache(std::size_t capacity)
        : capacity_(capacity > 0 ? capacity : 1)
    {
    }

    /**
     * Return the cached value for @p key, building it via `build()`
     * (a callable returning Value) on the first request. The returned
     * pointer stays valid after eviction. @p was_hit, when non-null,
     * reports whether the key was already resident.
     */
    template <typename Build>
    std::shared_ptr<const Value> get_or_build(const Key &key, Build &&build,
                                              bool *was_hit = nullptr)
    {
        std::shared_ptr<Entry> entry;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = map_.find(key);
            if (was_hit != nullptr) {
                *was_hit = it != map_.end();
            }
            if (it != map_.end()) {
                order_.splice(order_.begin(), order_, it->second);
                entry = *it->second;
                ++hits_;
            } else {
                entry = std::make_shared<Entry>();
                order_.push_front(entry);
                map_.emplace(key, order_.begin());
                entry->key = key;
                ++misses_;
                while (map_.size() > capacity_) {
                    map_.erase(order_.back()->key);
                    order_.pop_back();
                }
            }
        }
        std::call_once(entry->once, [&] {
            entry->value = std::make_shared<const Value>(build());
        });
        return entry->value;
    }

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return map_.size();
    }
    std::size_t capacity() const { return capacity_; }
    std::int64_t hits() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return hits_;
    }
    std::int64_t misses() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return misses_;
    }

  private:
    struct Entry
    {
        Key key{};
        std::once_flag once;
        std::shared_ptr<const Value> value;
    };

    mutable std::mutex mutex_;
    std::list<std::shared_ptr<Entry>> order_;  ///< Front = most recent.
    std::unordered_map<Key,
                       typename std::list<std::shared_ptr<Entry>>::iterator,
                       Hash>
        map_;
    std::size_t capacity_;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
};

}  // namespace bitwave
