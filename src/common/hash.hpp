/**
 * @file
 * Deterministic hashing shared across the caches: splitmix64 for seed
 * derivation (scenario / layer RNG streams) and FNV-1a for content
 * hashing of tensors and cache keys.
 *
 * Both functions are fixed algorithms with stable outputs across
 * platforms and runs — cache keys derived from them are valid as on-disk
 * identities and the seed streams reproduce bit-identically everywhere.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace bitwave {

/// splitmix64 — tiny, well-mixed, and exactly reproducible everywhere.
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// FNV-1a offset basis (64-bit).
inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

/// Mix @p bytes into a running FNV-1a hash @p h.
inline std::uint64_t
fnv1a(const void *bytes, std::size_t size, std::uint64_t h = kFnvBasis)
{
    const auto *p = static_cast<const unsigned char *>(bytes);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// Mix one integer value into a running hash (order-sensitive).
constexpr std::uint64_t
hash_combine(std::uint64_t h, std::uint64_t value)
{
    return splitmix64(h ^ value);
}

}  // namespace bitwave
