#include "common/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/logging.hpp"

namespace bitwave {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    if (header_.empty()) {
        panic("Table requires at least one column");
    }
}

void
Table::add_row(std::vector<std::string> row)
{
    if (row.size() != header_.size()) {
        panic("Table row arity %zu does not match header arity %zu",
              row.size(), header_.size());
    }
    rows_.push_back(std::move(row));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size()) {
                out << std::string(widths[c] - row[c].size() + 2, ' ');
            }
        }
        out << '\n';
    };

    emit_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    }
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_) {
        emit_row(row);
    }
    return out.str();
}

std::string
fmt_double(double value, int digits)
{
    return strprintf("%.*f", digits, value);
}

std::string
fmt_percent(double fraction, int digits)
{
    return strprintf("%.*f%%", digits, fraction * 100.0);
}

std::string
fmt_ratio(double value, int digits)
{
    return strprintf("%.*fx", digits, value);
}

}  // namespace bitwave
