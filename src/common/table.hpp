/**
 * @file
 * Plain-text table rendering used by the benchmark harness to print the
 * rows/series of each paper table and figure in a uniform format.
 */
#pragma once

#include <string>
#include <vector>

namespace bitwave {

/**
 * A simple column-aligned ASCII table.
 *
 * Usage:
 * @code
 *   Table t({"network", "value sparsity", "bit sparsity"});
 *   t.add_row({"ResNet18", "3.1%", "54.2%"});
 *   std::cout << t.render();
 * @endcode
 */
class Table
{
  public:
    /// Construct with one header cell per column.
    explicit Table(std::vector<std::string> header);

    /// Append a data row; must have the same arity as the header.
    void add_row(std::vector<std::string> row);

    /// Render with aligned columns and a header separator line.
    std::string render() const;

    /// Number of data rows added so far.
    std::size_t row_count() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with @p digits fractional digits ("12.34").
std::string fmt_double(double value, int digits = 2);

/// Format a ratio as a percentage string ("12.3%").
std::string fmt_percent(double fraction, int digits = 1);

/// Format a speedup/ratio with a trailing 'x' ("3.41x").
std::string fmt_ratio(double value, int digits = 2);

}  // namespace bitwave
