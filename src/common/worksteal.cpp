#include "common/worksteal.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/rng.hpp"

namespace bitwave {

int &
detail::parallel_depth()
{
    thread_local int depth = 0;
    return depth;
}

namespace {

/// A [begin, end) range packed into one lock-free word (32 bits each;
/// the impl falls back to inline execution before n can overflow).
std::uint64_t
pack_range(std::size_t begin, std::size_t end)
{
    return (static_cast<std::uint64_t>(begin) << 32) |
           static_cast<std::uint64_t>(end);
}

void
unpack_range(std::uint64_t packed, std::size_t *begin, std::size_t *end)
{
    *begin = static_cast<std::size_t>(packed >> 32);
    *end = static_cast<std::size_t>(packed & 0xFFFFFFFFULL);
}

/**
 * Chase–Lev work-stealing deque of packed ranges with a fixed circular
 * buffer. The owner pushes and pops at the bottom; thieves steal from
 * the top. Index loads/stores use seq_cst ordering (the original
 * sequentially-consistent formulation) rather than standalone fences —
 * marginally more synchronization on the owner's path, but every
 * ordering is expressed on an atomic access, which ThreadSanitizer
 * models exactly (standalone atomic_thread_fence is not instrumented),
 * so the CI TSan job verifies the real protocol. Slots are atomics as
 * well: a thief may read a slot the owner is concurrently recycling,
 * and the subsequent CAS on top_ discards the stale value.
 */
class RangeDeque
{
  public:
    static constexpr std::size_t kCapacity = 1024;  // power of two

    /// Owner-only (or pre-start seeding). False when full — the caller
    /// must then execute the range itself instead of queueing it.
    bool push_bottom(std::uint64_t v)
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_acquire);
        if (b - t >= static_cast<std::int64_t>(kCapacity)) {
            return false;
        }
        slots_[static_cast<std::size_t>(b) & kMask].store(
            v, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_seq_cst);
        return true;
    }

    /// Owner-only: LIFO pop from the bottom.
    bool pop_bottom(std::uint64_t *out)
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        bottom_.store(b, std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        if (t <= b) {
            *out = slots_[static_cast<std::size_t>(b) & kMask].load(
                std::memory_order_relaxed);
            if (t == b) {
                // Last element: race the thieves for it via top_.
                const bool won = top_.compare_exchange_strong(
                    t, t + 1, std::memory_order_seq_cst,
                    std::memory_order_seq_cst);
                bottom_.store(b + 1, std::memory_order_seq_cst);
                return won;
            }
            return true;
        }
        bottom_.store(b + 1, std::memory_order_seq_cst);
        return false;
    }

    /// Any thread: FIFO steal from the top.
    bool steal_top(std::uint64_t *out)
    {
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
        if (t >= b) {
            return false;
        }
        const std::uint64_t v =
            slots_[static_cast<std::size_t>(t) & kMask].load(
                std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_seq_cst)) {
            return false;  // lost the race; the value read is stale
        }
        *out = v;
        return true;
    }

  private:
    static constexpr std::size_t kMask = kCapacity - 1;

    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::atomic<std::uint64_t> slots_[kCapacity];
};

/// Shared state of one worksteal_run() call.
struct Pool
{
    const std::function<void(std::size_t, std::size_t)> *body = nullptr;
    std::size_t grain = 1;
    int threads = 1;
    std::uint64_t chaos_seed = 0;

    std::vector<std::unique_ptr<RangeDeque>> deques;
    std::atomic<std::size_t> remaining{0};  ///< Items not yet executed.
    std::atomic<bool> cancel{false};
    MutexCap error_mutex;
    std::exception_ptr first_error GUARDED_BY(error_mutex);
    std::atomic<std::int64_t> chunks{0};
    std::atomic<std::int64_t> steals{0};

    /// Run body(begin, begin+chunk) guarding the cancel protocol.
    /// Returns false when the pool is cancelled.
    bool run_chunk(std::size_t begin, std::size_t end)
    {
        if (cancel.load(std::memory_order_relaxed)) {
            return false;
        }
        try {
            (*body)(begin, end);
        } catch (...) {
            {
                MutexLock lock(error_mutex);
                if (!first_error) {
                    first_error = std::current_exception();
                }
            }
            cancel.store(true, std::memory_order_relaxed);
            return false;
        }
        chunks.fetch_add(1, std::memory_order_relaxed);
        remaining.fetch_sub(end - begin, std::memory_order_relaxed);
        return true;
    }

    /// Execute a range one grain chunk at a time, re-pushing the tail
    /// onto the worker's own deque so it stays stealable. When the
    /// deque is full the tail executes inline — correctness never
    /// depends on queueing.
    void execute_range(int worker, std::size_t begin, std::size_t end)
    {
        while (begin < end) {
            const std::size_t chunk_end =
                std::min(end, begin + grain);
            if (chunk_end < end &&
                deques[static_cast<std::size_t>(worker)]->push_bottom(
                    pack_range(chunk_end, end))) {
                run_chunk(begin, chunk_end);
                return;  // tail queued; resume from the scheduler loop
            }
            if (!run_chunk(begin, chunk_end)) {
                return;
            }
            begin = chunk_end;
        }
    }

    /// Steal one range for @p worker, splitting large ranges in half so
    /// coarse tasks spread in O(log n) steals. @p rng orders victims
    /// when the adversarial scheduler is active.
    bool try_steal(int worker, Rng *rng, std::size_t *begin,
                   std::size_t *end)
    {
        for (int probe = 1; probe < threads; ++probe) {
            int victim;
            if (rng != nullptr) {
                victim = static_cast<int>(
                    rng->uniform_int(0, threads - 1));
                if (victim == worker) {
                    continue;
                }
            } else {
                victim = (worker + probe) % threads;
            }
            std::uint64_t packed = 0;
            if (!deques[static_cast<std::size_t>(victim)]->steal_top(
                    &packed)) {
                continue;
            }
            steals.fetch_add(1, std::memory_order_relaxed);
            unpack_range(packed, begin, end);
            if (*end - *begin > grain) {
                // Keep the front half; the back half becomes stealable
                // from this worker's own deque.
                const std::size_t mid =
                    *begin + (*end - *begin + 1) / 2;
                if (deques[static_cast<std::size_t>(worker)]->push_bottom(
                        pack_range(mid, *end))) {
                    *end = mid;
                }
            }
            return true;
        }
        return false;
    }

    void run_worker(int worker)
    {
        detail::parallel_depth() = 1;  // nested loops run inline
        RangeDeque &own = *deques[static_cast<std::size_t>(worker)];
        std::unique_ptr<Rng> chaos;
        if (chaos_seed != 0) {
            chaos = std::make_unique<Rng>(
                chaos_seed * 0x9E3779B97F4A7C15ULL +
                static_cast<std::uint64_t>(worker));
        }
        while (!cancel.load(std::memory_order_relaxed) &&
               remaining.load(std::memory_order_relaxed) > 0) {
            std::size_t begin = 0, end = 0;
            bool got = false;
            // Adversarial mode steals *before* draining the own deque
            // half the time, forcing the cross-worker paths.
            if (chaos && chaos->bernoulli(0.5)) {
                got = try_steal(worker, chaos.get(), &begin, &end);
            }
            if (!got) {
                std::uint64_t packed = 0;
                if (own.pop_bottom(&packed)) {
                    unpack_range(packed, &begin, &end);
                    got = true;
                }
            }
            if (!got) {
                got = try_steal(worker, chaos.get(), &begin, &end);
            }
            if (got) {
                execute_range(worker, begin, end);
            } else {
                std::this_thread::yield();
            }
        }
    }
};

}  // namespace

WorkstealStats
detail::worksteal_run_impl(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)> &body,
    const WorkstealOptions &options)
{
    WorkstealStats stats;
    if (n == 0) {
        return stats;
    }
    int threads = options.threads;
    if (threads <= 0) {
        threads = parallel_threads(n);
    }
    const std::size_t grain = std::max<std::size_t>(options.grain, 1);

    // Inline paths: nested frames, a single effective worker
    // (BITWAVE_THREADS=1 lands here), nothing to split, or an index
    // space too large for the packed ranges. No thread, deque, or
    // allocation is constructed — the caller's thread runs the loop.
    if (parallel_depth() > 0 || threads <= 1 || n <= grain ||
        n > 0xFFFFFFFFULL) {
        body(0, n);
        stats.chunks = 1;
        return stats;
    }

    Pool pool;
    pool.body = &body;
    pool.grain = grain;
    pool.threads = threads;
    pool.chaos_seed = options.chaos_seed;
    pool.remaining.store(n, std::memory_order_relaxed);
    pool.deques.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        pool.deques.push_back(std::make_unique<RangeDeque>());
    }
    // Seed each worker with one coarse contiguous slice; stealing and
    // split-on-steal redistribute whatever turns out to be uneven. The
    // adversarial scheduler hands the slices out in reversed worker
    // order so every index also runs under a different initial owner.
    const std::size_t per =
        (n + static_cast<std::size_t>(threads) - 1) /
        static_cast<std::size_t>(threads);
    for (int t = 0; t < threads; ++t) {
        const std::size_t begin = static_cast<std::size_t>(t) * per;
        const std::size_t end = std::min(n, begin + per);
        const int owner =
            options.chaos_seed != 0 ? threads - 1 - t : t;
        if (begin < end) {
            pool.deques[static_cast<std::size_t>(owner)]->push_bottom(
                pack_range(begin, end));
        }
    }

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads) - 1);
    for (int t = 1; t < threads; ++t) {
        workers.emplace_back([&pool, t] { pool.run_worker(t); });
    }
    {
        // The caller is worker 0; restore its frame depth afterwards.
        const int saved_depth = parallel_depth();
        pool.run_worker(0);
        parallel_depth() = saved_depth;
    }
    for (auto &w : workers) {
        w.join();
    }
    {
        // Workers have joined, but the analysis (rightly) wants the
        // guarded slot read under its mutex.
        MutexLock lock(pool.error_mutex);
        if (pool.first_error) {
            std::rethrow_exception(pool.first_error);
        }
    }
    stats.threads_used = threads;
    stats.chunks = pool.chunks.load(std::memory_order_relaxed);
    stats.steals = pool.steals.load(std::memory_order_relaxed);
    return stats;
}

}  // namespace bitwave
