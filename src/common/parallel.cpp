#include "common/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace bitwave {

int
parallel_threads(std::size_t n)
{
    int threads = 0;
    if (const char *env = std::getenv("BITWAVE_THREADS")) {
        threads = std::atoi(env);
    }
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
    }
    threads = std::max(threads, 1);
    return static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(threads),
                              std::max<std::size_t>(n, 1)));
}

}  // namespace bitwave
