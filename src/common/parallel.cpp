#include "common/parallel.hpp"

#include <algorithm>
#include <thread>

#include "common/env.hpp"

namespace bitwave {

int
parallel_threads(std::size_t n)
{
    int threads = static_cast<int>(env_positive_int("BITWAVE_THREADS", 0));
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
    }
    threads = std::max(threads, 1);
    return static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(threads),
                              std::max<std::size_t>(n, 1)));
}

}  // namespace bitwave
