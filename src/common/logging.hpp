/**
 * @file
 * Minimal logging / fatal-error facilities in the spirit of gem5's
 * logging.hh: `fatal` for user errors that make continuing impossible,
 * `panic` for internal invariant violations, `warn`/`inform` for status.
 */
#pragma once

#include <cstdarg>
#include <functional>
#include <string>

namespace bitwave {

/// Verbosity levels for status messages.
enum class LogLevel { kSilent = 0, kWarn = 1, kInform = 2, kDebug = 3 };

/// Set the global verbosity threshold (default kWarn).
void set_log_level(LogLevel level);

/// Current global verbosity threshold.
LogLevel log_level();

/**
 * Sink receiving every formatted log line (level + message without the
 * trailing newline). All messages — inform/warn/fatal/panic and the
 * warn_once dedup path — funnel through one mutex-serialised sink, so
 * concurrent loggers never interleave lines and an embedding process
 * (an MPI rank, a test harness) can capture or redirect everything.
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/// Replace the sink (nullptr/default restores stderr). Returns the
/// previous sink so scoped captures can chain.
LogSink set_log_sink(LogSink sink);

/// Print an informational message when verbosity allows (printf-style).
void inform(const char *fmt, ...);

/// Print a warning when verbosity allows (printf-style).
void warn(const char *fmt, ...);

/**
 * Warn once per @p key per process (printf-style): a long-running
 * service with a typoed knob or a recurring injected fault logs one
 * line, not one per occurrence.
 */
void warn_once(const char *key, const char *fmt, ...);

/**
 * Report an unrecoverable user-facing error (bad configuration, invalid
 * arguments) and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...);

/**
 * Report an internal invariant violation (a bug in this library) and
 * abort().
 */
[[noreturn]] void panic(const char *fmt, ...);

/// Printf-style formatting into a std::string.
std::string strprintf(const char *fmt, ...);

/**
 * Small sequential ordinal of the calling thread (0, 1, 2, … in
 * first-use order). Stable for the thread's lifetime; shared by the
 * default log sink's stamps and the trace exporter's `tid` field so a
 * log line and a trace row from the same thread carry the same id.
 */
int thread_ordinal();

/// Monotonic seconds since the process started (the default log
/// sink's timestamp base).
double log_uptime_seconds();

}  // namespace bitwave
