/**
 * @file
 * Deterministic fork-join helper for data-parallel loops whose
 * iterations are independent (workload-weight materialization, bench
 * sweeps). Results must not depend on which thread runs an index — the
 * helper only distributes indices, it adds no per-thread state.
 *
 * Since the work-stealing rebuild this is a thin facade over the
 * Chase–Lev deque core in common/worksteal.hpp: every loop gets
 * steal-based load balancing, the relaxed-atomic cancel flag (the first
 * exception stops sibling workers at their next chunk boundary), and
 * the single-thread inline bypass (BITWAVE_THREADS=1 never constructs
 * a pool or deque).
 *
 * Nested calls run serially: when `fn` itself reaches a parallel_for
 * (worker threads inherit the caller's frame), the inner loop executes
 * inline instead of oversubscribing the machine with threads x threads
 * workers. Parallelism always belongs to the outermost loop.
 */
#pragma once

#include <cstddef>

#include "common/worksteal.hpp"

namespace bitwave {

/**
 * Run `fn(i)` for every i in [0, n) on up to @p threads workers
 * (0 = parallel_threads(n)). Iterations must be independent; the first
 * exception thrown is rethrown on the caller after all workers stop.
 */
template <typename Fn>
void
parallel_for(std::size_t n, Fn &&fn, int threads = 0)
{
    worksteal_for(n, fn, threads);
}

}  // namespace bitwave
