/**
 * @file
 * Minimal deterministic fork-join helper for data-parallel loops whose
 * iterations are independent (workload-weight materialization, bench
 * sweeps). Results must not depend on which thread runs an index — the
 * helper only distributes indices, it adds no per-thread state.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace bitwave {

/// Worker threads to use for @p n independent items; respects the
/// BITWAVE_THREADS environment override, else hardware concurrency.
int parallel_threads(std::size_t n);

namespace detail {
/// Depth of parallel_for frames on this thread (see nesting note).
int &parallel_depth();
}  // namespace detail

/**
 * Run `fn(i)` for every i in [0, n) on up to @p threads workers
 * (0 = parallel_threads(n)). Iterations must be independent; the first
 * exception thrown is rethrown on the caller after all workers join.
 *
 * Nested calls run serially: when `fn` itself reaches a parallel_for
 * (worker threads inherit the caller's frame), the inner loop executes
 * inline instead of oversubscribing the machine with threads x threads
 * workers. Parallelism always belongs to the outermost loop.
 */
template <typename Fn>
void
parallel_for(std::size_t n, Fn &&fn, int threads = 0)
{
    if (threads <= 0) {
        threads = parallel_threads(n);
    }
    if (detail::parallel_depth() > 0 || threads <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
        }
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            detail::parallel_depth() = 1;  // serialize nested loops
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n || failed.load(std::memory_order_relaxed)) {
                    return;
                }
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error) {
                        first_error = std::current_exception();
                    }
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        });
    }
    for (auto &worker : pool) {
        worker.join();
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

}  // namespace bitwave
