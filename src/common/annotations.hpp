/**
 * @file
 * Clang thread-safety annotations + annotated synchronization wrappers —
 * the compile-time half of the concurrency contract.
 *
 * Every lock-guarded structure in the tree (MPMC queue, LRU caches,
 * metrics registry, log sink, fault registry, trace rings, worksteal
 * pool, evaluation service) declares *which* mutex guards *which* data
 * with these macros, and Clang's `-Wthread-safety` analysis turns a
 * forgotten lock into a build error instead of a lucky TSan catch. The
 * CI static-analysis job compiles the whole tree with
 * `-Wthread-safety -Werror`; off Clang every macro expands to nothing,
 * so GCC builds (and the TSan/ASan jobs) are unaffected.
 *
 * The wrappers exist because the analysis is intra-procedural: it does
 * not see through `std::lock_guard`'s constructor, so annotated code
 * uses
 *
 *  - `MutexCap` / `SharedMutexCap` — capability-annotated mutexes.
 *    They satisfy Lockable/SharedLockable, so `std::lock_guard`,
 *    `std::unique_lock` and `std::shared_lock` still work on them in
 *    un-analyzed code;
 *  - `MutexLock` / `SharedLock` / `ExclusiveLock` — SCOPED_CAPABILITY
 *    RAII guards the analysis tracks exactly;
 *  - `CondVarCap` — a condition variable whose waits are annotated
 *    `REQUIRES(m)`. Predicate waits become explicit while-loops in the
 *    caller (which holds the capability), the one place the std
 *    predicate-lambda shape and the analysis disagree.
 *
 * Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define BITWAVE_TSA(x) __attribute__((x))
#else
#define BITWAVE_TSA(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability ("mutex", "shared_mutex").
#define CAPABILITY(x) BITWAVE_TSA(capability(x))

/// Marks an RAII class whose ctor acquires and dtor releases a
/// capability.
#define SCOPED_CAPABILITY BITWAVE_TSA(scoped_lockable)

/// Data member readable/writable only while holding the capability.
#define GUARDED_BY(x) BITWAVE_TSA(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the capability.
#define PT_GUARDED_BY(x) BITWAVE_TSA(pt_guarded_by(x))

/// Function requires the capability held (exclusive) on entry and exit.
#define REQUIRES(...) BITWAVE_TSA(requires_capability(__VA_ARGS__))

/// Function requires at least shared access on entry and exit.
#define REQUIRES_SHARED(...) \
    BITWAVE_TSA(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusive) and does not release it.
#define ACQUIRE(...) BITWAVE_TSA(acquire_capability(__VA_ARGS__))

/// Function acquires shared access and does not release it.
#define ACQUIRE_SHARED(...) \
    BITWAVE_TSA(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive).
#define RELEASE(...) BITWAVE_TSA(release_capability(__VA_ARGS__))

/// Function releases shared access.
#define RELEASE_SHARED(...) \
    BITWAVE_TSA(release_shared_capability(__VA_ARGS__))

/// Function releases the capability whether held shared or exclusive
/// (the right annotation for a scoped guard's destructor).
#define RELEASE_GENERIC(...) \
    BITWAVE_TSA(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success value.
#define TRY_ACQUIRE(...) BITWAVE_TSA(try_acquire_capability(__VA_ARGS__))

/// Shared-access variant of TRY_ACQUIRE.
#define TRY_ACQUIRE_SHARED(...) \
    BITWAVE_TSA(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called while holding the capability
/// (non-reentrancy / deadlock documentation).
#define EXCLUDES(...) BITWAVE_TSA(locks_excluded(__VA_ARGS__))

/// Asserts (at analysis level) that the capability is already held.
#define ASSERT_CAPABILITY(x) BITWAVE_TSA(assert_capability(x))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) BITWAVE_TSA(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use
/// carries a comment justifying why (e.g. a deliberately lock-free
/// read of a published-once slot).
#define NO_THREAD_SAFETY_ANALYSIS BITWAVE_TSA(no_thread_safety_analysis)

namespace bitwave {

/**
 * `std::mutex` with the capability annotation. Lockable, so std lock
 * guards work on it; annotated code uses MutexLock so the analysis
 * tracks the critical section.
 */
class CAPABILITY("mutex") MutexCap
{
  public:
    MutexCap() = default;
    MutexCap(const MutexCap &) = delete;
    MutexCap &operator=(const MutexCap &) = delete;

    void lock() ACQUIRE() { mutex_.lock(); }
    void unlock() RELEASE() { mutex_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

    /// The underlying std::mutex — the seam CondVarCap waits through
    /// (std::condition_variable only accepts std::mutex).
    std::mutex &native() { return mutex_; }

  private:
    std::mutex mutex_;
};

/**
 * `std::shared_mutex` with the capability annotation: exclusive writers
 * via lock()/unlock(), shared readers via lock_shared()/unlock_shared().
 */
class CAPABILITY("shared_mutex") SharedMutexCap
{
  public:
    SharedMutexCap() = default;
    SharedMutexCap(const SharedMutexCap &) = delete;
    SharedMutexCap &operator=(const SharedMutexCap &) = delete;

    void lock() ACQUIRE() { mutex_.lock(); }
    void unlock() RELEASE() { mutex_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }
    void lock_shared() ACQUIRE_SHARED() { mutex_.lock_shared(); }
    void unlock_shared() RELEASE_SHARED() { mutex_.unlock_shared(); }
    bool try_lock_shared() TRY_ACQUIRE_SHARED(true)
    {
        return mutex_.try_lock_shared();
    }

  private:
    std::shared_mutex mutex_;
};

/// RAII exclusive lock on a MutexCap (the annotated std::lock_guard).
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(MutexCap &mutex) ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }
    ~MutexLock() RELEASE_GENERIC() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    MutexCap &mutex_;
};

/// RAII shared (reader) lock on a SharedMutexCap.
class SCOPED_CAPABILITY SharedLock
{
  public:
    explicit SharedLock(SharedMutexCap &mutex) ACQUIRE_SHARED(mutex)
        : mutex_(mutex)
    {
        mutex_.lock_shared();
    }
    ~SharedLock() RELEASE_GENERIC() { mutex_.unlock_shared(); }

    SharedLock(const SharedLock &) = delete;
    SharedLock &operator=(const SharedLock &) = delete;

  private:
    SharedMutexCap &mutex_;
};

/// RAII exclusive (writer) lock on a SharedMutexCap.
class SCOPED_CAPABILITY ExclusiveLock
{
  public:
    explicit ExclusiveLock(SharedMutexCap &mutex) ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }
    ~ExclusiveLock() RELEASE_GENERIC() { mutex_.unlock(); }

    ExclusiveLock(const ExclusiveLock &) = delete;
    ExclusiveLock &operator=(const ExclusiveLock &) = delete;

  private:
    SharedMutexCap &mutex_;
};

/**
 * Condition variable for MutexCap critical sections. Waits are
 * annotated REQUIRES(m) — the capability is held on entry, released
 * for the duration of the block, and re-held on return — so guarded
 * predicates are checked in the *caller's* while-loop:
 *
 *     MutexLock lock(mutex_);
 *     while (!ready_) {          // ready_ GUARDED_BY(mutex_): checked
 *         cv_.wait(mutex_);
 *     }
 */
class CondVarCap
{
  public:
    void wait(MutexCap &mutex) REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> lock(mutex.native(),
                                          std::adopt_lock);
        cv_.wait(lock);
        lock.release();  // ownership stays with the caller's guard
    }

    /// Bounded wait; std::cv_status::timeout when @p deadline passed.
    template <typename Clock, typename Duration>
    std::cv_status
    wait_until(MutexCap &mutex,
               const std::chrono::time_point<Clock, Duration> &deadline)
        REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> lock(mutex.native(),
                                          std::adopt_lock);
        const std::cv_status status = cv_.wait_until(lock, deadline);
        lock.release();
        return status;
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

}  // namespace bitwave
