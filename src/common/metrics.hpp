#pragma once

// Process-wide metrics registry: named counters, gauges, and
// log-bucketed histograms with a wait-free relaxed-atomic hot path.
//
// Handles returned by counter()/gauge()/histogram() have stable
// addresses for the life of the process — call sites look a metric up
// once (usually into a function-local static) and then bump a plain
// relaxed atomic.  Registry histograms are gated on a global arm flag
// (BITWAVE_METRICS=1 or metrics::set_enabled(true)); a disarmed
// record() costs one relaxed load plus a never-taken branch, the same
// budget as a disarmed fault point.  Counters and gauges are always
// live: they replace the ad-hoc telemetry structs that previous PRs
// scattered across the service, runner, caches, and fault registry.
//
// snapshot() collects every registered metric into a name-sorted
// Snapshot that render_prometheus()/render_json() turn into the two
// standard exposition formats.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bitwave::metrics {

/// True when histogram recording is armed (BITWAVE_METRICS=1 or
/// set_enabled(true)).  Counters and gauges ignore this flag.
inline std::atomic<bool> g_enabled{false};

inline bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on);

/// Monotonic counter.  inc() is a single relaxed fetch_add.
class Counter
{
  public:
    void inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins signed gauge.
class Gauge
{
  public:
    void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
};

/// Bucket count for the log-scaled histogram: values 0..15 get a
/// bucket each, then four sub-buckets per octave up to 2^48 (≈3.3
/// days in nanoseconds), clamping anything larger into the top
/// bucket.  16 + (48 - 4) * 4 = 192.
inline constexpr int kHistogramBuckets = 192;

/// Value-type copy of a histogram: fixed-size arrays only, so taking
/// one never allocates (ServiceStats embeds three of these and its
/// stats() read path is asserted allocation-free).
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kHistogramBuckets> buckets{};

    double mean() const
    {
        return count == 0 ? 0.0
                          : static_cast<double>(sum) /
                                static_cast<double>(count);
    }

    /// Quantile estimate (q in [0,1]) by linear interpolation inside
    /// the bucket that crosses the target rank.  Returns 0 when the
    /// histogram is empty.
    double quantile(double q) const;
};

/// Log-bucketed histogram.  record() is wait-free: two relaxed
/// fetch_adds plus one bucket fetch_add when armed, a relaxed load
/// and branch when the histogram is gated and metrics are disarmed.
class Histogram
{
  public:
    /// Gated histograms (the registry default) only record while
    /// metrics::enabled(); ungated ones always record — the service
    /// owns always-on phase histograms so stats() is populated even
    /// without BITWAVE_METRICS.
    explicit Histogram(bool gated = true) : gated_(gated) {}

    void record(std::uint64_t value)
    {
        if (gated_ && !enabled()) {
            return;
        }
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
        buckets_[bucket_index(value)].fetch_add(
            1, std::memory_order_relaxed);
    }

    HistogramSnapshot snapshot() const;

    /// Bucket for a value: identity below 16, then quarter-octave.
    static int bucket_index(std::uint64_t value);
    /// Smallest value that lands in bucket `index`.
    static std::uint64_t bucket_lower_bound(int index);

  private:
    const bool gated_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
};

/// Look up (or register) a metric by dotted name.  The returned
/// reference is valid forever; lookups take one shard mutex, so cache
/// the reference on hot paths.
Counter &counter(std::string_view name);
Gauge &gauge(std::string_view name);
Histogram &histogram(std::string_view name);

/// Value of a registered counter, or 0 when no such counter exists.
/// Legacy accessors (bitplane_cache_counters() and friends) are thin
/// views built on this.
std::uint64_t counter_value(std::string_view name);

/// Point-in-time copy of the whole registry, sorted by name.
struct Snapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

Snapshot snapshot();

/// Prometheus text exposition format (metric names are prefixed with
/// "bitwave_" and dots become underscores; histogram buckets are
/// emitted cumulatively with nanosecond `le` bounds).
std::string render_prometheus(const Snapshot &snap);

/// Compact JSON object: {"counters":{...},"gauges":{...},
/// "histograms":{name:{count,sum,mean,p50,p90,p99}}}.
std::string render_json(const Snapshot &snap);

/// Reset every registered counter/gauge/histogram to zero.  Handles
/// stay valid.  Tests only — racing writers may leave a torn view.
void zero_all_for_tests();

} // namespace bitwave::metrics
