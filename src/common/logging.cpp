#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace bitwave {

namespace {

LogLevel g_level = LogLevel::kWarn;

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed <= 0) {
        return {};
    }
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

}  // namespace

void
set_log_level(LogLevel level)
{
    g_level = level;
}

LogLevel
log_level()
{
    return g_level;
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::kInform) {
        return;
    }
    std::va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "info: %s\n", vformat(fmt, args).c_str());
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::kWarn) {
        return;
    }
    std::va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "warn: %s\n", vformat(fmt, args).c_str());
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "fatal: %s\n", vformat(fmt, args).c_str());
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "panic: %s\n", vformat(fmt, args).c_str());
    va_end(args);
    std::abort();
}

std::string
strprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vformat(fmt, args);
    va_end(args);
    return out;
}

}  // namespace bitwave
