#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>
#include <vector>

#include "common/annotations.hpp"

namespace bitwave {

namespace {

/// Verbosity threshold. Atomic (relaxed) because tests flip it while
/// worker threads log; the threshold is a monotonic filter, not a
/// synchronisation point, so no ordering is needed.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

LogLevel
level_relaxed()
{
    return g_level.load(std::memory_order_relaxed);
}

/// The sink and the mutex serialising every emission. One struct so
/// the guarded_by relation is spelled in the type: fatal and panic
/// messages flush through the same mutex, and concurrent loggers never
/// interleave lines.
struct LogState
{
    MutexCap mutex;
    LogSink sink GUARDED_BY(mutex);
};

LogState &
log_state()
{
    static LogState state;
    return state;
}

/// Single choke point: every message lands here under the log mutex.
/// Custom sinks receive the raw message; only the default stderr sink
/// prepends the monotonic stamp + thread ordinal, so sink-capturing
/// tests (and warn_once dedup, keyed before any stamping) stay
/// byte-stable.
void
emit(LogLevel level, const char *prefix, const std::string &message)
{
    LogState &state = log_state();
    MutexLock lock(state.mutex);
    if (state.sink) {
        state.sink(level, message);
        return;
    }
    std::fprintf(stderr, "[%12.6f t%02d] %s: %s\n", log_uptime_seconds(),
                 thread_ordinal(), prefix, message.c_str());
}

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed <= 0) {
        return {};
    }
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

}  // namespace

void
set_log_level(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
log_level()
{
    return level_relaxed();
}

LogSink
set_log_sink(LogSink sink)
{
    LogState &state = log_state();
    MutexLock lock(state.mutex);
    LogSink previous = std::move(state.sink);
    state.sink = std::move(sink);
    return previous;
}

void
inform(const char *fmt, ...)
{
    if (level_relaxed() < LogLevel::kInform) {
        return;
    }
    std::va_list args;
    va_start(args, fmt);
    const std::string message = vformat(fmt, args);
    va_end(args);
    emit(LogLevel::kInform, "info", message);
}

void
warn(const char *fmt, ...)
{
    if (level_relaxed() < LogLevel::kWarn) {
        return;
    }
    std::va_list args;
    va_start(args, fmt);
    const std::string message = vformat(fmt, args);
    va_end(args);
    emit(LogLevel::kWarn, "warn", message);
}

void
warn_once(const char *key, const char *fmt, ...)
{
    if (level_relaxed() < LogLevel::kWarn) {
        return;
    }
    {
        struct OnceState
        {
            MutexCap mutex;
            std::set<std::string> reported GUARDED_BY(mutex);
        };
        static OnceState state;
        MutexLock lock(state.mutex);
        if (!state.reported.insert(key).second) {
            return;
        }
    }
    std::va_list args;
    va_start(args, fmt);
    const std::string message = vformat(fmt, args);
    va_end(args);
    emit(LogLevel::kWarn, "warn", message);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    const std::string message = vformat(fmt, args);
    va_end(args);
    emit(LogLevel::kSilent, "fatal", message);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    const std::string message = vformat(fmt, args);
    va_end(args);
    emit(LogLevel::kSilent, "panic", message);
    std::abort();
}

std::string
strprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vformat(fmt, args);
    va_end(args);
    return out;
}

int
thread_ordinal()
{
    static std::atomic<int> next{0};
    thread_local const int ordinal =
        next.fetch_add(1, std::memory_order_relaxed);
    return ordinal;
}

double
log_uptime_seconds()
{
    static const auto start = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

}  // namespace bitwave
