/**
 * @file
 * Bounded multi-producer / multi-consumer queue — the admission edge of
 * the evaluation service. Producers are client threads calling
 * EvalService::submit(); consumers are the dispatcher threads draining
 * jobs into ScenarioRunner batches.
 *
 * Unlike the work-stealing deques (per-worker, lock-free, nanosecond
 * items), this queue sits in front of millisecond-to-second evaluation
 * jobs, and its interesting operations are *multi-step admission
 * transitions* — "evict the oldest entry and admit mine atomically"
 * (shed-oldest backpressure), "block until space or the queue closes" —
 * which a mutex + two condition variables express directly and
 * ThreadSanitizer verifies exactly. Lock hold times are a few pointer
 * moves; contention is not the bottleneck at request granularity.
 *
 * Closing wakes every blocked producer and consumer: producers observe
 * kClosed, consumers drain the remaining items and then observe
 * emptiness. FIFO order is preserved end to end — admission order is
 * completion-visible (the service's determinism tests rely on results
 * being independent of it anyway).
 */
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "common/annotations.hpp"
#include "common/fault.hpp"

namespace bitwave {

/// Outcome of one push attempt.
enum class QueuePush {
    kAccepted,  ///< Item enqueued.
    kFull,      ///< Bounded capacity reached (try_push only).
    kClosed,    ///< Queue closed; item not enqueued.
};

template <typename T>
class MpmcQueue
{
  public:
    /// @p capacity entries are admitted at once; at least 1 is enforced.
    explicit MpmcQueue(std::size_t capacity)
        : capacity_(capacity > 0 ? capacity : 1)
    {
    }

    MpmcQueue(const MpmcQueue &) = delete;
    MpmcQueue &operator=(const MpmcQueue &) = delete;

    /// Block until there is space (or the queue closes), then enqueue.
    QueuePush push(T item)
    {
        BITWAVE_FAULT_INJECT("mpmc.push");
        MutexLock lock(mutex_);
        while (!closed_ && items_.size() >= capacity_) {
            not_full_.wait(mutex_);
        }
        if (closed_) {
            return QueuePush::kClosed;
        }
        enqueue_locked(std::move(item));
        return QueuePush::kAccepted;
    }

    /// Non-blocking push: kFull when at capacity.
    QueuePush try_push(T item)
    {
        BITWAVE_FAULT_INJECT("mpmc.push");
        MutexLock lock(mutex_);
        if (closed_) {
            return QueuePush::kClosed;
        }
        if (items_.size() >= capacity_) {
            return QueuePush::kFull;
        }
        enqueue_locked(std::move(item));
        return QueuePush::kAccepted;
    }

    /**
     * Shed-oldest admission: when full, atomically evict the front
     * (oldest) item into @p shed and enqueue @p item in the same
     * critical section — no interleaving producer can observe the queue
     * over capacity or miss the eviction.
     */
    QueuePush push_shed_oldest(T item, std::optional<T> *shed)
    {
        shed->reset();
        BITWAVE_FAULT_INJECT("mpmc.push");
        MutexLock lock(mutex_);
        if (closed_) {
            return QueuePush::kClosed;
        }
        if (items_.size() >= capacity_) {
            shed->emplace(std::move(items_.front()));
            items_.pop_front();
        }
        enqueue_locked(std::move(item));
        return QueuePush::kAccepted;
    }

    /// Block until an item arrives; false when closed and drained.
    bool pop(T *out)
    {
        MutexLock lock(mutex_);
        while (!closed_ && items_.empty()) {
            not_empty_.wait(mutex_);
        }
        return dequeue_locked(out);
    }

    /// Non-blocking pop; false when empty (or closed and drained).
    bool try_pop(T *out)
    {
        MutexLock lock(mutex_);
        return dequeue_locked(out);
    }

    /**
     * Pop with a bounded wait of @p seconds — the dynamic batcher's
     * linger: after the first job of a batch, wait briefly for
     * companions instead of dispatching a singleton. False on timeout
     * with the queue still empty (or closed and drained).
     */
    bool pop_for(T *out, double seconds)
    {
        // Clamp: the deadline conversion goes through the clock's
        // duration, and a huge seconds value would overflow that cast
        // (UB). One hour bounds any sane linger; callers loop anyway.
        const double bounded = std::clamp(seconds, 0.0, 3600.0);
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(bounded));
        MutexLock lock(mutex_);
        while (!closed_ && items_.empty()) {
            if (not_empty_.wait_until(mutex_, deadline) ==
                std::cv_status::timeout) {
                break;
            }
        }
        return dequeue_locked(out);
    }

    /// Stop admitting; blocked producers/consumers wake immediately.
    /// Already-enqueued items remain poppable (drain semantics).
    void close()
    {
        {
            MutexLock lock(mutex_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    bool closed() const
    {
        MutexLock lock(mutex_);
        return closed_;
    }

    std::size_t size() const
    {
        MutexLock lock(mutex_);
        return items_.size();
    }

    /// High-water mark of size() over the queue's lifetime.
    std::size_t peak_size() const
    {
        MutexLock lock(mutex_);
        return peak_;
    }

    std::size_t capacity() const { return capacity_; }

  private:
    void enqueue_locked(T item) REQUIRES(mutex_)
    {
        items_.push_back(std::move(item));
        peak_ = std::max(peak_, items_.size());
        not_empty_.notify_one();
    }

    bool dequeue_locked(T *out) REQUIRES(mutex_)
    {
        if (items_.empty()) {
            return false;
        }
        *out = std::move(items_.front());
        items_.pop_front();
        not_full_.notify_one();
        return true;
    }

    mutable MutexCap mutex_;
    CondVarCap not_empty_;
    CondVarCap not_full_;
    std::deque<T> items_ GUARDED_BY(mutex_);
    const std::size_t capacity_;
    std::size_t peak_ GUARDED_BY(mutex_) = 0;
    bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace bitwave
