/**
 * @file
 * Deterministic fault injection — the failure model behind the
 * robustness layer. A registry of named **fault points**
 * (`BITWAVE_FAULT_POINT("workload_io.read")`, `"runner.chunk"`, …) sits
 * at the seams of the stack: IO reads/writes, queue admission, runner
 * chunk execution, bit-plane packing, service dispatch. Each point can
 * be armed with a per-point probability and a fault *kind*:
 *
 *   - `transient` — throw FaultError(kTransient): the weather of flaky
 *     infrastructure (an NFS hiccup, a preempted worker). Retryable.
 *   - `error`     — make the call site take its error-return path
 *     (sites without one throw FaultError(kInternal) instead): a
 *     failure that is *not* retryable.
 *   - `delay`     — sleep the caller for a configured number of
 *     milliseconds, then continue normally: a stalled disk or a
 *     descheduled VM. Feeds the service watchdog.
 *
 * Configuration comes from `BITWAVE_FAULT_SPEC` (comma-separated
 * `point[@tag]=probability[:kind[:delay_ms]]` entries, `*` matching
 * every point) and `BITWAVE_FAULT_SEED`, or programmatically via
 * fault::configure(). Draws are seeded splitmix64 streams over a
 * per-point invocation counter — a (spec, seed) pair replays the same
 * storm — and the optional `@tag` restricts a point to call sites whose
 * context hash matches (e.g. one poisoned scenario label), which is how
 * the tests poison exactly one job in a batch.
 *
 * Cost when disarmed: `BITWAVE_FAULT_POINT` compiles to one relaxed
 * atomic load and a never-taken branch — nothing else is evaluated —
 * so production binaries pay nothing for carrying the fault model.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace bitwave {

/**
 * Error taxonomy shared across the stack (the service surfaces it as
 * the EvalTicket failure payload):
 *   kTransient  — infrastructure weather; safe and worthwhile to retry.
 *   kCorruption — data failed validation (torn write, bit rot); the
 *                 artifact is discarded and rebuilt, never retried as-is.
 *   kInvalid    — the request itself is unservable (bad configuration).
 *   kCancelled  — cooperative abort (deadline, client cancel, shutdown).
 *   kInternal   — an unexpected failure; not retryable by default.
 */
enum class ErrorKind
{
    kTransient,
    kCorruption,
    kInvalid,
    kCancelled,
    kInternal,
};

/// Display name ("transient", "corruption", ...).
const char *error_kind_name(ErrorKind kind);

/// Exception thrown by armed fault points (and usable by real failure
/// detection, e.g. a retryable IO error) carrying its taxonomy kind.
class FaultError : public std::runtime_error
{
  public:
    FaultError(ErrorKind kind, const std::string &what)
        : std::runtime_error(what), kind_(kind)
    {
    }

    ErrorKind kind() const { return kind_; }

  private:
    ErrorKind kind_;
};

namespace fault {

/// What an armed fault point does when it fires.
enum class FaultKind
{
    kTransient,  ///< Throw FaultError(kTransient).
    kError,      ///< Return-error: the call site takes its error path.
    kDelay,      ///< Sleep delay_ms, then continue normally.
};

namespace detail {
/// Master switch, owned by fault.cpp. True only while at least one
/// point is armed — the whole registry is behind this one branch.
extern std::atomic<bool> g_armed;
}  // namespace detail

/// True when any fault point is armed (one relaxed load).
inline bool
enabled()
{
    return detail::g_armed.load(std::memory_order_relaxed);
}

/**
 * Register a fault point by name and return its stable id. Idempotent
 * per name; call sites cache the id in a function-local static. Safe to
 * call concurrently.
 */
std::size_t register_point(const char *name);

/**
 * Draw this invocation of point @p id against its armed configuration.
 * Returns true when a `error`-kind fault fired (the caller takes its
 * error-return path); throws FaultError for `transient`; sleeps for
 * `delay`. @p context is matched against the point's `@tag` filter
 * (0-filtered points fire for any context).
 */
bool fire(std::size_t id, std::uint64_t context);

/// Context hash of a call-site token (e.g. a scenario label) for
/// `@tag`-filtered fault points.
std::uint64_t context_tag(std::string_view token);

/**
 * Arm the registry from a spec string (see the file comment for the
 * grammar). Replaces any previous configuration; applies to already
 * registered points and to points registered later, and restarts every
 * per-point draw stream so the same (spec, seed) replays the same
 * storm. Malformed entries are warned once and skipped. An empty spec
 * disarms everything.
 */
void configure(const std::string &spec, std::uint64_t seed);

/// Disarm every fault point and clear the configuration (counters and
/// registered points survive — ids stay valid).
void reset();

/// Re-read BITWAVE_FAULT_SPEC / BITWAVE_FAULT_SEED (called once at
/// startup automatically; exposed for tests).
void configure_from_env();

/// Lifetime counters of the whole registry.
struct FaultStats
{
    std::uint64_t checks = 0;      ///< fire() draws against armed points.
    std::uint64_t fired = 0;       ///< Any kind.
    std::uint64_t transients = 0;  ///< FaultError(kTransient) thrown.
    std::uint64_t errors = 0;      ///< Error-return faults.
    std::uint64_t delays = 0;      ///< Delay faults.
};

FaultStats stats();

/// Snapshot of one registered point (for diagnostics and tests).
struct PointInfo
{
    std::string name;
    double probability = 0.0;      ///< 0 = disarmed.
    FaultKind kind = FaultKind::kTransient;
    double delay_ms = 0.0;
    std::uint64_t checks = 0;
    std::uint64_t fired = 0;
};

std::vector<PointInfo> points();

}  // namespace fault
}  // namespace bitwave

/**
 * Fault point with a context tag, as an expression: true when an
 * `error`-kind fault fired (take the error-return path); may throw
 * FaultError or sleep. Disarmed cost: one relaxed load + branch — the
 * id lookup and @p ctx are never evaluated.
 */
#define BITWAVE_FAULT_POINT_CTX(name, ctx)                                  \
    (::bitwave::fault::enabled() &&                                         \
     ::bitwave::fault::fire(                                                \
         []() -> std::size_t {                                              \
             static const std::size_t bitwave_fault_id_ =                   \
                 ::bitwave::fault::register_point(name);                    \
             return bitwave_fault_id_;                                      \
         }(),                                                               \
         (ctx)))

/// Fault point without a context tag (fires for any `@tag`-less spec).
#define BITWAVE_FAULT_POINT(name) BITWAVE_FAULT_POINT_CTX(name, 0)

/// Fault point at a site with no error-return path: `error`-kind faults
/// become FaultError(kInternal) throws.
#define BITWAVE_FAULT_INJECT_CTX(name, ctx)                                 \
    do {                                                                    \
        if (BITWAVE_FAULT_POINT_CTX(name, ctx)) {                           \
            throw ::bitwave::FaultError(                                    \
                ::bitwave::ErrorKind::kInternal,                            \
                "injected error fault at " name);                           \
        }                                                                   \
    } while (0)

#define BITWAVE_FAULT_INJECT(name) BITWAVE_FAULT_INJECT_CTX(name, 0)
