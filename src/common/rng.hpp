/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All synthetic data in the repository (weights, activations, calibration
 * inputs) flows through this generator so experiments are reproducible
 * run-to-run and the benches regenerate identical tables.
 */
#pragma once

#include <cstdint>
#include <random>

namespace bitwave {

/**
 * A seeded pseudo-random generator with the distribution helpers the
 * workload synthesizer needs (Gaussian / Laplacian / uniform / Bernoulli).
 */
class Rng
{
  public:
    /// Construct with an explicit seed; identical seeds yield identical
    /// streams.
    explicit Rng(std::uint64_t seed = 0x5eedULL) : engine_(seed) {}

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Zero-mean Gaussian sample with standard deviation @p sigma.
    double gaussian(double sigma);

    /**
     * Zero-mean Laplacian sample with scale @p b.
     *
     * Quantized DNN weights are well modeled as Laplacian: a sharp peak of
     * small magnitudes with heavier tails than a Gaussian, the property the
     * paper's Fig. 4(b) histogram shows and that drives sign-magnitude
     * bit-column sparsity.
     */
    double laplacian(double b);

    /// Bernoulli trial with probability @p p of returning true.
    bool bernoulli(double p);

    /// Access the underlying engine (e.g. for std::shuffle).
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

}  // namespace bitwave
