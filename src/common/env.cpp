#include "common/env.hpp"

#include <cstdlib>
#include <mutex>
#include <set>

#include "common/logging.hpp"

namespace bitwave {

namespace {

/// Warn about a bad knob value once per variable per process: a
/// long-running service with a typoed knob logs one line, not one line
/// per cache lookup.
void
warn_once(const char *name, const char *value)
{
    static std::mutex mutex;
    static std::set<std::string> reported;
    std::lock_guard<std::mutex> lock(mutex);
    if (reported.insert(name).second) {
        warn("ignoring invalid %s=\"%s\" (expected an integer >= 1)",
             name, value);
    }
}

}  // namespace

long long
env_positive_int(const char *name, long long fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr || *env == '\0') {
        return fallback;
    }
    char *end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == nullptr || *end != '\0' || v < 1) {
        warn_once(name, env);
        return fallback;
    }
    return v;
}

std::string
env_string(const char *name)
{
    const char *env = std::getenv(name);
    return env != nullptr ? std::string(env) : std::string();
}

}  // namespace bitwave
