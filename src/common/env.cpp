#include "common/env.hpp"

#include <cstdlib>

#include "common/logging.hpp"

namespace bitwave {

long long
env_positive_int(const char *name, long long fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr || *env == '\0') {
        return fallback;
    }
    char *end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == nullptr || *end != '\0' || v < 1) {
        warn_once(name,
                  "ignoring invalid %s=\"%s\" (expected an integer >= 1)",
                  name, env);
        return fallback;
    }
    return v;
}

std::string
env_string(const char *name)
{
    const char *env = std::getenv(name);
    return env != nullptr ? std::string(env) : std::string();
}

}  // namespace bitwave
