/**
 * @file
 * Fixed-width bit manipulation utilities shared across the BitWave
 * libraries.
 *
 * Everything in this file operates on 8-bit quantized operands (the paper's
 * Int8 setting) in one of two binary representations:
 *
 *  - two's complement (the storage format of `int8_t`), and
 *  - sign-magnitude, packed into a `uint8_t` with bit 7 the sign and
 *    bits 6..0 the magnitude.
 *
 * The sign-magnitude encoding cannot represent -128 (7-bit magnitude
 * limit); all producers in this repository clamp quantized weights to
 * [-127, 127], matching the BitWave hardware assumption.
 */
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace bitwave {

/// Binary representation used when analyzing bit-level structure.
enum class Representation {
    kTwosComplement,  ///< Standard int8 storage format.
    kSignMagnitude,   ///< Bit7 sign, bits6..0 magnitude.
};

/// Human-readable name of a representation ("2C" / "SM").
const char *representation_name(Representation repr);

/// Number of bits in a quantized operand word.
inline constexpr int kWordBits = 8;

/// Number of magnitude bits in the sign-magnitude encoding.
inline constexpr int kMagnitudeBits = 7;

/// Most negative value representable in 8-bit sign-magnitude.
inline constexpr int kSignMagMin = -127;

/// Most positive value representable in 8-bit sign-magnitude.
inline constexpr int kSignMagMax = 127;

/**
 * Encode a two's-complement int8 value into packed sign-magnitude.
 *
 * @param value Value in [-127, 127]. -128 is clamped to -127.
 * @return Packed byte: bit7 = sign (1 = negative), bits6..0 = |value|.
 */
std::uint8_t to_sign_magnitude(std::int8_t value);

/**
 * Decode a packed sign-magnitude byte back to two's complement.
 *
 * Both encodings of zero (0x00 and 0x80) decode to 0.
 */
std::int8_t from_sign_magnitude(std::uint8_t sm);

/// Test bit @p pos (0 = LSB) of @p word.
constexpr bool test_bit(std::uint8_t word, int pos)
{
    return ((word >> pos) & 1u) != 0;
}

/// Number of set bits in @p word.
int popcount8(std::uint8_t word);

/// Number of set bits in the two's-complement encoding of @p value.
int bit_count_twos_complement(std::int8_t value);

/// Number of set bits in the sign-magnitude encoding of @p value.
int bit_count_sign_magnitude(std::int8_t value);

/**
 * Render @p word as a binary literal string, MSB first ("10001100").
 * Used by diagnostics and the bitgroup visualization bench.
 */
std::string to_binary_string(std::uint8_t word);

/// Integer ceiling division for non-negative operands.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

}  // namespace bitwave
