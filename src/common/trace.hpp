#pragma once

// Request-span tracing into per-thread ring buffers, exported as
// Chrome trace-event JSON (open the file in chrome://tracing or
// https://ui.perfetto.dev).
//
// Disarmed cost is one relaxed atomic load per span/instant — tracing
// is off unless BITWAVE_TRACE=<path> is set (which also registers an
// atexit exporter) or trace::start() is called.  Each thread owns a
// fixed-capacity ring (BITWAVE_TRACE_EVENTS, default 32768 events);
// when a ring wraps, the oldest events are overwritten and counted in
// dropped_events().  Buffers are kept alive in a global registry so
// events from exited worker threads still appear in the export.
//
// Timestamps come from a swappable clock (set_clock) so tests can pin
// span structure exactly; the default clock is steady nanoseconds
// since process start.  Event name/category/arg-name strings must be
// string literals (the ring stores the pointers) — dynamic payloads
// travel in the two u64 args.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bitwave::trace {

/// Swappable time source returning nanoseconds.  nullptr restores the
/// default steady-clock-since-process-start source.
using ClockFn = std::uint64_t (*)();

void set_clock(ClockFn fn);

/// Nanoseconds from the active clock (used for every span stamp, and
/// by the service's phase histograms so traced spans and histogram
/// samples agree).
std::uint64_t now_ns();

inline std::atomic<bool> g_enabled{false};

/// True while event recording is armed.
inline bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void start();
void stop();

/// Drop all buffered events (buffers stay registered) and reset the
/// dropped-event count.
void clear();

/// One recorded event.  Trivially copyable; strings are borrowed
/// literals.
struct Event
{
    const char *name = nullptr;
    const char *cat = nullptr;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;
    char phase = 'X'; // 'X' complete, 'i' instant
    const char *arg0_name = nullptr;
    std::uint64_t arg0 = 0;
    const char *arg1_name = nullptr;
    std::uint64_t arg1 = 0;
};

/// Record a complete ('X') event with explicit stamps.  No-op while
/// disarmed.
void emit_complete(const char *name, const char *cat, std::uint64_t ts_ns,
                   std::uint64_t dur_ns, const char *arg0_name = nullptr,
                   std::uint64_t arg0 = 0, const char *arg1_name = nullptr,
                   std::uint64_t arg1 = 0);

/// Record an instant ('i') event stamped with now_ns().  No-op while
/// disarmed.
void instant(const char *name, const char *cat,
             const char *arg0_name = nullptr, std::uint64_t arg0 = 0,
             const char *arg1_name = nullptr, std::uint64_t arg1 = 0);

/// RAII complete-event span: stamps on construction, emits on
/// destruction.  Checks enabled() once, in the constructor.
class Span
{
  public:
    Span(const char *name, const char *cat)
    {
        if (enabled()) {
            name_ = name;
            cat_ = cat;
            start_ns_ = now_ns();
        }
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /// Attach up to two named u64 arguments.
    void arg(const char *name, std::uint64_t value)
    {
        if (name_ == nullptr) {
            return;
        }
        if (arg0_name_ == nullptr) {
            arg0_name_ = name;
            arg0_ = value;
        } else if (arg1_name_ == nullptr) {
            arg1_name_ = name;
            arg1_ = value;
        }
    }

    ~Span()
    {
        if (name_ != nullptr) {
            emit_complete(name_, cat_, start_ns_, now_ns() - start_ns_,
                          arg0_name_, arg0_, arg1_name_, arg1_);
        }
    }

  private:
    const char *name_ = nullptr;
    const char *cat_ = nullptr;
    std::uint64_t start_ns_ = 0;
    const char *arg0_name_ = nullptr;
    std::uint64_t arg0_ = 0;
    const char *arg1_name_ = nullptr;
    std::uint64_t arg1_ = 0;
};

/// Copy of every buffered event across all threads, sorted by ts_ns.
std::vector<Event> snapshot_events();

/// Events overwritten by ring wraparound since the last clear().
std::uint64_t dropped_events();

/// Ring capacity (events per thread) for buffers created after the
/// call.  Existing thread buffers keep their size.  Tests use this to
/// exercise wraparound cheaply.
void set_ring_capacity(std::size_t events);

/// Write all buffered events as Chrome trace-event JSON.  Returns the
/// number of events written; 0 with a warning when the file cannot be
/// opened.
std::size_t write_json(const std::string &path);

} // namespace bitwave::trace
