#include "common/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <memory>
#include <new>
#include <unordered_map>

#include "common/annotations.hpp"
#include "common/env.hpp"
#include "common/hash.hpp"

namespace bitwave::metrics {

namespace {

/// Lock-striped registry.  Each shard owns a mutex and three name →
/// unique_ptr maps; metrics are never erased, so the pointers handed
/// out by counter()/gauge()/histogram() stay valid for the process
/// lifetime.  Leaked on purpose: worker threads may still bump
/// metrics while static destructors run.
struct Shard
{
    MutexCap mutex;
    std::unordered_map<std::string, std::unique_ptr<Counter>>
        counters GUARDED_BY(mutex);
    std::unordered_map<std::string, std::unique_ptr<Gauge>>
        gauges GUARDED_BY(mutex);
    std::unordered_map<std::string, std::unique_ptr<Histogram>>
        histograms GUARDED_BY(mutex);
};

constexpr std::size_t kShards = 16;

Shard *
shards()
{
    static Shard *const table = new Shard[kShards];
    return table;
}

Shard &
shard_for(std::string_view name)
{
    return shards()[fnv1a(name.data(), name.size()) & (kShards - 1)];
}

template <typename T, typename Map>
T &
lookup(Map &map, std::string_view name, bool gated_histogram = true)
{
    const std::string key(name);
    auto it = map.find(key);
    if (it == map.end()) {
        std::unique_ptr<T> fresh;
        if constexpr (std::is_same_v<T, Histogram>) {
            fresh = std::make_unique<T>(gated_histogram);
        } else {
            fresh = std::make_unique<T>();
        }
        it = map.emplace(key, std::move(fresh)).first;
    }
    return *it->second;
}

/// Arm histograms at startup when BITWAVE_METRICS is set to anything
/// other than "" or "0".
[[maybe_unused]] const bool g_env_armed = [] {
    const std::string v = env_string("BITWAVE_METRICS");
    if (!v.empty() && v != "0") {
        set_enabled(true);
        return true;
    }
    return false;
}();

std::string
sanitize_prometheus(const std::string &name)
{
    std::string out = "bitwave_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9');
        out.push_back(ok ? c : '_');
    }
    return out;
}

void
append_json_escaped(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
        }
        out.push_back(c);
    }
    out.push_back('"');
}

void
append_u64(std::string &out, std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
}

void
append_i64(std::string &out, std::int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
}

void
append_double(std::string &out, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out += buf;
}

} // namespace

void
set_enabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0) {
        return 0.0;
    }
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (int i = 0; i < kHistogramBuckets; ++i) {
        if (buckets[i] == 0) {
            continue;
        }
        const double before = static_cast<double>(cumulative);
        cumulative += buckets[i];
        if (static_cast<double>(cumulative) >= target) {
            const double lo =
                static_cast<double>(Histogram::bucket_lower_bound(i));
            const double hi = static_cast<double>(
                Histogram::bucket_lower_bound(i + 1));
            const double frac =
                std::clamp((target - before) /
                               static_cast<double>(buckets[i]),
                           0.0, 1.0);
            return lo + (hi - lo) * frac;
        }
    }
    return static_cast<double>(
        Histogram::bucket_lower_bound(kHistogramBuckets));
}

int
Histogram::bucket_index(std::uint64_t value)
{
    if (value < 16) {
        return static_cast<int>(value);
    }
    int octave = std::bit_width(value) - 1; // >= 4
    if (octave > 47) {
        return kHistogramBuckets - 1;
    }
    const int sub = static_cast<int>((value >> (octave - 2)) & 3);
    return 16 + (octave - 4) * 4 + sub;
}

std::uint64_t
Histogram::bucket_lower_bound(int index)
{
    if (index <= 16) {
        return static_cast<std::uint64_t>(index < 0 ? 0 : index);
    }
    if (index >= kHistogramBuckets) {
        return std::uint64_t{1} << 48;
    }
    const int q = index - 16;
    const int octave = 4 + q / 4;
    const std::uint64_t sub = static_cast<std::uint64_t>(q % 4);
    return (std::uint64_t{4} + sub) << (octave - 2);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot out;
    out.count = count_.load(std::memory_order_relaxed);
    out.sum = sum_.load(std::memory_order_relaxed);
    for (int i = 0; i < kHistogramBuckets; ++i) {
        out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
}

Counter &
counter(std::string_view name)
{
    Shard &shard = shard_for(name);
    MutexLock lock(shard.mutex);
    return lookup<Counter>(shard.counters, name);
}

Gauge &
gauge(std::string_view name)
{
    Shard &shard = shard_for(name);
    MutexLock lock(shard.mutex);
    return lookup<Gauge>(shard.gauges, name);
}

Histogram &
histogram(std::string_view name)
{
    Shard &shard = shard_for(name);
    MutexLock lock(shard.mutex);
    return lookup<Histogram>(shard.histograms, name);
}

std::uint64_t
counter_value(std::string_view name)
{
    Shard &shard = shard_for(name);
    MutexLock lock(shard.mutex);
    const auto it = shard.counters.find(std::string(name));
    return it == shard.counters.end() ? 0 : it->second->value();
}

Snapshot
snapshot()
{
    Snapshot out;
    for (std::size_t s = 0; s < kShards; ++s) {
        Shard &shard = shards()[s];
        MutexLock lock(shard.mutex);
        for (const auto &[name, c] : shard.counters) {
            out.counters.emplace_back(name, c->value());
        }
        for (const auto &[name, g] : shard.gauges) {
            out.gauges.emplace_back(name, g->value());
        }
        for (const auto &[name, h] : shard.histograms) {
            out.histograms.emplace_back(name, h->snapshot());
        }
    }
    const auto by_name = [](const auto &a, const auto &b) {
        return a.first < b.first;
    };
    std::sort(out.counters.begin(), out.counters.end(), by_name);
    std::sort(out.gauges.begin(), out.gauges.end(), by_name);
    std::sort(out.histograms.begin(), out.histograms.end(), by_name);
    return out;
}

std::string
render_prometheus(const Snapshot &snap)
{
    std::string out;
    for (const auto &[name, value] : snap.counters) {
        const std::string prom = sanitize_prometheus(name);
        out += "# TYPE " + prom + " counter\n";
        out += prom + " ";
        append_u64(out, value);
        out.push_back('\n');
    }
    for (const auto &[name, value] : snap.gauges) {
        const std::string prom = sanitize_prometheus(name);
        out += "# TYPE " + prom + " gauge\n";
        out += prom + " ";
        append_i64(out, value);
        out.push_back('\n');
    }
    for (const auto &[name, hist] : snap.histograms) {
        const std::string prom = sanitize_prometheus(name);
        out += "# TYPE " + prom + " histogram\n";
        std::uint64_t cumulative = 0;
        for (int i = 0; i < kHistogramBuckets; ++i) {
            if (hist.buckets[i] == 0) {
                continue;
            }
            cumulative += hist.buckets[i];
            out += prom + "_bucket{le=\"";
            append_u64(out, Histogram::bucket_lower_bound(i + 1) - 1);
            out += "\"} ";
            append_u64(out, cumulative);
            out.push_back('\n');
        }
        out += prom + "_bucket{le=\"+Inf\"} ";
        append_u64(out, hist.count);
        out.push_back('\n');
        out += prom + "_sum ";
        append_u64(out, hist.sum);
        out.push_back('\n');
        out += prom + "_count ";
        append_u64(out, hist.count);
        out.push_back('\n');
    }
    return out;
}

std::string
render_json(const Snapshot &snap)
{
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : snap.counters) {
        if (!first) {
            out.push_back(',');
        }
        first = false;
        append_json_escaped(out, name);
        out.push_back(':');
        append_u64(out, value);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : snap.gauges) {
        if (!first) {
            out.push_back(',');
        }
        first = false;
        append_json_escaped(out, name);
        out.push_back(':');
        append_i64(out, value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[name, hist] : snap.histograms) {
        if (!first) {
            out.push_back(',');
        }
        first = false;
        append_json_escaped(out, name);
        out += ":{\"count\":";
        append_u64(out, hist.count);
        out += ",\"sum\":";
        append_u64(out, hist.sum);
        out += ",\"mean\":";
        append_double(out, hist.mean());
        out += ",\"p50\":";
        append_double(out, hist.quantile(0.50));
        out += ",\"p90\":";
        append_double(out, hist.quantile(0.90));
        out += ",\"p99\":";
        append_double(out, hist.quantile(0.99));
        out.push_back('}');
    }
    out += "}}";
    return out;
}

void
zero_all_for_tests()
{
    for (std::size_t s = 0; s < kShards; ++s) {
        Shard &shard = shards()[s];
        MutexLock lock(shard.mutex);
        for (auto &[name, c] : shard.counters) {
            c->~Counter();
            new (c.get()) Counter();
        }
        for (auto &[name, g] : shard.gauges) {
            g->set(0);
        }
        for (auto &[name, h] : shard.histograms) {
            // Registry histograms are always gated; rebuild in place
            // to zero the atomics.
            h->~Histogram();
            new (h.get()) Histogram(true);
        }
    }
}

} // namespace bitwave::metrics
