#include "common/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <unordered_map>

#include "common/annotations.hpp"
#include "common/env.hpp"
#include "common/hash.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"

namespace bitwave {

const char *
error_kind_name(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::kTransient: return "transient";
      case ErrorKind::kCorruption: return "corruption";
      case ErrorKind::kInvalid: return "invalid";
      case ErrorKind::kCancelled: return "cancelled";
      case ErrorKind::kInternal: return "internal";
    }
    return "?";
}

namespace fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

/// Armed configuration of one point, packed into atomics so fire() on
/// hot paths never takes the registry mutex.
struct PointConfig
{
    /// Probability as bit-cast double; 0 bits = disarmed.
    std::atomic<std::uint64_t> probability_bits{0};
    std::atomic<int> kind{static_cast<int>(FaultKind::kTransient)};
    std::atomic<std::uint64_t> delay_ns{0};
    /// `@tag` filter; 0 = fire for any context.
    std::atomic<std::uint64_t> tag{0};
};

struct Point
{
    std::string name;
    std::uint64_t salt = 0;  ///< splitmix64(fnv1a(name)): per-point stream.
    PointConfig config;
    std::atomic<std::uint64_t> counter{0};  ///< Invocation index.
    std::atomic<std::uint64_t> checks{0};
    std::atomic<std::uint64_t> fired{0};
};

/// One parsed spec entry.
struct SpecEntry
{
    double probability = 0.0;
    FaultKind kind = FaultKind::kTransient;
    double delay_ms = 1.0;
    std::uint64_t tag = 0;
};

/// Slot-table capacity. Registration past this aliases onto the last
/// slot (warn-once, never UB) — the codebase names a handful of seams.
constexpr std::size_t kMaxPoints = 256;

struct Registry
{
    MutexCap mutex;  ///< Guards registration + spec.
    /// Fixed slot table: fire() indexes it without the mutex, so the
    /// backing storage must never move — a growable vector's realloc
    /// would race the lock-free read. Each slot is written exactly once,
    /// under the mutex, before its id is published to any caller —
    /// which is also why it is deliberately NOT GUARDED_BY(mutex).
    std::unique_ptr<Point> points[kMaxPoints];
    std::size_t point_count GUARDED_BY(mutex) = 0;
    std::unordered_map<std::string, std::size_t> by_name GUARDED_BY(mutex);
    /// Armed spec, applied to points registered after configure().
    std::unordered_map<std::string, SpecEntry> spec GUARDED_BY(mutex);
    bool has_wildcard GUARDED_BY(mutex) = false;
    SpecEntry wildcard GUARDED_BY(mutex);
    std::atomic<std::uint64_t> seed{0};
    /// Aggregate tallies live in the global metrics registry
    /// (fault.*); fault::stats() is a thin view over them. They are
    /// monotonic across configure()/reset() just like before.
    metrics::Counter &fired = metrics::counter("fault.fired");
    metrics::Counter &transients = metrics::counter("fault.transients");
    metrics::Counter &errors = metrics::counter("fault.errors");
    metrics::Counter &delays = metrics::counter("fault.delays");
    metrics::Counter &checks = metrics::counter("fault.checks");
};

Registry &
registry()
{
    static Registry r;
    return r;
}

void
apply_locked(Point &point, const SpecEntry &entry)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(double));
    const double p = entry.probability;
    __builtin_memcpy(&bits, &p, sizeof(bits));
    point.config.kind.store(static_cast<int>(entry.kind),
                            std::memory_order_relaxed);
    point.config.delay_ns.store(
        static_cast<std::uint64_t>(entry.delay_ms * 1e6),
        std::memory_order_relaxed);
    point.config.tag.store(entry.tag, std::memory_order_relaxed);
    // Probability last: a concurrent fire() that sees it non-zero also
    // sees kind/delay/tag from this entry or a newer one — close enough
    // for a fault injector; arming mid-flight is inherently racy.
    point.config.probability_bits.store(bits, std::memory_order_release);
}

void
disarm_locked(Point &point)
{
    point.config.probability_bits.store(0, std::memory_order_relaxed);
}

/// Parse one `point[@tag]=prob[:kind[:delay_ms]]` entry; false (with a
/// warn-once) on malformed input.
bool
parse_entry(const std::string &text, std::string *name, SpecEntry *entry)
{
    const auto eq = text.find('=');
    if (eq == std::string::npos || eq == 0) {
        return false;
    }
    *name = text.substr(0, eq);
    const auto at = name->find('@');
    if (at != std::string::npos) {
        const std::string tag = name->substr(at + 1);
        if (tag.empty()) {
            return false;
        }
        entry->tag = context_tag(tag);
        name->resize(at);
    }
    if (name->empty()) {
        return false;
    }
    std::string rest = text.substr(eq + 1);
    std::string kind_text, delay_text;
    const auto colon = rest.find(':');
    if (colon != std::string::npos) {
        kind_text = rest.substr(colon + 1);
        rest.resize(colon);
        const auto colon2 = kind_text.find(':');
        if (colon2 != std::string::npos) {
            delay_text = kind_text.substr(colon2 + 1);
            kind_text.resize(colon2);
        }
    }
    char *end = nullptr;
    entry->probability = std::strtod(rest.c_str(), &end);
    if (end == nullptr || *end != '\0' || rest.empty() ||
        !(entry->probability >= 0.0) || entry->probability > 1.0) {
        return false;
    }
    if (kind_text.empty() || kind_text == "transient") {
        entry->kind = FaultKind::kTransient;
    } else if (kind_text == "error") {
        entry->kind = FaultKind::kError;
    } else if (kind_text == "delay") {
        entry->kind = FaultKind::kDelay;
    } else {
        return false;
    }
    if (!delay_text.empty()) {
        entry->delay_ms = std::strtod(delay_text.c_str(), &end);
        if (end == nullptr || *end != '\0' || !(entry->delay_ms >= 0.0)) {
            return false;
        }
    }
    return true;
}

/// uint64 -> double in [0, 1).
double
to_unit(std::uint64_t u)
{
    return static_cast<double>(u >> 11) * 0x1.0p-53;
}

}  // namespace

std::size_t
register_point(const char *name)
{
    Registry &r = registry();
    MutexLock lock(r.mutex);
    auto it = r.by_name.find(name);
    if (it != r.by_name.end()) {
        return it->second;
    }
    auto point = std::make_unique<Point>();
    point->name = name;
    point->salt = splitmix64(fnv1a(name, std::string_view(name).size()));
    auto spec_it = r.spec.find(point->name);
    if (spec_it != r.spec.end()) {
        apply_locked(*point, spec_it->second);
    } else if (r.has_wildcard) {
        apply_locked(*point, r.wildcard);
    }
    if (r.point_count >= kMaxPoints) {
        warn_once("fault:slot-overflow",
                  "fault point table full (%zu); \"%s\" aliases the last "
                  "registered point",
                  kMaxPoints, name);
        return kMaxPoints - 1;
    }
    const std::size_t id = r.point_count;
    r.points[id] = std::move(point);
    r.point_count = id + 1;
    r.by_name.emplace(name, id);
    return id;
}

std::uint64_t
context_tag(std::string_view token)
{
    return fnv1a(token.data(), token.size());
}

bool
fire(std::size_t id, std::uint64_t context)
{
    Registry &r = registry();
    Point &point = *r.points[id];  // ids are stable; no lock needed
    const std::uint64_t bits =
        point.config.probability_bits.load(std::memory_order_acquire);
    if (bits == 0) {
        return false;
    }
    const std::uint64_t tag =
        point.config.tag.load(std::memory_order_relaxed);
    if (tag != 0 && tag != context) {
        return false;
    }
    point.checks.fetch_add(1, std::memory_order_relaxed);
    r.checks.inc();
    double probability = 0.0;
    __builtin_memcpy(&probability, &bits, sizeof(probability));
    const std::uint64_t n =
        point.counter.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t seed = r.seed.load(std::memory_order_relaxed);
    if (to_unit(splitmix64(seed ^ point.salt ^ n)) >= probability) {
        return false;
    }
    point.fired.fetch_add(1, std::memory_order_relaxed);
    r.fired.inc();
    switch (static_cast<FaultKind>(
        point.config.kind.load(std::memory_order_relaxed))) {
      case FaultKind::kTransient:
        r.transients.inc();
        throw FaultError(ErrorKind::kTransient,
                         strprintf("injected transient fault at %s "
                                   "(draw %llu)",
                                   point.name.c_str(),
                                   static_cast<unsigned long long>(n)));
      case FaultKind::kError:
        r.errors.inc();
        return true;
      case FaultKind::kDelay:
        r.delays.inc();
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            point.config.delay_ns.load(std::memory_order_relaxed)));
        return false;
    }
    return false;
}

void
configure(const std::string &spec, std::uint64_t seed)
{
    Registry &r = registry();
    MutexLock lock(r.mutex);
    r.spec.clear();
    r.has_wildcard = false;
    r.seed.store(seed, std::memory_order_relaxed);
    std::size_t begin = 0;
    bool armed = false;
    while (begin <= spec.size()) {
        std::size_t end = spec.find_first_of(",;", begin);
        if (end == std::string::npos) {
            end = spec.size();
        }
        const std::string entry_text = spec.substr(begin, end - begin);
        begin = end + 1;
        if (entry_text.empty()) {
            continue;
        }
        std::string name;
        SpecEntry entry;
        if (!parse_entry(entry_text, &name, &entry)) {
            warn_once(("fault-spec:" + entry_text).c_str(),
                      "ignoring malformed BITWAVE_FAULT_SPEC entry \"%s\" "
                      "(expected point[@tag]=prob[:kind[:delay_ms]])",
                      entry_text.c_str());
            continue;
        }
        if (name == "*") {
            r.has_wildcard = true;
            r.wildcard = entry;
        } else {
            r.spec[name] = entry;
        }
        armed = armed || entry.probability > 0.0;
    }
    for (std::size_t i = 0; i < r.point_count; ++i) {
        auto &point = r.points[i];
        // Restart the per-point draw stream: a (spec, seed) pair replays
        // the same storm no matter what ran before this configure().
        point->counter.store(0, std::memory_order_relaxed);
        auto it = r.spec.find(point->name);
        if (it != r.spec.end()) {
            apply_locked(*point, it->second);
        } else if (r.has_wildcard) {
            apply_locked(*point, r.wildcard);
        } else {
            disarm_locked(*point);
        }
    }
    detail::g_armed.store(armed, std::memory_order_relaxed);
}

void
reset()
{
    configure(std::string(), 0);
}

void
configure_from_env()
{
    const std::string spec = env_string("BITWAVE_FAULT_SPEC");
    if (spec.empty()) {
        return;
    }
    configure(spec, static_cast<std::uint64_t>(
                        env_positive_int("BITWAVE_FAULT_SEED", 0x5eed)));
}

FaultStats
stats()
{
    // Thin view over the fault.* registry counters.
    Registry &r = registry();
    FaultStats s;
    s.checks = r.checks.value();
    s.fired = r.fired.value();
    s.transients = r.transients.value();
    s.errors = r.errors.value();
    s.delays = r.delays.value();
    return s;
}

std::vector<PointInfo>
points()
{
    Registry &r = registry();
    MutexLock lock(r.mutex);
    std::vector<PointInfo> out;
    out.reserve(r.point_count);
    for (std::size_t i = 0; i < r.point_count; ++i) {
        const auto &point = r.points[i];
        PointInfo info;
        info.name = point->name;
        const std::uint64_t bits =
            point->config.probability_bits.load(std::memory_order_relaxed);
        __builtin_memcpy(&info.probability, &bits,
                         sizeof(info.probability));
        info.kind = static_cast<FaultKind>(
            point->config.kind.load(std::memory_order_relaxed));
        info.delay_ms = static_cast<double>(point->config.delay_ns.load(
                            std::memory_order_relaxed)) *
            1e-6;
        info.checks = point->checks.load(std::memory_order_relaxed);
        info.fired = point->fired.load(std::memory_order_relaxed);
        out.push_back(std::move(info));
    }
    return out;
}

namespace {

/// Arm from the environment once at startup, so any binary can run a
/// storm via BITWAVE_FAULT_SPEC without code changes.
const bool g_env_configured = [] {
    configure_from_env();
    return true;
}();

}  // namespace

}  // namespace fault
}  // namespace bitwave
