/**
 * @file
 * Work-stealing execution core: per-worker Chase–Lev range deques with
 * steal-on-empty and split-on-steal, the engine under every
 * data-parallel loop in the tree (`parallel_for`) and the
 * ScenarioRunner's splittable scenario × layer-range tasks.
 *
 * The unit of work is an index range [begin, end) over a flat item
 * space. Owners pop ranges LIFO from the bottom of their own deque and
 * execute them one `grain`-sized chunk at a time (re-pushing the tail),
 * so a worker stays on its own cache-warm items; idle workers steal
 * FIFO from the top of a victim's deque and split the stolen range in
 * half, so one coarse task (a BERT ffn behind a bag of tiny convs)
 * spreads across the machine in O(log n) steals instead of pinning the
 * batch tail to a single worker.
 *
 * Determinism contract: the core only decides *which worker* runs a
 * chunk and in *what order* — callers must make every item's result a
 * pure function of its index (the repo-wide seeds-from-position rule),
 * and then an N-worker run is bit-identical to an inline one under any
 * steal order (pinned by the adversarial-scheduler tests).
 *
 * The first exception thrown wins and flips a relaxed cancel flag that
 * every worker checks per chunk, so siblings stop at the next chunk
 * boundary instead of draining their remaining ranges.
 *
 * With 1 effective worker (including `BITWAVE_THREADS=1`) or a body
 * already running inside a worker (nesting), the loop runs inline on
 * the caller — no thread, deque, or allocation is constructed.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

namespace bitwave {

/// Worker threads to use for @p n independent items; respects the
/// BITWAVE_THREADS environment override, else hardware concurrency.
int parallel_threads(std::size_t n);

/// Scheduling knobs of one worksteal_run() call.
struct WorkstealOptions
{
    /// Worker threads; 0 = parallel_threads(n), 1 = inline on caller.
    int threads = 0;
    /// Maximum items executed per chunk between scheduler checks.
    std::size_t grain = 1;
    /**
     * Adversarial test scheduler: when non-zero, every worker draws
     * from a deterministic (seed, worker) stream and randomly steals
     * *before* emptying its own deque and visits victims in seeded
     * order, forcing steal/split paths that a quiet machine would
     * rarely take. Results must be bit-identical for any seed — that
     * is the determinism contract the tests pin. Never set outside
     * tests.
     */
    std::uint64_t chaos_seed = 0;
};

/// Scheduling diagnostics of one worksteal_run() call.
struct WorkstealStats
{
    int threads_used = 1;
    std::int64_t chunks = 0;  ///< Body invocations (grain-sized).
    std::int64_t steals = 0;  ///< Successful cross-worker steals.
};

namespace detail {

/// Depth of parallel frames on this thread: workers inherit depth 1 so
/// nested loops run inline instead of oversubscribing the machine.
int &parallel_depth();

WorkstealStats
worksteal_run_impl(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)> &body,
                   const WorkstealOptions &options);

}  // namespace detail

/**
 * Execute `body(begin, end)` over disjoint chunks covering [0, n), each
 * at most `options.grain` items, on a work-stealing pool of
 * `options.threads` workers. Chunk boundaries and execution order are
 * scheduling details; the body must make results independent of both.
 * The first exception is rethrown on the caller after all workers stop.
 */
template <typename Body>
WorkstealStats
worksteal_run(std::size_t n, Body &&body, const WorkstealOptions &options = {})
{
    return detail::worksteal_run_impl(
        n, std::function<void(std::size_t, std::size_t)>(body), options);
}

/**
 * Run `fn(i)` for every i in [0, n) on the work-stealing core —
 * parallel_for semantics (independent iterations, first exception
 * rethrown, nested calls inline) with steal-based load balancing.
 */
template <typename Fn>
WorkstealStats
worksteal_for(std::size_t n, Fn &&fn, int threads = 0, std::size_t grain = 1)
{
    WorkstealOptions options;
    options.threads = threads;
    options.grain = grain;
    return worksteal_run(
        n,
        [&fn](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                fn(i);
            }
        },
        options);
}

}  // namespace bitwave
