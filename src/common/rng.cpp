#include "common/rng.hpp"

#include <cmath>

namespace bitwave {

double
Rng::uniform()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

std::int64_t
Rng::uniform_int(std::int64_t lo, std::int64_t hi)
{
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double
Rng::gaussian(double sigma)
{
    return std::normal_distribution<double>(0.0, sigma)(engine_);
}

double
Rng::laplacian(double b)
{
    // Inverse-CDF sampling: u in (-0.5, 0.5), x = -b * sgn(u) * ln(1-2|u|).
    double u = uniform() - 0.5;
    const double sign = u < 0 ? -1.0 : 1.0;
    u = std::abs(u);
    // Guard against log(0) when uniform() returned exactly 0.5.
    const double t = std::max(1.0 - 2.0 * u, 1e-300);
    return -b * sign * std::log(t);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

}  // namespace bitwave
