#include "common/bits.hpp"

#include <bit>

namespace bitwave {

const char *
representation_name(Representation repr)
{
    return repr == Representation::kTwosComplement ? "2C" : "SM";
}

std::uint8_t
to_sign_magnitude(std::int8_t value)
{
    int v = value;
    if (v < kSignMagMin) {
        v = kSignMagMin;  // -128 is not representable in 8-bit SM.
    }
    const bool negative = v < 0;
    const std::uint8_t magnitude =
        static_cast<std::uint8_t>(negative ? -v : v);
    return static_cast<std::uint8_t>((negative ? 0x80u : 0x00u) | magnitude);
}

std::int8_t
from_sign_magnitude(std::uint8_t sm)
{
    const int magnitude = sm & 0x7Fu;
    const bool negative = (sm & 0x80u) != 0;
    return static_cast<std::int8_t>(negative ? -magnitude : magnitude);
}

int
popcount8(std::uint8_t word)
{
    return std::popcount(word);
}

int
bit_count_twos_complement(std::int8_t value)
{
    return std::popcount(
        static_cast<unsigned>(static_cast<std::uint8_t>(value)));
}

int
bit_count_sign_magnitude(std::int8_t value)
{
    return popcount8(to_sign_magnitude(value));
}

std::string
to_binary_string(std::uint8_t word)
{
    std::string out(kWordBits, '0');
    for (int i = 0; i < kWordBits; ++i) {
        if (test_bit(word, kWordBits - 1 - i)) {
            out[i] = '1';
        }
    }
    return out;
}

}  // namespace bitwave
