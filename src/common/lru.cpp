#include "common/lru.hpp"

#include <cstdlib>

namespace bitwave {

std::size_t
cache_capacity_from_env(std::size_t fallback)
{
    const char *env = std::getenv("BITWAVE_CACHE_ENTRIES");
    if (env != nullptr && *env != '\0') {
        char *end = nullptr;
        const long long v = std::strtoll(env, &end, 10);
        if (end != nullptr && *end == '\0' && v > 0) {
            return static_cast<std::size_t>(v);
        }
    }
    return fallback > 0 ? fallback : 1;
}

}  // namespace bitwave
