#include "common/lru.hpp"

#include <thread>

#include "common/env.hpp"

namespace bitwave {

std::size_t
cache_capacity_from_env(std::size_t fallback)
{
    const long long v = env_positive_int("BITWAVE_CACHE_ENTRIES", 0);
    if (v > 0) {
        return static_cast<std::size_t>(v);
    }
    return fallback > 0 ? fallback : 1;
}

std::size_t
cache_shards_from_env()
{
    auto want = static_cast<std::size_t>(
        env_positive_int("BITWAVE_CACHE_SHARDS", 0));
    if (want == 0) {
        want = std::thread::hardware_concurrency();
        if (want == 0) {
            want = 1;
        }
    }
    std::size_t pow2 = 1;
    while (pow2 < want && pow2 < 64) {
        pow2 <<= 1;
    }
    return pow2;
}

}  // namespace bitwave
