#include "common/lru.hpp"

#include <cstdlib>
#include <thread>

namespace bitwave {

std::size_t
cache_capacity_from_env(std::size_t fallback)
{
    const char *env = std::getenv("BITWAVE_CACHE_ENTRIES");
    if (env != nullptr && *env != '\0') {
        char *end = nullptr;
        const long long v = std::strtoll(env, &end, 10);
        if (end != nullptr && *end == '\0' && v > 0) {
            return static_cast<std::size_t>(v);
        }
    }
    return fallback > 0 ? fallback : 1;
}

std::size_t
cache_shards_from_env()
{
    std::size_t want = 0;
    const char *env = std::getenv("BITWAVE_CACHE_SHARDS");
    if (env != nullptr && *env != '\0') {
        char *end = nullptr;
        const long long v = std::strtoll(env, &end, 10);
        if (end != nullptr && *end == '\0' && v > 0) {
            want = static_cast<std::size_t>(v);
        }
    }
    if (want == 0) {
        want = std::thread::hardware_concurrency();
        if (want == 0) {
            want = 1;
        }
    }
    std::size_t pow2 = 1;
    while (pow2 < want && pow2 < 64) {
        pow2 <<= 1;
    }
    return pow2;
}

}  // namespace bitwave
