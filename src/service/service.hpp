/**
 * @file
 * EvalService — the long-running evaluation front end over the
 * work-stealing ScenarioRunner (ROADMAP item 1): clients `submit()`
 * scenarios and get back EvalTickets (futures); dispatcher threads drain
 * a bounded MPMC queue, coalesce compatible requests into shared runner
 * batches, and complete the tickets asynchronously.
 *
 * Three mechanisms turn "a batch API" into "a server under load":
 *
 *  - **Dedup by content.** Requests are keyed by scenario_fingerprint();
 *    an arriving request whose fingerprint matches a queued *or
 *    currently evaluating* job attaches to it as an additional
 *    subscriber — one evaluation, N completions. Multi-tenant sweeps
 *    hammering the same design points pay for each point once.
 *
 *  - **Dynamic batching.** A dispatcher pops one job, then gathers more
 *    (up to `max_batch`, lingering `linger_seconds` for company) into a
 *    single ScenarioRunner batch, so the work-stealing pool and the
 *    content-hash caches (bit-planes, Bit-Flip twins, workload LRU,
 *    mapping memos) see cross-tenant locality instead of singletons.
 *
 *  - **Admission control.** The queue is bounded; `BackpressurePolicy`
 *    picks what saturation means: block the submitter, reject the new
 *    request, or shed the oldest queued one. Depth and
 *    rejection/shed counters are exported via stats().
 *
 * Determinism contract: every completed result is **bit-identical** to a
 * direct `ScenarioRunner::run({scenario})` of the same request, no
 * matter how the batcher composed batches, what the admission order was,
 * or how the deque scheduler stole. The service pins each job's RNG
 * seed to its standalone value (`scenario_rng_seed(s, 0)`) and evaluates
 * through `run_seeded()`, so batch position is pure scheduling.
 *
 * Deadlines and cancellation ride the runner's cooperative cancel flag:
 * an expired or cancelled request detaches from its job; a job (and
 * eventually its whole batch) with no subscribers left aborts at the
 * next chunk boundary instead of burning the pool.
 *
 * Self-healing (the robustness layer on top):
 *
 *  - **Structured failures.** Evaluation errors cross the service
 *    boundary as eval::EvalError with an ErrorKind; a failed ticket
 *    lands in kFailed, result() rethrows the payload, error_kind()
 *    reports the taxonomy.
 *
 *  - **Retry.** kTransient failures re-enter the queue with exponential
 *    backoff and deterministically seeded jitter, up to
 *    RetryPolicy::max_attempts; nothing else is retried.
 *
 *  - **Poison-batch bisection.** A throwing batch is split and re-run
 *    to isolate the bad job, so coalesced innocent siblings complete
 *    normally instead of sharing the failure.
 *
 *  - **Quarantine.** A fingerprint that failed terminally is
 *    quarantined for a TTL: identical resubmissions fail fast with the
 *    recorded error instead of burning the pool again.
 *
 *  - **Watchdog.** Batches exceeding a stall budget are cancelled via
 *    the cooperative flag and their jobs retried as transient.
 *
 *  - **Health.** stats().health summarises the recent attempt window
 *    (kHealthy/kDegraded/kFailing); a failing service degrades
 *    admission to kShedOldest so a failure storm sheds load instead of
 *    blocking every submitter.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "eval/error.hpp"
#include "eval/runner.hpp"

namespace bitwave::service {

namespace detail {
struct ServiceShared;
struct Job;
struct TicketState;
}  // namespace detail

/// What a saturated request queue does to the next submission.
enum class BackpressurePolicy
{
    kBlock,      ///< submit() blocks until space frees up (default).
    kReject,     ///< The new request completes immediately as kRejected.
    kShedOldest, ///< The oldest queued request completes as kShed and
                 ///< the new one is admitted.
};

/**
 * How failed evaluations are retried. Only kTransient failures retry;
 * backoff grows exponentially per attempt, scaled by a jitter factor in
 * [0.5, 1.0] drawn deterministically from (jitter_seed, fingerprint,
 * attempt) — reproducible storms, decorrelated thundering herds.
 */
struct RetryPolicy
{
    int max_attempts = 3;  ///< Total attempts including the first.
    double backoff_seconds = 0.01;      ///< Base delay before attempt 2.
    double backoff_multiplier = 2.0;    ///< Growth per further attempt.
    double max_backoff_seconds = 1.0;   ///< Cap on the un-jittered delay.
    std::uint64_t jitter_seed = 0x5eedULL;
};

/// Service health, derived from the recent evaluation-attempt window.
enum class HealthState
{
    kHealthy,   ///< Failures rare or absent.
    kDegraded,  ///< >= 1/8 of recent attempts failed.
    kFailing,   ///< >= 1/2 of recent attempts failed; admission degrades
                ///< to kShedOldest until the window recovers.
};

/// Display name of a health state ("healthy", ...).
const char *health_state_name(HealthState state);

/// Service configuration.
struct ServiceOptions
{
    /// Bounded request-queue capacity (jobs, after dedup).
    std::size_t queue_capacity = 256;
    BackpressurePolicy policy = BackpressurePolicy::kBlock;
    /**
     * Dispatcher threads draining the queue. 0 starts no threads — the
     * owner drives dispatch explicitly via pump(), which the
     * backpressure/deadline tests use to stay timing-independent.
     * Each dispatcher runs full runner batches, so 1 is the right
     * number unless batches underfill the worker pool.
     */
    int dispatchers = 1;
    /// Max jobs coalesced into one runner batch.
    std::size_t max_batch = 16;
    /**
     * How long a dispatcher holding an underfull batch waits for
     * company before running it anyway. Only dispatcher threads linger;
     * pump() never does.
     */
    double linger_seconds = 0.002;
    /// Evaluation core configuration (threads, grain, scheduler,
    /// chaos_seed). The per-batch cancel flag is service-managed; any
    /// `cancel` pointer set here is ignored.
    eval::RunnerOptions runner;
    /// Default retry policy for kTransient failures. Overridable per
    /// request and via BITWAVE_RETRY_ATTEMPTS (max_attempts only).
    RetryPolicy retry;
    /**
     * Watchdog stall budget: a batch evaluating longer than this is
     * cancelled through the cooperative flag and its jobs retried as
     * transient. <= 0 disables the watchdog (default). Env override:
     * BITWAVE_STALL_BUDGET_MS.
     */
    double stall_budget_seconds = 0.0;
    /// How long a terminally failed fingerprint stays quarantined
    /// (identical resubmissions fail fast). Env override:
    /// BITWAVE_QUARANTINE_TTL_MS.
    double quarantine_ttl_seconds = 30.0;
};

/// Per-request submission knobs.
struct SubmitOptions
{
    /**
     * Relative deadline in seconds; <= 0 means none. An expired request
     * completes as kDeadlineExpired: before dispatch it is pruned
     * without evaluating; once evaluating it can only be reclaimed by
     * cancellation of all its subscribers (the runner polls the batch
     * cancel flag at chunk boundaries). Huge values (including
     * infinity) saturate to "no deadline ever expires" instead of
     * overflowing the clock.
     */
    double deadline_seconds = 0.0;
    /// Per-request retry override; unset uses ServiceOptions::retry.
    std::optional<RetryPolicy> retry;
};

/// Lifecycle of one submitted request.
enum class TicketStatus
{
    kQueued,           ///< Waiting in the request queue.
    kRunning,          ///< Part of an evaluating batch.
    kDone,             ///< Completed; result() is valid.
    kFailed,           ///< Evaluation threw; result() rethrows.
    kCancelled,        ///< cancel() before completion.
    kDeadlineExpired,  ///< Deadline passed before completion.
    kRejected,         ///< Bounced by kReject admission control.
    kShed,             ///< Evicted by kShedOldest admission control.
    kShutdown,         ///< Service shut down before evaluation.
};

/// Display name of a status ("done", "rejected", ...).
const char *ticket_status_name(TicketStatus status);

/// True for every state a ticket can never leave.
bool ticket_status_terminal(TicketStatus status);

class EvalService;

/**
 * Client-side future of one submitted request. Copyable (all copies
 * observe the same request) and safe to wait on from any thread.
 * Tickets must not outlive the EvalService that issued them.
 */
class EvalTicket
{
  public:
    // Special members live in service.cpp: the detail types are
    // incomplete here and shared_ptr destruction needs them complete.
    EvalTicket();
    ~EvalTicket();
    EvalTicket(const EvalTicket &);
    EvalTicket &operator=(const EvalTicket &);
    EvalTicket(EvalTicket &&) noexcept;
    EvalTicket &operator=(EvalTicket &&) noexcept;

    bool valid() const { return state_ != nullptr; }

    /// Current status (racy by nature; terminal states are stable).
    TicketStatus status() const;

    /// Block until the ticket reaches a terminal state.
    void wait() const;

    /// Bounded wait; true when terminal within @p seconds.
    bool wait_for(double seconds) const;

    /**
     * The evaluation result. Blocks until terminal; throws
     * BatchCancelled-style runtime errors for every non-kDone terminal
     * state and rethrows the evaluation's own exception for kFailed.
     */
    const eval::ScenarioResult &result() const;

    /**
     * Withdraw this request. True when the ticket was still live (it
     * completes as kCancelled); false when already terminal. When the
     * last subscriber of an evaluating job cancels — and every other
     * job of its batch is likewise abandoned — the batch aborts through
     * the runner's cancel flag.
     */
    bool cancel();

    /// True when this submission attached to an identical in-flight
    /// request instead of enqueueing a new evaluation.
    bool deduped() const;

    /// Submit-to-terminal latency; meaningful once terminal.
    double latency_seconds() const;

    /// Taxonomy kind of a kFailed ticket (kInternal otherwise);
    /// result() rethrows the full eval::EvalError payload.
    eval::ErrorKind error_kind() const;

  private:
    friend class EvalService;
    std::shared_ptr<detail::ServiceShared> shared_;
    std::shared_ptr<detail::Job> job_;
    std::shared_ptr<detail::TicketState> state_;
};

/// Counter snapshot; see the individual fields.
struct ServiceStats
{
    std::uint64_t submitted = 0;      ///< submit() calls accepted or not.
    std::uint64_t dedup_hits = 0;     ///< Submissions attached to an
                                      ///< existing in-flight job.
    std::uint64_t completed = 0;      ///< Tickets finished kDone.
    std::uint64_t failed = 0;
    std::uint64_t rejected = 0;       ///< kReject admission bounces.
    std::uint64_t shed = 0;           ///< kShedOldest evictions.
    std::uint64_t cancelled = 0;
    std::uint64_t deadline_expired = 0;
    std::uint64_t shutdown_discarded = 0;
    std::uint64_t batches = 0;        ///< Runner batches executed.
    std::uint64_t batched_jobs = 0;   ///< Jobs evaluated across them.
    std::uint64_t steals = 0;         ///< Work-steal events (aggregate).
    std::uint64_t chunks = 0;         ///< Executed chunks (aggregate).
    std::uint64_t retries = 0;        ///< Transient failures requeued.
    std::uint64_t bisections = 0;     ///< Poison-batch splits performed.
    std::uint64_t quarantined = 0;    ///< Fingerprints quarantined.
    std::uint64_t quarantine_hits = 0;  ///< Submissions failed fast by
                                        ///< an active quarantine entry.
    std::uint64_t watchdog_cancels = 0;  ///< Batches cancelled for
                                         ///< exceeding the stall budget.
    std::size_t queue_depth = 0;      ///< Current queue size.
    std::size_t peak_queue_depth = 0;
    HealthState health = HealthState::kHealthy;
    /**
     * Per-phase latency decomposition of evaluated requests, in
     * nanoseconds: submit -> pop (queue_wait_ns), pop -> evaluation
     * start (batch_ns: gather/linger/prune/backoff), and the shared
     * runner evaluation (compute_ns). Always recorded — these are the
     * service's own ungated histograms — and fixed-size, so stats()
     * stays allocation-free.
     */
    metrics::HistogramSnapshot queue_wait_ns;
    metrics::HistogramSnapshot batch_ns;
    metrics::HistogramSnapshot compute_ns;
};

/// See the file comment.
class EvalService
{
  public:
    explicit EvalService(ServiceOptions options = {});

    /// Drains gracefully (shutdown(kDrain)) if still running.
    ~EvalService();

    EvalService(const EvalService &) = delete;
    EvalService &operator=(const EvalService &) = delete;

    /**
     * Submit one scenario for evaluation. Always returns a valid
     * ticket; admission failures surface as ticket status (kRejected /
     * kShed / kShutdown), not exceptions. Under kBlock this call blocks
     * while the queue is full.
     */
    EvalTicket submit(const eval::Scenario &scenario,
                      const SubmitOptions &submit_options = {});

    /**
     * Drive dispatch inline on the calling thread: pop and evaluate up
     * to @p max_batches batches (without lingering), returning how many
     * ran. The test-facing engine for `dispatchers = 0` services —
     * deterministic, no background timing.
     */
    int pump(int max_batches = 1);

    /// How shutdown() treats queued-but-unstarted work.
    enum class ShutdownMode
    {
        kDrain,  ///< Evaluate everything already admitted, then stop.
        kAbort,  ///< Complete queued work as kShutdown unevaluated and
                 ///< cancel evaluating batches at the next chunk.
    };

    /**
     * Stop the service: close admission, resolve the backlog per
     * @p mode, join the dispatchers, and complete every remaining
     * ticket (nothing ever hangs in kQueued/kRunning afterwards).
     * Idempotent; later submit() calls complete as kShutdown.
     */
    void shutdown(ShutdownMode mode = ShutdownMode::kDrain);

    /// Counter snapshot (monotonic except queue_depth).
    ServiceStats stats() const;

  private:
    void dispatcher_loop();
    void watchdog_loop();
    /// Evaluate one batch seeded from @p first; true if anything ran.
    bool process_batch(std::shared_ptr<detail::Job> first, bool linger);

    ServiceOptions options_;
    std::shared_ptr<detail::ServiceShared> shared_;
    std::vector<std::thread> dispatchers_;
    std::thread watchdog_;
};

}  // namespace bitwave::service
