#include "service/service.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/annotations.hpp"
#include "common/env.hpp"
#include "common/fault.hpp"
#include "common/hash.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/mpmc_queue.hpp"
#include "common/trace.hpp"

namespace bitwave::service {

namespace detail {

using Clock = std::chrono::steady_clock;

/**
 * Per-submission future state. The lock order everywhere in this file
 * is ServiceShared::jobs_mutex -> Job::mutex -> TicketState::mutex;
 * client-facing reads (status / wait / result) take only the innermost
 * lock.
 */
struct TicketState
{
    MutexCap mutex;
    CondVarCap cv;
    TicketStatus status GUARDED_BY(mutex) = TicketStatus::kQueued;
    eval::ScenarioResult result GUARDED_BY(mutex);
    std::exception_ptr error GUARDED_BY(mutex);
    ErrorKind error_kind GUARDED_BY(mutex) = ErrorKind::kInternal;
    Clock::time_point submitted;  ///< Immutable after submit().
    Clock::time_point completed GUARDED_BY(mutex);
    bool has_deadline = false;    ///< Immutable after submit().
    Clock::time_point deadline;   ///< Immutable after submit().
    bool deduped = false;         ///< Immutable after submit().
};

/// Cooperative abort shared by the jobs of one runner batch: live_jobs
/// counts jobs that still have subscribers; when the last one detaches,
/// `cancel` flips and the runner aborts at its next chunk boundary. The
/// watchdog flips the same flag when the batch outruns its stall budget
/// (and marks watchdog_fired so the abort classifies as transient).
struct BatchControl
{
    std::atomic<bool> cancel{false};
    std::atomic<int> live_jobs{0};
    std::atomic<bool> watchdog_fired{false};
    /// Published by `running` (release/acquire): the watchdog only reads
    /// `started` after observing running == true.
    Clock::time_point started;
    std::atomic<bool> running{false};
};

/// One deduplicated evaluation: the unit the queue and batcher move.
/// N submissions with the same scenario fingerprint share one Job.
struct Job
{
    std::uint64_t fingerprint = 0;
    eval::Scenario scenario;
    std::uint64_t seed = 0;  ///< Pinned standalone seed (batch-invariant).
    RetryPolicy retry;       ///< Effective policy, fixed at submit.
    /// Trace-clock phase stamps. submit_ns is written once at
    /// submit(); pop_ns is written by the one dispatcher that popped
    /// the job (re-popping a retry is sequenced through the queue).
    std::uint64_t submit_ns = 0;
    std::uint64_t pop_ns = 0;

    MutexCap mutex;  ///< Guards everything below.
    std::vector<std::shared_ptr<TicketState>> subscribers GUARDED_BY(mutex);
    /// Every subscriber detached pre-completion.
    bool abandoned GUARDED_BY(mutex) = false;
    bool done GUARDED_BY(mutex) = false;
    /// Non-null while evaluating.
    BatchControl *batch GUARDED_BY(mutex) = nullptr;
    /// Evaluation attempts so far.
    int attempts GUARDED_BY(mutex) = 0;
    /// Backoff gate for the next attempt.
    Clock::time_point not_before GUARDED_BY(mutex);
    /// Last transient error (kept so a failed requeue can finish the
    /// job).
    std::exception_ptr retry_error GUARDED_BY(mutex);
    TicketStatus outcome GUARDED_BY(mutex) = TicketStatus::kDone;
    /// Valid when done && outcome == kDone.
    eval::ScenarioResult result GUARDED_BY(mutex);
    std::exception_ptr error GUARDED_BY(mutex);
};

/// Quarantine record of a terminally failed fingerprint: identical
/// resubmissions fail fast with the recorded payload until expiry.
struct QuarantineEntry
{
    Clock::time_point expires;
    std::exception_ptr error;
    ErrorKind kind = ErrorKind::kInternal;
};

/// Per-instance counter that mirrors every bump into a process-wide
/// registry counter: stats() keeps reading the instance-local value
/// (fresh services start at zero), while metrics::snapshot() sees the
/// aggregate service.* counters across all instances. Call sites keep
/// the plain `counter++` / `counter += n` / `counter.load()` shape of
/// the old raw atomics.
struct MirroredCounter
{
    std::atomic<std::uint64_t> local{0};
    metrics::Counter *mirror = nullptr;

    void operator++(int)
    {
        local.fetch_add(1, std::memory_order_relaxed);
        if (mirror != nullptr) {
            mirror->inc();
        }
    }

    void operator+=(std::uint64_t n)
    {
        local.fetch_add(n, std::memory_order_relaxed);
        if (mirror != nullptr) {
            mirror->inc(n);
        }
    }

    /// Named value() (not load()) on purpose: this is a plain counter
    /// read, not a std::atomic access, and the repo lint requires every
    /// atomic load to spell its memory order.
    std::uint64_t value() const
    {
        return local.load(std::memory_order_relaxed);
    }
};

struct ServiceShared
{
    explicit ServiceShared(std::size_t capacity) : queue(capacity)
    {
        submitted.mirror = &metrics::counter("service.submitted");
        dedup_hits.mirror = &metrics::counter("service.dedup_hits");
        completed.mirror = &metrics::counter("service.completed");
        failed.mirror = &metrics::counter("service.failed");
        rejected.mirror = &metrics::counter("service.rejected");
        shed.mirror = &metrics::counter("service.shed");
        cancelled.mirror = &metrics::counter("service.cancelled");
        deadline_expired.mirror =
            &metrics::counter("service.deadline_expired");
        shutdown_discarded.mirror =
            &metrics::counter("service.shutdown_discarded");
        batches.mirror = &metrics::counter("service.batches");
        batched_jobs.mirror = &metrics::counter("service.batched_jobs");
        steals.mirror = &metrics::counter("service.steals");
        chunks.mirror = &metrics::counter("service.chunks");
        retries.mirror = &metrics::counter("service.retries");
        bisections.mirror = &metrics::counter("service.bisections");
        quarantined.mirror = &metrics::counter("service.quarantined");
        quarantine_hits.mirror =
            &metrics::counter("service.quarantine_hits");
        watchdog_cancels.mirror =
            &metrics::counter("service.watchdog_cancels");
    }

    MpmcQueue<std::shared_ptr<Job>> queue;
    std::atomic<bool> abort{false};  ///< shutdown(kAbort) in progress.

    MutexCap jobs_mutex;  ///< Guards in_flight/active_batches/quarantine.
    /// Dedup index: fingerprint -> the Job new submissions attach to.
    /// Entries leave the map the moment their job completes or is
    /// abandoned, so a hit is always attachable.
    std::unordered_map<std::uint64_t, std::shared_ptr<Job>>
        in_flight GUARDED_BY(jobs_mutex);
    std::vector<BatchControl *> active_batches GUARDED_BY(jobs_mutex);
    std::unordered_map<std::uint64_t, QuarantineEntry>
        quarantine GUARDED_BY(jobs_mutex);

    /// Watchdog parking: the thread sleeps on the cv and wakes to scan
    /// active_batches; shutdown sets stop and notifies.
    MutexCap watchdog_mutex;
    CondVarCap watchdog_cv;
    bool watchdog_stop GUARDED_BY(watchdog_mutex) = false;

    /// Sliding window of the last <= 32 evaluation-attempt outcomes
    /// (bit = failure), the input to the health state.
    MutexCap health_mutex;
    std::uint32_t health_window GUARDED_BY(health_mutex) = 0;
    int health_count GUARDED_BY(health_mutex) = 0;
    std::atomic<int> health{static_cast<int>(HealthState::kHealthy)};

    MirroredCounter submitted;
    MirroredCounter dedup_hits;
    MirroredCounter completed;
    MirroredCounter failed;
    MirroredCounter rejected;
    MirroredCounter shed;
    MirroredCounter cancelled;
    MirroredCounter deadline_expired;
    MirroredCounter shutdown_discarded;
    MirroredCounter batches;
    MirroredCounter batched_jobs;
    MirroredCounter steals;
    MirroredCounter chunks;
    MirroredCounter retries;
    MirroredCounter bisections;
    MirroredCounter quarantined;
    MirroredCounter quarantine_hits;
    MirroredCounter watchdog_cancels;

    /// Per-phase latency histograms (ungated: always recorded so
    /// stats() is populated without BITWAVE_METRICS), plus gated
    /// registry mirrors for Prometheus/JSON export.
    metrics::Histogram phase_queue{/*gated=*/false};
    metrics::Histogram phase_batch{/*gated=*/false};
    metrics::Histogram phase_compute{/*gated=*/false};
    metrics::Histogram &mirror_queue =
        metrics::histogram("service.queue_wait_ns");
    metrics::Histogram &mirror_batch =
        metrics::histogram("service.batch_ns");
    metrics::Histogram &mirror_compute =
        metrics::histogram("service.compute_ns");
    /// Sampled on stats() reads; the handle is resolved here so the
    /// stats() hot path stays allocation-free.
    metrics::Gauge &queue_depth_gauge =
        metrics::gauge("service.queue_depth");
};

namespace {

/// Taxonomy kind of a stored evaluation error.
ErrorKind
classify(const std::exception_ptr &error)
{
    if (!error) {
        return ErrorKind::kInternal;
    }
    try {
        std::rethrow_exception(error);
    } catch (const FaultError &e) {
        return e.kind();
    } catch (const eval::BatchCancelled &) {
        return ErrorKind::kCancelled;
    } catch (...) {
        return ErrorKind::kInternal;
    }
}

/// uint64 -> double in [0, 1).
double
to_unit(std::uint64_t u)
{
    return static_cast<double>(u >> 11) * 0x1.0p-53;
}

/// Backoff before retry attempt @p attempt (2 = first retry):
/// exponential in the attempt, capped, scaled by a deterministic jitter
/// factor in [0.5, 1.0] — same (policy, fingerprint, attempt) always
/// sleeps the same time; distinct fingerprints decorrelate.
double
backoff_seconds(const RetryPolicy &policy, std::uint64_t fingerprint,
                int attempt)
{
    double base = policy.backoff_seconds *
        std::pow(policy.backoff_multiplier, std::max(attempt - 2, 0));
    base = std::min(base, policy.max_backoff_seconds);
    const double jitter = 0.5 +
        0.5 *
            to_unit(splitmix64(policy.jitter_seed ^ fingerprint ^
                               static_cast<std::uint64_t>(attempt)));
    return base * jitter;
}

/**
 * base + seconds, saturating to time_point::max() instead of
 * overflowing: steady_clock headroom is ~292 years, so any deadline a
 * caller can express beyond that means "never expires". The 0.5 margin
 * keeps the duration_cast itself clear of int64 overflow.
 */
Clock::time_point
saturating_deadline(Clock::time_point base, double seconds)
{
    const double headroom =
        std::chrono::duration<double>(Clock::time_point::max() - base)
            .count();
    if (!(seconds < headroom * 0.5)) {  // also catches inf / NaN
        return Clock::time_point::max();
    }
    return base +
        std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(seconds));
}

/// Record one evaluation-attempt outcome and refresh the health state.
void
record_attempt(ServiceShared &shared, bool ok)
{
    MutexLock lock(shared.health_mutex);
    shared.health_window =
        (shared.health_window << 1) | (ok ? 0u : 1u);
    if (shared.health_count < 32) {
        shared.health_count++;
    }
    const std::uint32_t mask = shared.health_count >= 32
        ? 0xffffffffu
        : ((1u << shared.health_count) - 1u);
    const int fails = std::popcount(shared.health_window & mask);
    HealthState state = HealthState::kHealthy;
    if (shared.health_count >= 8) {
        if (fails * 2 >= shared.health_count) {
            state = HealthState::kFailing;
        } else if (fails * 8 >= shared.health_count) {
            state = HealthState::kDegraded;
        }
    }
    shared.health.store(static_cast<int>(state),
                        std::memory_order_relaxed);
}

/// Move @p state to a terminal status (idempotent) and bump the
/// matching service counter.
void
finish_ticket(ServiceShared &shared, TicketState &state, TicketStatus status,
              const eval::ScenarioResult *result,
              const std::exception_ptr &error,
              ErrorKind kind = ErrorKind::kInternal)
{
    {
        MutexLock lock(state.mutex);
        if (ticket_status_terminal(state.status)) {
            return;
        }
        state.status = status;
        if (result != nullptr) {
            state.result = *result;
        }
        state.error = error;
        state.error_kind = kind;
        state.completed = Clock::now();
        // Bump before the waiter can observe the terminal status (it
        // holds state.mutex inside wait()), so a stats() snapshot taken
        // right after wait() returns already includes this ticket.
        switch (status) {
          case TicketStatus::kDone: shared.completed++; break;
          case TicketStatus::kFailed: shared.failed++; break;
          case TicketStatus::kRejected: shared.rejected++; break;
          case TicketStatus::kShed: shared.shed++; break;
          case TicketStatus::kCancelled: shared.cancelled++; break;
          case TicketStatus::kDeadlineExpired:
            shared.deadline_expired++;
            break;
          case TicketStatus::kShutdown: shared.shutdown_discarded++; break;
          case TicketStatus::kQueued:
          case TicketStatus::kRunning:
            panic("finish_ticket with non-terminal status");
        }
    }
    state.cv.notify_all();
}

/// Complete a whole job: mark it done, drop it from the dedup index and
/// resolve every subscriber.
void
finish_job_locked(ServiceShared &shared, Job &job, TicketStatus status,
                  const std::exception_ptr &error,
                  ErrorKind kind = ErrorKind::kInternal)
    REQUIRES(shared.jobs_mutex, job.mutex)
{
    job.done = true;
    job.outcome = status;
    job.error = error;
    auto it = shared.in_flight.find(job.fingerprint);
    if (it != shared.in_flight.end() && it->second.get() == &job) {
        shared.in_flight.erase(it);
    }
    const eval::ScenarioResult *result =
        status == TicketStatus::kDone ? &job.result : nullptr;
    for (auto &state : job.subscribers) {
        finish_ticket(shared, *state, status, result, error, kind);
    }
    job.subscribers.clear();
}

/// The last subscriber left @p job before it completed: pull it out of
/// the dedup index and, if it is evaluating, vote its batch toward
/// abort.
void
abandon_job_locked(ServiceShared &shared, Job &job)
    REQUIRES(shared.jobs_mutex, job.mutex)
{
    job.abandoned = true;
    auto it = shared.in_flight.find(job.fingerprint);
    if (it != shared.in_flight.end() && it->second.get() == &job) {
        shared.in_flight.erase(it);
    }
    if (job.batch != nullptr &&
        job.batch->live_jobs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        job.batch->cancel.store(true, std::memory_order_relaxed);
    }
}

/// Terminal per-job verdict of one evaluation pass (after bisection).
struct JobOutcome
{
    enum class Kind
    {
        kPending,
        kOk,
        kError,
        kCancelled,
    };
    Kind kind = Kind::kPending;
    eval::ScenarioResult result;
    std::exception_ptr error;
    ErrorKind error_kind = ErrorKind::kInternal;
};

/**
 * Evaluate jobs [begin, end) of @p jobs, bisecting on failure to
 * isolate the poison: a throwing run of more than one job is split in
 * half and both halves re-run (deterministic seeds make the re-run of
 * innocent jobs bit-identical), recursing down to the single bad job.
 * BatchCancelled never bisects — the shared cancel flag would abort the
 * halves instantly; it classifies as transient when the watchdog fired
 * (the jobs deserve another attempt on a fresh batch) and as cancelled
 * otherwise. Runner stats of successful subsets accumulate into @p agg.
 */
void
evaluate_jobs(const ServiceOptions &options, ServiceShared &shared,
              BatchControl &control,
              const std::vector<std::shared_ptr<Job>> &jobs,
              std::size_t begin, std::size_t end,
              std::vector<JobOutcome> *outcomes, eval::RunnerReport *agg)
{
    try {
        BITWAVE_FAULT_INJECT("service.dispatch");
        std::vector<eval::Scenario> scenarios;
        std::vector<std::uint64_t> seeds;
        scenarios.reserve(end - begin);
        seeds.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
            scenarios.push_back(jobs[i]->scenario);
            seeds.push_back(jobs[i]->seed);
        }
        eval::RunnerOptions runner_options = options.runner;
        runner_options.cancel = &control.cancel;
        eval::ScenarioRunner runner(runner_options);
        eval::RunnerReport report;
        auto results = runner.run_seeded(scenarios, seeds, &report);
        for (std::size_t i = begin; i < end; ++i) {
            auto &out = (*outcomes)[i];
            out.kind = JobOutcome::Kind::kOk;
            out.result = std::move(results[i - begin]);
        }
        agg->steals += report.steals;
        agg->chunks += report.chunks;
        return;
    } catch (const eval::BatchCancelled &) {
        const bool stalled =
            control.watchdog_fired.load(std::memory_order_relaxed);
        for (std::size_t i = begin; i < end; ++i) {
            auto &out = (*outcomes)[i];
            if (stalled) {
                out.kind = JobOutcome::Kind::kError;
                out.error_kind = ErrorKind::kTransient;
                out.error = std::make_exception_ptr(eval::EvalError(
                    ErrorKind::kTransient,
                    "batch cancelled by watchdog: stall budget exceeded"));
            } else {
                out.kind = JobOutcome::Kind::kCancelled;
            }
        }
        return;
    } catch (...) {
        if (end - begin == 1) {
            auto &out = (*outcomes)[begin];
            out.kind = JobOutcome::Kind::kError;
            out.error = std::current_exception();
            out.error_kind = classify(out.error);
            return;
        }
        shared.bisections++;
        trace::instant("service.bisection", "service", "jobs",
                       static_cast<std::uint64_t>(end - begin));
    }
    const std::size_t mid = begin + (end - begin) / 2;
    evaluate_jobs(options, shared, control, jobs, begin, mid, outcomes, agg);
    evaluate_jobs(options, shared, control, jobs, mid, end, outcomes, agg);
}

}  // namespace

}  // namespace detail

using detail::Clock;

const char *
ticket_status_name(TicketStatus status)
{
    switch (status) {
      case TicketStatus::kQueued: return "queued";
      case TicketStatus::kRunning: return "running";
      case TicketStatus::kDone: return "done";
      case TicketStatus::kFailed: return "failed";
      case TicketStatus::kCancelled: return "cancelled";
      case TicketStatus::kDeadlineExpired: return "deadline-expired";
      case TicketStatus::kRejected: return "rejected";
      case TicketStatus::kShed: return "shed";
      case TicketStatus::kShutdown: return "shutdown";
    }
    return "?";
}

bool
ticket_status_terminal(TicketStatus status)
{
    return status != TicketStatus::kQueued &&
        status != TicketStatus::kRunning;
}

const char *
health_state_name(HealthState state)
{
    switch (state) {
      case HealthState::kHealthy: return "healthy";
      case HealthState::kDegraded: return "degraded";
      case HealthState::kFailing: return "failing";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// EvalTicket
// ---------------------------------------------------------------------------

EvalTicket::EvalTicket() = default;
EvalTicket::~EvalTicket() = default;
EvalTicket::EvalTicket(const EvalTicket &) = default;
EvalTicket &EvalTicket::operator=(const EvalTicket &) = default;
EvalTicket::EvalTicket(EvalTicket &&) noexcept = default;
EvalTicket &EvalTicket::operator=(EvalTicket &&) noexcept = default;

TicketStatus
EvalTicket::status() const
{
    if (!valid()) {
        return TicketStatus::kRejected;
    }
    MutexLock lock(state_->mutex);
    return state_->status;
}

void
EvalTicket::wait() const
{
    MutexLock lock(state_->mutex);
    while (!ticket_status_terminal(state_->status)) {
        state_->cv.wait(state_->mutex);
    }
}

bool
EvalTicket::wait_for(double seconds) const
{
    // A wait beyond the clock's headroom (~292 years) is an unbounded
    // wait: the duration_cast below would overflow on it.
    if (!(seconds < 1e9)) {
        wait();
        return true;
    }
    const auto deadline = Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(std::max(seconds, 0.0)));
    MutexLock lock(state_->mutex);
    while (!ticket_status_terminal(state_->status)) {
        if (state_->cv.wait_until(state_->mutex, deadline) ==
            std::cv_status::timeout) {
            break;
        }
    }
    return ticket_status_terminal(state_->status);
}

const eval::ScenarioResult &
EvalTicket::result() const
{
    wait();
    MutexLock lock(state_->mutex);
    if (state_->status == TicketStatus::kDone) {
        return state_->result;
    }
    if (state_->status == TicketStatus::kFailed && state_->error) {
        std::rethrow_exception(state_->error);
    }
    throw std::runtime_error(strprintf(
        "evaluation request %s", ticket_status_name(state_->status)));
}

bool
EvalTicket::cancel()
{
    if (!valid()) {
        return false;
    }
    if (!job_) {
        return false;  // failed fast at submit (quarantine / admission)
    }
    MutexLock jobs_lock(shared_->jobs_mutex);
    MutexLock job_lock(job_->mutex);
    {
        MutexLock lock(state_->mutex);
        if (ticket_status_terminal(state_->status)) {
            return false;
        }
    }
    auto &subs = job_->subscribers;
    subs.erase(std::remove(subs.begin(), subs.end(), state_), subs.end());
    detail::finish_ticket(*shared_, *state_, TicketStatus::kCancelled,
                          nullptr, nullptr, ErrorKind::kCancelled);
    if (subs.empty() && !job_->done) {
        detail::abandon_job_locked(*shared_, *job_);
    }
    return true;
}

bool
EvalTicket::deduped() const
{
    return valid() && state_->deduped;
}

double
EvalTicket::latency_seconds() const
{
    MutexLock lock(state_->mutex);
    return std::chrono::duration<double>(state_->completed -
                                         state_->submitted).count();
}

eval::ErrorKind
EvalTicket::error_kind() const
{
    if (!valid()) {
        return eval::ErrorKind::kInvalid;
    }
    MutexLock lock(state_->mutex);
    return state_->error_kind;
}

// ---------------------------------------------------------------------------
// EvalService
// ---------------------------------------------------------------------------

EvalService::EvalService(ServiceOptions options)
    : options_(options),
      shared_(std::make_shared<detail::ServiceShared>(options.queue_capacity))
{
    options_.runner.cancel = nullptr;  // per-batch, service-managed
    if (options_.max_batch == 0) {
        options_.max_batch = 1;
    }
    if (!env_string("BITWAVE_RETRY_ATTEMPTS").empty()) {
        options_.retry.max_attempts = static_cast<int>(env_positive_int(
            "BITWAVE_RETRY_ATTEMPTS", options_.retry.max_attempts));
    }
    if (!env_string("BITWAVE_STALL_BUDGET_MS").empty()) {
        options_.stall_budget_seconds =
            static_cast<double>(env_positive_int("BITWAVE_STALL_BUDGET_MS",
                                                 0)) *
            1e-3;
    }
    if (!env_string("BITWAVE_QUARANTINE_TTL_MS").empty()) {
        options_.quarantine_ttl_seconds = static_cast<double>(
                                              env_positive_int(
                                                  "BITWAVE_QUARANTINE_TTL_"
                                                  "MS",
                                                  30000)) *
            1e-3;
    }
    dispatchers_.reserve(static_cast<std::size_t>(
        std::max(options_.dispatchers, 0)));
    for (int i = 0; i < options_.dispatchers; ++i) {
        dispatchers_.emplace_back([this] { dispatcher_loop(); });
    }
    if (options_.stall_budget_seconds > 0.0) {
        watchdog_ = std::thread([this] { watchdog_loop(); });
    }
}

EvalService::~EvalService()
{
    shutdown(ShutdownMode::kDrain);
}

EvalTicket
EvalService::submit(const eval::Scenario &scenario,
                    const SubmitOptions &submit_options)
{
    auto state = std::make_shared<detail::TicketState>();
    state->submitted = Clock::now();
    if (submit_options.deadline_seconds > 0.0) {
        state->has_deadline = true;
        state->deadline = detail::saturating_deadline(
            state->submitted, submit_options.deadline_seconds);
    }
    shared_->submitted++;

    EvalTicket ticket;
    ticket.shared_ = shared_;
    ticket.state_ = state;

    const RetryPolicy retry =
        submit_options.retry.value_or(options_.retry);
    const std::uint64_t fingerprint = eval::scenario_fingerprint(scenario);
    {
        MutexLock jobs_lock(shared_->jobs_mutex);
        auto it = shared_->in_flight.find(fingerprint);
        if (it != shared_->in_flight.end()) {
            // Identical request already queued or evaluating: attach as
            // another subscriber — one evaluation, N completions.
            auto job = it->second;
            MutexLock job_lock(job->mutex);
            state->deduped = true;
            if (job->batch != nullptr) {
                MutexLock lock(state->mutex);
                state->status = TicketStatus::kRunning;
            }
            job->subscribers.push_back(state);
            shared_->dedup_hits++;
            trace::instant("service.dedup_hit", "service", "fingerprint",
                           fingerprint);
            ticket.job_ = std::move(job);
            return ticket;
        }
        // Quarantine: a fingerprint that just failed terminally fails
        // fast with the recorded payload instead of re-burning the pool;
        // an expired entry is readmitted.
        auto q = shared_->quarantine.find(fingerprint);
        if (q != shared_->quarantine.end()) {
            if (state->submitted < q->second.expires) {
                shared_->quarantine_hits++;
                detail::finish_ticket(*shared_, *state,
                                      TicketStatus::kFailed, nullptr,
                                      q->second.error, q->second.kind);
                return ticket;  // no job: fail-fast ticket
            }
            shared_->quarantine.erase(q);
        }
        auto job = std::make_shared<detail::Job>();
        job->fingerprint = fingerprint;
        job->scenario = scenario;
        job->submit_ns = trace::now_ns();
        // The standalone seed: what ScenarioRunner::run({scenario})
        // would derive at batch index 0. Pinning it here is what makes
        // batch composition invisible in the results.
        job->seed = eval::scenario_rng_seed(scenario, 0);
        job->retry = retry;
        {
            // Unpublished job — uncontended; taken for the guarded
            // subscribers write.
            MutexLock job_lock(job->mutex);
            job->subscribers.push_back(state);
        }
        shared_->in_flight.emplace(fingerprint, job);
        ticket.job_ = std::move(job);
    }

    // Under kFailing health the service sheds load instead of blocking
    // or bouncing every submitter behind a storm of failing requests.
    BackpressurePolicy policy = options_.policy;
    if (static_cast<HealthState>(shared_->health.load(
            std::memory_order_relaxed)) == HealthState::kFailing) {
        policy = BackpressurePolicy::kShedOldest;
    }

    // Admission happens outside jobs_mutex: under kBlock this can wait
    // on the dispatchers, which need jobs_mutex to complete batches.
    // The queue's own fault point (mpmc.push) may throw here; transient
    // faults retry immediately (admission holds no state to back off
    // from), anything else fails the ticket with the payload.
    QueuePush admitted = QueuePush::kClosed;
    std::optional<std::shared_ptr<detail::Job>> shed_job;
    std::exception_ptr admission_error;
    for (int attempt = 1;; ++attempt) {
        try {
            admission_error = nullptr;
            switch (policy) {
              case BackpressurePolicy::kBlock:
                admitted = shared_->queue.push(ticket.job_);
                break;
              case BackpressurePolicy::kReject:
                admitted = shared_->queue.try_push(ticket.job_);
                break;
              case BackpressurePolicy::kShedOldest:
                admitted = shared_->queue.push_shed_oldest(ticket.job_,
                                                           &shed_job);
                break;
            }
            break;
        } catch (const FaultError &e) {
            admission_error = std::current_exception();
            if (e.kind() != ErrorKind::kTransient ||
                attempt >= retry.max_attempts) {
                break;
            }
            shared_->retries++;
        }
    }
    if (admission_error) {
        MutexLock jobs_lock(shared_->jobs_mutex);
        MutexLock job_lock(ticket.job_->mutex);
        if (!ticket.job_->done && !ticket.job_->abandoned) {
            detail::finish_job_locked(*shared_, *ticket.job_,
                                      TicketStatus::kFailed,
                                      admission_error,
                                      detail::classify(admission_error));
        }
        return ticket;
    }
    if (shed_job.has_value()) {
        MutexLock jobs_lock(shared_->jobs_mutex);
        MutexLock job_lock((*shed_job)->mutex);
        detail::finish_job_locked(*shared_, **shed_job, TicketStatus::kShed,
                                  nullptr);
    }
    if (admitted != QueuePush::kAccepted) {
        const TicketStatus status = admitted == QueuePush::kFull
            ? TicketStatus::kRejected
            : TicketStatus::kShutdown;
        MutexLock jobs_lock(shared_->jobs_mutex);
        MutexLock job_lock(ticket.job_->mutex);
        detail::finish_job_locked(*shared_, *ticket.job_, status, nullptr);
    }
    return ticket;
}

bool
EvalService::process_batch(std::shared_ptr<detail::Job> first, bool linger)
{
    // Dynamic batching: gather whatever is queued right now, and — on
    // dispatcher threads only — linger once for company rather than
    // running a singleton batch into an idle worker pool.
    std::vector<std::shared_ptr<detail::Job>> jobs;
    first->pop_ns = trace::now_ns();
    jobs.push_back(std::move(first));
    bool lingered = false;
    while (jobs.size() < options_.max_batch) {
        std::shared_ptr<detail::Job> next;
        if (shared_->queue.try_pop(&next)) {
            next->pop_ns = trace::now_ns();
            jobs.push_back(std::move(next));
            continue;
        }
        if (linger && !lingered && options_.linger_seconds > 0.0) {
            lingered = true;
            bool got = false;
            {
                trace::Span linger_span("service.linger", "service");
                got = shared_->queue.pop_for(&next,
                                             options_.linger_seconds);
            }
            if (got) {
                next->pop_ns = trace::now_ns();
                jobs.push_back(std::move(next));
                continue;
            }
        }
        break;
    }

    // Aborting shutdown: everything popped from here on completes as
    // kShutdown, unevaluated.
    if (shared_->abort.load(std::memory_order_relaxed)) {
        MutexLock jobs_lock(shared_->jobs_mutex);
        for (auto &job : jobs) {
            MutexLock job_lock(job->mutex);
            if (!job->done && !job->abandoned) {
                detail::finish_job_locked(*shared_, *job,
                                          TicketStatus::kShutdown, nullptr);
            }
        }
        return false;
    }

    // Admission-to-dispatch pruning: drop subscribers whose deadline
    // already passed and jobs nobody subscribes to any more, then pin
    // the survivors to this batch's cancel control.
    detail::BatchControl control;
    std::vector<std::shared_ptr<detail::Job>> live;
    Clock::time_point gate{};
    const auto now = Clock::now();
    {
        MutexLock jobs_lock(shared_->jobs_mutex);
        for (auto &job : jobs) {
            MutexLock job_lock(job->mutex);
            if (job->done || job->abandoned) {
                continue;  // resolved while queued (cancel / shed race)
            }
            auto &subs = job->subscribers;
            for (auto it = subs.begin(); it != subs.end();) {
                if ((*it)->has_deadline && (*it)->deadline <= now) {
                    detail::finish_ticket(*shared_, **it,
                                          TicketStatus::kDeadlineExpired,
                                          nullptr, nullptr);
                    it = subs.erase(it);
                } else {
                    ++it;
                }
            }
            if (subs.empty()) {
                detail::finish_job_locked(*shared_, *job,
                                          TicketStatus::kDeadlineExpired,
                                          nullptr);
                continue;
            }
            job->batch = &control;
            job->attempts++;
            gate = std::max(gate, job->not_before);
            for (auto &state : subs) {
                MutexLock lock(state->mutex);
                if (!ticket_status_terminal(state->status)) {
                    state->status = TicketStatus::kRunning;
                }
            }
            live.push_back(job);
        }
        control.live_jobs.store(static_cast<int>(live.size()),
                                std::memory_order_relaxed);
        if (!live.empty()) {
            shared_->active_batches.push_back(&control);
        }
    }
    if (live.empty()) {
        return false;
    }

    // Backoff gate: retried jobs carry a not-before stamp; waiting here
    // (bounded by max_backoff_seconds) keeps the requeue path simple —
    // retries share the one queue instead of a timed side channel.
    if (gate > now) {
        std::this_thread::sleep_until(gate);
    }

    // Publish the start for the watchdog (release pairs with its
    // acquire of `running`).
    control.started = Clock::now();
    control.running.store(true, std::memory_order_release);

    const std::uint64_t eval_start_ns = trace::now_ns();
    std::vector<detail::JobOutcome> outcomes(live.size());
    eval::RunnerReport agg;
    agg.steals = 0;
    agg.chunks = 0;
    detail::evaluate_jobs(options_, *shared_, control, live, 0, live.size(),
                          &outcomes, &agg);
    control.running.store(false, std::memory_order_relaxed);
    const std::uint64_t eval_end_ns = trace::now_ns();
    if (trace::enabled()) {
        trace::emit_complete(
            "service.dispatch", "service", eval_start_ns,
            eval_end_ns - eval_start_ns, "jobs",
            static_cast<std::uint64_t>(live.size()), "chunks",
            static_cast<std::uint64_t>(std::max<std::int64_t>(agg.chunks,
                                                              0)));
    }
    const auto sub_sat = [](std::uint64_t a, std::uint64_t b) {
        return a > b ? a - b : 0;
    };

    bool any_done = false;
    std::vector<std::shared_ptr<detail::Job>> requeue;
    {
        MutexLock jobs_lock(shared_->jobs_mutex);
        auto &batches = shared_->active_batches;
        batches.erase(std::remove(batches.begin(), batches.end(), &control),
                      batches.end());
        const bool aborting = shared_->abort.load(std::memory_order_relaxed);
        // Count the batch into the stats BEFORE finishing any job: a
        // submitter whose wait() returns must observe these counters
        // already bumped (finish_ticket publishes through the ticket
        // mutex), so stats() read after a completion never lags it.
        std::uint64_t evaluated = 0;
        for (std::size_t i = 0; i < live.size(); ++i) {
            auto &job = *live[i];
            MutexLock job_lock(job.mutex);
            if (job.done || job.abandoned) {
                continue;
            }
            const auto kind = outcomes[i].kind;
            if (kind == detail::JobOutcome::Kind::kOk ||
                kind == detail::JobOutcome::Kind::kError) {
                evaluated++;
            }
        }
        if (evaluated > 0) {
            shared_->batches++;
            shared_->batched_jobs += evaluated;
            shared_->steals += static_cast<std::uint64_t>(
                std::max<std::int64_t>(agg.steals, 0));
            shared_->chunks += static_cast<std::uint64_t>(
                std::max<std::int64_t>(agg.chunks, 0));
        }
        for (std::size_t i = 0; i < live.size(); ++i) {
            auto &job = *live[i];
            MutexLock job_lock(job.mutex);
            job.batch = nullptr;
            if (job.done || job.abandoned) {
                job.done = true;
                continue;
            }
            auto &out = outcomes[i];
            if (out.kind == detail::JobOutcome::Kind::kOk ||
                out.kind == detail::JobOutcome::Kind::kError) {
                // Phase decomposition of this request's latency:
                // submit -> pop -> evaluation start -> evaluation end.
                const std::uint64_t queue_ns =
                    sub_sat(job.pop_ns, job.submit_ns);
                const std::uint64_t batch_ns =
                    sub_sat(eval_start_ns, job.pop_ns);
                const std::uint64_t compute_ns =
                    sub_sat(eval_end_ns, eval_start_ns);
                shared_->phase_queue.record(queue_ns);
                shared_->phase_batch.record(batch_ns);
                shared_->phase_compute.record(compute_ns);
                shared_->mirror_queue.record(queue_ns);
                shared_->mirror_batch.record(batch_ns);
                shared_->mirror_compute.record(compute_ns);
                if (trace::enabled()) {
                    trace::emit_complete("service.queue_wait", "service",
                                         job.submit_ns, queue_ns,
                                         "fingerprint", job.fingerprint);
                    trace::emit_complete("service.batch", "service",
                                         job.pop_ns, batch_ns,
                                         "fingerprint", job.fingerprint);
                    trace::emit_complete(
                        "service.compute", "service", eval_start_ns,
                        compute_ns, "fingerprint", job.fingerprint,
                        "attempt",
                        static_cast<std::uint64_t>(job.attempts));
                }
            }
            switch (out.kind) {
              case detail::JobOutcome::Kind::kOk:
                job.result = std::move(out.result);
                detail::finish_job_locked(*shared_, job, TicketStatus::kDone,
                                          nullptr);
                detail::record_attempt(*shared_, true);
                any_done = true;
                break;
              case detail::JobOutcome::Kind::kCancelled:
                // A cancelled batch with live subscribers only happens
                // under shutdown(kAbort); organic cancellation implies
                // every subscriber already detached.
                detail::finish_job_locked(
                    *shared_, job,
                    aborting ? TicketStatus::kShutdown
                             : TicketStatus::kCancelled,
                    nullptr, ErrorKind::kCancelled);
                break;
              case detail::JobOutcome::Kind::kError:
                detail::record_attempt(*shared_, false);
                if (out.error_kind == ErrorKind::kTransient &&
                    job.attempts < job.retry.max_attempts && !aborting) {
                    shared_->retries++;
                    trace::instant(
                        "service.retry", "service", "fingerprint",
                        job.fingerprint, "attempt",
                        static_cast<std::uint64_t>(job.attempts));
                    job.not_before = Clock::now() +
                        std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                detail::backoff_seconds(job.retry,
                                                        job.fingerprint,
                                                        job.attempts + 1)));
                    job.retry_error = out.error;
                    requeue.push_back(live[i]);
                    break;
                }
                // Terminal failure: quarantine the fingerprint so
                // identical resubmissions fail fast for a TTL.
                if (options_.quarantine_ttl_seconds > 0.0) {
                    detail::QuarantineEntry entry;
                    entry.expires = detail::saturating_deadline(
                        Clock::now(), options_.quarantine_ttl_seconds);
                    entry.error = out.error;
                    entry.kind = out.error_kind;
                    shared_->quarantine[job.fingerprint] = entry;
                    shared_->quarantined++;
                    trace::instant("service.quarantine", "service",
                                   "fingerprint", job.fingerprint);
                }
                detail::finish_job_locked(*shared_, job,
                                          TicketStatus::kFailed, out.error,
                                          out.error_kind);
                break;
              case detail::JobOutcome::Kind::kPending:
                panic("batch job left unresolved by evaluate_jobs");
            }
        }
    }
    if (trace::enabled()) {
        trace::emit_complete("service.finalize", "service", eval_end_ns,
                             sub_sat(trace::now_ns(), eval_end_ns), "jobs",
                             static_cast<std::uint64_t>(live.size()));
    }

    // Requeue retries outside jobs_mutex (push can block/throw). A
    // requeue that fails — queue closed at shutdown, full, or its own
    // injected fault — terminates the job with the original error: no
    // ticket is ever left hanging.
    for (auto &job : requeue) {
        std::exception_ptr requeue_error;
        QueuePush pushed = QueuePush::kClosed;
        try {
            pushed = shared_->queue.try_push(job);
        } catch (const FaultError &) {
            requeue_error = std::current_exception();
        }
        if (pushed == QueuePush::kAccepted) {
            continue;
        }
        MutexLock jobs_lock(shared_->jobs_mutex);
        MutexLock job_lock(job->mutex);
        if (job->done || job->abandoned) {
            continue;
        }
        std::exception_ptr error =
            requeue_error ? requeue_error : job->retry_error;
        detail::finish_job_locked(*shared_, *job, TicketStatus::kFailed,
                                  error, detail::classify(error));
    }
    return any_done;
}

int
EvalService::pump(int max_batches)
{
    int ran = 0;
    std::shared_ptr<detail::Job> job;
    while (ran < max_batches && shared_->queue.try_pop(&job)) {
        if (process_batch(std::move(job), /*linger=*/false)) {
            ++ran;
        }
        job.reset();
    }
    return ran;
}

void
EvalService::dispatcher_loop()
{
    std::shared_ptr<detail::Job> job;
    while (shared_->queue.pop(&job)) {
        process_batch(std::move(job), /*linger=*/true);
        job.reset();
    }
}

void
EvalService::watchdog_loop()
{
    const auto budget = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(options_.stall_budget_seconds));
    const auto poll = std::clamp(
        budget / 4,
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::milliseconds(1)),
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::milliseconds(50)));
    for (;;) {
        {
            const auto deadline = Clock::now() + poll;
            MutexLock lock(shared_->watchdog_mutex);
            while (!shared_->watchdog_stop) {
                if (shared_->watchdog_cv.wait_until(
                        shared_->watchdog_mutex, deadline) ==
                    std::cv_status::timeout) {
                    break;
                }
            }
            if (shared_->watchdog_stop) {
                return;
            }
        }
        const auto now = Clock::now();
        MutexLock jobs_lock(shared_->jobs_mutex);
        for (detail::BatchControl *batch : shared_->active_batches) {
            if (!batch->running.load(std::memory_order_acquire)) {
                continue;
            }
            if (batch->watchdog_fired.load(std::memory_order_relaxed)) {
                continue;
            }
            if (now - batch->started < budget) {
                continue;
            }
            batch->watchdog_fired.store(true, std::memory_order_relaxed);
            batch->cancel.store(true, std::memory_order_relaxed);
            shared_->watchdog_cancels++;
            trace::instant("service.watchdog_cancel", "service");
            warn_once("service-watchdog",
                      "watchdog cancelled a batch exceeding the %.0f ms "
                      "stall budget (retrying as transient)",
                      options_.stall_budget_seconds * 1e3);
        }
    }
}

void
EvalService::shutdown(ShutdownMode mode)
{
    if (mode == ShutdownMode::kAbort) {
        shared_->abort.store(true, std::memory_order_relaxed);
        // Evaluating batches abort at their next chunk boundary.
        MutexLock jobs_lock(shared_->jobs_mutex);
        for (detail::BatchControl *batch : shared_->active_batches) {
            batch->cancel.store(true, std::memory_order_relaxed);
        }
    }
    shared_->queue.close();
    for (auto &dispatcher : dispatchers_) {
        if (dispatcher.joinable()) {
            dispatcher.join();
        }
    }
    dispatchers_.clear();
    // Resolve whatever is still queued: dispatchers==0 services, and
    // jobs admitted after the dispatchers drained. Under kAbort
    // process_batch completes them as kShutdown without evaluating.
    // Retries requeued into the closed queue fail over to kFailed, so
    // this loop terminates. The watchdog stays alive until the drain
    // finishes — a stalling final batch must still be reclaimed.
    std::shared_ptr<detail::Job> job;
    while (shared_->queue.try_pop(&job)) {
        process_batch(std::move(job), /*linger=*/false);
        job.reset();
    }
    {
        MutexLock lock(shared_->watchdog_mutex);
        shared_->watchdog_stop = true;
    }
    shared_->watchdog_cv.notify_all();
    if (watchdog_.joinable()) {
        watchdog_.join();
    }
}

ServiceStats
EvalService::stats() const
{
    ServiceStats s;
    s.submitted = shared_->submitted.value();
    s.dedup_hits = shared_->dedup_hits.value();
    s.completed = shared_->completed.value();
    s.failed = shared_->failed.value();
    s.rejected = shared_->rejected.value();
    s.shed = shared_->shed.value();
    s.cancelled = shared_->cancelled.value();
    s.deadline_expired = shared_->deadline_expired.value();
    s.shutdown_discarded = shared_->shutdown_discarded.value();
    s.batches = shared_->batches.value();
    s.batched_jobs = shared_->batched_jobs.value();
    s.steals = shared_->steals.value();
    s.chunks = shared_->chunks.value();
    s.retries = shared_->retries.value();
    s.bisections = shared_->bisections.value();
    s.quarantined = shared_->quarantined.value();
    s.quarantine_hits = shared_->quarantine_hits.value();
    s.watchdog_cancels = shared_->watchdog_cancels.value();
    s.queue_depth = shared_->queue.size();
    s.peak_queue_depth = shared_->queue.peak_size();
    s.health = static_cast<HealthState>(
        shared_->health.load(std::memory_order_relaxed));
    s.queue_wait_ns = shared_->phase_queue.snapshot();
    s.batch_ns = shared_->phase_batch.snapshot();
    s.compute_ns = shared_->phase_compute.snapshot();
    shared_->queue_depth_gauge.set(
        static_cast<std::int64_t>(s.queue_depth));
    return s;
}

}  // namespace bitwave::service
