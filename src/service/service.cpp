#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/logging.hpp"
#include "common/mpmc_queue.hpp"

namespace bitwave::service {

namespace detail {

using Clock = std::chrono::steady_clock;

/**
 * Per-submission future state. The lock order everywhere in this file
 * is ServiceShared::jobs_mutex -> Job::mutex -> TicketState::mutex;
 * client-facing reads (status / wait / result) take only the innermost
 * lock.
 */
struct TicketState
{
    std::mutex mutex;
    std::condition_variable cv;
    TicketStatus status = TicketStatus::kQueued;
    eval::ScenarioResult result;
    std::exception_ptr error;
    Clock::time_point submitted;
    Clock::time_point completed;
    bool has_deadline = false;
    Clock::time_point deadline;
    bool deduped = false;  // immutable after submit()
};

/// Cooperative abort shared by the jobs of one runner batch: live_jobs
/// counts jobs that still have subscribers; when the last one detaches,
/// `cancel` flips and the runner aborts at its next chunk boundary.
struct BatchControl
{
    std::atomic<bool> cancel{false};
    std::atomic<int> live_jobs{0};
};

/// One deduplicated evaluation: the unit the queue and batcher move.
/// N submissions with the same scenario fingerprint share one Job.
struct Job
{
    std::uint64_t fingerprint = 0;
    eval::Scenario scenario;
    std::uint64_t seed = 0;  ///< Pinned standalone seed (batch-invariant).

    std::mutex mutex;  // guards everything below
    std::vector<std::shared_ptr<TicketState>> subscribers;
    bool abandoned = false;  ///< Every subscriber detached pre-completion.
    bool done = false;
    BatchControl *batch = nullptr;  ///< Non-null while evaluating.
    TicketStatus outcome = TicketStatus::kDone;
    eval::ScenarioResult result;  ///< Valid when done && outcome == kDone.
    std::exception_ptr error;
};

struct ServiceShared
{
    explicit ServiceShared(std::size_t capacity) : queue(capacity) {}

    MpmcQueue<std::shared_ptr<Job>> queue;
    std::atomic<bool> abort{false};  ///< shutdown(kAbort) in progress.

    std::mutex jobs_mutex;  // guards in_flight + active_batches
    /// Dedup index: fingerprint -> the Job new submissions attach to.
    /// Entries leave the map the moment their job completes or is
    /// abandoned, so a hit is always attachable.
    std::unordered_map<std::uint64_t, std::shared_ptr<Job>> in_flight;
    std::vector<BatchControl *> active_batches;

    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> dedup_hits{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> cancelled{0};
    std::atomic<std::uint64_t> deadline_expired{0};
    std::atomic<std::uint64_t> shutdown_discarded{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> batched_jobs{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> chunks{0};
};

namespace {

/// Move @p state to a terminal status (idempotent) and bump the
/// matching service counter.
void
finish_ticket(ServiceShared &shared, TicketState &state, TicketStatus status,
              const eval::ScenarioResult *result, std::exception_ptr error)
{
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (ticket_status_terminal(state.status)) {
            return;
        }
        state.status = status;
        if (result != nullptr) {
            state.result = *result;
        }
        state.error = std::move(error);
        state.completed = Clock::now();
        // Bump before the waiter can observe the terminal status (it
        // holds state.mutex inside wait()), so a stats() snapshot taken
        // right after wait() returns already includes this ticket.
        switch (status) {
          case TicketStatus::kDone: shared.completed++; break;
          case TicketStatus::kFailed: shared.failed++; break;
          case TicketStatus::kRejected: shared.rejected++; break;
          case TicketStatus::kShed: shared.shed++; break;
          case TicketStatus::kCancelled: shared.cancelled++; break;
          case TicketStatus::kDeadlineExpired:
            shared.deadline_expired++;
            break;
          case TicketStatus::kShutdown: shared.shutdown_discarded++; break;
          case TicketStatus::kQueued:
          case TicketStatus::kRunning:
            panic("finish_ticket with non-terminal status");
        }
    }
    state.cv.notify_all();
}

/// Complete a whole job: mark it done, drop it from the dedup index and
/// resolve every subscriber. Caller holds jobs_mutex and job.mutex.
void
finish_job_locked(ServiceShared &shared, Job &job, TicketStatus status,
                  std::exception_ptr error)
{
    job.done = true;
    job.outcome = status;
    job.error = error;
    auto it = shared.in_flight.find(job.fingerprint);
    if (it != shared.in_flight.end() && it->second.get() == &job) {
        shared.in_flight.erase(it);
    }
    const eval::ScenarioResult *result =
        status == TicketStatus::kDone ? &job.result : nullptr;
    for (auto &state : job.subscribers) {
        finish_ticket(shared, *state, status, result, error);
    }
    job.subscribers.clear();
}

/// The last subscriber left @p job before it completed: pull it out of
/// the dedup index and, if it is evaluating, vote its batch toward
/// abort. Caller holds jobs_mutex and job.mutex.
void
abandon_job_locked(ServiceShared &shared, Job &job)
{
    job.abandoned = true;
    auto it = shared.in_flight.find(job.fingerprint);
    if (it != shared.in_flight.end() && it->second.get() == &job) {
        shared.in_flight.erase(it);
    }
    if (job.batch != nullptr &&
        job.batch->live_jobs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        job.batch->cancel.store(true, std::memory_order_relaxed);
    }
}

}  // namespace

}  // namespace detail

using detail::Clock;

const char *
ticket_status_name(TicketStatus status)
{
    switch (status) {
      case TicketStatus::kQueued: return "queued";
      case TicketStatus::kRunning: return "running";
      case TicketStatus::kDone: return "done";
      case TicketStatus::kFailed: return "failed";
      case TicketStatus::kCancelled: return "cancelled";
      case TicketStatus::kDeadlineExpired: return "deadline-expired";
      case TicketStatus::kRejected: return "rejected";
      case TicketStatus::kShed: return "shed";
      case TicketStatus::kShutdown: return "shutdown";
    }
    return "?";
}

bool
ticket_status_terminal(TicketStatus status)
{
    return status != TicketStatus::kQueued &&
        status != TicketStatus::kRunning;
}

// ---------------------------------------------------------------------------
// EvalTicket
// ---------------------------------------------------------------------------

EvalTicket::EvalTicket() = default;
EvalTicket::~EvalTicket() = default;
EvalTicket::EvalTicket(const EvalTicket &) = default;
EvalTicket &EvalTicket::operator=(const EvalTicket &) = default;
EvalTicket::EvalTicket(EvalTicket &&) noexcept = default;
EvalTicket &EvalTicket::operator=(EvalTicket &&) noexcept = default;

TicketStatus
EvalTicket::status() const
{
    if (!valid()) {
        return TicketStatus::kRejected;
    }
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->status;
}

void
EvalTicket::wait() const
{
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock,
                    [&] { return ticket_status_terminal(state_->status); });
}

bool
EvalTicket::wait_for(double seconds) const
{
    std::unique_lock<std::mutex> lock(state_->mutex);
    return state_->cv.wait_for(
        lock,
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(seconds)),
        [&] { return ticket_status_terminal(state_->status); });
}

const eval::ScenarioResult &
EvalTicket::result() const
{
    wait();
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->status == TicketStatus::kDone) {
        return state_->result;
    }
    if (state_->status == TicketStatus::kFailed && state_->error) {
        std::rethrow_exception(state_->error);
    }
    throw std::runtime_error(strprintf(
        "evaluation request %s", ticket_status_name(state_->status)));
}

bool
EvalTicket::cancel()
{
    if (!valid()) {
        return false;
    }
    std::lock_guard<std::mutex> jobs_lock(shared_->jobs_mutex);
    std::lock_guard<std::mutex> job_lock(job_->mutex);
    {
        std::lock_guard<std::mutex> lock(state_->mutex);
        if (ticket_status_terminal(state_->status)) {
            return false;
        }
    }
    auto &subs = job_->subscribers;
    subs.erase(std::remove(subs.begin(), subs.end(), state_), subs.end());
    detail::finish_ticket(*shared_, *state_, TicketStatus::kCancelled,
                          nullptr, nullptr);
    if (subs.empty() && !job_->done) {
        detail::abandon_job_locked(*shared_, *job_);
    }
    return true;
}

bool
EvalTicket::deduped() const
{
    return valid() && state_->deduped;
}

double
EvalTicket::latency_seconds() const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    return std::chrono::duration<double>(state_->completed -
                                         state_->submitted).count();
}

// ---------------------------------------------------------------------------
// EvalService
// ---------------------------------------------------------------------------

EvalService::EvalService(ServiceOptions options)
    : options_(options),
      shared_(std::make_shared<detail::ServiceShared>(options.queue_capacity))
{
    options_.runner.cancel = nullptr;  // per-batch, service-managed
    if (options_.max_batch == 0) {
        options_.max_batch = 1;
    }
    dispatchers_.reserve(static_cast<std::size_t>(
        std::max(options_.dispatchers, 0)));
    for (int i = 0; i < options_.dispatchers; ++i) {
        dispatchers_.emplace_back([this] { dispatcher_loop(); });
    }
}

EvalService::~EvalService()
{
    shutdown(ShutdownMode::kDrain);
}

EvalTicket
EvalService::submit(const eval::Scenario &scenario,
                    const SubmitOptions &submit_options)
{
    auto state = std::make_shared<detail::TicketState>();
    state->submitted = Clock::now();
    if (submit_options.deadline_seconds > 0.0) {
        state->has_deadline = true;
        state->deadline = state->submitted +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(
                    submit_options.deadline_seconds));
    }
    shared_->submitted++;

    EvalTicket ticket;
    ticket.shared_ = shared_;
    ticket.state_ = state;

    const std::uint64_t fingerprint = eval::scenario_fingerprint(scenario);
    {
        std::lock_guard<std::mutex> jobs_lock(shared_->jobs_mutex);
        auto it = shared_->in_flight.find(fingerprint);
        if (it != shared_->in_flight.end()) {
            // Identical request already queued or evaluating: attach as
            // another subscriber — one evaluation, N completions.
            auto job = it->second;
            std::lock_guard<std::mutex> job_lock(job->mutex);
            state->deduped = true;
            if (job->batch != nullptr) {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->status = TicketStatus::kRunning;
            }
            job->subscribers.push_back(state);
            shared_->dedup_hits++;
            ticket.job_ = std::move(job);
            return ticket;
        }
        auto job = std::make_shared<detail::Job>();
        job->fingerprint = fingerprint;
        job->scenario = scenario;
        // The standalone seed: what ScenarioRunner::run({scenario})
        // would derive at batch index 0. Pinning it here is what makes
        // batch composition invisible in the results.
        job->seed = eval::scenario_rng_seed(scenario, 0);
        job->subscribers.push_back(state);
        shared_->in_flight.emplace(fingerprint, job);
        ticket.job_ = std::move(job);
    }

    // Admission happens outside jobs_mutex: under kBlock this can wait
    // on the dispatchers, which need jobs_mutex to complete batches.
    QueuePush admitted = QueuePush::kClosed;
    std::optional<std::shared_ptr<detail::Job>> shed_job;
    switch (options_.policy) {
      case BackpressurePolicy::kBlock:
        admitted = shared_->queue.push(ticket.job_);
        break;
      case BackpressurePolicy::kReject:
        admitted = shared_->queue.try_push(ticket.job_);
        break;
      case BackpressurePolicy::kShedOldest:
        admitted = shared_->queue.push_shed_oldest(ticket.job_, &shed_job);
        break;
    }
    if (shed_job.has_value()) {
        std::lock_guard<std::mutex> jobs_lock(shared_->jobs_mutex);
        std::lock_guard<std::mutex> job_lock((*shed_job)->mutex);
        detail::finish_job_locked(*shared_, **shed_job, TicketStatus::kShed,
                                  nullptr);
    }
    if (admitted != QueuePush::kAccepted) {
        const TicketStatus status = admitted == QueuePush::kFull
            ? TicketStatus::kRejected
            : TicketStatus::kShutdown;
        std::lock_guard<std::mutex> jobs_lock(shared_->jobs_mutex);
        std::lock_guard<std::mutex> job_lock(ticket.job_->mutex);
        detail::finish_job_locked(*shared_, *ticket.job_, status, nullptr);
    }
    return ticket;
}

bool
EvalService::process_batch(std::shared_ptr<detail::Job> first, bool linger)
{
    // Dynamic batching: gather whatever is queued right now, and — on
    // dispatcher threads only — linger once for company rather than
    // running a singleton batch into an idle worker pool.
    std::vector<std::shared_ptr<detail::Job>> jobs;
    jobs.push_back(std::move(first));
    bool lingered = false;
    while (jobs.size() < options_.max_batch) {
        std::shared_ptr<detail::Job> next;
        if (shared_->queue.try_pop(&next)) {
            jobs.push_back(std::move(next));
            continue;
        }
        if (linger && !lingered && options_.linger_seconds > 0.0) {
            lingered = true;
            if (shared_->queue.pop_for(&next, options_.linger_seconds)) {
                jobs.push_back(std::move(next));
                continue;
            }
        }
        break;
    }

    // Aborting shutdown: everything popped from here on completes as
    // kShutdown, unevaluated.
    if (shared_->abort.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> jobs_lock(shared_->jobs_mutex);
        for (auto &job : jobs) {
            std::lock_guard<std::mutex> job_lock(job->mutex);
            if (!job->done && !job->abandoned) {
                detail::finish_job_locked(*shared_, *job,
                                          TicketStatus::kShutdown, nullptr);
            }
        }
        return false;
    }

    // Admission-to-dispatch pruning: drop subscribers whose deadline
    // already passed and jobs nobody subscribes to any more, then pin
    // the survivors to this batch's cancel control.
    detail::BatchControl control;
    std::vector<std::shared_ptr<detail::Job>> live;
    const auto now = Clock::now();
    {
        std::lock_guard<std::mutex> jobs_lock(shared_->jobs_mutex);
        for (auto &job : jobs) {
            std::lock_guard<std::mutex> job_lock(job->mutex);
            if (job->done || job->abandoned) {
                continue;  // resolved while queued (cancel / shed race)
            }
            auto &subs = job->subscribers;
            for (auto it = subs.begin(); it != subs.end();) {
                if ((*it)->has_deadline && (*it)->deadline <= now) {
                    detail::finish_ticket(*shared_, **it,
                                          TicketStatus::kDeadlineExpired,
                                          nullptr, nullptr);
                    it = subs.erase(it);
                } else {
                    ++it;
                }
            }
            if (subs.empty()) {
                detail::finish_job_locked(*shared_, *job,
                                          TicketStatus::kDeadlineExpired,
                                          nullptr);
                continue;
            }
            job->batch = &control;
            for (auto &state : subs) {
                std::lock_guard<std::mutex> lock(state->mutex);
                if (!ticket_status_terminal(state->status)) {
                    state->status = TicketStatus::kRunning;
                }
            }
            live.push_back(job);
        }
        control.live_jobs.store(static_cast<int>(live.size()),
                                std::memory_order_relaxed);
        if (!live.empty()) {
            shared_->active_batches.push_back(&control);
        }
    }
    if (live.empty()) {
        return false;
    }

    std::vector<eval::Scenario> scenarios;
    std::vector<std::uint64_t> seeds;
    scenarios.reserve(live.size());
    seeds.reserve(live.size());
    for (const auto &job : live) {
        scenarios.push_back(job->scenario);
        seeds.push_back(job->seed);
    }

    eval::RunnerOptions runner_options = options_.runner;
    runner_options.cancel = &control.cancel;
    eval::ScenarioRunner runner(runner_options);
    eval::RunnerReport report;
    std::vector<eval::ScenarioResult> results;
    std::exception_ptr error;
    bool batch_cancelled = false;
    try {
        results = runner.run_seeded(scenarios, seeds, &report);
    } catch (const eval::BatchCancelled &) {
        batch_cancelled = true;
    } catch (...) {
        // One throwing evaluation poisons its whole coalesced batch:
        // evaluation exceptions are invariant violations or bad
        // configuration, not per-request weather, so co-batched
        // requests share the failure rather than silently re-running.
        error = std::current_exception();
    }

    if (!batch_cancelled && !error) {
        shared_->batches++;
        shared_->batched_jobs += live.size();
        shared_->steals += static_cast<std::uint64_t>(
            std::max<std::int64_t>(report.steals, 0));
        shared_->chunks += static_cast<std::uint64_t>(
            std::max<std::int64_t>(report.chunks, 0));
    }

    {
        std::lock_guard<std::mutex> jobs_lock(shared_->jobs_mutex);
        auto &batches = shared_->active_batches;
        batches.erase(std::remove(batches.begin(), batches.end(), &control),
                      batches.end());
        const bool aborting = shared_->abort.load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < live.size(); ++i) {
            auto &job = *live[i];
            std::lock_guard<std::mutex> job_lock(job.mutex);
            job.batch = nullptr;
            if (job.done || job.abandoned) {
                job.done = true;
                continue;
            }
            if (error) {
                detail::finish_job_locked(*shared_, job,
                                          TicketStatus::kFailed, error);
            } else if (batch_cancelled) {
                // A cancelled batch with live subscribers only happens
                // under shutdown(kAbort); organic cancellation implies
                // every subscriber already detached.
                detail::finish_job_locked(
                    *shared_, job,
                    aborting ? TicketStatus::kShutdown
                             : TicketStatus::kCancelled,
                    nullptr);
            } else {
                job.result = std::move(results[i]);
                detail::finish_job_locked(*shared_, job, TicketStatus::kDone,
                                          nullptr);
            }
        }
    }
    return !batch_cancelled && !error;
}

int
EvalService::pump(int max_batches)
{
    int ran = 0;
    std::shared_ptr<detail::Job> job;
    while (ran < max_batches && shared_->queue.try_pop(&job)) {
        if (process_batch(std::move(job), /*linger=*/false)) {
            ++ran;
        }
        job.reset();
    }
    return ran;
}

void
EvalService::dispatcher_loop()
{
    std::shared_ptr<detail::Job> job;
    while (shared_->queue.pop(&job)) {
        process_batch(std::move(job), /*linger=*/true);
        job.reset();
    }
}

void
EvalService::shutdown(ShutdownMode mode)
{
    if (mode == ShutdownMode::kAbort) {
        shared_->abort.store(true, std::memory_order_relaxed);
        // Evaluating batches abort at their next chunk boundary.
        std::lock_guard<std::mutex> jobs_lock(shared_->jobs_mutex);
        for (detail::BatchControl *batch : shared_->active_batches) {
            batch->cancel.store(true, std::memory_order_relaxed);
        }
    }
    shared_->queue.close();
    for (auto &dispatcher : dispatchers_) {
        if (dispatcher.joinable()) {
            dispatcher.join();
        }
    }
    dispatchers_.clear();
    // Resolve whatever is still queued: dispatchers==0 services, and
    // jobs admitted after the dispatchers drained. Under kAbort
    // process_batch completes them as kShutdown without evaluating.
    std::shared_ptr<detail::Job> job;
    while (shared_->queue.try_pop(&job)) {
        process_batch(std::move(job), /*linger=*/false);
        job.reset();
    }
}

ServiceStats
EvalService::stats() const
{
    ServiceStats s;
    s.submitted = shared_->submitted.load();
    s.dedup_hits = shared_->dedup_hits.load();
    s.completed = shared_->completed.load();
    s.failed = shared_->failed.load();
    s.rejected = shared_->rejected.load();
    s.shed = shared_->shed.load();
    s.cancelled = shared_->cancelled.load();
    s.deadline_expired = shared_->deadline_expired.load();
    s.shutdown_discarded = shared_->shutdown_discarded.load();
    s.batches = shared_->batches.load();
    s.batched_jobs = shared_->batched_jobs.load();
    s.steals = shared_->steals.load();
    s.chunks = shared_->chunks.load();
    s.queue_depth = shared_->queue.size();
    s.peak_queue_depth = shared_->queue.peak_size();
    return s;
}

}  // namespace bitwave::service
