#include "model/performance.hpp"

#include <algorithm>
#include <cmath>

#include <optional>

#include "common/bits.hpp"
#include "common/logging.hpp"
#include "compress/bcs.hpp"
#include "compress/zre.hpp"
#include "search/cost.hpp"
#include "sparsity/stats.hpp"
#include "tensor/bitplane.hpp"

namespace bitwave {

double
WorkloadResult::runtime_ms(const TechParams &tech) const
{
    return total_cycles / tech.frequency_hz * 1e3;
}

double
WorkloadResult::gops(const TechParams &tech) const
{
    const double seconds = total_cycles / tech.frequency_hz;
    return seconds > 0
        ? static_cast<double>(nominal_macs) * 2.0 / seconds / 1e9 : 0.0;
}

double
WorkloadResult::tops_per_watt() const
{
    return energy.total_pj > 0
        ? static_cast<double>(nominal_macs) * 2.0 / energy.total_pj : 0.0;
}

AcceleratorModel::AcceleratorModel(AcceleratorConfig config,
                                   const TechParams &tech,
                                   const DramModel &dram)
    : config_(std::move(config)), tech_(tech), dram_(dram)
{
    if (config_.dataflows.empty()) {
        fatal("AcceleratorModel: %s has no dataflows",
              config_.name.c_str());
    }
}

LayerResult
AcceleratorModel::model_layer(const WorkloadLayer &layer,
                              const Int8Tensor *weights, LayerContext ctx,
                              std::uint64_t weights_hash) const
{
    const Int8Tensor &w = weights != nullptr ? *weights : layer.weights;
    // Matmul layers map their token batch onto OX (im2col view) on
    // machines whose dataflow supports it (SCNN's planar-tiled conv
    // dataflow does not, which is what sinks it on LSTM/BERT).
    const LayerDesc desc = config_.map_batch_to_ox
        ? normalized_for_mapping(layer.desc) : layer.desc;

    LayerResult r;
    r.layer_name = desc.name;

    // Content identity of the evaluated tensor for the shared
    // content-hash caches (bit planes, cycle stats, BCS sizes).
    const std::uint64_t content_hash =
        weights == nullptr ? layer.weights_hash : weights_hash;

    // Shared packed bit planes for the bit-column kernels, fetched (or
    // packed once) from the content-hash cache so scenario sweeps over
    // the same weights never re-pack. Lazy: baseline machines that never
    // touch bit columns never pay for packing.
    std::shared_ptr<const BitPlanes> planes;
    const auto weight_planes = [&]() -> const BitPlanes & {
        if (!planes) {
            planes = shared_bitplanes(w, config_.weight_repr,
                                      content_hash);
        }
        return *planes;
    };

    // ---- STEP1: dataflow selection & dense activity ----------------------
    const SpatialUnrolling *selected = nullptr;
    if (config_.mapping_policy == search::MappingPolicy::kCostAware &&
        config_.style == ComputeStyle::kBitColumnSerial) {
        // ZigZag-style cost-aware selection: rank candidates by the
        // mapping cost model's Eq. (5) latency instead of bare spatial
        // utilization (fetch-bound layers pick leaner streams).
        search::MappingCostConfig mcfg;
        mcfg.repr = config_.weight_repr;
        mcfg.memory = config_.memory;
        mcfg.skip_zero_columns =
            config_.sparsity == SparsityMode::kWeightBitColumn;
        mcfg.compress_weights = config_.compress_weights;
        mcfg.layer_sequential_dram = config_.layer_sequential_dram;
        const BitPlanes *pp =
            mcfg.skip_zero_columns || mcfg.compress_weights
                ? &weight_planes() : nullptr;
        selected = &search::select_su_cost_aware(
            desc, config_.dataflows, pp, content_hash, mcfg, tech_,
            dram_);
    } else {
        selected = &select_su(desc, config_.dataflows);
    }
    const SpatialUnrolling &su = *selected;
    r.su_name = su.name;
    r.utilization = spatial_utilization(desc, su);
    const double macs = static_cast<double>(desc.macs());
    const std::int64_t iterations = temporal_iterations(desc, su);

    // ---- STEP2: sparsity statistics --------------------------------------
    // Lazy: only the value/bit-sparsity machines read them; the
    // bit-column machines derive everything from the packed planes, so
    // hardware sweeps never pay the element-wise scan.
    std::optional<SparsityStats> wstats_memo;
    const auto wstats = [&]() -> const SparsityStats & {
        if (!wstats_memo) {
            wstats_memo = compute_sparsity(w);
        }
        return *wstats_memo;
    };
    const auto sw = [&] { return wstats().value_sparsity(); };
    const double sa = layer.activation_sparsity;

    // ---- STEP3: effective compute ----------------------------------------
    // Cycles each spatial tile occupies the array, by compute style.
    double cycles_per_pass = 1.0;     // bit-parallel default
    double mac_energy_scale = 1.0;    // fraction of bit work actually done
    double e_mac_pj = tech_.e_mac_bit_parallel_pj;
    // Mean streamed columns per weight group (BCS machines only; 0
    // selects the port-based weight-traffic accounting).
    double mean_columns_per_group = 0.0;

    switch (config_.style) {
      case ComputeStyle::kBitParallel:
        cycles_per_pass = 1.0;
        break;
      case ComputeStyle::kBitSerial:
        e_mac_pj = tech_.e_mac_bit_serial_pj;
        if (config_.sparsity == SparsityMode::kWeightBit) {
            cycles_per_pass = bit_serial_sync_cycles(
                w, config_.sync_lanes, config_.weight_repr);
            mac_energy_scale =
                1.0 - wstats().bit_sparsity(config_.weight_repr);
        } else if (config_.sparsity ==
                   SparsityMode::kWeightBitInterleaved) {
            // Bitlet: cycles bounded by the worst-loaded significance of
            // each interleaving window.
            const double window_cycles = bit_interleave_cycles(
                w, config_.interleave_window, config_.weight_repr);
            cycles_per_pass = window_cycles * 8.0 /
                static_cast<double>(config_.interleave_window) *
                config_.interleave_overhead;
            mac_energy_scale =
                1.0 - wstats().bit_sparsity(config_.weight_repr);
        } else {
            cycles_per_pass = 8.0;  // Stripes: all bits, every time.
        }
        break;
      case ComputeStyle::kBitColumnSerial:
        e_mac_pj = tech_.e_mac_bit_column_pj;
        if (config_.sparsity == SparsityMode::kWeightBitColumn) {
            // Compressed columns stream directly into the array; the
            // fetcher's double buffering decouples group boundaries, so
            // throughput follows the MEAN occupancy (the sync-limited
            // variant is exercised by the ablation bench).
            const auto cc = search::cached_cycle_stats(
                weight_planes(), desc, static_cast<int>(su.group_size()),
                su.factor(Dim::kK), content_hash);
            cycles_per_pass = cc->mean_ceil_cycles(su.bit_columns);
            mac_energy_scale = cc->mean_cycles_per_group / 8.0;
            mean_columns_per_group = cc->mean_cycles_per_group;
        } else {
            // Dense mode: all 8 columns, bit_columns per cycle.
            cycles_per_pass =
                8.0 / static_cast<double>(su.bit_columns);
            mean_columns_per_group = 8.0;
        }
        break;
    }

    double compute_cycles =
        static_cast<double>(iterations) * cycles_per_pass;
    double value_skip = 1.0;
    if (config_.sparsity == SparsityMode::kValue) {
        // Eq. (1) with the load-imbalance adjustment of STEP2. The
        // product is deliberately NOT capped at 1: on low-sparsity
        // layers the Cartesian-product scheduling and output-crossbar
        // conflicts make value-skipping machines *slower* than a dense
        // array (the SCNN pathology behind the paper's Fig. 14, where
        // every baseline outruns SCNN on the benchmark suite).
        value_skip = (1.0 - sw()) * (1.0 - sa) * config_.value_imbalance;
        compute_cycles *= value_skip;
    }
    // Crossbar starvation multiplier of matmul tiles (> 1 only on
    // planar-crossbar machines); the energy side charges the conflict
    // share of the resulting cycles as arbitration churn below.
    double starvation = 1.0;
    if (layer.desc.kind == LayerKind::kLinear ||
        layer.desc.kind == LayerKind::kLstm) {
        double penalty = config_.matmul_penalty;
        if (config_.planar_crossbar) {
            // Conv-specialized machines run matmuls as degenerate 1x1
            // convolutions; the planar output tile starves when the
            // token batch cannot fill the OXu x OYu crossbar (BERT's 4
            // tokens vs a 64-position tile) and conflicts grow with the
            // fill deficit. Exponent calibrated against the paper's
            // Fig. 14 CNN-LSTM and Bert-Base bars (together with
            // make_scnn()'s value_imbalance).
            const double positions = static_cast<double>(
                su.factor(Dim::kOX) * su.factor(Dim::kOY));
            const double tokens = std::clamp(
                static_cast<double>(desc.ox), 1.0, positions);
            starvation = std::pow(positions / tokens,
                                  kPlanarStarvationExponent);
            penalty *= starvation;
        }
        compute_cycles *= penalty;
    }
    r.compute_cycles = compute_cycles;
    r.cycles_per_group = cycles_per_pass;

    // Effective MACs (Eq. 1) for energy pricing.
    double effective_macs = macs;
    if (config_.sparsity == SparsityMode::kValue) {
        effective_macs = macs * (1.0 - sw()) * (1.0 - sa);
    }
    r.effective_macs = effective_macs;

    // ---- Compression factors ---------------------------------------------
    CompressionFactors cf;
    if (config_.compress_weights) {
        if (config_.sparsity == SparsityMode::kWeightBitColumn) {
            const auto compressed = search::cached_bcs_size(
                weight_planes(), static_cast<int>(su.group_size()),
                content_hash);
            cf.weight_fetch_ratio = 1.0 / compressed->compression_ratio();
            // BCS fetch savings come from skipped column cycles; the
            // remaining on-chip overhead is the 8b index per group.
            cf.weight_sram_overhead = 1.0 +
                static_cast<double>(kWordBits) /
                    (cycles_per_pass *
                     static_cast<double>(su.group_size()));
        } else if (config_.sparsity == SparsityMode::kValue) {
            const auto compressed = zre_compress(w);
            cf.weight_fetch_ratio = 1.0 / compressed.compression_ratio();
            // 12-bit ZRE entries for the (1 - Sw) surviving weights.
            cf.weight_sram_overhead = (1.0 - sw()) * 12.0 / 8.0;
        }
    }
    if (config_.compress_acts) {
        // Analytic ZRE on activations: (1 - Sa) entries of 12 bits each,
        // plus closing entries for long zero runs.
        const double entries = (1.0 - sa) + sa / 15.0;
        cf.act_fetch_ratio = std::max(entries * 12.0 / 8.0, 0.05);
        cf.act_store_ratio = cf.act_fetch_ratio;
        cf.act_sram_overhead = cf.act_fetch_ratio;
    }
    r.weight_fetch_ratio = cf.weight_fetch_ratio;

    // ---- Memory activity & Eq. (5) latency --------------------------------
    ExecutionProfile exec;
    exec.utilization = r.utilization;
    exec.compute_cycles = r.compute_cycles;
    // Active fetch rate is bounded by the physical weight port (Table I:
    // every BitWave SU keeps W BW <= 1024 bits/cycle).
    exec.weight_port_active_bits = std::min(
        static_cast<double>(su.weight_bandwidth_bits()) *
            static_cast<double>(su.bit_columns),
        static_cast<double>(config_.memory.weight_port_bits));
    if (mean_columns_per_group > 0.0) {
        // Bit-column machines stream exactly the (compressed) column
        // payload plus the 8-bit ZCIP index per weight group, ONCE per
        // layer sweep — the fetcher's double buffer holds the active
        // tile across spatial revisits. The identical accounting runs
        // in BitWaveNpu::run_layer, which is what keeps sim-vs-model
        // agreement on fetch-bound layers.
        std::int64_t rows = 0, row_len = 1;
        switch (layer.desc.kind) {
          case LayerKind::kConv:
          case LayerKind::kPointwiseConv:
            rows = layer.desc.k * layer.desc.fy * layer.desc.fx;
            row_len = layer.desc.c;
            break;
          case LayerKind::kDepthwiseConv:
            rows = layer.desc.k;
            row_len = layer.desc.fy * layer.desc.fx;
            break;
          case LayerKind::kLinear:
          case LayerKind::kLstm:
            rows = layer.desc.k;
            row_len = layer.desc.c;
            break;
        }
        const double groups = static_cast<double>(
            rows * ceil_div(row_len, su.group_size()));
        exec.weight_stream_bits = groups *
            (mean_columns_per_group *
                 static_cast<double>(su.group_size()) +
             kWordBits);
    }
    exec.weight_stationary = config_.style == ComputeStyle::kBitParallel;
    exec.c_tiles = ceil_div(desc.c, su.factor(Dim::kC));
    exec.psum_in_accumulators = config_.accumulator_banks;
    // BitWave keeps intermediate feature maps on chip (depth-first halo
    // tiling); only the network input and output cross DRAM. The
    // baselines' layer-sequential schedules instead spill the
    // non-resident excess of every map that overflows the activation
    // SRAM. Each layer prices its own view of the tensor: the consumer
    // side includes the conv halo/padding extent, so its read bits can
    // slightly exceed the producer's written bits — deliberate (the
    // halo is re-fetched traffic), and part of the Fig. 15-calibrated
    // accounting.
    const auto spill_fraction = [&](std::int64_t elements) {
        return config_.layer_sequential_dram
            ? activation_spill_fraction(elements, config_.memory) : 0.0;
    };
    exec.input_dram_fraction =
        ctx.first_layer ? 1.0 : spill_fraction(desc.input_count());
    exec.output_dram_fraction =
        ctx.last_layer ? 1.0 : spill_fraction(desc.output_count());

    const AccessCounts ac =
        compute_access_counts(desc, su, config_.memory, cf, exec);
    r.dram_cycles = dram_.transfer_cycles(ac.dram_total_bits());

    LatencyParts lat;
    lat.compute_cycles = r.compute_cycles;
    lat.weight_fetch_cycles = ac.sram_read_weight_bits /
        static_cast<double>(config_.memory.weight_port_bits);
    lat.act_fetch_cycles = ac.sram_read_act_bits /
        static_cast<double>(config_.memory.act_port_bits);
    lat.dram_cycles = r.dram_cycles;
    lat.output_write_cycles =
        static_cast<double>(desc.output_count()) * kWordBits /
        static_cast<double>(config_.memory.act_port_bits);
    r.total_cycles = compose_latency(lat);

    // ---- STEP4: energy (Eq. 4), shared pricing core ----------------------
    EnergyActivity act;
    act.mac_units = effective_macs * mac_energy_scale;
    act.e_mac_pj = e_mac_pj;
    act.sram_read_bits = ac.sram_read_weight_bits + ac.sram_read_act_bits;
    act.sram_write_bits = ac.sram_write_act_bits + ac.sram_write_weight_bits;
    act.reg_words = ac.reg_read_words + ac.reg_write_words;
    act.dram_bits = ac.dram_total_bits();
    // Static/clock-tree energy accrues with runtime: slow mappings pay.
    act.cycles = r.total_cycles;

    // ---- Baseline-machine activity (all zero for BitWave configs) -------
    if (config_.accumulator_banks) {
        // Every Cartesian product performs a 32b read-modify-write in
        // the crossbar-fed accumulator banks (conflict replays are
        // charged separately via the crossbar term).
        act.accbank_bits = effective_macs * 2.0 * 32.0;
    }
    if (config_.planar_crossbar && starvation > 1.0) {
        // Token-starved matmul tiles: each surviving product re-issues
        // into the contended OXu x OYu crossbar (starvation - 1) extra
        // times on average, and every replay re-arbitrates the full
        // output-port set. Unit energy calibrated against the paper's
        // Fig. 15 SCNN / Bert-Base anchor (~2 pJ per crossbar port per
        // replayed product).
        act.crossbar_replays = effective_macs * (starvation - 1.0);
        act.e_crossbar_pj = config_.e_crossbar_conflict_pj;
    }
    if (config_.e_lane_overhead_pj > 0.0) {
        // Bit-serial shift registers / sync / online scheduling churn.
        act.lane_overhead_cycles =
            r.compute_cycles * static_cast<double>(su.total_lanes());
        act.e_lane_overhead_pj = config_.e_lane_overhead_pj;
    }
    if (config_.sparsity == SparsityMode::kValue &&
        (config_.compress_weights || config_.compress_acts)) {
        // ZRE codec: every stored-form word crossing DRAM is encoded or
        // decoded by the sparse codec pipeline.
        act.codec_words = ac.dram_total_bits() / kWordBits;
    }
    r.energy = price_energy(act, tech_, dram_);
    return r;
}

WorkloadResult
AcceleratorModel::model_workload(const Workload &workload,
                                 const std::vector<Int8Tensor> *weights)
    const
{
    validated_weight_override(workload, weights, "model_workload");
    WorkloadResult out;
    out.accelerator = config_.name;
    out.workload = workload.name;
    out.nominal_macs = workload.total_macs();
    for_each_layer(
        workload, weights,
        [&](std::size_t, const WorkloadLayer &layer, const Int8Tensor *w,
            const LayerContext &ctx) {
            LayerResult lr = model_layer(layer, w, ctx);
            out.total_cycles += lr.total_cycles;
            out.energy += lr.energy;
            out.layers.push_back(std::move(lr));
        });
    return out;
}

}  // namespace bitwave
