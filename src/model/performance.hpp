/**
 * @file
 * Sparseloop-inspired analytical performance model — Section V-B,
 * STEP1-STEP4 and Eqs. (1)-(5).
 *
 * For one (accelerator, workload) pair the model:
 *   STEP1  maps each layer onto the accelerator's best supported dataflow
 *          (ZigZag-lite: spatial utilization + temporal iterations) and
 *          extracts the Table II activity counts;
 *   STEP2  derives the workload's sparsity statistics (value, bit, and
 *          bit-column level) from the actual weight tensors, with load
 *          imbalance applied for runtime-scheduled machines;
 *   STEP3  combines both into effective MAC counts / compute cycles
 *          (Eqs. 1-2) and effective memory accesses (Eq. 3);
 *   STEP4  prices the activity with the 16 nm technology parameters and
 *          the DDR3 model (Eq. 4) and assembles latency per Eq. (5).
 */
#pragma once

#include <string>
#include <vector>

#include "energy/dram.hpp"
#include "energy/pricing.hpp"
#include "energy/tech.hpp"
#include "model/accelerator.hpp"
#include "nn/traverse.hpp"
#include "nn/workloads.hpp"

namespace bitwave {

/// Modeled execution of one layer on one accelerator.
struct LayerResult
{
    std::string layer_name;
    std::string su_name;        ///< Selected dataflow.
    double utilization = 0.0;   ///< Spatial PE utilization.
    double effective_macs = 0.0;   ///< Nmac,e (Eq. 1).
    double compute_cycles = 0.0;   ///< CCmac,e (Eq. 2).
    double dram_cycles = 0.0;      ///< Channel occupancy.
    double total_cycles = 0.0;     ///< Eq. (5).

    /// Energy components and their sum (Eq. 4), shared pricing core.
    EnergyBreakdown energy;

    // Bookkeeping for the compression-oriented figures.
    double weight_fetch_ratio = 1.0;   ///< Compressed/raw weight bits.
    double cycles_per_group = 8.0;     ///< Effective bit cycles per pass.
};

/// Modeled execution of a whole workload.
struct WorkloadResult
{
    std::string accelerator;
    std::string workload;
    std::vector<LayerResult> layers;

    double total_cycles = 0.0;
    /// Accumulated Eq. (4) energy of all layers.
    EnergyBreakdown energy;
    std::int64_t nominal_macs = 0;  ///< Dense MAC count of the workload.

    /// Wall-clock at the tech frequency, in ms.
    double runtime_ms(const TechParams &tech = default_tech()) const;
    /// Effective throughput in GOPS (2 ops per MAC).
    double gops(const TechParams &tech = default_tech()) const;
    /// Energy efficiency in TOPS/W over nominal (useful) operations.
    double tops_per_watt() const;
};

/**
 * The analytical model for one accelerator configuration.
 */
class AcceleratorModel
{
  public:
    explicit AcceleratorModel(AcceleratorConfig config,
                              const TechParams &tech = default_tech(),
                              const DramModel &dram = default_dram());

    /**
     * Model one layer.
     *
     * @param layer        Layer descriptor + weights + activation
     *                     sparsity.
     * @param weights      Optional replacement weights (e.g.
     *                     Bit-Flipped); defaults to the layer's own
     *                     tensor.
     * @param ctx          Position of the layer in the network.
     * @param weights_hash Content hash of @p weights when known (e.g.
     *                     eval::flipped_weights_hash); 0 hashes on the
     *                     fly for the shared bit-plane cache. Ignored
     *                     when @p weights is null (the layer's own
     *                     weights_hash applies).
     */
    LayerResult model_layer(const WorkloadLayer &layer,
                            const Int8Tensor *weights = nullptr,
                            LayerContext ctx = {},
                            std::uint64_t weights_hash = 0) const;

    /**
     * Model a workload; @p weights optionally overrides every layer's
     * tensor (must then match the layer count).
     */
    WorkloadResult model_workload(const Workload &workload,
                                  const std::vector<Int8Tensor> *weights =
                                      nullptr) const;

    const AcceleratorConfig &config() const { return config_; }

  private:
    AcceleratorConfig config_;
    const TechParams &tech_;
    const DramModel &dram_;
};

}  // namespace bitwave
