#include "model/accelerator.hpp"

namespace bitwave {

std::int64_t
AcceleratorConfig::peak_macs_per_cycle() const
{
    // Bit-serial arrays hold 8x the 1b lanes for the same 8b throughput.
    if (dataflows.empty()) {
        return 0;
    }
    const std::int64_t lanes = dataflows.front().total_lanes();
    return style == ComputeStyle::kBitParallel ? lanes : lanes / 8;
}

std::vector<SpatialUnrolling>
huaa_sus()
{
    // 512-lane bit-parallel SUs covering deep, wide, kernel-heavy and
    // depthwise shapes (the HUAA paper's reconfigurable mappings).
    std::vector<SpatialUnrolling> v;
    v.push_back({"CK", {{Dim::kC, 16}, {Dim::kK, 32}}});
    v.push_back({"KC", {{Dim::kC, 32}, {Dim::kK, 16}}});
    v.push_back({"KxC", {{Dim::kC, 8}, {Dim::kK, 64}}});
    v.push_back({"XK", {{Dim::kOX, 16}, {Dim::kK, 32}}});
    v.push_back({"XYK", {{Dim::kOX, 8}, {Dim::kOY, 8}, {Dim::kK, 8}}});
    SpatialUnrolling dw{"DW", {{Dim::kK, 64}, {Dim::kOX, 8}}};
    dw.depthwise_only = true;
    v.push_back(std::move(dw));
    return v;
}

namespace {

/// Fixed 4096-lane bit-serial SU shared by Stripes/Pragmatic/Bitlet.
std::vector<SpatialUnrolling>
bit_serial_fixed_su()
{
    return {{"CK16x16", {{Dim::kC, 16}, {Dim::kK, 16}, {Dim::kOX, 16}}}};
}

}  // namespace

AcceleratorConfig
make_dense_reference()
{
    AcceleratorConfig c;
    c.name = "Dense-BP";
    c.style = ComputeStyle::kBitParallel;
    c.sparsity = SparsityMode::kNone;
    // 512 bit-parallel MACs to match the common compute budget.
    c.dataflows = {{"CK dense", {{Dim::kC, 16}, {Dim::kK, 32}}}};
    c.layer_sequential_dram = true;
    return c;
}

AcceleratorConfig
make_huaa()
{
    AcceleratorConfig c;
    c.name = "HUAA";
    c.style = ComputeStyle::kBitParallel;
    c.sparsity = SparsityMode::kNone;
    c.dataflows = huaa_sus();
    // Layer-by-layer schedule: spilled feature maps stream uncompressed.
    c.layer_sequential_dram = true;
    return c;
}

AcceleratorConfig
make_stripes()
{
    AcceleratorConfig c;
    c.name = "Stripes";
    c.style = ComputeStyle::kBitSerial;
    c.sparsity = SparsityMode::kNone;
    c.dataflows = bit_serial_fixed_su();
    c.layer_sequential_dram = true;
    // 4096 serial lanes shift their weight operand every cycle.
    c.e_lane_overhead_pj = 0.010;
    return c;
}

AcceleratorConfig
make_pragmatic()
{
    AcceleratorConfig c;
    c.name = "Pragmatic";
    c.style = ComputeStyle::kBitSerial;
    c.sparsity = SparsityMode::kWeightBit;
    c.weight_repr = Representation::kTwosComplement;
    c.dataflows = bit_serial_fixed_su();
    c.sync_lanes = 8;
    c.layer_sequential_dram = true;
    // Shift registers + the zero-bit skip/sync network per lane.
    c.e_lane_overhead_pj = 0.012;
    return c;
}

AcceleratorConfig
make_bitlet()
{
    AcceleratorConfig c;
    c.name = "Bitlet";
    c.style = ComputeStyle::kBitSerial;
    c.sparsity = SparsityMode::kWeightBitInterleaved;
    c.weight_repr = Representation::kTwosComplement;
    c.dataflows = bit_serial_fixed_su();
    c.interleave_window = 64;
    c.interleave_overhead = 1.25;
    c.layer_sequential_dram = true;
    // Shift registers + the runtime significance-interleaving scheduler.
    c.e_lane_overhead_pj = 0.014;
    return c;
}

AcceleratorConfig
make_scnn()
{
    AcceleratorConfig c;
    c.name = "SCNN";
    c.style = ComputeStyle::kBitParallel;
    c.sparsity = SparsityMode::kValue;
    // SCNN's planar-tiled dataflow (spatial outputs x kernels).
    c.dataflows = {{"PT", {{Dim::kOX, 8}, {Dim::kOY, 8}, {Dim::kK, 8}}}};
    c.compress_weights = true;
    c.compress_acts = true;
    c.accumulator_banks = true;  // crossbar-fed accumulator SRAM
    // Cartesian-product scheduling + output-crossbar conflicts; uncapped,
    // so low-sparsity layers run *slower* than dense (Fig. 14's regime).
    c.value_imbalance = 2.3;
    // FC/LSTM projections run as degenerate 1x1 convolutions: the token
    // batch im2cols onto OX and token-starved planar tiles pay the
    // calibrated crossbar-conflict inflation.
    c.map_batch_to_ox = true;
    c.planar_crossbar = true;
    // Energy side (Fig. 15 calibration): layer-sequential feature-map
    // spills, accumulator-bank RMW per Cartesian product attempt (via
    // accumulator_banks above) and the crossbar-conflict arbitration
    // energy of token-starved matmul tiles, calibrated against the
    // paper's 13.23x Bert-Base anchor.
    c.layer_sequential_dram = true;
    c.e_crossbar_conflict_pj = 126.0;
    return c;
}

AcceleratorConfig
make_bitwave(BitWaveVariant variant)
{
    AcceleratorConfig c;
    c.style = ComputeStyle::kBitColumnSerial;
    c.weight_repr = Representation::kSignMagnitude;
    c.sync_lanes = 32;  // Ku kernels in lockstep per Table I SUs.
    switch (variant) {
      case BitWaveVariant::kDenseSu:
        c.name = "BitWave";
        c.sparsity = SparsityMode::kNone;
        c.dataflows = {dense_reference_su()};
        // The Fig. 13 dense baseline assumes ideal weight bandwidth for
        // its [Ku=64, Cu=64] mapping (4096 fresh bits/cycle).
        c.memory.weight_port_bits = 4096;
        break;
      case BitWaveVariant::kDynamicDf:
        c.name = "BitWave+DF";
        c.sparsity = SparsityMode::kNone;
        c.dataflows = bitwave_sus();
        break;
      case BitWaveVariant::kDfSm:
        c.name = "BitWave+DF+SM";
        c.sparsity = SparsityMode::kWeightBitColumn;
        c.dataflows = bitwave_sus();
        c.compress_weights = true;
        break;
      case BitWaveVariant::kDfSmBf:
        c.name = "BitWave+DF+SM+BF";
        c.sparsity = SparsityMode::kWeightBitColumn;
        c.dataflows = bitwave_sus();
        c.compress_weights = true;
        break;
    }
    return c;
}

const char *
bitwave_variant_name(BitWaveVariant variant)
{
    switch (variant) {
      case BitWaveVariant::kDenseSu: return "Dense";
      case BitWaveVariant::kDynamicDf: return "+DF";
      case BitWaveVariant::kDfSm: return "+DF+SM";
      case BitWaveVariant::kDfSmBf: return "+DF+SM+BF";
    }
    return "?";
}

}  // namespace bitwave
