/**
 * @file
 * Accelerator baseline configurations — the benchmark set of Fig. 12
 * (right): SCNN, Stripes, Pragmatic, Bitlet, HUAA, a dense bit-parallel
 * reference, and BitWave itself in its incremental variants
 * (Dense SU / +DF / +SM / +SM+BF for the Fig. 13 breakdown).
 *
 * All systems are normalized to an equivalent compute budget (512 8bx8b
 * MAC/cycle; bit-serial arrays hold 4096 1bx8b lanes) and the same
 * 256 KB + 256 KB SRAM / DDR3 hierarchy, as the paper's methodology
 * requires for a fair comparison.
 */
#pragma once

#include <string>
#include <vector>

#include "dataflow/mapping.hpp"
#include "dataflow/su.hpp"
#include "search/cost.hpp"
#include "sparsity/stats.hpp"

namespace bitwave {

/**
 * Exponent of the planar-crossbar token-starvation penalty:
 * cycles *= (crossbar positions / resident tokens) ^ this, for matmul
 * layers on machines with `planar_crossbar`. Calibrated (together with
 * SCNN's `value_imbalance`) against the paper's Fig. 14 CNN-LSTM and
 * Bert-Base speedup bars.
 */
inline constexpr double kPlanarStarvationExponent = 0.40;

/// How the datapath consumes operand bits.
enum class ComputeStyle {
    kBitParallel,      ///< 8b x 8b MACs (HUAA, SCNN, dense).
    kBitSerial,        ///< 1b x 8b lanes, weight bits serialized.
    kBitColumnSerial,  ///< BitWave BCEs: shared-significance columns.
};

/// Which sparsity the accelerator can skip.
enum class SparsityMode {
    kNone,           ///< Dense execution.
    kValue,          ///< Zero-value skipping of W and A (SCNN).
    kWeightBit,      ///< Zero weight-bit skipping (Pragmatic).
    kWeightBitInterleaved,  ///< Bitlet's significance interleaving.
    kWeightBitColumn,       ///< BitWave's BCS skipping.
};

/// Full configuration of one modeled accelerator.
struct AcceleratorConfig
{
    std::string name;
    ComputeStyle style = ComputeStyle::kBitParallel;
    SparsityMode sparsity = SparsityMode::kNone;
    /// Representation whose zero bits/columns are skippable.
    Representation weight_repr = Representation::kTwosComplement;
    /// Candidate dataflows; more than one = runtime-reconfigurable.
    std::vector<SpatialUnrolling> dataflows;
    /**
     * How the per-layer SU is picked from `dataflows`. The default
     * replays the historic utilization ranking bit for bit;
     * kCostAware ranks by the mapping cost model's Eq. (5) latency
     * (search/cost.hpp) — only meaningful for the bit-column-serial
     * machines, other styles keep the utilization choice.
     */
    search::MappingPolicy mapping_policy =
        search::MappingPolicy::kUtilization;
    MemoryHierarchy memory;

    /// Lanes that advance in lockstep (Pragmatic sync, BitWave Ku).
    std::int64_t sync_lanes = 16;
    /// Bitlet interleaving window in weights.
    std::int64_t interleave_window = 64;
    /// Bitlet online bit-scheduling overhead (index extraction and
    /// significance sorting happen at runtime — Section II-B).
    double interleave_overhead = 1.0;
    /// Weight compression between DRAM/SRAM and the array.
    bool compress_weights = false;
    /// Dedicated accumulator banks: partial sums never round-trip the
    /// activation SRAM across input-channel tiles (SCNN's crossbar-fed
    /// accumulator SRAM).
    bool accumulator_banks = false;
    /// Activation compression (SCNN's ZRE on feature maps).
    bool compress_acts = false;
    /// Load-imbalance inflation for value-sparse PEs (SCNN).
    double value_imbalance = 1.2;
    /// Whether the dataflow can treat the token/timestep batch of matmul
    /// layers as a spatial OX dimension (im2col view).
    bool map_batch_to_ox = true;
    /**
     * Flat compute-cycle inflation for matmul-shaped layers
     * (kLinear/kLstm); 1.0 for machines with a native matmul path.
     */
    double matmul_penalty = 1.0;
    /**
     * Planar OXu x OYu output crossbar (SCNN): matmul tiles that cannot
     * fill the crossbar with tokens pay conflict cycles growing with
     * the fill deficit (see kPlanarStarvationExponent).
     */
    bool planar_crossbar = false;

    // --- Energy-side knobs (Fig. 15/16/17 calibration) -----------------
    /**
     * Layer-sequential execution: intermediate feature maps that exceed
     * the activation SRAM spill to DRAM between layers (the baseline
     * machines' layer-by-layer schedules). BitWave keeps intermediates
     * on chip via depth-first halo tiling, so its variants leave this
     * off — only the network input/output cross DRAM.
     */
    bool layer_sequential_dram = false;
    /**
     * Crossbar-conflict arbitration energy, pJ per product REPLAY on
     * token-starved matmul tiles: each effective product re-issues
     * (starvation - 1) extra times on average, and every replay
     * re-arbitrates the full OXu x OYu output-port set (64 ports at
     * ~2 pJ of wire + mux + bank-precharge energy each). Calibrated —
     * together with value_imbalance and kPlanarStarvationExponent —
     * against the paper's Fig. 15 SCNN / Bert-Base 13.23x energy
     * anchor, the same way the latency side was pinned to Fig. 14.
     * Only read when planar_crossbar is set.
     */
    double e_crossbar_conflict_pj = 0.0;
    /**
     * Per-lane per-compute-cycle datapath overhead, pJ: the bit-serial
     * machines' operand shift registers and lane-sync logic (Stripes /
     * Pragmatic) plus Bitlet's online significance scheduling — energy
     * their papers' PE figures carry outside the MAC itself.
     */
    double e_lane_overhead_pj = 0.0;

    /// MAC/cycle at full utilization (8b x 8b equivalents).
    std::int64_t peak_macs_per_cycle() const;
};

/// --- Baseline builders -------------------------------------------------

/// Dense bit-parallel reference with the common [Ku=64, Cu=64] SU.
AcceleratorConfig make_dense_reference();

/// HUAA: bit-parallel, dynamic dataflow, no sparsity handling.
AcceleratorConfig make_huaa();

/// Stripes: bit-serial, fixed SU, no bit skipping.
AcceleratorConfig make_stripes();

/// Pragmatic: bit-serial, skips zero weight bits, lane-synchronized.
AcceleratorConfig make_pragmatic();

/// Bitlet: bit-interleaved weight-bit sparsity.
AcceleratorConfig make_bitlet();

/// SCNN: value-sparsity aware with ZRE-compressed tensors.
AcceleratorConfig make_scnn();

/// BitWave variants for the Fig. 13 breakdown.
enum class BitWaveVariant {
    kDenseSu,      ///< Fixed dense SU, dense bits (the Fig. 13 baseline).
    kDynamicDf,    ///< + dynamic dataflow (DF).
    kDfSm,         ///< + sign-magnitude BCSeC skipping & compression.
    kDfSmBf,       ///< + Bit-Flip (weights must be pre-flipped).
};

/// Build a BitWave configuration for @p variant.
AcceleratorConfig make_bitwave(BitWaveVariant variant);

/// Display name of a variant ("Dense", "+DF", ...).
const char *bitwave_variant_name(BitWaveVariant variant);

/// The HUAA-style bit-parallel dynamic SU set (512 lanes).
std::vector<SpatialUnrolling> huaa_sus();

}  // namespace bitwave
