/**
 * @file
 * Zero Run-Length Encoding (ZRE) — the value-sparsity compression SCNN
 * uses, implemented as a baseline for Fig. 5 and the SCNN model.
 *
 * Stream format: a sequence of entries, each holding a 4-bit count of
 * zeros preceding the value and the 8-bit non-zero value itself. Runs of
 * more than 15 zeros insert padding entries with value 0 and run 15, and
 * a trailing run of zeros is closed with a single (run, 0) entry — the
 * same convention as SCNN's (value, zero-count) pairs.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace bitwave {

/// One ZRE stream entry.
struct ZreEntry
{
    std::uint8_t zero_run = 0;  ///< Zeros preceding `value` (0..15).
    std::int8_t value = 0;      ///< The encoded value (may be 0 for padding).
};

/// A ZRE-compressed tensor.
struct ZreCompressed
{
    Shape shape;
    std::int64_t element_count = 0;
    std::vector<ZreEntry> entries;

    /// Bits per entry: 4 run bits + 8 value bits.
    static constexpr int kEntryBits = 12;

    std::int64_t compressed_bits() const;
    /// Value payload only (8 bits per entry) — "ideal" CR numerator.
    std::int64_t payload_bits() const;
    std::int64_t original_bits() const;
    double compression_ratio() const;
    double ideal_compression_ratio() const;
};

/**
 * Encode @p tensor (flat order) into a ZRE stream.
 *
 * Word-parallel: a SWAR scan derives a 64-element non-zero mask per
 * chunk (the same "operate on packed lanes" treatment the bit-plane
 * kernels got), so sparse stretches advance 64 elements per word test
 * and only the surviving values are touched individually. This was the
 * last per-element walk on the SCNN fig14 critical path.
 */
ZreCompressed zre_compress(const Int8Tensor &tensor);

/// Element-at-a-time oracle for zre_compress (tests / bench);
/// bit-identical entry stream.
ZreCompressed zre_compress_scalar(const Int8Tensor &tensor);

/// Invert zre_compress exactly.
Int8Tensor zre_decompress(const ZreCompressed &compressed);

}  // namespace bitwave
