#include "compress/csr.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/bits.hpp"
#include "common/logging.hpp"

namespace bitwave {

int
CsrCompressed::col_index_bits() const
{
    if (cols <= 1) {
        return 1;
    }
    int bits = 0;
    std::int64_t span = 1;
    while (span < cols) {
        span <<= 1;
        ++bits;
    }
    return bits;
}

std::int64_t
CsrCompressed::compressed_bits() const
{
    const std::int64_t nnz = static_cast<std::int64_t>(values.size());
    return nnz * kWordBits + nnz * col_index_bits() +
        static_cast<std::int64_t>(row_ptr.size()) * 32;
}

std::int64_t
CsrCompressed::payload_bits() const
{
    return static_cast<std::int64_t>(values.size()) * kWordBits;
}

std::int64_t
CsrCompressed::original_bits() const
{
    return rows * cols * kWordBits;
}

double
CsrCompressed::compression_ratio() const
{
    const std::int64_t c = compressed_bits();
    return c > 0 ? static_cast<double>(original_bits()) /
                       static_cast<double>(c)
                 : static_cast<double>(original_bits());
}

double
CsrCompressed::ideal_compression_ratio() const
{
    const std::int64_t p = payload_bits();
    return p > 0 ? static_cast<double>(original_bits()) /
                       static_cast<double>(p)
                 : static_cast<double>(original_bits());
}

namespace {

/// Argument validation + header fields shared by every encoder.
CsrCompressed
csr_header(const Int8Tensor &tensor, std::int64_t rows)
{
    if (rows <= 0 || tensor.numel() % rows != 0) {
        fatal("csr_compress: rows=%lld must divide numel=%lld",
              static_cast<long long>(rows),
              static_cast<long long>(tensor.numel()));
    }
    CsrCompressed out;
    out.shape = tensor.shape();
    out.rows = rows;
    out.cols = tensor.numel() / rows;
    return out;
}

}  // namespace

CsrCompressed
csr_compress(const BitPlanes &planes, const Int8Tensor &tensor,
             std::int64_t rows)
{
    CsrCompressed out = csr_header(tensor, rows);
    if (planes.n != tensor.numel()) {
        fatal("csr_compress: planes pack %lld elements, tensor has %lld",
              static_cast<long long>(planes.n),
              static_cast<long long>(tensor.numel()));
    }

    // Non-zero element mask, one bit per element: the OR of the eight
    // planes (zero value <=> all plane bits zero, in either
    // representation). Plane padding lanes beyond n are zero, so tail
    // bits never flag.
    std::vector<std::uint64_t> nz(static_cast<std::size_t>(planes.words));
    std::int64_t nnz = 0;
    for (std::int64_t w = 0; w < planes.words; ++w) {
        std::uint64_t m = 0;
        for (int b = 0; b < kWordBits; ++b) {
            m |= planes.plane(b)[w];
        }
        nz[static_cast<std::size_t>(w)] = m;
        nnz += std::popcount(m);
    }
    out.values.reserve(static_cast<std::size_t>(nnz));
    out.col_indices.reserve(static_cast<std::size_t>(nnz));
    out.row_ptr.reserve(static_cast<std::size_t>(rows) + 1);
    out.row_ptr.push_back(0);

    const std::int8_t *data = tensor.data();
    for (std::int64_t r = 0; r < rows; ++r) {
        const std::int64_t start = r * out.cols;
        const std::int64_t end = start + out.cols;
        for (std::int64_t pos = start; pos < end;) {
            const std::int64_t w = pos >> 6;
            const int off = static_cast<int>(pos & 63);
            const int take = static_cast<int>(
                std::min<std::int64_t>(64 - off, end - pos));
            std::uint64_t window =
                nz[static_cast<std::size_t>(w)] >> off;
            if (take < 64) {
                window &= (~std::uint64_t{0}) >> (64 - take);
            }
            const std::uint64_t full = take == 64
                ? ~std::uint64_t{0}
                : ((~std::uint64_t{0}) >> (64 - take));
            if (window == full) {
                // Fully dense window: straight-line emit, no bit scan.
                out.values.insert(out.values.end(), data + pos,
                                  data + pos + take);
                for (int j = 0; j < take; ++j) {
                    out.col_indices.push_back(
                        static_cast<std::int32_t>(pos + j - start));
                }
            } else {
                while (window != 0) {
                    const int j = std::countr_zero(window);
                    window &= window - 1;
                    out.values.push_back(data[pos + j]);
                    out.col_indices.push_back(
                        static_cast<std::int32_t>(pos + j - start));
                }
            }
            pos += take;
        }
        out.row_ptr.push_back(static_cast<std::int64_t>(out.values.size()));
    }
    return out;
}

CsrCompressed
csr_compress(const Int8Tensor &tensor, std::int64_t rows)
{
    return csr_compress(
        pack_bitplanes(tensor, Representation::kTwosComplement), tensor,
        rows);
}

CsrCompressed
csr_compress_scalar(const Int8Tensor &tensor, std::int64_t rows)
{
    CsrCompressed out = csr_header(tensor, rows);
    out.row_ptr.reserve(static_cast<std::size_t>(rows) + 1);
    out.row_ptr.push_back(0);
    for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t c = 0; c < out.cols; ++c) {
            const std::int8_t v = tensor[r * out.cols + c];
            if (v != 0) {
                out.values.push_back(v);
                out.col_indices.push_back(static_cast<std::int32_t>(c));
            }
        }
        out.row_ptr.push_back(static_cast<std::int64_t>(out.values.size()));
    }
    return out;
}

Int8Tensor
csr_decompress(const CsrCompressed &compressed)
{
    Int8Tensor out(compressed.shape);
    for (std::int64_t r = 0; r < compressed.rows; ++r) {
        for (std::int64_t k = compressed.row_ptr[static_cast<std::size_t>(r)];
             k < compressed.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
            const auto idx = static_cast<std::size_t>(k);
            out[r * compressed.cols + compressed.col_indices[idx]] =
                compressed.values[idx];
        }
    }
    return out;
}

}  // namespace bitwave
