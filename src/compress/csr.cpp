#include "compress/csr.hpp"

#include <cmath>

#include "common/bits.hpp"
#include "common/logging.hpp"

namespace bitwave {

int
CsrCompressed::col_index_bits() const
{
    if (cols <= 1) {
        return 1;
    }
    int bits = 0;
    std::int64_t span = 1;
    while (span < cols) {
        span <<= 1;
        ++bits;
    }
    return bits;
}

std::int64_t
CsrCompressed::compressed_bits() const
{
    const std::int64_t nnz = static_cast<std::int64_t>(values.size());
    return nnz * kWordBits + nnz * col_index_bits() +
        static_cast<std::int64_t>(row_ptr.size()) * 32;
}

std::int64_t
CsrCompressed::payload_bits() const
{
    return static_cast<std::int64_t>(values.size()) * kWordBits;
}

std::int64_t
CsrCompressed::original_bits() const
{
    return rows * cols * kWordBits;
}

double
CsrCompressed::compression_ratio() const
{
    const std::int64_t c = compressed_bits();
    return c > 0 ? static_cast<double>(original_bits()) /
                       static_cast<double>(c)
                 : static_cast<double>(original_bits());
}

double
CsrCompressed::ideal_compression_ratio() const
{
    const std::int64_t p = payload_bits();
    return p > 0 ? static_cast<double>(original_bits()) /
                       static_cast<double>(p)
                 : static_cast<double>(original_bits());
}

CsrCompressed
csr_compress(const Int8Tensor &tensor, std::int64_t rows)
{
    if (rows <= 0 || tensor.numel() % rows != 0) {
        fatal("csr_compress: rows=%lld must divide numel=%lld",
              static_cast<long long>(rows),
              static_cast<long long>(tensor.numel()));
    }
    CsrCompressed out;
    out.shape = tensor.shape();
    out.rows = rows;
    out.cols = tensor.numel() / rows;
    out.row_ptr.reserve(static_cast<std::size_t>(rows) + 1);
    out.row_ptr.push_back(0);
    for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t c = 0; c < out.cols; ++c) {
            const std::int8_t v = tensor[r * out.cols + c];
            if (v != 0) {
                out.values.push_back(v);
                out.col_indices.push_back(static_cast<std::int32_t>(c));
            }
        }
        out.row_ptr.push_back(static_cast<std::int64_t>(out.values.size()));
    }
    return out;
}

Int8Tensor
csr_decompress(const CsrCompressed &compressed)
{
    Int8Tensor out(compressed.shape);
    for (std::int64_t r = 0; r < compressed.rows; ++r) {
        for (std::int64_t k = compressed.row_ptr[static_cast<std::size_t>(r)];
             k < compressed.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
            const auto idx = static_cast<std::size_t>(k);
            out[r * compressed.cols + compressed.col_indices[idx]] =
                compressed.values[idx];
        }
    }
    return out;
}

}  // namespace bitwave
