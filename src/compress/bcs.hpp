/**
 * @file
 * BCS (bit-column sparsity) lossless weight compression — Section III-C.
 *
 * A tensor is split into groups of G words. Each group is stored as:
 *   - an 8-bit zero-column index (bit b set => column b is non-zero and
 *     present in the payload), and
 *   - one G-bit column payload per non-zero column, LSB column first.
 *
 * The format is lossless, decodable without preprocessing (the index
 * directly drives the ZCIP/BCE pipeline), and keeps memory accesses
 * regular: payload columns are fixed-size G-bit words.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sparsity/bitcolumn.hpp"
#include "tensor/tensor.hpp"

namespace bitwave {

/// Compressed form of one weight group.
struct BcsGroup
{
    std::uint8_t index = 0;  ///< Non-zero-column mask (bit7 = sign column).
    /// Non-zero column payloads, ascending bit position; weight j at bit j.
    std::vector<std::uint64_t> columns;
};

/// A BCS-compressed tensor plus the bookkeeping to invert the transform.
struct BcsCompressed
{
    int group_size = 0;
    Representation repr = Representation::kSignMagnitude;
    std::int64_t element_count = 0;  ///< Original element count.
    Shape shape;                     ///< Original tensor shape.
    std::vector<BcsGroup> groups;

    /// Total storage in bits: index bits + payload column bits.
    std::int64_t compressed_bits() const;
    /// Payload-only storage in bits (the "ideal CR" numerator of Fig. 5).
    std::int64_t payload_bits() const;
    /// Index-only storage in bits.
    std::int64_t index_bits() const;
    /// Uncompressed storage in bits (8 per element).
    std::int64_t original_bits() const;

    /// CR including index overhead (the paper's "real CR").
    double compression_ratio() const;
    /// CR ignoring index overhead (the paper's "ideal CR").
    double ideal_compression_ratio() const;
};

/**
 * Size accounting of a BCS compression without materializing the column
 * stream. Bit-for-bit identical to bcs_compress(...).compressed_bits()
 * and friends, at a fraction of the cost — the analytical models call
 * this on every layer of every scenario, where allocating millions of
 * per-group payload vectors used to dominate the evaluation time.
 */
struct BcsSizeInfo
{
    int group_size = 0;
    std::int64_t element_count = 0;
    std::int64_t groups = 0;
    std::int64_t nonzero_columns = 0;  ///< Payload columns stored.

    std::int64_t index_bits() const { return groups * 8; }
    std::int64_t payload_bits() const
    {
        return nonzero_columns * group_size;
    }
    std::int64_t compressed_bits() const
    {
        return index_bits() + payload_bits();
    }
    std::int64_t original_bits() const { return element_count * 8; }
    double compression_ratio() const
    {
        const std::int64_t c = compressed_bits();
        return c > 0 ? static_cast<double>(original_bits()) /
                           static_cast<double>(c)
                     : 0.0;
    }
    double ideal_compression_ratio() const
    {
        const std::int64_t p = payload_bits();
        if (p == 0) {
            return static_cast<double>(original_bits());
        }
        return static_cast<double>(original_bits()) /
            static_cast<double>(p);
    }
};

/// Measure the BCS storage of @p tensor without building the stream.
/// The tensor overload packs bit planes and runs the word-parallel
/// kernel; pass pre-packed planes to amortize the pack across kernels.
BcsSizeInfo bcs_measure(const Int8Tensor &tensor, int group_size,
                        Representation repr);
BcsSizeInfo bcs_measure(const BitPlanes &planes, int group_size);

/// Element-at-a-time oracle for the packed measure (tests / bench).
BcsSizeInfo bcs_measure_scalar(const Int8Tensor &tensor, int group_size,
                               Representation repr);

/**
 * Compress @p tensor with group size @p group_size in representation
 * @p repr. The final partial group (if any) is zero-padded; the pad is
 * dropped again on decompression via `element_count`. The payload
 * columns are gathered straight from the packed bit planes (a group's
 * column IS a plane segment); pass pre-packed planes plus the source
 * shape to amortize the pack.
 */
BcsCompressed bcs_compress(const Int8Tensor &tensor, int group_size,
                           Representation repr);
BcsCompressed bcs_compress(const BitPlanes &planes, const Shape &shape,
                           int group_size);

/// Element-at-a-time oracle for the packed compressor (tests / bench).
BcsCompressed bcs_compress_scalar(const Int8Tensor &tensor, int group_size,
                                  Representation repr);

/// Invert bcs_compress exactly (BCS is lossless).
Int8Tensor bcs_decompress(const BcsCompressed &compressed);

/**
 * Pick, per the hardware constraint, the group size in {8, 16, 32} with
 * the best real compression ratio for @p tensor.
 */
int best_hardware_group_size(const Int8Tensor &tensor, Representation repr);

}  // namespace bitwave
