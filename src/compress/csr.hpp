/**
 * @file
 * Compressed Sparse Row (CSR) encoding baseline for Fig. 5.
 *
 * The tensor is viewed as a matrix of `rows` x `cols` (callers typically
 * pass rows = output channels). Storage cost:
 *   - 8 bits per non-zero value,
 *   - ceil(log2(cols)) bits per column index,
 *   - 32 bits per row pointer (rows + 1 of them).
 *
 * The encoder is word-parallel on top of tensor/bitplane: the per-word
 * OR of the eight planes is a 64-element non-zero mask (an element is
 * zero exactly when every plane bit is zero, in either representation),
 * so the row walk scans whole words, takes a straight-line path through
 * fully-dense windows and bit-scans the rest — the same SWAR mask-scan
 * structure as zre_compress. csr_compress_scalar remains the
 * element-at-a-time oracle; tests and the micro-kernel bench pin the
 * two bit-identical.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/bitplane.hpp"
#include "tensor/tensor.hpp"

namespace bitwave {

/// A CSR-compressed matrix view of a tensor.
struct CsrCompressed
{
    Shape shape;
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::vector<std::int8_t> values;        ///< Non-zero values, row-major.
    std::vector<std::int32_t> col_indices;  ///< Column of each value.
    std::vector<std::int64_t> row_ptr;      ///< Size rows + 1.

    /// Bits per column index for this matrix width.
    int col_index_bits() const;
    std::int64_t compressed_bits() const;
    /// Value payload only — "ideal" CR numerator.
    std::int64_t payload_bits() const;
    std::int64_t original_bits() const;
    double compression_ratio() const;
    double ideal_compression_ratio() const;
};

/**
 * Encode @p tensor as CSR with @p rows rows. @p rows must divide the
 * element count; pass the output-channel count for weight tensors.
 * Word-parallel (packs bit planes internally; prefer the planes
 * overload when a shared packing already exists).
 */
CsrCompressed csr_compress(const Int8Tensor &tensor, std::int64_t rows);

/**
 * Word-parallel encode reusing pre-packed planes of @p tensor (either
 * representation — the zero/non-zero mask is representation-invariant).
 * @p planes must pack exactly @p tensor's elements.
 */
CsrCompressed csr_compress(const BitPlanes &planes,
                           const Int8Tensor &tensor, std::int64_t rows);

/// Element-at-a-time oracle for the word-parallel encoder (tests/bench).
CsrCompressed csr_compress_scalar(const Int8Tensor &tensor,
                                  std::int64_t rows);

/// Invert csr_compress exactly.
Int8Tensor csr_decompress(const CsrCompressed &compressed);

}  // namespace bitwave
