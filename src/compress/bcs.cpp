#include "compress/bcs.hpp"

#include <span>

#include "common/bits.hpp"

namespace bitwave {

std::int64_t
BcsCompressed::index_bits() const
{
    return static_cast<std::int64_t>(groups.size()) * kWordBits;
}

std::int64_t
BcsCompressed::payload_bits() const
{
    std::int64_t bits = 0;
    for (const auto &g : groups) {
        bits += static_cast<std::int64_t>(g.columns.size()) * group_size;
    }
    return bits;
}

std::int64_t
BcsCompressed::compressed_bits() const
{
    return index_bits() + payload_bits();
}

std::int64_t
BcsCompressed::original_bits() const
{
    return element_count * kWordBits;
}

double
BcsCompressed::compression_ratio() const
{
    const std::int64_t c = compressed_bits();
    return c > 0 ? static_cast<double>(original_bits()) /
                       static_cast<double>(c)
                 : 0.0;
}

double
BcsCompressed::ideal_compression_ratio() const
{
    const std::int64_t p = payload_bits();
    if (p == 0) {
        // A tensor of all zeros compresses to indexes only.
        return static_cast<double>(original_bits());
    }
    return static_cast<double>(original_bits()) / static_cast<double>(p);
}

BcsSizeInfo
bcs_measure_scalar(const Int8Tensor &tensor, int group_size,
                   Representation repr)
{
    if (group_size < 1 || group_size > 64) {
        fatal("bcs_measure: group_size must be in [1, 64], got %d",
              group_size);
    }
    BcsSizeInfo info;
    info.group_size = group_size;
    info.element_count = tensor.numel();
    const std::int64_t n = tensor.numel();
    for (std::int64_t start = 0; start < n; start += group_size) {
        const std::int64_t len =
            std::min<std::int64_t>(group_size, n - start);
        const std::span<const std::int8_t> grp(
            tensor.data() + start, static_cast<std::size_t>(len));
        ++info.groups;
        info.nonzero_columns += popcount8(column_index(grp, repr));
    }
    return info;
}

BcsSizeInfo
bcs_measure(const BitPlanes &planes, int group_size)
{
    if (group_size < 1 || group_size > 64) {
        fatal("bcs_measure: group_size must be in [1, 64], got %d",
              group_size);
    }
    BcsSizeInfo info;
    info.group_size = group_size;
    info.element_count = planes.n;
    if (planes.n == 0) {
        return info;
    }
    info.groups = scan_group_count(planes.n, planes.n, group_size);
    info.nonzero_columns =
        scan_nonzero_column_total(planes, planes.n, group_size);
    return info;
}

BcsSizeInfo
bcs_measure(const Int8Tensor &tensor, int group_size, Representation repr)
{
    return bcs_measure(pack_bitplanes(tensor, repr), group_size);
}

BcsCompressed
bcs_compress_scalar(const Int8Tensor &tensor, int group_size,
                    Representation repr)
{
    if (group_size < 1 || group_size > 64) {
        fatal("bcs_compress: group_size must be in [1, 64], got %d",
              group_size);
    }
    BcsCompressed out;
    out.group_size = group_size;
    out.repr = repr;
    out.element_count = tensor.numel();
    out.shape = tensor.shape();

    const std::int64_t n = tensor.numel();
    out.groups.reserve(static_cast<std::size_t>(ceil_div(n, group_size)));
    for (std::int64_t start = 0; start < n; start += group_size) {
        const std::int64_t len = std::min<std::int64_t>(group_size, n - start);
        const std::span<const std::int8_t> grp(
            tensor.data() + start, static_cast<std::size_t>(len));
        BcsGroup g;
        g.index = column_index(grp, repr);
        for (int b = 0; b < kWordBits; ++b) {
            if (test_bit(g.index, b)) {
                g.columns.push_back(column_bits(grp, b, repr));
            }
        }
        out.groups.push_back(std::move(g));
    }
    return out;
}

BcsCompressed
bcs_compress(const BitPlanes &planes, const Shape &shape, int group_size)
{
    if (group_size < 1 || group_size > 64) {
        fatal("bcs_compress: group_size must be in [1, 64], got %d",
              group_size);
    }
    if (shape_numel(shape) != planes.n) {
        fatal("bcs_compress: shape %s does not match %lld packed elements",
              shape_to_string(shape).c_str(),
              static_cast<long long>(planes.n));
    }
    BcsCompressed out;
    out.group_size = group_size;
    out.repr = planes.repr;
    out.element_count = planes.n;
    out.shape = shape;
    if (planes.n == 0) {
        return out;
    }

    const std::int64_t groups =
        scan_group_count(planes.n, planes.n, group_size);
    std::vector<std::uint8_t> idx(static_cast<std::size_t>(groups));
    scan_group_indexes(planes, planes.n, group_size, idx.data());

    out.groups.resize(static_cast<std::size_t>(groups));
    for (std::int64_t g = 0; g < groups; ++g) {
        const std::int64_t start = g * group_size;
        const int len = static_cast<int>(
            std::min<std::int64_t>(group_size, planes.n - start));
        BcsGroup &grp = out.groups[static_cast<std::size_t>(g)];
        grp.index = idx[static_cast<std::size_t>(g)];
        grp.columns.reserve(
            static_cast<std::size_t>(popcount8(grp.index)));
        for (int b = 0; b < kWordBits; ++b) {
            if (test_bit(grp.index, b)) {
                // A payload column IS the plane segment: weight j of the
                // group at bit j, exactly the scalar column_bits() word.
                grp.columns.push_back(planes.segment(b, start, len));
            }
        }
    }
    return out;
}

BcsCompressed
bcs_compress(const Int8Tensor &tensor, int group_size, Representation repr)
{
    return bcs_compress(pack_bitplanes(tensor, repr), tensor.shape(),
                        group_size);
}

Int8Tensor
bcs_decompress(const BcsCompressed &compressed)
{
    Int8Tensor out(compressed.shape);
    const int g_size = compressed.group_size;
    std::int64_t base = 0;
    for (const auto &g : compressed.groups) {
        std::size_t col_cursor = 0;
        std::vector<std::uint8_t> words(static_cast<std::size_t>(g_size), 0);
        for (int b = 0; b < kWordBits; ++b) {
            if (!test_bit(g.index, b)) {
                continue;
            }
            if (col_cursor >= g.columns.size()) {
                fatal("bcs_decompress: corrupt group, index claims more "
                      "columns than stored");
            }
            const std::uint64_t col = g.columns[col_cursor++];
            for (int j = 0; j < g_size; ++j) {
                if ((col >> j) & 1ULL) {
                    words[static_cast<std::size_t>(j)] |=
                        static_cast<std::uint8_t>(1u << b);
                }
            }
        }
        if (col_cursor != g.columns.size()) {
            fatal("bcs_decompress: corrupt group, stored columns exceed "
                  "index population");
        }
        for (int j = 0; j < g_size && base + j < compressed.element_count;
             ++j) {
            const std::uint8_t w = words[static_cast<std::size_t>(j)];
            out[base + j] = compressed.repr == Representation::kTwosComplement
                ? static_cast<std::int8_t>(w) : from_sign_magnitude(w);
        }
        base += g_size;
    }
    return out;
}

int
best_hardware_group_size(const Int8Tensor &tensor, Representation repr)
{
    // One pack serves all candidate group sizes; the size accounting is
    // bit-identical to materializing each compression.
    const BitPlanes planes = pack_bitplanes(tensor, repr);
    int best_g = kHardwareGroupSizes[0];
    double best_cr = -1.0;
    for (int g : kHardwareGroupSizes) {
        const double cr = bcs_measure(planes, g).compression_ratio();
        if (cr > best_cr) {
            best_cr = cr;
            best_g = g;
        }
    }
    return best_g;
}

}  // namespace bitwave
