#include "compress/bcs.hpp"

#include <span>

#include "common/bits.hpp"

namespace bitwave {

std::int64_t
BcsCompressed::index_bits() const
{
    return static_cast<std::int64_t>(groups.size()) * kWordBits;
}

std::int64_t
BcsCompressed::payload_bits() const
{
    std::int64_t bits = 0;
    for (const auto &g : groups) {
        bits += static_cast<std::int64_t>(g.columns.size()) * group_size;
    }
    return bits;
}

std::int64_t
BcsCompressed::compressed_bits() const
{
    return index_bits() + payload_bits();
}

std::int64_t
BcsCompressed::original_bits() const
{
    return element_count * kWordBits;
}

double
BcsCompressed::compression_ratio() const
{
    const std::int64_t c = compressed_bits();
    return c > 0 ? static_cast<double>(original_bits()) /
                       static_cast<double>(c)
                 : 0.0;
}

double
BcsCompressed::ideal_compression_ratio() const
{
    const std::int64_t p = payload_bits();
    if (p == 0) {
        // A tensor of all zeros compresses to indexes only.
        return static_cast<double>(original_bits());
    }
    return static_cast<double>(original_bits()) / static_cast<double>(p);
}

BcsSizeInfo
bcs_measure(const Int8Tensor &tensor, int group_size, Representation repr)
{
    if (group_size < 1 || group_size > 64) {
        fatal("bcs_measure: group_size must be in [1, 64], got %d",
              group_size);
    }
    BcsSizeInfo info;
    info.group_size = group_size;
    info.element_count = tensor.numel();
    const std::int64_t n = tensor.numel();
    for (std::int64_t start = 0; start < n; start += group_size) {
        const std::int64_t len =
            std::min<std::int64_t>(group_size, n - start);
        const std::span<const std::int8_t> grp(
            tensor.data() + start, static_cast<std::size_t>(len));
        ++info.groups;
        info.nonzero_columns += popcount8(column_index(grp, repr));
    }
    return info;
}

BcsCompressed
bcs_compress(const Int8Tensor &tensor, int group_size, Representation repr)
{
    if (group_size < 1 || group_size > 64) {
        fatal("bcs_compress: group_size must be in [1, 64], got %d",
              group_size);
    }
    BcsCompressed out;
    out.group_size = group_size;
    out.repr = repr;
    out.element_count = tensor.numel();
    out.shape = tensor.shape();

    const std::int64_t n = tensor.numel();
    out.groups.reserve(static_cast<std::size_t>(ceil_div(n, group_size)));
    for (std::int64_t start = 0; start < n; start += group_size) {
        const std::int64_t len = std::min<std::int64_t>(group_size, n - start);
        const std::span<const std::int8_t> grp(
            tensor.data() + start, static_cast<std::size_t>(len));
        BcsGroup g;
        g.index = column_index(grp, repr);
        for (int b = 0; b < kWordBits; ++b) {
            if (test_bit(g.index, b)) {
                g.columns.push_back(column_bits(grp, b, repr));
            }
        }
        out.groups.push_back(std::move(g));
    }
    return out;
}

Int8Tensor
bcs_decompress(const BcsCompressed &compressed)
{
    Int8Tensor out(compressed.shape);
    const int g_size = compressed.group_size;
    std::int64_t base = 0;
    for (const auto &g : compressed.groups) {
        std::size_t col_cursor = 0;
        std::vector<std::uint8_t> words(static_cast<std::size_t>(g_size), 0);
        for (int b = 0; b < kWordBits; ++b) {
            if (!test_bit(g.index, b)) {
                continue;
            }
            if (col_cursor >= g.columns.size()) {
                fatal("bcs_decompress: corrupt group, index claims more "
                      "columns than stored");
            }
            const std::uint64_t col = g.columns[col_cursor++];
            for (int j = 0; j < g_size; ++j) {
                if ((col >> j) & 1ULL) {
                    words[static_cast<std::size_t>(j)] |=
                        static_cast<std::uint8_t>(1u << b);
                }
            }
        }
        if (col_cursor != g.columns.size()) {
            fatal("bcs_decompress: corrupt group, stored columns exceed "
                  "index population");
        }
        for (int j = 0; j < g_size && base + j < compressed.element_count;
             ++j) {
            const std::uint8_t w = words[static_cast<std::size_t>(j)];
            out[base + j] = compressed.repr == Representation::kTwosComplement
                ? static_cast<std::int8_t>(w) : from_sign_magnitude(w);
        }
        base += g_size;
    }
    return out;
}

int
best_hardware_group_size(const Int8Tensor &tensor, Representation repr)
{
    int best_g = kHardwareGroupSizes[0];
    double best_cr = -1.0;
    for (int g : kHardwareGroupSizes) {
        const double cr = bcs_compress(tensor, g, repr).compression_ratio();
        if (cr > best_cr) {
            best_cr = cr;
            best_g = g;
        }
    }
    return best_g;
}

}  // namespace bitwave
