#include "compress/zre.hpp"

#include <bit>
#include <cstring>

#include "common/bits.hpp"
#include "common/logging.hpp"

namespace bitwave {

namespace {

/// Bit k set iff byte k of @p v is non-zero (SWAR zero-byte test +
/// multiply compaction; all (k, j) partial products land on distinct
/// bits, so the multiply cannot carry).
// The mask scan maps byte k of a loaded word to element offset k,
// which holds only for little-endian loads (every supported target).
static_assert(std::endian::native == std::endian::little,
              "zre_compress's SWAR scan assumes little-endian loads");

inline std::uint64_t
nonzero_byte_bits(std::uint64_t v)
{
    const std::uint64_t kHi = 0x8080808080808080ULL;
    // Bit 7 of each byte: set iff the byte's low 7 bits are non-zero
    // (the per-byte add cannot carry: 0x7F + 0x7F < 0x100), OR'd with
    // the byte's own bit 7 — exact, unlike the borrowing (v - 0x01..)
    // trick, which false-flags 0x01 bytes that follow a zero byte.
    const std::uint64_t low7 = (v & ~kHi) + ~kHi;
    const std::uint64_t nz = ((low7 | v) & kHi) >> 7;  // bit0 per byte
    return (nz * 0x0102040810204080ULL) >> 56;
}

/// Fold @p zeros newly seen zeros into the running counter, emitting the
/// saturated padding entries exactly as the one-by-one loop would.
inline void
absorb_zeros(std::vector<ZreEntry> &entries, int &run, std::int64_t zeros)
{
    run += static_cast<int>(zeros);
    while (run >= 16) {
        entries.push_back({15, 0});
        run -= 16;
    }
}

}  // namespace

std::int64_t
ZreCompressed::compressed_bits() const
{
    return static_cast<std::int64_t>(entries.size()) * kEntryBits;
}

std::int64_t
ZreCompressed::payload_bits() const
{
    return static_cast<std::int64_t>(entries.size()) * kWordBits;
}

std::int64_t
ZreCompressed::original_bits() const
{
    return element_count * kWordBits;
}

double
ZreCompressed::compression_ratio() const
{
    const std::int64_t c = compressed_bits();
    return c > 0 ? static_cast<double>(original_bits()) /
                       static_cast<double>(c)
                 : static_cast<double>(original_bits());
}

double
ZreCompressed::ideal_compression_ratio() const
{
    const std::int64_t p = payload_bits();
    return p > 0 ? static_cast<double>(original_bits()) /
                       static_cast<double>(p)
                 : static_cast<double>(original_bits());
}

ZreCompressed
zre_compress(const Int8Tensor &tensor)
{
    ZreCompressed out;
    out.shape = tensor.shape();
    out.element_count = tensor.numel();

    const std::int8_t *data = tensor.data();
    const std::int64_t n = tensor.numel();

    // One cheap mask pass sizes the stream (values + padding bound) so
    // the emit pass below never reallocates.
    const std::int64_t whole = n & ~std::int64_t{63};
    std::vector<std::uint64_t> masks(
        static_cast<std::size_t>(whole / 64));
    std::int64_t nonzeros = 0;
    for (std::int64_t chunk = 0; chunk < whole; chunk += 64) {
        std::uint64_t mask = 0;
        for (int w = 0; w < 8; ++w) {
            std::uint64_t v;
            std::memcpy(&v, data + chunk + 8 * w, sizeof v);
            mask |= nonzero_byte_bits(v) << (8 * w);
        }
        masks[static_cast<std::size_t>(chunk / 64)] = mask;
        nonzeros += std::popcount(mask);
    }
    out.entries.reserve(static_cast<std::size_t>(
        nonzeros + (n - whole) + (n - nonzeros) / 15 + 2));

    int run = 0;
    std::int64_t chunk = 0;
    for (; chunk + 64 <= n; chunk += 64) {
        std::uint64_t mask = masks[static_cast<std::size_t>(chunk / 64)];
        if (mask == ~std::uint64_t{0} && run == 0) {
            // Fully dense chunk: straight-line emit, no bit scanning.
            for (int j = 0; j < 64; ++j) {
                out.entries.push_back({0, data[chunk + j]});
            }
            continue;
        }
        std::int64_t prev = 0;
        while (mask != 0) {
            const int j = std::countr_zero(mask);
            mask &= mask - 1;
            absorb_zeros(out.entries, run, j - prev);
            out.entries.push_back({static_cast<std::uint8_t>(run),
                                   data[chunk + j]});
            run = 0;
            prev = j + 1;
        }
        absorb_zeros(out.entries, run, 64 - prev);
    }
    for (std::int64_t i = chunk; i < n; ++i) {
        const std::int8_t v = data[i];
        if (v == 0) {
            absorb_zeros(out.entries, run, 1);
            continue;
        }
        out.entries.push_back({static_cast<std::uint8_t>(run), v});
        run = 0;
    }
    if (run > 0) {
        // Close a trailing zero run so decode can restore the exact length.
        out.entries.push_back({static_cast<std::uint8_t>(run - 1), 0});
    }
    return out;
}

ZreCompressed
zre_compress_scalar(const Int8Tensor &tensor)
{
    ZreCompressed out;
    out.shape = tensor.shape();
    out.element_count = tensor.numel();

    int run = 0;
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
        const std::int8_t v = tensor[i];
        if (v == 0) {
            ++run;
            if (run == 16) {
                // Run counter saturates at 15: emit a padding zero entry.
                out.entries.push_back({15, 0});
                run = 0;
            }
            continue;
        }
        out.entries.push_back({static_cast<std::uint8_t>(run), v});
        run = 0;
    }
    if (run > 0) {
        // Close a trailing zero run so decode can restore the exact length.
        out.entries.push_back({static_cast<std::uint8_t>(run - 1), 0});
    }
    return out;
}

Int8Tensor
zre_decompress(const ZreCompressed &compressed)
{
    Int8Tensor out(compressed.shape);
    std::int64_t pos = 0;
    for (const auto &e : compressed.entries) {
        pos += e.zero_run;  // zeros are already present from initialization
        if (pos >= compressed.element_count && e.value != 0) {
            fatal("zre_decompress: stream overruns tensor size");
        }
        if (pos < compressed.element_count) {
            out[pos] = e.value;
        }
        ++pos;
    }
    return out;
}

}  // namespace bitwave
