#include "compress/zre.hpp"

#include "common/bits.hpp"
#include "common/logging.hpp"

namespace bitwave {

std::int64_t
ZreCompressed::compressed_bits() const
{
    return static_cast<std::int64_t>(entries.size()) * kEntryBits;
}

std::int64_t
ZreCompressed::payload_bits() const
{
    return static_cast<std::int64_t>(entries.size()) * kWordBits;
}

std::int64_t
ZreCompressed::original_bits() const
{
    return element_count * kWordBits;
}

double
ZreCompressed::compression_ratio() const
{
    const std::int64_t c = compressed_bits();
    return c > 0 ? static_cast<double>(original_bits()) /
                       static_cast<double>(c)
                 : static_cast<double>(original_bits());
}

double
ZreCompressed::ideal_compression_ratio() const
{
    const std::int64_t p = payload_bits();
    return p > 0 ? static_cast<double>(original_bits()) /
                       static_cast<double>(p)
                 : static_cast<double>(original_bits());
}

ZreCompressed
zre_compress(const Int8Tensor &tensor)
{
    ZreCompressed out;
    out.shape = tensor.shape();
    out.element_count = tensor.numel();

    int run = 0;
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
        const std::int8_t v = tensor[i];
        if (v == 0) {
            ++run;
            if (run == 16) {
                // Run counter saturates at 15: emit a padding zero entry.
                out.entries.push_back({15, 0});
                run = 0;
            }
            continue;
        }
        out.entries.push_back({static_cast<std::uint8_t>(run), v});
        run = 0;
    }
    if (run > 0) {
        // Close a trailing zero run so decode can restore the exact length.
        out.entries.push_back({static_cast<std::uint8_t>(run - 1), 0});
    }
    return out;
}

Int8Tensor
zre_decompress(const ZreCompressed &compressed)
{
    Int8Tensor out(compressed.shape);
    std::int64_t pos = 0;
    for (const auto &e : compressed.entries) {
        pos += e.zero_run;  // zeros are already present from initialization
        if (pos >= compressed.element_count && e.value != 0) {
            fatal("zre_decompress: stream overruns tensor size");
        }
        if (pos < compressed.element_count) {
            out[pos] = e.value;
        }
        ++pos;
    }
    return out;
}

}  // namespace bitwave
