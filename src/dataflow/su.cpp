#include "dataflow/su.hpp"

#include "common/bits.hpp"
#include "common/logging.hpp"

namespace bitwave {

const char *
dim_name(Dim dim)
{
    switch (dim) {
      case Dim::kK: return "K";
      case Dim::kC: return "C";
      case Dim::kOX: return "OX";
      case Dim::kOY: return "OY";
      case Dim::kFX: return "FX";
      case Dim::kFY: return "FY";
    }
    return "?";
}

std::int64_t
layer_dim(const LayerDesc &desc, Dim dim)
{
    switch (dim) {
      case Dim::kK: return desc.k;
      case Dim::kC: return desc.c;
      case Dim::kOX: return desc.ox;
      case Dim::kOY: return desc.oy;
      case Dim::kFX: return desc.fx;
      case Dim::kFY: return desc.fy;
    }
    return 1;
}

std::int64_t
SpatialUnrolling::factor(Dim dim) const
{
    const auto it = factors.find(dim);
    return it == factors.end() ? 1 : it->second;
}

std::int64_t
SpatialUnrolling::lanes() const
{
    std::int64_t n = 1;
    for (const auto &[dim, f] : factors) {
        n *= f;
    }
    return n;
}

std::int64_t
SpatialUnrolling::weight_bandwidth_bits() const
{
    // One bit per weight lane per cycle: the C x K (x F) cross section.
    return factor(Dim::kC) * factor(Dim::kK) * factor(Dim::kFX) *
        factor(Dim::kFY);
}

std::int64_t
SpatialUnrolling::activation_bandwidth_bits() const
{
    // Full-precision activations for the C x OX x OY cross section.
    // Depthwise SUs unroll channels along K, and every channel needs its
    // own activations (Table I: SU7 Act BW = 64 * 2 * 8 = 1024).
    const std::int64_t chan = depthwise_only ? factor(Dim::kK)
                                             : factor(Dim::kC);
    return kWordBits * chan * factor(Dim::kOX) * factor(Dim::kOY) *
        factor(Dim::kFX) * factor(Dim::kFY);
}

std::int64_t
SpatialUnrolling::group_size() const
{
    if (depthwise_only) {
        return factor(Dim::kK);
    }
    return factor(Dim::kC);
}

const std::vector<SpatialUnrolling> &
bitwave_sus()
{
    static const std::vector<SpatialUnrolling> sus = [] {
        std::vector<SpatialUnrolling> v;
        v.push_back({"SU1", {{Dim::kC, 8}, {Dim::kOX, 16}, {Dim::kK, 32}}});
        v.push_back({"SU2", {{Dim::kC, 16}, {Dim::kOX, 8}, {Dim::kK, 32}}});
        v.push_back({"SU3", {{Dim::kC, 32}, {Dim::kOX, 4}, {Dim::kK, 32}}});
        // SU4-SU6 unroll 1024 positions and process 4 bit columns per
        // cycle (Table I: 1024 weight bits/cycle).
        SpatialUnrolling su4{"SU4",
                             {{Dim::kC, 8}, {Dim::kOX, 1}, {Dim::kK, 128}}};
        su4.bit_columns = 4;
        v.push_back(std::move(su4));
        SpatialUnrolling su5{"SU5",
                             {{Dim::kC, 16}, {Dim::kOX, 1}, {Dim::kK, 64}}};
        su5.bit_columns = 4;
        v.push_back(std::move(su5));
        SpatialUnrolling su6{"SU6",
                             {{Dim::kC, 32}, {Dim::kOX, 1}, {Dim::kK, 32}}};
        su6.bit_columns = 4;
        v.push_back(std::move(su6));
        // SU7 [Gu = 64, OXu = 2, Ku = 1]: depthwise channels map onto K,
        // full bit-column parallelism per weight.
        SpatialUnrolling su7{"SU7", {{Dim::kK, 64}, {Dim::kOX, 2}}};
        su7.depthwise_only = true;
        su7.bit_columns = 8;
        v.push_back(std::move(su7));
        return v;
    }();
    return sus;
}

std::vector<SpatialUnrolling>
fixed_su_baselines(std::int64_t lanes)
{
    if (lanes == 4096) {
        return {
            {"XY", {{Dim::kOX, 32}, {Dim::kOY, 16}, {Dim::kK, 8}}},
            {"CK", {{Dim::kC, 64}, {Dim::kK, 64}}},
            {"XFx", {{Dim::kOX, 32}, {Dim::kFX, 8}, {Dim::kK, 16}}},
        };
    }
    if (lanes == 512) {
        return {
            {"XY", {{Dim::kOX, 16}, {Dim::kOY, 8}, {Dim::kK, 4}}},
            {"CK", {{Dim::kC, 32}, {Dim::kK, 16}}},
            {"XFx", {{Dim::kOX, 16}, {Dim::kFX, 4}, {Dim::kK, 8}}},
        };
    }
    fatal("fixed_su_baselines: unsupported lane count %lld",
          static_cast<long long>(lanes));
}

SpatialUnrolling
dense_reference_su()
{
    return {"Dense[K64,C64]", {{Dim::kK, 64}, {Dim::kC, 64}}};
}

double
spatial_utilization(const LayerDesc &desc, const SpatialUnrolling &su)
{
    double util = 1.0;
    for (const auto &[dim, f] : su.factors) {
        const std::int64_t d = layer_dim(desc, dim);
        const std::int64_t tiles = ceil_div(d, f);
        util *= static_cast<double>(d) / static_cast<double>(tiles * f);
    }
    return util;
}

std::int64_t
temporal_iterations(const LayerDesc &desc, const SpatialUnrolling &su)
{
    std::int64_t iters = desc.batch;
    for (Dim dim : {Dim::kK, Dim::kC, Dim::kOX, Dim::kOY, Dim::kFX,
                    Dim::kFY}) {
        iters *= ceil_div(layer_dim(desc, dim), su.factor(dim));
    }
    return iters;
}

LayerDesc
normalized_for_mapping(const LayerDesc &desc)
{
    LayerDesc norm = desc;
    if (desc.kind == LayerKind::kLinear || desc.kind == LayerKind::kLstm) {
        norm.ox = desc.batch;
        norm.batch = 1;
    }
    return norm;
}

const SpatialUnrolling &
select_su(const LayerDesc &desc,
          const std::vector<SpatialUnrolling> &candidates)
{
    if (candidates.empty()) {
        fatal("select_su: empty candidate set");
    }
    const bool depthwise = desc.kind == LayerKind::kDepthwiseConv;
    const SpatialUnrolling *best = nullptr;
    double best_util = -1.0;
    for (const auto &su : candidates) {
        if (su.depthwise_only && !depthwise) {
            continue;
        }
        const double util = spatial_utilization(desc, su);
        if (util > best_util) {
            best_util = util;
            best = &su;
        }
    }
    if (best == nullptr) {
        // Only depthwise-only SUs offered for a non-depthwise layer.
        return candidates.front();
    }
    return *best;
}

}  // namespace bitwave
