#include "dataflow/mapping.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/bits.hpp"
#include "common/logging.hpp"
#include "sparsity/bitcolumn.hpp"

namespace bitwave {

double
ColumnCycleStats::mean_ceil_cycles(int bit_columns) const
{
    if (groups == 0 || bit_columns < 1) {
        return mean_cycles_per_group;
    }
    double total = 0.0;
    for (int nz = 0; nz <= 8; ++nz) {
        const double cycles = std::max(
            1.0, std::ceil(static_cast<double>(nz) /
                           static_cast<double>(bit_columns)));
        total += cycles * static_cast<double>(occupancy_hist[nz]);
    }
    return total / static_cast<double>(groups);
}

namespace {

/// Element-at-a-time tail of the cycle statistics (mean and
/// lockstep-synchronized occupancy from the per-(row, group) index
/// masks) — the oracle reference for the word-parallel tail below,
/// used by column_cycle_stats_scalar.
ColumnCycleStats
cycle_stats_from_indexes(const std::vector<std::uint8_t> &idx,
                         const LayerDesc &desc, std::int64_t rows,
                         std::int64_t groups_per_row, std::int64_t ku)
{
    ColumnCycleStats stats;
    const bool has_c_axis = desc.kind != LayerKind::kDepthwiseConv;
    const std::int64_t fyx = desc.fy * desc.fx;

    // Mean occupancy.
    std::int64_t total_nz = 0;
    for (auto i : idx) {
        const int nz = popcount8(i);
        total_nz += nz;
        ++stats.occupancy_hist[nz];
    }
    stats.groups = rows * groups_per_row;
    stats.mean_cycles_per_group = stats.groups > 0
        ? static_cast<double>(total_nz) / static_cast<double>(stats.groups)
        : 0.0;

    // Synchronized occupancy: kernels (the K axis) advance in lockstep in
    // tiles of ku; rows interleave K and FY*FX, with K outermost, so the
    // kernels synchronized on one (fy, fx, c-group) position are rows
    // {k * fyx + f : k in tile}.
    const std::int64_t k_rows = has_c_axis ? desc.k : 1;
    const std::int64_t f_rows = has_c_axis ? rows / std::max<std::int64_t>(
        k_rows, 1) : 1;
    double sync_total = 0.0;
    std::int64_t sync_steps = 0;
    for (std::int64_t k0 = 0; k0 < k_rows; k0 += ku) {
        const std::int64_t k1 = std::min<std::int64_t>(k0 + ku, k_rows);
        for (std::int64_t f = 0; f < f_rows; ++f) {
            for (std::int64_t g = 0; g < groups_per_row; ++g) {
                int worst = 0;
                for (std::int64_t k = k0; k < k1; ++k) {
                    const std::int64_t row = k * fyx + f;
                    worst = std::max(
                        worst,
                        popcount8(idx[static_cast<std::size_t>(
                            row * groups_per_row + g)]));
                }
                sync_total += worst;
                ++sync_steps;
            }
        }
    }
    stats.sync_cycles_per_group = sync_steps > 0
        ? sync_total / static_cast<double>(sync_steps)
        : stats.mean_cycles_per_group;
    return stats;
}

}  // namespace

// ---- Word-parallel tail (the packed path) -------------------------------
//
// The per-(row, group) masks are bytes, so eight groups process per
// 64-bit word: popcounts via the classic SWAR ladder, and the lockstep
// max-reduction as a per-byte unsigned maximum accumulated over the Ku
// kernels of a tile (each kernel's rows_per_kernel x groups block is
// contiguous in the mask array). All partial sums are exact integers,
// so the result is bit-identical to the scalar tail above, which stays
// behind column_cycle_stats_scalar as the oracle.

namespace {

/// Per-byte popcount of 8 packed masks.
inline std::uint64_t
popcount_bytes(std::uint64_t v)
{
    v = v - ((v >> 1) & 0x5555555555555555ULL);
    v = (v & 0x3333333333333333ULL) +
        ((v >> 2) & 0x3333333333333333ULL);
    return (v + (v >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
}

/// Per-byte unsigned max; valid while every byte is < 0x80 (group
/// popcounts are <= 8).
inline std::uint64_t
bytemax(std::uint64_t x, std::uint64_t y)
{
    const std::uint64_t kHi = 0x8080808080808080ULL;
    // Byte b of ge is 1 exactly when x_b >= y_b.
    const std::uint64_t ge = (((x | kHi) - y) & kHi) >> 7;
    const std::uint64_t mask = (ge * 0x7FULL) | (ge << 7);
    return (x & mask) | (y & ~mask);
}

/// Unaligned 8-byte load / store.
inline std::uint64_t
load_u64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

inline void
store_u64(std::uint8_t *p, std::uint64_t v)
{
    std::memcpy(p, &v, sizeof v);
}

ColumnCycleStats
cycle_stats_from_indexes_swar(const std::vector<std::uint8_t> &idx,
                              const LayerDesc &desc, std::int64_t rows,
                              std::int64_t groups_per_row,
                              std::int64_t ku)
{
    ColumnCycleStats stats;
    const bool has_c_axis = desc.kind != LayerKind::kDepthwiseConv;

    // Per-mask popcounts, eight masks per word (zero-padded tail).
    // Padded by a word so the per-block SWAR loops below may read (but
    // never sum) up to 7 bytes past any block boundary.
    const std::size_t n = idx.size();
    std::vector<std::uint8_t> pc(((n + 7) & ~std::size_t{7}) + 8);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        store_u64(pc.data() + i, popcount_bytes(load_u64(idx.data() + i)));
    }
    for (; i < n; ++i) {
        pc[i] = static_cast<std::uint8_t>(popcount8(idx[i]));
    }

    // Mean occupancy + histogram (sums of small integers: exact).
    std::int64_t total_nz = 0;
    for (std::size_t g = 0; g < n; ++g) {
        total_nz += pc[g];
        ++stats.occupancy_hist[pc[g]];
    }
    stats.groups = rows * groups_per_row;
    stats.mean_cycles_per_group = stats.groups > 0
        ? static_cast<double>(total_nz) / static_cast<double>(stats.groups)
        : 0.0;

    // Lockstep occupancy: per-byte max over the kernels of each Ku
    // tile. Kernel k's (rows_per_kernel x groups_per_row) block is
    // contiguous, so the reduction is a running byte-max of blocks.
    const std::int64_t k_rows = has_c_axis ? desc.k : 1;
    const std::int64_t f_rows = has_c_axis
        ? rows / std::max<std::int64_t>(k_rows, 1) : 1;
    const std::size_t block =
        static_cast<std::size_t>(f_rows * groups_per_row);
    std::vector<std::uint8_t> worst(((block + 7) & ~std::size_t{7}) + 8);
    std::int64_t sync_total = 0;
    std::int64_t sync_steps = 0;
    for (std::int64_t k0 = 0; k0 < k_rows; k0 += ku) {
        const std::int64_t k1 = std::min<std::int64_t>(k0 + ku, k_rows);
        std::memcpy(worst.data(),
                    pc.data() + static_cast<std::size_t>(k0) * block,
                    block);
        for (std::int64_t k = k0 + 1; k < k1; ++k) {
            const std::uint8_t *src =
                pc.data() + static_cast<std::size_t>(k) * block;
            for (std::size_t b = 0; b < block; b += 8) {
                store_u64(worst.data() + b,
                          bytemax(load_u64(worst.data() + b),
                                  load_u64(src + b)));
            }
        }
        for (std::size_t b = 0; b < block; ++b) {
            sync_total += worst[b];
        }
        sync_steps += static_cast<std::int64_t>(block);
    }
    stats.sync_cycles_per_group = sync_steps > 0
        ? static_cast<double>(sync_total) /
            static_cast<double>(sync_steps)
        : stats.mean_cycles_per_group;
    return stats;
}

}  // namespace

ColumnCycleStats
column_cycle_stats(const BitPlanes &planes, const LayerDesc &desc,
                   int group_size, std::int64_t ku)
{
    if (group_size < 1 || ku < 1) {
        fatal("column_cycle_stats: group_size and ku must be >= 1");
    }
    // Weights are C-innermost: view as [rows, C] with rows = K*FY*FX
    // (or [1, numel] for layouts without a C axis, e.g. depthwise).
    const bool has_c_axis = desc.kind != LayerKind::kDepthwiseConv;
    const std::int64_t c_len = has_c_axis ? desc.c : planes.n;
    const std::int64_t rows = has_c_axis && c_len > 0
        ? planes.n / c_len : 1;
    const std::int64_t groups_per_row = ceil_div(c_len, group_size);

    std::vector<std::uint8_t> idx(
        static_cast<std::size_t>(rows * groups_per_row));
    if (planes.n > 0) {
        scan_group_indexes(planes, c_len, group_size, idx.data());
    }
    return cycle_stats_from_indexes_swar(idx, desc, rows, groups_per_row,
                                         ku);
}

ColumnCycleStats
column_cycle_stats(const Int8Tensor &weights, const LayerDesc &desc,
                   int group_size, std::int64_t ku, Representation repr)
{
    return column_cycle_stats(pack_bitplanes(weights, repr), desc,
                              group_size, ku);
}

ColumnCycleStats
column_cycle_stats_scalar(const Int8Tensor &weights, const LayerDesc &desc,
                          int group_size, std::int64_t ku,
                          Representation repr)
{
    if (group_size < 1 || ku < 1) {
        fatal("column_cycle_stats: group_size and ku must be >= 1");
    }
    const bool has_c_axis = desc.kind != LayerKind::kDepthwiseConv;
    const std::int64_t c_len = has_c_axis ? desc.c : weights.numel();
    const std::int64_t rows = has_c_axis && c_len > 0
        ? weights.numel() / c_len : 1;
    const std::int64_t groups_per_row = ceil_div(c_len, group_size);

    std::vector<std::uint8_t> idx(
        static_cast<std::size_t>(rows * groups_per_row));
    for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t g = 0; g < groups_per_row; ++g) {
            const std::int64_t start = r * c_len + g * group_size;
            const std::int64_t len =
                std::min<std::int64_t>(group_size, c_len - g * group_size);
            idx[static_cast<std::size_t>(r * groups_per_row + g)] =
                column_index({weights.data() + start,
                              static_cast<std::size_t>(len)},
                             repr);
        }
    }
    return cycle_stats_from_indexes(idx, desc, rows, groups_per_row, ku);
}

double
bit_serial_sync_cycles(const Int8Tensor &weights, std::int64_t lanes,
                       Representation repr)
{
    if (lanes < 1) {
        fatal("bit_serial_sync_cycles: lanes must be >= 1");
    }
    const std::int64_t n = weights.numel();
    double total = 0.0;
    std::int64_t steps = 0;
    for (std::int64_t start = 0; start < n; start += lanes) {
        const std::int64_t end = std::min<std::int64_t>(start + lanes, n);
        int worst = 0;
        for (std::int64_t i = start; i < end; ++i) {
            const std::uint8_t enc =
                repr == Representation::kTwosComplement
                ? static_cast<std::uint8_t>(weights[i])
                : to_sign_magnitude(weights[i]);
            worst = std::max(worst, popcount8(enc));
        }
        total += worst;
        ++steps;
    }
    return steps > 0 ? total / static_cast<double>(steps) : 0.0;
}

double
bit_interleave_cycles(const Int8Tensor &weights, std::int64_t window,
                      Representation repr)
{
    if (window < 1) {
        fatal("bit_interleave_cycles: window must be >= 1");
    }
    const std::int64_t n = weights.numel();
    double total = 0.0;
    std::int64_t steps = 0;
    for (std::int64_t start = 0; start < n; start += window) {
        const std::int64_t end = std::min<std::int64_t>(start + window, n);
        int per_significance[8] = {};
        for (std::int64_t i = start; i < end; ++i) {
            const std::uint8_t enc =
                repr == Representation::kTwosComplement
                ? static_cast<std::uint8_t>(weights[i])
                : to_sign_magnitude(weights[i]);
            for (int b = 0; b < 8; ++b) {
                per_significance[b] += (enc >> b) & 1;
            }
        }
        total += *std::max_element(per_significance, per_significance + 8);
        ++steps;
    }
    return steps > 0 ? total / static_cast<double>(steps) : 0.0;
}

double
activation_spill_fraction(std::int64_t elements,
                          const MemoryHierarchy &mem)
{
    const double cap = static_cast<double>(mem.act_sram_bytes) * 8.0;
    const double bits = static_cast<double>(elements) * kWordBits;
    return bits > cap ? (bits - cap) / bits : 0.0;
}

AccessCounts
compute_access_counts(const LayerDesc &desc, const SpatialUnrolling &su,
                      const MemoryHierarchy &mem,
                      const CompressionFactors &cf,
                      const ExecutionProfile &exec)
{
    AccessCounts out;

    const double weight_bits =
        static_cast<double>(desc.weight_count()) * kWordBits;
    const double in_bits =
        static_cast<double>(desc.input_count()) * kWordBits;
    const double out_bits =
        static_cast<double>(desc.output_count()) * kWordBits;
    const double macs = static_cast<double>(desc.macs());
    const double util = std::max(exec.utilization, 1e-6);

    // Off-chip: weights cross DRAM once per layer; once more per
    // activation tile when neither the (compressed) weights nor the input
    // can stay resident. Activations move only when not resident on chip.
    const double w_stored = weight_bits * cf.weight_fetch_ratio;
    double weight_passes = 1.0;
    if (w_stored > static_cast<double>(mem.weight_sram_bytes) * 8 &&
        in_bits > static_cast<double>(mem.act_sram_bytes) * 8) {
        weight_passes = std::ceil(
            in_bits / (static_cast<double>(mem.act_sram_bytes) * 8));
    }
    out.dram_read_weight_bits = w_stored * weight_passes;
    out.dram_read_act_bits =
        in_bits * cf.act_fetch_ratio * exec.input_dram_fraction;
    out.dram_write_act_bits =
        out_bits * cf.act_store_ratio * exec.output_dram_fraction;

    // On-chip SRAM. Bit-serial machines pull the active weight port
    // width every compute cycle (skipped columns are never fetched);
    // weight-stationary machines fetch each weight once into PE
    // registers and spill 32b partial sums across input-channel tiles.
    // Activations: one operand fetch per MAC, amortized over the kernel
    // broadcast (Ku lanes share an activation) and inflated by spatial
    // under-utilization (idle lanes still burn fetch bandwidth).
    const double k_reuse = static_cast<double>(su.factor(Dim::kK));
    out.sram_read_act_bits =
        macs * kWordBits / k_reuse / util * cf.act_sram_overhead;
    out.sram_write_act_bits = out_bits + out.dram_read_act_bits;
    if (exec.weight_stationary) {
        out.sram_read_weight_bits =
            weight_bits * cf.weight_sram_overhead * weight_passes;
        const double psum_spills = exec.psum_in_accumulators
            ? 0.0
            : static_cast<double>(
                  std::max<std::int64_t>(exec.c_tiles, 1) - 1);
        const double psum_bits = out_bits * 4.0 * psum_spills;
        out.sram_read_act_bits += psum_bits;   // re-read for accumulate
        out.sram_write_act_bits += psum_bits;  // spill
    } else if (exec.weight_stream_bits > 0.0) {
        out.sram_read_weight_bits = exec.weight_stream_bits;
    } else {
        out.sram_read_weight_bits = exec.compute_cycles *
            exec.weight_port_active_bits * cf.weight_sram_overhead;
    }
    out.sram_write_weight_bits = out.dram_read_weight_bits;

    // Registers: two operand reads and one accumulator write per MAC.
    out.reg_read_words = 2.0 * macs;
    out.reg_write_words = macs;
    return out;
}

}  // namespace bitwave
