/**
 * @file
 * ZigZag-lite mapping analysis: per-layer compute-cycle and memory-access
 * counts (the Table II quantities) for a layer mapped onto an accelerator
 * dataflow. This is the analytical substrate both the SotA models
 * (Section V-B) and the BitWave performance model build on.
 */
#pragma once

#include <cstdint>

#include "dataflow/su.hpp"
#include "nn/workload.hpp"
#include "sparsity/stats.hpp"
#include "tensor/tensor.hpp"

namespace bitwave {

/**
 * Bit-column execution statistics of one layer's weights.
 *
 * `mean_cycles_per_group` is the average number of non-zero columns per
 * weight group (the cycles an isolated BCE needs per 8b weight pass).
 * `sync_cycles_per_group` accounts for lane synchronization: the Ku
 * kernels advancing in lockstep must all wait for the slowest group, so
 * the effective cycle count is the mean of per-tile maxima. Bit-Flip
 * equalizes group occupancy, closing the gap between the two.
 */
struct ColumnCycleStats
{
    double mean_cycles_per_group = 8.0;
    double sync_cycles_per_group = 8.0;
    std::int64_t groups = 0;
    /// Count of groups with exactly nz non-zero columns, nz in 0..8.
    std::int64_t occupancy_hist[9] = {};

    /**
     * Mean cycles per group when @p bit_columns columns are consumed per
     * cycle with whole-cycle granularity: E[max(1, ceil(nz / bc))]. This
     * is what the SU4-SU6 four-column datapath actually achieves and what
     * the cycle-level simulator counts.
     */
    double mean_ceil_cycles(int bit_columns) const;
};

/**
 * Analyze @p weights (C-innermost layout) for group size @p group_size
 * with @p ku kernels synchronized in lockstep.
 *
 * @param repr Representation whose zero columns are skippable.
 *
 * The tensor overload packs bit planes internally; pass pre-packed
 * planes (e.g. the shared content-hash cache) to amortize the pack
 * across scenarios sweeping the same weights.
 */
ColumnCycleStats column_cycle_stats(const Int8Tensor &weights,
                                    const LayerDesc &desc, int group_size,
                                    std::int64_t ku, Representation repr);
ColumnCycleStats column_cycle_stats(const BitPlanes &planes,
                                    const LayerDesc &desc, int group_size,
                                    std::int64_t ku);

/// Element-at-a-time oracle for the packed analysis (tests / bench).
ColumnCycleStats column_cycle_stats_scalar(const Int8Tensor &weights,
                                           const LayerDesc &desc,
                                           int group_size, std::int64_t ku,
                                           Representation repr);

/**
 * Per-weight-word bit-serial statistics for accelerators that skip zero
 * *bits* (not columns): Pragmatic-style, synchronizing @p lanes lanes.
 * Returns mean max-popcount per synchronized lane set.
 */
double bit_serial_sync_cycles(const Int8Tensor &weights, std::int64_t lanes,
                              Representation repr);

/**
 * Bitlet-style bit-interleaving statistics: weights are processed in
 * windows of @p window words; each window costs cycles equal to the
 * maximum per-significance occupancy (the number of words carrying a
 * non-zero bit at the worst bit position), the sync bottleneck the paper
 * ascribes to Bitlet on large arrays.
 */
double bit_interleave_cycles(const Int8Tensor &weights, std::int64_t window,
                             Representation repr);

/// On-chip/off-chip capacities and port widths of the modeled hierarchy.
struct MemoryHierarchy
{
    std::int64_t weight_sram_bytes = 256 * 1024;
    std::int64_t act_sram_bytes = 256 * 1024;
    std::int64_t weight_port_bits = 1024;  ///< SRAM->PE weight bandwidth.
    std::int64_t act_port_bits = 1024;     ///< SRAM->PE activation bandwidth.
    std::int64_t dram_bits_per_cycle = 64; ///< DDR channel width.
};

/**
 * Table II activity counts of one layer (all in native units noted
 * per-field). Effective counts: compression already applied.
 */
struct AccessCounts
{
    // Off-chip transfers, in bits.
    double dram_read_weight_bits = 0.0;
    double dram_read_act_bits = 0.0;
    double dram_write_act_bits = 0.0;
    // On-chip SRAM traffic, in bits.
    double sram_read_weight_bits = 0.0;
    double sram_read_act_bits = 0.0;
    double sram_write_act_bits = 0.0;
    double sram_write_weight_bits = 0.0;  ///< DRAM refill traffic.
    // Register file accesses, per operand word.
    double reg_read_words = 0.0;
    double reg_write_words = 0.0;

    double dram_total_bits() const
    {
        return dram_read_weight_bits + dram_read_act_bits +
            dram_write_act_bits;
    }
};

/// Compression factors applied when moving each tensor.
struct CompressionFactors
{
    double weight_fetch_ratio = 1.0;  ///< Stored/fetched bits per 8 bits
                                      ///< crossing DRAM.
    double act_fetch_ratio = 1.0;     ///< Same for input activations.
    double act_store_ratio = 1.0;     ///< Same for output activations.
    /// On-chip traffic multiplier for the weight port (sparse-encoding
    /// index overhead, or skipped-fetch savings for value-sparse PEs).
    double weight_sram_overhead = 1.0;
    /// On-chip traffic multiplier for the activation port.
    double act_sram_overhead = 1.0;
};

/// Execution-dependent inputs to the access-count model.
struct ExecutionProfile
{
    double utilization = 1.0;  ///< Spatial PE utilization of the mapping.
    double compute_cycles = 0.0;  ///< Array-occupied cycles.
    /// Weight bits the array pulls from SRAM each compute cycle (the
    /// Table I "W BW"). Bit-serial machines re-stream the serialized
    /// weight operand continuously, so SRAM weight traffic =
    /// cycles x this width.
    double weight_port_active_bits = 0.0;
    /// Explicit weight-stream volume in bits: the compressed columns
    /// plus per-group index, charged ONCE per layer sweep (the
    /// fetcher's double buffer holds the active tile across temporal
    /// revisits). When > 0 it replaces the port-based accounting above
    /// — the BCS machines stream exactly their compressed weights,
    /// nothing more (and the weight port can be the Eq. 5 bottleneck
    /// when the stream outruns it).
    double weight_stream_bits = 0.0;
    /// Weight-stationary (bit-parallel) machines instead fetch each
    /// weight once into PE registers and pay partial-sum re-accumulation
    /// traffic across input-channel tiles.
    bool weight_stationary = false;
    /// Number of input-channel tiles (ceil(C / Cu)); > 1 means partial
    /// sums spill to SRAM between tiles on weight-stationary machines.
    std::int64_t c_tiles = 1;
    /// Partial sums accumulate in dedicated accumulator banks next to
    /// the PEs (SCNN's crossbar-fed accumulator SRAM) instead of
    /// round-tripping the activation SRAM across input-channel tiles.
    bool psum_in_accumulators = false;
    /// Fraction of the input feature map read from DRAM: 1 for the
    /// network input, 0 for a resident intermediate map, and the
    /// non-resident excess share for layer-sequential machines whose
    /// map exceeds the activation SRAM (partial spill).
    double input_dram_fraction = 1.0;
    /// Same for the output feature map (last layer / spilled share).
    double output_dram_fraction = 1.0;
};

/**
 * Share of a feature map of @p elements 8b words that cannot stay
 * resident in @p mem's activation SRAM — the fraction a
 * layer-sequential schedule spills to DRAM (0 when the map fits).
 * The single definition of the residency rule both
 * AcceleratorModel::model_layer and search's mapping_cost apply, so
 * the Eq. (4)/(5) mirror cannot drift.
 */
double activation_spill_fraction(std::int64_t elements,
                                 const MemoryHierarchy &mem);

/**
 * Compute the per-layer access counts for @p desc under @p su and
 * hierarchy @p mem, with compression @p cf and execution @p exec.
 *
 * Model (output-stationary, double-buffered):
 *  - weights cross DRAM once per layer in stored (compressed) form, once
 *    more per activation tile when neither fits on chip; activations
 *    cross DRAM only per the residency flags in @p exec;
 *  - bit-serial weight SRAM reads pay the active weight-port width every
 *    compute cycle (the weight operand is the serialized stream; skipped
 *    bit columns are never fetched); weight-stationary machines fetch
 *    each weight once and pay 32b partial-sum spills across C tiles;
 *  - activation SRAM reads are per-MAC operand fetches divided by the
 *    kernel broadcast factor Ku and inflated by spatial under-utilization
 *    — the "reduced spatial data reuse" penalty of Fig. 15;
 *  - every MAC reads two register operands and writes one accumulator.
 */
AccessCounts compute_access_counts(const LayerDesc &desc,
                                   const SpatialUnrolling &su,
                                   const MemoryHierarchy &mem,
                                   const CompressionFactors &cf,
                                   const ExecutionProfile &exec);

}  // namespace bitwave
