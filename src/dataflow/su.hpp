/**
 * @file
 * Spatial unrolling (SU) definitions — Section IV-C, Table I.
 *
 * An SU assigns a per-cycle parallelization factor to each loop dimension
 * of the layer nest. BitWave's PE array holds 4096 1b x 8b sign-magnitude
 * multipliers (= 512 8b x 8b bit-parallel equivalents) and supports seven
 * SU configurations selected per layer at runtime; bandwidth requirements
 * follow from the factors (weight bits/cycle = Cu * Ku, activation
 * bits/cycle = 8 * Cu * OXu).
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace bitwave {

/// Loop dimensions a spatial unrolling can parallelize.
enum class Dim { kK, kC, kOX, kOY, kFX, kFY };

/// Name of a dimension ("K", "C", ...).
const char *dim_name(Dim dim);

/// Size of dimension @p dim in layer @p desc.
std::int64_t layer_dim(const LayerDesc &desc, Dim dim);

/// One spatial unrolling configuration.
struct SpatialUnrolling
{
    std::string name;
    /// Unroll factor per dimension; absent dimensions are factor 1.
    std::map<Dim, std::int64_t> factors;
    /// Restrict this SU to depthwise layers (Table I's SU7).
    bool depthwise_only = false;
    /**
     * Weight-bit columns processed per cycle (Bw,u). Table I's SU4-SU6
     * unroll only 1024 operand positions spatially and recover the full
     * 4096-SMM budget by consuming 4 bit columns per cycle; SU1-SU3 take
     * one column per cycle.
     */
    int bit_columns = 1;

    /// Unroll factor for @p dim (1 when absent).
    std::int64_t factor(Dim dim) const;

    /// Operand-position lanes (product of factors, excluding bit columns).
    std::int64_t lanes() const;

    /// Total multiplier lanes including bit-column parallelism.
    std::int64_t total_lanes() const { return lanes() * bit_columns; }

    /// Weight bits fetched per cycle (1 bit per weight lane: Cu * Ku).
    std::int64_t weight_bandwidth_bits() const;

    /// Activation bits fetched per cycle (8 bits x Cu x OXu x OYu).
    std::int64_t activation_bandwidth_bits() const;

    /**
     * BCS column group size implied by this SU: the input-channel (C)
     * unrolling for standard layers, the G unrolling for the depthwise
     * SU7. Matches the hardware-supported group sizes {8, 16, 32, 64}.
     */
    std::int64_t group_size() const;
};

/**
 * The seven BitWave SUs of Table I. SU7 maps its Gu = 64 onto the channel
 * (K) dimension of depthwise layers.
 */
const std::vector<SpatialUnrolling> &bitwave_sus();

/// Fixed single-SU baselines used by Fig. 9 for a given PE lane budget.
/// @p lanes must be 4096 (bit-serial array) or 512 (bit-parallel array).
std::vector<SpatialUnrolling> fixed_su_baselines(std::int64_t lanes);

/// The dense reference SU of Fig. 13 ([Ku = 64, Cu = 64]).
SpatialUnrolling dense_reference_su();

/**
 * Spatial utilization of @p desc under @p su: the fraction of PE lanes
 * doing useful work, i.e. prod_d (d / (ceil(d / f_d) * f_d)).
 * Dimensions the layer lacks (e.g. C for depthwise under a Cu unrolling)
 * contribute their full underutilization, the Fig. 9 effect.
 */
double spatial_utilization(const LayerDesc &desc, const SpatialUnrolling &su);

/**
 * Temporal iteration count: cycles (per weight-bit pass) needed to sweep
 * the whole layer, i.e. prod_d ceil(d / f_d) over all 6 dims plus batch.
 */
std::int64_t temporal_iterations(const LayerDesc &desc,
                                 const SpatialUnrolling &su);

/**
 * Normalize a layer for dataflow mapping: fully-connected and LSTM
 * layers expose their token/timestep batch as the OX dimension (the
 * im2col view every spatial accelerator uses for matmuls), so OXu
 * parallelism applies to them.
 */
LayerDesc normalized_for_mapping(const LayerDesc &desc);

/**
 * Pick the SU with the highest spatial utilization for @p desc from
 * @p candidates (ties broken toward the first candidate). Depthwise-only
 * SUs are skipped for non-depthwise layers and preferred for depthwise.
 * This is the offline ZigZag selection the top controller replays
 * per layer (Section IV-C).
 */
const SpatialUnrolling &select_su(const LayerDesc &desc,
                                  const std::vector<SpatialUnrolling>
                                      &candidates);

}  // namespace bitwave
