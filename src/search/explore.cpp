#include "search/explore.hpp"

#include <algorithm>
#include <utility>

#include "common/logging.hpp"
#include "energy/breakdown.hpp"
#include "eval/scenario.hpp"
#include "nn/layer.hpp"

namespace bitwave::search {

namespace {

/// Short policy suffix for design names.
const char *
policy_tag(MappingPolicy policy)
{
    return policy == MappingPolicy::kCostAware ? "cost" : "util";
}

/// Ku-scaled copy of one Table I SU for a different SMM budget.
SpatialUnrolling
scaled_su(const SpatialUnrolling &su, std::int64_t budget)
{
    SpatialUnrolling out = su;
    const std::int64_t scale_num = budget;
    const std::int64_t scale_den = 4096;
    // Scale the K unrolling (SU7 scales its OX instead: its K carries
    // the depthwise channels and its bit columns are already maxed).
    const Dim dim = su.depthwise_only ? Dim::kOX : Dim::kK;
    const std::int64_t f = su.factor(dim);
    out.factors[dim] =
        std::max<std::int64_t>(1, f * scale_num / scale_den);
    return out;
}

/// The two uniform-group-size SUs of one Cu: a 1-column SU1-style
/// geometry (Ku = 32) and a 4-column SU4-style geometry (OXu = 1),
/// both filling the 4096-SMM budget within the Table I port envelope.
std::vector<SpatialUnrolling>
uniform_group_sus(int cu)
{
    std::vector<SpatialUnrolling> v;
    const std::int64_t c = cu;
    const std::int64_t ox1 = 4096 / (c * 32);
    if (ox1 >= 1) {
        SpatialUnrolling one{
            "C" + std::to_string(cu) + "x1c",
            {{Dim::kC, c}, {Dim::kOX, ox1}, {Dim::kK, 32}}};
        v.push_back(std::move(one));
    }
    const std::int64_t ku4 = 1024 / c;
    if (ku4 >= 8) {
        SpatialUnrolling four{
            "C" + std::to_string(cu) + "x4c",
            {{Dim::kC, c}, {Dim::kOX, 1}, {Dim::kK, ku4}}};
        four.bit_columns = 4;
        v.push_back(std::move(four));
    }
    return v;
}

/// Raw bytes of the active Ku-tile of @p desc under @p su.
std::int64_t
ku_tile_bytes(const LayerDesc &desc, const SpatialUnrolling &su)
{
    const WeightRowGeometry geom = weight_row_geometry(desc);
    const std::int64_t ku =
        std::min<std::int64_t>(su.factor(Dim::kK), desc.k);
    return ku * geom.rows_per_kernel * geom.row_len;
}

}  // namespace

std::vector<DesignPoint>
enumerate_design_points(const ExploreSpec &spec)
{
    std::vector<DesignPoint> out;
    const auto &sus = bitwave_sus();  // SU1..SU6 + depthwise SU7.

    const auto add = [&](DesignPoint d) { out.push_back(std::move(d)); };

    // --- The canonical Table I design, always present --------------------
    for (MappingPolicy policy : spec.policies) {
        DesignPoint d;
        d.dataflows = sus;
        d.su_set = "TableI";
        d.table1_su_set = true;
        d.policy = policy;
        d.name = d.su_set + "/" + policy_tag(policy);
        add(std::move(d));
    }

    // --- Family A: subsets of the Table I SU set -------------------------
    if (spec.su_subsets) {
        for (int with_su7 = 1; with_su7 >= 0; --with_su7) {
            for (unsigned mask = 1; mask < 64; ++mask) {
                if (mask == 63 && with_su7 == 1) {
                    continue;  // The canonical Table I point above.
                }
                for (MappingPolicy policy : spec.policies) {
                    DesignPoint d;
                    std::string set;
                    for (int i = 0; i < 6; ++i) {
                        if (mask & (1u << i)) {
                            d.dataflows.push_back(sus[
                                static_cast<std::size_t>(i)]);
                            set += (set.empty() ? "SU" : "+SU") +
                                std::to_string(i + 1);
                        }
                    }
                    if (with_su7) {
                        d.dataflows.push_back(sus[6]);
                        set += "+SU7";
                    }
                    d.su_set = set;
                    d.policy = policy;
                    d.name = d.su_set + "/" + policy_tag(policy);
                    add(std::move(d));
                }
            }
        }
    }

    // --- Family B: uniform-group-size sets (the {8,16,32,64} axis) ------
    for (int g : spec.group_sizes) {
        const auto members = uniform_group_sus(g);
        if (members.empty()) {
            continue;
        }
        for (MappingPolicy policy : spec.policies) {
            DesignPoint set;
            set.dataflows = members;
            set.su_set = "G" + std::to_string(g);
            set.policy = policy;
            set.name = set.su_set + "/" + policy_tag(policy);
            add(std::move(set));
            for (const auto &member : members) {
                DesignPoint single;
                single.dataflows = {member};
                single.su_set = member.name;
                single.policy = policy;
                single.name = member.name + "/" + policy_tag(policy);
                add(std::move(single));
            }
        }
    }

    // --- Family C: weight-buffer sweep on the Table I set ----------------
    for (std::int64_t bytes : spec.weight_sram_options) {
        if (bytes == 256 * 1024) {
            continue;  // The family-A Table I point already covers it.
        }
        for (MappingPolicy policy : spec.policies) {
            DesignPoint d;
            d.dataflows = sus;
            d.su_set = "TableI";
            d.table1_su_set = true;
            d.weight_sram_bytes = bytes;
            d.policy = policy;
            d.name = "TableI/w" + std::to_string(bytes / 1024) + "K/" +
                policy_tag(policy);
            add(std::move(d));
        }
    }

    // --- Family D: SMM budget splits (Ku-scaled Table I sets) ------------
    for (std::int64_t budget : spec.smm_budgets) {
        if (budget == 4096) {
            continue;
        }
        for (MappingPolicy policy : spec.policies) {
            DesignPoint d;
            for (const auto &su : sus) {
                d.dataflows.push_back(scaled_su(su, budget));
            }
            d.su_set = "TableI@" + std::to_string(budget);
            d.smm_budget = budget;
            // The weight buffer scales with the array so the active
            // Ku-tile stays resident (the feasibility rule below).
            d.weight_sram_bytes = std::max<std::int64_t>(
                64 * 1024, 256 * 1024 * budget / 4096);
            d.policy = policy;
            d.name = d.su_set + "/" + policy_tag(policy);
            add(std::move(d));
        }
    }

    return out;
}

AcceleratorConfig
design_accelerator(const DesignPoint &design)
{
    AcceleratorConfig c = make_bitwave(BitWaveVariant::kDfSm);
    c.name = design.name;
    c.dataflows = design.dataflows;
    c.mapping_policy = design.policy;
    c.memory.weight_sram_bytes = design.weight_sram_bytes;
    c.memory.act_sram_bytes = design.act_sram_bytes;
    return c;
}

bool
design_feasible(const DesignPoint &design,
                const std::vector<Workload> &skeletons)
{
    for (const Workload &w : skeletons) {
        for (const WorkloadLayer &layer : w.layers) {
            const LayerDesc desc = normalized_for_mapping(layer.desc);
            const bool depthwise =
                desc.kind == LayerKind::kDepthwiseConv;
            std::int64_t best = -1;
            for (const auto &su : design.dataflows) {
                if (su.depthwise_only && !depthwise) {
                    continue;
                }
                const std::int64_t tile = ku_tile_bytes(desc, su);
                if (best < 0 || tile < best) {
                    best = tile;
                }
            }
            if (best < 0 || best > design.weight_sram_bytes) {
                return false;
            }
        }
    }
    return true;
}

double
design_area_mm2(const DesignPoint &design, const TechParams &tech)
{
    BitWaveConfig chip;
    chip.bce_count =
        static_cast<int>(design.smm_budget / 8);  // 8 SMMs per BCE.
    chip.zcip_parsers = std::max<int>(
        1, static_cast<int>(design.smm_budget / 32));
    chip.weight_sram_bytes = design.weight_sram_bytes;
    chip.act_sram_bytes = design.act_sram_bytes;
    return bitwave_chip_budget(tech, chip).total_area_mm2();
}

bool
dominates(const DesignEval &a, const DesignEval &b)
{
    if (a.total_cycles > b.total_cycles || a.energy_pj > b.energy_pj ||
        a.area_mm2 > b.area_mm2) {
        return false;
    }
    return a.total_cycles < b.total_cycles || a.energy_pj < b.energy_pj ||
        a.area_mm2 < b.area_mm2;
}

std::vector<std::size_t>
mark_pareto_front(std::vector<DesignEval> &evals)
{
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < evals.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < evals.size() && !dominated; ++j) {
            dominated = j != i && dominates(evals[j], evals[i]);
        }
        evals[i].pareto = !dominated;
        if (!dominated) {
            front.push_back(i);
        }
    }
    return front;
}

std::vector<DesignEval>
explore_designs(const ExploreSpec &spec, const eval::RunnerOptions &options,
                std::vector<DesignPoint> *infeasible)
{
    if (spec.workloads.empty()) {
        fatal("explore_designs: no workloads in spec");
    }
    std::vector<Workload> skeletons;
    skeletons.reserve(spec.workloads.size());
    for (WorkloadId id : spec.workloads) {
        skeletons.push_back(build_workload_skeleton(id));
    }

    std::vector<DesignPoint> feasible;
    for (auto &design : enumerate_design_points(spec)) {
        if (design_feasible(design, skeletons)) {
            feasible.push_back(std::move(design));
        } else if (infeasible != nullptr) {
            infeasible->push_back(std::move(design));
        }
    }

    // One analytical Scenario per (design, workload), in enumeration
    // order — the batch position fixes every derived seed, so the
    // results are independent of the runner's thread count.
    std::vector<eval::Scenario> scenarios;
    scenarios.reserve(feasible.size() * spec.workloads.size());
    for (const auto &design : feasible) {
        for (WorkloadId id : spec.workloads) {
            eval::Scenario s;
            s.label = design.name + "/" + workload_name(id);
            s.engine = eval::EngineKind::kAnalytical;
            s.accel = design_accelerator(design);
            s.workload = id;
            scenarios.push_back(std::move(s));
        }
    }
    const auto results = eval::ScenarioRunner(options).run(scenarios);

    std::vector<DesignEval> evals;
    evals.reserve(feasible.size());
    for (std::size_t i = 0; i < feasible.size(); ++i) {
        DesignEval e;
        e.design = feasible[i];
        e.area_mm2 = design_area_mm2(e.design);
        for (std::size_t k = 0; k < spec.workloads.size(); ++k) {
            const auto &r = results[i * spec.workloads.size() + k];
            e.workload_cycles.push_back(r.total_cycles);
            e.total_cycles += r.total_cycles;
            e.energy_pj += r.energy.total_pj;
        }
        evals.push_back(std::move(e));
    }
    mark_pareto_front(evals);
    return evals;
}

}  // namespace bitwave::search
