/**
 * @file
 * Design-space exploration (DSE) over BitWave hardware configurations —
 * the first subsystem that *searches* the hardware space instead of
 * replaying the paper's fixed design points.
 *
 * A DesignPoint is one buildable NPU instance: a set of spatial
 * unrollings (the runtime-reconfigurable dataflows of Table I, a subset
 * of them, or a uniform-group-size alternative), an SMM budget (array
 * size), weight-buffer capacity, and the mapping policy driving the
 * per-layer SU choice. The explorer
 *
 *   1. enumerates design points from an ExploreSpec (SU subsets, group
 *      sizes {8, 16, 32, 64}, SMM budget splits, buffer sizes, both
 *      mapping policies),
 *   2. prunes designs whose weight buffer cannot hold the active
 *      Ku-tile of some layer (the residency assumption the latency
 *      model's once-per-sweep stream accounting relies on),
 *   3. evaluates each feasible design on the spec's workloads as
 *      analytical-model Scenarios fanned out through the thread-pool
 *      eval::ScenarioRunner (deterministic batch order, so N-thread runs
 *      are bit-identical to 1-thread runs), and
 *   4. reduces the results to a pareto front over (latency, energy,
 *      area) with dominated-point pruning.
 *
 * The paper's Table I configuration is enumerated as the full-SU-set
 * design at the published 4096-SMM / 256 KB geometry; the dse_pareto
 * bench asserts it lands on the front.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "energy/tech.hpp"
#include "eval/runner.hpp"
#include "model/accelerator.hpp"
#include "nn/workloads.hpp"
#include "search/cost.hpp"

namespace bitwave::search {

/// One buildable hardware configuration.
struct DesignPoint
{
    std::string name;      ///< Unique display name.
    std::string su_set;    ///< SU-set label ("TableI", "SU1+SU4", "G64").
    std::vector<SpatialUnrolling> dataflows;
    std::int64_t smm_budget = 4096;  ///< 1b x 8b multipliers.
    std::int64_t weight_sram_bytes = 256 * 1024;
    std::int64_t act_sram_bytes = 256 * 1024;
    MappingPolicy policy = MappingPolicy::kCostAware;
    /// This is the paper's Table I SU set (any buffer/policy variant).
    bool table1_su_set = false;
};

/// What to enumerate. The defaults reproduce the dse_pareto bench's
/// space (>= 200 points before feasibility pruning).
struct ExploreSpec
{
    std::vector<WorkloadId> workloads = {WorkloadId::kResNet18,
                                         WorkloadId::kBertBase};
    /// Enumerate every non-empty subset of SU1-SU6 (with and without
    /// SU7) under each policy. The full set is the Table I design.
    bool su_subsets = true;
    /// Uniform-group-size SU sets (one 1-column and one 4-column SU of
    /// the same Cu), per group size, plus each member alone.
    std::vector<int> group_sizes = {8, 16, 32, 64};
    /// SMM budgets beside 4096 (Ku-scaled Table I sets; the weight
    /// buffer scales with the array so the active tile stays resident).
    std::vector<std::int64_t> smm_budgets = {1024, 2048, 8192};
    /// Weight-buffer capacities applied to the Table I set (the axis
    /// the Ku-tile residency constraint binds; infeasible sizes are
    /// pruned and reported).
    std::vector<std::int64_t> weight_sram_options = {128 * 1024,
                                                     256 * 1024,
                                                     512 * 1024};
    /// Mapping policies enumerated for the SU-set families.
    std::vector<MappingPolicy> policies = {MappingPolicy::kUtilization,
                                           MappingPolicy::kCostAware};
};

/// Evaluated design point, reduced over the spec's workloads.
struct DesignEval
{
    DesignPoint design;
    double total_cycles = 0.0;  ///< Sum over workloads.
    double energy_pj = 0.0;     ///< Sum over workloads.
    double area_mm2 = 0.0;
    /// Per-workload modeled cycles, in spec.workloads order.
    std::vector<double> workload_cycles;
    bool pareto = false;  ///< Set by mark_pareto_front().
};

/// All design points of @p spec, in deterministic enumeration order
/// (feasibility not yet applied).
std::vector<DesignPoint> enumerate_design_points(const ExploreSpec &spec);

/// The analytical-model accelerator of one design point (a BitWave
/// +DF+SM machine with the design's dataflows, memory, and policy).
AcceleratorConfig design_accelerator(const DesignPoint &design);

/**
 * Whether the design's weight buffer can hold the active Ku-tile of
 * every layer of every workload under at least one of its legal SUs —
 * the residency assumption behind the latency model's once-per-sweep
 * weight-stream accounting (a raw-size screen: the real stream is BCS
 * compressed, so a fitting raw tile always fits). Uses workload
 * skeletons (shapes only), so it is cheap enough to gate enumeration.
 */
bool design_feasible(const DesignPoint &design,
                     const std::vector<Workload> &skeletons);

/// Chip area of one design point: the Fig. 18 component budget at the
/// design's SMM count and SRAM capacities.
double design_area_mm2(const DesignPoint &design,
                       const TechParams &tech = default_tech());

/// a dominates b: no worse on latency, energy AND area, strictly
/// better on at least one.
bool dominates(const DesignEval &a, const DesignEval &b);

/// Set `pareto` on every non-dominated entry; returns the front's
/// indices in enumeration order (dominated-point pruning).
std::vector<std::size_t> mark_pareto_front(std::vector<DesignEval> &evals);

/**
 * Enumerate, prune, evaluate, and reduce @p spec. Feasible designs are
 * evaluated as one analytical Scenario per (design, workload), fanned
 * out through eval::ScenarioRunner with @p options; the result order is
 * the enumeration order, and every value is a pure function of the spec
 * (N-thread bit-identical to 1-thread). @p infeasible, when non-null,
 * receives the pruned designs.
 */
std::vector<DesignEval>
explore_designs(const ExploreSpec &spec,
                const eval::RunnerOptions &options = {},
                std::vector<DesignPoint> *infeasible = nullptr);

}  // namespace bitwave::search
