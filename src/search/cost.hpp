/**
 * @file
 * Cost-model-driven mapping selection — the ZigZag-style upgrade of the
 * per-layer SU choice (ROADMAP follow-up of the weight-port stream
 * accounting).
 *
 * `select_su` ranks candidates by spatial utilization alone, which is
 * blind to two effects the analytical model already prices: the
 * compressed weight-stream occupancy of the SRAM weight port (fetch-bound
 * layers), and the bit-column occupancy implied by the SU's BCS group
 * size (smaller groups expose more zero columns). The mapping cost model
 * here scores every legal SpatialUnrolling candidate with the model's
 * actual Eq. (5) latency (compute + weight-port stream + DRAM) and
 * Eq. (4) energy, mirroring AcceleratorModel::model_layer's
 * bit-column-serial accounting term for term; `select_su_cost_aware`
 * then picks the candidate with the lowest modeled latency.
 *
 * Both the analytical model and the cycle-level simulator consume the
 * selection behind a `MappingPolicy` knob whose default, `kUtilization`,
 * reproduces the historic `select_su` choice bit for bit.
 *
 * The per-candidate statistics (column-cycle occupancy, BCS size) are
 * memoized process-wide by tensor content so sweeps that revisit the
 * same weights — the design-space explorer scores hundreds of hardware
 * configs against one workload set — pay each (tensor, group, Ku) scan
 * exactly once.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "compress/bcs.hpp"
#include "dataflow/mapping.hpp"
#include "dataflow/su.hpp"
#include "energy/dram.hpp"
#include "energy/pricing.hpp"
#include "energy/tech.hpp"
#include "tensor/bitplane.hpp"

namespace bitwave::search {

/// How a machine picks the per-layer spatial unrolling.
enum class MappingPolicy {
    kUtilization,  ///< Historic select_su: best spatial utilization.
    kCostAware,    ///< Lowest modeled Eq. (5) latency (this file).
};

/// Display name ("utilization", "cost-aware").
const char *mapping_policy_name(MappingPolicy policy);

/// Machine description the cost model prices a candidate against — the
/// bit-column-serial subset of AcceleratorConfig / NpuConfig that both
/// engines agree on.
struct MappingCostConfig
{
    Representation repr = Representation::kSignMagnitude;
    MemoryHierarchy memory;
    /// Zero columns are skipped/elided (SparsityMode::kWeightBitColumn /
    /// ZCIP sparse mode); false prices the dense bit-column datapath.
    bool skip_zero_columns = true;
    /// BCS-compressed weights cross DRAM (AcceleratorConfig's
    /// compress_weights).
    bool compress_weights = true;
    /// LayerContext flags: activation traffic crossing DRAM. Selection
    /// uses the interior-layer default so the chosen SU is a property of
    /// (layer, machine), not of network position.
    bool input_from_dram = false;
    bool output_to_dram = false;
    /// Mirror of AcceleratorConfig::layer_sequential_dram: feature maps
    /// exceeding the activation SRAM spill to DRAM. Off for every
    /// BitWave configuration (halo tiling); mirrored so a hypothetical
    /// bit-column machine with a layer-sequential schedule still prices
    /// term-for-term against model_layer. (The other energy-side knobs —
    /// accumulator banks, planar crossbar, lane overhead — cannot occur
    /// on a bit-column-serial machine, so they have no mirror here.)
    bool layer_sequential_dram = false;
};

/// Modeled execution of one (layer, SU) candidate.
struct MappingCost
{
    double utilization = 0.0;
    double cycles_per_group = 0.0;  ///< Effective bit cycles per pass.
    double compute_cycles = 0.0;
    double weight_fetch_cycles = 0.0;  ///< Weight-port occupancy.
    double act_fetch_cycles = 0.0;
    double dram_cycles = 0.0;
    double output_write_cycles = 0.0;
    double total_cycles = 0.0;  ///< Eq. (5) composition.
    double weight_fetch_ratio = 1.0;  ///< Compressed/raw DRAM weights.
    EnergyBreakdown energy;     ///< Eq. (4), shared pricing core.
};

/**
 * Column-cycle statistics of one weight tensor under one (group, Ku)
 * accounting, served from a process-wide content-hash LRU
 * (BITWAVE_CACHE_ENTRIES). @p content_hash must identify the tensor
 * bytes (WorkloadLayer::weights_hash or a derived flip hash); 0 bypasses
 * the cache and computes directly.
 */
std::shared_ptr<const ColumnCycleStats>
cached_cycle_stats(const BitPlanes &planes, const LayerDesc &desc,
                   int group_size, std::int64_t ku,
                   std::uint64_t content_hash);

/// BCS size accounting of one tensor at one group size, memoized like
/// cached_cycle_stats().
std::shared_ptr<const BcsSizeInfo>
cached_bcs_size(const BitPlanes &planes, int group_size,
                std::uint64_t content_hash);

/**
 * Price one (layer, SU) candidate on a bit-column-serial machine.
 *
 * @param desc         Layer descriptor, already normalized for mapping
 *                     (normalized_for_mapping) — the same view
 *                     model_layer and the simulator select on.
 * @param su           Candidate spatial unrolling.
 * @param planes       Packed bit planes of the layer's weights in
 *                     cfg.repr; may be null only when
 *                     cfg.skip_zero_columns and cfg.compress_weights are
 *                     both false (dense pricing needs no weights).
 * @param content_hash Content identity of the weights for the memo
 *                     caches (0 = uncached).
 *
 * Mirrors AcceleratorModel::model_layer's kBitColumnSerial accounting
 * exactly; tests/test_search.cpp pins the agreement per probe layer.
 */
MappingCost mapping_cost(const LayerDesc &desc, const SpatialUnrolling &su,
                         const BitPlanes *planes,
                         std::uint64_t content_hash,
                         const MappingCostConfig &cfg,
                         const TechParams &tech = default_tech(),
                         const DramModel &dram = default_dram());

/**
 * Pick the candidate with the lowest modeled total latency for @p desc
 * (ties broken toward the first candidate, matching select_su). Legality
 * rules are select_su's: depthwise-only SUs are skipped for
 * non-depthwise layers; when only illegal candidates are offered the
 * first candidate is returned.
 */
const SpatialUnrolling &
select_su_cost_aware(const LayerDesc &desc,
                     const std::vector<SpatialUnrolling> &candidates,
                     const BitPlanes *planes, std::uint64_t content_hash,
                     const MappingCostConfig &cfg,
                     const TechParams &tech = default_tech(),
                     const DramModel &dram = default_dram());

}  // namespace bitwave::search
