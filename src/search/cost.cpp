#include "search/cost.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/hash.hpp"
#include "common/logging.hpp"
#include "common/lru.hpp"
#include "nn/layer.hpp"

namespace bitwave::search {

const char *
mapping_policy_name(MappingPolicy policy)
{
    switch (policy) {
      case MappingPolicy::kUtilization: return "utilization";
      case MappingPolicy::kCostAware: return "cost-aware";
    }
    return "?";
}

namespace {

/// Identity of one column-cycle analysis: tensor content + representation
/// + every descriptor field the analysis reads (group tiling, lockstep
/// tile, row geometry).
std::uint64_t
cycle_stats_key(const BitPlanes &planes, const LayerDesc &desc,
                int group_size, std::int64_t ku,
                std::uint64_t content_hash)
{
    std::uint64_t key = hash_combine(
        content_hash, static_cast<std::uint64_t>(planes.repr));
    key = hash_combine(key, static_cast<std::uint64_t>(group_size));
    key = hash_combine(key, static_cast<std::uint64_t>(ku));
    const bool depthwise = desc.kind == LayerKind::kDepthwiseConv;
    key = hash_combine(key, depthwise ? 1 : 0);
    key = hash_combine(key, static_cast<std::uint64_t>(desc.k));
    key = hash_combine(key, static_cast<std::uint64_t>(desc.c));
    return hash_combine(key,
                        static_cast<std::uint64_t>(desc.fy * desc.fx));
}

}  // namespace

std::shared_ptr<const ColumnCycleStats>
cached_cycle_stats(const BitPlanes &planes, const LayerDesc &desc,
                   int group_size, std::int64_t ku,
                   std::uint64_t content_hash)
{
    if (content_hash == 0) {
        return std::make_shared<const ColumnCycleStats>(
            column_cycle_stats(planes, desc, group_size, ku));
    }
    static ShardedLruCache<std::uint64_t, ColumnCycleStats> memo(
        cache_capacity_from_env(4096), 0, "mapping_cycles");
    return memo.get_or_build(
        cycle_stats_key(planes, desc, group_size, ku, content_hash),
        [&] { return column_cycle_stats(planes, desc, group_size, ku); });
}

std::shared_ptr<const BcsSizeInfo>
cached_bcs_size(const BitPlanes &planes, int group_size,
                std::uint64_t content_hash)
{
    if (content_hash == 0) {
        return std::make_shared<const BcsSizeInfo>(
            bcs_measure(planes, group_size));
    }
    std::uint64_t key = hash_combine(
        content_hash, static_cast<std::uint64_t>(planes.repr));
    key = hash_combine(key, static_cast<std::uint64_t>(group_size));
    static ShardedLruCache<std::uint64_t, BcsSizeInfo> memo(
        cache_capacity_from_env(4096), 0, "mapping_bcs");
    return memo.get_or_build(
        key, [&] { return bcs_measure(planes, group_size); });
}

MappingCost
mapping_cost(const LayerDesc &desc, const SpatialUnrolling &su,
             const BitPlanes *planes, std::uint64_t content_hash,
             const MappingCostConfig &cfg, const TechParams &tech,
             const DramModel &dram)
{
    if (planes == nullptr &&
        (cfg.skip_zero_columns || cfg.compress_weights)) {
        fatal("mapping_cost: weight planes required for BCS pricing");
    }

    MappingCost r;
    r.utilization = spatial_utilization(desc, su);
    const double macs = static_cast<double>(desc.macs());
    const std::int64_t iterations = temporal_iterations(desc, su);
    const int group = static_cast<int>(su.group_size());

    // Bit-column occupancy — the term-for-term mirror of model_layer's
    // ComputeStyle::kBitColumnSerial branch.
    double cycles_per_pass = 0.0;
    double mac_energy_scale = 1.0;
    double mean_columns_per_group = 8.0;
    if (cfg.skip_zero_columns) {
        const auto cc = cached_cycle_stats(*planes, desc, group,
                                           su.factor(Dim::kK),
                                           content_hash);
        cycles_per_pass = cc->mean_ceil_cycles(su.bit_columns);
        mac_energy_scale = cc->mean_cycles_per_group / 8.0;
        mean_columns_per_group = cc->mean_cycles_per_group;
    } else {
        cycles_per_pass = 8.0 / static_cast<double>(su.bit_columns);
    }
    r.compute_cycles = static_cast<double>(iterations) * cycles_per_pass;
    r.cycles_per_group = cycles_per_pass;

    CompressionFactors cf;
    if (cfg.compress_weights && cfg.skip_zero_columns) {
        const auto compressed =
            cached_bcs_size(*planes, group, content_hash);
        cf.weight_fetch_ratio = 1.0 / compressed->compression_ratio();
        cf.weight_sram_overhead = 1.0 +
            static_cast<double>(kWordBits) /
                (cycles_per_pass * static_cast<double>(group));
    }
    r.weight_fetch_ratio = cf.weight_fetch_ratio;

    ExecutionProfile exec;
    exec.utilization = r.utilization;
    exec.compute_cycles = r.compute_cycles;
    exec.weight_port_active_bits = std::min(
        static_cast<double>(su.weight_bandwidth_bits()) *
            static_cast<double>(su.bit_columns),
        static_cast<double>(cfg.memory.weight_port_bits));
    // Compressed stream (payload columns + ZCIP index) crosses the
    // weight port once per layer sweep — the fetcher's double buffer
    // holds the active tile across spatial revisits.
    const WeightRowGeometry geom = weight_row_geometry(desc);
    const double groups = static_cast<double>(
        geom.rows * ceil_div(geom.row_len, su.group_size()));
    exec.weight_stream_bits = groups *
        (mean_columns_per_group * static_cast<double>(su.group_size()) +
         kWordBits);
    exec.weight_stationary = false;
    exec.c_tiles = ceil_div(desc.c, su.factor(Dim::kC));
    exec.psum_in_accumulators = false;
    // Same residency rule as model_layer: layer-sequential machines
    // spill the non-resident excess of maps that overflow the
    // activation SRAM (shared activation_spill_fraction definition).
    const auto spill_fraction = [&](std::int64_t elements) {
        return cfg.layer_sequential_dram
            ? activation_spill_fraction(elements, cfg.memory) : 0.0;
    };
    exec.input_dram_fraction =
        cfg.input_from_dram ? 1.0 : spill_fraction(desc.input_count());
    exec.output_dram_fraction =
        cfg.output_to_dram ? 1.0 : spill_fraction(desc.output_count());

    const AccessCounts ac =
        compute_access_counts(desc, su, cfg.memory, cf, exec);
    r.dram_cycles = dram.transfer_cycles(ac.dram_total_bits());

    LatencyParts lat;
    lat.compute_cycles = r.compute_cycles;
    lat.weight_fetch_cycles = ac.sram_read_weight_bits /
        static_cast<double>(cfg.memory.weight_port_bits);
    lat.act_fetch_cycles = ac.sram_read_act_bits /
        static_cast<double>(cfg.memory.act_port_bits);
    lat.dram_cycles = r.dram_cycles;
    lat.output_write_cycles =
        static_cast<double>(desc.output_count()) * kWordBits /
        static_cast<double>(cfg.memory.act_port_bits);
    r.weight_fetch_cycles = lat.weight_fetch_cycles;
    r.act_fetch_cycles = lat.act_fetch_cycles;
    r.output_write_cycles = lat.output_write_cycles;
    r.total_cycles = compose_latency(lat);

    EnergyActivity act;
    act.mac_units = macs * mac_energy_scale;
    act.e_mac_pj = tech.e_mac_bit_column_pj;
    act.sram_read_bits = ac.sram_read_weight_bits + ac.sram_read_act_bits;
    act.sram_write_bits =
        ac.sram_write_act_bits + ac.sram_write_weight_bits;
    act.reg_words = ac.reg_read_words + ac.reg_write_words;
    act.dram_bits = ac.dram_total_bits();
    act.cycles = r.total_cycles;
    r.energy = price_energy(act, tech, dram);
    return r;
}

const SpatialUnrolling &
select_su_cost_aware(const LayerDesc &desc,
                     const std::vector<SpatialUnrolling> &candidates,
                     const BitPlanes *planes, std::uint64_t content_hash,
                     const MappingCostConfig &cfg, const TechParams &tech,
                     const DramModel &dram)
{
    if (candidates.empty()) {
        fatal("select_su_cost_aware: empty candidate set");
    }
    const bool depthwise = desc.kind == LayerKind::kDepthwiseConv;
    const SpatialUnrolling *best = nullptr;
    double best_cycles = 0.0;
    for (const auto &su : candidates) {
        if (su.depthwise_only && !depthwise) {
            continue;
        }
        const double cycles =
            mapping_cost(desc, su, planes, content_hash, cfg, tech, dram)
                .total_cycles;
        if (best == nullptr || cycles < best_cycles) {
            best_cycles = cycles;
            best = &su;
        }
    }
    if (best == nullptr) {
        // Only depthwise-only SUs offered for a non-depthwise layer.
        return candidates.front();
    }
    return *best;
}

}  // namespace bitwave::search
