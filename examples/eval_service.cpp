/**
 * @file
 * Drive the evaluation service interactively: submit a burst of
 * accelerator x network requests (with duplicates, so dedup is visible),
 * watch tickets complete asynchronously, then print per-ticket status
 * and the service counters.
 *
 * Run: ./eval_service [requests] [dispatchers] [policy]
 *   requests     burst size (default 24; duplicates cycle a small pool)
 *   dispatchers  dispatcher threads (default 1)
 *   policy       block | reject | shed (default block)
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/table.hpp"
#include "eval/runner.hpp"
#include "service/service.hpp"

using namespace bitwave;

int
main(int argc, char **argv)
{
    int requests = 24;
    if (argc > 1) {
        requests = std::atoi(argv[1]);
        if (requests <= 0) {
            std::fprintf(stderr,
                         "usage: %s [requests] [dispatchers] "
                         "[block|reject|shed]\n",
                         argv[0]);
            return 1;
        }
    }
    service::ServiceOptions options;
    options.queue_capacity = 8;  // small on purpose: show backpressure
    if (argc > 2) {
        options.dispatchers = std::max(1, std::atoi(argv[2]));
    }
    if (argc > 3) {
        if (std::strcmp(argv[3], "reject") == 0) {
            options.policy = service::BackpressurePolicy::kReject;
        } else if (std::strcmp(argv[3], "shed") == 0) {
            options.policy = service::BackpressurePolicy::kShedOldest;
        } else if (std::strcmp(argv[3], "block") != 0) {
            std::fprintf(stderr, "unknown policy: %s\n", argv[3]);
            return 1;
        }
    }

    // Request pool: every accelerator on CNN-LSTM plus the BitWave
    // flagship on each network — a multi-tenant mix with repeats.
    std::vector<eval::Scenario> pool;
    for (const auto &cfg : {make_scnn(), make_stripes(), make_bitlet(),
                            make_huaa(),
                            make_bitwave(BitWaveVariant::kDfSm)}) {
        eval::Scenario s;
        s.accel = cfg;
        s.workload = WorkloadId::kCnnLstm;
        pool.push_back(std::move(s));
    }
    for (WorkloadId id : {WorkloadId::kResNet18, WorkloadId::kMobileNetV2,
                          WorkloadId::kCnnLstm}) {
        eval::Scenario s;
        s.accel = make_bitwave(BitWaveVariant::kDfSmBf);
        s.workload = id;
        s.bitflip.mode = eval::BitflipSpec::Mode::kHeavyLayers;
        s.bitflip.weight_share = 0.8;
        s.bitflip.group_size = 16;
        s.bitflip.zero_columns = 5;
        pool.push_back(std::move(s));
    }

    std::printf("submitting %d requests (%zu distinct) through %d "
                "dispatcher(s), queue capacity %zu\n\n",
                requests, pool.size(), options.dispatchers,
                options.queue_capacity);

    service::EvalService svc(options);
    std::vector<service::EvalTicket> tickets;
    tickets.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
        tickets.push_back(svc.submit(pool[static_cast<std::size_t>(i) %
                                          pool.size()]));
    }
    for (auto &ticket : tickets) {
        ticket.wait();
    }

    Table t({"#", "request", "status", "deduped", "latency",
             "cycles"});
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        const auto &ticket = tickets[i];
        const bool done =
            ticket.status() == service::TicketStatus::kDone;
        t.add_row({strprintf("%zu", i),
                   pool[i % pool.size()].name(),
                   service::ticket_status_name(ticket.status()),
                   ticket.deduped() ? "yes" : "-",
                   strprintf("%.1f ms", ticket.latency_seconds() * 1e3),
                   done ? strprintf("%.0f", ticket.result().total_cycles)
                        : "-"});
    }
    std::printf("%s\n", t.render().c_str());

    const auto stats = svc.stats();
    std::printf("submitted=%llu dedup_hits=%llu completed=%llu "
                "rejected=%llu shed=%llu batches=%llu "
                "batched_jobs=%llu steals=%llu peak_queue=%zu\n",
                static_cast<unsigned long long>(stats.submitted),
                static_cast<unsigned long long>(stats.dedup_hits),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(stats.shed),
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.batched_jobs),
                static_cast<unsigned long long>(stats.steals),
                stats.peak_queue_depth);
    return 0;
}
