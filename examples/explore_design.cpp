/**
 * @file
 * Explore the BitWave hardware design space from the command line:
 * enumerate SU sets, group sizes, SMM budgets and weight-buffer
 * capacities, evaluate every feasible design on the chosen workloads
 * through the parallel ScenarioRunner, and print the pareto front over
 * (latency, energy, area).
 *
 * Run: ./explore_design [workload ...] [--threads N] [--all]
 *   workload   any of resnet18 mobilenetv2 cnnlstm bert
 *              (default: resnet18 bert — the dse_pareto bench pair)
 *   --all      print every feasible design, not just the front
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/table.hpp"
#include "search/explore.hpp"

using namespace bitwave;

int
main(int argc, char **argv)
{
    search::ExploreSpec spec;
    spec.workloads.clear();
    eval::RunnerOptions options;
    bool print_all = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "resnet18") == 0) {
            spec.workloads.push_back(WorkloadId::kResNet18);
        } else if (std::strcmp(argv[i], "mobilenetv2") == 0) {
            spec.workloads.push_back(WorkloadId::kMobileNetV2);
        } else if (std::strcmp(argv[i], "cnnlstm") == 0) {
            spec.workloads.push_back(WorkloadId::kCnnLstm);
        } else if (std::strcmp(argv[i], "bert") == 0) {
            spec.workloads.push_back(WorkloadId::kBertBase);
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            options.threads = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--all") == 0) {
            print_all = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [resnet18|mobilenetv2|cnnlstm|bert "
                         "...] [--threads N] [--all]\n",
                         argv[0]);
            return 1;
        }
    }
    if (spec.workloads.empty()) {
        spec.workloads = {WorkloadId::kResNet18, WorkloadId::kBertBase};
    }

    std::vector<search::DesignPoint> infeasible;
    const auto evals =
        search::explore_designs(spec, options, &infeasible);

    std::printf("explored %zu feasible designs (%zu pruned: weight "
                "buffer cannot hold the active Ku-tile)\n\n",
                evals.size(), infeasible.size());

    std::vector<std::string> header{"design", "SMM", "W-SRAM",
                                    "Mcycles", "energy mJ", "area mm2"};
    for (WorkloadId id : spec.workloads) {
        header.insert(header.end() - 2,
                      std::string(workload_name(id)) + " Mcyc");
    }
    Table t(header);
    std::vector<const search::DesignEval *> shown;
    for (const auto &e : evals) {
        if (print_all || e.pareto) {
            shown.push_back(&e);
        }
    }
    std::sort(shown.begin(), shown.end(), [](const auto *a, const auto *b) {
        return a->total_cycles < b->total_cycles;
    });
    for (const auto *e : shown) {
        std::vector<std::string> row{
            e->design.name + (e->pareto ? " *" : ""),
            std::to_string(e->design.smm_budget),
            std::to_string(e->design.weight_sram_bytes / 1024) + "K",
            strprintf("%.2f", e->total_cycles / 1e6)};
        for (double c : e->workload_cycles) {
            row.push_back(strprintf("%.2f", c / 1e6));
        }
        row.push_back(strprintf("%.2f", e->energy_pj / 1e9));
        row.push_back(strprintf("%.3f", e->area_mm2));
        t.add_row(std::move(row));
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n* = pareto-optimal over (latency, energy, area); the "
                "paper's Table I set is the TableI/cost design.\n");
    return 0;
}
