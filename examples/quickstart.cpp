/**
 * @file
 * Quickstart: the BitWave concepts on a toy weight group.
 *
 * Walks the Fig. 4 running example end-to-end: bit-column sparsity in
 * two's complement vs sign-magnitude, BCS compression, the Bit-Flip
 * adjustment, and a bit-exact bit-column-serial multiplication through
 * the BCE datapath.
 *
 * Run: ./quickstart
 */
#include <cstdio>
#include <vector>

#include "bitflip/bitflip.hpp"
#include "common/bits.hpp"
#include "compress/bcs.hpp"
#include "nn/reference.hpp"
#include "sim/bce.hpp"
#include "sim/zcip.hpp"
#include "sparsity/bitcolumn.hpp"

using namespace bitwave;

int
main()
{
    // The paper's Fig. 4 group: four Int8 weights along input channels.
    std::vector<std::int8_t> group = {2, 4, -3, 6};
    std::printf("weight group: {2, 4, -3, 6}\n\n");

    for (auto repr : {Representation::kTwosComplement,
                      Representation::kSignMagnitude}) {
        std::printf("%s encoding:\n", representation_name(repr));
        for (auto w : group) {
            const std::uint8_t enc = repr == Representation::kTwosComplement
                ? static_cast<std::uint8_t>(w) : to_sign_magnitude(w);
            std::printf("  %4d -> %s\n", w, to_binary_string(enc).c_str());
        }
        std::printf("  zero columns: %d of 8\n\n",
                    zero_column_count({group.data(), group.size()}, repr));
    }

    // BCS compression of the group (sign-magnitude).
    Int8Tensor tensor({4}, {2, 4, -3, 6});
    const auto compressed =
        bcs_compress(tensor, 4, Representation::kSignMagnitude);
    std::printf("BCS: index %s, %zu stored columns, CR %.2fx "
                "(ideal %.2fx)\n\n",
                to_binary_string(compressed.groups[0].index).c_str(),
                compressed.groups[0].columns.size(),
                compressed.compression_ratio(),
                compressed.ideal_compression_ratio());

    // Bit-Flip to five zero columns: -3 becomes -4 at distance 1.
    std::vector<std::int8_t> flipped = {2, 4, -3, 6};
    const auto flip = bitflip_group({flipped.data(), flipped.size()}, 5);
    std::printf("Bit-Flip to 5 zero columns: {%d, %d, %d, %d}, "
                "distance^2 = %.0f\n\n",
                flipped[0], flipped[1], flipped[2], flipped[3],
                flip.squared_error);

    // Bit-column-serial multiply against activations, checked against the
    // plain int8 dot product.
    const std::int8_t acts[4] = {11, -7, 5, 3};
    ZeroColumnIndexParser parser;
    const auto decode = parser.parse(compressed.groups[0].index);
    const std::int32_t bcsec = bce_group_pass(
        {acts, 4}, decode,
        {compressed.groups[0].columns.data(),
         compressed.groups[0].columns.size() -
             (decode.sign_request ? 1u : 0u)},
        decode.sign_request ? compressed.groups[0].columns.back() : 0);
    const std::int32_t golden = dot_int8(acts, tensor.data(), 4);
    std::printf("BCSeC dot product: %d (reference %d) -> %s\n", bcsec,
                golden, bcsec == golden ? "MATCH" : "MISMATCH");
    return bcsec == golden ? 0 : 1;
}
