/**
 * @file
 * Compare all six modeled accelerators on one benchmark network:
 * cycles, runtime, energy and efficiency — a command-line view of the
 * Figs. 14/15/17 data for a single workload.
 *
 * Run: ./accelerator_shootout [resnet18|mobilenetv2|cnnlstm|bert]
 */
#include <cstdio>
#include <cstring>
#include <vector>

#include "bitflip/bitflip.hpp"
#include "common/table.hpp"
#include "model/performance.hpp"
#include "nn/workloads.hpp"

using namespace bitwave;

int
main(int argc, char **argv)
{
    WorkloadId id = WorkloadId::kCnnLstm;
    if (argc > 1) {
        if (std::strcmp(argv[1], "resnet18") == 0) {
            id = WorkloadId::kResNet18;
        } else if (std::strcmp(argv[1], "mobilenetv2") == 0) {
            id = WorkloadId::kMobileNetV2;
        } else if (std::strcmp(argv[1], "bert") == 0) {
            id = WorkloadId::kBertBase;
        } else if (std::strcmp(argv[1], "cnnlstm") == 0) {
            id = WorkloadId::kCnnLstm;
        } else {
            std::fprintf(stderr,
                         "usage: %s [resnet18|mobilenetv2|cnnlstm|bert]\n",
                         argv[0]);
            return 1;
        }
    }

    const Workload &w = get_workload(id);
    std::printf("workload: %s (%lld MACs, %lld weights)\n\n",
                w.name.c_str(), static_cast<long long>(w.total_macs()),
                static_cast<long long>(w.total_weights()));

    // Bit-Flip the weights for the full BitWave configuration.
    std::vector<Int8Tensor> flipped;
    for (const auto &l : w.layers) {
        flipped.push_back(bitflip_tensor(l.weights, 16, 4));
    }

    std::vector<WorkloadResult> results;
    for (const auto &cfg : {make_scnn(), make_stripes(), make_pragmatic(),
                            make_bitlet(), make_huaa()}) {
        results.push_back(AcceleratorModel(cfg).model_workload(w));
    }
    results.push_back(
        AcceleratorModel(make_bitwave(BitWaveVariant::kDfSmBf))
            .model_workload(w, &flipped));

    const double scnn_cycles = results.front().total_cycles;
    const double scnn_tops = results.front().tops_per_watt();
    Table t({"accelerator", "cycles (M)", "runtime (ms)", "speedup",
             "energy (mJ)", "TOPS/W", "eff. vs SCNN"});
    for (const auto &r : results) {
        t.add_row({r.accelerator, fmt_double(r.total_cycles / 1e6),
                   fmt_double(r.runtime_ms()),
                   fmt_ratio(scnn_cycles / r.total_cycles),
                   fmt_double(r.total_energy_pj * 1e-9, 3),
                   fmt_double(r.tops_per_watt(), 3),
                   fmt_ratio(r.tops_per_watt() / scnn_tops)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}
