/**
 * @file
 * Compare all six modeled accelerators on one benchmark network:
 * cycles, runtime, energy and efficiency — a command-line view of the
 * Figs. 14/15/17 data for a single workload, evaluated as one scenario
 * batch on the parallel ScenarioRunner.
 *
 * Run: ./accelerator_shootout [resnet18|mobilenetv2|cnnlstm|bert] [threads]
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/table.hpp"
#include "eval/runner.hpp"

using namespace bitwave;

int
main(int argc, char **argv)
{
    WorkloadId id = WorkloadId::kCnnLstm;
    if (argc > 1) {
        if (std::strcmp(argv[1], "resnet18") == 0) {
            id = WorkloadId::kResNet18;
        } else if (std::strcmp(argv[1], "mobilenetv2") == 0) {
            id = WorkloadId::kMobileNetV2;
        } else if (std::strcmp(argv[1], "bert") == 0) {
            id = WorkloadId::kBertBase;
        } else if (std::strcmp(argv[1], "cnnlstm") == 0) {
            id = WorkloadId::kCnnLstm;
        } else {
            std::fprintf(stderr,
                         "usage: %s [resnet18|mobilenetv2|cnnlstm|bert] "
                         "[threads]\n",
                         argv[0]);
            return 1;
        }
    }

    eval::RunnerOptions options;
    if (argc > 2) {
        options.threads = std::atoi(argv[2]);
    }

    const Workload &w = get_workload(id);
    std::printf("workload: %s (%lld MACs, %lld weights)\n\n",
                w.name.c_str(), static_cast<long long>(w.total_macs()),
                static_cast<long long>(w.total_weights()));

    // One scenario per accelerator; BitWave runs with uniformly
    // Bit-Flipped weights (group 16, 4 zero columns), as in the paper.
    std::vector<eval::Scenario> scenarios;
    for (const auto &cfg : {make_scnn(), make_stripes(), make_pragmatic(),
                            make_bitlet(), make_huaa()}) {
        eval::Scenario s;
        s.accel = cfg;
        s.workload = id;
        scenarios.push_back(std::move(s));
    }
    {
        eval::Scenario s;
        s.accel = make_bitwave(BitWaveVariant::kDfSmBf);
        s.workload = id;
        s.bitflip.mode = eval::BitflipSpec::Mode::kUniform;
        s.bitflip.group_size = 16;
        s.bitflip.zero_columns = 4;
        scenarios.push_back(std::move(s));
    }

    eval::RunnerReport report;
    const auto results =
        eval::ScenarioRunner(options).run(scenarios, &report);

    const double scnn_cycles = results.front().total_cycles;
    const double scnn_tops = results.front().tops_per_watt();
    Table t({"accelerator", "cycles (M)", "runtime (ms)", "speedup",
             "energy (mJ)", "TOPS/W", "eff. vs SCNN"});
    for (const auto &r : results) {
        t.add_row({r.accelerator, fmt_double(r.total_cycles / 1e6),
                   fmt_double(r.runtime_ms()),
                   fmt_ratio(scnn_cycles / r.total_cycles),
                   fmt_double(r.energy.total_pj * 1e-9, 3),
                   fmt_double(r.tops_per_watt(), 3),
                   fmt_ratio(r.tops_per_watt() / scnn_tops)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n[runner: %d threads, %.2fs wall, %.2fs scenario work, "
                "%.2fx parallel speedup]\n",
                report.threads_used, report.wall_seconds,
                report.scenario_seconds_sum, report.speedup());
    return 0;
}
