/**
 * @file
 * Deploy ResNet18 on BitWave through the public pipeline facade:
 * sign-magnitude BCS compression, per-layer dataflow selection, and
 * performance/energy modeling against the dense baseline. Then
 * cross-checks three layers on the cycle-level simulator.
 *
 * Run: ./resnet18_deploy [--bitflip]
 */
#include <cstdio>
#include <cstring>

#include "core/pipeline.hpp"
#include "nn/workloads.hpp"
#include "sim/npu.hpp"

using namespace bitwave;

int
main(int argc, char **argv)
{
    PipelineOptions options;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--bitflip") == 0) {
            options.use_bitflip = true;
            options.max_metric_drop = 0.5;  // <= 0.5 % top-1 (Fig. 6e)
        }
    }

    const Workload &resnet = get_workload(WorkloadId::kResNet18);
    const PipelineReport report = deploy(resnet, options);
    std::printf("%s\n", report.to_string().c_str());

    // Cycle-level cross-check on three representative layers.
    std::printf("cycle-level simulator cross-check:\n");
    BitWaveNpu npu;
    for (const char *name : {"l2.0.conv1", "l4.0.down", "fc"}) {
        const auto &layer = resnet.layers[resnet.layer_index(name)];
        const auto sim = npu.run_layer(layer, nullptr, nullptr,
                                       /*compute_output=*/false);
        std::printf("  %-12s su=%-4s decoupled=%.0f lockstep=%.0f "
                    "mean nz cols=%.2f\n",
                    name, sim.su_name.c_str(), sim.cycles_decoupled,
                    sim.cycles_lockstep, sim.mean_columns_per_group());
    }
    return 0;
}
