/**
 * @file
 * Bit-Flip Pareto exploration on the CNN-LSTM audio denoiser — the
 * Fig. 6(g) experiment: run Algorithm 1 with a shrinking accuracy budget
 * and print the (compression ratio, PESQ estimate) trajectory.
 *
 * Run: ./bitflip_pareto [max_pesq_drop]   (default 0.5)
 */
#include <cstdio>
#include <cstdlib>

#include "bitflip/strategy.hpp"
#include "nn/accuracy.hpp"
#include "nn/workloads.hpp"

using namespace bitwave;

int
main(int argc, char **argv)
{
    const double budget = argc > 1 ? std::atof(argv[1]) : 0.5;

    const Workload &net = get_workload(WorkloadId::kCnnLstm);
    AccuracyProxy proxy(net);
    FlipSearch search(net, proxy);

    GreedySearchOptions opts;
    opts.min_metric = net.base_metric - budget;

    std::printf("Algorithm 1 on %s (base PESQ %.2f, budget %.2f)\n\n",
                net.name.c_str(), net.base_metric, budget);
    const auto trajectory =
        search.greedy_search(search.untouched_strategy(), opts);

    std::printf("%-6s %-10s %-8s\n", "step", "CR", "PESQ est.");
    for (std::size_t i = 0; i < trajectory.size(); ++i) {
        std::printf("%-6zu %-10.3f %-8.3f\n", i,
                    trajectory[i].compression_ratio, trajectory[i].metric);
    }

    const auto &final_point = trajectory.back();
    std::printf("\nfinal strategy (layer: group size / zero columns):\n");
    for (std::size_t l = 0; l < final_point.strategy.size(); ++l) {
        const auto &cfg = final_point.strategy[l];
        if (cfg.zero_columns > 0) {
            std::printf("  %-10s G=%d z=%d\n",
                        net.layers[l].desc.name.c_str(), cfg.group_size,
                        cfg.zero_columns);
        }
    }
    std::printf("\ncompression %.2fx at %.3f PESQ (paper: 3.45x at "
                "~0.5 PESQ drop)\n",
                final_point.compression_ratio, final_point.metric);
    return 0;
}
