/**
 * @file
 * Bring-your-own-network example: define a custom CNN with the layer
 * builders, synthesize (or load) Int8 weights, and deploy it on BitWave
 * through the pipeline facade. Shows the API a downstream user needs to
 * evaluate their own model.
 *
 * Run: ./custom_network
 */
#include <cstdio>

#include "core/pipeline.hpp"
#include "nn/synthesis.hpp"

using namespace bitwave;

int
main()
{
    // A small keyword-spotting style CNN: conv stem, depthwise block,
    // pointwise expansion, classifier.
    Workload net;
    net.name = "kws-cnn";
    net.metric_name = "top-1";
    net.base_metric = 92.0;
    net.error_sensitivity = 40.0;

    Rng rng(2024);
    auto add = [&](LayerDesc desc, double act_sparsity) {
        WeightProfile profile;
        profile.scale = 6.0;
        profile.zero_probability = 0.05;
        profile.zero_avoidance = 0.7;
        WorkloadLayer layer;
        layer.desc = std::move(desc);
        layer.weights = synthesize_weights(layer.desc, profile, rng);
        layer.activation_sparsity = act_sparsity;
        net.layers.push_back(std::move(layer));
    };

    add(make_conv("stem", 32, 1, 32, 32, 3, 3, 2), 0.0);
    add(make_depthwise("dw1", 32, 32, 32, 3), 0.4);
    add(make_pointwise("pw1", 64, 32, 32, 32), 0.4);
    add(make_depthwise("dw2", 64, 16, 16, 3, 2), 0.4);
    add(make_pointwise("pw2", 128, 64, 16, 16), 0.4);
    add(make_linear("fc", 12, 128 * 16 * 16 / (16 * 16)), 0.4);

    // Lossless deployment first, then with a 0.5-point Bit-Flip budget.
    const auto lossless = deploy(net);
    std::printf("%s\n", lossless.to_string().c_str());

    PipelineOptions flip;
    flip.use_bitflip = true;
    flip.max_metric_drop = 0.5;
    const auto flipped = deploy(net, flip);
    std::printf("%s\n", flipped.to_string().c_str());

    std::printf("Bit-Flip gained %.2fx compression and %.2fx speedup over "
                "lossless BCS at %.2f points of estimated accuracy.\n",
                flipped.weight_compression_ratio /
                    lossless.weight_compression_ratio,
                flipped.speedup_vs_dense / lossless.speedup_vs_dense,
                flipped.base_metric - flipped.estimated_metric);
    return 0;
}
