/**
 * @file
 * Observability tour: run a small burst of duplicate-heavy requests
 * through the evaluation service with metrics and span tracing armed,
 * then dump the whole registry — every counter the service, runner,
 * caches, workload IO and fault layer maintain, plus the request
 * phase histograms — in Prometheus text format (default) or JSON.
 *
 * Run: ./metrics_dump [--json] [--trace out.json]
 *   --json        render the registry as JSON instead of Prometheus
 *   --trace PATH  also write the request spans as Chrome trace-event
 *                 JSON (open in chrome://tracing or ui.perfetto.dev)
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "eval/runner.hpp"
#include "service/service.hpp"

using namespace bitwave;

int
main(int argc, char **argv)
{
    bool as_json = false;
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            as_json = true;
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[i + 1];
            ++i;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json] [--trace out.json]\n",
                         argv[0]);
            return 1;
        }
    }

    metrics::set_enabled(true);  // arm the gated histograms
    if (!trace_path.empty() && !trace::enabled()) {
        trace::start();
    }

    // A small multi-tenant burst with duplicates, so dedup, batching
    // and every cache layer light up in the dump.
    std::vector<eval::Scenario> pool;
    for (WorkloadId id : {WorkloadId::kResNet18, WorkloadId::kMobileNetV2,
                          WorkloadId::kCnnLstm}) {
        eval::Scenario s;
        s.accel = make_bitwave(BitWaveVariant::kDfSmBf);
        s.workload = id;
        pool.push_back(std::move(s));
    }

    service::ServiceOptions options;
    options.max_batch = 4;
    service::EvalService svc(options);
    std::vector<service::EvalTicket> tickets;
    const int requests = 18;
    for (int i = 0; i < requests; ++i) {
        tickets.push_back(svc.submit(pool[static_cast<std::size_t>(i) %
                                          pool.size()]));
    }
    for (auto &ticket : tickets) {
        ticket.wait();
    }
    const auto stats = svc.stats();  // samples the queue-depth gauge

    const auto snap = metrics::snapshot();
    std::printf("%s", as_json ? metrics::render_json(snap).c_str()
                              : metrics::render_prometheus(snap).c_str());
    if (as_json) {
        std::printf("\n");
    }

    std::fprintf(stderr,
                 "\n# %d requests (%llu deduped), compute p50 %.2f ms\n",
                 requests,
                 static_cast<unsigned long long>(stats.dedup_hits),
                 stats.compute_ns.quantile(0.50) / 1e6);
    if (!trace_path.empty()) {
        const std::size_t written = trace::write_json(trace_path);
        std::fprintf(stderr, "# wrote %zu trace events to %s\n", written,
                     trace_path.c_str());
    }
    return 0;
}
