#!/usr/bin/env python3
"""BitWave repo-invariant linter.

Enforces the handful of repo-specific contracts that generic tools
(clang-tidy, -Wthread-safety) cannot express:

  determinism       No ambient randomness or wall-clock reads on
                    result-affecting paths under src/.  Seeded RNG lives
                    in common/rng.hpp; the trace/metrics clocks are the
                    swappable timing seams.
  memory-order      Every std::atomic load/store/RMW in src/common/ and
                    src/service/ spells an explicit std::memory_order
                    argument (the worksteal protocol's documented-
                    ordering rule, generalized).
  unordered-iteration
                    No iteration over an unordered container feeding a
                    ScenarioResult or fingerprint — hash-map order is
                    not part of the determinism contract.
  env-access        No naked getenv() outside common/env.{hpp,cpp}; use
                    the env_* helpers so defaults/parsing stay in one
                    place.
  logging           No direct std::cerr outside common/logging.cpp; use
                    the leveled logging API so sinks stay swappable.
  bench-write       BENCH_*.json emission goes through bench_util's
                    atomic temp-file + rename writer, never ad-hoc.

Diagnostics are `path:line: [rule] message`.  A finding is suppressed
by an inline escape hatch on the same or the preceding line:

    // bitwave-lint: allow(<rule>)

Exit status: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import os
import re
import sys

RULES = {
    "determinism": "no ambient randomness / wall-clock on result paths",
    "memory-order": "atomics must spell std::memory_order explicitly",
    "unordered-iteration":
        "no unordered-container iteration into results/fingerprints",
    "env-access": "getenv() only inside common/env.{hpp,cpp}",
    "logging": "std::cerr only inside common/logging.cpp",
    "bench-write": "BENCH_*.json only via bench_util's atomic writer",
}

# Files exempt from a rule (repo-relative, forward slashes).  These are
# the designated seams the rule exists to funnel everything through.
RNG_SEAMS = {"src/common/rng.hpp", "src/common/rng.cpp"}
CLOCK_SEAMS = RNG_SEAMS | {
    "src/common/trace.hpp", "src/common/trace.cpp",
    "src/common/metrics.hpp", "src/common/metrics.cpp",
}
ENV_SEAMS = {"src/common/env.hpp", "src/common/env.cpp"}
LOG_SEAMS = {"src/common/logging.cpp"}
BENCH_SEAMS = {"bench/bench_util.hpp"}

ALLOW_RE = re.compile(r"bitwave-lint:\s*allow\(([^)]*)\)")

# --- determinism -----------------------------------------------------

RNG_PATTERNS = [
    (re.compile(r"(?<![\w.])srand\s*\("), "srand()"),
    (re.compile(r"(?<![\w.:])rand\s*\("), "rand()"),
    (re.compile(r"std::random_device"), "std::random_device"),
]
CLOCK_PATTERNS = [
    (re.compile(r"std::time\s*\("), "std::time()"),
    (re.compile(r"(?<![\w.])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "time(NULL)"),
    (re.compile(r"system_clock"), "std::chrono::system_clock"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday()"),
    (re.compile(r"\bCLOCK_REALTIME\b"), "CLOCK_REALTIME"),
]

# --- memory-order ----------------------------------------------------

ATOMIC_OP_RE = re.compile(
    r"\.(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")

# --- unordered-iteration ---------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
RESULT_SINK_RE = re.compile(r"ScenarioResult|fingerprint|fnv1a")

# --- env-access / logging / bench-write ------------------------------

GETENV_RE = re.compile(r"(?<![\w])(?:std::|::)?getenv\s*\(")
CERR_RE = re.compile(r"std::cerr")
BENCH_RE = re.compile(r"\bBENCH_")


def strip_comments_and_strings(text, keep_strings=False):
    """Blank out comments (and optionally string/char literals) while
    preserving the byte count and line structure, so offsets and line
    numbers in the stripped text match the original."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                j += 1
            if not keep_strings:
                for k in range(i, min(j + 1, n)):
                    if text[k] != "\n":
                        out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def allowed_rules_by_line(raw_lines):
    """Map line number (1-based) -> set of rules an allow-comment on
    that line or the line above suppresses."""
    allowed = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        allowed.setdefault(idx, set()).update(rules)
        allowed.setdefault(idx + 1, set()).update(rules)
    return allowed


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def balanced_span(text, open_pos, open_ch="(", close_ch=")"):
    """Return text inside the bracket pair opening at open_pos, or None
    when unbalanced (truncated file)."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return text[open_pos + 1:i]
    return None


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def check_determinism(rel, stripped, findings):
    patterns = []
    if rel not in RNG_SEAMS:
        patterns += RNG_PATTERNS
    if rel not in CLOCK_SEAMS:
        patterns += CLOCK_PATTERNS
    for pat, what in patterns:
        for m in pat.finditer(stripped):
            findings.append(Finding(
                rel, line_of(stripped, m.start()), "determinism",
                f"{what} breaks the bit-identity contract; draw from "
                "common/rng.hpp (seeded) or the trace/metrics clock "
                "seams"))


def check_memory_order(rel, stripped, findings):
    for m in ATOMIC_OP_RE.finditer(stripped):
        op = m.group(1)
        args = balanced_span(stripped, m.end() - 1)
        if args is None or "memory_order" not in args:
            findings.append(Finding(
                rel, line_of(stripped, m.start()), "memory-order",
                f".{op}() without an explicit std::memory_order "
                "argument (implicit seq_cst hides the protocol)"))


def unordered_names(stripped):
    """Identifiers declared in this file with an unordered_{map,set}
    type (members or locals)."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(stripped):
        close = None
        depth = 0
        for i in range(m.end() - 1, min(len(stripped), m.end() + 2000)):
            if stripped[i] == "<":
                depth += 1
            elif stripped[i] == ">":
                depth -= 1
                if depth == 0:
                    close = i
                    break
        if close is None:
            continue
        tail = stripped[close + 1:close + 300]
        dm = re.match(r"\s*&?\s*(\w+)\s*(?:GUARDED_BY\s*\([^)]*\)\s*)?"
                      r"\s*[;={(]", tail)
        if dm and dm.group(1) not in ("const", "return"):
            names.add(dm.group(1))
    return names


def check_unordered_iteration(rel, stripped, findings):
    names = unordered_names(stripped)
    if not names:
        return
    for m in RANGE_FOR_RE.finditer(stripped):
        head = balanced_span(stripped, m.end() - 1)
        if head is None or ":" not in head:
            continue
        iterated = head.rsplit(":", 1)[1].strip()
        last = re.split(r"[.\s]|->", iterated)[-1].strip("()&*")
        if last not in names:
            continue
        # Loop body: the balanced brace block (or single statement)
        # after the header.
        body_start = stripped.find("{", m.end())
        stmt_end = stripped.find(";", m.end())
        if body_start == -1 or (stmt_end != -1 and stmt_end < body_start):
            body = stripped[m.end():stmt_end + 1 if stmt_end != -1 else
                            len(stripped)]
        else:
            body = balanced_span(stripped, body_start, "{", "}") or ""
        if RESULT_SINK_RE.search(body):
            findings.append(Finding(
                rel, line_of(stripped, m.start()), "unordered-iteration",
                f"iterating unordered container '{last}' into a "
                "result/fingerprint — hash order is not deterministic; "
                "sort keys first"))


def check_env_access(rel, stripped, findings):
    if rel in ENV_SEAMS:
        return
    for m in GETENV_RE.finditer(stripped):
        findings.append(Finding(
            rel, line_of(stripped, m.start()), "env-access",
            "naked getenv(); use env_string()/env_int() from "
            "common/env.hpp"))


def check_logging(rel, stripped, findings):
    if rel in LOG_SEAMS:
        return
    for m in CERR_RE.finditer(stripped):
        findings.append(Finding(
            rel, line_of(stripped, m.start()), "logging",
            "direct std::cerr; use bitwave::log::warn()/inform() so "
            "the sink stays swappable"))


def check_bench_write(rel, stripped_keep_strings, findings):
    if rel in BENCH_SEAMS:
        return
    for m in BENCH_RE.finditer(stripped_keep_strings):
        findings.append(Finding(
            rel, line_of(stripped_keep_strings, m.start()), "bench-write",
            "BENCH_* artifact handled outside bench_util; emit through "
            "bench::Reporter's atomic temp-file + rename writer"))


def lint_file(root, rel):
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print(f"bitwave_lint: cannot read {path}: {e}", file=sys.stderr)
        return []

    raw_lines = text.splitlines()
    allowed = allowed_rules_by_line(raw_lines)
    stripped = strip_comments_and_strings(text)
    findings = []

    if rel.startswith("src/"):
        check_determinism(rel, stripped, findings)
        check_unordered_iteration(rel, stripped, findings)
        check_env_access(rel, stripped, findings)
        check_logging(rel, stripped, findings)
        if rel.startswith(("src/common/", "src/service/")):
            check_memory_order(rel, stripped, findings)
    if rel.startswith("bench/"):
        check_bench_write(
            rel, strip_comments_and_strings(text, keep_strings=True),
            findings)

    kept, seen = [], set()
    for f in findings:
        key = (f.path, f.line, f.rule)
        if key in seen or f.rule in allowed.get(f.line, set()):
            continue
        seen.add(key)
        kept.append(f)
    return kept


def collect_files(root):
    rels = []
    for top in ("src", "bench"):
        for dirpath, _, files in os.walk(os.path.join(root, top)):
            for name in sorted(files):
                if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                    rel = os.path.relpath(os.path.join(dirpath, name),
                                          root)
                    rels.append(rel.replace(os.sep, "/"))
    return sorted(rels)


def main(argv):
    parser = argparse.ArgumentParser(
        description="BitWave repo-invariant linter")
    parser.add_argument(
        "--root", default=None,
        help="repo root to scan (default: parent of this script)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:22s} {desc}")
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(root):
        print(f"bitwave_lint: no such directory: {root}", file=sys.stderr)
        return 2

    findings = []
    for rel in collect_files(root):
        findings.extend(lint_file(root, rel))

    for f in findings:
        print(f)
    if findings:
        print(f"bitwave_lint: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
