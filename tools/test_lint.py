#!/usr/bin/env python3
"""Self-test for bitwave_lint.py against the fixture corpus.

Runs the linter over tools/lint_fixtures/ and asserts that every rule
fires exactly where the bad fixtures say it should, that the good
fixtures stay silent, and that the allow(<rule>) escape hatch
suppresses only the rule it names.  Run by ctest as `test_lint`.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINTER = os.path.join(HERE, "bitwave_lint.py")
FIXTURES = os.path.join(HERE, "lint_fixtures")

# Every finding the fixture tree must produce: (path, line, rule).
EXPECTED = {
    ("src/common/bad_determinism.cpp", 8, "determinism"),
    ("src/common/bad_determinism.cpp", 9, "determinism"),
    ("src/common/bad_determinism.cpp", 10, "determinism"),
    ("src/common/bad_determinism.cpp", 11, "determinism"),
    ("src/common/bad_memory_order.cpp", 9, "memory-order"),
    ("src/common/bad_memory_order.cpp", 10, "memory-order"),
    ("src/common/bad_memory_order.cpp", 11, "memory-order"),
    ("src/common/bad_memory_order.cpp", 13, "memory-order"),
    ("src/common/bad_memory_order.cpp", 14, "memory-order"),
    ("src/eval/bad_unordered.cpp", 16, "unordered-iteration"),
    ("src/common/bad_env.cpp", 7, "env-access"),
    ("src/common/bad_logging.cpp", 6, "logging"),
    ("bench/bad_bench_write.cpp", 6, "bench-write"),
    # allow(logging) does not excuse a memory-order finding:
    ("src/common/allow_suppressed.cpp", 19, "memory-order"),
}

# Files that must not contribute any finding at all.
SILENT_FILES = {
    "src/common/good_determinism.cpp",
    "src/common/good_memory_order.cpp",
    "src/eval/good_unordered.cpp",
    "src/common/env.cpp",
    "src/common/good_logging.cpp",
    "bench/bench_util.hpp",
    "bench/good_bench_write.cpp",
}


def parse(output):
    got = set()
    for line in output.splitlines():
        parts = line.split(":", 2)
        if len(parts) < 3 or not parts[1].isdigit():
            continue
        rule = parts[2].split("]", 1)[0].strip().lstrip("[ ")
        got.add((parts[0], int(parts[1]), rule))
    return got


def main():
    proc = subprocess.run(
        [sys.executable, LINTER, "--root", FIXTURES],
        capture_output=True, text=True)
    if proc.returncode != 1:
        print(f"FAIL: expected exit 1 on fixture tree, got "
              f"{proc.returncode}\nstdout:\n{proc.stdout}\n"
              f"stderr:\n{proc.stderr}")
        return 1

    got = parse(proc.stdout)
    failures = []
    for missing in sorted(EXPECTED - got):
        failures.append(f"missing finding: {missing}")
    for extra in sorted(got - EXPECTED):
        failures.append(f"unexpected finding: {extra}")
    for path, _, _ in got:
        if path in SILENT_FILES:
            failures.append(f"good fixture fired: {path}")

    # The suppressed lines must genuinely be suppressed.
    for path, line in [("src/common/allow_suppressed.cpp", 10),
                       ("src/common/allow_suppressed.cpp", 12)]:
        if any(p == path and ln == line for p, ln, _ in got):
            failures.append(f"allow() failed to suppress {path}:{line}")

    # --list-rules must succeed and name every rule seen above.
    rules = subprocess.run(
        [sys.executable, LINTER, "--list-rules"],
        capture_output=True, text=True)
    if rules.returncode != 0:
        failures.append("--list-rules exited nonzero")
    for rule in {r for _, _, r in EXPECTED}:
        if rule not in rules.stdout:
            failures.append(f"--list-rules missing rule: {rule}")

    if failures:
        print("FAIL:")
        for f in failures:
            print(f"  {f}")
        print("\nlinter output was:\n" + proc.stdout)
        return 1
    print(f"PASS: {len(EXPECTED)} expected findings, "
          f"{len(SILENT_FILES)} silent fixtures, allow() honored")
    return 0


if __name__ == "__main__":
    sys.exit(main())
