// Fixture: ad-hoc BENCH_*.json emission outside bench_util must fire.
#include <cstdio>

void report(double value)
{
    std::FILE *f = std::fopen("BENCH_adhoc.json", "w");  // line 6
    if (f != nullptr) {
        std::fprintf(f, "{\"value\": %f}\n", value);
        std::fclose(f);
    }
}
