// Fixture: this path IS the sanctioned writer (bench/bench_util.hpp),
// so building the BENCH_ path here stays silent.
#pragma once
#include <string>

inline std::string bench_json_path(const std::string &name)
{
    return "BENCH_" + name + ".json";
}
