// Fixture: routing through bench_util's Reporter (no BENCH_ literal in
// code; the one in this comment is stripped) stays silent.
#include "bench_util.hpp"

void report(double value)
{
    const std::string path = bench_json_path("good");
    (void)path;
    (void)value;
}
