// Fixture: naked getenv outside common/env.{hpp,cpp} must fire.
#include <cstdlib>
#include <string>

std::string cache_dir()
{
    const char *dir = std::getenv("BITWAVE_CACHE_DIR");  // line 7
    return dir != nullptr ? dir : "/tmp";
}
