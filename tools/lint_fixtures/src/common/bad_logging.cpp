// Fixture: direct std::cerr outside common/logging.cpp must fire.
#include <iostream>

void complain(int code)
{
    std::cerr << "failure: " << code << "\n";  // line 6
}
