// Fixture: every determinism pattern must fire, at these exact lines.
#include <cstdlib>
#include <ctime>
#include <random>

int noise()
{
    std::srand(42);                            // line 8: srand
    int r = rand();                            // line 9: rand
    std::random_device rd;                     // line 10: random_device
    r += static_cast<int>(std::time(nullptr)); // line 11: std::time
    r += static_cast<int>(rd());
    return r;
}
