// Fixture: seeded RNG and steady_clock are the sanctioned shapes, and
// mentions of rand() or std::time() in comments must not fire.
#include <chrono>
#include <cstdint>

std::uint64_t next(std::uint64_t state)
{
    // splitmix64 step — deterministic, seeded from position.
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    return z ^ (z >> 31);
}

std::uint64_t monotonic_ns()
{
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}

const char *operand_name()
{
    return "operand(";  // strings are stripped too: rand( inside one
}
