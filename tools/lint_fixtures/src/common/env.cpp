// Fixture: this path IS the sanctioned seam (src/common/env.cpp), so
// getenv here stays silent.
#include <cstdlib>
#include <string>

std::string env_string(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr ? v : "";
}
