// Fixture: explicit orderings — including the argument landing on a
// continuation line — and a comment mentioning counter.load() must all
// stay silent.
#include <atomic>

std::atomic<int> g_counter{0};

int bump()
{
    g_counter.store(1, std::memory_order_relaxed);
    int v = g_counter.load(std::memory_order_acquire);
    v += g_counter.fetch_add(
        1, std::memory_order_acq_rel);
    int expected = 2;
    g_counter.compare_exchange_strong(expected, 3,
                                      std::memory_order_seq_cst,
                                      std::memory_order_relaxed);
    return v;
}

// The rule is textual, so non-atomic accessors avoid the .load() name
// (the convention behind MirroredCounter::value() in the service).
struct Plain
{
    int value() const { return basis_; }
    int basis_ = 0;
};

int reload(const Plain &p)
{
    return p.value();
}
