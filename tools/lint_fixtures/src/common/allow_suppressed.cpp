// Fixture: the inline escape hatch — same-line and preceding-line —
// must suppress the finding; an allow for a *different* rule must not.
#include <atomic>
#include <cstdlib>

std::atomic<int> g_epoch{0};

int suppressed()
{
    int v = rand();  // bitwave-lint: allow(determinism)
    // bitwave-lint: allow(memory-order)
    v += g_epoch.load();
    return v;
}

int wrong_rule_named()
{
    // bitwave-lint: allow(logging)
    return g_epoch.load();  // line 19: still fires (memory-order)
}
