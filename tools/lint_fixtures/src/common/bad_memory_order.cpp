// Fixture: implicit-seq_cst atomic operations must fire.
#include <atomic>

std::atomic<int> g_counter{0};
std::atomic<bool> g_flag{false};

int bump()
{
    g_counter.store(1);              // line 9: store without order
    int v = g_counter.load();        // line 10: load without order
    v += g_counter.fetch_add(1);     // line 11: fetch_add without order
    int expected = 2;
    g_counter.compare_exchange_strong(expected, 3);  // line 13
    g_flag.exchange(true);           // line 14: exchange without order
    return v;
}
