// Fixture: stderr via the logging API shape stays silent; so does a
// comment mentioning std::cerr.
#include <cstdio>

void complain(int code)
{
    // The real tree calls bitwave::log::warn(); a raw fprintf to
    // stderr is logging.cpp's own business, not std::cerr.
    std::fprintf(stderr, "failure: %d\n", code);
}
