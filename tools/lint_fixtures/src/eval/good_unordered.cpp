// Fixture: sorting the keys first (iterating a vector, not the map)
// and unordered iteration that never touches a result stay silent.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

std::uint64_t fnv1a_step(std::uint64_t h, std::uint64_t v)
{
    return (h ^ v) * 0x100000001B3ULL;
}

std::uint64_t fingerprint_layers()
{
    std::unordered_map<std::string, std::uint64_t> layer_hashes;
    layer_hashes["conv1"] = 11;
    std::vector<std::string> keys;
    keys.reserve(layer_hashes.size());
    for (const auto &kv : layer_hashes) {  // order-free collection
        keys.push_back(kv.first);
    }
    std::sort(keys.begin(), keys.end());
    std::uint64_t fp = 0xCBF29CE484222325ULL;
    for (const auto &key : keys) {
        fp = fnv1a_step(fp, layer_hashes[key]);
    }
    return fp;
}
