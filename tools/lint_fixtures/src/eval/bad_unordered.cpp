// Fixture: hash-order iteration feeding a fingerprint must fire.
#include <cstdint>
#include <string>
#include <unordered_map>

std::uint64_t fnv1a_step(std::uint64_t h, std::uint64_t v)
{
    return (h ^ v) * 0x100000001B3ULL;
}

std::uint64_t fingerprint_layers()
{
    std::unordered_map<std::string, std::uint64_t> layer_hashes;
    layer_hashes["conv1"] = 11;
    std::uint64_t fingerprint = 0xCBF29CE484222325ULL;
    for (const auto &kv : layer_hashes) {  // line 16: fires
        fingerprint = fnv1a_step(fingerprint, kv.second);
    }
    return fingerprint;
}
