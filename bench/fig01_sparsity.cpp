/**
 * @file
 * Fig. 1 — weight value sparsity vs bit sparsity (2's complement and
 * sign-magnitude) with the SR ratios, across the Int8 benchmark
 * networks. One kStats scenario per network, evaluated as a parallel
 * ScenarioRunner batch.
 */
#include "bench_util.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 1",
                  "value vs bit sparsity of Int8 weights and SR ratios");
    bench::JsonReport json("fig01_sparsity");

    std::vector<eval::Scenario> scenarios;
    for (auto id : kAllWorkloads) {
        eval::Scenario s;
        s.engine = eval::EngineKind::kStats;
        s.workload = id;
        s.stats.column_stats = false;  // Fig. 1 reads sparsity only
        scenarios.push_back(std::move(s));
    }
    eval::RunnerReport report;
    const auto results = eval::ScenarioRunner().run(scenarios, &report);

    Table t({"network", "value sparsity", "bit sparsity (2C)",
             "bit sparsity (SM)", "SR (2C)", "SR (SM)"});
    for (const auto &r : results) {
        const SparsityStats s = r.merged_sparsity();
        t.add_row({r.workload, fmt_percent(s.value_sparsity()),
                   fmt_percent(s.bit_sparsity(
                       Representation::kTwosComplement)),
                   fmt_percent(s.bit_sparsity(
                       Representation::kSignMagnitude)),
                   fmt_ratio(s.sparsity_ratio(
                       Representation::kTwosComplement)),
                   fmt_ratio(s.sparsity_ratio(
                       Representation::kSignMagnitude))});
        json.add_row({
            {"workload", r.workload},
            {"value_sparsity", s.value_sparsity()},
            {"bit_sparsity_2c",
             s.bit_sparsity(Representation::kTwosComplement)},
            {"bit_sparsity_sm",
             s.bit_sparsity(Representation::kSignMagnitude)},
            {"sr_2c", s.sparsity_ratio(Representation::kTwosComplement)},
            {"sr_sm", s.sparsity_ratio(Representation::kSignMagnitude)},
        });
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper bands: SR 5.67-32.5x (2C), 8.73-47.5x (SM); "
                "bit sparsity about an order of magnitude above value "
                "sparsity.\n");
    bench::print_runner_report(report);
    return 0;
}
