/**
 * @file
 * Fig. 1 — weight value sparsity vs bit sparsity (2's complement and
 * sign-magnitude) with the SR ratios, across the Int8 benchmark networks.
 */
#include "bench_util.hpp"
#include "sparsity/stats.hpp"

using namespace bitwave;

int
main()
{
    bench::banner("Fig. 1",
                  "value vs bit sparsity of Int8 weights and SR ratios");
    Table t({"network", "value sparsity", "bit sparsity (2C)",
             "bit sparsity (SM)", "SR (2C)", "SR (SM)"});
    for (auto id : kAllWorkloads) {
        const auto &w = get_workload(id);
        SparsityStats s;
        for (const auto &l : w.layers) {
            s.merge(compute_sparsity(l.weights));
        }
        t.add_row({w.name, fmt_percent(s.value_sparsity()),
                   fmt_percent(s.bit_sparsity(
                       Representation::kTwosComplement)),
                   fmt_percent(s.bit_sparsity(
                       Representation::kSignMagnitude)),
                   fmt_ratio(s.sparsity_ratio(
                       Representation::kTwosComplement)),
                   fmt_ratio(s.sparsity_ratio(
                       Representation::kSignMagnitude))});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper bands: SR 5.67-32.5x (2C), 8.73-47.5x (SM); "
                "bit sparsity about an order of magnitude above value "
                "sparsity.\n");
    return 0;
}
