/**
 * @file
 * Shared helpers for the benchmark harness: every bench binary prints the
 * rows/series of one paper table or figure, prefixed with a banner naming
 * the artifact it regenerates, and emits a machine-readable
 * `BENCH_<name>.json` twin of the human table so the performance
 * trajectory can be tracked across PRs.
 */
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "eval/engine.hpp"
#include "eval/runner.hpp"
#include "eval/scenario.hpp"
#include "nn/workloads.hpp"
#include "service/service.hpp"

namespace bitwave::bench {

/// Print the artifact banner ("=== Fig. 5: ... ===").
inline void
banner(const std::string &artifact, const std::string &caption)
{
    std::printf("\n=== %s: %s ===\n\n", artifact.c_str(), caption.c_str());
}

/// Print the standard runner footer every bench emits.
inline void
print_runner_report(const eval::RunnerReport &report)
{
    std::printf("[runner: %d threads, %d shards, %.2fs wall, %.2fx "
                "parallel speedup]\n", report.threads_used, report.shards,
                report.wall_seconds, report.speedup());
}

// ---------------------------------------------------------------------------
// Machine-readable bench output
// ---------------------------------------------------------------------------

/// One scalar cell of the JSON report (string / number / bool).
struct JsonValue
{
    enum class Kind { kString, kNumber, kBool };
    Kind kind = Kind::kNumber;
    std::string str;
    double num = 0.0;
    bool boolean = false;

    JsonValue(const char *v) : kind(Kind::kString), str(v) {}
    JsonValue(std::string v) : kind(Kind::kString), str(std::move(v)) {}
    JsonValue(bool v) : kind(Kind::kBool), boolean(v) {}
    template <typename T,
              std::enable_if_t<std::is_arithmetic_v<T> &&
                                   !std::is_same_v<T, bool>, int> = 0>
    JsonValue(T v) : num(static_cast<double>(v)) {}
};

/// A flat key/value record (one row or the params block).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

/**
 * Append the paper-anchor keys CI's deviation gate greps for (`anchor`
 * and `deviation` on rows; `<prefix>_anchor` / `<prefix>_deviation` on
 * params via the overload below). One definition keeps the key
 * contract between the anchored benches (fig14/fig15/fig17) and the
 * workflow assertion in sync.
 */
inline void
add_anchor(JsonObject &row, double value, double anchor)
{
    row.emplace_back("anchor", anchor);
    row.emplace_back("deviation", value / anchor - 1.0);
}


/**
 * Collects the bench's parameters and result rows and writes
 * `BENCH_<name>.json` (name, params, rows, wall-time) next to the human
 * tables. Written on destruction or by an explicit write().
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string name)
        : name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {
    }

    JsonReport(const JsonReport &) = delete;
    JsonReport &operator=(const JsonReport &) = delete;

    ~JsonReport() { write(); }

    /// Record one sweep parameter ("group_size": 16, ...).
    void param(const std::string &key, JsonValue value)
    {
        params_.emplace_back(key, std::move(value));
    }

    /// Append one result row.
    void add_row(JsonObject row) { rows_.push_back(std::move(row)); }

    /// Append the standard fields of one scenario result, plus @p extra.
    void add_result(const eval::ScenarioResult &r, JsonObject extra = {})
    {
        JsonObject row{
            {"scenario", r.name},
            {"engine", r.engine},
            {"accelerator", r.accelerator},
            {"workload", r.workload},
            {"cycles", r.total_cycles},
            {"energy_pj", r.energy.total_pj},
            {"runtime_ms", r.runtime_ms()},
            {"tops_per_watt", r.tops_per_watt()},
            {"eval_wall_s", r.wall_seconds},
        };
        for (auto &kv : extra) {
            row.push_back(std::move(kv));
        }
        add_row(std::move(row));
    }

    /// Write BENCH_<name>.json to the working directory (best effort).
    /// The write is atomic — temp file + rename — so a bench that
    /// crashes mid-report never leaves a truncated JSON behind.
    void write()
    {
        if (written_) {
            return;
        }
        written_ = true;
        const double wall = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start_).count();
        const std::string path = "BENCH_" + name_ + ".json";
        const std::string tmp = path + ".tmp";
        std::FILE *f = std::fopen(tmp.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "bench: cannot write %s\n", tmp.c_str());
            return;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n", escape(name_).c_str());
        std::fprintf(f, "  \"wall_time_s\": %.6f,\n", wall);
        std::fprintf(f, "  \"params\": ");
        print_object(f, params_, "  ");
        std::fprintf(f, ",\n  \"rows\": [");
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            std::fprintf(f, "%s\n    ", i == 0 ? "" : ",");
            print_object(f, rows_[i], "    ");
        }
        std::fprintf(f, "%s]\n}\n", rows_.empty() ? "" : "\n  ");
        const bool ok = std::fflush(f) == 0 && std::ferror(f) == 0;
        std::fclose(f);
        if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
            std::fprintf(stderr, "bench: cannot finalize %s\n",
                         path.c_str());
            std::remove(tmp.c_str());
            return;
        }
        std::printf("\n[bench json: %s]\n", path.c_str());
    }

  private:
    static std::string escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\') {
                out += '\\';
                out += c;
            } else if (c == '\n') {
                out += "\\n";
            } else {
                out += c;
            }
        }
        return out;
    }

    static void print_object(std::FILE *f, const JsonObject &obj,
                             const char *indent)
    {
        std::fprintf(f, "{");
        for (std::size_t i = 0; i < obj.size(); ++i) {
            std::fprintf(f, "%s\n%s  \"%s\": ", i == 0 ? "" : ",", indent,
                         escape(obj[i].first).c_str());
            const JsonValue &v = obj[i].second;
            switch (v.kind) {
              case JsonValue::Kind::kString:
                std::fprintf(f, "\"%s\"", escape(v.str).c_str());
                break;
              case JsonValue::Kind::kNumber:
                std::fprintf(f, "%.17g", v.num);
                break;
              case JsonValue::Kind::kBool:
                std::fprintf(f, "%s", v.boolean ? "true" : "false");
                break;
            }
        }
        if (obj.empty()) {
            std::fprintf(f, "}");
        } else {
            std::fprintf(f, "\n%s}", indent);
        }
    }

    std::string name_;
    std::chrono::steady_clock::time_point start_;
    JsonObject params_;
    std::vector<JsonObject> rows_;
    bool written_ = false;
};

/// Params-block variant of add_anchor(): `<name>`, `<name>_anchor`,
/// `<name>_deviation`.
inline void
add_anchor_param(JsonReport &json, const std::string &name, double value,
                 double anchor)
{
    json.param(name, value);
    json.param(name + "_anchor", anchor);
    json.param(name + "_deviation", value / anchor - 1.0);
}

// ---------------------------------------------------------------------------
// Shared paper-grid scenario factories
// ---------------------------------------------------------------------------
// fig14/fig15/fig17 and table3 compare the same machines under the same
// protocol; these factories are the single definition of that grid.

/// The five modeled baseline machines, in the papers' column order.
inline std::vector<AcceleratorConfig>
paper_baselines()
{
    return {make_scnn(), make_stripes(), make_pragmatic(), make_bitlet(),
            make_huaa()};
}

/// BitWave's flagship configuration on @p id: +DF+SM+BF with the
/// heavy-layer Bit-Flip protocol (80 % of weights, group 16, 5 zero
/// columns) the Fig. 13-17 bars use.
inline eval::Scenario
bitwave_flagship_scenario(WorkloadId id)
{
    eval::Scenario s;
    s.accel = make_bitwave(BitWaveVariant::kDfSmBf);
    s.workload = id;
    s.bitflip.mode = eval::BitflipSpec::Mode::kHeavyLayers;
    s.bitflip.weight_share = 0.8;
    s.bitflip.group_size = 16;
    s.bitflip.zero_columns = 5;
    return s;
}

/// Columns per workload in paper_grid(): the baselines plus BitWave.
inline constexpr std::size_t kPaperGridPerWorkload = 6;

/// The full figure grid: per benchmark network, every baseline followed
/// by the BitWave flagship — the batch fig14/fig15/fig17 evaluate.
inline std::vector<eval::Scenario>
paper_grid()
{
    const auto baselines = paper_baselines();
    std::vector<eval::Scenario> scenarios;
    for (auto id : kAllWorkloads) {
        for (const auto &cfg : baselines) {
            eval::Scenario s;
            s.accel = cfg;
            s.workload = id;
            scenarios.push_back(std::move(s));
        }
        scenarios.push_back(bitwave_flagship_scenario(id));
    }
    return scenarios;
}

/// Bit-exact equality of the determinism-contract fields of two results
/// (everything except the wall_seconds / stats_memo_hits host
/// diagnostics) — the comparison the scaling bench, the service bench
/// and the service tests all gate on.
inline bool
identical_result(const eval::ScenarioResult &x,
                 const eval::ScenarioResult &y)
{
    if (x.name != y.name || x.rng_seed != y.rng_seed ||
        x.total_cycles != y.total_cycles ||
        x.energy.total_pj != y.energy.total_pj ||
        x.nominal_macs != y.nominal_macs ||
        x.layers.size() != y.layers.size()) {
        return false;
    }
    for (std::size_t l = 0; l < x.layers.size(); ++l) {
        const auto &p = x.layers[l];
        const auto &q = y.layers[l];
        if (p.layer_name != q.layer_name || p.su_name != q.su_name ||
            p.total_cycles != q.total_cycles ||
            p.compute_cycles != q.compute_cycles ||
            p.energy.total_pj != q.energy.total_pj) {
            return false;
        }
    }
    return true;
}

/// identical_result() over whole batches, in order.
inline bool
identical_results(const std::vector<eval::ScenarioResult> &a,
                  const std::vector<eval::ScenarioResult> &b)
{
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!identical_result(a[i], b[i])) {
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------------
// Synthetic multi-tenant trace + service replay
// ---------------------------------------------------------------------------

/// One request of a replayable trace.
struct TraceRequest
{
    eval::Scenario scenario;
    double deadline_seconds = 0.0;  ///< 0 = no deadline.
};

/// Knobs of make_multitenant_trace().
struct TraceSpec
{
    std::size_t requests = 1200;
    std::uint64_t seed = 0xB17;
    /// Zipf exponent of the workload popularity ranking (rank order =
    /// kAllWorkloads order): tenants hammer ResNet-class networks far
    /// more often than BERT-class ones.
    double zipf_exponent = 1.1;
};

/**
 * Synthesize a seeded multi-tenant request trace: workloads drawn
 * Zipf(@p zipf_exponent) over the benchmark networks; request bodies
 * drawn from small per-workload pools of realistic shapes — full
 * figure-grid evaluations (quickstart/deploy style), single-layer
 * flagship probes and Bit-Flip variant sweeps (DSE style), and
 * statistics queries. The pools are deliberately small so a trace
 * repeats design points the way real tenants do — that repetition is
 * what the service's dedup and the content-hash caches exploit.
 */
inline std::vector<TraceRequest>
make_multitenant_trace(const TraceSpec &spec)
{
    // Zipf CDF over the benchmark networks.
    constexpr std::size_t kWorkloads = std::size(kAllWorkloads);
    double zipf_cdf[kWorkloads];
    double norm = 0.0;
    for (std::size_t r = 0; r < kWorkloads; ++r) {
        norm += 1.0 / std::pow(static_cast<double>(r + 1),
                               spec.zipf_exponent);
        zipf_cdf[r] = norm;
    }

    // Per-workload probe-layer pools: a few layer names spread through
    // the network, from the cheap skeleton build (no weight synthesis).
    std::vector<std::vector<std::string>> probe_layers(kWorkloads);
    for (std::size_t w = 0; w < kWorkloads; ++w) {
        const Workload skeleton = build_workload_skeleton(kAllWorkloads[w]);
        const std::size_t n = skeleton.layers.size();
        for (const std::size_t idx :
             {std::size_t{0}, n / 3, (2 * n) / 3, n - 1}) {
            const std::string &name = skeleton.layers[idx].desc.name;
            auto &pool = probe_layers[w];
            if (std::find(pool.begin(), pool.end(), name) == pool.end()) {
                pool.push_back(name);
            }
        }
    }
    const auto baselines = paper_baselines();

    Rng rng(spec.seed);
    std::vector<TraceRequest> trace;
    trace.reserve(spec.requests);
    while (trace.size() < spec.requests) {
        const double u = rng.uniform() * norm;
        std::size_t w = 0;
        while (w + 1 < kWorkloads && zipf_cdf[w] < u) {
            ++w;
        }
        const WorkloadId id = kAllWorkloads[w];

        TraceRequest req;
        const double kind = rng.uniform();
        if (kind < 0.55) {
            // Single-layer flagship probe (DSE inner loop style).
            req.scenario = bitwave_flagship_scenario(id);
            req.scenario.layer_filter = {probe_layers[w][static_cast<
                std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(probe_layers[w].size()) - 1))]};
        } else if (kind < 0.80) {
            // Full-network figure-grid evaluation (quickstart/deploy
            // style): a baseline machine or the flagship.
            const auto pick = static_cast<std::size_t>(
                rng.uniform_int(0,
                                static_cast<std::int64_t>(baselines.size())));
            if (pick < baselines.size()) {
                req.scenario.accel = baselines[pick];
                req.scenario.workload = id;
            } else {
                req.scenario = bitwave_flagship_scenario(id);
            }
        } else if (kind < 0.95) {
            // Bit-Flip variant sweep point: small (group, zero-column)
            // pool on a probe layer.
            req.scenario = bitwave_flagship_scenario(id);
            req.scenario.bitflip.group_size =
                rng.bernoulli(0.5) ? 16 : 8;
            req.scenario.bitflip.zero_columns =
                static_cast<int>(rng.uniform_int(3, 5));
            req.scenario.layer_filter = {probe_layers[w].front()};
        } else {
            // Statistics query.
            req.scenario.engine = eval::EngineKind::kStats;
            req.scenario.workload = id;
            req.scenario.layer_filter = {probe_layers[w].back()};
        }
        // A slice of requests carries a (generous) deadline, exercising
        // the deadline bookkeeping without expiring under normal load.
        if (rng.bernoulli(0.25)) {
            req.deadline_seconds = 120.0;
        }
        trace.push_back(std::move(req));
    }
    return trace;
}

/// Result of replaying one trace through a service.
struct ReplayOutcome
{
    std::vector<service::EvalTicket> tickets;  ///< Parallel to the trace.
    double wall_seconds = 0.0;  ///< First submit -> last completion.
};

/// Submit every trace request, then wait for all completions.
inline ReplayOutcome
replay_trace(service::EvalService &svc,
             const std::vector<TraceRequest> &trace)
{
    ReplayOutcome outcome;
    outcome.tickets.reserve(trace.size());
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto &req : trace) {
        service::SubmitOptions opts;
        opts.deadline_seconds = req.deadline_seconds;
        outcome.tickets.push_back(svc.submit(req.scenario, opts));
    }
    for (const auto &ticket : outcome.tickets) {
        ticket.wait();
    }
    outcome.wall_seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    return outcome;
}

/// The @p p-quantile (0..1) of @p values (nearest-rank; sorts a copy).
inline double
percentile(std::vector<double> values, double p)
{
    if (values.empty()) {
        return 0.0;
    }
    std::sort(values.begin(), values.end());
    const auto rank = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(values.size()) - 1.0,
                         std::max(0.0, p * static_cast<double>(
                                                values.size()) - 0.5)));
    return values[rank];
}

}  // namespace bitwave::bench
