/**
 * @file
 * Shared helpers for the benchmark harness: every bench binary prints the
 * rows/series of one paper table or figure, prefixed with a banner naming
 * the artifact it regenerates.
 */
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bitflip/bitflip.hpp"
#include "common/table.hpp"
#include "nn/workloads.hpp"

namespace bitwave::bench {

/// Print the artifact banner ("=== Fig. 5: ... ===").
inline void
banner(const std::string &artifact, const std::string &caption)
{
    std::printf("\n=== %s: %s ===\n\n", artifact.c_str(), caption.c_str());
}

/// Bit-Flip every layer of @p w to a uniform (group, zero-column) target.
inline std::vector<Int8Tensor>
flip_workload(const Workload &w, int group, int zero_cols)
{
    std::vector<Int8Tensor> out;
    out.reserve(w.layers.size());
    for (const auto &l : w.layers) {
        out.push_back(zero_cols == 0
                          ? l.weights
                          : bitflip_tensor(l.weights, group, zero_cols));
    }
    return out;
}

/// Bit-Flip only the weight-heaviest layers covering @p weight_share of
/// the parameters (the paper's Fig. 6(e)-(h) protocol).
inline std::vector<Int8Tensor>
flip_heavy_layers(const Workload &w, double weight_share, int group,
                  int zero_cols)
{
    std::vector<std::pair<std::int64_t, std::size_t>> sizes;
    for (std::size_t i = 0; i < w.layers.size(); ++i) {
        sizes.emplace_back(w.layers[i].desc.weight_count(), i);
    }
    std::sort(sizes.rbegin(), sizes.rend());
    std::vector<bool> heavy(w.layers.size(), false);
    std::int64_t cum = 0;
    const auto target = static_cast<std::int64_t>(
        weight_share * static_cast<double>(w.total_weights()));
    for (const auto &[size, idx] : sizes) {
        if (cum >= target) {
            break;
        }
        heavy[idx] = true;
        cum += size;
    }
    std::vector<Int8Tensor> out;
    out.reserve(w.layers.size());
    for (std::size_t i = 0; i < w.layers.size(); ++i) {
        out.push_back(heavy[i] ? bitflip_tensor(w.layers[i].weights, group,
                                                zero_cols)
                               : w.layers[i].weights);
    }
    return out;
}

}  // namespace bitwave::bench
